package netlock

import (
	"context"
	"sync"
	"testing"
	"time"

	"netlock/internal/lockserver"
)

// waitUntil polls cond until it returns true or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// moveLog collects OnRebalanceMove reports under a mutex.
type moveLog struct {
	mu    sync.Mutex
	moves []RebalanceMove
}

func (l *moveLog) add(mv RebalanceMove) {
	l.mu.Lock()
	l.moves = append(l.moves, mv)
	l.mu.Unlock()
}

func (l *moveLog) snapshot() []RebalanceMove {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]RebalanceMove(nil), l.moves...)
}

// TestRebalanceTickPromotesHot: sustained traffic earns switch residency
// through the rebalancer, and the promoted lock is then switch-processed.
func TestRebalanceTickPromotesHot(t *testing.T) {
	var log moveLog
	m := New(Config{Shards: 1, Servers: 1, OnRebalanceMove: log.add})
	defer m.Close()
	ctx := context.Background()
	for i := 0; i < 60; i++ {
		g, err := m.Acquire(ctx, uint32(i%3)+1, Exclusive)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	if n := m.RebalanceTick(); n == 0 {
		t.Fatalf("no moves on a hot workload; stats %+v", m.RebalanceStats())
	}
	if m.Stats().SwitchResidentLocks == 0 {
		t.Fatal("no lock switch-resident after rebalance")
	}
	for _, mv := range log.snapshot() {
		if !mv.ToSwitch || mv.Err != nil {
			t.Fatalf("unexpected move %+v", mv)
		}
	}
	// A promoted lock is now granted by the data plane.
	pre := m.Stats().Switch.GrantsImmediate
	g, err := m.Acquire(ctx, 1, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	if m.Stats().Switch.GrantsImmediate != pre+1 {
		t.Fatal("promoted lock not switch-processed")
	}
	st := m.RebalanceStats()
	if st.Ticks == 0 || st.Promotions == 0 {
		t.Fatalf("stats not counted: %+v", st)
	}
}

// TestRebalanceRotationDemotesCooled: when the hot set rotates, the cooled
// residents are demoted and at least one newly hot lock promoted.
func TestRebalanceRotationDemotesCooled(t *testing.T) {
	var log moveLog
	m := New(Config{Shards: 1, Servers: 1, SwitchSlots: 32, OnRebalanceMove: log.add})
	defer m.Close()
	ctx := context.Background()
	drive := func(ids ...uint32) {
		for i := 0; i < 40; i++ {
			g, err := m.Acquire(ctx, ids[i%len(ids)], Exclusive)
			if err != nil {
				t.Fatal(err)
			}
			g.Release()
		}
	}
	for i := 0; i < 3; i++ {
		drive(1, 2)
		m.RebalanceTick()
	}
	for i := 0; i < 10; i++ {
		drive(11, 12)
		m.RebalanceTick()
	}
	demoted := map[uint32]bool{}
	promoted := map[uint32]bool{}
	for _, mv := range log.snapshot() {
		if mv.Err != nil {
			continue
		}
		if mv.ToSwitch {
			promoted[mv.LockID] = true
		} else {
			demoted[mv.LockID] = true
		}
	}
	if !demoted[1] || !demoted[2] {
		t.Fatalf("cooled locks not demoted after rotation; moves %+v", log.snapshot())
	}
	if !promoted[11] && !promoted[12] {
		t.Fatalf("rotated-in hot set never promoted; moves %+v", log.snapshot())
	}
}

// TestRebalanceBackgroundLoop: the automatic loop promotes hot locks with
// no manual ticks.
func TestRebalanceBackgroundLoop(t *testing.T) {
	m := New(Config{Shards: 1, Servers: 1, RebalanceInterval: 2 * time.Millisecond})
	defer m.Close()
	ctx := context.Background()
	waitUntil(t, "the loop to promote a hot lock", func() bool {
		for i := 0; i < 10; i++ {
			g, err := m.Acquire(ctx, 1, Exclusive)
			if err != nil {
				t.Fatal(err)
			}
			g.Release()
		}
		return m.Stats().SwitchResidentLocks > 0
	})
	if st := m.RebalanceStats(); st.Promotions == 0 {
		t.Fatalf("loop stats show no promotions: %+v", st)
	}
}

// TestLiveMoveAcrossHeldLock: explicit promote and demote with a holder and
// a queued waiter — state crosses the boundary intact both directions, the
// reports name the crossing transactions, and the waiter's grant survives.
func TestLiveMoveAcrossHeldLock(t *testing.T) {
	m := New(Config{Shards: 1, Servers: 1})
	defer m.Close()
	ctx := context.Background()
	const lockID = 9

	holder, err := m.Acquire(ctx, lockID, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	waiterCh := make(chan *Grant, 1)
	go func() {
		g, err := m.Acquire(ctx, lockID, Exclusive)
		if err != nil {
			t.Error(err)
		}
		waiterCh <- g
	}()
	waitUntil(t, "waiter to queue at the server", func() bool {
		return m.Stats().Servers[0].Queued >= 1
	})

	mv, err := m.MoveToSwitch(lockID, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(mv.Granted) != 1 || len(mv.Waiting) != 1 {
		t.Fatalf("promote report granted=%d waiting=%d, want 1/1", len(mv.Granted), len(mv.Waiting))
	}
	if mv.Granted[0] != holder.Txn() {
		t.Fatalf("promote report grants txn %d, holder is %d", mv.Granted[0], holder.Txn())
	}

	// Demote it back, still held, still waited on.
	mv, err = m.MoveToServer(lockID)
	if err != nil {
		t.Fatal(err)
	}
	if len(mv.Granted) != 1 || len(mv.Waiting) != 1 {
		t.Fatalf("demote report granted=%d waiting=%d, want 1/1", len(mv.Granted), len(mv.Waiting))
	}

	holder.Release()
	g := <-waiterCh
	if g == nil {
		t.Fatal("waiter lost across the round trip")
	}
	g.Release()
}

// TestManagerDrainAndAddServer: embedded parity for the tier operations —
// drain a server mid-hold, refuse the redirect cycle, grow the tier.
func TestManagerDrainAndAddServer(t *testing.T) {
	m := New(Config{Shards: 1, Servers: 2})
	defer m.Close()
	ctx := context.Background()

	var lockID uint32
	for id := uint32(1); ; id++ {
		if lockserver.RSSCore(id, 2) == 0 {
			lockID = id
			break
		}
	}
	holder, err := m.Acquire(ctx, lockID, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	waiterCh := make(chan *Grant, 1)
	go func() {
		g, err := m.Acquire(ctx, lockID, Exclusive)
		if err != nil {
			t.Error(err)
		}
		waiterCh <- g
	}()
	waitUntil(t, "waiter to queue at the victim", func() bool {
		return m.Stats().Servers[0].Queued >= 1
	})

	if err := m.DrainServer(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.DrainServer(1, 0); err == nil {
		t.Fatal("redirect cycle was not refused")
	}
	holder.Release()
	g := <-waiterCh
	if g == nil {
		t.Fatal("waiter lost across the drain")
	}
	g.Release()

	idx, err := m.AddServer()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("new server index %d, want 2", idx)
	}
	if got := len(m.Stats().Servers); got != 3 {
		t.Fatalf("stats report %d servers, want 3", got)
	}
	// Fresh traffic settles across the grown tier.
	for id := uint32(1); id <= 20; id++ {
		g, err := m.Acquire(ctx, id, Exclusive)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
}
