package netlock_test

import (
	"context"
	"fmt"
	"time"

	"netlock"
)

// ExampleManager shows the embedded API's basic lifecycle: exclusive and
// shared acquisition, FCFS blocking, and release.
func ExampleManager() {
	lm := netlock.New(netlock.Config{Servers: 1})
	defer lm.Close()
	ctx := context.Background()

	g, _ := lm.Acquire(ctx, 42, netlock.Exclusive)
	fmt.Println("holding lock", g.LockID(), "as", g.Mode())
	g.Release()

	r1, _ := lm.Acquire(ctx, 42, netlock.Shared)
	r2, _ := lm.Acquire(ctx, 42, netlock.Shared)
	fmt.Println("two concurrent shared holders")
	r1.Release()
	r2.Release()
	// Output:
	// holding lock 42 as exclusive
	// two concurrent shared holders
}

// ExampleManager_PlacementTick shows the memory-management loop moving a
// hot lock into the switch data plane.
func ExampleManager_PlacementTick() {
	lm := netlock.New(netlock.Config{Servers: 1})
	defer lm.Close()
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		g, _ := lm.Acquire(ctx, 7, netlock.Exclusive)
		g.Release()
	}
	installed, _ := lm.PlacementTick(time.Second)
	fmt.Println("locks moved into the switch:", installed)
	// Output:
	// locks moved into the switch: 1
}

// ExampleWithTenant shows per-tenant quota enforcement (performance
// isolation, §4.4 of the paper).
func ExampleWithTenant() {
	lm := netlock.New(netlock.Config{Servers: 1, Isolation: true})
	defer lm.Close()
	lm.SetTenantQuota(3, 100, 1) // 100 req/s, burst 1
	ctx := context.Background()

	g, err := lm.Acquire(ctx, 1, netlock.Shared, netlock.WithTenant(3))
	fmt.Println("first:", err)
	_, err = lm.Acquire(ctx, 2, netlock.Shared, netlock.WithTenant(3))
	fmt.Println("second:", err)
	g.Release()
	// Output:
	// first: <nil>
	// second: netlock: tenant quota exceeded
}
