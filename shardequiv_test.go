package netlock

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"netlock/internal/check"
	"netlock/internal/wire"
)

// Sharding must be a pure partitioning: every lock lives wholly inside one
// shard, so for any scripted workload a 1-shard and an N-shard manager must
// grant exactly the same transactions for each lock, in the same per-step
// batches. (Global interleaving across locks is allowed to differ — that is
// the parallelism being bought.) This is the shard-boundary property test:
// it drives both managers in lockstep through an identical script, draining
// grant notifications after every step, and diffs the per-lock histories.

// scriptedClient submits acquires without blocking by registering the
// waiter channel and injecting the packet directly (the synchronous core of
// Manager.Acquire), so one goroutine can keep many requests in flight and
// observe grants step by step.
type scriptedClient struct {
	m     *Manager
	chans map[uint64]chan wire.Header
	meta  map[uint64]wire.Header // submitted header by txn, for release
}

func newScriptedClient(m *Manager) *scriptedClient {
	return &scriptedClient{
		m:     m,
		chans: make(map[uint64]chan wire.Header),
		meta:  make(map[uint64]wire.Header),
	}
}

func (c *scriptedClient) submit(txn uint64, lock uint32, excl bool, prio uint8) {
	mode := wire.Shared
	if excl {
		mode = wire.Exclusive
	}
	h := wire.Header{
		Op:       wire.OpAcquire,
		Mode:     mode,
		LockID:   lock,
		TxnID:    txn,
		ClientIP: localClientIP,
		Priority: prio,
	}
	ch := make(chan wire.Header, 1)
	c.chans[txn] = ch
	c.meta[txn] = h
	sh := c.m.shardFor(lock)
	sh.mu.Lock()
	sh.waiters[waiterKey{lock, txn}] = ch
	sh.inject(&h)
	sh.mu.Unlock()
}

func (c *scriptedClient) release(txn uint64) {
	h := c.meta[txn]
	h.Op = wire.OpRelease
	sh := c.m.shardFor(h.LockID)
	sh.mu.Lock()
	sh.inject(&h)
	sh.mu.Unlock()
}

// drain collects every grant delivered so far: per lock, the sorted set of
// newly granted txns. Sorting makes within-step batches comparable as sets;
// cross-step ordering is preserved by the caller.
func (c *scriptedClient) drain() map[uint32][]uint64 {
	out := make(map[uint32][]uint64)
	for txn, ch := range c.chans {
		select {
		case h := <-ch:
			delete(c.chans, txn)
			out[h.LockID] = append(out[h.LockID], txn)
		default:
		}
	}
	for _, txns := range out {
		sort.Slice(txns, func(i, j int) bool { return txns[i] < txns[j] })
	}
	return out
}

func TestShardEquivalence(t *testing.T) {
	for _, seed := range check.SeedsN(4) {
		for _, shards := range []int{2, 4, 7} {
			t.Run(fmt.Sprintf("seed%d/shards%d", seed, shards), func(t *testing.T) {
				runShardEquivalence(t, seed, shards)
			})
		}
	}
}

func runShardEquivalence(t *testing.T, seed int64, shards int) {
	cfg := Config{Servers: 2, Priorities: 2}
	a := New(func() Config { c := cfg; c.Shards = 1; return c }())
	b := New(func() Config { c := cfg; c.Shards = shards; return c }())
	defer a.Close()
	defer b.Close()
	ca, cb := newScriptedClient(a), newScriptedClient(b)

	rng := rand.New(rand.NewSource(seed))
	const steps = 400
	const locks = 9
	var nextTxn uint64
	granted := make(map[uint32][]uint64) // per lock, currently held txns (from manager a's view)

	for step := 0; step < steps; step++ {
		switch {
		case step > 0 && step%50 == 0:
			// Interleave placement so locks migrate switch<->server
			// mid-script in both managers.
			a.PlacementTick(time.Millisecond)
			b.PlacementTick(time.Millisecond)
		case rng.Float64() < 0.55 || len(granted) == 0:
			nextTxn++
			lock := uint32(rng.Intn(locks) + 1)
			excl := rng.Float64() < 0.5
			prio := uint8(rng.Intn(cfg.Priorities))
			ca.submit(nextTxn, lock, excl, prio)
			cb.submit(nextTxn, lock, excl, prio)
		default:
			// Release a random currently-granted txn (chosen from a's
			// view; if b's state diverged the batch diff below fails).
			lockIDs := make([]uint32, 0, len(granted))
			for l := range granted {
				lockIDs = append(lockIDs, l)
			}
			sort.Slice(lockIDs, func(i, j int) bool { return lockIDs[i] < lockIDs[j] })
			l := lockIDs[rng.Intn(len(lockIDs))]
			held := granted[l]
			txn := held[rng.Intn(len(held))]
			ca.release(txn)
			cb.release(txn)
			if len(held) == 1 {
				delete(granted, l)
			} else {
				granted[l] = append(held[:0:0], held...)
				for i, v := range granted[l] {
					if v == txn {
						granted[l] = append(granted[l][:i], granted[l][i+1:]...)
						break
					}
				}
			}
		}

		ga, gb := ca.drain(), cb.drain()
		if err := diffBatches(ga, gb); err != nil {
			t.Fatalf("step %d (replay: %s): %v", step, check.ReplayArgs(seed), err)
		}
		for l, txns := range ga {
			granted[l] = append(granted[l], txns...)
		}
	}

	// Both managers must also agree on who is still waiting at the end.
	if len(ca.chans) != len(cb.chans) {
		t.Fatalf("pending waiters diverge: 1-shard=%d %d-shard=%d (replay: %s)",
			len(ca.chans), shards, len(cb.chans), check.ReplayArgs(seed))
	}
	for txn := range ca.chans {
		if _, ok := cb.chans[txn]; !ok {
			t.Fatalf("txn %d pending on 1-shard but granted on %d-shard (replay: %s)",
				txn, shards, check.ReplayArgs(seed))
		}
	}
}

func diffBatches(a, b map[uint32][]uint64) error {
	if len(a) != len(b) {
		return fmt.Errorf("grant batches diverge: 1-shard=%v N-shard=%v", a, b)
	}
	for l, ta := range a {
		tb, ok := b[l]
		if !ok || len(ta) != len(tb) {
			return fmt.Errorf("lock %d grants diverge: 1-shard=%v N-shard=%v", l, ta, tb)
		}
		for i := range ta {
			if ta[i] != tb[i] {
				return fmt.Errorf("lock %d grants diverge: 1-shard=%v N-shard=%v", l, ta, tb)
			}
		}
	}
	return nil
}
