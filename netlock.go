// Package netlock is a fast, centralized lock manager modeled after
// "NetLock: Fast, Centralized Lock Management Using Programmable Switches"
// (SIGCOMM 2020).
//
// NetLock co-designs a programmable switch with a set of lock servers: the
// switch data plane grants and queues requests for the popular locks at
// line rate, lock servers handle the unpopular ones and buffer switch
// overflow, and a control loop moves locks between the two using an optimal
// knapsack allocation of the switch's limited queue memory. The design
// supports shared/exclusive locks with FCFS starvation-freedom, priorities
// (service differentiation), per-tenant quotas (performance isolation),
// leases for failure handling, and one-RTT transaction integration.
//
// This package is the embeddable, goroutine-safe front end. The switch data
// plane it drives is the faithful software model in internal/switchdp (the
// hardware being unavailable); the same logic runs under the discrete-event
// evaluation testbed (internal/cluster), over real UDP sockets
// (internal/transport, cmd/netlockd), and in-process here.
//
// Mirroring the paper's parallel switch pipelines, the embedded front end
// is sharded: lock IDs partition across independent shards, each owning its
// own data-plane model, lock servers, and mutex, so acquires and releases
// of different locks never contend. The steady-state acquire/release path
// is allocation-free (pooled grants, pooled waiter channels, reusable
// emit buffers).
//
// Basic use:
//
//	lm := netlock.New(netlock.Config{})
//	defer lm.Close()
//	g, err := lm.Acquire(ctx, 42, netlock.Exclusive)
//	if err != nil { ... }
//	defer g.Release()
package netlock

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netlock/internal/core"
	"netlock/internal/lockserver"
	"netlock/internal/obs"
	"netlock/internal/p4sim"
	"netlock/internal/rebalance"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// Mode selects shared or exclusive locking.
type Mode int

// Lock modes.
const (
	// Shared locks may be held concurrently by many holders.
	Shared Mode = iota
	// Exclusive locks are held by exactly one holder.
	Exclusive
)

// String returns "shared" or "exclusive".
func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

func (m Mode) wire() wire.Mode {
	if m == Shared {
		return wire.Shared
	}
	return wire.Exclusive
}

// Config assembles an embedded NetLock instance.
type Config struct {
	// Shards partitions the lock ID space across this many independent
	// shards — the software analogue of the switch's parallel pipelines.
	// Each shard owns a disjoint slice of the switch register space, its
	// own lock servers, and its own mutex, so requests for locks in
	// different shards proceed in parallel. Default: GOMAXPROCS, clamped
	// to [1, 64]. Cross-shard operations (Close, Stats, FailSwitch)
	// briefly stop all shards.
	Shards int
	// Servers is the number of lock servers backing each shard (>= 1).
	// Default 2, as the paper's primary evaluation setup.
	Servers int
	// SwitchSlots is the shared-queue capacity in the switch data plane,
	// divided evenly across shards. Default 100_000, the prototype's size
	// (§5).
	SwitchSlots int
	// MaxSwitchLocks bounds the number of locks resident in the switch,
	// divided evenly across shards. Default 8192.
	MaxSwitchLocks int
	// Priorities enables service differentiation with this many priority
	// levels (1..8). Default 1 (plain FCFS).
	Priorities int
	// DefaultLease is the lease granted to holders; expired holders are
	// force-released by the background sweep. Zero disables leasing.
	DefaultLease time.Duration
	// SweepInterval is the lease-sweep period (default 10ms when leases
	// are enabled).
	SweepInterval time.Duration
	// Isolation enables per-tenant quotas (configure with SetTenantQuota).
	// The quota meter sits at ingress, before shard dispatch, exactly as
	// the ToR sees every request once regardless of which pipeline
	// processes it.
	Isolation bool
	// PlacementInterval runs the memory-management loop (measure demand,
	// knapsack-allocate, migrate locks) at this period. Zero disables the
	// automatic loop; PlacementTick can still be called manually.
	PlacementInterval time.Duration
	// RebalanceInterval runs the online rebalancer at this period: each
	// tick folds the demand window into a smoothed model and executes up to
	// RebalanceBudget live moves per shard — queue state migrating intact,
	// no drain wait (internal/rebalance). Zero disables the automatic loop;
	// RebalanceTick can still be called manually. The rebalancer and the
	// placement loop consume the same demand gauges — enable one, not both.
	RebalanceInterval time.Duration
	// RebalanceBudget caps live moves per shard per rebalance tick
	// (default 4).
	RebalanceBudget int
	// OnRebalanceMove, when set, observes every attempted live move
	// (including the explicit MoveToSwitch/MoveToServer calls' automatic
	// counterparts). Called synchronously from the tick; must not call back
	// into RebalanceTick.
	OnRebalanceMove func(RebalanceMove)
	// Metrics enables the observability layer: per-stage latency
	// histograms (switch pass, server queue wait, end-to-end acquire) and
	// paper-aligned counters, striped per shard and read via
	// Manager.Metrics(). Off by default; disabled, the hot path pays one
	// predictable branch per layer. Enabled, the steady-state
	// acquire/release path stays allocation-free.
	Metrics bool
	// Tracer, when non-nil, receives per-event callbacks (packet-in,
	// switch pass, resubmit, overflow, grant, release, lease expiry,
	// failover) from every layer. Setting a Tracer implies Metrics.
	// Callbacks run inline on the hot path and must not block.
	Tracer obs.Tracer
	// ServerOverflowLimit, when positive, bounds each lock server's
	// per-(lock, priority) queue and overflow buffer; requests arriving at
	// a full buffer fail with ErrQueueOverflow. Zero keeps the paper's
	// default: server DRAM is plentiful, buffers are unbounded.
	ServerOverflowLimit int
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Shards > 64 {
		c.Shards = 64
	}
	if c.Servers == 0 {
		c.Servers = 2
	}
	if c.SwitchSlots == 0 {
		c.SwitchSlots = 100_000
	}
	if c.MaxSwitchLocks == 0 {
		c.MaxSwitchLocks = 8192
	}
	if c.Priorities == 0 {
		c.Priorities = 1
	}
	if c.DefaultLease != 0 && c.SweepInterval == 0 {
		c.SweepInterval = 10 * time.Millisecond
	}
	return c
}

// Sentinel errors shared by every NetLock front end: the embedded Manager
// and the UDP transport.Client return the same values, so callers match with
// errors.Is regardless of which plane they run on.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("netlock: manager closed")
	// ErrQuotaExceeded is returned when the tenant's quota rejects the
	// request (isolation policy); callers should back off and retry.
	ErrQuotaExceeded = errors.New("netlock: tenant quota exceeded")
	// ErrTimeout is returned when an acquire's context deadline expires
	// before the grant arrives.
	ErrTimeout = errors.New("netlock: acquire timed out")
	// ErrQueueOverflow is returned when a bounded server buffer
	// (Config.ServerOverflowLimit) rejects the request; callers should
	// back off and retry.
	ErrQueueOverflow = errors.New("netlock: server queue overflow")
	// ErrNoCapacity is returned by Preinstall when the switch cannot host
	// the lock (lock table or queue memory exhausted).
	ErrNoCapacity = errors.New("netlock: no switch capacity")
)

// AcquireOptions are the per-acquisition parameters. Options pass the struct
// by value so applying them never forces a heap allocation on the request
// path. The struct is exported so other front ends (internal/transport)
// share the same option set; most callers use the With* options instead.
type AcquireOptions struct {
	// Tenant tags the request for quota enforcement (§4.4).
	Tenant uint8
	// Priority requests service at this priority (0 = highest).
	Priority uint8
	// Lease overrides the default lease duration (§4.5).
	Lease time.Duration
}

// AcquireOption customizes one acquisition.
type AcquireOption func(AcquireOptions) AcquireOptions

// ResolveAcquireOptions folds a list of options into the final parameter
// struct, shared by every front end.
func ResolveAcquireOptions(opts ...AcquireOption) AcquireOptions {
	var o AcquireOptions
	for _, f := range opts {
		o = f(o)
	}
	return o
}

// WithTenant tags the request with a tenant for quota enforcement.
func WithTenant(t uint8) AcquireOption {
	return func(o AcquireOptions) AcquireOptions { o.Tenant = t; return o }
}

// WithPriority requests service at the given priority (0 = highest).
func WithPriority(p uint8) AcquireOption {
	return func(o AcquireOptions) AcquireOptions { o.Priority = p; return o }
}

// WithLease overrides the default lease duration for this acquisition.
func WithLease(d time.Duration) AcquireOption {
	return func(o AcquireOptions) AcquireOptions { o.Lease = d; return o }
}

// Manager is an embedded NetLock instance: the switch data-plane model, the
// lock servers, and the control plane, fronted by a synchronous API.
// Manager is safe for concurrent use. Internally the lock ID space is
// partitioned across independent shards (see Config.Shards); requests for
// locks in different shards never contend.
type Manager struct {
	cfg    Config
	clock  func() int64
	shards []*shard
	// obs is the metrics registry, one stripe per shard; nil when
	// Config.Metrics is off and no Tracer is set.
	obs *obs.Registry

	closed  atomic.Bool
	nextTxn atomic.Uint64

	// Ingress quota metering (§4.4): a single meter before shard dispatch,
	// as the ToR sees every request once. Guarded by isoMu; only touched
	// when Isolation is on.
	isoMu   sync.Mutex
	meter   *p4sim.Meter
	rejects atomic.Uint64

	grantPool sync.Pool // *Grant
	chanPool  sync.Pool // chan wire.Header, capacity 1

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// shard is one partition of the embedded instance: a full switch-pipeline
// model plus lock servers for a disjoint slice of the lock ID space, under
// its own mutex. All fields are guarded by mu.
type shard struct {
	mu      sync.Mutex
	mgr     *core.Manager
	waiters map[waiterKey]chan wire.Header
	closed  bool
	// o is this shard's metrics stripe (nil when observability is off);
	// the front end records the end-to-end acquire stage on it, the
	// shard's switch and servers record theirs through core.Config.Obs.
	o *obs.Stripe

	// Reusable emit stacks for the settle loop. ProcessPacket reuses its
	// emit slice, so emits must be copied out before recursing; the stacks
	// grow once and are then reused, keeping the hot path allocation-free.
	swEmits  []switchdp.Emit
	srvEmits []lockserver.Emit

	// rebal is this shard's online rebalance loop (netlock_rebalance.go);
	// it holds its own mutex and takes sh.mu per mover call.
	rebal *rebalance.Loop
}

type waiterKey struct {
	lock uint32
	txn  uint64
}

// New builds a Manager. Background loops (lease sweep, placement) start
// immediately when configured.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	start := time.Now()
	clock := func() int64 { return int64(time.Since(start)) }
	m := &Manager{
		cfg:    cfg,
		clock:  clock,
		stopCh: make(chan struct{}),
	}
	m.grantPool.New = func() any { return new(Grant) }
	m.chanPool.New = func() any { return make(chan wire.Header, 1) }
	if cfg.Isolation {
		m.meter = p4sim.NewMeter("ingress-tenant-quota", 256)
	}
	if cfg.Metrics || cfg.Tracer != nil {
		m.obs = obs.New(obs.Config{Stripes: cfg.Shards, Tracer: cfg.Tracer})
	}
	// Partition the switch resources evenly: each shard models one
	// pipeline with its slice of the register space and lock table.
	perSlots := cfg.SwitchSlots / cfg.Shards
	if perSlots < cfg.Priorities {
		perSlots = cfg.Priorities
	}
	perLocks := cfg.MaxSwitchLocks / cfg.Shards
	if perLocks < 1 {
		perLocks = 1
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{waiters: make(map[waiterKey]chan wire.Header), o: m.obs.Stripe(i)}
		sh.mgr = core.New(core.Config{
			PauseBusyMoves: true,
			Switch: switchdp.Config{
				MaxLocks:       perLocks,
				TotalSlots:     perSlots,
				Priorities:     cfg.Priorities,
				DefaultLeaseNs: int64(cfg.DefaultLease),
				Now:            clock,
			},
			Servers: cfg.Servers,
			ServerConfig: lockserver.Config{
				MaxBuffer: cfg.ServerOverflowLimit,
			},
			Obs: sh.o,
		})
		m.shards = append(m.shards, sh)
	}
	if cfg.SweepInterval > 0 && cfg.DefaultLease > 0 {
		m.wg.Add(1)
		go m.sweepLoop()
	}
	if cfg.PlacementInterval > 0 {
		m.wg.Add(1)
		go m.placementLoop()
	}
	m.initRebalance()
	if cfg.RebalanceInterval > 0 {
		m.wg.Add(1)
		go m.rebalanceLoop()
	}
	return m
}

// Shards returns the number of shards the lock ID space is partitioned
// into.
func (m *Manager) Shards() int { return len(m.shards) }

func (m *Manager) shardFor(lockID uint32) *shard {
	return m.shards[int(lockID%uint32(len(m.shards)))]
}

// lockAll is the stop-the-shards barrier: it acquires every shard mutex in
// shard order, giving cross-shard operations (Close, Stats, failure
// injection) a consistent cut of the whole instance's state.
func (m *Manager) lockAll() {
	for _, sh := range m.shards {
		sh.mu.Lock()
	}
}

func (m *Manager) unlockAll() {
	for _, sh := range m.shards {
		sh.mu.Unlock()
	}
}

// Close stops the background loops. Outstanding Acquire calls return
// ErrClosed.
func (m *Manager) Close() {
	if m.closed.Swap(true) {
		return
	}
	close(m.stopCh)
	m.lockAll()
	for _, sh := range m.shards {
		sh.closed = true
		for k, ch := range sh.waiters {
			close(ch)
			delete(sh.waiters, k)
		}
	}
	m.unlockAll()
	m.wg.Wait()
}

// Grant states. A Grant cycles held -> released -> (pooled) -> held.
const (
	grantReleased uint32 = iota
	grantHeld
)

// Grant is a held lock.
type Grant struct {
	m        *Manager
	lockID   uint32
	txnID    uint64
	mode     Mode
	priority uint8
	// Expiry is the lease expiry instant on the manager clock (zero when
	// leasing is disabled).
	Expiry time.Duration
	state  atomic.Uint32
}

// LockID returns the granted lock's ID.
func (g *Grant) LockID() uint32 { return g.lockID }

// Mode returns the granted mode.
func (g *Grant) Mode() Mode { return g.mode }

// Txn returns the transaction ID the manager assigned to this
// acquisition. It is unique per grant until the Grant is released (the
// storage is pooled afterwards), which is what trace validation needs.
func (g *Grant) Txn() uint64 { return g.txnID }

// Release releases the lock. The first call wins; subsequent calls on the
// same Grant are no-ops. After Release returns, the Grant's storage is
// recycled for future acquisitions and must not be retained or inspected.
func (g *Grant) Release() {
	if !g.state.CompareAndSwap(grantHeld, grantReleased) {
		return
	}
	m := g.m
	h := wire.Header{
		Op:       wire.OpRelease,
		Mode:     g.mode.wire(),
		LockID:   g.lockID,
		TxnID:    g.txnID,
		Priority: g.priority,
		ClientIP: localClientIP,
	}
	sh := m.shardFor(g.lockID)
	sh.mu.Lock()
	if !sh.closed {
		sh.inject(&h)
	}
	sh.mu.Unlock()
	m.grantPool.Put(g)
}

var localClientIP = netip.AddrFrom4([4]byte{127, 0, 0, 1})

// Acquire blocks until the lock is granted, the context is cancelled, or
// the manager closes. The returned Grant must be released.
//
// Failures match the shared sentinels with errors.Is: ErrClosed,
// ErrQuotaExceeded, ErrQueueOverflow, and — when the context's deadline
// expired — ErrTimeout (alongside context.DeadlineExceeded).
func (m *Manager) Acquire(ctx context.Context, lockID uint32, mode Mode, opts ...AcquireOption) (*Grant, error) {
	o := ResolveAcquireOptions(opts...)
	if m.closed.Load() {
		return nil, ErrClosed
	}
	if m.cfg.Isolation {
		m.isoMu.Lock()
		ok := m.meter.Conforming(int(o.Tenant), m.clock())
		m.isoMu.Unlock()
		if !ok {
			m.rejects.Add(1)
			return nil, ErrQuotaExceeded
		}
	}
	txn := m.nextTxn.Add(1)
	h := wire.Header{
		Op:       wire.OpAcquire,
		Mode:     mode.wire(),
		LockID:   lockID,
		TxnID:    txn,
		ClientIP: localClientIP,
		TenantID: o.Tenant,
		Priority: o.Priority,
		LeaseNs:  int64(o.Lease),
	}
	ch := m.chanPool.Get().(chan wire.Header)
	key := waiterKey{lockID, txn}
	sh := m.shardFor(lockID)
	var start time.Time
	if sh.o.Enabled() {
		start = obs.Now()
	}
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		m.chanPool.Put(ch)
		return nil, ErrClosed
	}
	sh.waiters[key] = ch
	sh.inject(&h)
	sh.mu.Unlock()

	select {
	case g, ok := <-ch:
		if !ok {
			// Close closed the channel; it must not be pooled.
			return nil, ErrClosed
		}
		m.chanPool.Put(ch)
		if g.Op == wire.OpReject {
			if g.Flags&wire.FlagOverflow != 0 {
				return nil, ErrQueueOverflow
			}
			return nil, ErrQuotaExceeded
		}
		if sh.o.Enabled() {
			sh.o.Observe(obs.StageAcquireE2E, obs.Since(start))
		}
		gr := m.grantPool.Get().(*Grant)
		gr.m = m
		gr.lockID = lockID
		gr.txnID = txn
		gr.mode = mode
		gr.priority = o.Priority
		gr.Expiry = time.Duration(g.LeaseNs)
		gr.state.Store(grantHeld)
		return gr, nil
	case <-ctx.Done():
		sh.mu.Lock()
		_, present := sh.waiters[key]
		delete(sh.waiters, key)
		sh.mu.Unlock()
		if present {
			// Nobody can send on ch anymore; it is empty and reusable.
			m.chanPool.Put(ch)
		} else {
			// The grant raced in (buffered) or Close closed the channel.
			select {
			case _, ok := <-ch:
				if ok {
					m.chanPool.Put(ch)
				}
			default:
				m.chanPool.Put(ch)
			}
		}
		// The request may still be queued or granted inside the data
		// plane; the lease sweep reclaims it. A context with no deadline
		// and no lease would leak the slot, so surface that in the error.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, fmt.Errorf("netlock: acquire lock %d: %w (%w)", lockID, ErrTimeout, ctx.Err())
		}
		return nil, fmt.Errorf("netlock: acquire lock %d: %w", lockID, ctx.Err())
	}
}

// Preinstall makes a lock switch-resident ahead of traffic (warmup), with
// the given shared-queue slot count (rounded up to one slot per priority
// bank). It fails with ErrNoCapacity when the switch's lock table or queue
// memory cannot host the lock. Already-resident locks are a no-op. The
// placement loop may later evict preinstalled locks that see no traffic.
func (m *Manager) Preinstall(lockID uint32, slots int) error {
	if m.closed.Load() {
		return ErrClosed
	}
	if slots < 0 {
		return fmt.Errorf("netlock: preinstall lock %d: negative slot count", lockID)
	}
	sh := m.shardFor(lockID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return ErrClosed
	}
	rep, err := sh.mgr.PreinstallLock(lockID, uint64(slots))
	// A preinstalled lock can have been mid-move: deliver whatever the
	// install produced before reporting the outcome.
	sh.routeServerEmits(rep.Emits)
	for i := range rep.SwitchPushes {
		sh.inject(&rep.SwitchPushes[i])
	}
	if err != nil {
		if errors.Is(err, core.ErrNoCapacity) {
			return fmt.Errorf("netlock: preinstall lock %d: %w", lockID, ErrNoCapacity)
		}
		return fmt.Errorf("netlock: preinstall lock %d: %w", lockID, err)
	}
	return nil
}

// inject routes a packet through the shard's switch (and onward to servers)
// until all resulting deliveries settle. Caller holds sh.mu. The emit stack
// is reused across calls; recursion (server pushes re-entering the switch)
// appends above the caller's frame and truncates back.
func (sh *shard) inject(h *wire.Header) {
	emits, _ := sh.mgr.Switch().ProcessPacket(h)
	base := len(sh.swEmits)
	sh.swEmits = append(sh.swEmits, emits...)
	for i := 0; i < len(emits); i++ {
		sh.routeSwitchEmit(sh.swEmits[base+i])
	}
	sh.swEmits = sh.swEmits[:base]
}

func (sh *shard) routeSwitchEmit(e switchdp.Emit) {
	switch e.Action {
	case switchdp.ActGrant, switchdp.ActFetch:
		sh.deliverGrant(e.Hdr)
	case switchdp.ActReject:
		sh.deliverGrant(e.Hdr) // waiter inspects Op
	case switchdp.ActForward, switchdp.ActForwardOverflow, switchdp.ActPushNotify:
		srv := sh.mgr.Server(sh.mgr.ServerFor(e.Hdr.LockID))
		h := e.Hdr
		sh.routeServerEmits(srv.ProcessPacket(&h))
	}
}

// routeServerEmits copies the server's reusable emit slice onto the shard's
// stack and routes each entry. Caller holds sh.mu.
func (sh *shard) routeServerEmits(emits []lockserver.Emit) {
	base := len(sh.srvEmits)
	sh.srvEmits = append(sh.srvEmits, emits...)
	for i := 0; i < len(emits); i++ {
		sh.routeServerEmit(sh.srvEmits[base+i])
	}
	sh.srvEmits = sh.srvEmits[:base]
}

func (sh *shard) routeServerEmit(e lockserver.Emit) {
	switch e.Action {
	case lockserver.ActGrant, lockserver.ActFetch:
		sh.deliverGrant(e.Hdr)
	case lockserver.ActReject:
		sh.deliverGrant(e.Hdr) // waiter inspects Op and FlagOverflow
	case lockserver.ActPush:
		h := e.Hdr
		sh.inject(&h)
	}
}

// deliverGrant completes a waiting Acquire. Caller holds sh.mu.
func (sh *shard) deliverGrant(h wire.Header) {
	key := waiterKey{h.LockID, h.TxnID}
	ch, ok := sh.waiters[key]
	if !ok {
		return // cancelled or duplicate; the lease sweep reclaims the slot
	}
	delete(sh.waiters, key)
	ch <- h
}

// SetTenantQuota configures tenant t's request quota: a sustained rate per
// second and a burst allowance (performance isolation, §4.4). Requires
// Config.Isolation.
func (m *Manager) SetTenantQuota(t uint8, perSec float64, burst float64) {
	if m.meter == nil {
		return
	}
	m.isoMu.Lock()
	defer m.isoMu.Unlock()
	m.meter.CtrlSetRate(int(t), perSec, burst)
}

// PlacementTick runs one round of the memory-management loop on every
// shard: close the measurement window, compute the optimal allocation over
// the shard's slice of switch memory, and migrate drained locks between
// switch and servers. It reports how many locks moved in total. Shards tick
// independently — switch capacity is statically partitioned, so there is no
// cross-shard allocation decision to coordinate.
func (m *Manager) PlacementTick(window time.Duration) (installed, removed int) {
	if m.closed.Load() {
		return 0, 0
	}
	for _, sh := range m.shards {
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			break
		}
		demands := sh.mgr.MeasureDemands(window.Seconds())
		rep := sh.mgr.Reallocate(demands, nil)
		for _, e := range rep.Emits {
			sh.routeServerEmit(e)
		}
		for i := range rep.SwitchPushes {
			sh.inject(&rep.SwitchPushes[i])
		}
		installed += len(rep.Installed)
		removed += len(rep.Removed)
		sh.mu.Unlock()
	}
	return installed, removed
}

// Stats is a snapshot of processing counters across the instance.
type Stats struct {
	// Switch aggregates the data-plane counters across all shard
	// pipelines (ingress quota rejects included).
	Switch switchdp.Stats
	// Servers aggregates per logical server index: Servers[i] sums the
	// counters of server i across all shards.
	Servers []lockserver.Stats
	// SwitchResidentLocks is the number of locks currently placed in the
	// switch (all shards).
	SwitchResidentLocks int
	// SwitchFreeSlots is the unallocated shared-queue capacity (all
	// shards).
	SwitchFreeSlots uint64
}

func addSwitchStats(dst *switchdp.Stats, s switchdp.Stats) {
	dst.Acquires += s.Acquires
	dst.Releases += s.Releases
	dst.Pushes += s.Pushes
	dst.GrantsImmediate += s.GrantsImmediate
	dst.GrantsQueued += s.GrantsQueued
	dst.Queued += s.Queued
	dst.Forwards += s.Forwards
	dst.Overflows += s.Overflows
	dst.Rejects += s.Rejects
	dst.PushNotifies += s.PushNotifies
	dst.ExpiredReleases += s.ExpiredReleases
}

func addServerStats(dst *lockserver.Stats, s lockserver.Stats) {
	dst.Acquires += s.Acquires
	dst.Releases += s.Releases
	dst.GrantsImmediate += s.GrantsImmediate
	dst.GrantsQueued += s.GrantsQueued
	dst.Queued += s.Queued
	dst.Buffered += s.Buffered
	dst.Bounced += s.Bounced
	dst.Pushed += s.Pushed
	dst.OvfClears += s.OvfClears
	dst.ExpiredReleases += s.ExpiredReleases
	dst.Rejected += s.Rejected
	dst.ForwardedToSwitch += s.ForwardedToSwitch
}

// Stats returns a snapshot of the instance's counters, aggregated across
// shards under the stop-the-shards barrier (a consistent cut).
func (m *Manager) Stats() Stats {
	var st Stats
	m.lockAll()
	// Sized under the barrier: AddServer mutates the server count while
	// holding all shard mutexes.
	st.Servers = make([]lockserver.Stats, m.cfg.Servers)
	for _, sh := range m.shards {
		addSwitchStats(&st.Switch, sh.mgr.Switch().Stats())
		st.SwitchResidentLocks += len(sh.mgr.Switch().CtrlResidentLocks())
		st.SwitchFreeSlots += sh.mgr.FreeSlots()
		for i := 0; i < sh.mgr.NumServers(); i++ {
			addServerStats(&st.Servers[i], sh.mgr.Server(i).Stats())
		}
	}
	m.unlockAll()
	st.Switch.Rejects += m.rejects.Load()
	return st
}

// Metrics returns a merged snapshot of the observability layer: per-stage
// latency histograms, paper-aligned counters, per-tenant grant counts, and
// control-plane gauges (slots in use, resident locks, free capacity).
// Unlike Stats, reading metrics never stops the shards — counters and
// histograms are collected lock-free; only the gauges briefly take each
// shard's mutex in turn. With Config.Metrics off, the snapshot contains the
// gauges and zeros elsewhere.
func (m *Manager) Metrics() *obs.Snapshot {
	sn := m.obs.Snapshot()
	var slotsInUse, freeSlots uint64
	var resident int
	for _, sh := range m.shards {
		sh.mu.Lock()
		if !sh.closed {
			slotsInUse += sh.mgr.Switch().CtrlSlotsInUse()
			resident += len(sh.mgr.Switch().CtrlResidentLocks())
			freeSlots += sh.mgr.FreeSlots()
		}
		sh.mu.Unlock()
	}
	sn.Counters[obs.CtrRejects] += m.rejects.Load() // ingress quota rejects
	sn.AddGauge("switch_slots_in_use", "Shared-queue slots currently occupied across all shards.", float64(slotsInUse))
	sn.AddGauge("switch_resident_locks", "Locks currently resident in the switch data plane.", float64(resident))
	sn.AddGauge("switch_free_slots", "Unallocated shared-queue capacity.", float64(freeSlots))
	return sn
}

// FailSwitch simulates a switch failure: all data-plane state is lost and
// held locks are only reclaimed by lease expiry. Every shard pipeline fails
// together — the ToR is a single box. Exposed for failure testing (the
// paper's §6.5 experiment; see examples/failover).
func (m *Manager) FailSwitch() {
	m.lockAll()
	for _, sh := range m.shards {
		sh.mgr.FailSwitch()
	}
	m.unlockAll()
}

// FailServer simulates a lock-server failure (§4.5): on every shard, the
// locks owned by server index failed are adopted (with empty queues) by
// server index replacement; clients resubmit and leases expire any stale
// grants. Exposed for failure testing alongside FailSwitch.
func (m *Manager) FailServer(failed, replacement int) {
	m.lockAll()
	for _, sh := range m.shards {
		sh.mgr.FailServer(failed, replacement)
	}
	m.unlockAll()
}

// RestartSwitch reactivates a failed switch: the control plane reinstalls
// the lock table with empty queues on every shard.
func (m *Manager) RestartSwitch() {
	m.lockAll()
	for _, sh := range m.shards {
		sh.mgr.RestartSwitch()
	}
	m.unlockAll()
}

// SwitchFailed reports whether the switch is in the failed state.
func (m *Manager) SwitchFailed() bool {
	m.lockAll()
	failed := m.shards[0].mgr.SwitchFailed()
	m.unlockAll()
	return failed
}

func (m *Manager) sweepLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			for _, sh := range m.shards {
				sh.mu.Lock()
				if !sh.closed {
					rels, emits := sh.mgr.SweepLeases(m.clock())
					for i := range rels {
						sh.inject(&rels[i])
					}
					sh.routeServerEmits(emits)
					for _, h := range sh.mgr.SweepStranded() {
						srv := sh.mgr.Server(sh.mgr.ServerFor(h.LockID))
						hh := h
						sh.routeServerEmits(srv.ProcessPacket(&hh))
					}
				}
				sh.mu.Unlock()
			}
		}
	}
}

func (m *Manager) placementLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.PlacementInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			m.PlacementTick(m.cfg.PlacementInterval)
		}
	}
}
