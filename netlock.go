// Package netlock is a fast, centralized lock manager modeled after
// "NetLock: Fast, Centralized Lock Management Using Programmable Switches"
// (SIGCOMM 2020).
//
// NetLock co-designs a programmable switch with a set of lock servers: the
// switch data plane grants and queues requests for the popular locks at
// line rate, lock servers handle the unpopular ones and buffer switch
// overflow, and a control loop moves locks between the two using an optimal
// knapsack allocation of the switch's limited queue memory. The design
// supports shared/exclusive locks with FCFS starvation-freedom, priorities
// (service differentiation), per-tenant quotas (performance isolation),
// leases for failure handling, and one-RTT transaction integration.
//
// This package is the embeddable, goroutine-safe front end. The switch data
// plane it drives is the faithful software model in internal/switchdp (the
// hardware being unavailable); the same logic runs under the discrete-event
// evaluation testbed (internal/cluster), over real UDP sockets
// (internal/transport, cmd/netlockd), and in-process here.
//
// Basic use:
//
//	lm := netlock.New(netlock.Config{})
//	defer lm.Close()
//	g, err := lm.Acquire(ctx, 42, netlock.Exclusive)
//	if err != nil { ... }
//	defer g.Release()
package netlock

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"netlock/internal/core"
	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// Mode selects shared or exclusive locking.
type Mode int

// Lock modes.
const (
	// Shared locks may be held concurrently by many holders.
	Shared Mode = iota
	// Exclusive locks are held by exactly one holder.
	Exclusive
)

// String returns "shared" or "exclusive".
func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

func (m Mode) wire() wire.Mode {
	if m == Shared {
		return wire.Shared
	}
	return wire.Exclusive
}

// Config assembles an embedded NetLock instance.
type Config struct {
	// Servers is the number of lock servers backing the switch (>= 1).
	// Default 2, as the paper's primary evaluation setup.
	Servers int
	// SwitchSlots is the shared-queue capacity in the switch data plane.
	// Default 100_000, the prototype's size (§5).
	SwitchSlots int
	// MaxSwitchLocks bounds the number of locks resident in the switch.
	// Default 8192.
	MaxSwitchLocks int
	// Priorities enables service differentiation with this many priority
	// levels (1..8). Default 1 (plain FCFS).
	Priorities int
	// DefaultLease is the lease granted to holders; expired holders are
	// force-released by the background sweep. Zero disables leasing.
	DefaultLease time.Duration
	// SweepInterval is the lease-sweep period (default 10ms when leases
	// are enabled).
	SweepInterval time.Duration
	// Isolation enables per-tenant quotas (configure with SetTenantQuota).
	Isolation bool
	// PlacementInterval runs the memory-management loop (measure demand,
	// knapsack-allocate, migrate locks) at this period. Zero disables the
	// automatic loop; PlacementTick can still be called manually.
	PlacementInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Servers == 0 {
		c.Servers = 2
	}
	if c.SwitchSlots == 0 {
		c.SwitchSlots = 100_000
	}
	if c.MaxSwitchLocks == 0 {
		c.MaxSwitchLocks = 8192
	}
	if c.Priorities == 0 {
		c.Priorities = 1
	}
	if c.DefaultLease != 0 && c.SweepInterval == 0 {
		c.SweepInterval = 10 * time.Millisecond
	}
	return c
}

// Errors returned by Acquire.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("netlock: manager closed")
	// ErrQuotaExceeded is returned when the tenant's quota rejects the
	// request (isolation policy); callers should back off and retry.
	ErrQuotaExceeded = errors.New("netlock: tenant quota exceeded")
)

// AcquireOption customizes one acquisition.
type AcquireOption func(*acquireOpts)

type acquireOpts struct {
	tenant   uint8
	priority uint8
	lease    time.Duration
}

// WithTenant tags the request with a tenant for quota enforcement.
func WithTenant(t uint8) AcquireOption { return func(o *acquireOpts) { o.tenant = t } }

// WithPriority requests service at the given priority (0 = highest).
func WithPriority(p uint8) AcquireOption { return func(o *acquireOpts) { o.priority = p } }

// WithLease overrides the default lease duration for this acquisition.
func WithLease(d time.Duration) AcquireOption { return func(o *acquireOpts) { o.lease = d } }

// Manager is an embedded NetLock instance: the switch data-plane model, the
// lock servers, and the control plane, fronted by a synchronous API.
// Manager is safe for concurrent use.
type Manager struct {
	cfg   Config
	clock func() int64

	mu      sync.Mutex
	mgr     *core.Manager
	waiters map[waiterKey]chan wire.Header
	nextTxn uint64
	closed  bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

type waiterKey struct {
	lock uint32
	txn  uint64
}

// New builds a Manager. Background loops (lease sweep, placement) start
// immediately when configured.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	start := time.Now()
	clock := func() int64 { return int64(time.Since(start)) }
	m := &Manager{
		cfg:     cfg,
		clock:   clock,
		waiters: make(map[waiterKey]chan wire.Header),
		stopCh:  make(chan struct{}),
	}
	m.mgr = core.New(core.Config{
		PauseBusyMoves: true,
		Switch: switchdp.Config{
			MaxLocks:       cfg.MaxSwitchLocks,
			TotalSlots:     cfg.SwitchSlots,
			Priorities:     cfg.Priorities,
			Isolation:      cfg.Isolation,
			DefaultLeaseNs: int64(cfg.DefaultLease),
			Now:            clock,
		},
		Servers: cfg.Servers,
	})
	if cfg.SweepInterval > 0 && cfg.DefaultLease > 0 {
		m.wg.Add(1)
		go m.sweepLoop()
	}
	if cfg.PlacementInterval > 0 {
		m.wg.Add(1)
		go m.placementLoop()
	}
	return m
}

// Close stops the background loops. Outstanding Acquire calls return
// ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.stopCh)
	for k, ch := range m.waiters {
		close(ch)
		delete(m.waiters, k)
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// Grant is a held lock.
type Grant struct {
	m        *Manager
	lockID   uint32
	txnID    uint64
	mode     Mode
	priority uint8
	// Expiry is the lease expiry instant on the manager clock (zero when
	// leasing is disabled).
	Expiry time.Duration
	once   sync.Once
}

// LockID returns the granted lock's ID.
func (g *Grant) LockID() uint32 { return g.lockID }

// Mode returns the granted mode.
func (g *Grant) Mode() Mode { return g.mode }

// Release releases the lock. Safe to call more than once.
func (g *Grant) Release() {
	g.once.Do(func() {
		h := wire.Header{
			Op:       wire.OpRelease,
			Mode:     g.mode.wire(),
			LockID:   g.lockID,
			TxnID:    g.txnID,
			Priority: g.priority,
			ClientIP: localClientIP,
		}
		g.m.mu.Lock()
		defer g.m.mu.Unlock()
		if g.m.closed {
			return
		}
		g.m.inject(&h)
	})
}

var localClientIP = netip.AddrFrom4([4]byte{127, 0, 0, 1})

// Acquire blocks until the lock is granted, the context is cancelled, or
// the manager closes. The returned Grant must be released.
func (m *Manager) Acquire(ctx context.Context, lockID uint32, mode Mode, opts ...AcquireOption) (*Grant, error) {
	var o acquireOpts
	for _, f := range opts {
		f(&o)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.nextTxn++
	txn := m.nextTxn
	h := wire.Header{
		Op:       wire.OpAcquire,
		Mode:     mode.wire(),
		LockID:   lockID,
		TxnID:    txn,
		ClientIP: localClientIP,
		TenantID: o.tenant,
		Priority: o.priority,
		LeaseNs:  int64(o.lease),
	}
	ch := make(chan wire.Header, 1)
	key := waiterKey{lockID, txn}
	m.waiters[key] = ch
	m.inject(&h)
	m.mu.Unlock()

	select {
	case g, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		if g.Op == wire.OpReject {
			return nil, ErrQuotaExceeded
		}
		return &Grant{
			m:        m,
			lockID:   lockID,
			txnID:    txn,
			mode:     mode,
			priority: o.priority,
			Expiry:   time.Duration(g.LeaseNs),
		}, nil
	case <-ctx.Done():
		m.mu.Lock()
		delete(m.waiters, key)
		m.mu.Unlock()
		// The request may still be queued or granted inside the data
		// plane; the lease sweep reclaims it. A context with no deadline
		// and no lease would leak the slot, so surface that in the error.
		return nil, fmt.Errorf("netlock: acquire lock %d: %w", lockID, ctx.Err())
	}
}

// inject routes a packet through the switch (and onward to servers) until
// all resulting deliveries settle. Caller holds m.mu.
func (m *Manager) inject(h *wire.Header) {
	emits, _ := m.mgr.Switch().ProcessPacket(h)
	// Copy: the emit slice is reused by the next ProcessPacket call.
	pending := make([]switchdp.Emit, len(emits))
	copy(pending, emits)
	for _, e := range pending {
		m.routeSwitchEmit(e)
	}
}

func (m *Manager) routeSwitchEmit(e switchdp.Emit) {
	switch e.Action {
	case switchdp.ActGrant, switchdp.ActFetch:
		m.deliverGrant(e.Hdr)
	case switchdp.ActReject:
		m.deliverGrant(e.Hdr) // waiter inspects Op
	case switchdp.ActForward, switchdp.ActForwardOverflow, switchdp.ActPushNotify:
		srv := m.mgr.Server(m.mgr.ServerFor(e.Hdr.LockID))
		h := e.Hdr
		emits := srv.ProcessPacket(&h)
		pending := make([]lockserver.Emit, len(emits))
		copy(pending, emits)
		for _, se := range pending {
			m.routeServerEmit(se)
		}
	}
}

func (m *Manager) routeServerEmit(e lockserver.Emit) {
	switch e.Action {
	case lockserver.ActGrant, lockserver.ActFetch:
		m.deliverGrant(e.Hdr)
	case lockserver.ActPush:
		h := e.Hdr
		m.inject(&h)
	}
}

// deliverGrant completes a waiting Acquire. Caller holds m.mu.
func (m *Manager) deliverGrant(h wire.Header) {
	key := waiterKey{h.LockID, h.TxnID}
	ch, ok := m.waiters[key]
	if !ok {
		return // cancelled or duplicate; the lease sweep reclaims the slot
	}
	delete(m.waiters, key)
	ch <- h
}

// SetTenantQuota configures tenant t's request quota: a sustained rate per
// second and a burst allowance (performance isolation, §4.4). Requires
// Config.Isolation.
func (m *Manager) SetTenantQuota(t uint8, perSec float64, burst float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mgr.Switch().CtrlSetTenantQuota(t, perSec, burst)
}

// PlacementTick runs one round of the memory-management loop: close the
// measurement window, compute the optimal allocation, and migrate drained
// locks between switch and servers. It reports how many locks moved.
func (m *Manager) PlacementTick(window time.Duration) (installed, removed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, 0
	}
	demands := m.mgr.MeasureDemands(window.Seconds())
	rep := m.mgr.Reallocate(demands, nil)
	for _, e := range rep.Emits {
		m.routeServerEmit(e)
	}
	for i := range rep.SwitchPushes {
		m.inject(&rep.SwitchPushes[i])
	}
	return len(rep.Installed), len(rep.Removed)
}

// Stats is a snapshot of processing counters across the instance.
type Stats struct {
	Switch  switchdp.Stats
	Servers []lockserver.Stats
	// SwitchResidentLocks is the number of locks currently placed in the
	// switch.
	SwitchResidentLocks int
	// SwitchFreeSlots is the unallocated shared-queue capacity.
	SwitchFreeSlots uint64
}

// Stats returns a snapshot of the instance's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Switch:              m.mgr.Switch().Stats(),
		SwitchResidentLocks: len(m.mgr.Switch().CtrlResidentLocks()),
		SwitchFreeSlots:     m.mgr.FreeSlots(),
	}
	for i := 0; i < m.mgr.NumServers(); i++ {
		st.Servers = append(st.Servers, m.mgr.Server(i).Stats())
	}
	return st
}

// FailSwitch simulates a switch failure: all data-plane state is lost and
// held locks are only reclaimed by lease expiry. Exposed for failure
// testing (the paper's §6.5 experiment; see examples/failover).
func (m *Manager) FailSwitch() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mgr.FailSwitch()
}

// RestartSwitch reactivates a failed switch: the control plane reinstalls
// the lock table with empty queues.
func (m *Manager) RestartSwitch() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mgr.RestartSwitch()
}

// SwitchFailed reports whether the switch is in the failed state.
func (m *Manager) SwitchFailed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mgr.SwitchFailed()
}

func (m *Manager) sweepLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			m.mu.Lock()
			if !m.closed {
				rels, emits := m.mgr.SweepLeases(m.clock())
				for i := range rels {
					m.inject(&rels[i])
				}
				for _, e := range emits {
					m.routeServerEmit(e)
				}
				for _, h := range m.mgr.SweepStranded() {
					srv := m.mgr.Server(m.mgr.ServerFor(h.LockID))
					hh := h
					for _, e := range srv.ProcessPacket(&hh) {
						m.routeServerEmit(e)
					}
				}
			}
			m.mu.Unlock()
		}
	}
}

func (m *Manager) placementLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.PlacementInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			m.PlacementTick(m.cfg.PlacementInterval)
		}
	}
}
