package netlock

import (
	"context"
	"errors"
	"testing"
	"time"

	"netlock/internal/check"
)

// blockingAdapter maps the public Acquire/Release API onto the concurrent
// chaos driver's BlockingSystem surface.
type blockingAdapter struct{ m *Manager }

func (a blockingAdapter) Acquire(lock uint32, excl bool, prio uint8) (func(), error) {
	mode := Shared
	if excl {
		mode = Exclusive
	}
	g, err := a.m.Acquire(context.Background(), lock, mode, WithPriority(prio))
	if err != nil {
		return nil, err
	}
	return g.Release, nil
}

// TestConcurrentChaosShardedManager runs the reconstructed-trace
// mutual-exclusion check against the sharded manager from many client
// goroutines: single shard, multiple shards, and multiple shards with
// priorities. Replay a failure with the printed -netlock.seed flag.
func TestConcurrentChaosShardedManager(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"1shard", Config{Shards: 1, Servers: 2}},
		{"4shard", Config{Shards: 4, Servers: 2}},
		{"4shard-prio", Config{Shards: 4, Servers: 2, Priorities: 4}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range check.SeedsN(3) {
				lm := New(tc.cfg)
				ccfg := check.DefaultConcurrentCfg()
				if tc.cfg.Priorities > 1 {
					ccfg.Priorities = tc.cfg.Priorities
				}
				check.RunConcurrent(t, blockingAdapter{lm}, ccfg, seed)
				lm.Close()
			}
		})
	}
}

// TestConcurrentChaosWithControlLoops runs the same check while the
// background lease sweep and placement loop tick underneath the traffic, so
// lock migration between switch and servers happens mid-stream. The lease
// is long enough that no hold expires while its observer still counts it.
func TestConcurrentChaosWithControlLoops(t *testing.T) {
	for _, seed := range check.SeedsN(2) {
		lm := New(Config{
			Shards:            4,
			Servers:           2,
			DefaultLease:      30 * time.Second,
			SweepInterval:     time.Millisecond,
			PlacementInterval: time.Millisecond,
		})
		check.RunConcurrent(t, blockingAdapter{lm}, check.DefaultConcurrentCfg(), seed)
		lm.Close()
	}
}

// TestCloseDuringInflightAcquires closes the manager while acquirers on
// every shard are blocked behind held locks; all of them must return
// ErrClosed, and releases arriving after Close must be harmless no-ops.
func TestCloseDuringInflightAcquires(t *testing.T) {
	lm := New(Config{Shards: 4, Servers: 2})
	ctx := context.Background()

	// One holder per shard, then two blocked waiters behind each.
	const locks = 4
	holders := make([]*Grant, 0, locks)
	for l := uint32(1); l <= locks; l++ {
		g, err := lm.Acquire(ctx, l, Exclusive)
		if err != nil {
			t.Fatal(err)
		}
		holders = append(holders, g)
	}
	errCh := make(chan error, locks*2)
	for l := uint32(1); l <= locks; l++ {
		for w := 0; w < 2; w++ {
			go func(l uint32) {
				_, err := lm.Acquire(ctx, l, Exclusive)
				errCh <- err
			}(l)
		}
	}
	// Let the waiters queue up inside the data plane (switch or server,
	// depending on where each lock is resident).
	queued := func() uint64 {
		st := lm.Stats()
		n := st.Switch.Queued
		for _, s := range st.Servers {
			n += s.Queued
		}
		return n
	}
	deadline := time.After(2 * time.Second)
	for queued() < locks*2 {
		select {
		case <-deadline:
			t.Fatalf("waiters did not queue (queued=%d)", queued())
		case <-time.After(time.Millisecond):
		}
	}

	lm.Close()
	for i := 0; i < locks*2; i++ {
		if err := <-errCh; !errors.Is(err, ErrClosed) {
			t.Fatalf("waiter %d: got %v, want ErrClosed", i, err)
		}
	}
	// Held grants released after Close must not panic or deadlock.
	for _, g := range holders {
		g.Release()
	}
	if _, err := lm.Acquire(ctx, 1, Shared); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: got %v, want ErrClosed", err)
	}
}

// TestPlacementTickDuringInflightAcquires hammers PlacementTick from one
// goroutine while clients acquire and release across every shard: lock
// migration must never strand a blocked acquirer or break exclusivity.
func TestPlacementTickDuringInflightAcquires(t *testing.T) {
	lm := New(Config{Shards: 4, Servers: 2})
	defer lm.Close()
	ctx := context.Background()

	stop := make(chan struct{})
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		for {
			select {
			case <-stop:
				return
			default:
				lm.PlacementTick(time.Millisecond)
			}
		}
	}()

	const clients = 6
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			for i := 0; i < 300; i++ {
				lock := uint32(i%8 + 1)
				g, err := lm.Acquire(ctx, lock, Exclusive)
				if err != nil {
					errCh <- err
					return
				}
				g.Release()
			}
			errCh <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-tickerDone
}
