module netlock

go 1.22
