package netlock

import (
	"context"
	"testing"
	"time"

	"netlock/internal/obs"
)

// The embedded hot path must be allocation-free at steady state: once a
// lock is switch-resident and the pools are warm, an uncontended
// acquire+release pair performs zero heap allocations. This is the
// regression gate for the pooled grants, pooled waiter channels, reusable
// emit stacks, and the closure-free data-plane programs underneath.
func TestSteadyStateAcquireReleaseAllocFree(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "1shard", 4: "4shard"}[shards], func(t *testing.T) {
			testSteadyStateAllocFree(t, Config{Servers: 1, Shards: shards})
		})
	}
}

// The gate holds with the observability layer on: atomic counters and the
// striped histograms record without heap allocations, so enabling
// Config.Metrics must not cost allocs on the steady-state path.
func TestSteadyStateAllocFreeWithMetrics(t *testing.T) {
	testSteadyStateAllocFree(t, Config{Servers: 1, Shards: 1, Metrics: true})
}

// The gate holds with the online rebalancer enabled: the planner reads the
// same demand gauges placement already records, so wiring the loop
// (Config.RebalanceInterval) must not add a single alloc to the
// steady-state path. The interval is set far beyond the test's lifetime:
// the loop is live but idle, so the measurement sees only the hot path.
func TestSteadyStateAllocFreeWithRebalancer(t *testing.T) {
	testSteadyStateAllocFree(t, Config{Servers: 1, Shards: 1, RebalanceInterval: time.Hour})
}

func testSteadyStateAllocFree(t *testing.T, cfg Config) {
	lm := New(cfg)
	defer lm.Close()
	ctx := context.Background()

	// Warm: make lock 1 hot so placement installs it in the
	// switch, then cycle enough to fill every pool and grow the
	// emit scratch stacks to their steady size.
	for i := 0; i < 100; i++ {
		g, err := lm.Acquire(ctx, 1, Exclusive)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	lm.PlacementTick(1)
	if st := lm.Stats(); st.SwitchResidentLocks == 0 {
		t.Fatal("warmup did not make the lock switch-resident")
	}
	for i := 0; i < 100; i++ {
		g, err := lm.Acquire(ctx, 1, Exclusive)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	}

	var acqErr error
	allocs := testing.AllocsPerRun(500, func() {
		g, err := lm.Acquire(ctx, 1, Exclusive)
		if err != nil {
			acqErr = err
			return
		}
		g.Release()
	})
	if acqErr != nil {
		t.Fatal(acqErr)
	}
	if allocs != 0 {
		t.Fatalf("steady-state acquire+release allocates %v allocs/op, want 0", allocs)
	}
	if cfg.Metrics {
		sn := lm.Metrics()
		if sn.Counter(obs.CtrAcquires) == 0 || sn.Counter(obs.CtrGrants) == 0 {
			t.Fatal("metrics-enabled run recorded no acquires/grants")
		}
		if sn.Stage(obs.StageAcquireE2E).Count() == 0 {
			t.Fatal("metrics-enabled run recorded no end-to-end latency samples")
		}
	}
}
