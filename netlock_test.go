package netlock

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAcquireReleaseExclusive(t *testing.T) {
	m := New(Config{Servers: 1})
	defer m.Close()
	ctx := context.Background()
	g, err := m.Acquire(ctx, 1, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	if g.LockID() != 1 || g.Mode() != Exclusive {
		t.Fatalf("grant fields wrong: %+v", g)
	}
	g.Release()
	g.Release() // idempotent
	// Lock is free again.
	g2, err := m.Acquire(ctx, 1, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	g2.Release()
}

func TestExclusiveBlocksUntilRelease(t *testing.T) {
	m := New(Config{Servers: 1})
	defer m.Close()
	ctx := context.Background()
	g1, err := m.Acquire(ctx, 7, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	var granted atomic.Bool
	done := make(chan struct{})
	go func() {
		g2, err := m.Acquire(ctx, 7, Exclusive)
		if err != nil {
			t.Error(err)
			close(done)
			return
		}
		granted.Store(true)
		g2.Release()
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	if granted.Load() {
		t.Fatalf("second exclusive granted while first held")
	}
	g1.Release()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("waiter not granted after release")
	}
}

func TestSharedConcurrentHolders(t *testing.T) {
	m := New(Config{Servers: 1})
	defer m.Close()
	ctx := context.Background()
	var grants []*Grant
	for i := 0; i < 10; i++ {
		g, err := m.Acquire(ctx, 3, Shared)
		if err != nil {
			t.Fatal(err)
		}
		grants = append(grants, g)
	}
	for _, g := range grants {
		g.Release()
	}
}

func TestFIFOOrderUnderContention(t *testing.T) {
	m := New(Config{Servers: 1})
	defer m.Close()
	ctx := context.Background()
	g, err := m.Acquire(ctx, 5, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			gi, err := m.Acquire(ctx, 5, Exclusive)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			gi.Release()
		}()
		// Serialize submission so FIFO order is well-defined.
		time.Sleep(10 * time.Millisecond)
	}
	g.Release()
	wg.Wait()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("FCFS violated: %v", order)
		}
	}
}

func TestManyLocksConcurrently(t *testing.T) {
	m := New(Config{Servers: 2})
	defer m.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	var completed atomic.Int64
	for w := 0; w < 16; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := uint32(w*31+i) % 97
				g, err := m.Acquire(ctx, id, Exclusive)
				if err != nil {
					t.Error(err)
					return
				}
				g.Release()
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	if completed.Load() != 16*200 {
		t.Fatalf("completed = %d", completed.Load())
	}
}

func TestTenantQuota(t *testing.T) {
	m := New(Config{Servers: 1, Isolation: true})
	defer m.Close()
	m.SetTenantQuota(1, 10, 2)
	ctx := context.Background()
	// Burst of 2 succeeds; the third is rejected.
	g1, err := m.Acquire(ctx, 1, Shared, WithTenant(1))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.Acquire(ctx, 2, Shared, WithTenant(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Acquire(ctx, 3, Shared, WithTenant(1))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	g1.Release()
	g2.Release()
	// Unconfigured tenants are rejected outright under isolation.
	if _, err := m.Acquire(ctx, 4, Shared, WithTenant(9)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("unconfigured tenant should be rejected, got %v", err)
	}
}

func TestPriorityGrant(t *testing.T) {
	m := New(Config{Servers: 1, Priorities: 2})
	defer m.Close()
	ctx := context.Background()
	g, err := m.Acquire(ctx, 9, Exclusive, WithPriority(1))
	if err != nil {
		t.Fatal(err)
	}
	var firstGranted atomic.Int32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		gl, err := m.Acquire(ctx, 9, Exclusive, WithPriority(1))
		if err != nil {
			t.Error(err)
			return
		}
		firstGranted.CompareAndSwap(0, 1)
		gl.Release()
	}()
	time.Sleep(20 * time.Millisecond)
	go func() {
		defer wg.Done()
		gh, err := m.Acquire(ctx, 9, Exclusive, WithPriority(0))
		if err != nil {
			t.Error(err)
			return
		}
		firstGranted.CompareAndSwap(0, 2)
		gh.Release()
	}()
	time.Sleep(20 * time.Millisecond)
	g.Release()
	wg.Wait()
	if firstGranted.Load() != 2 {
		t.Fatalf("high-priority waiter should be granted first")
	}
}

func TestLeaseExpiryReclaimsLock(t *testing.T) {
	m := New(Config{
		Servers:       1,
		DefaultLease:  30 * time.Millisecond,
		SweepInterval: 5 * time.Millisecond,
	})
	defer m.Close()
	ctx := context.Background()
	g, err := m.Acquire(ctx, 11, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	_ = g // holder "crashes": never releases
	// A second acquire succeeds once the lease expires.
	ctx2, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	g2, err := m.Acquire(ctx2, 11, Exclusive)
	if err != nil {
		t.Fatalf("lease did not reclaim the lock: %v", err)
	}
	g2.Release()
}

func TestContextCancellation(t *testing.T) {
	// The lease is long so the cancellation fires first.
	m := New(Config{Servers: 1, DefaultLease: time.Second, SweepInterval: 5 * time.Millisecond})
	defer m.Close()
	ctx := context.Background()
	g, err := m.Acquire(ctx, 13, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	_, err = m.Acquire(cctx, 13, Exclusive)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	g.Release()
}

func TestPlacementTickMovesHotLocks(t *testing.T) {
	m := New(Config{Servers: 1})
	defer m.Close()
	ctx := context.Background()
	// Generate traffic on a few locks (served by the lock server first:
	// new locks start server-owned, §4.3).
	for i := 0; i < 50; i++ {
		g, err := m.Acquire(ctx, uint32(i%5)+1, Exclusive)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	before := m.Stats().SwitchResidentLocks
	installed, _ := m.PlacementTick(time.Second)
	if installed == 0 {
		t.Fatalf("placement should move hot locks to the switch")
	}
	after := m.Stats().SwitchResidentLocks
	if after <= before {
		t.Fatalf("resident locks: %d -> %d", before, after)
	}
	// Subsequent requests are switch-processed.
	pre := m.Stats().Switch.GrantsImmediate
	g, err := m.Acquire(ctx, 1, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	if m.Stats().Switch.GrantsImmediate != pre+1 {
		t.Fatalf("hot lock not switch-processed")
	}
}

func TestFailoverWithLeases(t *testing.T) {
	m := New(Config{
		Servers:       1,
		DefaultLease:  30 * time.Millisecond,
		SweepInterval: 5 * time.Millisecond,
	})
	defer m.Close()
	ctx := context.Background()
	// Put a hot lock in the switch.
	for i := 0; i < 10; i++ {
		g, _ := m.Acquire(ctx, 1, Exclusive)
		g.Release()
	}
	m.PlacementTick(time.Second)
	g, err := m.Acquire(ctx, 1, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	// Switch fails and restarts: state is gone, the held grant is stale.
	m.FailSwitch()
	if !m.SwitchFailed() {
		t.Fatalf("switch should be failed")
	}
	m.RestartSwitch()
	// A new acquire succeeds against the reinstalled (empty) lock table.
	ctx2, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	g2, err := m.Acquire(ctx2, 1, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	g2.Release()
	_ = g // stale grant; its release is a harmless no-op on the new state
	g.Release()
}

func TestCloseUnblocksWaiters(t *testing.T) {
	m := New(Config{Servers: 1})
	ctx := context.Background()
	g, err := m.Acquire(ctx, 21, Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	errCh := make(chan error, 1)
	go func() {
		_, err := m.Acquire(ctx, 21, Exclusive)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	m.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("close did not unblock waiter")
	}
	if _, err := m.Acquire(ctx, 1, Shared); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close = %v", err)
	}
	m.Close() // idempotent
}

func TestStatsSnapshot(t *testing.T) {
	m := New(Config{Servers: 3})
	defer m.Close()
	g, _ := m.Acquire(context.Background(), 1, Shared)
	g.Release()
	st := m.Stats()
	if len(st.Servers) != 3 {
		t.Fatalf("server stats = %d, want 3", len(st.Servers))
	}
	if st.SwitchFreeSlots == 0 {
		t.Fatalf("free slots should be positive")
	}
}

func TestModeString(t *testing.T) {
	if Shared.String() != "shared" || Exclusive.String() != "exclusive" {
		t.Fatalf("mode strings wrong")
	}
}

func TestWithLeaseExpiry(t *testing.T) {
	m := New(Config{Servers: 1, DefaultLease: time.Hour, SweepInterval: 5 * time.Millisecond})
	defer m.Close()
	ctx := context.Background()
	g, err := m.Acquire(ctx, 31, Exclusive, WithLease(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if g.Expiry <= 0 || g.Expiry > time.Minute {
		t.Fatalf("expiry = %v, want ~50ms from start", g.Expiry)
	}
	// The per-acquire lease (50ms), not the default (1h), governs: a
	// second acquire succeeds well within the hour.
	ctx2, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	g2, err := m.Acquire(ctx2, 31, Exclusive)
	if err != nil {
		t.Fatalf("short lease not honored: %v", err)
	}
	g2.Release()
}

func TestPriorityOnServerOwnedLock(t *testing.T) {
	// Priorities apply on the server path too (lock never placed in the
	// switch here).
	m := New(Config{Servers: 1, Priorities: 2})
	defer m.Close()
	ctx := context.Background()
	g, err := m.Acquire(ctx, 77, Exclusive, WithPriority(1))
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		gl, _ := m.Acquire(ctx, 77, Exclusive, WithPriority(1))
		order <- 1
		gl.Release()
	}()
	time.Sleep(20 * time.Millisecond)
	go func() {
		defer wg.Done()
		gh, _ := m.Acquire(ctx, 77, Exclusive, WithPriority(0))
		order <- 0
		gh.Release()
	}()
	time.Sleep(20 * time.Millisecond)
	g.Release()
	wg.Wait()
	if first := <-order; first != 0 {
		t.Fatalf("high priority should be served first on the server path")
	}
}
