// Package ctrlplane is the rack-level control plane: the Topology builder
// assembles a NetLock rack — lock servers, a switch chain of 1-3 replicas,
// clients — on any transport.Network, and the Controller performs the
// runtime reconfigurations NetChain-style replication needs (§4.6 of the
// paper sketches switch failover; DESIGN.md §12 details our protocol):
// failing a member, re-fencing the survivors under a new epoch, healing
// replication gaps, and re-pointing the lock servers at the new head.
//
// Every rack consumer — conformance tests, scenario planes, benchmarks,
// the daemons — builds through Topology, so chain wiring decisions
// (replica roles, meter placement, reliable in-rack links, epoch numbers)
// live here exactly once.
package ctrlplane

import (
	"fmt"
	"sync"

	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

// Controller drives a live switch chain. It is the reconfiguration
// authority: it owns the epoch counter, and members only change roles
// through it. Safe for concurrent use.
type Controller struct {
	mu          sync.Mutex
	members     []*transport.Switch // index 0 is the head, last is the tail
	servers     []*transport.Server
	epoch       uint64
	meterAtHead bool

	// regions tracks every switch-resident lock's queue regions (one per
	// bank). The controller is the only region allocator on a live rack —
	// InstallLock and the live-move entry points (migrate.go) keep it
	// current — so free-space scans for promotions read it instead of the
	// data planes.
	regions map[uint32][]switchdp.Region
	// redirect maps a drained server's index to the server that absorbed
	// its locks; ServerIndexFor follows the chain. Mirrors the send-side
	// redirect installed on every chain member.
	redirect map[int]int
}

// NewController wires members (head first) into a chain at epoch 1 and
// points every server at the head. A single member degenerates to an
// unreplicated switch.
func NewController(members []*transport.Switch, servers []*transport.Server, meterAtHead bool) (*Controller, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ctrlplane: chain needs at least one switch")
	}
	c := &Controller{
		members:     append([]*transport.Switch(nil), members...),
		servers:     append([]*transport.Server(nil), servers...),
		epoch:       1,
		meterAtHead: meterAtHead && len(members) > 1,
		regions:     make(map[uint32][]switchdp.Region),
		redirect:    make(map[int]int),
	}
	if c.meterAtHead {
		// Quota decisions consult the wall clock, so replicas metering
		// independently would diverge: bypass the in-pipeline meter on
		// every member and let the head (whoever that is after any
		// reconfiguration) meter once at ingress.
		for _, m := range c.members {
			m.WithDataPlane(func(dp *switchdp.Switch) {
				dp.CtrlSetMeterBypass(true)
			})
		}
	}
	if err := c.reconfigure(); err != nil {
		return nil, err
	}
	return c, nil
}

// Epoch returns the current chain epoch.
func (c *Controller) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Head returns the current head member.
func (c *Controller) Head() *transport.Switch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.members[0]
}

// Members returns the live members, head first.
func (c *Controller) Members() []*transport.Switch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*transport.Switch(nil), c.members...)
}

// Addrs returns the live members' addresses, head first — the list a
// multi-address client should be configured with.
func (c *Controller) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addrsLocked()
}

func (c *Controller) addrsLocked() []string {
	addrs := make([]string, len(c.members))
	for i, m := range c.members {
		addrs[i] = m.Addr()
	}
	return addrs
}

// Fail removes member i from the chain: the member is closed, the epoch
// advances, and the survivors are re-fenced. Failing the last member is
// refused — a chain cannot shrink to nothing.
func (c *Controller) Fail(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.members) {
		return fmt.Errorf("ctrlplane: fail member %d of %d", i, len(c.members))
	}
	if len(c.members) == 1 {
		return fmt.Errorf("ctrlplane: cannot fail the last chain member")
	}
	c.members[i].Close()
	c.members = append(c.members[:i], c.members[i+1:]...)
	c.epoch++
	return c.reconfigure()
}

// FailHead fails member 0, the common switch-failure drill: the next
// member is promoted and announces the new epoch to in-flight clients.
func (c *Controller) FailHead() error { return c.Fail(0) }

// reconfigure pushes the current membership to every member under the
// current epoch, heals replication gaps between adjacent members, and
// re-points the lock servers at the head. Caller holds c.mu.
func (c *Controller) reconfigure() error {
	addrs := c.addrsLocked()
	last := len(c.members) - 1
	// Roles are pushed tail-first: a member only forwards to a successor
	// already fenced to the new epoch, so nothing sequenced during the
	// push is dropped by a stale successor.
	for i := last; i >= 0; i-- {
		r := transport.ChainRole{
			Epoch:       c.epoch,
			Head:        i == 0,
			Tail:        i == last,
			MeterAtHead: c.meterAtHead,
		}
		if i < last {
			r.Succ = addrs[i+1]
		}
		if i > 0 {
			r.HeadAddr = addrs[0]
		}
		for j, a := range addrs {
			if j != i {
				r.Peers = append(r.Peers, a)
			}
		}
		if err := c.members[i].ChainConfigure(r); err != nil {
			return err
		}
	}
	// Heal gaps front to back: each member replays its log past the
	// successor's applied prefix, so ops sequenced under the old epoch but
	// not yet fully propagated reach every survivor.
	for i := 0; i < last; i++ {
		succ := c.members[i+1].ChainStatus()
		c.members[i].ChainReplay(succ.Applied)
	}
	for _, srv := range c.servers {
		if err := srv.SetSwitchAddr(addrs[0]); err != nil {
			return err
		}
	}
	return nil
}

// InstallLock makes lockID switch-resident chain-wide: the regions are
// installed in every member's data plane (each replica must be able to
// apply the same op stream) and the owning lock server releases
// ownership.
func (c *Controller) InstallLock(lockID uint32, regions []switchdp.Region) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	for _, m := range c.members {
		m.WithDataPlane(func(dp *switchdp.Switch) {
			if e := dp.CtrlInstallLock(lockID, regions); e != nil && err == nil {
				err = e
			}
		})
	}
	if err != nil {
		return err
	}
	c.regions[lockID] = append([]switchdp.Region(nil), regions...)
	if len(c.servers) > 0 {
		srv := c.servers[c.serverIndexForLocked(lockID)]
		srv.WithLockServer(func(ls *lockserver.Server) {
			err = ls.CtrlReleaseOwnership(lockID)
		})
	}
	return err
}

// SetTenantQuota configures one tenant's quota chain-wide. With the meter
// at the head (replicated chains) the tokens are consumed at ingress; the
// per-member data planes still receive the rate so a promoted head
// inherits it.
func (c *Controller) SetTenantQuota(tenant uint8, perSec, burst float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setTenantQuotaLocked(tenant, perSec, burst)
}

func (c *Controller) setTenantQuotaLocked(tenant uint8, perSec, burst float64) {
	for _, m := range c.members {
		m.WithDataPlane(func(dp *switchdp.Switch) {
			dp.CtrlSetTenantQuota(tenant, perSec, burst)
		})
	}
}

// ApplyPolicy pushes a batch of per-tenant quota caps through the chain as
// one epoch-fenced update: the whole batch is validated first, then lands
// on every member — including the head's ingress meter — while the
// reconfiguration lock is held, so no failover (which serializes on the
// same lock and advances the epoch) can interleave a member between old
// and new caps. The epoch the batch applied under is returned, so callers
// can correlate a mid-run quota cut against their traces and obs counters.
func (c *Controller) ApplyPolicy(quotas []TenantQuota) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, q := range quotas {
		// The data-plane meter rejects these configurations by panicking;
		// validate the whole batch before any member sees any of it, so a
		// bad policy cannot land half-applied.
		if q.PerSec < 0 || q.Burst <= 0 {
			return c.epoch, fmt.Errorf("ctrlplane: invalid quota for tenant %d: %g/s burst %g", q.Tenant, q.PerSec, q.Burst)
		}
	}
	for _, q := range quotas {
		c.setTenantQuotaLocked(q.Tenant, q.PerSec, q.Burst)
	}
	return c.epoch, nil
}
