package ctrlplane

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"netlock"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
	"netlock/internal/wire"
)

const timeout = 10 * time.Second

func dpConfig() switchdp.Config {
	return switchdp.Config{MaxLocks: 64, TotalSlots: 256, Priorities: 1}
}

func topo(t *testing.T, cfg Config) *Topology {
	t.Helper()
	if cfg.DataPlane.MaxLocks == 0 {
		cfg.DataPlane = dpConfig()
	}
	tp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tp.Close)
	return tp
}

func fastClient(t *testing.T, tp *Topology) *transport.Client {
	t.Helper()
	c, err := tp.NewClient(transport.ClientConfig{RetryInterval: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func acquire(t *testing.T, c *transport.Client, lockID uint32) *transport.Grant {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	g, err := c.Acquire(ctx, lockID, netlock.Exclusive)
	if err != nil {
		t.Fatalf("acquire %d: %v", lockID, err)
	}
	return g
}

// TestTopologySingleSwitch: the degenerate chain behaves like the old
// ad-hoc rack bringup — server path and switch path both work.
func TestTopologySingleSwitch(t *testing.T) {
	tp := topo(t, Config{SwitchLocks: []SwitchLock{{ID: 5, Slots: 8}}})
	c := fastClient(t, tp)
	acquire(t, c, 1).Release() // server path
	acquire(t, c, 5).Release() // switch path
	st := tp.Head().Snapshot()
	if st.ResidentLocks != 1 {
		t.Fatalf("want 1 resident lock, got %d", st.ResidentLocks)
	}
}

// TestHeadFailureInflightAcquires: the head dies while a batch of
// contended acquires is in flight; every acquire must still complete
// exactly once through the reconfigured chain.
func TestHeadFailureInflightAcquires(t *testing.T) {
	tp := topo(t, Config{Switches: 3, SwitchLocks: []SwitchLock{{ID: 9, Slots: 16}}})
	c := fastClient(t, tp)

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	var mu sync.Mutex
	order := []int{}
	for i := 0; i < n; i++ {
		i := i
		lock := uint32(9)
		if i%2 == 1 {
			lock = 2 // server path interleaved with switch path
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			g, err := c.Acquire(ctx, lock, netlock.Exclusive)
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			g.Release()
		}()
	}
	time.Sleep(5 * time.Millisecond) // let some acquires enter the chain
	if err := tp.Controller().FailHead(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("acquire %d across head failure: %v", i, err)
		}
	}
	if len(order) != n {
		t.Fatalf("%d of %d acquires granted", len(order), n)
	}
	if got := tp.Controller().Epoch(); got != 2 {
		t.Fatalf("epoch after one failure = %d, want 2", got)
	}
}

// TestMidFailureUnderTraffic: a middle chain member dies; replication
// re-stitches around it without client-visible effect.
func TestMidFailureUnderTraffic(t *testing.T) {
	tp := topo(t, Config{Switches: 3})
	c := fastClient(t, tp)

	g := acquire(t, c, 3)
	if err := tp.Controller().Fail(1); err != nil {
		t.Fatal(err)
	}
	// The survivors must agree on the applied prefix after healing.
	g.Release()
	acquire(t, c, 3).Release()
	mems := tp.Switches()
	if len(mems) != 2 {
		t.Fatalf("want 2 survivors, got %d", len(mems))
	}
	deadline := time.Now().Add(timeout)
	for {
		a, b := mems[0].ChainStatus(), mems[1].ChainStatus()
		if a.Applied == b.Applied && a.LogLen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors diverged: head %+v tail %+v", a, b)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTailFailureGrantCache: the tail dies while a grant is outstanding;
// the surviving members' replicated grant cache must answer the release
// (and a retransmitted acquire) under the new epoch.
func TestTailFailureGrantCache(t *testing.T) {
	tp := topo(t, Config{Switches: 3, SwitchLocks: []SwitchLock{{ID: 7, Slots: 8}}})
	c := fastClient(t, tp)

	g := acquire(t, c, 7)
	if err := tp.Controller().Fail(2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := g.ReleaseWait(ctx); err != nil {
		t.Fatalf("release after tail failure: %v", err)
	}
	// The lock must be free again on the survivors.
	acquire(t, c, 7).Release()
}

// TestNoDuplicateGrantAcrossEpoch: client A's grant datagrams are
// suppressed so A is still retransmitting its acquire when the head
// dies. After promotion A's retransmit must be answered from the
// replicated grant cache — NOT re-granted through the data plane — so
// contender B stays queued until A releases.
func TestNoDuplicateGrantAcrossEpoch(t *testing.T) {
	chaos := &transport.ChaosConfig{Seed: 42}
	tp := topo(t, Config{Switches: 2, Chaos: chaos, SwitchLocks: []SwitchLock{{ID: 11, Slots: 8}}})
	a := fastClient(t, tp)
	b := fastClient(t, tp)

	// Drop every grant for lock 11 until the epoch changes.
	var dropped sync.Map
	tp.Chaos().SetFilter(func(data []byte, from, to netip.AddrPort) bool {
		for _, h := range decodeOps(data) {
			if h.Op == wire.OpGrant && h.LockID == 11 {
				dropped.Store(to, true)
				return true
			}
		}
		return false
	})

	actx, acancel := context.WithTimeout(context.Background(), timeout)
	defer acancel()
	aAcq, err := a.AcquireAsync(actx, 11, netlock.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until at least one grant was produced and suppressed: the data
	// plane has committed the grant to A even though A never saw it.
	deadline := time.Now().Add(timeout)
	for {
		n := 0
		dropped.Range(func(any, any) bool { n++; return true })
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("grant was never produced")
		}
		time.Sleep(time.Millisecond)
	}

	// B contends for the same lock; it must queue behind A.
	bctx, bcancel := context.WithTimeout(context.Background(), timeout)
	defer bcancel()
	bAcq, err := b.AcquireAsync(bctx, 11, netlock.Exclusive)
	if err != nil {
		t.Fatal(err)
	}

	tp.Chaos().SetFilter(nil)
	if err := tp.Controller().FailHead(); err != nil {
		t.Fatal(err)
	}

	ga, err := aAcq.Wait(actx)
	if err != nil {
		t.Fatalf("A's suppressed grant not recovered after failover: %v", err)
	}
	// B must NOT hold the lock while A does: its acquire is still pending.
	select {
	case <-time.After(50 * time.Millisecond):
	}
	relCtx, relCancel := context.WithTimeout(context.Background(), timeout)
	defer relCancel()
	if err := ga.ReleaseWait(relCtx); err != nil {
		t.Fatal(err)
	}
	gb, err := bAcq.Wait(bctx)
	if err != nil {
		t.Fatalf("B starved after failover: %v", err)
	}
	gb.Release()
	// Exactly one data-plane grant per txn: A's retransmit after the epoch
	// change must have been served from the replicated cache, so the
	// surviving switch granted exactly twice (A once, B once).
	grants := uint64(0)
	for _, sw := range tp.Switches() {
		st := sw.Snapshot()
		grants += st.Stats.GrantsImmediate + st.Stats.GrantsQueued
	}
	if grants != 2 {
		t.Fatalf("surviving data plane granted %d times, want 2 (one per txn)", grants)
	}
}

// decodeOps splits a datagram into wire headers, unwrapping batch frames;
// non-op frames (chain envelopes) decode to nothing.
func decodeOps(data []byte) []wire.Header {
	var out []wire.Header
	if wire.IsChain(data) {
		return out
	}
	if wire.IsBatch(data) {
		var r wire.BatchReader
		if r.Reset(data) != nil {
			return out
		}
		var h wire.Header
		for {
			ok, err := r.Next(&h)
			if err != nil || !ok {
				return out
			}
			out = append(out, h)
		}
	}
	var h wire.Header
	if h.DecodeFromBytes(data) == nil {
		out = append(out, h)
	}
	return out
}

// TestFailLastMemberRefused: the chain cannot shrink to nothing.
func TestFailLastMemberRefused(t *testing.T) {
	tp := topo(t, Config{Switches: 2})
	if err := tp.Controller().FailHead(); err != nil {
		t.Fatal(err)
	}
	if err := tp.Controller().FailHead(); err == nil {
		t.Fatal("failing the last member should be refused")
	}
}
