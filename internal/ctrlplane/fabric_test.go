package ctrlplane

import (
	"context"
	"errors"
	"testing"
	"time"

	"netlock"
	"netlock/internal/obs"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// TestApplyPolicyQuotaCut drives a mid-run quota cut through ApplyPolicy
// on a replicated chain and pins the exact counters on both sides of the
// cut: with a zero-refill meter, every acquire before the cut is granted
// (burst tokens) and every acquire after it is rejected, no slack in
// either direction.
func TestApplyPolicyQuotaCut(t *testing.T) {
	reg := obs.New(obs.Config{Stripes: 1})
	cfg := Config{Switches: 2}
	cfg.DataPlane = dpConfig()
	cfg.DataPlane.Isolation = true
	cfg.DataPlane.Obs = reg.Stripe(0)
	// Server-path grants are counted in the lock server, switch-resident
	// ones in the data plane; both feed the same registry.
	cfg.Server.Obs = reg.Stripe(0)
	// PerSec 0: the bucket never refills, so admissions count tokens
	// exactly — 4 burst tokens, 4 grants.
	cfg.Quotas = []TenantQuota{{Tenant: 7, PerSec: 0, Burst: 4}}
	tp := topo(t, cfg)
	c := fastClient(t, tp)

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for i := uint32(1); i <= 4; i++ {
		g, err := c.Acquire(ctx, i, netlock.Exclusive, netlock.WithTenant(7))
		if err != nil {
			t.Fatalf("acquire %d within quota: %v", i, err)
		}
		if err := g.ReleaseWait(ctx); err != nil {
			t.Fatal(err)
		}
	}

	epoch, err := tp.Controller().ApplyPolicy([]TenantQuota{{Tenant: 7, PerSec: 0, Burst: 0.5}})
	if err != nil {
		t.Fatalf("ApplyPolicy: %v", err)
	}
	if want := tp.Controller().Epoch(); epoch != want {
		t.Fatalf("policy applied under epoch %d, controller at %d", epoch, want)
	}

	for i := uint32(5); i <= 7; i++ {
		_, err := c.Acquire(ctx, i, netlock.Exclusive, netlock.WithTenant(7))
		if !errors.Is(err, netlock.ErrQuotaExceeded) {
			t.Fatalf("acquire %d after quota cut: %v, want ErrQuotaExceeded", i, err)
		}
	}

	// Exact obs-vs-trace equality: 4 tenant-7 grants, and exactly 3
	// meter rejects on the head (chain mode meters once, at ingress).
	sn := reg.Snapshot()
	if got := sn.TenantGrants[7]; got != 4 {
		t.Fatalf("obs tenant grants = %d, want 4", got)
	}
	if got := sn.Counter(obs.CtrGrants); got != 4 {
		t.Fatalf("obs grants = %d, want 4", got)
	}
	var rejects uint64
	tp.Head().WithDataPlane(func(dp *switchdp.Switch) {
		rejects = dp.Stats().Rejects
	})
	if rejects != 3 {
		t.Fatalf("head meter rejects = %d, want 3", rejects)
	}

	// A bad batch must not land anywhere: the meter panics on burst <= 0,
	// so ApplyPolicy validates the whole batch up front.
	if _, err := tp.Controller().ApplyPolicy([]TenantQuota{{Tenant: 1, Burst: 1}, {Tenant: 2, Burst: 0}}); err == nil {
		t.Fatal("ApplyPolicy accepted a zero-burst quota")
	}
}

// TestShardExportImport moves one shard's live state — a holder, a waiter,
// and a switch-resident lock — from one rack to another and checks both
// sides: the source keeps nothing (no lock ownership, no client-table
// entries for the shard), the destination owns everything with queue order
// and grant status intact.
func TestShardExportImport(t *testing.T) {
	m, err := wire.NewShardMap(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := topo(t, Config{Switches: 2})
	dst := topo(t, Config{Switches: 2})
	src.Controller().SetShardMap(m, 0)
	dst.Controller().SetShardMap(m, 1)

	// A lock on rack 0's side of the map, with live state: one holder and
	// one queued waiter.
	var lock uint32
	for lock = 1; m.RackOf(lock) != 0; lock++ {
	}
	shard := m.ShardOf(lock)
	match := func(id uint32) bool { return m.ShardOf(id) == shard }

	holder := fastClient(t, src)
	g := acquire(t, holder, lock)
	_ = g
	waiter := fastClient(t, src)
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	wa, err := waiter.AcquireAsync(wctx, lock, netlock.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(timeout)
	for src.Head().Snapshot().PendingAcquires == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued at the source head")
		}
		time.Sleep(time.Millisecond)
	}

	src.Controller().SetShardFence(shard, true)
	for !src.Controller().ReleasesDrained(match) {
		time.Sleep(time.Millisecond)
	}
	states, err := src.Controller().ExportShard(match)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].LockID != lock {
		t.Fatalf("exported %d locks, want lock %d alone", len(states), lock)
	}
	if got := states[0].Entries(); got != 2 {
		t.Fatalf("exported %d entries, want holder + waiter", got)
	}

	// Source keeps nothing: no server owns the lock, no client tables.
	for _, srv := range src.Servers() {
		for _, id := range srv.OwnedLocks() {
			if id == lock {
				t.Fatal("source server still owns the exported lock")
			}
		}
	}
	hs := src.Head().Snapshot()
	if hs.TrackedGrants != 0 || hs.PendingAcquires != 0 {
		t.Fatalf("source head still tracks grants=%d pending=%d", hs.TrackedGrants, hs.PendingAcquires)
	}

	if err := dst.Controller().ImportShard(states); err != nil {
		t.Fatal(err)
	}
	owned := false
	for _, srv := range dst.Servers() {
		for _, id := range srv.OwnedLocks() {
			if id == lock {
				owned = true
			}
		}
	}
	if !owned {
		t.Fatal("destination server does not own the imported lock")
	}
	// The holder's grant entered every destination member's grant cache
	// and the waiter its pending table, so releases and grants complete
	// in the new rack.
	for _, sw := range dst.Switches() {
		s := sw.Snapshot()
		if s.TrackedGrants != 1 || s.PendingAcquires != 1 {
			t.Fatalf("imported client tables: grants=%d pending=%d, want 1/1", s.TrackedGrants, s.PendingAcquires)
		}
	}
	// Unwind the cross-rack limbo before teardown: the clients still point
	// at the source, so their ops cannot complete — cancel the waiter and
	// leave the rest to Close.
	wcancel()
	_, _ = wa.Wait(wctx)
	src.Controller().SetShardFence(shard, false)
}
