package ctrlplane

import (
	"fmt"
	"sort"

	"netlock/internal/lockserver"
	"netlock/internal/memalloc"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

// Rack-level live migration: the controller moves a lock's occupied queue
// state between the switch chain and the lock servers while traffic is
// flowing, and grows or drains the server tier. It is the region
// allocator and the routing authority, so every placement change funnels
// through here; the chain-internal mechanics (sequenced OpMigrate records)
// live in transport, the per-node state surgery in switchdp and
// lockserver.

// MoveReport describes one completed live move, in the shape the scenario
// oracle consumes: which requests crossed the boundary as holders and
// which as waiters, in queue (bank, then FIFO) order.
type MoveReport struct {
	LockID   uint32
	ToSwitch bool
	Granted  []uint64
	Waiting  []uint64
}

// Entries returns the number of requests that crossed with the move.
func (r *MoveReport) Entries() int { return len(r.Granted) + len(r.Waiting) }

// serverIndexForLocked resolves a lock's home server, following drain
// redirects. Caller holds c.mu.
func (c *Controller) serverIndexForLocked(lockID uint32) int {
	i := lockserver.RSSCore(lockID, len(c.servers))
	for n := 0; n < len(c.servers); n++ {
		t, ok := c.redirect[i]
		if !ok {
			return i
		}
		i = t
	}
	return i
}

// ServerIndexFor resolves a lock's home server index, drain redirects
// applied.
func (c *Controller) ServerIndexFor(lockID uint32) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serverIndexForLocked(lockID)
}

// ResidentLocks returns the switch-resident lock IDs, ascending.
func (c *Controller) ResidentLocks() []uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint32, 0, len(c.regions))
	for id := range c.regions {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Placement returns each switch-resident lock's total slot count across
// banks — the "current" input to memalloc.Resolve.
func (c *Controller) Placement() map[uint32]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint32]uint64, len(c.regions))
	for id, regs := range c.regions {
		var n uint64
		for _, r := range regs {
			n += r.Right - r.Left
		}
		out[id] = n
	}
	return out
}

// SwitchCapacity returns the chain's total queue-slot capacity.
func (c *Controller) SwitchCapacity() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	banks, bankSlots := c.bankGeometryLocked()
	return uint64(banks) * bankSlots
}

func (c *Controller) bankGeometryLocked() (int, uint64) {
	var banks, slots int
	c.members[0].WithDataPlane(func(dp *switchdp.Switch) {
		banks, slots = dp.Banks(), dp.BankSlots()
	})
	return banks, uint64(slots)
}

// MeasureDemands reads and clears the per-lock load gauges rack-wide (the
// head's switch counters plus every server's) and converts them into
// memalloc demands over the given window, exactly as the embedded plane's
// core.Manager.MeasureDemands does.
func (c *Controller) MeasureDemands(windowSec float64) []memalloc.Demand {
	c.mu.Lock()
	defer c.mu.Unlock()
	if windowSec <= 0 {
		panic("ctrlplane: non-positive measurement window")
	}
	byID := make(map[uint32]*memalloc.Demand)
	c.members[0].WithDataPlane(func(dp *switchdp.Switch) {
		for _, l := range dp.CtrlMeasure() {
			byID[l.LockID] = &memalloc.Demand{
				LockID:     l.LockID,
				Rate:       float64(l.Requests) / windowSec,
				Contention: l.MaxQueue,
			}
		}
	})
	for _, srv := range c.servers {
		srv.WithLockServer(func(ls *lockserver.Server) {
			for _, l := range ls.CtrlMeasure() {
				if d, ok := byID[l.LockID]; ok {
					d.Contention += l.BufferedPeak
					continue
				}
				if !l.Owned {
					continue
				}
				byID[l.LockID] = &memalloc.Demand{
					LockID:     l.LockID,
					Rate:       float64(l.Requests) / windowSec,
					Contention: l.MaxConcurrent,
				}
			}
		})
	}
	out := make([]memalloc.Demand, 0, len(byID))
	for _, d := range byID {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LockID < out[j].LockID })
	return out
}

// allocRegionsLocked finds a free region of the needed size in every bank
// (first fit over the controller's placement records). Caller holds c.mu.
func (c *Controller) allocRegionsLocked(need []uint64) ([]switchdp.Region, error) {
	banks, bankSlots := c.bankGeometryLocked()
	if len(need) != banks {
		return nil, fmt.Errorf("ctrlplane: %d sizes for %d banks", len(need), banks)
	}
	out := make([]switchdp.Region, banks)
	for b := 0; b < banks; b++ {
		var used []switchdp.Region
		for _, regs := range c.regions {
			if b < len(regs) && regs[b].Right > regs[b].Left {
				used = append(used, regs[b])
			}
		}
		sort.Slice(used, func(i, j int) bool { return used[i].Left < used[j].Left })
		cursor := uint64(0)
		placed := false
		for _, u := range used {
			if u.Left >= cursor+need[b] {
				break
			}
			if u.Right > cursor {
				cursor = u.Right
			}
		}
		if cursor+need[b] <= bankSlots {
			out[b] = switchdp.Region{Left: cursor, Right: cursor + need[b]}
			placed = true
		}
		if !placed {
			return nil, fmt.Errorf("ctrlplane: no free region of %d slots in bank %d", need[b], b)
		}
	}
	return out, nil
}

// MoveToServer live-demotes a switch-resident lock to its home lock
// server: the destination is primed (so a racing request bounces instead
// of adopting the lock), the chain exports and evicts the lock at one
// op-stream position, and the state — leases rebased onto the server's
// clock — is installed at the server.
func (c *Controller) MoveToServer(lockID uint32) (MoveReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.regions[lockID]; !ok {
		return MoveReport{}, fmt.Errorf("ctrlplane: lock %d is not switch-resident", lockID)
	}
	if len(c.servers) == 0 {
		return MoveReport{}, fmt.Errorf("ctrlplane: no lock server to demote to")
	}
	srv := c.servers[c.serverIndexForLocked(lockID)]
	srv.PrepareImport(lockID)
	ex, baseNs, err := c.members[0].MigrateDemoteLock(lockID)
	if err != nil {
		return MoveReport{}, err
	}
	rep := MoveReport{LockID: lockID, ToSwitch: false}
	nowNs := srv.NowNs()
	banks := make([][]lockserver.ExportEntry, len(ex.Slots))
	for b := range ex.Slots {
		for _, sl := range ex.Slots[b] {
			h, lease, granted := switchdp.EntryFromSlot(lockID, b, sl)
			if lease != 0 {
				lease = lease - baseNs + nowNs
			}
			banks[b] = append(banks[b], lockserver.ExportEntry{Hdr: h, LeaseNs: lease, Granted: granted})
			if granted {
				rep.Granted = append(rep.Granted, h.TxnID)
			} else {
				rep.Waiting = append(rep.Waiting, h.TxnID)
			}
		}
	}
	if err := srv.ImportLock(lockID, banks); err != nil {
		// The export has left the chain; failing to land it would lose
		// state. Import only fails on shape errors the export cannot have.
		panic(fmt.Sprintf("ctrlplane: demoted state for lock %d rejected by server: %v", lockID, err))
	}
	delete(c.regions, lockID)
	return rep, nil
}

// MoveToSwitch live-promotes a server-owned lock into the switch chain
// with `slots` total queue slots, split across the priority banks as
// core.Manager does (and widened per bank to the live queue depth if
// deeper). The server's state is exported, leases are rebased onto the
// head's clock, regions are allocated from the controller's free map, and
// the chain installs the state at one op-stream position. On any failure
// after the export the state rolls back to the server.
func (c *Controller) MoveToSwitch(lockID uint32, slots uint64) (MoveReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.regions[lockID]; ok {
		return MoveReport{}, fmt.Errorf("ctrlplane: lock %d already switch-resident", lockID)
	}
	if slots == 0 {
		return MoveReport{}, fmt.Errorf("ctrlplane: promotion needs at least one slot")
	}
	if len(c.servers) == 0 {
		return MoveReport{}, fmt.Errorf("ctrlplane: no lock server to promote from")
	}
	srv := c.servers[c.serverIndexForLocked(lockID)]
	ex, err := srv.ExportLock(lockID)
	if err != nil {
		return MoveReport{}, err
	}
	rollback := func() {
		if err := srv.ImportLock(lockID, ex.Banks); err != nil {
			panic(fmt.Sprintf("ctrlplane: rollback of lock %d failed: %v", lockID, err))
		}
	}
	banks, _ := c.bankGeometryLocked()
	if len(ex.Banks) > banks {
		rollback()
		return MoveReport{}, fmt.Errorf("ctrlplane: lock %d has %d banks, switch has %d", lockID, len(ex.Banks), banks)
	}
	per, extra := slots/uint64(banks), slots%uint64(banks)
	need := make([]uint64, banks)
	for b := range need {
		need[b] = per
		if uint64(b) < extra {
			need[b]++
		}
		// The wire format cannot express an empty region, and a bank's
		// live queue must fit whole.
		if need[b] == 0 {
			need[b] = 1
		}
		if b < len(ex.Banks) && uint64(len(ex.Banks[b])) > need[b] {
			need[b] = uint64(len(ex.Banks[b]))
		}
	}
	regions, err := c.allocRegionsLocked(need)
	if err != nil {
		rollback()
		return MoveReport{}, err
	}
	// Rebase a copy: the original stays valid (on the server's clock) for
	// rollback if the chain refuses the promote.
	rep := MoveReport{LockID: lockID, ToSwitch: true}
	headNow := c.members[0].NowNs()
	rebased := make([][]lockserver.ExportEntry, banks)
	for b := 0; b < banks && b < len(ex.Banks); b++ {
		rebased[b] = append([]lockserver.ExportEntry(nil), ex.Banks[b]...)
		for i := range rebased[b] {
			if rebased[b][i].LeaseNs != 0 {
				rebased[b][i].LeaseNs = rebased[b][i].LeaseNs - ex.BaseNs + headNow
			}
			if rebased[b][i].Granted {
				rep.Granted = append(rep.Granted, rebased[b][i].Hdr.TxnID)
			} else {
				rep.Waiting = append(rep.Waiting, rebased[b][i].Hdr.TxnID)
			}
		}
	}
	if err := c.members[0].MigratePromoteLock(lockID, regions, rebased); err != nil {
		rollback()
		return MoveReport{}, err
	}
	c.regions[lockID] = regions
	return rep, nil
}

// moveServerToServer transfers one owned lock between two servers, leases
// rebased across their clocks. Caller holds c.mu.
func moveServerToServer(from, to *transport.Server, lockID uint32) error {
	ex, err := from.ExportLock(lockID)
	if err != nil {
		return err
	}
	nowNs := to.NowNs()
	for b := range ex.Banks {
		for i := range ex.Banks[b] {
			if ex.Banks[b][i].LeaseNs != 0 {
				ex.Banks[b][i].LeaseNs = ex.Banks[b][i].LeaseNs - ex.BaseNs + nowNs
			}
		}
	}
	return to.ImportLock(lockID, ex.Banks)
}

// DrainServer evacuates lock server victim onto target and redirects the
// rack: every lock the victim owns (and any q2 overflow residue it buffers
// for switch-resident locks) moves to the target, then every chain member
// re-routes the victim's partition. The victim is flipped into draining
// mode FIRST, so requests arriving mid-drain for already-moved locks are
// answered with a moved redirect (the client retries through the switch)
// instead of re-adopting state on the dying node; the routing flip comes
// LAST, so no member ever routes to the target before the state is there.
func (c *Controller) DrainServer(victim, target int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if victim < 0 || victim >= len(c.servers) || target < 0 || target >= len(c.servers) {
		return fmt.Errorf("ctrlplane: drain %d -> %d with %d servers", victim, target, len(c.servers))
	}
	if victim == target {
		return fmt.Errorf("ctrlplane: server %d cannot drain to itself", victim)
	}
	// Follow the target's own redirects and refuse a cycle.
	resolved := target
	for n := 0; n < len(c.servers); n++ {
		t, ok := c.redirect[resolved]
		if !ok {
			break
		}
		resolved = t
	}
	if resolved == victim {
		return fmt.Errorf("ctrlplane: drain %d -> %d forms a redirect cycle", victim, target)
	}
	vs, ts := c.servers[victim], c.servers[resolved]
	vs.SetDraining(true)
	owned := vs.OwnedLocks()
	sort.Slice(owned, func(i, j int) bool { return owned[i] < owned[j] })
	for _, id := range owned {
		if err := moveServerToServer(vs, ts, id); err != nil {
			return fmt.Errorf("ctrlplane: drain lock %d: %w", id, err)
		}
	}
	for _, id := range vs.OverflowLocks() {
		ts.ImportOverflow(id, vs.ExportOverflow(id))
	}
	for _, m := range c.members {
		if err := m.SetServerRedirect(victim, resolved); err != nil {
			return err
		}
	}
	c.redirect[victim] = resolved
	return nil
}

// AddServer grows the server tier with an already-started node: locks (and
// overflow residue) whose RSS home moves under the widened partition are
// migrated first, then every chain member learns the new address — the
// routing flip comes last, so no member routes to a home that does not yet
// hold the state.
func (c *Controller) AddServer(srv *transport.Server) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := srv.SetSwitchAddr(c.members[0].Addr()); err != nil {
		return err
	}
	grown := append(append([]*transport.Server(nil), c.servers...), srv)
	resolve := func(i int) int {
		for n := 0; n < len(grown); n++ {
			t, ok := c.redirect[i]
			if !ok {
				return i
			}
			i = t
		}
		return i
	}
	for i, from := range c.servers {
		if resolve(i) != i {
			continue // drained: owns nothing
		}
		owned := from.OwnedLocks()
		sort.Slice(owned, func(a, b int) bool { return owned[a] < owned[b] })
		for _, id := range owned {
			home := resolve(lockserver.RSSCore(id, len(grown)))
			if home == i {
				continue
			}
			if err := moveServerToServer(from, grown[home], id); err != nil {
				return fmt.Errorf("ctrlplane: rehash lock %d: %w", id, err)
			}
		}
		for _, id := range from.OverflowLocks() {
			home := resolve(lockserver.RSSCore(id, len(grown)))
			if home == i {
				continue
			}
			grown[home].ImportOverflow(id, from.ExportOverflow(id))
		}
	}
	for _, m := range c.members {
		if err := m.AddServerAddr(srv.Addr()); err != nil {
			return err
		}
	}
	c.servers = grown
	return nil
}
