package ctrlplane

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"netlock"
	"netlock/internal/transport"
)

// TestHeadKillStress hammers the head-kill window: many short racks, each
// with contended switch-resident and server-path traffic, killing the head
// twice per rack while acquires and releases are in flight. Any acquire
// that fails to complete within the per-rack deadline is a stuck-op bug,
// not contention — each rack nominally drains in well under a second.
func TestHeadKillStress(t *testing.T) {
	racks := 40
	if testing.Short() {
		racks = 8
	}
	for r := 0; r < racks; r++ {
		r := r
		t.Run(fmt.Sprintf("rack%02d", r), func(t *testing.T) {
			tp, err := New(Config{
				Switches:  3,
				Servers:   2,
				DataPlane: dpConfig(),
				Chaos:     &transport.ChaosConfig{Seed: int64(r + 1), Drop: 0.05, Dup: 0.05, Delay: 0.20},
				SwitchLocks: []SwitchLock{
					{ID: 1, Slots: 8}, {ID: 2, Slots: 8},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer tp.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()

			const workers = 4
			const txns = 12
			var wg sync.WaitGroup
			errs := make([]error, workers)
			for w := 0; w < workers; w++ {
				c, err := tp.NewClient(transport.ClientConfig{RetryInterval: 15 * time.Millisecond})
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(w int, c *transport.Client) {
					defer wg.Done()
					for i := 0; i < txns; i++ {
						// Alternate hot switch-resident lock and a
						// server-path lock; hold both briefly.
						hot := uint32(1 + (i % 2))
						cold := uint32(100 + w)
						g1, err := c.Acquire(ctx, hot, netlock.Exclusive)
						if err != nil {
							errs[w] = fmt.Errorf("txn %d hot lock %d: %w", i, hot, err)
							return
						}
						g2, err := c.Acquire(ctx, cold, netlock.Exclusive)
						if err != nil {
							g1.Release()
							errs[w] = fmt.Errorf("txn %d cold lock %d: %w", i, cold, err)
							return
						}
						time.Sleep(200 * time.Microsecond)
						g2.Release()
						g1.Release()
					}
				}(w, c)
			}

			// Two head kills while the workers churn.
			killed := make(chan error, 2)
			go func() {
				time.Sleep(3 * time.Millisecond)
				killed <- tp.Controller().FailHead()
				time.Sleep(5 * time.Millisecond)
				killed <- tp.Controller().FailHead()
			}()
			wg.Wait()
			for i := 0; i < 2; i++ {
				if err := <-killed; err != nil {
					t.Fatalf("kill %d: %v", i, err)
				}
			}
			for w, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
			}
			if got := tp.Controller().Epoch(); got != 3 {
				t.Fatalf("epoch %d, want 3", got)
			}
		})
	}
}
