package ctrlplane

import (
	"fmt"
	"sort"

	"netlock/internal/lockserver"
	"netlock/internal/wire"
)

// Rack-side fabric support: a multi-rack fabric (internal/fabric) treats
// each rack's Controller as the unit of shard ownership. The fabric
// controller installs the shard map and fences here chain-wide, and moves
// a shard between racks by exporting every matching lock's live state from
// the source rack and importing it — leases rebased, switch client tables
// seeded — at the destination.

// ShardLockState is one lock's full queue state in transit between racks:
// the per-bank holder/waiter entries plus the source rack's clock base for
// lease rebasing.
type ShardLockState struct {
	LockID uint32
	BaseNs int64
	Banks  [][]lockserver.ExportEntry
}

// Entries returns the number of queue entries crossing with the lock.
func (s *ShardLockState) Entries() int {
	n := 0
	for _, b := range s.Banks {
		n += len(b)
	}
	return n
}

// SetShardMap installs the fabric shard map and this rack's index on every
// chain member, so a promoted head filters ingress identically.
func (c *Controller) SetShardMap(m *wire.ShardMap, selfRack int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, mem := range c.members {
		mem.SetShardMap(m, selfRack)
	}
}

// SetShardFence fences or unfences one shard chain-wide: while fenced, the
// head drops client ops for the shard's locks (the fabric controller moves
// the shard's state in the window).
func (c *Controller) SetShardFence(shard uint32, on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, mem := range c.members {
		mem.SetShardFence(shard, on)
	}
}

// ReleasesDrained reports whether no forwarded-but-unacked client release
// remains at the head for locks matching the predicate. The fabric
// controller polls this after fencing a shard; over the reliable in-rack
// fabric the count drains monotonically, and export is safe once it hits
// zero (no release is in flight toward a server).
func (c *Controller) ReleasesDrained(match func(uint32) bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.members[0].PendingReleases(match) == 0
}

// ExportShard removes every lock matching the predicate from this rack and
// returns its live state. Switch-resident matching locks are first demoted
// to their home servers (the chain exports and evicts them at one
// op-stream position), then each server's matching locks are exported —
// holders, waiters, and q2 overflow residue alike — and finally every
// chain member's client tables are purged so the source rack stops
// speaking for the moved locks. Callers fence the shard (and drain pending
// releases) first, so no new state lands between the snapshot and the
// purge.
func (c *Controller) ExportShard(match func(uint32) bool) ([]ShardLockState, error) {
	for _, id := range c.ResidentLocks() {
		if match(id) {
			if _, err := c.MoveToServer(id); err != nil {
				return nil, fmt.Errorf("ctrlplane: demote lock %d for export: %w", id, err)
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []ShardLockState
	for _, srv := range c.servers {
		owned := srv.OwnedLocks()
		sort.Slice(owned, func(i, j int) bool { return owned[i] < owned[j] })
		for _, id := range owned {
			if !match(id) {
				continue
			}
			ex, err := srv.ExportLock(id)
			if err != nil {
				return nil, fmt.Errorf("ctrlplane: export lock %d: %w", id, err)
			}
			out = append(out, ShardLockState{LockID: id, BaseNs: ex.BaseNs, Banks: ex.Banks})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LockID < out[j].LockID })
	for _, m := range c.members {
		m.PurgeClientState(match)
	}
	return out, nil
}

// ImportShard installs exported lock state into this rack: each lock lands
// on its home server (primed first, so a racing request bounces instead of
// adopting the lock), leases are rebased onto the destination clock, and
// every chain member's client tables are seeded — granted entries into the
// grant cache so their releases run the data plane exactly once, waiters
// into the pending table so their grants are delivered. Callers flip the
// shard map only after this returns, so the state is fully home before any
// client is routed here.
func (c *Controller) ImportShard(states []ShardLockState) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range states {
		if len(c.servers) == 0 {
			return fmt.Errorf("ctrlplane: no lock server to import lock %d", st.LockID)
		}
		srv := c.servers[c.serverIndexForLocked(st.LockID)]
		srv.PrepareImport(st.LockID)
		nowNs := srv.NowNs()
		banks := make([][]lockserver.ExportEntry, len(st.Banks))
		for b := range st.Banks {
			banks[b] = append([]lockserver.ExportEntry(nil), st.Banks[b]...)
			for i := range banks[b] {
				if banks[b][i].LeaseNs != 0 {
					banks[b][i].LeaseNs = banks[b][i].LeaseNs - st.BaseNs + nowNs
				}
			}
		}
		if err := srv.ImportLock(st.LockID, banks); err != nil {
			return fmt.Errorf("ctrlplane: import lock %d: %w", st.LockID, err)
		}
		for b := range banks {
			for i := range banks[b] {
				e := &banks[b][i]
				for _, m := range c.members {
					m.ImportClientState(e.Granted, &e.Hdr, e.LeaseNs)
				}
			}
		}
	}
	return nil
}
