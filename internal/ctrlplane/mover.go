package ctrlplane

import (
	"netlock/internal/memalloc"
	"netlock/internal/rebalance"
)

// mover adapts the Controller's live-migration surface to rebalance.Mover,
// so the same online rebalance loop that drives the embedded Manager's
// shards drives a UDP rack: demand measured from the chain head and the
// servers, moves executed as epoch-fenced chain migrations.
type mover struct{ c *Controller }

// Mover returns the rebalance.Mover view of this controller. The loop
// serializes its own calls; the controller's mutex serializes them against
// other control-plane operations (drains, failovers, installs).
func (c *Controller) Mover() rebalance.Mover { return mover{c} }

func (m mover) MeasureDemands(windowSec float64) []memalloc.Demand {
	return m.c.MeasureDemands(windowSec)
}

func (m mover) Placement() map[uint32]uint64 { return m.c.Placement() }

func (m mover) SwitchCapacity() uint64 { return m.c.SwitchCapacity() }

func (m mover) MoveToSwitch(lockID uint32, slots uint64) (rebalance.Report, error) {
	rep, err := m.c.MoveToSwitch(lockID, slots)
	return rebalance.Report{
		LockID: rep.LockID, ToSwitch: true, Granted: rep.Granted, Waiting: rep.Waiting,
	}, err
}

func (m mover) MoveToServer(lockID uint32) (rebalance.Report, error) {
	rep, err := m.c.MoveToServer(lockID)
	return rebalance.Report{
		LockID: rep.LockID, ToSwitch: false, Granted: rep.Granted, Waiting: rep.Waiting,
	}, err
}
