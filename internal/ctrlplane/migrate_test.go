package ctrlplane

import (
	"context"
	"testing"
	"time"

	"netlock"
	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

// Rack-level live-move tests: a Topology with real clients moves busy
// locks between the chain and the servers, drains a server, and grows the
// tier — all with grants held and waiters queued across the boundary.

// asyncAcquire starts an exclusive acquire in the background and returns
// the channel its grant (or error) lands on.
func asyncAcquire(t *testing.T, c *transport.Client, lockID uint32) chan *transport.Grant {
	t.Helper()
	ch := make(chan *transport.Grant, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		g, err := c.Acquire(ctx, lockID, netlock.Exclusive)
		if err != nil {
			t.Errorf("async acquire %d: %v", lockID, err)
			ch <- nil
			return
		}
		ch <- g
	}()
	return ch
}

// waitQueueDepth polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMoveToServerLive: a switch-resident lock with a holder and a waiter
// is demoted mid-flight; the report names both, and the waiter's grant
// arrives from the server after the holder releases.
func TestMoveToServerLive(t *testing.T) {
	tp := topo(t, Config{Switches: 2, SwitchLocks: []SwitchLock{{ID: 5, Slots: 8}}})
	c := fastClient(t, tp)
	ctrl := tp.Controller()

	holder := acquire(t, c, 5)
	waiterCh := asyncAcquire(t, c, 5)
	waitFor(t, "waiter to queue at the switch", func() bool {
		var n int
		tp.Head().WithDataPlane(func(dp *switchdp.Switch) {
			slots, _ := dp.CtrlQueuedSlots(5, 0)
			n = len(slots)
		})
		return n == 2
	})

	rep, err := ctrl.MoveToServer(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Granted) != 1 || len(rep.Waiting) != 1 {
		t.Fatalf("move report granted=%d waiting=%d, want 1/1", len(rep.Granted), len(rep.Waiting))
	}
	if _, ok := ctrl.Placement()[5]; ok {
		t.Fatal("lock 5 still in the placement map after demote")
	}

	holder.Release()
	g := <-waiterCh
	if g == nil {
		t.Fatal("waiter failed across the demote")
	}
	g.Release()
}

// TestMoveToSwitchLive: a server-owned lock with a holder and a waiter is
// promoted mid-flight; the switch grants the migrated waiter when the
// holder releases.
func TestMoveToSwitchLive(t *testing.T) {
	tp := topo(t, Config{Switches: 2})
	c := fastClient(t, tp)
	ctrl := tp.Controller()
	const lockID = 2

	holder := acquire(t, c, lockID)
	waiterCh := asyncAcquire(t, c, lockID)
	home := tp.Servers()[ctrl.ServerIndexFor(lockID)]
	waitFor(t, "waiter to queue at the server", func() bool {
		var n int
		home.WithLockServer(func(ls *lockserver.Server) { n, _ = ls.CtrlQueueDepth(lockID) })
		return n == 2
	})

	rep, err := ctrl.MoveToSwitch(lockID, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Granted) != 1 || len(rep.Waiting) != 1 {
		t.Fatalf("move report granted=%d waiting=%d, want 1/1", len(rep.Granted), len(rep.Waiting))
	}
	if got := ctrl.Placement()[lockID]; got != 8 {
		t.Fatalf("placement shows %d slots, want 8", got)
	}

	holder.Release()
	g := <-waiterCh
	if g == nil {
		t.Fatal("waiter failed across the promote")
	}
	g.Release()

	// A fresh acquire/release cycle exercises the promoted residency.
	acquire(t, c, lockID).Release()
}

// TestDrainServerLive: a server is drained while one of its locks is held
// and waited on. The held grant stays releasable, the waiter completes at
// the drain target, and the victim can then fail without the rack
// noticing.
func TestDrainServerLive(t *testing.T) {
	tp := topo(t, Config{Switches: 2})
	c := fastClient(t, tp)
	ctrl := tp.Controller()

	// A lock homed at server 0 under the 2-server partition.
	var lockID uint32
	for id := uint32(1); ; id++ {
		if lockserver.RSSCore(id, 2) == 0 {
			lockID = id
			break
		}
	}
	holder := acquire(t, c, lockID)
	waiterCh := asyncAcquire(t, c, lockID)
	home := tp.Servers()[0]
	waitFor(t, "waiter to queue at the victim", func() bool {
		var n int
		home.WithLockServer(func(ls *lockserver.Server) { n, _ = ls.CtrlQueueDepth(lockID) })
		return n == 2
	})

	if err := ctrl.DrainServer(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.ServerIndexFor(lockID); got != 1 {
		t.Fatalf("lock %d routed to server %d after drain, want 1", lockID, got)
	}
	if owned := home.OwnedLocks(); len(owned) != 0 {
		t.Fatalf("victim still owns %v after drain", owned)
	}
	if err := ctrl.DrainServer(1, 0); err == nil {
		t.Fatal("redirect cycle was not refused")
	}

	holder.Release()
	g := <-waiterCh
	if g == nil {
		t.Fatal("waiter failed across the drain")
	}
	g.Release()

	// The victim is now fully out of the data path: killing it changes
	// nothing for fresh traffic on its old partition.
	if err := tp.FailServer(0); err != nil {
		t.Fatal(err)
	}
	acquire(t, c, lockID).Release()
}

// TestAddServerLive: the tier grows by one server mid-traffic; rehashed
// locks (including one actively held) migrate to their new homes before
// routing flips, so nothing is lost or double-granted.
func TestAddServerLive(t *testing.T) {
	tp := topo(t, Config{Switches: 2})
	c := fastClient(t, tp)
	ctrl := tp.Controller()

	// A lock that moves to the new server (index 2) when the tier grows.
	var lockID uint32
	for id := uint32(1); ; id++ {
		if lockserver.RSSCore(id, 3) == 2 && lockserver.RSSCore(id, 2) != 2 {
			lockID = id
			break
		}
	}
	holder := acquire(t, c, lockID)
	waiterCh := asyncAcquire(t, c, lockID)
	home := tp.Servers()[lockserver.RSSCore(lockID, 2)]
	waitFor(t, "waiter to queue at the old home", func() bool {
		var n int
		home.WithLockServer(func(ls *lockserver.Server) { n, _ = ls.CtrlQueueDepth(lockID) })
		return n == 2
	})

	idx, err := tp.AddServer()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("new server index %d, want 2", idx)
	}
	if got := ctrl.ServerIndexFor(lockID); got != 2 {
		t.Fatalf("lock %d routed to server %d after growth, want 2", lockID, got)
	}
	var owns bool
	tp.Servers()[2].WithLockServer(func(ls *lockserver.Server) { owns = ls.CtrlOwns(lockID) })
	if !owns {
		t.Fatalf("new server does not own rehashed lock %d", lockID)
	}

	holder.Release()
	g := <-waiterCh
	if g == nil {
		t.Fatal("waiter failed across the tier growth")
	}
	g.Release()
	acquire(t, c, lockID).Release()
}
