package ctrlplane

import (
	"fmt"
	"time"

	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

// SwitchLock pre-installs a switch-resident lock before traffic: Slots
// queue slots per priority bank, laid out sequentially over the slot
// arena.
type SwitchLock struct {
	ID    uint32
	Slots int
}

// TenantQuota configures one tenant's ingress meter.
type TenantQuota struct {
	Tenant uint8
	PerSec float64
	Burst  float64
}

// Config describes a rack for New.
type Config struct {
	// Switches is the chain length (1-3; default 1 — an unreplicated
	// switch).
	Switches int
	// Servers is the lock-server count (default 2); locks partition
	// across them by lockserver.RSSCore.
	Servers int
	// DataPlane configures each member's switch program. The obs stripe,
	// if any, is attached to member 0 only: the chain processes every op
	// once per member, and counting it once keeps obs equal to what one
	// switch sees.
	DataPlane switchdp.Config
	// Server configures each lock server.
	Server lockserver.Config
	// Chaos, when non-nil, builds the rack on a fresh chaos network with
	// this profile; in-rack links (servers, chain members) are marked
	// reliable, matching the paper's in-rack fabric assumption. Ignored
	// when Net is set.
	Chaos *transport.ChaosConfig
	// Net is an explicit socket factory; nil (with nil Chaos) means real
	// UDP on loopback.
	Net transport.Network
	// Listen is the bind address pattern (default "127.0.0.1:0" on UDP,
	// "10.99.0.1:0" on a chaos network).
	Listen string
	// HeadListen, when set, is the bind address for chain member 0 (the
	// initial head) only — a daemon can advertise a stable address while
	// the rest of the rack takes ephemeral ports.
	HeadListen string
	// SweepInterval and EgressFlush pass through to each switch.
	SweepInterval time.Duration
	EgressFlush   time.Duration
	// SwitchLocks are installed chain-wide before New returns.
	SwitchLocks []SwitchLock
	// Quotas are configured chain-wide before New returns. With a
	// replicated chain the meter moves to the head's ingress.
	Quotas []TenantQuota
}

// Topology is a running rack: the switch chain, its lock servers, the
// controller reconfiguring them, and any clients built through NewClient.
type Topology struct {
	cn *transport.ChaosNet
	// ownsNet records whether New created the chaos network; a shared
	// network (a multi-rack fabric) is drained by whoever built it, not by
	// each rack's Close.
	ownsNet  bool
	net      transport.Network
	ctrl     *Controller
	switches []*transport.Switch
	servers  []*transport.Server
	clients  []*transport.Client

	// listen and serverCfg are kept so AddServer can start new lock
	// servers identical to the originals.
	listen    string
	serverCfg lockserver.Config
}

// New builds and starts a rack. On error everything already started is
// torn down.
func New(cfg Config) (*Topology, error) {
	nsw := cfg.Switches
	if nsw == 0 {
		nsw = 1
	}
	if nsw < 1 || nsw > 3 {
		return nil, fmt.Errorf("ctrlplane: chain length %d out of range [1,3]", nsw)
	}
	nsrv := cfg.Servers
	if nsrv == 0 {
		nsrv = 2
	}
	t := &Topology{net: cfg.Net}
	listen := cfg.Listen
	if t.net == nil {
		if cfg.Chaos != nil {
			t.cn = transport.NewChaosNet(*cfg.Chaos)
			t.ownsNet = true
			t.net = t.cn
			if listen == "" {
				listen = "10.99.0.1:0"
			}
		} else {
			t.net = transport.UDP
		}
	} else if cn, ok := t.net.(*transport.ChaosNet); ok {
		// A rack built on a shared chaos network (a multi-rack fabric)
		// still gets reliable in-rack links; only the network's creator
		// drains it on teardown.
		t.cn = cn
		if listen == "" {
			listen = "10.99.0.1:0"
		}
	}
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	t.listen, t.serverCfg = listen, cfg.Server
	fail := func(err error) (*Topology, error) {
		t.Close()
		return nil, err
	}

	var srvAddrs []string
	for i := 0; i < nsrv; i++ {
		srv, err := transport.NewServer(transport.ServerConfig{
			Listen: listen, Config: cfg.Server, Net: t.net,
		})
		if err != nil {
			return fail(err)
		}
		t.servers = append(t.servers, srv)
		srvAddrs = append(srvAddrs, srv.Addr())
		if t.cn != nil {
			if err := t.cn.MarkReliable(srv.Addr()); err != nil {
				return fail(err)
			}
		}
	}

	for i := 0; i < nsw; i++ {
		dp := cfg.DataPlane
		if i > 0 {
			dp.Obs = nil // the chain sees each op once; count it once
		}
		swListen := listen
		if i == 0 && cfg.HeadListen != "" {
			swListen = cfg.HeadListen
		}
		sw, err := transport.NewSwitch(transport.SwitchConfig{
			Listen:        swListen,
			DataPlane:     dp,
			Servers:       srvAddrs,
			SweepInterval: cfg.SweepInterval,
			EgressFlush:   cfg.EgressFlush,
			Net:           t.net,
		})
		if err != nil {
			return fail(err)
		}
		t.switches = append(t.switches, sw)
		if t.cn != nil {
			if err := t.cn.MarkReliable(sw.Addr()); err != nil {
				return fail(err)
			}
		}
	}

	ctrl, err := NewController(t.switches, t.servers, cfg.DataPlane.Isolation)
	if err != nil {
		return fail(err)
	}
	t.ctrl = ctrl

	// One region per priority bank per lock, laid out sequentially.
	banks := cfg.DataPlane.Priorities
	if banks < 1 {
		banks = 1
	}
	off := 0
	for _, sl := range cfg.SwitchLocks {
		regions := make([]switchdp.Region, banks)
		for b := range regions {
			regions[b] = switchdp.Region{Left: uint64(off), Right: uint64(off + sl.Slots)}
			off += sl.Slots
		}
		if err := ctrl.InstallLock(sl.ID, regions); err != nil {
			return fail(fmt.Errorf("ctrlplane: install lock %d: %w", sl.ID, err))
		}
	}
	for _, q := range cfg.Quotas {
		ctrl.SetTenantQuota(q.Tenant, q.PerSec, q.Burst)
	}
	return t, nil
}

// NewClient builds a client wired to this rack: the chain member
// addresses (head first) and the rack's network are filled in; the rest
// of cfg (batching, retry cadence, OnFailover) passes through. The client
// is closed by Topology.Close.
func (t *Topology) NewClient(cfg transport.ClientConfig) (*transport.Client, error) {
	cfg.Switches = t.ctrl.Addrs()
	cfg.Net = t.net
	c, err := transport.NewClientConfig(cfg)
	if err != nil {
		return nil, err
	}
	t.clients = append(t.clients, c)
	return c, nil
}

// Controller returns the chain's reconfiguration authority.
func (t *Topology) Controller() *Controller { return t.ctrl }

// Head returns the current chain head.
func (t *Topology) Head() *transport.Switch { return t.ctrl.Head() }

// Switches returns the chain members still live, head first.
func (t *Topology) Switches() []*transport.Switch { return t.ctrl.Members() }

// Servers returns the rack's lock servers.
func (t *Topology) Servers() []*transport.Server { return t.servers }

// Net returns the rack's socket factory (for wiring extra endpoints onto
// the same fabric).
func (t *Topology) Net() transport.Network { return t.net }

// Chaos returns the rack's chaos network, or nil when the rack runs on
// real UDP or an externally supplied Network.
func (t *Topology) Chaos() *transport.ChaosNet { return t.cn }

// AddServer starts a new lock server on the rack's fabric and hands it to
// the controller, which migrates the rehashed partition onto it and flips
// routing. Returns the new server's index.
func (t *Topology) AddServer() (int, error) {
	srv, err := transport.NewServer(transport.ServerConfig{
		Listen: t.listen, Config: t.serverCfg, Net: t.net,
	})
	if err != nil {
		return 0, err
	}
	if t.cn != nil {
		if err := t.cn.MarkReliable(srv.Addr()); err != nil {
			srv.Close()
			return 0, err
		}
	}
	if err := t.ctrl.AddServer(srv); err != nil {
		srv.Close()
		return 0, err
	}
	t.servers = append(t.servers, srv)
	return len(t.servers) - 1, nil
}

// FailServer closes lock server i in place (its address stays in the
// switches' forwarding tables — the rack behaves as if the node died).
func (t *Topology) FailServer(i int) error {
	if i < 0 || i >= len(t.servers) {
		return fmt.Errorf("ctrlplane: fail server %d of %d", i, len(t.servers))
	}
	return t.servers[i].Close()
}

// Close tears the rack down: clients first (their abandon path
// auto-releases raced-in grants), then the switches, then the servers,
// then the chaos drain so no delayed delivery races a WaitGroup.
func (t *Topology) Close() {
	for _, c := range t.clients {
		c.Close()
	}
	for _, sw := range t.switches {
		sw.Close()
	}
	for _, srv := range t.servers {
		srv.Close()
	}
	if t.cn != nil && t.ownsNet {
		t.cn.Wait()
	}
}
