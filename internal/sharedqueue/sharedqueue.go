// Package sharedqueue implements NetLock's shared queue data structure
// (paper §4.2, Figure 5): multiple register arrays — possibly in different
// pipeline stages — pooled into one large logical slot space, with each lock
// owning a contiguous, runtime-adjustable region [left, right) used as a
// circular queue of its pending requests.
//
// Register arrays natively support only indexed access, so the queue is
// built from:
//
//   - boundary registers (left, right) per queue, adjustable by the control
//     plane without reloading the data plane;
//   - monotone head and tail counters per queue; a counter value ctr maps to
//     global slot index left + (ctr mod (right-left));
//   - an occupancy counter (conditionally incremented on enqueue, so a full
//     queue rejects the request in-pass) and an exclusive-entry counter used
//     by the grant rule "queue holds no exclusive requests";
//   - three parallel slot planes (addressing metadata, transaction ID, lease)
//     so that one logical 20-byte slot is one access to each plane per pass.
//
// The package provides the storage operations only; Algorithm 2 — which
// passes do what, and when to resubmit — lives in internal/switchdp, exactly
// as the paper splits storage (shared queue) from processing (match-action
// tables).
//
// Stage-layout discipline: results of a register access can only feed the
// predicate of an access in a strictly later stage. Callers configure the
// metadata arrays in dependency order: bounds < count < excl < head < tail <
// slot planes. The constructor rejects layouts violating this order.
package sharedqueue

import (
	"fmt"

	"netlock/internal/p4sim"
)

// Slot is the logical content of one queue slot: the request's mode, the
// addressing information needed to grant the lock later, and the lease.
type Slot struct {
	Exclusive bool
	// OneRTT records that the request asked for grant-to-database-server
	// forwarding (the paper's one-RTT transaction mode, §4.1).
	OneRTT bool
	// Granted marks a slot whose request has been granted (immediately on
	// enqueue, or later by a release walk). The lease sweep uses it to
	// distinguish holders from waiters: only a granted slot's expiry means
	// a stuck holder.
	Granted  bool
	Tenant   uint8
	Priority uint8
	ClientIP uint32
	TxnID    uint64
	LeaseNs  int64
}

const metaGrantedBit = uint64(1) << 50

func packMeta(s Slot) uint64 {
	v := uint64(s.ClientIP) | uint64(s.Tenant)<<32 | uint64(s.Priority)<<40
	if s.Exclusive {
		v |= 1 << 48
	}
	if s.OneRTT {
		v |= 1 << 49
	}
	if s.Granted {
		v |= metaGrantedBit
	}
	return v
}

func unpackMeta(v uint64, s *Slot) {
	s.ClientIP = uint32(v)
	s.Tenant = uint8(v >> 32)
	s.Priority = uint8(v >> 40)
	s.Exclusive = v&(1<<48) != 0
	s.OneRTT = v&(1<<49) != 0
	s.Granted = v&metaGrantedBit != 0
}

// ArraySpec places one block of slot storage in a pipeline stage.
type ArraySpec struct {
	Stage int
	Size  int
}

// MetaStages assigns pipeline stages to the per-queue metadata arrays, in
// dependency order.
type MetaStages struct {
	Bounds int // left and right boundary arrays
	Count  int // occupancy counter (conditional increment)
	Excl   int // exclusive-entry counter
	Wait   int // waiting (never-granted) entry counter; may share Excl's stage
	Head   int // monotone head counter
	Tail   int // monotone tail counter
}

// Config describes one shared queue instance.
type Config struct {
	// Name prefixes register array names for diagnostics.
	Name string
	// MaxQueues is the number of lock queues the metadata arrays support,
	// i.e. the maximum number of locks resident in the switch.
	MaxQueues int
	// Meta assigns stages to metadata arrays.
	Meta MetaStages
	// Slots lists the register arrays pooled into the slot space. All slot
	// stages must be strictly after Meta.Tail.
	Slots []ArraySpec
}

// Queues is a shared queue instance living in a pipeline.
type Queues struct {
	pipe  *p4sim.Pipeline
	left  *p4sim.RegisterArray
	right *p4sim.RegisterArray
	count *p4sim.RegisterArray
	excl  *p4sim.RegisterArray
	wait  *p4sim.RegisterArray
	head  *p4sim.RegisterArray
	tail  *p4sim.RegisterArray

	planeMeta  []*p4sim.RegisterArray
	planeTxn   []*p4sim.RegisterArray
	planeLease []*p4sim.RegisterArray
	// bounds[i] is the global index of the first slot in block i;
	// bounds[len] is the total slot count.
	bounds []int
}

// New allocates a shared queue in the pipeline. It panics on invalid
// configuration (a load-time error on hardware).
func New(pipe *p4sim.Pipeline, cfg Config) *Queues {
	if cfg.MaxQueues <= 0 {
		panic("sharedqueue: MaxQueues must be positive")
	}
	if len(cfg.Slots) == 0 {
		panic("sharedqueue: no slot arrays configured")
	}
	m := cfg.Meta
	if !(m.Bounds < m.Count && m.Count < m.Excl && m.Excl < m.Head && m.Head < m.Tail) {
		panic("sharedqueue: metadata stages must be in dependency order bounds<count<excl<head<tail")
	}
	if !(m.Count < m.Wait && m.Wait < m.Head) {
		panic("sharedqueue: wait-counter stage must be in (count, head)")
	}
	q := &Queues{pipe: pipe}
	n := cfg.MaxQueues
	q.left = pipe.AllocArray(cfg.Name+".left", m.Bounds, n)
	q.right = pipe.AllocArray(cfg.Name+".right", m.Bounds, n)
	q.count = pipe.AllocArray(cfg.Name+".count", m.Count, n)
	q.excl = pipe.AllocArray(cfg.Name+".excl", m.Excl, n)
	q.wait = pipe.AllocArray(cfg.Name+".wait", m.Wait, n)
	q.head = pipe.AllocArray(cfg.Name+".head", m.Head, n)
	q.tail = pipe.AllocArray(cfg.Name+".tail", m.Tail, n)
	total := 0
	for i, spec := range cfg.Slots {
		if spec.Stage <= m.Tail {
			panic(fmt.Sprintf("sharedqueue: slot block %d in stage %d must be after tail stage %d",
				i, spec.Stage, m.Tail))
		}
		q.bounds = append(q.bounds, total)
		q.planeMeta = append(q.planeMeta, pipe.AllocArray(fmt.Sprintf("%s.slot%d.meta", cfg.Name, i), spec.Stage, spec.Size))
		q.planeTxn = append(q.planeTxn, pipe.AllocArray(fmt.Sprintf("%s.slot%d.txn", cfg.Name, i), spec.Stage, spec.Size))
		q.planeLease = append(q.planeLease, pipe.AllocArray(fmt.Sprintf("%s.slot%d.lease", cfg.Name, i), spec.Stage, spec.Size))
		total += spec.Size
	}
	q.bounds = append(q.bounds, total)
	return q
}

// TotalSlots returns the pooled slot capacity.
func (q *Queues) TotalSlots() int { return q.bounds[len(q.bounds)-1] }

// MaxQueues returns the number of supported lock queues.
func (q *Queues) MaxQueues() int { return q.left.Size() }

// block locates the slot block containing global index g.
func (q *Queues) block(g int) int {
	for i := 0; i < len(q.bounds)-1; i++ {
		if g < q.bounds[i+1] {
			return i
		}
	}
	panic(fmt.Sprintf("sharedqueue: global slot index %d out of range [0,%d)", g, q.TotalSlots()))
}

// SlotIndex maps a queue's monotone counter value to the global slot index,
// applying the circular wrap within [left, left+cap).
func SlotIndex(left, capacity, ctr uint64) int {
	if capacity == 0 {
		panic("sharedqueue: zero-capacity region")
	}
	return int(left + ctr%capacity)
}

// --- Data-plane operations (one register access per array per pass) ---

// Bounds reads the queue's region boundaries. One access each to the left
// and right arrays.
func (q *Queues) Bounds(c *p4sim.Ctx, qi int) (left, right uint64) {
	return q.left.Read(c, qi), q.right.Read(c, qi)
}

// CondIncCount increments the occupancy counter if it is below capacity,
// returning the previous value and whether the increment happened. This is
// the stateful-ALU conditional update that makes enqueue-if-space a single
// crossing.
func (q *Queues) CondIncCount(c *p4sim.Ctx, qi int, capacity uint64) (old uint64, won bool) {
	old = q.count.ReadModifyWrite(c, qi, func(v uint64) uint64 {
		if v < capacity {
			return v + 1
		}
		return v
	})
	return old, old < capacity
}

// CondDecCount decrements the occupancy counter if positive, returning the
// previous value and whether the decrement happened.
func (q *Queues) CondDecCount(c *p4sim.Ctx, qi int) (old uint64, ok bool) {
	old = q.count.ReadModifyWrite(c, qi, func(v uint64) uint64 {
		if v > 0 {
			return v - 1
		}
		return v
	})
	return old, old > 0
}

// ReadCount reads the occupancy counter without modifying it.
func (q *Queues) ReadCount(c *p4sim.Ctx, qi int) uint64 { return q.count.Read(c, qi) }

// IncExcl increments the exclusive-entry counter and returns the previous
// value.
func (q *Queues) IncExcl(c *p4sim.Ctx, qi int) uint64 {
	return q.excl.ReadModifyWrite(c, qi, func(v uint64) uint64 { return v + 1 })
}

// DecExcl decrements the exclusive-entry counter (clamped at zero) and
// returns the previous value.
func (q *Queues) DecExcl(c *p4sim.Ctx, qi int) uint64 {
	return q.excl.ReadModifyWrite(c, qi, func(v uint64) uint64 {
		if v > 0 {
			return v - 1
		}
		return v
	})
}

// ReadExcl reads the exclusive-entry counter.
func (q *Queues) ReadExcl(c *p4sim.Ctx, qi int) uint64 { return q.excl.Read(c, qi) }

// IncWait increments the waiting-entry counter and returns the previous
// value. Called on the extra pass an enqueue-without-grant resubmits for.
func (q *Queues) IncWait(c *p4sim.Ctx, qi int) uint64 {
	return q.wait.ReadModifyWrite(c, qi, func(v uint64) uint64 { return v + 1 })
}

// DecWait decrements the waiting-entry counter (clamped at zero) and
// returns the previous value. Called once per slot a release walk grants.
func (q *Queues) DecWait(c *p4sim.Ctx, qi int) uint64 {
	return q.wait.ReadModifyWrite(c, qi, func(v uint64) uint64 {
		if v > 0 {
			return v - 1
		}
		return v
	})
}

// ReadWait reads the waiting-entry counter. The grant rule uses it to keep
// grants a FIFO prefix of each bank: a shared request must not be granted
// past a waiting entry in its own bank, or head-dequeue releases desynchronize
// from the granted set (a duplicate grant plus a lost request).
func (q *Queues) ReadWait(c *p4sim.Ctx, qi int) uint64 { return q.wait.Read(c, qi) }

// IncHead advances the head counter and returns its previous value.
func (q *Queues) IncHead(c *p4sim.Ctx, qi int) uint64 {
	return q.head.ReadModifyWrite(c, qi, func(v uint64) uint64 { return v + 1 })
}

// ReadHead reads the head counter.
func (q *Queues) ReadHead(c *p4sim.Ctx, qi int) uint64 { return q.head.Read(c, qi) }

// IncTail advances the tail counter and returns its previous value — the
// counter of the slot just claimed.
func (q *Queues) IncTail(c *p4sim.Ctx, qi int) uint64 {
	return q.tail.ReadModifyWrite(c, qi, func(v uint64) uint64 { return v + 1 })
}

// WriteSlot stores s at global slot index g: one access to each plane.
func (q *Queues) WriteSlot(c *p4sim.Ctx, g int, s Slot) {
	b := q.block(g)
	off := g - q.bounds[b]
	q.planeMeta[b].Write(c, off, packMeta(s))
	q.planeTxn[b].Write(c, off, s.TxnID)
	q.planeLease[b].Write(c, off, uint64(s.LeaseNs))
}

// ReadSlot loads the slot at global index g: one access to each plane.
func (q *Queues) ReadSlot(c *p4sim.Ctx, g int) Slot {
	b := q.block(g)
	off := g - q.bounds[b]
	var s Slot
	unpackMeta(q.planeMeta[b].Read(c, off), &s)
	s.TxnID = q.planeTxn[b].Read(c, off)
	s.LeaseNs = int64(q.planeLease[b].Read(c, off))
	return s
}

// ReadSlotMarkGranted loads the slot at global index g and sets its granted
// bit in the same stateful-ALU crossing of the meta plane (still one access
// per plane). With sharedOnly, exclusive slots are read without marking —
// the release walk uses this to probe whether a shared run continues.
// The returned Slot reflects the pre-mark state.
func (q *Queues) ReadSlotMarkGranted(c *p4sim.Ctx, g int, sharedOnly bool) Slot {
	b := q.block(g)
	off := g - q.bounds[b]
	var s Slot
	old := q.planeMeta[b].ReadModifyWrite(c, off, func(v uint64) uint64 {
		if sharedOnly && v&(1<<48) != 0 {
			return v
		}
		return v | metaGrantedBit
	})
	unpackMeta(old, &s)
	s.TxnID = q.planeTxn[b].Read(c, off)
	s.LeaseNs = int64(q.planeLease[b].Read(c, off))
	return s
}

// --- Control-plane operations ---

// State is a control-plane snapshot of one queue's registers.
type State struct {
	Left, Right uint64
	Count       uint64
	Excl        uint64
	Wait        uint64
	Head, Tail  uint64
}

// Capacity returns the region size.
func (s State) Capacity() uint64 { return s.Right - s.Left }

// CtrlSetRegion assigns the region [left, right) to queue qi and resets its
// counters. The control plane must have drained the queue first (§4.3,
// "moving locks").
func (q *Queues) CtrlSetRegion(qi int, left, right uint64) {
	if right < left || right > uint64(q.TotalSlots()) {
		panic(fmt.Sprintf("sharedqueue: invalid region [%d,%d) of %d slots", left, right, q.TotalSlots()))
	}
	q.left.CtrlWrite(qi, left)
	q.right.CtrlWrite(qi, right)
	q.count.CtrlWrite(qi, 0)
	q.excl.CtrlWrite(qi, 0)
	q.wait.CtrlWrite(qi, 0)
	q.head.CtrlWrite(qi, 0)
	q.tail.CtrlWrite(qi, 0)
}

// CtrlState reads all metadata registers of queue qi.
func (q *Queues) CtrlState(qi int) State {
	return State{
		Left:  q.left.CtrlRead(qi),
		Right: q.right.CtrlRead(qi),
		Count: q.count.CtrlRead(qi),
		Excl:  q.excl.CtrlRead(qi),
		Wait:  q.wait.CtrlRead(qi),
		Head:  q.head.CtrlRead(qi),
		Tail:  q.tail.CtrlRead(qi),
	}
}

// CtrlReadSlot reads a slot from the control plane (lease polling).
func (q *Queues) CtrlReadSlot(g int) Slot {
	b := q.block(g)
	off := g - q.bounds[b]
	var s Slot
	unpackMeta(q.planeMeta[b].CtrlRead(off), &s)
	s.TxnID = q.planeTxn[b].CtrlRead(off)
	s.LeaseNs = int64(q.planeLease[b].CtrlRead(off))
	return s
}

// CtrlWriteSlot stores s at global slot index g from the control plane —
// the write half of CtrlReadSlot, used when installing migrated queue state.
func (q *Queues) CtrlWriteSlot(g int, s Slot) {
	b := q.block(g)
	off := g - q.bounds[b]
	q.planeMeta[b].CtrlWrite(off, packMeta(s))
	q.planeTxn[b].CtrlWrite(off, s.TxnID)
	q.planeLease[b].CtrlWrite(off, uint64(s.LeaseNs))
}

// CtrlLoadQueue assigns the region [left, right) to queue qi and installs
// slots as its contents in FIFO order — the inverse of CtrlQueueSlots, used
// to import a migrated lock's queue without replaying its requests through
// the grant logic (replay would re-decide grants and can diverge from the
// exporter's decisions). Counters are derived from the slots: occupancy and
// tail from the slot count, the exclusive counter from exclusive slots, the
// waiting counter from never-granted slots, and head from zero.
func (q *Queues) CtrlLoadQueue(qi int, left, right uint64, slots []Slot) {
	if uint64(len(slots)) > right-left {
		panic(fmt.Sprintf("sharedqueue: %d slots exceed region [%d,%d)", len(slots), left, right))
	}
	q.CtrlSetRegion(qi, left, right)
	var excl, wait uint64
	for k, s := range slots {
		q.CtrlWriteSlot(SlotIndex(left, right-left, uint64(k)), s)
		if s.Exclusive {
			excl++
		}
		if !s.Granted {
			wait++
		}
	}
	q.count.CtrlWrite(qi, uint64(len(slots)))
	q.excl.CtrlWrite(qi, excl)
	q.wait.CtrlWrite(qi, wait)
	q.tail.CtrlWrite(qi, uint64(len(slots)))
}

// CtrlQueueSlots returns the occupied slots of queue qi in FIFO order,
// head first — used when draining a queue to move a lock.
func (q *Queues) CtrlQueueSlots(qi int) []Slot {
	st := q.CtrlState(qi)
	if st.Capacity() == 0 {
		return nil
	}
	out := make([]Slot, 0, st.Count)
	for k := uint64(0); k < st.Count; k++ {
		g := SlotIndex(st.Left, st.Capacity(), st.Head+k)
		out = append(out, q.CtrlReadSlot(g))
	}
	return out
}
