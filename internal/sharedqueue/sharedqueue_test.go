package sharedqueue

import (
	"testing"
	"testing/quick"

	"netlock/internal/p4sim"
)

func testQueues(t testing.TB) (*p4sim.Pipeline, *Queues) {
	pipe := p4sim.NewPipeline(p4sim.Config{Stages: 12, StageSlots: 4096, MaxResubmits: 64})
	q := New(pipe, Config{
		Name:      "lk",
		MaxQueues: 16,
		Meta:      MetaStages{Bounds: 0, Count: 1, Excl: 2, Wait: 2, Head: 3, Tail: 4},
		Slots: []ArraySpec{
			{Stage: 5, Size: 32},
			{Stage: 6, Size: 32},
		},
	})
	return pipe, q
}

// enqueue runs one enqueue pass: bounds, conditional count increment, tail
// advance, slot write. Returns whether the slot was claimed.
func enqueue(pipe *p4sim.Pipeline, q *Queues, qi int, s Slot) (won bool) {
	pipe.Process(func(c *p4sim.Ctx) {
		l, r := q.Bounds(c, qi)
		_, ok := q.CondIncCount(c, qi, r-l)
		if !ok {
			won = false
			return
		}
		if s.Exclusive {
			q.IncExcl(c, qi)
		}
		ctr := q.IncTail(c, qi)
		q.WriteSlot(c, SlotIndex(l, r-l, ctr), s)
		won = true
	})
	return won
}

// dequeue runs one dequeue pass and returns the released slot.
func dequeue(pipe *p4sim.Pipeline, q *Queues, qi int) (Slot, bool) {
	var out Slot
	var ok bool
	pipe.Process(func(c *p4sim.Ctx) {
		l, r := q.Bounds(c, qi)
		_, deq := q.CondDecCount(c, qi)
		if !deq {
			return
		}
		ctr := q.IncHead(c, qi)
		out = q.ReadSlot(c, SlotIndex(l, r-l, ctr))
		ok = true
	})
	return out, ok
}

func TestConfigValidation(t *testing.T) {
	pipe := p4sim.NewPipeline(p4sim.Config{Stages: 12, StageSlots: 4096, MaxResubmits: 8})
	for name, cfg := range map[string]Config{
		"no queues":      {MaxQueues: 0, Meta: MetaStages{0, 1, 2, 2, 3, 4}, Slots: []ArraySpec{{5, 8}}},
		"no slots":       {MaxQueues: 4, Meta: MetaStages{0, 1, 2, 2, 3, 4}},
		"bad meta order": {MaxQueues: 4, Meta: MetaStages{0, 2, 1, 2, 3, 4}, Slots: []ArraySpec{{5, 8}}},
		"slot too early": {MaxQueues: 4, Meta: MetaStages{0, 1, 2, 2, 3, 4}, Slots: []ArraySpec{{4, 8}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			New(pipe, cfg)
		}()
	}
}

func TestSlotPackingRoundTrip(t *testing.T) {
	f := func(excl, oneRTT bool, tenant, prio uint8, ip uint32, txn uint64, lease int64) bool {
		in := Slot{Exclusive: excl, OneRTT: oneRTT, Tenant: tenant, Priority: prio, ClientIP: ip, TxnID: txn, LeaseNs: lease}
		var out Slot
		unpackMeta(packMeta(in), &out)
		out.TxnID = in.TxnID
		out.LeaseNs = in.LeaseNs
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEnqueueDequeueFIFO(t *testing.T) {
	pipe, q := testQueues(t)
	q.CtrlSetRegion(3, 10, 20)
	for i := uint64(0); i < 5; i++ {
		if !enqueue(pipe, q, 3, Slot{TxnID: 100 + i, ClientIP: uint32(i)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	st := q.CtrlState(3)
	if st.Count != 5 || st.Tail != 5 || st.Head != 0 {
		t.Fatalf("state after enqueues: %+v", st)
	}
	for i := uint64(0); i < 5; i++ {
		s, ok := dequeue(pipe, q, 3)
		if !ok || s.TxnID != 100+i {
			t.Fatalf("dequeue %d: got %+v ok=%v", i, s, ok)
		}
	}
	if _, ok := dequeue(pipe, q, 3); ok {
		t.Fatalf("dequeue from empty queue should fail")
	}
}

func TestFullQueueRejects(t *testing.T) {
	pipe, q := testQueues(t)
	q.CtrlSetRegion(0, 0, 3)
	for i := 0; i < 3; i++ {
		if !enqueue(pipe, q, 0, Slot{TxnID: uint64(i)}) {
			t.Fatalf("enqueue %d should succeed", i)
		}
	}
	if enqueue(pipe, q, 0, Slot{TxnID: 99}) {
		t.Fatalf("enqueue into full region should fail")
	}
	st := q.CtrlState(0)
	if st.Count != 3 || st.Tail != 3 {
		t.Fatalf("full-queue state: %+v", st)
	}
	// After one dequeue, one slot frees up.
	if _, ok := dequeue(pipe, q, 0); !ok {
		t.Fatalf("dequeue failed")
	}
	if !enqueue(pipe, q, 0, Slot{TxnID: 99}) {
		t.Fatalf("enqueue after dequeue should succeed")
	}
}

func TestWrapAround(t *testing.T) {
	pipe, q := testQueues(t)
	q.CtrlSetRegion(1, 30, 34) // spans the block boundary at 32
	for round := uint64(0); round < 20; round++ {
		if !enqueue(pipe, q, 1, Slot{TxnID: round}) {
			t.Fatalf("enqueue round %d failed", round)
		}
		s, ok := dequeue(pipe, q, 1)
		if !ok || s.TxnID != round {
			t.Fatalf("round %d: got %+v", round, s)
		}
	}
	st := q.CtrlState(1)
	if st.Head != 20 || st.Tail != 20 || st.Count != 0 {
		t.Fatalf("counters after wrap: %+v", st)
	}
}

func TestExclusiveCounter(t *testing.T) {
	pipe, q := testQueues(t)
	q.CtrlSetRegion(2, 0, 8)
	enqueue(pipe, q, 2, Slot{Exclusive: false})
	enqueue(pipe, q, 2, Slot{Exclusive: true})
	enqueue(pipe, q, 2, Slot{Exclusive: true})
	if got := q.CtrlState(2).Excl; got != 2 {
		t.Fatalf("excl = %d, want 2", got)
	}
	// DecExcl clamps at zero.
	for i := 0; i < 4; i++ {
		pipe.Process(func(c *p4sim.Ctx) { q.DecExcl(c, 2) })
	}
	if got := q.CtrlState(2).Excl; got != 0 {
		t.Fatalf("excl after clamped decrements = %d, want 0", got)
	}
}

func TestReadOpsDoNotModify(t *testing.T) {
	pipe, q := testQueues(t)
	q.CtrlSetRegion(0, 0, 8)
	enqueue(pipe, q, 0, Slot{Exclusive: true, TxnID: 7})
	pipe.Process(func(c *p4sim.Ctx) {
		if got := q.ReadCount(c, 0); got != 1 {
			t.Errorf("ReadCount = %d, want 1", got)
		}
		if got := q.ReadExcl(c, 0); got != 1 {
			t.Errorf("ReadExcl = %d, want 1", got)
		}
		if got := q.ReadHead(c, 0); got != 0 {
			t.Errorf("ReadHead = %d, want 0", got)
		}
	})
	st := q.CtrlState(0)
	if st.Count != 1 || st.Excl != 1 || st.Head != 0 || st.Tail != 1 {
		t.Fatalf("reads modified state: %+v", st)
	}
}

func TestSeparateQueuesIndependent(t *testing.T) {
	pipe, q := testQueues(t)
	q.CtrlSetRegion(0, 0, 4)
	q.CtrlSetRegion(1, 4, 8)
	enqueue(pipe, q, 0, Slot{TxnID: 1})
	enqueue(pipe, q, 1, Slot{TxnID: 2})
	s0, _ := dequeue(pipe, q, 0)
	s1, _ := dequeue(pipe, q, 1)
	if s0.TxnID != 1 || s1.TxnID != 2 {
		t.Fatalf("queues interfered: %d %d", s0.TxnID, s1.TxnID)
	}
}

func TestCtrlSetRegionValidation(t *testing.T) {
	_, q := testQueues(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for invalid region")
		}
	}()
	q.CtrlSetRegion(0, 10, 1000)
}

func TestCtrlQueueSlots(t *testing.T) {
	pipe, q := testQueues(t)
	q.CtrlSetRegion(5, 8, 12)
	for i := uint64(0); i < 3; i++ {
		enqueue(pipe, q, 5, Slot{TxnID: i * 10})
	}
	dequeue(pipe, q, 5)
	slots := q.CtrlQueueSlots(5)
	if len(slots) != 2 || slots[0].TxnID != 10 || slots[1].TxnID != 20 {
		t.Fatalf("drain snapshot wrong: %+v", slots)
	}
	// Unconfigured queue has no capacity and no slots.
	if got := q.CtrlQueueSlots(7); got != nil {
		t.Fatalf("unconfigured queue slots = %v, want nil", got)
	}
}

func TestTotalSlotsAndMaxQueues(t *testing.T) {
	_, q := testQueues(t)
	if q.TotalSlots() != 64 {
		t.Fatalf("total slots = %d, want 64", q.TotalSlots())
	}
	if q.MaxQueues() != 16 {
		t.Fatalf("max queues = %d, want 16", q.MaxQueues())
	}
}

func TestSlotIndexPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	SlotIndex(0, 0, 1)
}

// Property: for any sequence of enqueue/dequeue operations, the invariant
// count == tail - head holds, and count never exceeds capacity.
func TestCounterInvariantProperty(t *testing.T) {
	f := func(ops []bool, capRaw uint8) bool {
		capacity := uint64(capRaw%10) + 1
		pipe, q := testQueues(t)
		q.CtrlSetRegion(0, 0, capacity)
		for _, isEnq := range ops {
			if isEnq {
				enqueue(pipe, q, 0, Slot{})
			} else {
				dequeue(pipe, q, 0)
			}
			st := q.CtrlState(0)
			if st.Count != st.Tail-st.Head || st.Count > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: FIFO order is preserved across arbitrary interleavings and
// wrap-arounds.
func TestFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		pipe, q := testQueues(t)
		q.CtrlSetRegion(0, 3, 8) // capacity 5, offset to exercise wrap
		nextIn, nextOut := uint64(0), uint64(0)
		for _, isEnq := range ops {
			if isEnq {
				if enqueue(pipe, q, 0, Slot{TxnID: nextIn}) {
					nextIn++
				}
			} else {
				if s, ok := dequeue(pipe, q, 0); ok {
					if s.TxnID != nextOut {
						return false
					}
					nextOut++
				}
			}
		}
		return nextOut <= nextIn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
