package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
	"netlock/internal/ctrlplane"
	"netlock/internal/fabric"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

// runMultirack drives Zipf-skewed ordered-2PL transactions across a
// multi-rack fabric while the fabric controller re-homes the hottest
// shard between racks mid-run and then kills a rack's chain head. The
// "embedded" matrix leg runs a 2-rack fabric on a clean network; the
// "udp" leg a 4-rack fabric under the scenario chaos profile.
//
// Two oracles validate every run. The per-lock trace goes through
// internal/check as usual (no lost or doubled grants across the re-home
// and the head kill). On top of that, every grant records which rack
// issued it, and per lock the observed rack sequence must walk the
// shard's home history in order — a grant from the old home after one
// from the new home would mean the shard was live in two racks at once,
// exactly what the epoch fence forbids.
func runMultirack(cfg Config) (*Summary, error) {
	racks := 4
	if cfg.Plane != "udp" {
		racks = 2
	}
	workers := 4
	txnsPer := 40
	if cfg.Short {
		txnsPer = 12
	}
	if cfg.Plane == "udp" {
		txnsPer /= 2
	}
	const (
		pool        = 24
		locksPerTxn = 2
		shards      = 16
	)

	fcfg := fabric.Config{
		Racks:  racks,
		Shards: shards,
		Rack: ctrlplane.Config{
			Switches:  2, // head kill must be survivable on every rack
			Servers:   2,
			DataPlane: switchdp.Config{MaxLocks: 16, TotalSlots: 128, Priorities: 1},
		},
	}
	if cfg.Plane == "udp" && cfg.Chaos {
		chaos := scenarioChaos(cfg.Seed)
		fcfg.Chaos = &chaos
	}
	f, err := fabric.New(fcfg)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	nClients := workers
	if nClients > 4 {
		nClients = 4
	}
	clients := make([]*transport.Client, nClients)
	for i := range clients {
		c, err := f.NewClient(transport.ClientConfig{
			RetryInterval: 15 * time.Millisecond,
			FlushInterval: 200 * time.Microsecond,
		})
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}

	rec := newRecorder()
	lat := &latencies{}
	// rackLog captures each lock's grant-rack sequence. Exclusive grants
	// on one lock serialize (the next is only issued after the previous
	// release), and both are recorded while held, so per-lock append order
	// is the grant order.
	var rackMu sync.Mutex
	rackLog := make(map[uint32][]int)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// The fabric-control goroutine fires at the halfway milestone: re-home
	// the Zipf-hottest lock's shard to the next rack, then kill that
	// destination rack's head — the move must survive its importer failing
	// over.
	m0 := f.Controller().Map()
	hotShard := m0.ShardOf(1)
	srcRack := m0.RackAt(hotShard)
	dstRack := (srcRack + 1) % racks
	var committed atomic.Int64
	half := int64(workers*txnsPer) / 2
	ctlErr := make(chan error, 1)
	ctlDone := make(chan struct{})
	go func() {
		defer close(ctlDone)
		for committed.Load() < half {
			select {
			case <-ctx.Done():
				ctlErr <- nil // workers report the wedge with more context
				return
			case <-time.After(time.Millisecond):
			}
		}
		if err := f.Controller().Rehome(hotShard, dstRack); err != nil {
			ctlErr <- failf(cfg.Seed, "scenario multirack: rehome shard %d: %v", hotShard, err)
			return
		}
		if err := f.Controller().FailRack(dstRack); err != nil {
			ctlErr <- failf(cfg.Seed, "scenario multirack: fail rack %d head: %v", dstRack, err)
			return
		}
		ctlErr <- nil
	}()

	start := time.Now()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			zipf := rand.NewZipf(rng, 1.2, 1, pool-1)
			c := clients[w%len(clients)]
			for i := 0; i < txnsPer; i++ {
				// Zipf-skewed distinct lock set, acquired in ascending order
				// (a global order discipline keeps the workload deadlock-free
				// so every txn must commit — lost grants cannot hide behind
				// aborts).
				set := map[uint32]bool{}
				for len(set) < locksPerTxn {
					set[uint32(zipf.Uint64())+1] = true
				}
				locks := make([]uint32, 0, locksPerTxn)
				for id := range set {
					locks = append(locks, id)
				}
				sort.Slice(locks, func(a, b int) bool { return locks[a] < locks[b] })

				held := make([]*transport.Grant, 0, locksPerTxn)
				for _, id := range locks {
					s := time.Now()
					g, err := c.Acquire(ctx, id, netlock.Exclusive)
					if err != nil {
						errs[w] = failf(cfg.Seed, "scenario multirack: worker %d acquire lock %d: %v", w, id, err)
						for _, hg := range held {
							rec.released(hg.LockID(), hg.Txn(), true, 0)
							hg.Release()
						}
						return
					}
					lat.add(time.Since(s))
					rec.granted(id, g.Txn(), true, 0, 0)
					rackMu.Lock()
					rackLog[id] = append(rackLog[id], g.Rack())
					rackMu.Unlock()
					held = append(held, g)
				}
				time.Sleep(200 * time.Microsecond)
				for j := len(held) - 1; j >= 0; j-- {
					g := held[j]
					rec.released(g.LockID(), g.Txn(), true, 0)
					g.Release()
				}
				committed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	<-ctlDone
	if err := <-ctlErr; err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if v := rec.quiesce(); v != nil {
		return nil, failf(cfg.Seed, "scenario multirack: trace: %v", v)
	}

	hist := f.Controller().History()
	if len(hist) != 1 || hist[0].Shard != hotShard || hist[0].To != dstRack {
		return nil, failf(cfg.Seed, "scenario multirack: rehome history %+v, want shard %d -> rack %d", hist, hotShard, dstRack)
	}
	if err := checkRackSequences(m0, hist, rackLog); err != nil {
		return nil, failf(cfg.Seed, "scenario multirack: %v", err)
	}

	grants, _, releases := rec.stats()
	if want := workers * txnsPer * locksPerTxn; grants != want || releases != want {
		return nil, failf(cfg.Seed, "scenario multirack: %d grants, %d releases, want %d", grants, releases, want)
	}

	// Per-rack grant breakdown for the figure.
	perRack := make([]float64, racks)
	for _, seq := range rackLog {
		for _, rk := range seq {
			if rk >= 0 && rk < racks {
				perRack[rk]++
			}
		}
	}
	extra := map[string]float64{
		"racks":         float64(racks),
		"rehomed_shard": float64(hotShard),
		"moved_locks":   float64(hist[0].Locks),
	}
	for rk, n := range perRack {
		extra[fmt.Sprintf("rack%d_grants", rk)] = n
	}

	p50, p99 := lat.percentiles()
	return &Summary{
		Name:        "multirack",
		Plane:       cfg.Plane,
		Seed:        cfg.Seed,
		Chaos:       cfg.Chaos,
		DurationSec: elapsed.Seconds(),
		Ops:         grants,
		Throughput:  float64(grants) / elapsed.Seconds(),
		P50us:       p50,
		P99us:       p99,
		Commits:     workers * txnsPer,
		Extra:       extra,
	}, nil
}

// checkRackSequences is the no-lock-lives-in-two-racks oracle: for every
// lock, the racks that granted it must follow the shard's home history in
// order — initial home first, then each re-home destination, never back.
func checkRackSequences(m0 interface {
	ShardOf(uint32) uint32
	RackAt(uint32) int
}, hist []fabric.Rehome, rackLog map[uint32][]int) error {
	for lock, seq := range rackLog {
		shard := m0.ShardOf(lock)
		homes := []int{m0.RackAt(shard)}
		for _, mv := range hist {
			if mv.Shard == shard {
				homes = append(homes, mv.To)
			}
		}
		idx := 0
		for _, rk := range seq {
			for idx < len(homes) && homes[idx] != rk {
				idx++
			}
			if idx == len(homes) {
				return fmt.Errorf("lock %d granted by rack %d outside its home history %v (grant racks %v)", lock, rk, homes, seq)
			}
		}
	}
	return nil
}
