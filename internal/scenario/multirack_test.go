package scenario

import (
	"testing"

	"netlock/internal/check"
)

// TestMultirackSweep is the multirack acceptance sweep: the scenario's
// oracles (check per-lock trace, no lock live in two racks across the
// re-home, every transaction commits through the rack-head kill) must
// hold across 100 seeds on both a 2-rack and a 4-rack fabric. -short
// trims the sweep for inner loops; a failure replays with -netlock.seed.
func TestMultirackSweep(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 8
	}
	var seeds []int64
	if s, ok := check.ReplaySeed(); ok {
		seeds = []int64{s}
	} else {
		for i := 0; i < n; i++ {
			seeds = append(seeds, int64(i+1))
		}
	}
	legs := []struct {
		name  string
		plane string
		chaos bool
	}{
		{"2rack", "embedded", false},
		{"4rack-chaos", "udp", true},
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				sum, err := runMultirack(Config{Seed: seed, Plane: leg.plane, Chaos: leg.chaos, Short: true})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if sum.Ops == 0 {
					t.Fatalf("seed %d: vacuous run", seed)
				}
			}
		})
	}
}
