package scenario

import (
	"testing"
	"time"

	"netlock/internal/check"
)

// sweepSeeds returns the 2PL sweep's seed list: the pinned replay seed
// when -netlock.seed (or NETLOCK_SEED) is set, else 1..100 — trimmed
// under -short so the race-detector CI leg stays fast.
func sweepSeeds(t *testing.T) []int64 {
	if s, ok := check.ReplaySeed(); ok {
		return []int64{s}
	}
	n := 100
	if testing.Short() {
		n = 12
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestTwoPLSweep is the acceptance sweep: across 100 seeds and both
// resolution policies, every deadlock-prone transaction batch must fully
// commit — zero unresolved deadlocks — with clean per-lock and
// transaction-level traces. Failures replay with -netlock.seed=N.
func TestTwoPLSweep(t *testing.T) {
	for _, policy := range []Policy{PolicyWaitDie, PolicyWoundWait} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range sweepSeeds(t) {
				cfg := Config{Seed: seed, Plane: "embedded", Short: true}
				sum, err := runTwoPL(cfg, policy)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if sum.Commits == 0 {
					t.Fatalf("seed %d: vacuous sweep entry", seed)
				}
			}
		})
	}
}

// TestTwoPLCycleDetectorOracle runs PolicyNone — no request-time checks,
// so real deadlocks form and ONLY the wait-for-graph guard can resolve
// them. Every batch still committing proves the detector finds cycles and
// its victim choice unwedges the system; cyclesDetected > 0 proves the
// runs were not vacuously conflict-free.
func TestTwoPLCycleDetectorOracle(t *testing.T) {
	pr := twoPLParams{
		workers:     4,
		txnsPer:     4,
		lockPool:    3, // every txn takes the whole pool in random order
		locksPerTxn: 3,
		think:       500 * time.Microsecond,
		guardEvery:  500 * time.Microsecond,
		timeout:     30 * time.Second,
	}
	totalCycles := 0
	for _, seed := range check.SeedsN(3) {
		cfg := Config{Seed: seed, Plane: "embedded", Short: true}
		plane, err := twoPLPlane(cfg, pr)
		if err != nil {
			t.Fatalf("seed %d: plane: %v", seed, err)
		}
		sum, p, err := runTwoPLOn(plane, PolicyNone, cfg, pr)
		plane.Close()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := p.statsSnapshot()
		totalCycles += st.cyclesDetected
		if st.dieAborts != 0 || st.woundAborts != 0 {
			t.Fatalf("seed %d: PolicyNone produced policy aborts (%d die, %d wound)", seed, st.dieAborts, st.woundAborts)
		}
		if sum.Commits != pr.workers*pr.txnsPer {
			t.Fatalf("seed %d: %d commits", seed, sum.Commits)
		}
	}
	if totalCycles == 0 {
		t.Fatal("oracle vacuous: no deadlock cycles formed across all seeds; tighten the workload")
	}
}

// TestTwoPLPolicySeparation checks each policy only uses its own abort
// mechanism at request time: wait-die never wounds, wound-wait never dies.
func TestTwoPLPolicySeparation(t *testing.T) {
	for _, seed := range check.SeedsN(2) {
		cfg := Config{Seed: seed, Plane: "embedded", Short: true}
		pr := twoPLSizes(cfg)

		plane, err := twoPLPlane(cfg, pr)
		if err != nil {
			t.Fatalf("plane: %v", err)
		}
		_, p, err := runTwoPLOn(plane, PolicyWaitDie, cfg, pr)
		plane.Close()
		if err != nil {
			t.Fatalf("seed %d wait-die: %v", seed, err)
		}
		if st := p.statsSnapshot(); st.woundAborts != 0 {
			t.Fatalf("seed %d: wait-die wounded %d holders", seed, st.woundAborts)
		}

		plane, err = twoPLPlane(cfg, pr)
		if err != nil {
			t.Fatalf("plane: %v", err)
		}
		_, p, err = runTwoPLOn(plane, PolicyWoundWait, cfg, pr)
		plane.Close()
		if err != nil {
			t.Fatalf("seed %d wound-wait: %v", seed, err)
		}
		if st := p.statsSnapshot(); st.dieAborts != 0 {
			t.Fatalf("seed %d: wound-wait self-died %d times", seed, st.dieAborts)
		}
	}
}
