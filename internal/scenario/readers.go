package scenario

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
	"netlock/internal/lockserver"
	"netlock/internal/obs"
	"netlock/internal/switchdp"
)

// runReaders is the reader-mostly workload: 95% shared acquisitions over
// a hot lock set with a 5% writer mix, under short leases. On the
// embedded plane a fraction of readers "crash" — they abandon their
// grant without releasing — and the lease sweep must reclaim every one:
// after the load drains, an exclusive writer must get through each lock,
// and the lease-expiry counter must cover the abandoned grants. The UDP
// leg runs the same shared/exclusive mix under chaos without abandonment
// (crash-reclaim semantics over the wire are a switch-sweep concern the
// conformance suite owns).
func runReaders(cfg Config) (*Summary, error) {
	const (
		hotSet   = uint32(16)
		workers  = 6
		lease    = 25 * time.Millisecond
		abandonP = 0.02 // per shared grant, embedded only
	)
	opsPer := 2000
	if cfg.Short {
		opsPer = 250
	}
	if cfg.Plane == "udp" {
		opsPer /= 4
	}
	embedded := cfg.Plane != "udp"

	pc := PlaneConfig{
		Kind:    cfg.Plane,
		Seed:    cfg.Seed,
		Chaos:   cfg.Chaos,
		Workers: workers,
		Embedded: netlock.Config{
			Shards:         2,
			Servers:        1,
			SwitchSlots:    128,
			MaxSwitchLocks: 16,
			DefaultLease:   lease,
			SweepInterval:  time.Millisecond,
			Metrics:        true,
		},
		DP:      switchdp.Config{MaxLocks: 16, TotalSlots: 128, Priorities: 1},
		Servers: 1,
		Server:  lockserver.Config{},
	}
	for id := uint32(1); id <= hotSet/2; id++ {
		pc.SwitchLocks = append(pc.SwitchLocks, SwitchLock{ID: id, Slots: 8})
	}
	plane, err := NewPlane(pc)
	if err != nil {
		return nil, err
	}
	defer plane.Close()

	rec := newRecorder()
	lat := &latencies{}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var abandoned atomic.Int64
	start := time.Now()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			for i := 0; i < opsPer; i++ {
				id := uint32(rng.Intn(int(hotSet))) + 1
				excl := rng.Float64() < 0.05
				mode := netlock.Shared
				if excl {
					mode = netlock.Exclusive
				}
				s := time.Now()
				h, err := plane.Acquire(ctx, w, id, mode)
				if err != nil {
					errs[w] = failf(cfg.Seed, "scenario readers: worker %d acquire lock %d: %v", w, id, err)
					return
				}
				lat.add(time.Since(s))
				rec.granted(id, h.Txn(), excl, 0, 0)
				if embedded && !excl && rng.Float64() < abandonP {
					// Crashed reader: never releases. The lease sweep
					// must reclaim the share; the trace records the
					// grant as lost so conservation still holds.
					rec.lost(id, h.Txn(), excl)
					abandoned.Add(1)
					continue
				}
				rec.released(id, h.Txn(), excl, 0)
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var expiries uint64
	if embedded {
		// Let the sweep reclaim everything the crashed readers stranded,
		// then prove reclamation: an exclusive writer must get through
		// every hot lock.
		time.Sleep(3 * lease)
		for id := uint32(1); id <= hotSet; id++ {
			wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
			h, err := plane.Acquire(wctx, 0, id, netlock.Exclusive)
			wcancel()
			if err != nil {
				return nil, failf(cfg.Seed, "scenario readers: post-crash exclusive on lock %d never granted (lease reclaim failed): %v", id, err)
			}
			rec.granted(id, h.Txn(), true, 0, 0)
			rec.released(id, h.Txn(), true, 0)
			h.Release()
		}
		if ms, ok := plane.(MetricsSource); ok {
			if snap := ms.Metrics(); snap != nil {
				expiries = snap.Counter(obs.CtrLeaseExpiries)
			}
		}
		if ab := uint64(abandoned.Load()); expiries < ab {
			return nil, failf(cfg.Seed, "scenario readers: %d grants abandoned but only %d lease expiries", ab, expiries)
		}
	}

	if v := rec.quiesce(); v != nil {
		return nil, failf(cfg.Seed, "scenario readers: trace: %v", v)
	}
	grants, _, _ := rec.stats()
	if grants < workers*opsPer {
		return nil, failf(cfg.Seed, "scenario readers: vacuous run: %d grants", grants)
	}

	p50, p99 := lat.percentiles()
	return &Summary{
		Name:          "readers",
		Plane:         plane.Name(),
		Seed:          cfg.Seed,
		Chaos:         cfg.Chaos,
		DurationSec:   elapsed.Seconds(),
		Ops:           grants,
		Throughput:    float64(grants) / elapsed.Seconds(),
		P50us:         p50,
		P99us:         p99,
		LeaseExpiries: expiries,
		Extra:         map[string]float64{"abandoned": float64(abandoned.Load())},
	}, nil
}
