package scenario

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
	"netlock/internal/lockserver"
	"netlock/internal/rebalance"
	"netlock/internal/switchdp"
)

// The rebalance scenario runs the online lock-placement rebalancer against
// its worst customer: Zipf-skewed ordered-acquire 2PL traffic whose hot set
// rotates mid-run, while the control plane drains a lock server and a rack
// node is killed — all live. Nothing is pre-installed: every switch
// residency is earned through a live migration planned by the loop.
//
//   - embedded plane: the sharded Manager's built-in rebalance loop
//     (Config.RebalanceInterval) moves locks between the data-plane model
//     and the in-process servers; server 0 is drained at one quarter of the
//     run and killed at three quarters (lossless by then — the drain left
//     it empty).
//   - udp plane: the same internal/rebalance loop drives
//     ctrlplane.Controller's epoch-fenced chain migrations over a 3-member
//     replicated switch chain under seeded client-edge chaos; server 0 is
//     drained at one quarter and the chain head is killed at three
//     quarters, so moves race both the drain and the epoch change.
//
// Safety is checked at two levels. The per-lock trace (internal/check)
// proves zero lost and zero doubled grants end to end. On top of that a
// per-move oracle consumes every move report: no transaction may cross the
// residency boundary twice in one move, and the waiters a move carried must
// be granted afterwards — all of them, in the exact (lock, mode) FIFO order
// the report recorded at the boundary.
type rebalanceParams struct {
	workers     int
	txnsPer     int
	poolSize    int // locks per hot-set phase
	locksPerTxn int
	think       time.Duration
	timeout     time.Duration
}

func rebalanceSizes(cfg Config) rebalanceParams {
	p := rebalanceParams{
		workers:     4,
		txnsPer:     24,
		poolSize:    6,
		locksPerTxn: 2,
		think:       200 * time.Microsecond,
		timeout:     60 * time.Second,
	}
	if cfg.Short {
		p.txnsPer = 8
		p.timeout = 30 * time.Second
	}
	if cfg.Plane == "udp" {
		p.txnsPer /= 2
		if p.txnsPer < 4 {
			p.txnsPer = 4
		}
	}
	return p
}

// moveOracle validates every rebalancer move report as it lands and keeps
// the waiter orderings for the post-run FIFO check.
type moveOracle struct {
	mu         sync.Mutex
	promotes   int
	demotes    int
	failures   int
	waitOrders []waitOrder
	// reports keeps every successful move for post-mortem dumps: when the
	// trace checker flags a lock, its move history is the first thing a
	// debugger needs.
	reports []moveRec
	viol    error
}

// moveRec is one retained move report.
type moveRec struct {
	lock     uint32
	toSwitch bool
	granted  []uint64
	waiting  []uint64
}

// waitOrder is the (lock, mode) FIFO queue a move carried across the
// boundary, in queue order. The workload is all-exclusive, so the per-lock
// order is the full FIFO contract.
type waitOrder struct {
	lock    uint32
	waiting []uint64
}

func (o *moveOracle) record(lockID uint32, toSwitch bool, granted, waiting []uint64, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err != nil {
		// Failed moves (capacity races, a mid-kill chain) are re-planned by
		// the loop; only count them.
		o.failures++
		return
	}
	seen := make(map[uint64]bool, len(granted)+len(waiting))
	for _, txn := range granted {
		if seen[txn] && o.viol == nil {
			o.viol = fmt.Errorf("move of lock %d carried granted txn %d twice", lockID, txn)
		}
		seen[txn] = true
	}
	for _, txn := range waiting {
		if seen[txn] && o.viol == nil {
			o.viol = fmt.Errorf("move of lock %d carried txn %d twice", lockID, txn)
		}
		seen[txn] = true
	}
	if toSwitch {
		o.promotes++
	} else {
		o.demotes++
	}
	o.reports = append(o.reports, moveRec{
		lock:     lockID,
		toSwitch: toSwitch,
		granted:  append([]uint64(nil), granted...),
		waiting:  append([]uint64(nil), waiting...),
	})
	if len(waiting) > 0 {
		o.waitOrders = append(o.waitOrders, waitOrder{lockID, append([]uint64(nil), waiting...)})
	}
}

// lockHistory formats every retained move of one lock, for violation
// post-mortems.
func (o *moveOracle) lockHistory(lock uint32) string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := ""
	for _, r := range o.reports {
		if r.lock != lock {
			continue
		}
		dir := "demote"
		if r.toSwitch {
			dir = "promote"
		}
		out += fmt.Sprintf(" [%s granted=%d waiting=%d]", dir, r.granted, r.waiting)
	}
	if out == "" {
		return " (no moves)"
	}
	return out
}

func (o *moveOracle) counts() (promotes, demotes, failures int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.promotes, o.demotes, o.failures
}

// grantLog records the order grants completed per lock. For an exclusive
// lock the recording order equals the true grant order: the next grant is
// only delivered after the previous holder's release, which follows its
// recording.
type grantLog struct {
	mu    sync.Mutex
	order map[uint32][]uint64
}

func newGrantLog() *grantLog { return &grantLog{order: make(map[uint32][]uint64)} }

func (g *grantLog) add(lock uint32, txn uint64) {
	g.mu.Lock()
	g.order[lock] = append(g.order[lock], txn)
	g.mu.Unlock()
}

// fifoError is a verifyFIFO violation, typed so the caller can dump the
// offending lock's move history in the failure message.
type fifoError struct {
	lock uint32
	msg  string
}

func (e *fifoError) Error() string { return e.msg }

// verifyFIFO checks every migrated waiter queue against the realized grant
// order: each waiter a move carried must have been granted afterwards, and
// the waiters' relative grant order must match the migrated queue order.
func (g *grantLog) verifyFIFO(orders []waitOrder) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, wo := range orders {
		members := make(map[uint64]bool, len(wo.waiting))
		for _, txn := range wo.waiting {
			members[txn] = true
		}
		var got []uint64
		for _, txn := range g.order[wo.lock] {
			if members[txn] {
				got = append(got, txn)
			}
		}
		if len(got) != len(wo.waiting) {
			return &fifoError{wo.lock, fmt.Sprintf("lock %d: move carried %d waiters %v, only %d granted afterwards (%v)",
				wo.lock, len(wo.waiting), wo.waiting, len(got), got)}
		}
		for i := range got {
			if got[i] != wo.waiting[i] {
				return &fifoError{wo.lock, fmt.Sprintf("lock %d: migrated FIFO %v granted out of order as %v",
					wo.lock, wo.waiting, got)}
			}
		}
	}
	return nil
}

// hotPool returns phase p's lock IDs: disjoint sets, so a rotation swaps
// the entire working set and the old one must be demoted to make room.
func hotPool(p int32, size int) []uint32 {
	base := uint32(1)
	if p > 0 {
		base = uint32(11)
	}
	pool := make([]uint32, size)
	for i := range pool {
		pool[i] = base + uint32(i)
	}
	return pool
}

// pickZipf draws n distinct locks from pool, Zipf-skewed toward its head,
// sorted ascending (ordered 2PL: deadlock-free by construction, so every
// stall during a move or a kill is the migration's fault).
func pickZipf(rng *rand.Rand, zipf *rand.Zipf, pool []uint32, n int) []uint32 {
	seen := make(map[uint32]bool, n)
	var set []uint32
	for len(set) < n {
		id := pool[zipf.Uint64()]
		if !seen[id] {
			seen[id] = true
			set = append(set, id)
		}
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set
}

func runRebalance(cfg Config) (*Summary, error) {
	pr := rebalanceSizes(cfg)
	oracle := &moveOracle{}
	glog := newGrantLog()

	pc := PlaneConfig{
		Kind:     cfg.Plane,
		Seed:     cfg.Seed,
		Chaos:    cfg.Chaos,
		Workers:  pr.workers,
		Switches: 3, // udp: replicated chain, survivable head kill mid-move
		Embedded: netlock.Config{
			Shards:            1,
			Servers:           2,
			SwitchSlots:       64,
			MaxSwitchLocks:    16,
			RebalanceInterval: 2 * time.Millisecond,
			RebalanceBudget:   2,
			OnRebalanceMove: func(mv netlock.RebalanceMove) {
				oracle.record(mv.LockID, mv.ToSwitch, mv.Granted, mv.Waiting, mv.Err)
			},
		},
		DP:      switchdp.Config{MaxLocks: 16, TotalSlots: 64, Priorities: 1},
		Servers: 2,
		Server:  lockserver.Config{},
	}
	plane, err := NewPlane(pc)
	if err != nil {
		return nil, err
	}
	defer plane.Close()

	// Plane-specific control surfaces: the rebalance loop and the drain.
	var drain func() error
	var stopLoop func()
	switch pl := plane.(type) {
	case *embeddedPlane:
		// The Manager's built-in loop is already ticking (RebalanceInterval);
		// it stops with the Manager at Close.
		drain = func() error { return pl.m.DrainServer(0, 1) }
		stopLoop = func() {}
	case *udpPlane:
		ctrl := pl.tp.Controller()
		loop := rebalance.New(ctrl.Mover(), rebalance.Config{
			Interval: 3 * time.Millisecond,
			Budget:   2,
			OnMove: func(r rebalance.Report, err error) {
				oracle.record(r.LockID, r.ToSwitch, r.Granted, r.Waiting, err)
			},
		})
		loop.Start()
		drain = func() error { return ctrl.DrainServer(0, 1) }
		stopLoop = loop.Stop
	default:
		return nil, fmt.Errorf("scenario rebalance: plane %s has no rebalancer", plane.Name())
	}
	defer stopLoop()
	fi, ok := plane.(FaultInjector)
	if !ok {
		return nil, fmt.Errorf("scenario rebalance: plane %s has no FaultInjector", plane.Name())
	}

	rec := newRecorder()
	lat := &latencies{}
	var commits atomic.Int64
	var phase atomic.Int32
	want := pr.workers * pr.txnsPer

	ctx, cancel := context.WithTimeout(context.Background(), pr.timeout)
	defer cancel()

	// The coordinator fires each control action at its commit milestone, so
	// they land mid-sweep regardless of plane speed: drain server 0 at one
	// quarter, rotate the hot set at half, kill a node at three quarters
	// (embedded: the drained — and therefore empty — server 0; udp: the
	// chain head, while the rebalancer's migrations ride the chain).
	type action struct {
		at   int64
		run  func() error
		name string
	}
	kill := func() error { return fi.FailServer(0) }
	if plane.Name() == "udp" {
		kill = fi.FailHead
	}
	actions := []action{
		{int64(want) / 4, drain, "drain-server-0"},
		{int64(want) / 2, func() error { phase.Store(1); return nil }, "hot-set-rotation"},
		{3 * int64(want) / 4, kill, "node-kill"},
	}
	var acted atomic.Int64
	actErr := make(chan error, len(actions))
	stopActs := make(chan struct{})
	var actWG sync.WaitGroup
	actWG.Add(1)
	go func() {
		defer actWG.Done()
		next := 0
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for next < len(actions) {
			select {
			case <-stopActs:
				return
			case <-tick.C:
			}
			if commits.Load() < actions[next].at {
				continue
			}
			if err := actions[next].run(); err != nil {
				actErr <- fmt.Errorf("%s: %w", actions[next].name, err)
				return
			}
			acted.Add(1)
			next++
		}
	}()

	start := time.Now()
	errs := make([]error, pr.workers)
	var wg sync.WaitGroup
	for w := 0; w < pr.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(pr.poolSize-1))
			for i := 0; i < pr.txnsPer; i++ {
				pool := hotPool(phase.Load(), pr.poolSize)
				set := pickZipf(rng, zipf, pool, pr.locksPerTxn)
				var held []heldLock
				for _, lk := range set {
					t0 := time.Now()
					h, err := plane.Acquire(ctx, w, lk, netlock.Exclusive)
					lat.add(time.Since(t0))
					if err != nil {
						errs[w] = fmt.Errorf("txn %d lock %d: %w", i, lk, err)
						for _, hl := range held {
							rec.released(hl.lock, hl.h.Txn(), true, 0)
							hl.h.Release()
						}
						return
					}
					rec.granted(lk, h.Txn(), true, 0, 0)
					glog.add(lk, h.Txn())
					held = append(held, heldLock{lk, h})
				}
				if pr.think > 0 {
					time.Sleep(pr.think)
				}
				for j := len(held) - 1; j >= 0; j-- {
					rec.released(held[j].lock, held[j].h.Txn(), true, 0)
					held[j].h.Release()
				}
				commits.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Traffic has stopped but the loop still ticks: the silent hot set
	// decays out of the demand model and the rebalancer retires it — the
	// demotion path is exercised even on runs fast enough to finish before
	// the rotation's decay caught up.
	decayDeadline := time.Now().Add(5 * time.Second)
	for {
		_, demotes, _ := oracle.counts()
		if demotes >= 1 || time.Now().After(decayDeadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stopActs)
	actWG.Wait()
	stopLoop()

	select {
	case err := <-actErr:
		return nil, failf(cfg.Seed, "scenario rebalance: %v", err)
	default:
	}
	for w, err := range errs {
		if err != nil {
			return nil, failf(cfg.Seed, "scenario rebalance: worker %d wedged: %v", w, err)
		}
	}
	if got := acted.Load(); got != int64(len(actions)) {
		return nil, failf(cfg.Seed, "scenario rebalance: %d/%d control actions fired (run finished too fast?)", got, len(actions))
	}

	promotes, demotes, failures := oracle.counts()
	oracle.mu.Lock()
	viol := oracle.viol
	orders := append([]waitOrder(nil), oracle.waitOrders...)
	oracle.mu.Unlock()
	if viol != nil {
		return nil, failf(cfg.Seed, "scenario rebalance: move oracle: %v", viol)
	}
	if promotes+demotes < 3 {
		return nil, failf(cfg.Seed, "scenario rebalance: only %d live moves completed (%d promotes, %d demotes), want >= 3",
			promotes+demotes, promotes, demotes)
	}
	if demotes == 0 {
		return nil, failf(cfg.Seed, "scenario rebalance: rotation never demoted a cooled lock")
	}
	if err := glog.verifyFIFO(orders); err != nil {
		var fe *fifoError
		if errors.As(err, &fe) {
			glog.mu.Lock()
			grantsForLock := append([]uint64(nil), glog.order[fe.lock]...)
			glog.mu.Unlock()
			return nil, failf(cfg.Seed, "scenario rebalance: migrated FIFO: %v; lock %d moves:%s; grant order %d",
				err, fe.lock, oracle.lockHistory(fe.lock), grantsForLock)
		}
		return nil, failf(cfg.Seed, "scenario rebalance: migrated FIFO: %v", err)
	}

	if v := rec.quiesce(); v != nil {
		glog.mu.Lock()
		grantsForLock := append([]uint64(nil), glog.order[v.Event.Lock]...)
		glog.mu.Unlock()
		return nil, failf(cfg.Seed, "scenario rebalance: trace: %v; lock %d moves:%s; grant order %d",
			v, v.Event.Lock, oracle.lockHistory(v.Event.Lock), grantsForLock)
	}
	if h := rec.holders(); len(h) != 0 {
		return nil, failf(cfg.Seed, "scenario rebalance: %d locks still held after the run drained: %v", len(h), h)
	}
	if c := int(commits.Load()); c != want {
		return nil, failf(cfg.Seed, "scenario rebalance: %d/%d transactions committed", c, want)
	}
	grants, _, releases := rec.stats()
	if grants == 0 || grants != releases {
		return nil, failf(cfg.Seed, "scenario rebalance: %d grants vs %d releases", grants, releases)
	}

	p50, p99 := lat.percentiles()
	return &Summary{
		Name:        "rebalance",
		Plane:       plane.Name(),
		Seed:        cfg.Seed,
		Chaos:       cfg.Chaos,
		DurationSec: elapsed.Seconds(),
		Ops:         grants,
		Throughput:  float64(grants) / elapsed.Seconds(),
		P50us:       p50,
		P99us:       p99,
		Commits:     int(commits.Load()),
		Extra: map[string]float64{
			"promotes":       float64(promotes),
			"demotes":        float64(demotes),
			"move_failures":  float64(failures),
			"actions_fired":  float64(acted.Load()),
			"migrated_fifos": float64(len(orders)),
		},
	}, nil
}
