package scenario

import (
	"testing"

	"netlock/internal/check"
)

// TestTenantsStorm runs the full-size quota storm: 1024 workers — four
// times the wire header's uint8 tenant space — folded 4:1 onto the 256
// wire tenant IDs on the embedded plane, with the obs-vs-trace per-tenant
// counter equality held exactly through the fold. -short skips it; the
// scenario matrix covers the CI-sized configuration.
func TestTenantsStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1024-tenant storm skipped in -short")
	}
	for _, seed := range check.SeedsN(1) {
		sum, err := runTenants(Config{Seed: seed, Plane: "embedded"})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := sum.Extra["tenants"]; got != 1024 {
			t.Fatalf("storm ran %v workers, want 1024", got)
		}
		if got := sum.Extra["wire_tenants"]; got != 256 {
			t.Fatalf("storm folded onto %v wire tenants, want 256", got)
		}
		if sum.Ops == 0 || sum.QuotaRejects == 0 {
			t.Fatalf("vacuous storm: %d ops, %d rejects", sum.Ops, sum.QuotaRejects)
		}
		t.Logf("%s", sum)
	}
}
