package scenario

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"netlock/internal/check"
)

// TestRebalanceSweep is the ISSUE-9 acceptance sweep: the rebalance
// scenario — Zipf hot-set-rotation 2PL while the online rebalancer live-
// migrates locks between switch and servers, a server is drained, and a
// rack node killed mid-move — across 100 seeds on BOTH planes (the
// embedded sharded Manager, and the UDP rack's 3-member replicated chain
// under seeded client-edge chaos). Every run is trace-validated by
// internal/check (zero lost grants by conservation at quiescence, zero
// doubled grants by mutual exclusion / no-duplicate-grant) and each move
// report is validated by the per-move oracle (no transaction crosses the
// boundary twice; migrated waiters granted completely and in FIFO order).
// Each run must complete >= 3 live moves, >= 1 demotion, and the drain.
// -short trims the sweep; -netlock.seed (or NETLOCK_SEED) replays one
// failing seed.
func TestRebalanceSweep(t *testing.T) {
	const sweep = 100
	var seeds []int64
	if s, ok := check.ReplaySeed(); ok {
		seeds = []int64{s}
	} else {
		n := sweep
		if testing.Short() {
			n = 10
		}
		for s := int64(1); s <= int64(n); s++ {
			seeds = append(seeds, s)
		}
	}

	planes := []struct {
		plane string
		chaos bool
	}{
		{"embedded", false},
		{"udp", true},
	}

	// Each udp seed brings up a full rack (3 switches, 2 servers, chaos
	// net); bound the racks alive at once instead of t.Parallel-ing all 100.
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	firstErr := error(nil)
	ran := 0
	for _, pl := range planes {
		for _, seed := range seeds {
			wg.Add(1)
			sem <- struct{}{}
			go func(plane string, chaos bool, seed int64) {
				defer wg.Done()
				defer func() { <-sem }()
				sum, err := runRebalance(Config{Seed: seed, Plane: plane, Chaos: chaos, Short: true})
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("plane %s: %w", plane, err)
					}
					return
				}
				ran++
				if sum.Ops == 0 && firstErr == nil {
					firstErr = failf(seed, "plane %s: vacuous rebalance run: 0 ops", plane)
				}
			}(pl.plane, pl.chaos, seed)
		}
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	t.Logf("rebalance sweep: %d/%d runs clean", ran, 2*len(seeds))
}
