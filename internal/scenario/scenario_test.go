package scenario

import (
	"testing"

	"netlock/internal/check"
)

// TestScenarioMatrix runs every registered scenario on both planes — the
// embedded sharded Manager and the UDP rack under seeded chaos — in the
// CI-sized (Short) configuration. Each run self-validates: trace checked
// by internal/check, scenario-specific invariants (deadlock resolution,
// fairness, lease reclaim, quota isolation) enforced inside Run. Failures
// embed the -netlock.seed replay fragment.
func TestScenarioMatrix(t *testing.T) {
	planes := []struct {
		name  string
		plane string
		chaos bool
	}{
		{"embedded", "embedded", false},
		{"udp-chaos", "udp", true},
	}
	for _, sc := range All() {
		sc := sc
		for _, pl := range planes {
			pl := pl
			t.Run(sc.Name+"/"+pl.name, func(t *testing.T) {
				t.Parallel()
				for _, seed := range check.SeedsN(1) {
					sum, err := sc.Run(Config{Seed: seed, Plane: pl.plane, Chaos: pl.chaos, Short: true})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if sum.Name != sc.Name {
						t.Fatalf("summary name %q for scenario %q", sum.Name, sc.Name)
					}
					if sum.Plane != pl.plane {
						t.Fatalf("summary plane %q, want %q", sum.Plane, pl.plane)
					}
					if sum.Ops == 0 {
						t.Fatalf("seed %d: vacuous run: 0 ops", seed)
					}
					t.Logf("%s", sum)
				}
			})
		}
	}
}

// TestByName covers registry lookup, including the miss path the loadgen
// -workload flag relies on for its error message.
func TestByName(t *testing.T) {
	for _, sc := range All() {
		got, ok := ByName(sc.Name)
		if !ok || got.Name != sc.Name {
			t.Fatalf("ByName(%q) = %q, %v", sc.Name, got.Name, ok)
		}
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Fatal("ByName invented a scenario")
	}
}

// TestSummaryString keeps the figure-style row stable enough to embed.
func TestSummaryString(t *testing.T) {
	s := &Summary{Name: "zipf", Plane: "embedded", Throughput: 1234, P50us: 10, P99us: 90,
		EvictionInstalled: 5, EvictionRemoved: 3, DistinctLocks: 100}
	line := s.String()
	for _, want := range []string{"zipf", "embedded", "1234 ops/s", "churn +5/-3"} {
		if !contains(line, want) {
			t.Fatalf("summary row %q missing %q", line, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
