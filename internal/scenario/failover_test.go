package scenario

import (
	"runtime"
	"sync"
	"testing"

	"netlock/internal/check"
)

// TestFailoverHeadKillSweep is the ISSUE-8 acceptance sweep: the udp
// failover scenario — a 3-member replicated switch chain losing its head
// (twice) under a live ordered-acquire 2PL sweep with seeded chaos on the
// client edge — across 100 seeds. Every run is trace-validated by
// internal/check: conservation at quiescence proves zero lost grants,
// mutual-exclusion/no-duplicate-grant prove zero double grants across the
// epoch boundaries, and the check.Holders snapshot proves nothing is
// still held once the sweep drains. -short trims the sweep; -netlock.seed
// (or NETLOCK_SEED) replays one failing seed.
func TestFailoverHeadKillSweep(t *testing.T) {
	const sweep = 100
	var seeds []int64
	if s, ok := check.ReplaySeed(); ok {
		seeds = []int64{s}
	} else {
		n := sweep
		if testing.Short() {
			n = 10
		}
		for s := int64(1); s <= int64(n); s++ {
			seeds = append(seeds, s)
		}
	}

	// Each seed brings up a full rack (3 switches, 2 servers, chaos net);
	// bound the racks alive at once instead of t.Parallel-ing all 100.
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	firstErr := error(nil)
	ran := 0
	for _, seed := range seeds {
		wg.Add(1)
		sem <- struct{}{}
		go func(seed int64) {
			defer wg.Done()
			defer func() { <-sem }()
			sum, err := runFailoverScenario(Config{Seed: seed, Plane: "udp", Chaos: true, Short: true})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			ran++
			if sum.Ops == 0 && firstErr == nil {
				firstErr = failf(seed, "vacuous failover run: 0 ops")
			}
		}(seed)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	t.Logf("failover sweep: %d/%d seeds clean", ran, len(seeds))
}
