package scenario

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
	"netlock/internal/lockserver"
	"netlock/internal/obs"
	"netlock/internal/switchdp"
)

// runTenants stresses per-tenant isolation: one worker per tenant over a
// disjoint lock range (so every grant is immediate and throughput is
// limited only by the meter), with the first two wire tenants capped at a
// tight quota and everyone else effectively uncapped. Capped tenants must
// observe quota rejects; uncapped tenants must observe none — a capped
// tenant's pressure may not leak into a neighbour's admission. On the
// embedded plane the obs per-tenant grant counters must agree exactly
// with the trace recorder's per-tenant counts.
//
// The full-size embedded run storms 1024 workers — four times the wire
// header's uint8 tenant space — folded 4:1 onto the 256 wire tenant IDs.
// Counters aggregate per wire ID, so the obs-vs-trace equality stays
// exact through the fold. -short keeps the historical 8-tenant size.
//
// Note the p4sim meter rejects tenants with no configured cell, so with
// Isolation on every tenant — including "uncapped" ones — needs an
// explicit quota.
func runTenants(cfg Config) (*Summary, error) {
	const nCapped = 2
	// The embedded plane turns over hundreds of kops/s, so a 2000/s cap
	// bites immediately; the UDP rack under chaos runs each op in
	// milliseconds, so its cap must sit well under the achievable rate or
	// the meter never fires.
	cappedRate, cappedBurst := 2000.0, 10.0
	tenants := 1024
	opsPer := 200
	if cfg.Short {
		tenants = 8
		opsPer = 120
	}
	if cfg.Plane == "udp" {
		tenants = 8
		opsPer = 60
		cappedRate, cappedBurst = 50.0, 5.0
	}

	// Workers beyond the wire header's uint8 tenant space fold onto it
	// 4:1; all per-tenant accounting below is per wire ID.
	wireTenants := tenants
	if wireTenants > obs.NumTenants {
		wireTenants = obs.NumTenants
	}

	pc := PlaneConfig{
		Kind:    cfg.Plane,
		Seed:    cfg.Seed,
		Chaos:   cfg.Chaos,
		Workers: tenants,
		Embedded: netlock.Config{
			Shards:         2,
			Servers:        2,
			SwitchSlots:    64,
			MaxSwitchLocks: 8,
			Isolation:      true,
			Metrics:        true,
		},
		DP:      switchdp.Config{MaxLocks: 8, TotalSlots: 64, Priorities: 1, Isolation: true},
		Servers: 2,
		Server:  lockserver.Config{},
	}
	for t := 0; t < wireTenants; t++ {
		q := TenantQuota{Tenant: uint8(t), PerSec: 1e9, Burst: 1e6}
		if t < nCapped {
			q.PerSec, q.Burst = cappedRate, cappedBurst
		}
		pc.Quotas = append(pc.Quotas, q)
	}
	plane, err := NewPlane(pc)
	if err != nil {
		return nil, err
	}
	defer plane.Close()

	rec := newRecorder()
	lat := &latencies{}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Per wire-tenant counters: workers folding onto one wire ID share a
	// slot, so the adds are atomic.
	rejects := make([]int64, wireTenants)
	grants := make([]int64, wireTenants)
	start := time.Now()
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for w := 0; w < tenants; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := w % wireTenants // wire tenant ID this worker folds onto
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			base := uint32(w)*100 + 1 // lock range disjoint per WORKER
			for i := 0; i < opsPer; i++ {
				id := base + uint32(rng.Intn(50))
				s := time.Now()
				h, err := plane.Acquire(ctx, w, id, netlock.Exclusive, netlock.WithTenant(uint8(t)))
				if err != nil {
					if errors.Is(err, netlock.ErrQuotaExceeded) {
						atomic.AddInt64(&rejects[t], 1)
						continue
					}
					errs[w] = failf(cfg.Seed, "scenario tenants: worker %d (tenant %d) acquire lock %d: %v", w, t, id, err)
					return
				}
				lat.add(time.Since(s))
				atomic.AddInt64(&grants[t], 1)
				rec.granted(id, h.Txn(), true, 0, uint8(t))
				rec.released(id, h.Txn(), true, 0)
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if v := rec.quiesce(); v != nil {
		return nil, failf(cfg.Seed, "scenario tenants: trace: %v", v)
	}

	var totalRejects, totalGrants int64
	for t := 0; t < wireTenants; t++ {
		totalRejects += rejects[t]
		totalGrants += grants[t]
		if t < nCapped {
			if rejects[t] == 0 {
				return nil, failf(cfg.Seed, "scenario tenants: capped tenant %d saw no quota rejects over %d ops", t, opsPer)
			}
			if grants[t] == 0 {
				return nil, failf(cfg.Seed, "scenario tenants: capped tenant %d fully starved (burst should admit some)", t)
			}
		} else if rejects[t] != 0 {
			return nil, failf(cfg.Seed, "scenario tenants: uncapped tenant %d hit %d quota rejects (isolation leak)", t, rejects[t])
		}
	}

	if ms, ok := plane.(MetricsSource); ok {
		if snap := ms.Metrics(); snap != nil {
			// Exact equality per wire tenant — the 4:1 worker fold
			// aggregates on both sides, so the comparison stays exact.
			for t := 0; t < wireTenants; t++ {
				if got, want := snap.TenantGrants[t], rec.tenantCount(uint8(t)); got != want {
					return nil, failf(cfg.Seed, "scenario tenants: obs counted %d grants for tenant %d, trace saw %d", got, t, want)
				}
			}
			// Tenants outside the active set must stay at zero.
			for t := wireTenants; t < obs.NumTenants; t++ {
				if snap.TenantGrants[t] != 0 {
					return nil, failf(cfg.Seed, "scenario tenants: phantom grants for inactive tenant %d", t)
				}
			}
		}
	}

	p50, p99 := lat.percentiles()
	return &Summary{
		Name:         "tenants",
		Plane:        plane.Name(),
		Seed:         cfg.Seed,
		Chaos:        cfg.Chaos,
		DurationSec:  elapsed.Seconds(),
		Ops:          int(totalGrants),
		Throughput:   float64(totalGrants) / elapsed.Seconds(),
		P50us:        p50,
		P99us:        p99,
		QuotaRejects: int(totalRejects),
		Extra: map[string]float64{
			"tenants":        float64(tenants),
			"wire_tenants":   float64(wireTenants),
			"capped_rejects": float64(rejects[0] + rejects[1]),
		},
	}, nil
}
