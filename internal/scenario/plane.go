package scenario

import (
	"context"
	"fmt"
	"time"

	"netlock"
	"netlock/internal/ctrlplane"
	"netlock/internal/lockserver"
	"netlock/internal/obs"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

// Handle is one held lock, satisfied by both *netlock.Grant and
// *transport.Grant.
type Handle interface {
	Txn() uint64
	Release()
}

// Plane is a runnable NetLock deployment: every scenario executes
// identically against the embedded sharded Manager and a UDP rack over
// the chaos network.
type Plane interface {
	Name() string
	// Acquire blocks until the lock is granted or ctx expires. worker
	// selects the issuing client on multi-client planes.
	Acquire(ctx context.Context, worker int, lockID uint32, mode netlock.Mode, opts ...netlock.AcquireOption) (Handle, error)
	Close()
}

// Placer is the optional capability of planes whose memory-management
// loop can be ticked manually (the embedded Manager).
type Placer interface {
	PlacementTick(window time.Duration) (installed, removed int)
}

// MetricsSource is the optional capability of planes exposing the obs
// snapshot.
type MetricsSource interface {
	Metrics() *obs.Snapshot
}

// SwitchLock pre-installs a switch-resident lock before traffic.
type SwitchLock struct {
	ID    uint32
	Slots int
}

// TenantQuota configures one tenant's ingress meter.
type TenantQuota struct {
	Tenant uint8
	PerSec float64
	Burst  float64
}

// FaultInjector is the optional capability of planes that can kill rack
// nodes mid-run: FailHead removes the current chain-head switch (udp
// plane, Switches >= 2) or drops all data-plane state (embedded plane);
// FailServer fails lock server i (the embedded plane reassigns its locks
// to server i+1).
type FaultInjector interface {
	FailHead() error
	FailServer(i int) error
}

// PlaneConfig wires a Plane for one scenario run.
type PlaneConfig struct {
	Kind    string // "embedded" or "udp"
	Seed    int64
	Chaos   bool // udp only
	Workers int

	// Embedded configures the in-process Manager (Kind "embedded").
	Embedded netlock.Config

	// DP, Servers and Server configure the rack (Kind "udp"). Switches
	// sets the replication chain length (default 1, unreplicated).
	DP       switchdp.Config
	Servers  int
	Switches int
	Server   lockserver.Config

	SwitchLocks []SwitchLock
	Quotas      []TenantQuota
}

// NewPlane builds the requested deployment.
func NewPlane(cfg PlaneConfig) (Plane, error) {
	switch cfg.Kind {
	case "embedded", "":
		return newEmbeddedPlane(cfg)
	case "udp":
		return newUDPPlane(cfg)
	}
	return nil, fmt.Errorf("scenario: unknown plane %q", cfg.Kind)
}

type embeddedPlane struct {
	m       *netlock.Manager
	servers int
}

func newEmbeddedPlane(cfg PlaneConfig) (*embeddedPlane, error) {
	m := netlock.New(cfg.Embedded)
	for _, q := range cfg.Quotas {
		m.SetTenantQuota(q.Tenant, q.PerSec, q.Burst)
	}
	for _, sl := range cfg.SwitchLocks {
		if err := m.Preinstall(sl.ID, sl.Slots); err != nil {
			m.Close()
			return nil, fmt.Errorf("scenario: preinstall lock %d: %w", sl.ID, err)
		}
	}
	servers := cfg.Embedded.Servers
	if servers == 0 {
		servers = 2 // netlock.Config default
	}
	return &embeddedPlane{m: m, servers: servers}, nil
}

func (p *embeddedPlane) Name() string { return "embedded" }

func (p *embeddedPlane) Acquire(ctx context.Context, _ int, lockID uint32, mode netlock.Mode, opts ...netlock.AcquireOption) (Handle, error) {
	g, err := p.m.Acquire(ctx, lockID, mode, opts...)
	if err != nil {
		return nil, err
	}
	return g, nil
}

func (p *embeddedPlane) Close() { p.m.Close() }

func (p *embeddedPlane) PlacementTick(window time.Duration) (int, int) {
	return p.m.PlacementTick(window)
}

func (p *embeddedPlane) Metrics() *obs.Snapshot { return p.m.Metrics() }

// FailHead drops all switch data-plane state (the embedded Manager's ToR
// has no replica chain; held locks are reclaimed by lease expiry).
func (p *embeddedPlane) FailHead() error {
	p.m.FailSwitch()
	return nil
}

// FailServer reassigns server i's locks to the next server (§4.5).
func (p *embeddedPlane) FailServer(i int) error {
	if p.servers < 2 {
		return fmt.Errorf("scenario: FailServer needs >= 2 servers")
	}
	p.m.FailServer(i%p.servers, (i+1)%p.servers)
	return nil
}

// scenarioChaos is the edge profile scenarios run under: lighter than the
// conformance sweep's (scenario runs are long), still enough to force
// retransmits, dedup, and reordering on every run.
func scenarioChaos(seed int64) transport.ChaosConfig {
	return transport.ChaosConfig{Seed: seed, Drop: 0.05, Dup: 0.05, Delay: 0.20}
}

// udpPlane is a rack built through ctrlplane.Topology: a switch chain of
// cfg.Switches members over the chaos network, with per-worker clients
// configured with every member's address.
type udpPlane struct {
	tp      *ctrlplane.Topology
	clients []*transport.Client
}

func newUDPPlane(cfg PlaneConfig) (*udpPlane, error) {
	chaos := transport.ChaosConfig{Seed: cfg.Seed}
	if cfg.Chaos {
		chaos = scenarioChaos(cfg.Seed)
	}
	locks := make([]ctrlplane.SwitchLock, len(cfg.SwitchLocks))
	for i, sl := range cfg.SwitchLocks {
		locks[i] = ctrlplane.SwitchLock{ID: sl.ID, Slots: sl.Slots}
	}
	quotas := make([]ctrlplane.TenantQuota, len(cfg.Quotas))
	for i, q := range cfg.Quotas {
		quotas[i] = ctrlplane.TenantQuota{Tenant: q.Tenant, PerSec: q.PerSec, Burst: q.Burst}
	}
	tp, err := ctrlplane.New(ctrlplane.Config{
		Switches:    cfg.Switches,
		Servers:     cfg.Servers,
		DataPlane:   cfg.DP,
		Server:      cfg.Server,
		Chaos:       &chaos,
		SwitchLocks: locks,
		Quotas:      quotas,
	})
	if err != nil {
		return nil, err
	}
	p := &udpPlane{tp: tp}

	nClients := cfg.Workers
	if nClients > 4 {
		nClients = 4
	}
	if nClients < 1 {
		nClients = 1
	}
	for i := 0; i < nClients; i++ {
		c, err := tp.NewClient(transport.ClientConfig{
			RetryInterval: 15 * time.Millisecond,
			FlushInterval: 200 * time.Microsecond,
		})
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

func (p *udpPlane) Name() string { return "udp" }

func (p *udpPlane) Acquire(ctx context.Context, worker int, lockID uint32, mode netlock.Mode, opts ...netlock.AcquireOption) (Handle, error) {
	c := p.clients[worker%len(p.clients)]
	g, err := c.Acquire(ctx, lockID, mode, opts...)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// FailHead kills the current chain-head switch and reconfigures the
// survivors under a new epoch.
func (p *udpPlane) FailHead() error { return p.tp.Controller().FailHead() }

// FailServer kills lock server i in place.
func (p *udpPlane) FailServer(i int) error { return p.tp.FailServer(i) }

// Close tears the rack down (clients, switches, servers, chaos drain —
// Topology owns the ordering).
func (p *udpPlane) Close() { p.tp.Close() }
