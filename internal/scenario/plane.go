package scenario

import (
	"context"
	"fmt"
	"time"

	"netlock"
	"netlock/internal/lockserver"
	"netlock/internal/obs"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
)

// Handle is one held lock, satisfied by both *netlock.Grant and
// *transport.Grant.
type Handle interface {
	Txn() uint64
	Release()
}

// Plane is a runnable NetLock deployment: every scenario executes
// identically against the embedded sharded Manager and a UDP rack over
// the chaos network.
type Plane interface {
	Name() string
	// Acquire blocks until the lock is granted or ctx expires. worker
	// selects the issuing client on multi-client planes.
	Acquire(ctx context.Context, worker int, lockID uint32, mode netlock.Mode, opts ...netlock.AcquireOption) (Handle, error)
	Close()
}

// Placer is the optional capability of planes whose memory-management
// loop can be ticked manually (the embedded Manager).
type Placer interface {
	PlacementTick(window time.Duration) (installed, removed int)
}

// MetricsSource is the optional capability of planes exposing the obs
// snapshot.
type MetricsSource interface {
	Metrics() *obs.Snapshot
}

// SwitchLock pre-installs a switch-resident lock before traffic.
type SwitchLock struct {
	ID    uint32
	Slots int
}

// TenantQuota configures one tenant's ingress meter.
type TenantQuota struct {
	Tenant uint8
	PerSec float64
	Burst  float64
}

// PlaneConfig wires a Plane for one scenario run.
type PlaneConfig struct {
	Kind    string // "embedded" or "udp"
	Seed    int64
	Chaos   bool // udp only
	Workers int

	// Embedded configures the in-process Manager (Kind "embedded").
	Embedded netlock.Config

	// DP, Servers and Server configure the rack (Kind "udp").
	DP      switchdp.Config
	Servers int
	Server  lockserver.Config

	SwitchLocks []SwitchLock
	Quotas      []TenantQuota
}

// NewPlane builds the requested deployment.
func NewPlane(cfg PlaneConfig) (Plane, error) {
	switch cfg.Kind {
	case "embedded", "":
		return newEmbeddedPlane(cfg)
	case "udp":
		return newUDPPlane(cfg)
	}
	return nil, fmt.Errorf("scenario: unknown plane %q", cfg.Kind)
}

type embeddedPlane struct {
	m *netlock.Manager
}

func newEmbeddedPlane(cfg PlaneConfig) (*embeddedPlane, error) {
	m := netlock.New(cfg.Embedded)
	for _, q := range cfg.Quotas {
		m.SetTenantQuota(q.Tenant, q.PerSec, q.Burst)
	}
	for _, sl := range cfg.SwitchLocks {
		if err := m.Preinstall(sl.ID, sl.Slots); err != nil {
			m.Close()
			return nil, fmt.Errorf("scenario: preinstall lock %d: %w", sl.ID, err)
		}
	}
	return &embeddedPlane{m: m}, nil
}

func (p *embeddedPlane) Name() string { return "embedded" }

func (p *embeddedPlane) Acquire(ctx context.Context, _ int, lockID uint32, mode netlock.Mode, opts ...netlock.AcquireOption) (Handle, error) {
	g, err := p.m.Acquire(ctx, lockID, mode, opts...)
	if err != nil {
		return nil, err
	}
	return g, nil
}

func (p *embeddedPlane) Close() { p.m.Close() }

func (p *embeddedPlane) PlacementTick(window time.Duration) (int, int) {
	return p.m.PlacementTick(window)
}

func (p *embeddedPlane) Metrics() *obs.Snapshot { return p.m.Metrics() }

// scenarioChaos is the edge profile scenarios run under: lighter than the
// conformance sweep's (scenario runs are long), still enough to force
// retransmits, dedup, and reordering on every run.
func scenarioChaos(seed int64) transport.ChaosConfig {
	return transport.ChaosConfig{Seed: seed, Drop: 0.05, Dup: 0.05, Delay: 0.20}
}

type udpPlane struct {
	cn      *transport.ChaosNet
	sw      *transport.Switch
	servers []*transport.Server
	clients []*transport.Client
}

func newUDPPlane(cfg PlaneConfig) (*udpPlane, error) {
	chaos := transport.ChaosConfig{Seed: cfg.Seed}
	if cfg.Chaos {
		chaos = scenarioChaos(cfg.Seed)
	}
	cn := transport.NewChaosNet(chaos)
	p := &udpPlane{cn: cn}
	fail := func(err error) (*udpPlane, error) {
		p.Close()
		return nil, err
	}

	nServers := cfg.Servers
	if nServers == 0 {
		nServers = 2
	}
	var addrs []string
	for i := 0; i < nServers; i++ {
		srv, err := transport.NewServer(transport.ServerConfig{Listen: "10.99.0.1:0", Config: cfg.Server, Net: cn})
		if err != nil {
			return fail(err)
		}
		p.servers = append(p.servers, srv)
		addrs = append(addrs, srv.Addr())
		if err := cn.MarkReliable(srv.Addr()); err != nil {
			return fail(err)
		}
	}
	sw, err := transport.NewSwitch(transport.SwitchConfig{Listen: "10.99.0.1:0", DataPlane: cfg.DP, Servers: addrs, Net: cn})
	if err != nil {
		return fail(err)
	}
	p.sw = sw
	if err := cn.MarkReliable(sw.Addr()); err != nil {
		return fail(err)
	}
	for _, srv := range p.servers {
		if err := srv.SetSwitchAddr(sw.Addr()); err != nil {
			return fail(err)
		}
	}

	// One region per priority bank, SwitchLock.Slots slots each, laid out
	// sequentially over the switch's slot arena.
	banks := cfg.DP.Priorities
	if banks < 1 {
		banks = 1
	}
	off := 0
	for _, sl := range cfg.SwitchLocks {
		regions := make([]switchdp.Region, banks)
		for b := range regions {
			regions[b] = switchdp.Region{Left: uint64(off), Right: uint64(off + sl.Slots)}
			off += sl.Slots
		}
		if err := transport.InstallSwitchLock(sw, p.servers, sl.ID, regions); err != nil {
			return fail(fmt.Errorf("scenario: install lock %d: %w", sl.ID, err))
		}
	}
	sw.WithDataPlane(func(dp *switchdp.Switch) {
		for _, q := range cfg.Quotas {
			dp.CtrlSetTenantQuota(q.Tenant, q.PerSec, q.Burst)
		}
	})

	nClients := cfg.Workers
	if nClients > 4 {
		nClients = 4
	}
	if nClients < 1 {
		nClients = 1
	}
	for i := 0; i < nClients; i++ {
		c, err := transport.NewClientConfig(transport.ClientConfig{
			Switch:        sw.Addr(),
			Net:           cn,
			RetryInterval: 15 * time.Millisecond,
			FlushInterval: 200 * time.Microsecond,
		})
		if err != nil {
			return fail(err)
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

func (p *udpPlane) Name() string { return "udp" }

func (p *udpPlane) Acquire(ctx context.Context, worker int, lockID uint32, mode netlock.Mode, opts ...netlock.AcquireOption) (Handle, error) {
	c := p.clients[worker%len(p.clients)]
	g, err := c.Acquire(ctx, lockID, mode, opts...)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Close tears the rack down: clients first (their abandon path
// auto-releases raced-in grants), then the switch and servers, then the
// chaos drain so no delayed delivery races the WaitGroup.
func (p *udpPlane) Close() {
	for _, c := range p.clients {
		c.Close()
	}
	if p.sw != nil {
		p.sw.Close()
	}
	for _, srv := range p.servers {
		srv.Close()
	}
	p.cn.Wait()
}
