package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
)

// The failover scenario kills rack nodes under live 2PL-style traffic and
// requires that no granted lock is lost and no lock is granted twice.
//
// Workers run ordered-acquire transactions (each lock set is taken in
// ascending ID order — deadlock-free two-phase locking, so every stall is
// the fault's fault, not a cycle's). A coordinator watches commit
// progress and injects faults through the plane's FaultInjector:
//
//   - udp plane: a 3-member replicated switch chain; the chain head is
//     killed at one third of the run and the new head at two thirds,
//     driving the rack through epochs 1→2→3 while acquires are in flight.
//     Clients re-target via OpEpoch announcements; grants held across the
//     kills come from the replicas' caches.
//   - embedded plane: lock server 0 fails at one third of the run and its
//     locks are reassigned to server 1 (§4.5) while workers hold and
//     request them.
//
// Every grant and release is recorded into internal/check: mutual
// exclusion and no-duplicate-grant catch a double grant across the epoch
// boundary, conservation at quiescence catches a lost one, and the
// check.Holders snapshot must be empty once the sweep drains.
type failoverParams struct {
	workers     int
	txnsPer     int
	lockPool    int
	locksPerTxn int
	think       time.Duration
	timeout     time.Duration
}

func failoverSizes(cfg Config) failoverParams {
	p := failoverParams{
		workers:     4,
		txnsPer:     30,
		lockPool:    8,
		locksPerTxn: 3,
		think:       200 * time.Microsecond,
		timeout:     60 * time.Second,
	}
	if cfg.Short {
		p.txnsPer = 8
		p.timeout = 30 * time.Second
	}
	if cfg.Plane == "udp" {
		// Chain RTTs and post-kill retransmits make each lock slower.
		p.txnsPer /= 2
		if p.txnsPer < 4 {
			p.txnsPer = 4 // at least one txn per fault phase per worker
		}
	}
	return p
}

func runFailoverScenario(cfg Config) (*Summary, error) {
	pr := failoverSizes(cfg)
	pc := PlaneConfig{
		Kind:     cfg.Plane,
		Seed:     cfg.Seed,
		Chaos:    cfg.Chaos,
		Workers:  pr.workers,
		Switches: 3, // udp: replicated chain, two survivable head kills
		Embedded: netlock.Config{
			Shards:         2,
			Servers:        2,
			SwitchSlots:    64,
			MaxSwitchLocks: 16,
		},
		DP:      switchdp.Config{MaxLocks: 16, TotalSlots: 64, Priorities: 1},
		Servers: 2,
		Server:  lockserver.Config{},
	}
	// Half the pool switch-resident, half server-owned, so the kills hit
	// grants cached in the chain and grants queued at the servers.
	for id := 1; id <= pr.lockPool/2; id++ {
		pc.SwitchLocks = append(pc.SwitchLocks, SwitchLock{ID: uint32(id), Slots: 8})
	}
	plane, err := NewPlane(pc)
	if err != nil {
		return nil, err
	}
	defer plane.Close()
	fi, ok := plane.(FaultInjector)
	if !ok {
		return nil, fmt.Errorf("scenario failover: plane %s has no FaultInjector", plane.Name())
	}

	rec := newRecorder()
	lat := &latencies{}
	var commits atomic.Int64
	want := pr.workers * pr.txnsPer

	ctx, cancel := context.WithTimeout(context.Background(), pr.timeout)
	defer cancel()

	// The coordinator fires each fault once its commit milestone passes, so
	// the kills land mid-sweep regardless of plane speed.
	type fault struct {
		at     int64
		inject func() error
		name   string
	}
	var faults []fault
	if plane.Name() == "udp" {
		faults = []fault{
			{int64(want) / 3, fi.FailHead, "head-kill-1"},
			{2 * int64(want) / 3, fi.FailHead, "head-kill-2"},
		}
	} else {
		faults = []fault{
			{int64(want) / 3, func() error { return fi.FailServer(0) }, "server-churn"},
		}
	}
	var injected atomic.Int64
	faultErr := make(chan error, len(faults))
	stopFaults := make(chan struct{})
	var faultWG sync.WaitGroup
	faultWG.Add(1)
	go func() {
		defer faultWG.Done()
		next := 0
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for next < len(faults) {
			select {
			case <-stopFaults:
				return
			case <-tick.C:
			}
			if commits.Load() < faults[next].at {
				continue
			}
			if err := faults[next].inject(); err != nil {
				faultErr <- fmt.Errorf("%s: %w", faults[next].name, err)
				return
			}
			injected.Add(1)
			next++
		}
	}()

	start := time.Now()
	errs := make([]error, pr.workers)
	var wg sync.WaitGroup
	for w := 0; w < pr.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			for i := 0; i < pr.txnsPer; i++ {
				set := pickLocks(rng, pr.lockPool, pr.locksPerTxn)
				sort.Slice(set, func(a, b int) bool { return set[a] < set[b] })
				var held []heldLock
				for _, lk := range set {
					t0 := time.Now()
					h, err := plane.Acquire(ctx, w, lk, netlock.Exclusive)
					lat.add(time.Since(t0))
					if err != nil {
						errs[w] = fmt.Errorf("txn %d lock %d: %w", i, lk, err)
						for _, hl := range held {
							rec.released(hl.lock, hl.h.Txn(), true, 0)
							hl.h.Release()
						}
						return
					}
					rec.granted(lk, h.Txn(), true, 0, 0)
					held = append(held, heldLock{lk, h})
				}
				if pr.think > 0 {
					time.Sleep(pr.think)
				}
				for j := len(held) - 1; j >= 0; j-- {
					rec.released(held[j].lock, held[j].h.Txn(), true, 0)
					held[j].h.Release()
				}
				commits.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopFaults)
	faultWG.Wait()

	select {
	case err := <-faultErr:
		return nil, failf(cfg.Seed, "scenario failover: %v", err)
	default:
	}
	for w, err := range errs {
		if err != nil {
			return nil, failf(cfg.Seed, "scenario failover: worker %d wedged: %v", w, err)
		}
	}
	if got := injected.Load(); got != int64(len(faults)) {
		return nil, failf(cfg.Seed, "scenario failover: %d/%d faults injected (run finished too fast?)", got, len(faults))
	}
	if v := rec.quiesce(); v != nil {
		return nil, failf(cfg.Seed, "scenario failover: trace: %v", v)
	}
	if h := rec.holders(); len(h) != 0 {
		return nil, failf(cfg.Seed, "scenario failover: %d locks still held after the sweep drained: %v", len(h), h)
	}
	if c := int(commits.Load()); c != want {
		return nil, failf(cfg.Seed, "scenario failover: %d/%d transactions committed", c, want)
	}
	grants, _, releases := rec.stats()
	if grants == 0 || grants != releases {
		return nil, failf(cfg.Seed, "scenario failover: %d grants vs %d releases", grants, releases)
	}

	p50, p99 := lat.percentiles()
	return &Summary{
		Name:        "failover",
		Plane:       plane.Name(),
		Seed:        cfg.Seed,
		Chaos:       cfg.Chaos,
		DurationSec: elapsed.Seconds(),
		Ops:         grants,
		Throughput:  float64(grants) / elapsed.Seconds(),
		P50us:       p50,
		P99us:       p99,
		Commits:     int(commits.Load()),
		Extra: map[string]float64{
			"faults_injected": float64(injected.Load()),
		},
	}, nil
}
