package scenario

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
	"netlock/internal/check"
	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
)

// Policy selects the deadlock-resolution discipline layered on the lock
// API.
type Policy int

const (
	// PolicyNone performs no request-time checks: every deadlock must be
	// caught and resolved by the wait-for-graph guard. The cycle-detector
	// oracle test runs this.
	PolicyNone Policy = iota
	// PolicyWaitDie: a requester conflicting with an older holder aborts
	// itself (dies); older requesters wait. Non-preemptive.
	PolicyWaitDie
	// PolicyWoundWait: a requester conflicting with a younger holder
	// aborts it (wounds); younger requesters wait. Preemptive.
	PolicyWoundWait
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyWaitDie:
		return "wait-die"
	case PolicyWoundWait:
		return "wound-wait"
	}
	return "policy?"
}

// twoTxn is one logical transaction. ts is its age (smaller = older) and
// is kept across retries, so the oldest transaction eventually conflicts
// with no one and commits — the classic starvation-freedom argument for
// both policies. Everything else is guarded by twoPL.mu.
type twoTxn struct {
	ts      uint64
	aid     uint64 // current attempt ID, for the txn-level trace
	wounded bool
	active  bool
	waiting uint32 // lock this txn is blocked acquiring (0 = none)
	held    []heldLock
}

type heldLock struct {
	lock uint32
	h    Handle
}

// twoPLStats counts resolution outcomes.
type twoPLStats struct {
	commits        int
	dieAborts      int // wait-die: requester killed itself
	woundAborts    int // wound-wait: holder killed at request time
	cycleAborts    int // guard: victim killed to break a detected cycle
	cyclesDetected int
}

// twoPL executes deadlock-prone two-phase-locking transactions on a
// Plane. Request-time policy checks (wait-die / wound-wait) resolve the
// conflicts they can see, but the check and the data-plane enqueue are
// not atomic — a grant can land between them — so residual cycles are
// possible by construction. A periodic guard builds the wait-for graph
// and wounds the youngest member of any cycle.
//
// Aborting never cancels an in-flight acquire: cancelling a queued
// request leaves a stale entry in the data plane that only a lease sweep
// reclaims. Instead the victim's *held* locks are released on its behalf
// (ownership of the handles moves under mu, so each handle is released
// exactly once), and when its blocked acquire eventually returns the
// victim releases that fresh grant itself and restarts.
type twoPL struct {
	plane  Plane
	policy Policy
	rec    *recorder
	lat    *latencies

	// txnCk validates the transaction-level discipline (two-phase,
	// atomic hold, per-attempt conservation) over logical attempt IDs.
	// Observed only with mu held. CheckOrder is off: this workload
	// acquires out of order on purpose.
	txnCk   *check.TxnChecker
	txnViol *check.Violation

	mu      sync.Mutex
	holders map[uint32]map[*twoTxn]bool
	txns    map[uint64]*twoTxn // ts -> active txn
	stats   twoPLStats

	nextTS atomic.Uint64

	stopCh  chan struct{}
	guardWG sync.WaitGroup
}

func newTwoPL(plane Plane, policy Policy, guardEvery time.Duration) *twoPL {
	tc := check.NewTxnChecker(nil)
	tc.CheckOrder = false
	p := &twoPL{
		plane:   plane,
		policy:  policy,
		rec:     newRecorder(),
		lat:     &latencies{},
		txnCk:   tc,
		holders: make(map[uint32]map[*twoTxn]bool),
		txns:    make(map[uint64]*twoTxn),
		stopCh:  make(chan struct{}),
	}
	p.guardWG.Add(1)
	go func() {
		defer p.guardWG.Done()
		tick := time.NewTicker(guardEvery)
		defer tick.Stop()
		for {
			select {
			case <-p.stopCh:
				return
			case <-tick.C:
				p.guardTick()
			}
		}
	}()
	return p
}

func (p *twoPL) stopGuard() {
	close(p.stopCh)
	p.guardWG.Wait()
}

// txnObserve feeds the txn-level checker; callers hold p.mu.
func (p *twoPL) txnObserve(e check.Event) {
	if p.txnViol == nil {
		p.txnViol = p.txnCk.Observe(e)
	}
}

// releaseAllLocked releases every lock t holds, emitting both trace
// levels. Callers hold p.mu; handle ownership ends here.
func (p *twoPL) releaseAllLocked(t *twoTxn) {
	for _, hl := range t.held {
		p.rec.released(hl.lock, hl.h.Txn(), true, 0)
		p.txnObserve(check.Event{Kind: check.EvRelease, Lock: hl.lock, Txn: t.aid, Excl: true})
		hl.h.Release()
		delete(p.holders[hl.lock], t)
	}
	t.held = nil
}

// woundLocked marks t for abort and releases its held locks on its
// behalf. Callers hold p.mu.
func (p *twoPL) woundLocked(t *twoTxn) {
	if t.wounded || !t.active {
		return
	}
	t.wounded = true
	p.releaseAllLocked(t)
}

// finishLocked retires the current attempt. Callers hold p.mu and have
// already emptied t.held.
func (p *twoPL) finishLocked(t *twoTxn) {
	t.active = false
	t.waiting = 0
	delete(p.txns, t.ts)
}

// guardTick builds the wait-for graph and breaks one cycle by wounding
// its youngest member — the resolution backstop for the races the
// request-time policies cannot see (and the whole resolution mechanism
// under PolicyNone).
func (p *twoPL) guardTick() {
	p.mu.Lock()
	defer p.mu.Unlock()
	g := newWaitGraph()
	for _, t := range p.txns {
		if !t.active || t.wounded || t.waiting == 0 {
			continue
		}
		for h := range p.holders[t.waiting] {
			if h != t {
				g.addEdge(t.ts, h.ts)
			}
		}
	}
	cycle := g.findCycle()
	if cycle == nil {
		return
	}
	p.stats.cyclesDetected++
	var victim *twoTxn
	for _, ts := range cycle {
		t := p.txns[ts]
		if t == nil || !t.active || t.wounded {
			continue
		}
		if victim == nil || t.ts > victim.ts {
			victim = t
		}
	}
	if victim != nil {
		p.stats.cycleAborts++
		p.woundLocked(victim)
	}
}

// runAttempt executes one attempt of t over the (deliberately unordered)
// lock set. Returns committed=false for a policy or cycle abort; err is
// fatal (context expiry — a wedge or shutdown).
func (p *twoPL) runAttempt(ctx context.Context, worker int, t *twoTxn, set []uint32, think time.Duration) (bool, error) {
	for _, lk := range set {
		p.mu.Lock()
		if t.wounded {
			p.finishLocked(t)
			p.mu.Unlock()
			return false, nil
		}
		switch p.policy {
		case PolicyWaitDie:
			died := false
			for h := range p.holders[lk] {
				if h.ts < t.ts { // older holder: the younger requester dies
					died = true
					break
				}
			}
			if died {
				p.stats.dieAborts++
				p.releaseAllLocked(t)
				p.finishLocked(t)
				p.mu.Unlock()
				return false, nil
			}
		case PolicyWoundWait:
			for h := range p.holders[lk] {
				if h.ts > t.ts { // younger holder: the older requester wounds it
					p.stats.woundAborts++
					p.woundLocked(h)
				}
			}
		}
		t.waiting = lk
		p.mu.Unlock()

		start := time.Now()
		h, err := p.plane.Acquire(ctx, worker, lk, netlock.Exclusive)
		p.lat.add(time.Since(start))

		p.mu.Lock()
		t.waiting = 0
		if err != nil {
			p.releaseAllLocked(t)
			p.finishLocked(t)
			p.mu.Unlock()
			return false, err
		}
		if t.wounded {
			// The grant raced the wound. Our held locks are already
			// released; hand this one straight back.
			p.rec.granted(lk, h.Txn(), true, 0, 0)
			p.rec.released(lk, h.Txn(), true, 0)
			h.Release()
			p.finishLocked(t)
			p.mu.Unlock()
			return false, nil
		}
		p.rec.granted(lk, h.Txn(), true, 0, 0)
		p.txnObserve(check.Event{Kind: check.EvAcquire, Lock: lk, Txn: t.aid, Excl: true})
		p.txnObserve(check.Event{Kind: check.EvGrant, Lock: lk, Txn: t.aid, Excl: true})
		t.held = append(t.held, heldLock{lk, h})
		hm := p.holders[lk]
		if hm == nil {
			hm = make(map[*twoTxn]bool)
			p.holders[lk] = hm
		}
		hm[t] = true
		p.mu.Unlock()
	}

	if think > 0 {
		time.Sleep(think)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if t.wounded {
		p.finishLocked(t)
		return false, nil
	}
	p.releaseAllLocked(t)
	p.stats.commits++
	p.finishLocked(t)
	return true, nil
}

// maxAttempts bounds retries per transaction; exceeding it means
// resolution failed to make progress — an unresolved deadlock.
const maxAttempts = 10_000

// runTxn drives one logical transaction to commit, retrying attempts
// under a jittered backoff. The timestamp is assigned once, so age
// seniority accumulates across retries.
func (p *twoPL) runTxn(ctx context.Context, worker int, rng *rand.Rand, set []uint32, think time.Duration) error {
	t := &twoTxn{ts: p.nextTS.Add(1)}
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		p.mu.Lock()
		t.wounded = false
		t.active = true
		t.aid = t.ts*1_000_000 + uint64(attempt)
		p.txns[t.ts] = t
		p.mu.Unlock()

		committed, err := p.runAttempt(ctx, worker, t, set, think)
		if err != nil {
			return err
		}
		if committed {
			return nil
		}
		time.Sleep(time.Duration(50+rng.Intn(450)) * time.Microsecond)
	}
	return context.DeadlineExceeded
}

// statsSnapshot returns a copy of the counters.
func (p *twoPL) statsSnapshot() twoPLStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// twoPLParams sizes one run.
type twoPLParams struct {
	workers     int
	txnsPer     int
	lockPool    int
	locksPerTxn int
	think       time.Duration
	guardEvery  time.Duration
	timeout     time.Duration
}

func twoPLSizes(cfg Config) twoPLParams {
	p := twoPLParams{
		workers:     4,
		txnsPer:     25,
		lockPool:    6,
		locksPerTxn: 3,
		think:       200 * time.Microsecond,
		guardEvery:  time.Millisecond,
		timeout:     60 * time.Second,
	}
	if cfg.Short {
		p.txnsPer = 6
		p.timeout = 30 * time.Second
	}
	if cfg.Plane == "udp" {
		// Network RTTs and chaos retransmits make each lock slower;
		// trim volume, widen the guard (cycles take longer to form).
		p.txnsPer /= 2
		if p.txnsPer == 0 {
			p.txnsPer = 1
		}
		p.guardEvery = 2 * time.Millisecond
	}
	return p
}

func twoPLPlane(cfg Config, pr twoPLParams) (Plane, error) {
	pc := PlaneConfig{
		Kind:    cfg.Plane,
		Seed:    cfg.Seed,
		Chaos:   cfg.Chaos,
		Workers: pr.workers,
		Embedded: netlock.Config{
			Shards:         2,
			Servers:        1,
			SwitchSlots:    64,
			MaxSwitchLocks: 16,
		},
		DP:      switchdp.Config{MaxLocks: 16, TotalSlots: 64, Priorities: 1},
		Servers: 1,
		Server:  lockserver.Config{},
	}
	// Half the pool switch-resident, half server-owned, so transactions
	// span both paths.
	for id := 1; id <= pr.lockPool/2; id++ {
		pc.SwitchLocks = append(pc.SwitchLocks, SwitchLock{ID: uint32(id), Slots: 8})
	}
	return NewPlane(pc)
}

// runTwoPLOn executes the 2PL scenario on an already-built plane —
// shared by the registry runner and the policy sweep/oracle tests.
func runTwoPLOn(plane Plane, policy Policy, cfg Config, pr twoPLParams) (*Summary, *twoPL, error) {
	p := newTwoPL(plane, policy, pr.guardEvery)
	ctx, cancel := context.WithTimeout(context.Background(), pr.timeout)
	defer cancel()

	start := time.Now()
	errs := make([]error, pr.workers)
	var wg sync.WaitGroup
	for w := 0; w < pr.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			for i := 0; i < pr.txnsPer; i++ {
				set := pickLocks(rng, pr.lockPool, pr.locksPerTxn)
				if err := p.runTxn(ctx, w, rng, set, pr.think); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	p.stopGuard()

	for w, err := range errs {
		if err != nil {
			return nil, p, failf(cfg.Seed, "scenario 2pl-%s: worker %d wedged: %v", policy, w, err)
		}
	}
	if v := p.rec.quiesce(); v != nil {
		return nil, p, failf(cfg.Seed, "scenario 2pl-%s: per-lock trace: %v", policy, v)
	}
	p.mu.Lock()
	txnViol := p.txnViol
	if txnViol == nil {
		txnViol = p.txnCk.Quiesce()
	}
	completed := p.txnCk.Completed()
	p.mu.Unlock()
	if txnViol != nil {
		return nil, p, failf(cfg.Seed, "scenario 2pl-%s: txn trace: %v", policy, txnViol)
	}

	st := p.statsSnapshot()
	want := pr.workers * pr.txnsPer
	if st.commits != want {
		return nil, p, failf(cfg.Seed, "scenario 2pl-%s: %d/%d transactions committed", policy, st.commits, want)
	}
	if completed == 0 {
		return nil, p, failf(cfg.Seed, "scenario 2pl-%s: vacuous txn trace", policy)
	}

	grants, _, _ := p.rec.stats()
	p50, p99 := p.lat.percentiles()
	sum := &Summary{
		Name:           "2pl-" + policy.String(),
		Plane:          plane.Name(),
		Seed:           cfg.Seed,
		Chaos:          cfg.Chaos,
		DurationSec:    elapsed.Seconds(),
		Ops:            grants,
		Throughput:     float64(grants) / elapsed.Seconds(),
		P50us:          p50,
		P99us:          p99,
		Commits:        st.commits,
		DeadlockAborts: st.dieAborts + st.woundAborts + st.cycleAborts,
		CycleAborts:    st.cycleAborts,
		Extra: map[string]float64{
			"die_aborts":      float64(st.dieAborts),
			"wound_aborts":    float64(st.woundAborts),
			"cycles_detected": float64(st.cyclesDetected),
		},
	}
	return sum, p, nil
}

func runTwoPL(cfg Config, policy Policy) (*Summary, error) {
	pr := twoPLSizes(cfg)
	plane, err := twoPLPlane(cfg, pr)
	if err != nil {
		return nil, err
	}
	defer plane.Close()
	sum, _, err := runTwoPLOn(plane, policy, cfg, pr)
	return sum, err
}

// pickLocks draws n distinct locks from pool [1..pool] in random order —
// the deadlock-prone shape: no global ordering discipline.
func pickLocks(rng *rand.Rand, pool, n int) []uint32 {
	perm := rng.Perm(pool)
	set := make([]uint32, n)
	for i := 0; i < n; i++ {
		set[i] = uint32(perm[i] + 1)
	}
	return set
}
