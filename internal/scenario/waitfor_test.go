package scenario

import (
	"reflect"
	"testing"
)

func TestWaitGraphNoCycle(t *testing.T) {
	g := newWaitGraph()
	g.addEdge(1, 2)
	g.addEdge(2, 3)
	g.addEdge(1, 3)
	g.addEdge(4, 1)
	if c := g.findCycle(); c != nil {
		t.Fatalf("DAG reported cycle %v", c)
	}
}

func TestWaitGraphSelfEdgeIgnored(t *testing.T) {
	g := newWaitGraph()
	g.addEdge(7, 7)
	if c := g.findCycle(); c != nil {
		t.Fatalf("self edge reported cycle %v", c)
	}
}

func TestWaitGraphFindsCycle(t *testing.T) {
	g := newWaitGraph()
	g.addEdge(1, 2)
	g.addEdge(2, 3)
	g.addEdge(3, 1)
	g.addEdge(3, 4) // dead-end branch off the cycle
	c := g.findCycle()
	if len(c) != 3 {
		t.Fatalf("cycle = %v, want the 3-cycle", c)
	}
	// Each node waits for the next; the last waits for the first.
	for i, n := range c {
		next := c[(i+1)%len(c)]
		if !g.out[n][next] {
			t.Fatalf("cycle %v: missing edge %d -> %d", c, n, next)
		}
	}
}

func TestWaitGraphTwoNodeCycle(t *testing.T) {
	g := newWaitGraph()
	g.addEdge(10, 20)
	g.addEdge(20, 10)
	if c := g.findCycle(); len(c) != 2 {
		t.Fatalf("cycle = %v, want a 2-cycle", c)
	}
}

func TestWaitGraphDeterministic(t *testing.T) {
	build := func() *waitGraph {
		g := newWaitGraph()
		// Two disjoint cycles plus noise; the same one must always win.
		g.addEdge(5, 6)
		g.addEdge(6, 5)
		g.addEdge(8, 9)
		g.addEdge(9, 8)
		g.addEdge(1, 5)
		g.addEdge(2, 8)
		return g
	}
	first := build().findCycle()
	if first == nil {
		t.Fatal("no cycle found")
	}
	for i := 0; i < 20; i++ {
		if got := build().findCycle(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: cycle %v, earlier %v (non-deterministic victim choice)", i, got, first)
		}
	}
}
