// Package scenario is the adversarial workload suite: the ugly
// real-world shapes the paper's evaluation (§6) defers. Each scenario
// drives a full NetLock deployment — either the embedded sharded Manager
// or a UDP rack over the seeded chaos network — through a hostile
// pattern (deadlock-prone 2PL, Zipf memory stress, convoys and priority
// inversion, reader-mostly leases, many-tenant quota storms), validates
// every surviving trace against the internal/check model, and reports a
// figure-style Summary. Failing seeds replay with -netlock.seed.
package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"netlock/internal/check"
)

// Config selects how one scenario run is wired.
type Config struct {
	// Seed drives the workload rngs and the chaos network.
	Seed int64
	// Plane is "embedded" (in-process sharded Manager) or "udp" (a
	// switch + servers + batched clients rack over the chaos network).
	Plane string
	// Chaos enables seeded drop/dup/delay on the client edge (udp plane
	// only; the embedded plane has no network to corrupt).
	Chaos bool
	// Short selects the CI-sized configuration.
	Short bool
}

// Summary is one scenario's figure-style result row.
type Summary struct {
	Name  string `json:"name"`
	Plane string `json:"plane"`
	Seed  int64  `json:"seed"`
	Chaos bool   `json:"chaos"`

	DurationSec float64 `json:"duration_sec"`
	Ops         int     `json:"ops"`
	Throughput  float64 `json:"ops_per_sec"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`

	// 2PL accounting.
	Commits        int `json:"commits,omitempty"`
	DeadlockAborts int `json:"deadlock_aborts,omitempty"`
	CycleAborts    int `json:"cycle_aborts,omitempty"`

	// Memory-management accounting (Zipf stress).
	DistinctLocks     int `json:"distinct_locks,omitempty"`
	EvictionInstalled int `json:"eviction_installed,omitempty"`
	EvictionRemoved   int `json:"eviction_removed,omitempty"`

	// Lease / isolation accounting.
	LeaseExpiries uint64 `json:"lease_expiries,omitempty"`
	QuotaRejects  int    `json:"quota_rejects,omitempty"`

	// Extra holds scenario-specific figures (jain index, per-class
	// percentiles, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// String renders the one-line figure-style row EXPERIMENTS.md embeds.
func (s *Summary) String() string {
	line := fmt.Sprintf("%-14s %-9s chaos=%-5v %8.0f ops/s  p50 %6.0fµs  p99 %7.0fµs",
		s.Name, s.Plane, s.Chaos, s.Throughput, s.P50us, s.P99us)
	if s.Commits > 0 || s.DeadlockAborts > 0 {
		line += fmt.Sprintf("  commits %d aborts %d (cycle %d)", s.Commits, s.DeadlockAborts, s.CycleAborts)
	}
	if s.EvictionInstalled > 0 || s.EvictionRemoved > 0 {
		line += fmt.Sprintf("  churn +%d/-%d over %d locks", s.EvictionInstalled, s.EvictionRemoved, s.DistinctLocks)
	}
	if s.LeaseExpiries > 0 {
		line += fmt.Sprintf("  lease-expiries %d", s.LeaseExpiries)
	}
	if s.QuotaRejects > 0 {
		line += fmt.Sprintf("  quota-rejects %d", s.QuotaRejects)
	}
	return line
}

// Scenario is one named adversarial workload.
type Scenario struct {
	Name string
	// Run executes the scenario and returns its summary. A non-nil error
	// means the scenario failed (a trace violation, a wedged run, a
	// broken invariant); the message embeds check.ReplayArgs(seed).
	Run func(cfg Config) (*Summary, error)
}

// All returns the scenario registry in canonical order.
func All() []Scenario {
	return []Scenario{
		{Name: "2pl-wait-die", Run: func(cfg Config) (*Summary, error) { return runTwoPL(cfg, PolicyWaitDie) }},
		{Name: "2pl-wound-wait", Run: func(cfg Config) (*Summary, error) { return runTwoPL(cfg, PolicyWoundWait) }},
		{Name: "zipf", Run: runZipf},
		{Name: "convoy", Run: runConvoy},
		{Name: "readers", Run: runReaders},
		{Name: "tenants", Run: runTenants},
		{Name: "failover", Run: runFailoverScenario},
		{Name: "rebalance", Run: runRebalance},
		{Name: "multirack", Run: runMultirack},
	}
}

// ByName looks a scenario up in the registry.
func ByName(name string) (Scenario, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// failf builds a scenario error that carries the replay instructions.
func failf(seed int64, format string, args ...any) error {
	return fmt.Errorf(format+" (replay: %s)", append(args, check.ReplayArgs(seed))...)
}

// latencies collects acquire latencies for percentile reporting.
type latencies struct {
	mu      sync.Mutex
	samples []time.Duration
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, d)
	l.mu.Unlock()
}

func (l *latencies) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// percentiles returns p50 and p99 in microseconds (zeros when empty).
func (l *latencies) percentiles() (p50us, p99us float64) {
	l.mu.Lock()
	s := append([]time.Duration(nil), l.samples...)
	l.mu.Unlock()
	if len(s) == 0 {
		return 0, 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pick := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return float64(s[i]) / 1e3
	}
	return pick(0.50), pick(0.99)
}

// recorder serializes per-lock trace events into the safety checker. The
// planes expose blocking acquires, so the txn ID is only known once the
// grant lands; recording EvAcquire+EvGrant back-to-back under one lock is
// sound for the safety invariants (mutual exclusion, duplicates,
// conservation) — the priority invariant is vacuous under this discipline
// and stays off.
type recorder struct {
	mu           sync.Mutex
	ck           *check.Checker
	viol         *check.Violation
	tenantGrants map[uint8]uint64
}

func newRecorder() *recorder {
	ck := check.NewChecker()
	ck.CheckPriority = false
	return &recorder{ck: ck, tenantGrants: make(map[uint8]uint64)}
}

func (r *recorder) observe(e check.Event) {
	if r.viol != nil {
		return
	}
	r.viol = r.ck.Observe(e)
}

// granted records a successful blocking acquire (EvAcquire+EvGrant).
func (r *recorder) granted(lock uint32, txn uint64, excl bool, prio, tenant uint8) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observe(check.Event{Kind: check.EvAcquire, Lock: lock, Txn: txn, Excl: excl, Prio: prio})
	r.observe(check.Event{Kind: check.EvGrant, Lock: lock, Txn: txn, Excl: excl, Prio: prio})
	r.tenantGrants[tenant]++
}

// released must be called before the release is handed to the plane.
func (r *recorder) released(lock uint32, txn uint64, excl bool, prio uint8) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observe(check.Event{Kind: check.EvRelease, Lock: lock, Txn: txn, Excl: excl, Prio: prio})
}

// lost marks a deliberately-abandoned grant (a "crashed" client) so
// conservation at quiescence holds.
func (r *recorder) lost(lock uint32, txn uint64, excl bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observe(check.Event{Kind: check.EvLost, Lock: lock, Txn: txn, Excl: excl})
}

func (r *recorder) violation() *check.Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.viol
}

func (r *recorder) quiesce() *check.Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.viol != nil {
		return r.viol
	}
	return r.ck.Quiesce()
}

func (r *recorder) stats() (grants, rejects, releases int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ck.Stats()
}

// holders snapshots the trace's current lock holders (check.Holders).
func (r *recorder) holders() map[uint32][]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ck.Holders()
}

func (r *recorder) tenantCount(t uint8) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenantGrants[t]
}
