package scenario

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"netlock"
	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
)

// runConvoy builds a classic lock convoy with priority inversion: a few
// low-priority hogs hold one hot lock for long stretches while
// high-priority workers need it for microseconds. The scenario measures
// per-class latency (the inversion figure), checks no worker starves
// (every closed loop completes and every worker is granted), and reports
// a Jain fairness index over per-worker mean waits.
func runConvoy(cfg Config) (*Summary, error) {
	const (
		hotLock     = uint32(1)
		highWorkers = 3
		lowWorkers  = 3
	)
	workers := highWorkers + lowWorkers
	opsPer := 150
	holdLow := 1500 * time.Microsecond
	holdHigh := 20 * time.Microsecond
	if cfg.Short {
		opsPer = 40
	}
	if cfg.Plane == "udp" {
		opsPer /= 2
	}

	pc := PlaneConfig{
		Kind:    cfg.Plane,
		Seed:    cfg.Seed,
		Chaos:   cfg.Chaos,
		Workers: workers,
		Embedded: netlock.Config{
			Shards:         1,
			Servers:        1,
			SwitchSlots:    64,
			MaxSwitchLocks: 8,
			Priorities:     2,
		},
		DP:          switchdp.Config{MaxLocks: 8, TotalSlots: 64, Priorities: 2},
		Servers:     1,
		Server:      lockserver.Config{Priorities: 2},
		SwitchLocks: []SwitchLock{{ID: hotLock, Slots: 16}},
	}
	plane, err := NewPlane(pc)
	if err != nil {
		return nil, err
	}
	defer plane.Close()

	rec := newRecorder()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	type workerStat struct {
		grants    int
		totalWait time.Duration
		lat       latencies
	}
	stats := make([]workerStat, workers)

	start := time.Now()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			high := w < highWorkers
			prio := uint8(1) // low
			hold := holdLow
			if high {
				prio = 0
				hold = holdHigh
			}
			for i := 0; i < opsPer; i++ {
				s := time.Now()
				h, err := plane.Acquire(ctx, w, hotLock, netlock.Exclusive, netlock.WithPriority(prio))
				if err != nil {
					errs[w] = failf(cfg.Seed, "scenario convoy: worker %d acquire: %v", w, err)
					return
				}
				wait := time.Since(s)
				stats[w].grants++
				stats[w].totalWait += wait
				stats[w].lat.add(wait)
				rec.granted(hotLock, h.Txn(), true, prio, 0)
				// Hold: the hog sleeps with the lock, convoying everyone.
				time.Sleep(hold + time.Duration(rng.Intn(int(hold/2)+1)))
				rec.released(hotLock, h.Txn(), true, prio)
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if v := rec.quiesce(); v != nil {
		return nil, failf(cfg.Seed, "scenario convoy: trace: %v", v)
	}
	// Starvation check: a closed loop that completed got all its grants;
	// additionally every worker must have been granted at least once.
	totalGrants := 0
	for w := range stats {
		if stats[w].grants == 0 {
			return nil, failf(cfg.Seed, "scenario convoy: worker %d starved (0 grants)", w)
		}
		totalGrants += stats[w].grants
	}
	if want := workers * opsPer; totalGrants != want {
		return nil, failf(cfg.Seed, "scenario convoy: %d/%d grants", totalGrants, want)
	}

	// Jain index over per-worker mean waits: 1.0 = perfectly fair, 1/n =
	// one worker absorbs all the waiting.
	var sumMean, sumSq float64
	for w := range stats {
		m := float64(stats[w].totalWait) / float64(stats[w].grants)
		sumMean += m
		sumSq += m * m
	}
	jain := 0.0
	if sumSq > 0 {
		jain = sumMean * sumMean / (float64(workers) * sumSq)
	}

	all := &latencies{}
	for w := range stats {
		all.mu.Lock() // merge; no concurrency here
		all.samples = append(all.samples, stats[w].lat.samples...)
		all.mu.Unlock()
	}
	p50, p99 := all.percentiles()

	classP99 := func(lo, hi int) float64 {
		merged := &latencies{}
		for w := lo; w < hi; w++ {
			merged.samples = append(merged.samples, stats[w].lat.samples...)
		}
		_, p99 := merged.percentiles()
		return p99
	}

	return &Summary{
		Name:        "convoy",
		Plane:       plane.Name(),
		Seed:        cfg.Seed,
		Chaos:       cfg.Chaos,
		DurationSec: elapsed.Seconds(),
		Ops:         totalGrants,
		Throughput:  float64(totalGrants) / elapsed.Seconds(),
		P50us:       p50,
		P99us:       p99,
		Extra: map[string]float64{
			"jain":        jain,
			"p99_high_us": classP99(0, highWorkers),
			"p99_low_us":  classP99(highWorkers, workers),
		},
	}, nil
}
