package scenario

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"netlock"
	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
	"netlock/internal/workload"
)

// runZipf stresses the memory-management path: Zipf-skewed traffic over a
// lock-ID space orders of magnitude larger than switch memory, so the
// knapsack allocator must keep promoting the current hot set into the
// switch and demoting what cooled off. On the embedded plane a placement
// loop ticks concurrently with traffic and the summary reports the
// promote/demote churn; on the UDP rack the hottest prefix is
// pre-installed and everything else rides the server path.
func runZipf(cfg Config) (*Summary, error) {
	workers := 4
	lockSpace := uint32(2_000_000)
	opsPer := 4000
	if cfg.Short {
		lockSpace = 200_000
		opsPer = 500
	}
	if cfg.Plane == "udp" {
		lockSpace /= 40
		opsPer /= 4
	}

	pc := PlaneConfig{
		Kind:    cfg.Plane,
		Seed:    cfg.Seed,
		Chaos:   cfg.Chaos,
		Workers: workers,
		Embedded: netlock.Config{
			Shards:         2,
			Servers:        2,
			SwitchSlots:    256,
			MaxSwitchLocks: 32,
			Metrics:        true,
		},
		DP:      switchdp.Config{MaxLocks: 16, TotalSlots: 128, Priorities: 1},
		Servers: 2,
		Server:  lockserver.Config{},
	}
	if cfg.Plane == "udp" {
		// Zipf rank 1 is the hottest ID; pin the hot prefix switch-resident.
		for id := uint32(1); id <= 12; id++ {
			pc.SwitchLocks = append(pc.SwitchLocks, SwitchLock{ID: id, Slots: 8})
		}
	}
	plane, err := NewPlane(pc)
	if err != nil {
		return nil, err
	}
	defer plane.Close()

	rec := newRecorder()
	lat := &latencies{}
	gen := &workload.Micro{Locks: lockSpace, Mode: wire.Exclusive, ZipfS: 1.2}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// The placement control loop runs against live traffic — the
	// promote/demote path under fire, not a quiesced reshuffle.
	var installed, removed int
	placeStop := make(chan struct{})
	var placeWG sync.WaitGroup
	if placer, ok := plane.(Placer); ok {
		placeWG.Add(1)
		go func() {
			defer placeWG.Done()
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-placeStop:
					return
				case <-tick.C:
					in, rm := placer.PlacementTick(10 * time.Millisecond)
					installed += in
					removed += rm
				}
			}
		}()
	}

	start := time.Now()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*1000 + int64(w)))
			for i := 0; i < opsPer; i++ {
				id := gen.NextTxn(w, rng).Locks[0].LockID
				s := time.Now()
				h, err := plane.Acquire(ctx, w, id, netlock.Exclusive)
				if err != nil {
					errs[w] = failf(cfg.Seed, "scenario zipf: worker %d acquire lock %d: %v", w, id, err)
					return
				}
				lat.add(time.Since(s))
				rec.granted(id, h.Txn(), true, 0, 0)
				rec.released(id, h.Txn(), true, 0)
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(placeStop)
	placeWG.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if v := rec.quiesce(); v != nil {
		return nil, failf(cfg.Seed, "scenario zipf: trace: %v", v)
	}
	grants, _, releases := rec.stats()
	if want := workers * opsPer; grants != want || releases != want {
		return nil, failf(cfg.Seed, "scenario zipf: vacuous run: %d grants, %d releases, want %d", grants, releases, want)
	}

	p50, p99 := lat.percentiles()
	return &Summary{
		Name:              "zipf",
		Plane:             plane.Name(),
		Seed:              cfg.Seed,
		Chaos:             cfg.Chaos,
		DurationSec:       elapsed.Seconds(),
		Ops:               grants,
		Throughput:        float64(grants) / elapsed.Seconds(),
		P50us:             p50,
		P99us:             p99,
		DistinctLocks:     int(lockSpace),
		EvictionInstalled: installed,
		EvictionRemoved:   removed,
	}, nil
}
