package scenario

import "sort"

// waitGraph is a wait-for graph over transaction timestamps: an edge
// a -> b means transaction a is blocked waiting for a lock transaction b
// holds. A cycle is a deadlock. Edges run waiter -> holder only (not
// waiter -> queued waiter): queues drain unless a holder-cycle exists, so
// any permanent wedge eventually shows up as a holder cycle on a later
// guard tick, and holder-only edges never produce false positives.
type waitGraph struct {
	out map[uint64]map[uint64]bool
}

func newWaitGraph() *waitGraph {
	return &waitGraph{out: make(map[uint64]map[uint64]bool)}
}

func (g *waitGraph) addEdge(from, to uint64) {
	if from == to {
		return
	}
	m, ok := g.out[from]
	if !ok {
		m = make(map[uint64]bool)
		g.out[from] = m
	}
	m[to] = true
}

// findCycle returns one deadlock cycle (each node waits for the next,
// last waits for first), or nil. Iteration is sorted so the same graph
// always yields the same cycle — victim choice stays replayable.
func (g *waitGraph) findCycle() []uint64 {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS stack
		black = 2 // fully explored
	)
	color := make(map[uint64]int, len(g.out))
	var stack []uint64

	sortedKeys := func(m map[uint64]bool) []uint64 {
		ks := make([]uint64, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		return ks
	}

	var cycle []uint64
	var dfs func(n uint64) bool
	dfs = func(n uint64) bool {
		color[n] = grey
		stack = append(stack, n)
		for _, next := range sortedKeys(g.out[n]) {
			switch color[next] {
			case grey:
				// Found: slice the stack from next's position.
				for i, v := range stack {
					if v == next {
						cycle = append([]uint64(nil), stack[i:]...)
						return true
					}
				}
			case white:
				if dfs(next) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}

	roots := make([]uint64, 0, len(g.out))
	for n := range g.out {
		roots = append(roots, n)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, n := range roots {
		if color[n] == white && dfs(n) {
			return cycle
		}
	}
	return nil
}
