package stats

import "fmt"

// TimeSeries accumulates event counts into fixed-width time buckets, used for
// throughput-over-time plots (Figures 12a and 15). Times are int64
// nanoseconds of virtual (or real) time; the series starts at time zero.
type TimeSeries struct {
	bucketNs int64
	counts   []int64
}

// NewTimeSeries creates a series with the given bucket width in nanoseconds.
func NewTimeSeries(bucketNs int64) *TimeSeries {
	if bucketNs <= 0 {
		panic("stats: TimeSeries bucket width must be positive")
	}
	return &TimeSeries{bucketNs: bucketNs}
}

// Add records n events at time t. Negative times are clamped to bucket 0.
func (ts *TimeSeries) Add(t int64, n int64) {
	idx := 0
	if t > 0 {
		idx = int(t / ts.bucketNs)
	}
	for idx >= len(ts.counts) {
		ts.counts = append(ts.counts, 0)
	}
	ts.counts[idx] += n
}

// BucketWidth returns the bucket width in nanoseconds.
func (ts *TimeSeries) BucketWidth() int64 { return ts.bucketNs }

// Buckets returns a copy of the per-bucket event counts.
func (ts *TimeSeries) Buckets() []int64 {
	out := make([]int64, len(ts.counts))
	copy(out, ts.counts)
	return out
}

// Rates returns per-bucket event rates in events/second.
func (ts *TimeSeries) Rates() []float64 {
	out := make([]float64, len(ts.counts))
	secs := float64(ts.bucketNs) / 1e9
	for i, c := range ts.counts {
		out[i] = float64(c) / secs
	}
	return out
}

// Total returns the total number of events recorded.
func (ts *TimeSeries) Total() int64 {
	var sum int64
	for _, c := range ts.counts {
		sum += c
	}
	return sum
}

// Point is one (time, rate) sample of a time series.
type Point struct {
	TimeSec float64
	Rate    float64
}

// Points returns the series as (seconds, events/sec) pairs, bucket midpoints.
func (ts *TimeSeries) Points() []Point {
	rates := ts.Rates()
	out := make([]Point, len(rates))
	for i, r := range rates {
		out[i] = Point{
			TimeSec: (float64(i) + 0.5) * float64(ts.bucketNs) / 1e9,
			Rate:    r,
		}
	}
	return out
}

// String renders the series compactly for experiment logs.
func (ts *TimeSeries) String() string {
	return fmt.Sprintf("timeseries{buckets=%d width=%dms total=%d}",
		len(ts.counts), ts.bucketNs/1e6, ts.Total())
}

// Counter is a monotonically increasing event counter with a helper for
// computing rates over virtual-time windows. The switch control plane uses
// Counters to track per-lock request rates (r_i in §4.3 of the paper).
type Counter struct {
	total     int64
	windowed  int64
	windowAt  int64
	lastRate  float64
	haveRate  bool
	windowLen int64
}

// NewCounter creates a counter whose Rate is computed over windows of the
// given nanosecond length.
func NewCounter(windowNs int64) *Counter {
	if windowNs <= 0 {
		panic("stats: Counter window must be positive")
	}
	return &Counter{windowLen: windowNs}
}

// Inc records n events at time t, rolling the rate window as needed.
func (c *Counter) Inc(t int64, n int64) {
	c.total += n
	if t-c.windowAt >= c.windowLen {
		c.lastRate = float64(c.windowed) / (float64(t-c.windowAt) / 1e9)
		c.haveRate = true
		c.windowed = 0
		c.windowAt = t
	}
	c.windowed += n
}

// Total returns the lifetime event count.
func (c *Counter) Total() int64 { return c.total }

// Rate returns the most recently completed window's events/second. Before a
// window completes it estimates from the current partial window at time t.
func (c *Counter) Rate(t int64) float64 {
	if c.haveRate {
		return c.lastRate
	}
	elapsed := t - c.windowAt
	if elapsed <= 0 {
		return 0
	}
	return float64(c.windowed) / (float64(elapsed) / 1e9)
}
