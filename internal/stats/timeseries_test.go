package stats

import "testing"

func TestTimeSeriesBasic(t *testing.T) {
	ts := NewTimeSeries(1e9) // 1-second buckets
	ts.Add(0, 10)
	ts.Add(5e8, 5)
	ts.Add(15e8, 7)
	buckets := ts.Buckets()
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(buckets))
	}
	if buckets[0] != 15 || buckets[1] != 7 {
		t.Fatalf("buckets = %v, want [15 7]", buckets)
	}
	if ts.Total() != 22 {
		t.Fatalf("total = %d, want 22", ts.Total())
	}
}

func TestTimeSeriesRates(t *testing.T) {
	ts := NewTimeSeries(5e8) // 0.5-second buckets
	ts.Add(0, 100)
	rates := ts.Rates()
	if rates[0] != 200 {
		t.Fatalf("rate = %f, want 200/s", rates[0])
	}
}

func TestTimeSeriesNegativeTimeClamped(t *testing.T) {
	ts := NewTimeSeries(1e9)
	ts.Add(-100, 3)
	if ts.Buckets()[0] != 3 {
		t.Fatalf("negative time should land in bucket 0")
	}
}

func TestTimeSeriesPoints(t *testing.T) {
	ts := NewTimeSeries(1e9)
	ts.Add(0, 4)
	ts.Add(1e9, 8)
	pts := ts.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].TimeSec != 0.5 || pts[1].TimeSec != 1.5 {
		t.Fatalf("midpoints wrong: %+v", pts)
	}
	if pts[0].Rate != 4 || pts[1].Rate != 8 {
		t.Fatalf("rates wrong: %+v", pts)
	}
}

func TestTimeSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for non-positive bucket width")
		}
	}()
	NewTimeSeries(0)
}

func TestTimeSeriesString(t *testing.T) {
	ts := NewTimeSeries(1e6)
	ts.Add(0, 1)
	if ts.String() == "" {
		t.Fatalf("string should not be empty")
	}
	if ts.BucketWidth() != 1e6 {
		t.Fatalf("bucket width accessor wrong")
	}
}

func TestCounterRate(t *testing.T) {
	c := NewCounter(1e9)
	// Partial window estimate.
	c.Inc(0, 100)
	c.Inc(5e8, 100)
	r := c.Rate(5e8)
	if r < 300 || r > 500 {
		t.Fatalf("partial-window rate = %f, want ~400/s", r)
	}
	// Completing a window locks in its rate.
	c.Inc(1e9, 1) // rolls window: 200 events over 1s -> 200/s
	if got := c.Rate(1e9); got < 199 || got > 201 {
		t.Fatalf("windowed rate = %f, want 200/s", got)
	}
	if c.Total() != 201 {
		t.Fatalf("total = %d, want 201", c.Total())
	}
}

func TestCounterZeroElapsed(t *testing.T) {
	c := NewCounter(1e9)
	if c.Rate(0) != 0 {
		t.Fatalf("rate before any events should be 0")
	}
}

func TestCounterPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for non-positive window")
		}
	}()
	NewCounter(-1)
}
