package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatalf("empty histogram should report zeros: count=%d mean=%f p50=%d",
			h.Count(), h.Mean(), h.Percentile(50))
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram min/max should be 0")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(42)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if got := h.Percentile(50); got != 42 {
		t.Fatalf("p50 = %d, want 42", got)
	}
	if got := h.Percentile(99.9); got != 42 {
		t.Fatalf("p99.9 = %d, want 42", got)
	}
	if h.Min() != 42 || h.Max() != 42 {
		t.Fatalf("min/max = %d/%d, want 42/42", h.Min(), h.Max())
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	// Values below subBuckets are stored exactly.
	var h Histogram
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	if got := h.Percentile(50); got != 31 && got != 32 {
		t.Fatalf("p50 = %d, want 31 or 32", got)
	}
	if got := h.Min(); got != 0 {
		t.Fatalf("min = %d, want 0", got)
	}
	if got := h.Max(); got != 63 {
		t.Fatalf("max = %d, want 63", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative value should clamp to 0")
	}
}

func TestHistogramPercentileBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	samples := make([]int64, 0, 100000)
	for i := 0; i < 100000; i++ {
		// Log-uniform latencies from 100ns to 100ms.
		v := int64(100 * (1 << uint(rng.Intn(20))))
		v += rng.Int63n(v/2 + 1)
		h.Record(v)
		samples = append(samples, v)
	}
	for _, q := range []float64{50, 90, 99, 99.9} {
		exact := ExactPercentile(samples, q)
		got := h.Percentile(q)
		rel := float64(got-exact) / float64(exact)
		if rel < -0.05 || rel > 0.05 {
			t.Errorf("q=%v: histogram=%d exact=%d rel err=%.3f", q, got, exact, rel)
		}
	}
}

func TestHistogramMergeEqualsCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, both Histogram
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1 << 30)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() {
		t.Fatalf("merge count/sum mismatch")
	}
	for _, q := range []float64{1, 50, 99} {
		if a.Percentile(q) != both.Percentile(q) {
			t.Fatalf("q=%v merged=%d combined=%d", q, a.Percentile(q), both.Percentile(q))
		}
	}
	if a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatalf("merge min/max mismatch")
	}
}

func TestHistogramRecordN(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 7; i++ {
		a.Record(1000)
	}
	b.RecordN(1000, 7)
	if a.Count() != b.Count() || a.Sum() != b.Sum() || a.Percentile(50) != b.Percentile(50) {
		t.Fatalf("RecordN(1000,7) != 7x Record(1000)")
	}
	b.RecordN(5, 0)
	b.RecordN(5, -3)
	if b.Count() != 7 {
		t.Fatalf("RecordN with non-positive n should be a no-op")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatalf("reset did not clear histogram")
	}
}

func TestHistogramCDF(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000)
	}
	cdf := h.CDF(50)
	if len(cdf) == 0 || len(cdf) > 50 {
		t.Fatalf("CDF length = %d, want 1..50", len(cdf))
	}
	last := cdf[len(cdf)-1]
	if last.Fraction != 1.0 {
		t.Fatalf("CDF should end at fraction 1.0, got %f", last.Fraction)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Fraction < cdf[i-1].Fraction || cdf[i].Value < cdf[i-1].Value {
			t.Fatalf("CDF not monotonic at %d", i)
		}
	}
	if h.CDF(0) != nil {
		t.Fatalf("CDF(0) should be nil")
	}
	var empty Histogram
	if empty.CDF(10) != nil {
		t.Fatalf("CDF of empty histogram should be nil")
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(int64(i) * 1000)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("summary count = %d", s.Count)
	}
	if s.Median > s.P99 || s.P99 > s.P999 {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
	if s.String() == "" {
		t.Fatalf("summary string empty")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 1000; i++ {
		h.Record(i)
	}
	qs := h.Quantiles(10, 50, 90)
	if len(qs) != 3 || qs[0] > qs[1] || qs[1] > qs[2] {
		t.Fatalf("quantiles not ordered: %v", qs)
	}
}

// Property: percentile estimates never fall below min nor above max, and are
// monotone in q.
func TestHistogramPercentileProperties(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, r := range raw {
			h.Record(int64(r))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 10, 25, 50, 75, 90, 99, 99.9, 100} {
			p := h.Percentile(q)
			if p < h.Min() || p > h.Max() {
				return false
			}
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merge is commutative on all summary statistics.
func TestHistogramMergeCommutative(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a1, b1, a2, b2 Histogram
		for _, x := range xs {
			a1.Record(int64(x))
			a2.Record(int64(x))
		}
		for _, y := range ys {
			b1.Record(int64(y))
			b2.Record(int64(y))
		}
		a1.Merge(&b1) // a1 = xs+ys
		b2.Merge(&a2) // b2 = ys+xs
		return a1.Count() == b2.Count() && a1.Sum() == b2.Sum() &&
			a1.Percentile(50) == b2.Percentile(50) &&
			a1.Min() == b2.Min() && a1.Max() == b2.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExactPercentile(t *testing.T) {
	if got := ExactPercentile(nil, 50); got != 0 {
		t.Fatalf("exact percentile of empty = %d", got)
	}
	s := []int64{5, 1, 3, 2, 4}
	if got := ExactPercentile(s, 50); got != 3 {
		t.Fatalf("exact p50 = %d, want 3", got)
	}
	if got := ExactPercentile(s, 100); got != 5 {
		t.Fatalf("exact p100 = %d, want 5", got)
	}
	// Input must not be mutated.
	if s[0] != 5 {
		t.Fatalf("ExactPercentile mutated its input")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(int64(i)*7919 + 100)
	}
}
