// Package stats provides the measurement primitives used by every NetLock
// experiment: fixed-memory latency histograms with accurate high percentiles,
// throughput time series, and CDF extraction.
//
// The histogram is HDR-style: values are bucketed into power-of-two ranges,
// each subdivided linearly, giving a bounded relative error (~1/subBuckets)
// at any scale. Recording is O(1) and allocation-free, which matters because
// the discrete-event testbed records hundreds of millions of samples per run.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// subBucketBits controls histogram resolution. 64 linear sub-buckets per
// power-of-two range bounds relative error to about 1.6%.
const subBucketBits = 6

const subBuckets = 1 << subBucketBits

// Histogram records non-negative int64 values (typically latencies in
// nanoseconds) with bounded relative error and O(1) memory.
//
// The zero value is ready to use. Histogram is not safe for concurrent use;
// the testbed is single-threaded per run, and concurrent collectors should
// record into per-worker histograms and Merge them.
type Histogram struct {
	counts [64 * subBuckets / 2]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	idx := index(v)
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
}

// NumBuckets is the number of buckets in a Histogram. Exported so external
// collectors (internal/obs) can mirror the bucket geometry with atomic
// counters and convert back losslessly via RecordN(BucketBound(i), n).
const NumBuckets = 64 * subBuckets / 2

// BucketIndex returns the bucket index Record uses for value v, clamped to
// the histogram's range exactly as Record clamps it.
func BucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	idx := index(v)
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	return idx
}

// BucketBound returns the largest value mapping to bucket i, i.e. the
// bucket's inclusive upper bound. Feeding BucketBound(i) back into Record
// lands in bucket i again, which is what keeps AtomicHist -> Histogram
// conversion within the histogram's usual relative error.
func BucketBound(i int) int64 { return bucketUpperBound(i) }

// index is the canonical value->bucket mapping used by Record.
func index(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	hb := 63 - bits.LeadingZeros64(uint64(v))
	r := hb - subBucketBits + 1
	sub := int(v>>uint(r)) & (subBuckets/2 - 1)
	return subBuckets + (r-1)*(subBuckets/2) + sub
}

// RecordN adds n identical observations.
func (h *Histogram) RecordN(v int64, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += v * n
	idx := index(v)
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx] += n
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded value, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 if empty.
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Percentile returns an upper-bound estimate of the q-th percentile
// (q in [0,100]). For q=50 this is the median; for q=99 the tail latency
// the paper reports. Exact min/max are returned at the extremes.
func (h *Histogram) Percentile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(q / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			ub := bucketUpperBound(i)
			if ub > h.max {
				ub = h.max
			}
			if ub < h.min {
				ub = h.min
			}
			return ub
		}
	}
	return h.max
}

// bucketUpperBound returns the largest value mapping to bucket i.
func bucketUpperBound(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	r := (i-subBuckets)/(subBuckets/2) + 1
	sub := (i-subBuckets)%(subBuckets/2) + subBuckets/2
	return (int64(sub)+1)<<uint(r) - 1
}

// Merge adds all observations from other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	*h = Histogram{}
}

// CDFPoint is one point of an empirical CDF: Fraction of observations
// were <= Value.
type CDFPoint struct {
	Value    int64
	Fraction float64
}

// CDF returns up to maxPoints points of the empirical CDF, suitable for
// plotting (Figure 13b). Points are emitted only for non-empty buckets.
func (h *Histogram) CDF(maxPoints int) []CDFPoint {
	if h.count == 0 || maxPoints <= 0 {
		return nil
	}
	var pts []CDFPoint
	var seen int64
	for i := range h.counts {
		if h.counts[i] == 0 {
			continue
		}
		seen += h.counts[i]
		ub := bucketUpperBound(i)
		if ub > h.max {
			ub = h.max
		}
		pts = append(pts, CDFPoint{Value: ub, Fraction: float64(seen) / float64(h.count)})
	}
	if len(pts) <= maxPoints {
		return pts
	}
	// Downsample evenly, always keeping the last point.
	out := make([]CDFPoint, 0, maxPoints)
	step := float64(len(pts)-1) / float64(maxPoints-1)
	for i := 0; i < maxPoints; i++ {
		out = append(out, pts[int(float64(i)*step+0.5)])
	}
	out[len(out)-1] = pts[len(pts)-1]
	return out
}

// Summary is a compact snapshot of a histogram used in experiment reports.
type Summary struct {
	Count  int64
	Mean   float64
	Median int64
	P99    int64
	P999   int64
	Min    int64
	Max    int64
}

// Summarize extracts a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:  h.count,
		Mean:   h.Mean(),
		Median: h.Percentile(50),
		P99:    h.Percentile(99),
		P999:   h.Percentile(99.9),
		Min:    h.Min(),
		Max:    h.Max(),
	}
}

// String renders the summary in microseconds, the unit the paper plots.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d avg=%.1fus p50=%.1fus p99=%.1fus p99.9=%.1fus",
		s.Count, s.Mean/1e3, float64(s.Median)/1e3, float64(s.P99)/1e3, float64(s.P999)/1e3)
}

// Quantiles returns the values at each of the given percentiles, sorted by
// the order given.
func (h *Histogram) Quantiles(qs ...float64) []int64 {
	out := make([]int64, len(qs))
	for i, q := range qs {
		out[i] = h.Percentile(q)
	}
	return out
}

// ExactPercentile computes a percentile from a raw sample slice; used by
// tests to validate the histogram's bounded error.
func ExactPercentile(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(q / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}
