package wire

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

func sampleHeader() Header {
	return Header{
		Op:       OpAcquire,
		Mode:     Exclusive,
		Flags:    FlagOneRTT,
		LockID:   0xDEADBEEF,
		TxnID:    0x0123456789ABCDEF,
		ClientIP: netip.AddrFrom4([4]byte{10, 0, 1, 42}),
		TenantID: 7,
		Priority: 3,
		LeaseNs:  123456789,
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := sampleHeader()
	buf := h.Marshal()
	if len(buf) != HeaderLen {
		t.Fatalf("encoded length = %d, want %d", len(buf), HeaderLen)
	}
	var got Header
	if err := got.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", &got, &h)
	}
}

func TestHeaderAppendToNoRealloc(t *testing.T) {
	h := sampleHeader()
	dst := make([]byte, 0, HeaderLen)
	out := h.AppendTo(dst)
	if &out[0] != &dst[:1][0] {
		t.Fatalf("AppendTo reallocated despite sufficient capacity")
	}
}

func TestHeaderDecodeReuse(t *testing.T) {
	// Decoding into a dirty struct must overwrite every field.
	h1 := sampleHeader()
	h2 := Header{
		Op:       OpRelease,
		Mode:     Shared,
		Flags:    FlagOverflow | FlagResubmit,
		LockID:   1,
		TxnID:    2,
		ClientIP: netip.AddrFrom4([4]byte{192, 168, 0, 1}),
		TenantID: 200,
		Priority: 9,
		LeaseNs:  -1,
	}
	buf := h1.Marshal()
	got := h2
	if err := got.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if got != h1 {
		t.Fatalf("decode did not overwrite all fields: %v", &got)
	}
}

func TestHeaderTooShort(t *testing.T) {
	var h Header
	err := h.DecodeFromBytes(make([]byte, HeaderLen-1))
	if !errors.Is(err, ErrTooShort) {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
}

func TestHeaderBadVersion(t *testing.T) {
	h := sampleHeader()
	buf := h.Marshal()
	buf[0] = 99
	err := h.DecodeFromBytes(buf)
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestHeaderBadOp(t *testing.T) {
	h := sampleHeader()
	buf := h.Marshal()
	buf[1] = 0
	err := h.DecodeFromBytes(buf)
	if !errors.Is(err, ErrBadOp) {
		t.Fatalf("err = %v, want ErrBadOp", err)
	}
	buf[1] = 200
	if err := h.DecodeFromBytes(buf); !errors.Is(err, ErrBadOp) {
		t.Fatalf("err = %v, want ErrBadOp", err)
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{OpAcquire, OpRelease, OpGrant, OpReject, OpPushNotify, OpPush, OpFetch}
	seen := map[string]bool{}
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("op %d has empty or duplicate name %q", op, s)
		}
		seen[s] = true
		if !op.Valid() {
			t.Fatalf("op %s should be valid", s)
		}
	}
	if Op(0).Valid() || Op(99).Valid() {
		t.Fatalf("undefined ops must be invalid")
	}
	if Op(99).String() != "op(99)" {
		t.Fatalf("unknown op string = %q", Op(99).String())
	}
}

func TestModeString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Fatalf("mode strings wrong: %q %q", Shared.String(), Exclusive.String())
	}
}

func TestIsRequest(t *testing.T) {
	for _, tc := range []struct {
		op   Op
		want bool
	}{
		{OpAcquire, true}, {OpRelease, true},
		{OpGrant, false}, {OpReject, false},
		{OpPushNotify, false}, {OpPush, false}, {OpFetch, false},
	} {
		h := Header{Op: tc.op}
		if h.IsRequest() != tc.want {
			t.Errorf("IsRequest(%s) = %v, want %v", tc.op, !tc.want, tc.want)
		}
	}
}

func TestHeaderStringNonEmpty(t *testing.T) {
	h := sampleHeader()
	if h.String() == "" {
		t.Fatalf("header string empty")
	}
}

// Property: every header assembled from arbitrary field values round-trips
// exactly (with mode reduced to its 1-bit wire representation).
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(opRaw uint8, modeRaw uint8, flags uint8, lockID uint32, txnID uint64, ip [4]byte, tenant, prio uint8, lease int64) bool {
		ops := []Op{OpAcquire, OpRelease, OpGrant, OpReject, OpPushNotify, OpPush, OpFetch}
		h := Header{
			Op:       ops[int(opRaw)%len(ops)],
			Mode:     Mode(modeRaw & 1),
			Flags:    Flags(flags),
			LockID:   lockID,
			TxnID:    txnID,
			ClientIP: netip.AddrFrom4(ip),
			TenantID: tenant,
			Priority: prio,
			LeaseNs:  lease,
		}
		var got Header
		if err := got.DecodeFromBytes(h.Marshal()); err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: encoding is deterministic.
func TestHeaderEncodeDeterministic(t *testing.T) {
	h := sampleHeader()
	if !bytes.Equal(h.Marshal(), h.Marshal()) {
		t.Fatalf("encoding not deterministic")
	}
}

func BenchmarkHeaderEncode(b *testing.B) {
	h := sampleHeader()
	buf := make([]byte, 0, HeaderLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = h.AppendTo(buf[:0])
	}
}

func BenchmarkHeaderDecode(b *testing.B) {
	h := sampleHeader()
	buf := h.Marshal()
	var out Header
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := out.DecodeFromBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}
