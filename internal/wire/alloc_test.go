package wire

import (
	"net/netip"
	"testing"
)

// The header codec sits on every hot path (client send, switch/server
// receive loops, the embedded shard settle loop), so encode and decode must
// stay allocation-free at steady state: AppendTo into a buffer with
// capacity, DecodeFromBytes into a reused Header.
func TestHeaderCodecAllocFree(t *testing.T) {
	h := Header{
		Op:       OpAcquire,
		Mode:     Exclusive,
		Flags:    FlagOneRTT,
		LockID:   0xdeadbeef,
		TxnID:    1<<40 + 7,
		ClientIP: netip.AddrFrom4([4]byte{10, 0, 0, 42}),
		TenantID: 3,
		Priority: 2,
		LeaseNs:  5_000_000,
	}
	buf := make([]byte, 0, HeaderLen)
	var dec Header
	var decErr error

	allocs := testing.AllocsPerRun(1000, func() {
		buf = h.AppendTo(buf[:0])
		if err := dec.DecodeFromBytes(buf); err != nil {
			decErr = err
		}
	})
	if decErr != nil {
		t.Fatalf("decode: %v", decErr)
	}
	if dec != h {
		t.Fatalf("round trip mismatch: got %+v want %+v", dec, h)
	}
	if allocs != 0 {
		t.Fatalf("header encode+decode allocates %v allocs/op, want 0", allocs)
	}
}
