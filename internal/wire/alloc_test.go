package wire

import (
	"net/netip"
	"testing"
)

// The header codec sits on every hot path (client send, switch/server
// receive loops, the embedded shard settle loop), so encode and decode must
// stay allocation-free at steady state: AppendTo into a buffer with
// capacity, DecodeFromBytes into a reused Header.
func TestHeaderCodecAllocFree(t *testing.T) {
	h := Header{
		Op:       OpAcquire,
		Mode:     Exclusive,
		Flags:    FlagOneRTT,
		LockID:   0xdeadbeef,
		TxnID:    1<<40 + 7,
		ClientIP: netip.AddrFrom4([4]byte{10, 0, 0, 42}),
		TenantID: 3,
		Priority: 2,
		LeaseNs:  5_000_000,
	}
	buf := make([]byte, 0, HeaderLen)
	var dec Header
	var decErr error

	allocs := testing.AllocsPerRun(1000, func() {
		buf = h.AppendTo(buf[:0])
		if err := dec.DecodeFromBytes(buf); err != nil {
			decErr = err
		}
	})
	if decErr != nil {
		t.Fatalf("decode: %v", decErr)
	}
	if dec != h {
		t.Fatalf("round trip mismatch: got %+v want %+v", dec, h)
	}
	if allocs != 0 {
		t.Fatalf("header encode+decode allocates %v allocs/op, want 0", allocs)
	}
}

// The batch codec wraps the header codec on the same hot paths (client
// flush, switch/server ingress and egress loops), so a full frame's encode
// and decode must also be allocation-free at steady state: BatchWriter
// reuses the previous frame's storage, BatchReader decodes into one Header.
func TestBatchCodecAllocFree(t *testing.T) {
	hdrs := make([]Header, MaxBatchOps)
	for i := range hdrs {
		hdrs[i] = Header{
			Op:       OpAcquire,
			Mode:     Mode(i % 2),
			LockID:   uint32(i + 1),
			TxnID:    uint64(i + 1000),
			ClientIP: netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}),
			LeaseNs:  int64(i),
		}
	}
	var w BatchWriter
	var r BatchReader
	var dec Header
	var codecErr error
	buf := make([]byte, 0, MaxDatagram)
	decoded := 0

	allocs := testing.AllocsPerRun(500, func() {
		w.Reset(buf)
		for i := range hdrs {
			if !w.Append(&hdrs[i]) {
				codecErr = ErrBatchCount
				return
			}
		}
		frame := w.Frame()
		if err := r.Reset(frame); err != nil {
			codecErr = err
			return
		}
		for {
			ok, err := r.Next(&dec)
			if err != nil {
				codecErr = err
				return
			}
			if !ok {
				break
			}
			decoded++
		}
		buf = frame[:0]
	})
	if codecErr != nil {
		t.Fatalf("batch codec: %v", codecErr)
	}
	if decoded == 0 {
		t.Fatalf("no records decoded")
	}
	if allocs != 0 {
		t.Fatalf("batch encode+decode allocates %v allocs/op, want 0", allocs)
	}
}
