//go:build ignore

// Generates the seed corpus for FuzzHeaderDecode under
// testdata/fuzz/FuzzHeaderDecode: one well-formed header per opcode, edge
// values (TxnNone, max IDs, all flags), and malformed variants (bad
// version, bad op, truncations). Run via `go generate ./internal/wire`.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"

	"netlock/internal/wire"
)

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzHeaderDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	base := wire.Header{
		Mode:     wire.Exclusive,
		LockID:   0xDEADBEEF,
		TxnID:    0x0123456789ABCDEF,
		ClientIP: netip.AddrFrom4([4]byte{10, 0, 1, 42}),
		TenantID: 7,
		Priority: 3,
		LeaseNs:  123456789,
	}
	entries := map[string][]byte{}
	for _, op := range []wire.Op{
		wire.OpAcquire, wire.OpRelease, wire.OpGrant, wire.OpReject,
		wire.OpPushNotify, wire.OpPush, wire.OpFetch,
	} {
		h := base
		h.Op = op
		entries["op-"+op.String()] = h.Marshal()
	}
	ctrl := base
	ctrl.Op = wire.OpPush
	ctrl.TxnID = wire.TxnNone
	ctrl.Flags = wire.FlagOverflow
	entries["push-control-clear"] = ctrl.Marshal()

	flagged := base
	flagged.Op = wire.OpAcquire
	flagged.Flags = wire.FlagOverflow | wire.FlagOneRTT | wire.FlagResubmit | wire.FlagBounced
	entries["all-flags"] = flagged.Marshal()

	maxed := base
	maxed.Op = wire.OpAcquire
	maxed.LockID = ^uint32(0)
	maxed.TxnID = ^uint64(0)
	maxed.Priority = 255
	maxed.LeaseNs = 1<<63 - 1
	entries["max-values"] = maxed.Marshal()

	badVersion := base
	badVersion.Op = wire.OpAcquire
	b := badVersion.Marshal()
	b[0] = 0xFF
	entries["bad-version"] = b

	badOp := append([]byte(nil), entries["op-acquire"]...)
	badOp[1] = 0xEE
	entries["bad-op"] = badOp

	entries["truncated"] = entries["op-acquire"][:wire.HeaderLen/2]
	entries["empty"] = nil

	for name, buf := range entries {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(buf)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d corpus entries to %s\n", len(entries), dir)
}
