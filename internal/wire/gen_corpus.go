//go:build ignore

// Generates the seed corpora for FuzzHeaderDecode and FuzzBatchDecode
// under testdata/fuzz/: one well-formed header per opcode, edge values
// (TxnNone, max IDs, all flags), malformed variants (bad version, bad op,
// truncations), and batch frames of several sizes with malformed preamble,
// count, and record variants. Run via `go generate ./internal/wire`.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"

	"netlock/internal/wire"
)

func writeCorpus(dir string, entries map[string][]byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, buf := range entries {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(buf)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d corpus entries to %s\n", len(entries), dir)
}

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzHeaderDecode")
	base := wire.Header{
		Mode:     wire.Exclusive,
		LockID:   0xDEADBEEF,
		TxnID:    0x0123456789ABCDEF,
		ClientIP: netip.AddrFrom4([4]byte{10, 0, 1, 42}),
		TenantID: 7,
		Priority: 3,
		LeaseNs:  123456789,
	}
	entries := map[string][]byte{}
	for _, op := range []wire.Op{
		wire.OpAcquire, wire.OpRelease, wire.OpGrant, wire.OpReject,
		wire.OpPushNotify, wire.OpPush, wire.OpFetch, wire.OpReleaseAck,
	} {
		h := base
		h.Op = op
		entries["op-"+op.String()] = h.Marshal()
	}
	ctrl := base
	ctrl.Op = wire.OpPush
	ctrl.TxnID = wire.TxnNone
	ctrl.Flags = wire.FlagOverflow
	entries["push-control-clear"] = ctrl.Marshal()

	flagged := base
	flagged.Op = wire.OpAcquire
	flagged.Flags = wire.FlagOverflow | wire.FlagOneRTT | wire.FlagResubmit | wire.FlagBounced
	entries["all-flags"] = flagged.Marshal()

	maxed := base
	maxed.Op = wire.OpAcquire
	maxed.LockID = ^uint32(0)
	maxed.TxnID = ^uint64(0)
	maxed.Priority = 255
	maxed.LeaseNs = 1<<63 - 1
	entries["max-values"] = maxed.Marshal()

	badVersion := base
	badVersion.Op = wire.OpAcquire
	b := badVersion.Marshal()
	b[0] = 0xFF
	entries["bad-version"] = b

	badOp := append([]byte(nil), entries["op-acquire"]...)
	badOp[1] = 0xEE
	entries["bad-op"] = badOp

	entries["truncated"] = entries["op-acquire"][:wire.HeaderLen/2]
	entries["empty"] = nil

	writeCorpus(dir, entries)
	writeCorpus(filepath.Join("testdata", "fuzz", "FuzzBatchDecode"), batchEntries(base))
	writeCorpus(filepath.Join("testdata", "fuzz", "FuzzMigrateDecode"), migrateEntries(base))
	writeCorpus(filepath.Join("testdata", "fuzz", "FuzzShardMapDecode"), shardMapEntries())
}

// shardMapEntries builds the FuzzShardMapDecode seed corpus: well-formed
// maps across the size range plus one malformed variant per decoder check.
func shardMapEntries() map[string][]byte {
	entries := map[string][]byte{}
	mk := func(racks, shards int, epoch uint64) []byte {
		m, err := wire.NewShardMap(racks, shards)
		if err != nil {
			log.Fatal(err)
		}
		m.Epoch = epoch
		return m.Marshal()
	}
	entries["map-1x1"] = mk(1, 1, 0)
	entries["map-4x64"] = mk(4, 64, 7)
	entries["map-max"] = mk(wire.MaxRacks, wire.MaxShards, ^uint64(0))
	rehomed, _ := wire.NewShardMap(4, 8)
	rehomed.Epoch = 3
	rehomed.Assign[5] = 0 // shard 5 re-homed off its round-robin rack
	entries["map-rehomed"] = rehomed.Marshal()

	good := mk(2, 4, 1)
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	entries["bad-version"] = mut(func(b []byte) { b[1] = 0xFF })
	entries["zero-racks"] = mut(func(b []byte) { b[2], b[3] = 0, 0 })
	entries["zero-shards"] = mut(func(b []byte) { b[4], b[5] = 0, 0 })
	entries["count-over-max"] = mut(func(b []byte) { binary.BigEndian.PutUint16(b[4:6], wire.MaxShards+1) })
	entries["reserved-set"] = mut(func(b []byte) { b[6] = 7 })
	entries["rack-of-range"] = mut(func(b []byte) { b[wire.ShardMapHdrLen] = 0xEE })
	entries["short-assign"] = good[:len(good)-1]
	entries["long-assign"] = append(append([]byte(nil), good...), 0)
	entries["truncated-hdr"] = good[:wire.ShardMapHdrLen/2]
	entries["magic-only"] = []byte{wire.ShardMapMagic}
	return entries
}

// migrateEntries builds the FuzzMigrateDecode seed corpus: one well-formed
// record per kind plus one malformed variant per ParseMigrate check.
func migrateEntries(base wire.Header) map[string][]byte {
	entry := base
	entry.Op = wire.OpAcquire
	entry.Flags = wire.FlagOneRTT
	entries := map[string][]byte{}
	add := func(name string, h wire.Header) { entries[name] = h.Marshal() }
	add("demote", wire.MigrateDemote(0xDEADBEEF))
	add("begin", wire.MigrateBegin(0xDEADBEEF, 123456789))
	add("region-bank0", wire.MigrateRegionRec(0xDEADBEEF, 0, 0, 16))
	add("region-bank3", wire.MigrateRegionRec(0xDEADBEEF, 3, 48, 64))
	add("entry-granted", wire.MigrateEntry(&entry, true))
	add("entry-waiter", wire.MigrateEntry(&entry, false))
	add("commit", wire.MigrateCommit(0xDEADBEEF, 2))

	mut := func(h wire.Header, f func(*wire.Header)) wire.Header { f(&h); return h }
	add("kind-zero", mut(wire.MigrateDemote(1), func(h *wire.Header) { h.Flags = 0 }))
	add("kind-over-max", mut(wire.MigrateDemote(1), func(h *wire.Header) { h.Flags = 7 << 4 }))
	add("demote-stray-txn", mut(wire.MigrateDemote(1), func(h *wire.Header) { h.TxnID = 9 }))
	add("begin-stray-priority", mut(wire.MigrateBegin(1, 5), func(h *wire.Header) { h.Priority = 1 }))
	add("region-empty", mut(wire.MigrateRegionRec(1, 0, 4, 8), func(h *wire.Header) { h.TxnID = 4<<32 | 4 }))
	add("entry-txn-none", mut(wire.MigrateEntry(&entry, false), func(h *wire.Header) { h.TxnID = wire.TxnNone }))
	add("entry-overflow-flag", mut(wire.MigrateEntry(&entry, true), func(h *wire.Header) { h.Flags |= wire.FlagOverflow }))
	add("commit-count-wide", mut(wire.MigrateCommit(1, 1), func(h *wire.Header) { h.TxnID = 1 << 32 }))
	entries["truncated"] = entries["demote"][:wire.HeaderLen/2]
	return entries
}

// batchEntries builds the FuzzBatchDecode seed corpus: frames of several
// sizes and op mixes, plus one malformed variant per decoder check.
func batchEntries(base wire.Header) map[string][]byte {
	frame := func(n int, mix bool) []byte {
		var w wire.BatchWriter
		w.Reset(nil)
		ops := []wire.Op{wire.OpAcquire, wire.OpRelease, wire.OpGrant, wire.OpReleaseAck}
		for i := 0; i < n; i++ {
			h := base
			h.Op = wire.OpAcquire
			if mix {
				h.Op = ops[i%len(ops)]
			}
			h.LockID = uint32(i + 1)
			h.TxnID = uint64(i + 100)
			if !w.Append(&h) {
				log.Fatalf("batch frame of %d ops refused at %d", n, i)
			}
		}
		return append([]byte(nil), w.Frame()...)
	}
	entries := map[string][]byte{
		"batch-1":       frame(1, false),
		"batch-2-mixed": frame(2, true),
		"batch-8-mixed": frame(8, true),
		"batch-max":     frame(wire.MaxBatchOps, true),
	}

	one := frame(1, false)
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), one...)
		f(b)
		return b
	}
	entries["preamble-truncated"] = one[:3]
	entries["bad-magic"] = mut(func(b []byte) { b[0] = wire.Version })
	entries["bad-reserved"] = mut(func(b []byte) { b[1] = 7 })
	entries["zero-count"] = mut(func(b []byte) { binary.BigEndian.PutUint16(b[2:4], 0) })
	entries["count-over-max"] = mut(func(b []byte) { binary.BigEndian.PutUint16(b[2:4], wire.MaxBatchOps+1) })
	entries["count-exceeds-records"] = mut(func(b []byte) { binary.BigEndian.PutUint16(b[2:4], 2) })
	entries["record-truncated"] = one[:len(one)-1]
	entries["runt-record"] = mut(func(b []byte) { binary.BigEndian.PutUint16(b[4:6], wire.HeaderLen-1) })
	entries["trailing-garbage"] = append(append([]byte(nil), one...), 0x00)
	entries["bad-record-version"] = mut(func(b []byte) { b[6] = 0xFF })
	entries["bad-record-op"] = mut(func(b []byte) { b[7] = 0xEE })
	entries["oversize"] = make([]byte, wire.MaxDatagram+1)
	return entries
}
