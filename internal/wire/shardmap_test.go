package wire

import (
	"bytes"
	"testing"
)

func TestShardMapRoundTrip(t *testing.T) {
	m, err := NewShardMap(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	m.Epoch = 7
	m.Assign[3] = 2 // a re-homed shard
	buf := m.Marshal()
	var got ShardMap
	if err := got.DecodeFromBytes(buf); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Epoch != 7 || got.Racks != 4 || got.Shards() != 64 {
		t.Fatalf("decoded %+v", got)
	}
	if !bytes.Equal(got.Assign, m.Assign) {
		t.Fatalf("assignment mismatch: %v vs %v", got.Assign, m.Assign)
	}
	if !bytes.Equal(got.Marshal(), buf) {
		t.Fatalf("re-encode differs from input")
	}
}

func TestShardMapStriping(t *testing.T) {
	m, err := NewShardMap(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for s := range m.Assign {
		counts[m.Assign[s]]++
	}
	for r, n := range counts {
		if n == 0 {
			t.Fatalf("rack %d owns no shards: %v", r, m.Assign)
		}
	}
	// Every lock routes to the rack its shard is assigned to, and the
	// shard function is total and stable.
	for lock := uint32(1); lock < 10000; lock += 37 {
		sh := m.ShardOf(lock)
		if int(sh) >= m.Shards() {
			t.Fatalf("lock %d -> shard %d out of range", lock, sh)
		}
		if m.RackOf(lock) != m.RackAt(sh) {
			t.Fatalf("lock %d rack mismatch", lock)
		}
	}
}

func TestShardMapBounds(t *testing.T) {
	if _, err := NewShardMap(0, 8); err == nil {
		t.Fatal("rack count 0 accepted")
	}
	if _, err := NewShardMap(2, MaxShards+1); err == nil {
		t.Fatal("oversized shard count accepted")
	}
	if _, err := NewShardMap(MaxRacks+1, 8); err == nil {
		t.Fatal("oversized rack count accepted")
	}
}

func TestShardMapDecodeRejects(t *testing.T) {
	m, _ := NewShardMap(2, 4)
	good := m.Marshal()
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":         nil,
		"not-magic":     {Version},
		"truncated-hdr": good[:ShardMapHdrLen-1],
		"bad-version":   mut(func(b []byte) { b[1] = 0xFF }),
		"zero-racks":    mut(func(b []byte) { b[2], b[3] = 0, 0 }),
		"zero-shards":   mut(func(b []byte) { b[4], b[5] = 0, 0 }),
		"reserved-set":  mut(func(b []byte) { b[6] = 1 }),
		"short-assign":  good[:len(good)-1],
		"long-assign":   append(append([]byte(nil), good...), 0),
		"rack-of-range": mut(func(b []byte) { b[ShardMapHdrLen] = 9 }),
	}
	var sm ShardMap
	for name, buf := range cases {
		if err := sm.DecodeFromBytes(buf); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzShardMapDecode asserts the shard-map decoder never panics and that
// every accepted frame re-encodes to the identical bytes (the parse is
// strict, so decode∘encode is the identity).
func FuzzShardMapDecode(f *testing.F) {
	m, _ := NewShardMap(4, 64)
	m.Epoch = 3
	f.Add(m.Marshal())
	one, _ := NewShardMap(1, 1)
	f.Add(one.Marshal())
	big, _ := NewShardMap(MaxRacks, MaxShards)
	big.Epoch = ^uint64(0)
	f.Add(big.Marshal())
	f.Add([]byte{ShardMapMagic})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		var sm ShardMap
		if err := sm.DecodeFromBytes(data); err != nil {
			return
		}
		if sm.Racks < 1 || sm.Racks > MaxRacks || sm.Shards() < 1 || sm.Shards() > MaxShards {
			t.Fatalf("accepted out-of-range map %+v", sm)
		}
		if !bytes.Equal(sm.Marshal(), data) {
			t.Fatalf("re-encode differs from accepted input")
		}
		// The routing functions must be total on an accepted map.
		for _, lock := range []uint32{0, 1, ^uint32(0)} {
			if r := sm.RackOf(lock); r < 0 || r >= sm.Racks {
				t.Fatalf("lock %d -> rack %d of %d", lock, r, sm.Racks)
			}
		}
	})
}
