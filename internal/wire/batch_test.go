package wire

import (
	"encoding/binary"
	"errors"
	"net/netip"
	"testing"
)

func batchHeader(i int) Header {
	return Header{
		Op:       OpAcquire,
		Mode:     Mode(i % 2),
		LockID:   uint32(100 + i),
		TxnID:    uint64(1000 + i),
		ClientIP: netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}),
		TenantID: uint8(i),
		Priority: uint8(i % 8),
		LeaseNs:  int64(i) * 1_000_000,
	}
}

// encodeBatch builds a frame of n sequential headers.
func encodeBatch(t *testing.T, n int) []byte {
	t.Helper()
	var w BatchWriter
	w.Reset(nil)
	for i := 0; i < n; i++ {
		h := batchHeader(i)
		if !w.Append(&h) {
			t.Fatalf("Append %d/%d refused", i, n)
		}
	}
	frame := w.Frame()
	if frame == nil {
		t.Fatalf("nil frame for %d ops", n)
	}
	return append([]byte(nil), frame...)
}

func TestBatchRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 7, MaxBatchOps} {
		frame := encodeBatch(t, n)
		var r BatchReader
		if err := r.Reset(frame); err != nil {
			t.Fatalf("n=%d: Reset: %v", n, err)
		}
		var h Header
		for i := 0; i < n; i++ {
			ok, err := r.Next(&h)
			if err != nil || !ok {
				t.Fatalf("n=%d: Next %d: ok=%v err=%v", n, i, ok, err)
			}
			if want := batchHeader(i); h != want {
				t.Fatalf("n=%d: record %d: got %v want %v", n, i, &h, &want)
			}
		}
		if ok, err := r.Next(&h); ok || err != nil {
			t.Fatalf("n=%d: expected clean end, got ok=%v err=%v", n, ok, err)
		}
	}
}

func TestBatchWriterFull(t *testing.T) {
	var w BatchWriter
	w.Reset(nil)
	h := batchHeader(0)
	for i := 0; i < MaxBatchOps; i++ {
		if !w.Append(&h) {
			t.Fatalf("Append %d refused before MaxBatchOps", i)
		}
	}
	if w.Append(&h) {
		t.Fatalf("Append beyond MaxBatchOps accepted")
	}
	if w.Count() != MaxBatchOps {
		t.Fatalf("count %d after overfill, want %d", w.Count(), MaxBatchOps)
	}
	if len(w.Frame()) > MaxDatagram {
		t.Fatalf("full frame %d bytes exceeds MaxDatagram", len(w.Frame()))
	}
}

func TestBatchWriterEmptyFrame(t *testing.T) {
	var w BatchWriter
	w.Reset(nil)
	if f := w.Frame(); f != nil {
		t.Fatalf("empty writer produced a frame of %d bytes", len(f))
	}
}

// TestBatchDecodeMalformed is the table of rejected frames: truncations at
// every layer, zero and oversized counts, bad magic/reserved bytes, runt
// records, and trailing garbage.
func TestBatchDecodeMalformed(t *testing.T) {
	one := encodeBatch(t, 1)
	two := encodeBatch(t, 2)

	mut := func(src []byte, f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), src...))
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBatchShort},
		{"preamble-only-truncated", one[:3], ErrBatchShort},
		{"bad-magic", mut(one, func(b []byte) []byte { b[0] = Version; return b }), ErrNotBatch},
		{"bad-reserved", mut(one, func(b []byte) []byte { b[1] = 1; return b }), ErrBatchReserved},
		{"zero-count", mut(one, func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[2:4], 0)
			return b
		}), ErrBatchEmpty},
		{"count-over-max", mut(one, func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[2:4], MaxBatchOps+1)
			return b
		}), ErrBatchCount},
		{"oversize-frame", make([]byte, MaxDatagram+1), ErrBatchOversize},
		{"record-header-truncated", one[:batchHdrLen+1], ErrBatchTruncated},
		{"record-body-truncated", one[:len(one)-1], ErrBatchTruncated},
		{"runt-record-length", mut(one, func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[4:6], HeaderLen-1)
			return b
		}), ErrBatchRecord},
		{"count-exceeds-records", mut(one, func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[2:4], 2)
			return b
		}), ErrBatchTruncated},
		{"trailing-garbage", append(append([]byte(nil), one...), 0xAA), ErrBatchTrailing},
		{"count-under-records", mut(two, func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[2:4], 1)
			return b
		}), ErrBatchTrailing},
		{"bad-header-version", mut(one, func(b []byte) []byte { b[6] = 0xFF; return b }), ErrBadVersion},
		{"bad-header-op", mut(one, func(b []byte) []byte { b[7] = 0xEE; return b }), ErrBadOp},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r BatchReader
			err := r.Reset(tc.data)
			var h Header
			for err == nil {
				var ok bool
				ok, err = r.Next(&h)
				if !ok {
					break
				}
			}
			if err == nil {
				t.Fatalf("malformed frame accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// Longer-than-header records are forward compatibility: the decoder takes
// the header and ignores the record's extra bytes.
func TestBatchLongRecordForwardCompat(t *testing.T) {
	h := batchHeader(3)
	frame := []byte{BatchMagic, 0, 0, 1}
	frame = binary.BigEndian.AppendUint16(frame, HeaderLen+4)
	frame = h.AppendTo(frame)
	frame = append(frame, 0xDE, 0xAD, 0xBE, 0xEF)
	var r BatchReader
	if err := r.Reset(frame); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var got Header
	if ok, err := r.Next(&got); !ok || err != nil {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}
	if got != h {
		t.Fatalf("long record decode mismatch: got %v want %v", &got, &h)
	}
	if ok, err := r.Next(&got); ok || err != nil {
		t.Fatalf("expected clean end, got ok=%v err=%v", ok, err)
	}
}

// The two on-wire formats must classify by first byte: receivers route a
// datagram by IsBatch and never confuse a bare header for a frame.
func TestBatchMagicDisjointFromVersion(t *testing.T) {
	if BatchMagic == Version {
		t.Fatalf("BatchMagic collides with header Version")
	}
	h := batchHeader(0)
	if IsBatch(h.Marshal()) {
		t.Fatalf("bare header classified as batch")
	}
	if !IsBatch(encodeBatch(t, 1)) {
		t.Fatalf("batch frame not classified as batch")
	}
}

// Reusing one writer buffer and one reader across frames must work; this is
// the steady-state pattern of every transport loop.
func TestBatchWriterReuse(t *testing.T) {
	var w BatchWriter
	var r BatchReader
	var h Header
	buf := make([]byte, 0, MaxDatagram)
	for round := 0; round < 3; round++ {
		w.Reset(buf)
		for i := 0; i < 5; i++ {
			hh := batchHeader(round*5 + i)
			if !w.Append(&hh) {
				t.Fatal("Append refused")
			}
		}
		frame := w.Frame()
		if err := r.Reset(frame); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := 0; i < 5; i++ {
			if ok, err := r.Next(&h); !ok || err != nil {
				t.Fatalf("round %d rec %d: ok=%v err=%v", round, i, ok, err)
			}
			if want := batchHeader(round*5 + i); h != want {
				t.Fatalf("round %d rec %d mismatch", round, i)
			}
		}
		buf = frame[:0]
	}
}
