package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Chain frames carry the replication protocol of a NetChain-style switch
// chain (internal/transport). The head of the chain assigns a sequence
// number to every state-mutating NetLock op and propagates it down the
// chain wrapped in a ChainMsg; each member applies the same deterministic
// op stream to its own data-plane replica, and only the tail emits
// externally-visible packets. The tail acknowledges applied prefixes back
// up the chain so members can prune their replay logs.
//
// Layout (big-endian), disjoint from both the bare header (first byte =
// Version) and batch frames (first byte = BatchMagic):
//
//	0  magic(1)=0xC7  version(1)=1  kind(1)  origin(1)
//	4  epoch(8)
//	12 seq(8)
//	20 header(32)        — ChainOp and ChainRelay only
const (
	// ChainMagic is the first byte of every chain frame.
	ChainMagic = 0xC7
	// ChainHdrLen is the length of the fixed chain prefix (before the
	// embedded NetLock header, if any).
	ChainHdrLen = 20
	// ChainOpLen is the full length of a ChainOp / ChainRelay frame.
	ChainOpLen = ChainHdrLen + HeaderLen
)

// ChainKind discriminates chain frame types.
type ChainKind uint8

const (
	// ChainOp is a sequenced op propagating head→tail. Epoch and Seq are
	// meaningful; the receiver applies Hdr iff Seq is the next expected.
	ChainOp ChainKind = iota + 1
	// ChainAck is the tail's applied-prefix acknowledgement (Seq = highest
	// applied sequence number); carries no header.
	ChainAck
	// ChainRelay is an unsequenced op forwarded by a non-head member to
	// the head (a client or server addressed a stale member). Seq is zero;
	// Origin classifies the original sender. Relays are never re-relayed:
	// a non-head receiving one drops it, which bounds routing loops during
	// reconfiguration.
	ChainRelay
)

// ChainOrigin classifies who originated the op embedded in a chain frame.
// Members need it because the same op code means different things from
// different senders (e.g. an OpRelease from a client dequeues a holder,
// while an OpRelease from the lease sweep also purges dedup state).
type ChainOrigin uint8

const (
	OriginClient ChainOrigin = iota
	OriginServer
	OriginCtrl
)

// ChainMsg is a decoded chain frame. One value can be reused across frames
// via DecodeFromBytes.
type ChainMsg struct {
	Kind   ChainKind
	Origin ChainOrigin
	Epoch  uint64
	Seq    uint64
	Hdr    Header // valid for ChainOp and ChainRelay
}

// Errors returned by ChainMsg.DecodeFromBytes.
var (
	ErrNotChain     = errors.New("wire: not a chain frame")
	ErrBadChainKind = errors.New("wire: undefined chain frame kind")
)

// IsChain reports whether data begins with a chain frame magic byte.
func IsChain(data []byte) bool {
	return len(data) > 0 && data[0] == ChainMagic
}

// AppendTo appends the encoding of m to dst and returns the extended slice.
// It never allocates if dst has capacity.
func (m *ChainMsg) AppendTo(dst []byte) []byte {
	var b [ChainHdrLen]byte
	b[0] = ChainMagic
	b[1] = Version
	b[2] = uint8(m.Kind)
	b[3] = uint8(m.Origin)
	binary.BigEndian.PutUint64(b[4:12], m.Epoch)
	binary.BigEndian.PutUint64(b[12:20], m.Seq)
	dst = append(dst, b[:]...)
	if m.Kind != ChainAck {
		dst = m.Hdr.AppendTo(dst)
	}
	return dst
}

// DecodeFromBytes parses a chain frame from data into m, overwriting all
// fields. It does not retain data.
func (m *ChainMsg) DecodeFromBytes(data []byte) error {
	if !IsChain(data) {
		return ErrNotChain
	}
	if len(data) < ChainHdrLen {
		return fmt.Errorf("%w: %d bytes", ErrTooShort, len(data))
	}
	if data[1] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, data[1])
	}
	kind := ChainKind(data[2])
	switch kind {
	case ChainOp, ChainAck, ChainRelay:
	default:
		return fmt.Errorf("%w: %d", ErrBadChainKind, data[2])
	}
	m.Kind = kind
	m.Origin = ChainOrigin(data[3])
	m.Epoch = binary.BigEndian.Uint64(data[4:12])
	m.Seq = binary.BigEndian.Uint64(data[12:20])
	if kind == ChainAck {
		m.Hdr = Header{}
		return nil
	}
	return m.Hdr.DecodeFromBytes(data[ChainHdrLen:])
}

// String renders the frame for logs and test failures.
func (m *ChainMsg) String() string {
	switch m.Kind {
	case ChainAck:
		return fmt.Sprintf("chain-ack epoch=%d applied=%d", m.Epoch, m.Seq)
	case ChainRelay:
		return fmt.Sprintf("chain-relay epoch=%d origin=%d {%s}", m.Epoch, m.Origin, m.Hdr.String())
	default:
		return fmt.Sprintf("chain-op epoch=%d seq=%d origin=%d {%s}", m.Epoch, m.Seq, m.Origin, m.Hdr.String())
	}
}
