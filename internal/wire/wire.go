// Package wire defines the NetLock packet format.
//
// NetLock reserves a UDP destination port; packets to that port carry a
// fixed 32-byte NetLock header directly in the UDP payload (§4.2 of the
// paper). The header identifies the operation (acquire / release / grant /
// queue-coordination), the lock, the lock mode, the requesting transaction,
// and the client address the switch needs to send the grant notification to.
//
// Encoding follows the gopacket idiom: DecodeFromBytes reads from a caller
// buffer into a reusable struct, and AppendTo serializes without hidden
// allocation, so the hot path of the switch and servers never allocates per
// packet.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

//go:generate go run gen_corpus.go

// Port is the UDP destination port reserved for NetLock traffic. The
// switch's match-action parser classifies packets by this port; everything
// else is routed untouched (§3.2).
const Port = 52836

// HeaderLen is the fixed length of the NetLock header in bytes.
// Matching the paper's 20B queue-slot size plus addressing fields,
// the on-wire header is 32 bytes.
const HeaderLen = 32

// Version is the current header version.
const Version = 1

// Op is the NetLock operation carried by a packet.
type Op uint8

// NetLock operations. Client-originated ops are Acquire and Release;
// NetLock-originated ops implement grants and the switch-server overflow
// protocol of §4.3.
const (
	// OpAcquire requests a lock in the mode given by the Mode field.
	OpAcquire Op = iota + 1
	// OpRelease releases a lock previously granted to TxnID.
	OpRelease
	// OpGrant notifies a client that its request was granted.
	OpGrant
	// OpReject notifies a client its request was dropped (queue overflow in
	// both switch and server, or lease violation); the client should retry.
	OpReject
	// OpPushNotify is sent by the switch to a lock server when the switch
	// queue for a lock has drained and buffered requests may be pushed.
	OpPushNotify
	// OpPush is sent by a lock server to the switch to insert a request
	// buffered in the server queue (q2) into the switch queue (q1).
	OpPush
	// OpFetch is the one-RTT mode operation: a grant forwarded directly to
	// the database server holding the item, so lock acquisition and data
	// fetch complete in a single round trip (§4.1).
	OpFetch
	// OpReleaseAck confirms to a client that its OpRelease was processed by
	// the node owning the lock. The paper's release is fire-and-forget; the
	// ack lets the transport client resend un-acked releases on its sweep
	// timer so a dropped release packet cannot leak the lock until lease
	// expiry. Acks are idempotent: a node receiving a release for a lock it
	// no longer tracks re-acks without touching the data plane (releases
	// dequeue a granted queue head, so replaying one is never safe).
	OpReleaseAck
	// OpEpoch is a control-plane announcement from a replicated switch
	// chain to a client: the chain entered a new epoch (TxnID carries the
	// epoch number) and the member at ClientIP:ClientPort is now the head.
	// Clients re-target pending traffic; the announcement is idempotent and
	// safe to drop (clients also discover the head by rotating through
	// their configured member list on retransmit).
	OpEpoch
	// OpMigrate carries one record of a live lock migration between the
	// switch chain and a lock server (promote/demote without stop-the-world).
	// The record kind lives in the upper flag bits; see MigrateRecord for the
	// stream grammar (begin → region* → entry* → commit) and field packing.
	// Migrate records ride the chain's sequenced op stream and batch frames
	// unchanged, so replays dedup by chain sequence like every other op.
	OpMigrate
	// OpWrongRack bounces a client request addressed to a rack that does
	// not own the lock's shard under the responder's shard map: LockID and
	// TxnID echo the request, LeaseNs carries the responder's map epoch.
	// The responder also sends its full serialized ShardMap frame, so the
	// client adopts the newer assignment and re-routes everything
	// outstanding; the bounce header alone is a hint that routing is stale.
	OpWrongRack
)

var opNames = map[Op]string{
	OpAcquire:    "acquire",
	OpRelease:    "release",
	OpGrant:      "grant",
	OpReject:     "reject",
	OpPushNotify: "push-notify",
	OpPush:       "push",
	OpFetch:      "fetch",
	OpReleaseAck: "release-ack",
	OpEpoch:      "epoch",
	OpMigrate:    "migrate",
	OpWrongRack:  "wrong-rack",
}

// String returns the lowercase operation name.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether the op is a defined NetLock operation.
func (o Op) Valid() bool { _, ok := opNames[o]; return ok }

// Mode is the lock mode requested.
type Mode uint8

// Lock modes. Shared locks may be held concurrently by many transactions;
// exclusive locks by exactly one.
const (
	Shared Mode = iota
	Exclusive
)

// String returns "S" or "X", the conventional shorthand.
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Flags qualify a packet's handling.
type Flags uint8

const (
	// FlagOverflow marks a request the switch forwarded to a lock server
	// only for buffering: the lock lives in the switch, but its switch queue
	// was full. The server must buffer in q2 without processing (§4.3).
	FlagOverflow Flags = 1 << iota
	// FlagOneRTT asks NetLock to forward the grant to the database server
	// (OpFetch) instead of replying to the client, enabling one-RTT
	// transactions (§4.1).
	FlagOneRTT
	// FlagResubmit marks a packet traversing the switch pipeline again via
	// the resubmit primitive; never seen on the wire outside the switch.
	FlagResubmit
	// FlagBounced marks a request that a lock server bounced back to the
	// switch as an OpPush after the server had already drained its overflow
	// buffer (q2). If the switch queue is full and the request comes back
	// to the server overflow-marked AND bounced, the server buffers it
	// unconditionally, guaranteeing liveness across the clear-overflow
	// race (§4.3 leaves this race unspecified; see internal/lockserver).
	FlagBounced
)

// FlagMoved qualifies an OpReject: the addressed node no longer owns the
// lock (server draining, or the lock moved mid-flight), so the request was
// not dropped for capacity — the client should re-resolve the owner and
// retry immediately rather than backing off. Meaningful only on OpReject;
// the same upper flag bits carry the record kind on OpMigrate headers.
const FlagMoved Flags = 1 << 4

// TxnNone is the reserved transaction ID 0: an OpPush carrying TxnNone is a
// pure control message ("overflow buffer drained, clear overflow mode")
// with no request payload. Clients must allocate transaction IDs from 1.
const TxnNone uint64 = 0

// Header is the NetLock packet header. One Header value can be reused across
// packets via DecodeFromBytes.
type Header struct {
	Op       Op
	Mode     Mode
	Flags    Flags
	LockID   uint32
	TxnID    uint64
	ClientIP netip.Addr // IPv4 address for grant notification
	TenantID uint8
	Priority uint8
	// ClientPort is the UDP source port of the requesting client, stamped
	// by the client alongside ClientIP. A single switch answers to the
	// packet's source address and ignores it; a replicated chain needs it
	// because the member emitting the grant (the tail) is not the member
	// that received the request (the head). Zero means "unset" (pre-chain
	// clients); receivers then fall back to the datagram source address.
	ClientPort uint16
	// LeaseNs is the absolute expiry time of the lock lease in nanoseconds
	// of the NetLock clock, set by the switch/server when granting (§4.5).
	// On Acquire it carries the client's requested lease duration.
	LeaseNs int64
}

// Errors returned by DecodeFromBytes.
var (
	ErrTooShort   = errors.New("wire: buffer shorter than NetLock header")
	ErrBadVersion = errors.New("wire: unsupported NetLock header version")
	ErrBadOp      = errors.New("wire: undefined NetLock op")
)

// AppendTo appends the 32-byte encoding of h to dst and returns the extended
// slice. It never allocates if dst has capacity.
//
// Layout (big-endian):
//
//	0  version(1) op(1) mode(1) flags(1)
//	4  lockID(4)
//	8  txnID(8)
//	16 clientIP(4) tenantID(1) priority(1) clientPort(2)
//	24 leaseNs(8)
func (h *Header) AppendTo(dst []byte) []byte {
	var b [HeaderLen]byte
	b[0] = Version
	b[1] = uint8(h.Op)
	b[2] = uint8(h.Mode)
	b[3] = uint8(h.Flags)
	binary.BigEndian.PutUint32(b[4:8], h.LockID)
	binary.BigEndian.PutUint64(b[8:16], h.TxnID)
	if h.ClientIP.Is4() {
		a4 := h.ClientIP.As4()
		copy(b[16:20], a4[:])
	}
	b[20] = h.TenantID
	b[21] = h.Priority
	binary.BigEndian.PutUint16(b[22:24], h.ClientPort)
	binary.BigEndian.PutUint64(b[24:32], uint64(h.LeaseNs))
	return append(dst, b[:]...)
}

// Marshal returns a freshly allocated encoding of h.
func (h *Header) Marshal() []byte {
	return h.AppendTo(make([]byte, 0, HeaderLen))
}

// DecodeFromBytes parses a NetLock header from data into h, overwriting all
// fields. It does not retain data.
func (h *Header) DecodeFromBytes(data []byte) error {
	if len(data) < HeaderLen {
		return fmt.Errorf("%w: %d bytes", ErrTooShort, len(data))
	}
	if data[0] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, data[0])
	}
	op := Op(data[1])
	if !op.Valid() {
		return fmt.Errorf("%w: %d", ErrBadOp, data[1])
	}
	h.Op = op
	h.Mode = Mode(data[2] & 1)
	h.Flags = Flags(data[3])
	h.LockID = binary.BigEndian.Uint32(data[4:8])
	h.TxnID = binary.BigEndian.Uint64(data[8:16])
	h.ClientIP = netip.AddrFrom4([4]byte(data[16:20]))
	h.TenantID = data[20]
	h.Priority = data[21]
	h.ClientPort = binary.BigEndian.Uint16(data[22:24])
	h.LeaseNs = int64(binary.BigEndian.Uint64(data[24:32]))
	return nil
}

// String renders the header for logs and test failures.
func (h *Header) String() string {
	return fmt.Sprintf("%s %s lock=%d txn=%d client=%s tenant=%d prio=%d flags=%03b lease=%d",
		h.Op, h.Mode, h.LockID, h.TxnID, h.ClientIP, h.TenantID, h.Priority, h.Flags, h.LeaseNs)
}

// IsRequest reports whether the packet is client-originated (acquire or
// release), i.e. subject to lock-table processing.
func (h *Header) IsRequest() bool { return h.Op == OpAcquire || h.Op == OpRelease }
