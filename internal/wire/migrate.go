package wire

import (
	"errors"
	"fmt"
	"net/netip"
)

// Live-migration records (OpMigrate).
//
// A region move transfers one lock's queue state — per-bank region bounds
// plus every granted/waiting entry in FIFO order — between the switch chain
// and a lock server without stopping traffic. The transfer is a stream of
// OpMigrate headers, each a self-contained 32-byte record that rides the
// chain's sequenced op log and the batch frames unchanged:
//
//	demote                          (directive: chain exports lock → server)
//	begin  → region* → entry* → commit   (the exported state itself)
//
// The record kind is packed into the upper flag bits (bits 4-6); bit 7
// marks a granted entry. The lower flag bits keep their normal meaning on
// entry records (FlagOneRTT survives a move) and must be clear elsewhere.
// Field packing per kind:
//
//	demote  LockID
//	begin   LockID, LeaseNs = exporter clock (leases are rebased on import)
//	region  LockID, Priority = bank, TxnID = left<<32 | right
//	entry   the original request header (Mode, TxnID, ClientIP, ClientPort,
//	        TenantID, Priority, LeaseNs, FlagOneRTT) + granted bit
//	commit  LockID, TxnID = entry count
//
// ParseMigrate validates strictly: every field a kind does not carry must
// be zero, so parse∘encode is the identity on accepted records and the
// fuzz target (FuzzMigrateDecode) can round-trip every accepted header.

// MigrateKind discriminates OpMigrate records.
type MigrateKind uint8

const (
	// MigDemote directs the switch chain to export a resident lock and
	// stream its state to the owning lock server. It is sequenced through
	// the chain so every member evicts deterministically at the same point
	// in the op stream; only the tail emits the resulting state records.
	MigDemote MigrateKind = iota + 1
	// MigBegin opens a lock's state stream. LeaseNs carries the exporter's
	// clock at export time so the importer can rebase absolute lease
	// expiries onto its own clock (expiry - base + now).
	MigBegin
	// MigRegion declares the queue region bounds for one priority bank.
	// One region record per bank, in bank order, before any entries.
	MigRegion
	// MigEntry transfers one queued request, granted bit included. Entries
	// arrive in FIFO order per (bank): granted prefix first, then waiters.
	MigEntry
	// MigCommit closes the stream; TxnID carries the entry count so the
	// importer can detect a torn transfer before installing anything.
	MigCommit
)

var migKindNames = map[MigrateKind]string{
	MigDemote: "demote",
	MigBegin:  "begin",
	MigRegion: "region",
	MigEntry:  "entry",
	MigCommit: "commit",
}

// String returns the lowercase record kind name.
func (k MigrateKind) String() string {
	if s, ok := migKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("mig-kind(%d)", uint8(k))
}

const (
	migKindShift       = 4
	migKindBits  Flags = 7 << migKindShift
	// FlagMigGranted marks a MigEntry record as a granted holder (as
	// opposed to a waiter). Meaningful only on OpMigrate entry records.
	FlagMigGranted Flags = 1 << 7
)

// MigrateKindOf classifies a header: the record kind for OpMigrate headers,
// 0 for everything else (including malformed kind bits — use ParseMigrate
// for validation).
func MigrateKindOf(h *Header) MigrateKind {
	if h.Op != OpMigrate {
		return 0
	}
	return MigrateKind((h.Flags & migKindBits) >> migKindShift)
}

// Errors returned by ParseMigrate.
var (
	ErrNotMigrate     = errors.New("wire: header is not an OpMigrate record")
	ErrMigrateKind    = errors.New("wire: undefined migrate record kind")
	ErrMigrateFlags   = errors.New("wire: invalid flags for migrate record kind")
	ErrMigrateField   = errors.New("wire: nonzero field unused by migrate record kind")
	ErrMigrateRegion  = errors.New("wire: empty migrate region")
	ErrMigrateTxn     = errors.New("wire: migrate entry carries TxnNone")
	ErrMigrateCount   = errors.New("wire: migrate commit count out of range")
	ErrMigrateEntryOp = errors.New("wire: migrate entry header is not an acquire")
)

// zeroIPv4 is the canonical "unset" client address on migrate records that
// carry no addressing (decode always materializes a 4-byte address).
var zeroIPv4 = netip.AddrFrom4([4]byte{})

// MigrateRecord is the decoded view of one OpMigrate header. Only the
// fields for the record's Kind are meaningful; the rest are zero.
type MigrateRecord struct {
	Kind   MigrateKind
	LockID uint32
	// BaseNs is the exporter's clock at export time (MigBegin).
	BaseNs int64
	// Bank, Left, Right are the per-bank region bounds (MigRegion).
	Bank        uint8
	Left, Right uint32
	// Entry is the migrated request as an acquire-shaped header, directly
	// usable for import/replay; Granted tells holder from waiter (MigEntry).
	Entry   Header
	Granted bool
	// Count is the total number of entry records in the stream (MigCommit).
	Count uint32
}

// Header encodes the record back into an OpMigrate wire header. It is the
// inverse of ParseMigrate for valid records.
func (r *MigrateRecord) Header() Header {
	kind := Flags(r.Kind) << migKindShift
	switch r.Kind {
	case MigBegin:
		return Header{Op: OpMigrate, Flags: kind, LockID: r.LockID, ClientIP: zeroIPv4, LeaseNs: r.BaseNs}
	case MigRegion:
		return Header{
			Op: OpMigrate, Flags: kind, LockID: r.LockID, ClientIP: zeroIPv4,
			Priority: r.Bank, TxnID: uint64(r.Left)<<32 | uint64(r.Right),
		}
	case MigEntry:
		h := r.Entry
		h.Op = OpMigrate
		h.LockID = r.LockID
		h.Flags = (r.Entry.Flags & FlagOneRTT) | kind
		if r.Granted {
			h.Flags |= FlagMigGranted
		}
		return h
	case MigCommit:
		return Header{Op: OpMigrate, Flags: kind, LockID: r.LockID, ClientIP: zeroIPv4, TxnID: uint64(r.Count)}
	default: // MigDemote and (unreachable) invalid kinds
		return Header{Op: OpMigrate, Flags: kind, LockID: r.LockID, ClientIP: zeroIPv4}
	}
}

// MigrateDemote builds the chain directive to export lockID to its server.
func MigrateDemote(lockID uint32) Header {
	r := MigrateRecord{Kind: MigDemote, LockID: lockID}
	return r.Header()
}

// MigrateBegin opens a state stream for lockID; baseNs is the exporter's
// clock at export time, used to rebase lease expiries on import.
func MigrateBegin(lockID uint32, baseNs int64) Header {
	r := MigrateRecord{Kind: MigBegin, LockID: lockID, BaseNs: baseNs}
	return r.Header()
}

// MigrateRegionRec declares the [left, right) queue region for one bank.
func MigrateRegionRec(lockID uint32, bank uint8, left, right uint32) Header {
	r := MigrateRecord{Kind: MigRegion, LockID: lockID, Bank: bank, Left: left, Right: right}
	return r.Header()
}

// MigrateEntry wraps one queued request. entry must be acquire-shaped (the
// header as the client sent it, flags normalized to at most FlagOneRTT).
func MigrateEntry(entry *Header, granted bool) Header {
	r := MigrateRecord{Kind: MigEntry, LockID: entry.LockID, Entry: *entry, Granted: granted}
	return r.Header()
}

// MigrateCommit closes the stream; count is the number of entry records.
func MigrateCommit(lockID uint32, count uint32) Header {
	r := MigrateRecord{Kind: MigCommit, LockID: lockID, Count: count}
	return r.Header()
}

// ParseMigrate validates and decodes an OpMigrate header. Accepted records
// re-encode to an identical header via MigrateRecord.Header.
func ParseMigrate(h *Header) (MigrateRecord, error) {
	var r MigrateRecord
	if h.Op != OpMigrate {
		return r, fmt.Errorf("%w: %s", ErrNotMigrate, h.Op)
	}
	kind := MigrateKind((h.Flags & migKindBits) >> migKindShift)
	if _, ok := migKindNames[kind]; !ok {
		return r, fmt.Errorf("%w: %d", ErrMigrateKind, kind)
	}
	r.Kind = kind
	r.LockID = h.LockID
	low := h.Flags &^ (migKindBits | FlagMigGranted)

	if kind == MigEntry {
		if low&^FlagOneRTT != 0 {
			return r, fmt.Errorf("%w: entry flags %08b", ErrMigrateFlags, h.Flags)
		}
		if h.TxnID == TxnNone {
			return r, ErrMigrateTxn
		}
		r.Granted = h.Flags&FlagMigGranted != 0
		r.Entry = *h
		r.Entry.Op = OpAcquire
		r.Entry.Flags = low & FlagOneRTT
		return r, nil
	}

	// All other kinds: no low flags, no granted bit, and every field the
	// kind does not carry must be zero (strict parse keeps encode∘parse
	// the identity, which the fuzz target depends on).
	if low != 0 || h.Flags&FlagMigGranted != 0 {
		return r, fmt.Errorf("%w: %s flags %08b", ErrMigrateFlags, kind, h.Flags)
	}
	if h.Mode != Shared || h.TenantID != 0 || h.ClientPort != 0 || h.ClientIP != zeroIPv4 {
		return r, fmt.Errorf("%w: %s", ErrMigrateField, kind)
	}
	switch kind {
	case MigDemote:
		if h.TxnID != 0 || h.Priority != 0 || h.LeaseNs != 0 {
			return r, fmt.Errorf("%w: demote", ErrMigrateField)
		}
	case MigBegin:
		if h.TxnID != 0 || h.Priority != 0 {
			return r, fmt.Errorf("%w: begin", ErrMigrateField)
		}
		r.BaseNs = h.LeaseNs
	case MigRegion:
		if h.LeaseNs != 0 {
			return r, fmt.Errorf("%w: region", ErrMigrateField)
		}
		r.Bank = h.Priority
		r.Left = uint32(h.TxnID >> 32)
		r.Right = uint32(h.TxnID)
		if r.Right <= r.Left {
			return r, fmt.Errorf("%w: bank %d [%d, %d)", ErrMigrateRegion, r.Bank, r.Left, r.Right)
		}
	case MigCommit:
		if h.Priority != 0 || h.LeaseNs != 0 {
			return r, fmt.Errorf("%w: commit", ErrMigrateField)
		}
		if h.TxnID > uint64(^uint32(0)) {
			return r, fmt.Errorf("%w: %d", ErrMigrateCount, h.TxnID)
		}
		r.Count = uint32(h.TxnID)
	}
	return r, nil
}
