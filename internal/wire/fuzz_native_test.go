package wire

import "testing"

// FuzzHeaderDecode is a native fuzz target (run with `go test -fuzz
// FuzzHeaderDecode ./internal/wire/`); in normal `go test` runs it executes
// the seed corpus. The invariant matches TestDecodeRandomBytesNeverPanics:
// no panic on any input, and decode∘encode is the identity on accepted
// inputs.
func FuzzHeaderDecode(f *testing.F) {
	h := sampleHeader()
	f.Add(h.Marshal())
	f.Add(make([]byte, HeaderLen))
	f.Add([]byte{Version, byte(OpAcquire)})
	f.Fuzz(func(t *testing.T, data []byte) {
		var hdr Header
		if err := hdr.DecodeFromBytes(data); err != nil {
			return
		}
		var again Header
		if err := again.DecodeFromBytes(hdr.Marshal()); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again != hdr {
			t.Fatalf("decode/encode not lossless")
		}
	})
}
