package wire

import (
	"errors"
	"net/netip"
	"testing"
)

func sampleEntry(i int) Header {
	return Header{
		Op:         OpAcquire,
		Mode:       Mode(i % 2),
		Flags:      FlagOneRTT * Flags(i%2),
		LockID:     77,
		TxnID:      uint64(9000 + i),
		ClientIP:   netip.AddrFrom4([4]byte{10, 0, 3, byte(i + 1)}),
		TenantID:   uint8(i),
		Priority:   uint8(i % 4),
		ClientPort: uint16(40000 + i),
		LeaseNs:    int64(i) * 5_000_000,
	}
}

// Every record kind must survive encode → wire round trip → parse intact.
func TestMigrateRoundTrip(t *testing.T) {
	entries := []Header{sampleEntry(0), sampleEntry(1), sampleEntry(2)}
	records := []Header{
		MigrateDemote(77),
		MigrateBegin(77, 123_456_789),
		MigrateRegionRec(77, 0, 0, 16),
		MigrateRegionRec(77, 3, 48, 64),
		MigrateEntry(&entries[0], true),
		MigrateEntry(&entries[1], false),
		MigrateEntry(&entries[2], true),
		MigrateCommit(77, 3),
	}
	wantKinds := []MigrateKind{
		MigDemote, MigBegin, MigRegion, MigRegion,
		MigEntry, MigEntry, MigEntry, MigCommit,
	}
	for i, h := range records {
		var onWire Header
		if err := onWire.DecodeFromBytes(h.Marshal()); err != nil {
			t.Fatalf("record %d: wire round trip: %v", i, err)
		}
		if got := MigrateKindOf(&onWire); got != wantKinds[i] {
			t.Fatalf("record %d: kind %v, want %v", i, got, wantKinds[i])
		}
		rec, err := ParseMigrate(&onWire)
		if err != nil {
			t.Fatalf("record %d (%v): ParseMigrate: %v", i, wantKinds[i], err)
		}
		if rec.LockID != 77 {
			t.Fatalf("record %d: lock %d", i, rec.LockID)
		}
		if re := rec.Header(); re != onWire {
			t.Fatalf("record %d: re-encode mismatch:\n %v\n %v", i, &onWire, &re)
		}
	}
}

func TestMigrateFieldPacking(t *testing.T) {
	if rec, err := ParseMigrate(&[]Header{MigrateBegin(5, 42)}[0]); err != nil || rec.BaseNs != 42 {
		t.Fatalf("begin: rec=%+v err=%v", rec, err)
	}
	h := MigrateRegionRec(9, 2, 100, 164)
	rec, err := ParseMigrate(&h)
	if err != nil || rec.Bank != 2 || rec.Left != 100 || rec.Right != 164 {
		t.Fatalf("region: rec=%+v err=%v", rec, err)
	}
	h = MigrateCommit(9, 7)
	if rec, err = ParseMigrate(&h); err != nil || rec.Count != 7 {
		t.Fatalf("commit: rec=%+v err=%v", rec, err)
	}
	e := sampleEntry(1)
	h = MigrateEntry(&e, true)
	rec, err = ParseMigrate(&h)
	if err != nil || !rec.Granted {
		t.Fatalf("entry: rec=%+v err=%v", rec, err)
	}
	// The parsed entry is acquire-shaped and byte-identical to the original
	// request modulo the stripped migrate bits.
	if rec.Entry != e {
		t.Fatalf("entry not recovered:\n %v\n %v", &e, &rec.Entry)
	}
}

// TestMigrateParseMalformed is the malformed-record table: every validation
// branch of ParseMigrate must fire with its sentinel error.
func TestMigrateParseMalformed(t *testing.T) {
	entry := sampleEntry(0)
	mut := func(h Header, f func(*Header)) Header { f(&h); return h }
	cases := []struct {
		name string
		h    Header
		want error
	}{
		{"not-migrate", Header{Op: OpAcquire}, ErrNotMigrate},
		{"kind-zero", Header{Op: OpMigrate, ClientIP: zeroIPv4}, ErrMigrateKind},
		{"kind-over-max", Header{Op: OpMigrate, Flags: 7 << migKindShift, ClientIP: zeroIPv4}, ErrMigrateKind},
		{"demote-low-flags", mut(MigrateDemote(1), func(h *Header) { h.Flags |= FlagBounced }), ErrMigrateFlags},
		{"demote-granted-bit", mut(MigrateDemote(1), func(h *Header) { h.Flags |= FlagMigGranted }), ErrMigrateFlags},
		{"demote-stray-txn", mut(MigrateDemote(1), func(h *Header) { h.TxnID = 9 }), ErrMigrateField},
		{"begin-stray-priority", mut(MigrateBegin(1, 5), func(h *Header) { h.Priority = 1 }), ErrMigrateField},
		{"begin-stray-tenant", mut(MigrateBegin(1, 5), func(h *Header) { h.TenantID = 3 }), ErrMigrateField},
		{"begin-stray-addr", mut(MigrateBegin(1, 5), func(h *Header) {
			h.ClientIP = netip.AddrFrom4([4]byte{1, 2, 3, 4})
		}), ErrMigrateField},
		{"region-empty", mut(MigrateRegionRec(1, 0, 4, 8), func(h *Header) { h.TxnID = 4<<32 | 4 }), ErrMigrateRegion},
		{"region-inverted", mut(MigrateRegionRec(1, 0, 4, 8), func(h *Header) { h.TxnID = 8<<32 | 4 }), ErrMigrateRegion},
		{"region-stray-lease", mut(MigrateRegionRec(1, 0, 4, 8), func(h *Header) { h.LeaseNs = 1 }), ErrMigrateField},
		{"entry-txn-none", mut(MigrateEntry(&entry, false), func(h *Header) { h.TxnID = TxnNone }), ErrMigrateTxn},
		{"entry-overflow-flag", mut(MigrateEntry(&entry, false), func(h *Header) { h.Flags |= FlagOverflow }), ErrMigrateFlags},
		{"entry-bounced-flag", mut(MigrateEntry(&entry, true), func(h *Header) { h.Flags |= FlagBounced }), ErrMigrateFlags},
		{"commit-count-wide", mut(MigrateCommit(1, 1), func(h *Header) { h.TxnID = 1 << 32 }), ErrMigrateCount},
		{"commit-stray-mode", mut(MigrateCommit(1, 1), func(h *Header) { h.Mode = Exclusive }), ErrMigrateField},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseMigrate(&tc.h); err == nil {
				t.Fatalf("malformed record accepted: %v", &tc.h)
			} else if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// Migrate records must coexist with batch frames: a full state stream packs
// into one frame and decodes in order.
func TestMigrateRecordsRideBatchFrames(t *testing.T) {
	e := sampleEntry(2)
	stream := []Header{
		MigrateBegin(7, 1000),
		MigrateRegionRec(7, 0, 0, 8),
		MigrateEntry(&e, true),
		MigrateCommit(7, 1),
	}
	var w BatchWriter
	w.Reset(nil)
	for i := range stream {
		if !w.Append(&stream[i]) {
			t.Fatalf("Append %d refused", i)
		}
	}
	var r BatchReader
	if err := r.Reset(w.Frame()); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var h Header
	for i := range stream {
		if ok, err := r.Next(&h); !ok || err != nil {
			t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
		}
		if h != stream[i] {
			t.Fatalf("record %d mismatch", i)
		}
		if _, err := ParseMigrate(&h); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
}

// FuzzMigrateDecode mirrors FuzzBatchDecode for OpMigrate records: arbitrary
// bytes must never panic, and every accepted record must re-encode to the
// identical wire header (parse∘encode is the identity). The seed corpus
// lives in testdata/fuzz/FuzzMigrateDecode (regenerated by `go generate
// ./internal/wire`: one record per kind plus malformed variants).
func FuzzMigrateDecode(f *testing.F) {
	entry := sampleEntry(0)
	for _, h := range []Header{
		MigrateDemote(1),
		MigrateBegin(1, 99),
		MigrateRegionRec(1, 1, 8, 24),
		MigrateEntry(&entry, true),
		MigrateEntry(&entry, false),
		MigrateCommit(1, 2),
	} {
		f.Add(h.Marshal())
	}
	bad := MigrateDemote(1)
	bad.TxnID = 5
	f.Add(bad.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		if err := h.DecodeFromBytes(data); err != nil {
			return
		}
		rec, err := ParseMigrate(&h)
		if err != nil {
			if h.Op == OpMigrate && errors.Is(err, ErrNotMigrate) {
				t.Fatalf("ErrNotMigrate on an OpMigrate header: %v", &h)
			}
			return
		}
		re := rec.Header()
		if re != h {
			t.Fatalf("parse/encode not identity:\n %v\n %v", &h, &re)
		}
		rec2, err := ParseMigrate(&re)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if rec2 != rec {
			t.Fatalf("records diverge:\n %+v\n %+v", rec, rec2)
		}
	})
}
