package wire

import (
	"net/netip"
	"testing"
)

func TestChainRoundTrip(t *testing.T) {
	cases := []ChainMsg{
		{Kind: ChainOp, Origin: OriginClient, Epoch: 3, Seq: 41, Hdr: Header{
			Op: OpAcquire, Mode: Exclusive, LockID: 7, TxnID: 99,
			ClientIP: netip.AddrFrom4([4]byte{10, 99, 0, 4}), ClientPort: 4101,
			TenantID: 2, Priority: 1, LeaseNs: 12345,
		}},
		{Kind: ChainOp, Origin: OriginCtrl, Epoch: 1, Seq: 1, Hdr: Header{
			Op: OpRelease, LockID: 1, TxnID: 8,
			ClientIP: netip.AddrFrom4([4]byte{10, 99, 0, 9}),
		}},
		{Kind: ChainRelay, Origin: OriginServer, Epoch: 9, Hdr: Header{
			Op: OpGrant, LockID: 3, TxnID: 5,
			ClientIP: netip.AddrFrom4([4]byte{10, 99, 0, 1}), ClientPort: 1,
		}},
		{Kind: ChainAck, Epoch: 4, Seq: 1 << 40},
	}
	for _, want := range cases {
		data := want.AppendTo(nil)
		if want.Kind == ChainAck {
			if len(data) != ChainHdrLen {
				t.Fatalf("ack frame len = %d, want %d", len(data), ChainHdrLen)
			}
		} else if len(data) != ChainOpLen {
			t.Fatalf("op frame len = %d, want %d", len(data), ChainOpLen)
		}
		if !IsChain(data) {
			t.Fatalf("IsChain = false for %s", want.String())
		}
		if IsBatch(data) || data[0] == Version {
			t.Fatalf("chain frame collides with batch/header classification")
		}
		var got ChainMsg
		if err := got.DecodeFromBytes(data); err != nil {
			t.Fatalf("decode %s: %v", want.String(), err)
		}
		if got != want {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
		if got.String() == "" {
			t.Fatalf("empty String()")
		}
	}
}

func TestChainDecodeErrors(t *testing.T) {
	var m ChainMsg
	if err := m.DecodeFromBytes([]byte{Version, 1, 2}); err != ErrNotChain {
		t.Fatalf("non-chain data: err = %v, want ErrNotChain", err)
	}
	if err := m.DecodeFromBytes([]byte{ChainMagic, Version, byte(ChainOp)}); err == nil {
		t.Fatalf("truncated prefix: expected error")
	}
	full := (&ChainMsg{Kind: ChainOp, Origin: OriginClient, Epoch: 1, Seq: 1,
		Hdr: Header{Op: OpAcquire, ClientIP: netip.AddrFrom4([4]byte{10, 0, 0, 1})}}).AppendTo(nil)
	bad := append([]byte(nil), full...)
	bad[1] = 99
	if err := m.DecodeFromBytes(bad); err == nil {
		t.Fatalf("bad version: expected error")
	}
	bad = append(bad[:0], full...)
	bad[2] = 77
	if err := m.DecodeFromBytes(bad); err == nil {
		t.Fatalf("bad kind: expected error")
	}
	if err := m.DecodeFromBytes(full[:ChainHdrLen+4]); err == nil {
		t.Fatalf("truncated header: expected error")
	}
}

func TestChainAllocFree(t *testing.T) {
	msg := ChainMsg{Kind: ChainOp, Origin: OriginClient, Epoch: 2, Seq: 7,
		Hdr: Header{Op: OpAcquire, LockID: 1, TxnID: 2, ClientIP: netip.AddrFrom4([4]byte{10, 0, 0, 1})}}
	buf := make([]byte, 0, ChainOpLen)
	var out ChainMsg
	allocs := testing.AllocsPerRun(200, func() {
		buf = msg.AppendTo(buf[:0])
		if err := out.DecodeFromBytes(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("chain encode/decode allocates %.1f/op, want 0", allocs)
	}
}
