package wire

import (
	"encoding/binary"
	"fmt"
)

// Multi-rack shard map. A fabric of racks partitions the lock space into
// a fixed number of shards; the map assigns every shard to exactly one
// rack and is versioned by a fabric-wide epoch. The fabric controller owns
// the epoch and pushes the map to every rack chain-wide; a rack answers a
// request for a shard it does not own with an OpWrongRack bounce plus the
// full serialized map, so clients converge on the newest epoch without a
// side channel — the authoritative copy lives in the network, NetChain
// style.
//
// ShardMap frames are their own datagram format, disambiguated from bare
// headers (first byte = Version), batch frames (BatchMagic), and chain
// frames (ChainMagic) by ShardMapMagic.
const (
	// ShardMapMagic is the first byte of every shard-map frame. Disjoint
	// from Version (1), BatchMagic (0xB5), and ChainMagic (0xC7).
	ShardMapMagic = 0xA6
	// ShardMapHdrLen is the fixed preamble before the per-shard
	// assignment bytes.
	ShardMapHdrLen = 16
	// MaxShards bounds the shard count so an encoded map always fits one
	// datagram.
	MaxShards = 1024
	// MaxRacks bounds the rack count: assignments are one byte per shard.
	MaxRacks = 256
)

// ShardMap is the epoch-versioned partition of the lock space across a
// fabric of racks: Assign[shard] names the rack that owns every lock whose
// ShardOf maps to that shard.
type ShardMap struct {
	// Epoch versions the assignment; receivers adopt strictly newer maps
	// and ignore older ones.
	Epoch uint64
	// Racks is the number of racks in the fabric; every assignment byte
	// is < Racks.
	Racks int
	// Assign maps shard index to owning rack.
	Assign []uint8
}

// NewShardMap builds an epoch-0 map of shards striped round-robin across
// racks — the canonical consistent-hash starting assignment.
func NewShardMap(racks, shards int) (*ShardMap, error) {
	if racks < 1 || racks > MaxRacks {
		return nil, fmt.Errorf("wire: shard map rack count %d out of range [1,%d]", racks, MaxRacks)
	}
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("wire: shard map shard count %d out of range [1,%d]", shards, MaxShards)
	}
	m := &ShardMap{Racks: racks, Assign: make([]uint8, shards)}
	for s := range m.Assign {
		m.Assign[s] = uint8(s % racks)
	}
	return m, nil
}

// Shards returns the shard count.
func (m *ShardMap) Shards() int { return len(m.Assign) }

// ShardOf maps a lock ID to its shard. Fibonacci hashing (the same spread
// RSSCore uses for server partitioning) keeps adjacent lock IDs on
// different shards, so hot ranges stripe across the fabric.
func (m *ShardMap) ShardOf(lockID uint32) uint32 {
	return uint32((uint64(lockID) * 11400714819323198485 >> 32) % uint64(len(m.Assign)))
}

// RackOf maps a lock ID to the rack owning its shard.
func (m *ShardMap) RackOf(lockID uint32) int {
	return int(m.Assign[m.ShardOf(lockID)])
}

// RackAt returns the rack owning a shard.
func (m *ShardMap) RackAt(shard uint32) int { return int(m.Assign[shard]) }

// Clone returns a deep copy (maps are shared read-mostly; mutations go
// through a copy + epoch bump).
func (m *ShardMap) Clone() *ShardMap {
	return &ShardMap{Epoch: m.Epoch, Racks: m.Racks, Assign: append([]uint8(nil), m.Assign...)}
}

// IsShardMap reports whether data begins with a shard-map frame magic.
func IsShardMap(data []byte) bool {
	return len(data) > 0 && data[0] == ShardMapMagic
}

// AppendTo appends the frame encoding of m to dst and returns the extended
// slice. Layout (big-endian):
//
//	0  magic(1)=0xA6  version(1)=1  racks(2)
//	4  shards(2)  reserved(2)=0
//	8  epoch(8)
//	16 assign[shards] — one rack byte per shard
func (m *ShardMap) AppendTo(dst []byte) []byte {
	var b [ShardMapHdrLen]byte
	b[0] = ShardMapMagic
	b[1] = Version
	binary.BigEndian.PutUint16(b[2:4], uint16(m.Racks))
	binary.BigEndian.PutUint16(b[4:6], uint16(len(m.Assign)))
	binary.BigEndian.PutUint64(b[8:16], m.Epoch)
	dst = append(dst, b[:]...)
	return append(dst, m.Assign...)
}

// Marshal returns a freshly allocated encoding of m.
func (m *ShardMap) Marshal() []byte {
	return m.AppendTo(make([]byte, 0, ShardMapHdrLen+len(m.Assign)))
}

// Errors returned by ShardMap.DecodeFromBytes.
var (
	ErrNotShardMap = fmt.Errorf("wire: not a shard-map frame")
	ErrBadShardMap = fmt.Errorf("wire: malformed shard-map frame")
)

// DecodeFromBytes parses a shard-map frame into m, overwriting all fields.
// The parse is strict — every reserved byte must be zero, the frame length
// must match the shard count exactly, and every assignment must name a
// valid rack — so decode∘encode is the identity on accepted frames.
func (m *ShardMap) DecodeFromBytes(data []byte) error {
	if !IsShardMap(data) {
		return ErrNotShardMap
	}
	if len(data) < ShardMapHdrLen {
		return fmt.Errorf("%w: %d bytes", ErrBadShardMap, len(data))
	}
	if data[1] != Version {
		return fmt.Errorf("%w: version %d", ErrBadShardMap, data[1])
	}
	racks := int(binary.BigEndian.Uint16(data[2:4]))
	shards := int(binary.BigEndian.Uint16(data[4:6]))
	if racks < 1 || racks > MaxRacks {
		return fmt.Errorf("%w: rack count %d", ErrBadShardMap, racks)
	}
	if shards < 1 || shards > MaxShards {
		return fmt.Errorf("%w: shard count %d", ErrBadShardMap, shards)
	}
	if data[6] != 0 || data[7] != 0 {
		return fmt.Errorf("%w: nonzero reserved bytes", ErrBadShardMap)
	}
	if len(data) != ShardMapHdrLen+shards {
		return fmt.Errorf("%w: %d bytes for %d shards", ErrBadShardMap, len(data), shards)
	}
	assign := data[ShardMapHdrLen:]
	for s, r := range assign {
		if int(r) >= racks {
			return fmt.Errorf("%w: shard %d assigned to rack %d of %d", ErrBadShardMap, s, r, racks)
		}
	}
	m.Epoch = binary.BigEndian.Uint64(data[8:16])
	m.Racks = racks
	m.Assign = append(m.Assign[:0], assign...)
	return nil
}
