package wire

import (
	"math/rand"
	"testing"

	"netlock/internal/check"
)

// Randomized decode robustness: arbitrary byte buffers must never panic,
// and every successfully decoded header must re-encode losslessly (decode
// is a retraction of encode). Replay a failure with -netlock.seed=N.
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	seed := int64(99)
	if s, ok := check.ReplaySeed(); ok {
		seed = s
	}
	rng := rand.New(rand.NewSource(seed))
	var h Header
	decoded := 0
	for i := 0; i < 200_000; i++ {
		n := rng.Intn(48)
		buf := make([]byte, n)
		rng.Read(buf)
		if err := h.DecodeFromBytes(buf); err != nil {
			continue
		}
		decoded++
		var h2 Header
		if err := h2.DecodeFromBytes(h.Marshal()); err != nil {
			t.Fatalf("re-decode failed: %v (reproduce with %s)", err, check.ReplayArgs(seed))
		}
		if h2 != h {
			t.Fatalf("decode/encode not lossless:\n %v\n %v\n(reproduce with %s)", &h, &h2, check.ReplayArgs(seed))
		}
	}
	if decoded == 0 {
		t.Skip("no random buffer decoded (expected occasionally; version+op must match)")
	}
}

// Truncation at every length must error cleanly, never panic.
func TestDecodeAllTruncations(t *testing.T) {
	h := sampleHeader()
	buf := h.Marshal()
	var out Header
	for n := 0; n < len(buf); n++ {
		if err := out.DecodeFromBytes(buf[:n]); err == nil {
			t.Fatalf("truncated buffer of %d bytes decoded successfully", n)
		}
	}
	if err := out.DecodeFromBytes(buf); err != nil {
		t.Fatalf("full buffer failed: %v", err)
	}
}
