package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Batch frames pack several NetLock operations into one UDP datagram so the
// client, switch, and lock servers amortize a syscall (and, on the paper's
// hardware, a PCIe doorbell) over many lock ops — the batching discipline
// behind the prototype's 18 MRPS-per-server client (§5, §6.1).
//
// Layout (big-endian):
//
//	0  magic(1)=0xB5  reserved(1)=0
//	2  count(2)
//	4  count records, each: length(2) + payload(length)
//
// A record payload is one NetLock header encoding (HeaderLen bytes today);
// the length prefix leaves room for longer per-op records in future
// versions, and decoders ignore trailing record bytes beyond the header.
// The magic byte is disjoint from header Version, so receivers classify a
// datagram by its first byte: Version → a bare single-op header (the legacy
// one-op-per-packet format, still accepted on every ingress path), magic →
// a batch frame.
//
// Like the header codec, the batch codec is zero-alloc by construction:
// BatchWriter appends into a caller buffer and BatchReader decodes into a
// reusable Header.

const (
	// BatchMagic is the first byte of every batch frame. It must stay
	// disjoint from any header Version so the two formats self-classify.
	BatchMagic = 0xB5

	// batchHdrLen is the fixed batch frame preamble length.
	batchHdrLen = 4

	// recHdrLen is the per-record length-prefix size.
	recHdrLen = 2

	// MaxDatagram is the largest frame the transport ever puts in one
	// datagram: a conservative Ethernet-MTU payload (1500 minus IP and
	// UDP headers, rounded down) that avoids IP fragmentation.
	MaxDatagram = 1400

	// MaxBatchOps is the most operations one batch frame can carry.
	MaxBatchOps = (MaxDatagram - batchHdrLen) / (recHdrLen + HeaderLen) // 41
)

// Errors returned by BatchReader.
var (
	ErrNotBatch       = errors.New("wire: not a batch frame")
	ErrBatchShort     = errors.New("wire: batch frame shorter than preamble")
	ErrBatchReserved  = errors.New("wire: nonzero reserved byte in batch frame")
	ErrBatchEmpty     = errors.New("wire: batch frame with zero ops")
	ErrBatchCount     = errors.New("wire: batch op count exceeds MaxBatchOps")
	ErrBatchOversize  = errors.New("wire: batch frame exceeds MaxDatagram")
	ErrBatchTruncated = errors.New("wire: batch record extends past frame")
	ErrBatchRecord    = errors.New("wire: batch record shorter than a header")
	ErrBatchTrailing  = errors.New("wire: trailing bytes after last batch record")
)

// IsBatch reports whether data starts like a batch frame. It does not
// validate the frame; use BatchReader.Reset for that.
func IsBatch(data []byte) bool {
	return len(data) > 0 && data[0] == BatchMagic
}

// BatchWriter builds one batch frame into a reusable buffer. The zero value
// is ready after Reset:
//
//	var w BatchWriter
//	w.Reset(buf[:0])            // buf retains its capacity across frames
//	for w.Append(&h) { ... }
//	conn.Write(w.Frame())
type BatchWriter struct {
	buf   []byte
	count int
}

// Reset starts a new frame in buf (normally a previous frame's storage
// sliced to zero length, so steady-state encoding never allocates).
func (w *BatchWriter) Reset(buf []byte) {
	w.buf = append(buf[:0], BatchMagic, 0, 0, 0)
	w.count = 0
}

// Append adds one operation to the frame. It returns false — leaving the
// frame unchanged — when the frame is full (MaxBatchOps reached or the
// datagram budget exhausted); the caller flushes and starts a new frame.
func (w *BatchWriter) Append(h *Header) bool {
	if w.count >= MaxBatchOps || len(w.buf)+recHdrLen+HeaderLen > MaxDatagram {
		return false
	}
	w.buf = binary.BigEndian.AppendUint16(w.buf, HeaderLen)
	w.buf = h.AppendTo(w.buf)
	w.count++
	return true
}

// Count returns the number of ops appended since the last Reset.
func (w *BatchWriter) Count() int { return w.count }

// Frame finalizes and returns the encoded frame, or nil if no ops were
// appended. The returned slice aliases the writer's buffer and is valid
// until the next Reset.
func (w *BatchWriter) Frame() []byte {
	if w.count == 0 {
		return nil
	}
	binary.BigEndian.PutUint16(w.buf[2:4], uint16(w.count))
	return w.buf
}

// BatchReader iterates the operations of one batch frame:
//
//	var r BatchReader
//	if err := r.Reset(data); err != nil { ... }
//	var h Header
//	for {
//		ok, err := r.Next(&h)
//		if err != nil { ... }
//		if !ok { break }
//		process(&h)
//	}
type BatchReader struct {
	data []byte
	off  int
	left int
}

// Reset validates the frame preamble and prepares iteration. It does not
// retain data beyond the iteration.
func (r *BatchReader) Reset(data []byte) error {
	r.data, r.off, r.left = nil, 0, 0
	if len(data) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", ErrBatchOversize, len(data))
	}
	if len(data) < batchHdrLen {
		return fmt.Errorf("%w: %d bytes", ErrBatchShort, len(data))
	}
	if data[0] != BatchMagic {
		return fmt.Errorf("%w: first byte %#x", ErrNotBatch, data[0])
	}
	if data[1] != 0 {
		return fmt.Errorf("%w: %#x", ErrBatchReserved, data[1])
	}
	n := int(binary.BigEndian.Uint16(data[2:4]))
	if n == 0 {
		return ErrBatchEmpty
	}
	if n > MaxBatchOps {
		return fmt.Errorf("%w: %d", ErrBatchCount, n)
	}
	r.data, r.off, r.left = data, batchHdrLen, n
	return nil
}

// Next decodes the next operation into h. It returns (false, nil) at a
// clean end of frame and (false, err) on a malformed record, truncation, or
// trailing garbage after the last record.
func (r *BatchReader) Next(h *Header) (bool, error) {
	if r.left == 0 {
		if r.off != len(r.data) {
			return false, fmt.Errorf("%w: %d bytes", ErrBatchTrailing, len(r.data)-r.off)
		}
		return false, nil
	}
	if r.off+recHdrLen > len(r.data) {
		return false, fmt.Errorf("%w: record header at %d", ErrBatchTruncated, r.off)
	}
	n := int(binary.BigEndian.Uint16(r.data[r.off : r.off+recHdrLen]))
	r.off += recHdrLen
	if n < HeaderLen {
		return false, fmt.Errorf("%w: %d bytes", ErrBatchRecord, n)
	}
	if r.off+n > len(r.data) {
		return false, fmt.Errorf("%w: record of %d bytes at %d", ErrBatchTruncated, n, r.off)
	}
	if err := h.DecodeFromBytes(r.data[r.off : r.off+n]); err != nil {
		return false, err
	}
	r.off += n
	r.left--
	return true, nil
}

// Remaining returns the number of records not yet read.
func (r *BatchReader) Remaining() int { return r.left }
