package rebalance

import (
	"fmt"
	"testing"

	"netlock/internal/memalloc"
)

// fakeMover is a scripted placement surface: windows are queued demands,
// moves mutate an in-memory placement map, and every move is journaled.
type fakeMover struct {
	windows  [][]memalloc.Demand
	placed   map[uint32]uint64
	capacity uint64
	journal  []string
	failNext error
}

func newFakeMover(capacity uint64) *fakeMover {
	return &fakeMover{placed: make(map[uint32]uint64), capacity: capacity}
}

func (f *fakeMover) push(w ...[]memalloc.Demand) { f.windows = append(f.windows, w...) }

func (f *fakeMover) MeasureDemands(windowSec float64) []memalloc.Demand {
	if len(f.windows) == 0 {
		return nil
	}
	w := f.windows[0]
	f.windows = f.windows[1:]
	return w
}

func (f *fakeMover) Placement() map[uint32]uint64 {
	out := make(map[uint32]uint64, len(f.placed))
	for k, v := range f.placed {
		out[k] = v
	}
	return out
}

func (f *fakeMover) SwitchCapacity() uint64 { return f.capacity }

func (f *fakeMover) MoveToSwitch(lockID uint32, slots uint64) (Report, error) {
	if err := f.failNext; err != nil {
		f.failNext = nil
		return Report{}, err
	}
	if _, ok := f.placed[lockID]; ok {
		return Report{}, fmt.Errorf("lock %d already resident", lockID)
	}
	f.placed[lockID] = slots
	f.journal = append(f.journal, fmt.Sprintf("promote %d/%d", lockID, slots))
	return Report{LockID: lockID, ToSwitch: true}, nil
}

func (f *fakeMover) MoveToServer(lockID uint32) (Report, error) {
	if err := f.failNext; err != nil {
		f.failNext = nil
		return Report{}, err
	}
	if _, ok := f.placed[lockID]; !ok {
		return Report{}, fmt.Errorf("lock %d not resident", lockID)
	}
	delete(f.placed, lockID)
	f.journal = append(f.journal, fmt.Sprintf("demote %d", lockID))
	return Report{LockID: lockID, ToSwitch: false}, nil
}

func window(ds ...memalloc.Demand) []memalloc.Demand { return ds }

func hot(id uint32) memalloc.Demand  { return memalloc.Demand{LockID: id, Rate: 1000, Contention: 4} }
func cold(id uint32) memalloc.Demand { return memalloc.Demand{LockID: id, Rate: 1, Contention: 1} }

// TestLoopPromotesHotSet: sustained hot locks are promoted; cold locks
// stay on the servers.
func TestLoopPromotesHotSet(t *testing.T) {
	fm := newFakeMover(100)
	fm.push(window(hot(1), hot(2), cold(7)), window(hot(1), hot(2), cold(7)))
	l := New(fm, Config{})
	l.Tick()
	l.Tick()
	if _, ok := fm.placed[1]; !ok {
		t.Fatalf("hot lock 1 not promoted; placement %v", fm.placed)
	}
	if _, ok := fm.placed[2]; !ok {
		t.Fatalf("hot lock 2 not promoted; placement %v", fm.placed)
	}
	if _, ok := fm.placed[7]; ok {
		t.Fatal("cold lock 7 promoted")
	}
	st := l.Stats()
	if st.Promotions < 2 || st.Demotions != 0 || st.Failures != 0 {
		t.Fatalf("unexpected stats %v", st)
	}
}

// TestLoopRotatesHotSet: when the hot set rotates, the cooled locks are
// demoted (freeing their slots) and the newly hot ones promoted — within
// the per-tick budget, over as many ticks as that takes.
func TestLoopRotatesHotSet(t *testing.T) {
	fm := newFakeMover(30)
	// Phase 1: locks 1-3 hot (8 slots each under the MinSlots floor; 27
	// usable slots fit all three).
	for i := 0; i < 4; i++ {
		fm.push(window(hot(1), hot(2), hot(3)))
	}
	// Phase 2: rotation — locks 11-13 hot, old set silent. The old set
	// must decay out of the demand model (becoming unmeasured residents)
	// before its slots free up for the new set.
	for i := 0; i < 8; i++ {
		fm.push(window(hot(11), hot(12), hot(13)))
	}
	l := New(fm, Config{Alpha: 0.7})
	for i := 0; i < 14; i++ {
		l.Tick()
	}
	for id := uint32(1); id <= 3; id++ {
		if _, ok := fm.placed[id]; ok {
			t.Errorf("cooled lock %d still resident after rotation; journal %v", id, fm.journal)
		}
	}
	promoted := 0
	for id := uint32(11); id <= 13; id++ {
		if _, ok := fm.placed[id]; ok {
			promoted++
		}
	}
	if promoted == 0 {
		t.Fatalf("no rotated-in lock promoted; placement %v journal %v", fm.placed, fm.journal)
	}
	st := l.Stats()
	if st.Demotions == 0 {
		t.Fatalf("rotation produced no demotions: %v", st)
	}
}

// TestLoopBudget: a tick never executes more moves than the budget.
func TestLoopBudget(t *testing.T) {
	fm := newFakeMover(1000)
	var w []memalloc.Demand
	for id := uint32(1); id <= 20; id++ {
		w = append(w, hot(id))
	}
	fm.push(w)
	l := New(fm, Config{Budget: 3})
	if n := l.Tick(); n > 3 {
		t.Fatalf("tick executed %d moves with budget 3", n)
	}
	if len(fm.journal) > 3 {
		t.Fatalf("mover saw %d moves with budget 3: %v", len(fm.journal), fm.journal)
	}
}

// TestLoopSmoothingResistsFlap: under heavy smoothing, a lock hot for a
// single window does not displace a steadily hot resident — its smoothed
// rate never approaches the resident's.
func TestLoopSmoothingResistsFlap(t *testing.T) {
	fm := newFakeMover(10) // usable 9: fits exactly one 8-slot lock
	fm.placed[9] = 8
	fm.push(
		window(hot(9), cold(5)),
		window(hot(9), hot(5)), // the flap
		window(hot(9), cold(5)),
		window(hot(9), cold(5)),
	)
	l := New(fm, Config{Alpha: 0.2, MinSlots: 8})
	for i := 0; i < 4; i++ {
		l.Tick()
	}
	if got, ok := fm.placed[9]; !ok || got != 8 {
		t.Fatalf("steady resident 9 displaced by a one-window flap; placement %v journal %v",
			fm.placed, fm.journal)
	}
}

// TestLoopMoveFailureIsRetried: a failed move is counted, does not abort
// the tick, and the placement diff re-plans it next tick.
func TestLoopMoveFailureIsRetried(t *testing.T) {
	fm := newFakeMover(100)
	fm.push(window(hot(4)), window(hot(4)))
	var calls int
	l := New(fm, Config{OnMove: func(r Report, err error) { calls++ }})
	fm.failNext = fmt.Errorf("chain mid-failover")
	if n := l.Tick(); n != 0 {
		t.Fatalf("failed move reported as executed (%d)", n)
	}
	if st := l.Stats(); st.Failures != 1 {
		t.Fatalf("failure not counted: %v", st)
	}
	l.Tick()
	if _, ok := fm.placed[4]; !ok {
		t.Fatalf("move not retried after failure; journal %v", fm.journal)
	}
	if calls != 2 {
		t.Fatalf("OnMove saw %d calls, want 2", calls)
	}
}

// TestPlannerDeterministic: identical window sequences produce identical
// plans, including under score ties.
func TestPlannerDeterministic(t *testing.T) {
	mkPlan := func() []memalloc.Move {
		p := NewPlanner(Config{})
		p.Observe(window(hot(3), hot(1), hot(2)))
		p.Observe(window(hot(2), hot(3), hot(1)))
		return p.Plan(map[uint32]uint64{}, 20, 8)
	}
	a, b := mkPlan(), mkPlan()
	if len(a) != len(b) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no moves planned for a hot set on an empty switch")
	}
}

// TestPlannerDecayDropsSilentLocks: a lock that stops appearing decays
// out of the demand model entirely.
func TestPlannerDecayDropsSilentLocks(t *testing.T) {
	p := NewPlanner(Config{Alpha: 0.5})
	p.Observe(window(hot(6)))
	for i := 0; i < 40; i++ {
		p.Observe(nil)
	}
	for _, d := range p.Demands() {
		if d.LockID == 6 && d.Rate > 1e-3 {
			t.Fatalf("silent lock still carries rate %f", d.Rate)
		}
	}
}

// TestSlotHeadroom: promoted locks are granted spare slots above measured
// peak contention, so demand growth is absorbed in the switch instead of
// detouring through the server overflow path (admission starvation).
func TestSlotHeadroom(t *testing.T) {
	p := NewPlanner(Config{Alpha: 1, MinSlots: 1})
	p.Observe(window(memalloc.Demand{LockID: 3, Rate: 1000, Contention: 8}))
	ds := p.Demands()
	if len(ds) != 1 || ds[0].Contention != 10 { // ceil(8 * 1.25)
		t.Fatalf("demands = %+v, want lock 3 at 10 slots (measured 8 + default headroom)", ds)
	}

	// Any non-zero headroom grants at least one spare slot.
	p = NewPlanner(Config{Alpha: 1, MinSlots: 1, SlotHeadroom: 0.01})
	p.Observe(window(memalloc.Demand{LockID: 3, Rate: 1000, Contention: 2}))
	if ds := p.Demands(); ds[0].Contention != 3 {
		t.Fatalf("contention = %d, want 3 (2 + one spare slot)", ds[0].Contention)
	}

	// Negative disables; the MinSlots floor still applies after padding.
	p = NewPlanner(Config{Alpha: 1, MinSlots: 8, SlotHeadroom: -1})
	p.Observe(window(memalloc.Demand{LockID: 3, Rate: 1000, Contention: 2}))
	if ds := p.Demands(); ds[0].Contention != 8 {
		t.Fatalf("contention = %d, want the MinSlots floor 8", ds[0].Contention)
	}
}
