// Package rebalance is the online lock-placement rebalancer: a control
// loop that watches per-lock demand gauges, smooths them across
// measurement windows, and incrementally promotes hot locks into the
// switch and demotes cooled ones to the lock servers — live, without
// stopping traffic, a bounded number of moves per round.
//
// The paper's allocator (Alg. 3, §4.4) solves placement once, offline,
// for a known workload. This loop closes it: the same fractional-knapsack
// objective re-solved each tick against the drifting measured demand,
// with memalloc.Resolve diffing the target against the current placement
// so only the locks whose residency should change move. The moves
// themselves are the live migrations of ctrlplane (UDP plane) or
// core.Manager (embedded plane), reached through the Mover interface.
package rebalance

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"netlock/internal/memalloc"
)

// Report describes one completed move in the shape the scenario oracle
// consumes: which requests crossed the residency boundary holding the
// lock and which waiting, in queue order.
type Report struct {
	LockID   uint32
	ToSwitch bool
	Granted  []uint64
	Waiting  []uint64
}

// Mover is the placement-control surface the loop drives. Both rack
// planes implement it: ctrlplane.Controller via live chain migration, and
// the embedded netlock.Store via core.Manager's in-process moves.
type Mover interface {
	// MeasureDemands reads and clears the per-lock load gauges,
	// normalized over windowSec seconds.
	MeasureDemands(windowSec float64) []memalloc.Demand
	// Placement returns each switch-resident lock's total slot count.
	Placement() map[uint32]uint64
	// SwitchCapacity returns the switch's total queue-slot capacity.
	SwitchCapacity() uint64
	// MoveToSwitch live-promotes a server-owned lock with the given total
	// slot count; MoveToServer live-demotes a resident lock.
	MoveToSwitch(lockID uint32, slots uint64) (Report, error)
	MoveToServer(lockID uint32) (Report, error)
}

// Config tunes the loop.
type Config struct {
	// Interval is the tick period for Start (default 100ms). Each Tick
	// measures one window and executes at most Budget moves.
	Interval time.Duration
	// Window is the measurement normalization in seconds; 0 derives it
	// from Interval.
	Window float64
	// Budget caps moves per tick (default 4). A promotion and the
	// demotions making room for it count separately, so a small budget
	// spreads a placement flip over several ticks instead of pausing
	// many locks at once.
	Budget int
	// Alpha is the EWMA weight of the newest window (default 0.5, range
	// (0,1]). Lower values smooth harder: a lock must stay hot across
	// windows before it earns promotion, so measurement noise does not
	// churn migrations.
	Alpha float64
	// Headroom is the fraction of switch capacity withheld from the
	// allocator (default 0.1), kept free so promotions have somewhere to
	// land between compactions.
	Headroom float64
	// MinSlots floors a promoted lock's slot grant (default 8).
	MinSlots uint64
	// SlotHeadroom over-provisions every promoted lock's slot grant by
	// this fraction above its smoothed peak contention (default 0.25;
	// negative disables). Sizing a region at exactly the measured peak
	// starves admission: the moment demand ticks above the last window's
	// peak, the saturated switch queue detours every extra acquire through
	// the server's overflow buffer, where it waits on a queue-drained push
	// a busy lock rarely sends. The headroom keeps a margin of free slots
	// so growth is absorbed in the switch until the next window re-sizes.
	SlotHeadroom float64
	// PromoteRate is the minimum smoothed request rate (req/s) for a lock
	// to be considered for switch residency (default 10). The knapsack
	// alone would fill leftover capacity with arbitrarily cold locks —
	// free in the paper's offline model, but here every placement change
	// is a live migration, so a lock must be measurably hot to earn one.
	PromoteRate float64
	// OnMove, when set, observes every attempted move: the report (zero
	// on failure) and the error. Called synchronously from Tick — the
	// scenario oracle validates migrated state here, before traffic
	// reshapes it.
	OnMove func(Report, error)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Interval <= 0 {
		out.Interval = 100 * time.Millisecond
	}
	if out.Window <= 0 {
		out.Window = out.Interval.Seconds()
	}
	if out.Budget <= 0 {
		out.Budget = 4
	}
	if out.Alpha <= 0 || out.Alpha > 1 {
		out.Alpha = 0.5
	}
	if out.Headroom < 0 || out.Headroom >= 1 {
		out.Headroom = 0.1
	}
	if out.MinSlots == 0 {
		out.MinSlots = 8
	}
	if out.SlotHeadroom == 0 {
		out.SlotHeadroom = 0.25
	} else if out.SlotHeadroom < 0 {
		out.SlotHeadroom = 0
	}
	if out.PromoteRate == 0 {
		out.PromoteRate = 10
	}
	return out
}

// Stats counts the loop's work. Cheap value copy.
type Stats struct {
	Ticks      uint64
	Promotions uint64
	Demotions  uint64
	Failures   uint64
	// Planned counts moves the planner asked for, executed or not.
	Planned uint64
}

// Planner folds measurement windows into a smoothed demand model and
// diffs the knapsack target against the live placement. Deterministic:
// the same window sequence yields the same plans (memalloc breaks score
// ties by lock ID). Not safe for concurrent use; the Loop serializes.
type Planner struct {
	alpha        float64
	headroom     float64
	minSlots     uint64
	slotHeadroom float64
	promoteRate  float64
	ewma         map[uint32]memalloc.Demand
}

// NewPlanner builds a planner with cfg's smoothing parameters.
func NewPlanner(cfg Config) *Planner {
	c := cfg.withDefaults()
	return &Planner{
		alpha:        c.Alpha,
		headroom:     c.Headroom,
		minSlots:     c.MinSlots,
		slotHeadroom: c.SlotHeadroom,
		promoteRate:  c.PromoteRate,
		ewma:         make(map[uint32]memalloc.Demand),
	}
}

// Observe folds one measurement window into the smoothed model. Locks
// absent from the window decay toward zero and are dropped once cold, so
// a rotated-out hot set releases its switch claim within a few windows.
func (p *Planner) Observe(window []memalloc.Demand) {
	seen := make(map[uint32]bool, len(window))
	for _, d := range window {
		seen[d.LockID] = true
		old := p.ewma[d.LockID]
		p.ewma[d.LockID] = memalloc.Demand{
			LockID:     d.LockID,
			Rate:       p.alpha*d.Rate + (1-p.alpha)*old.Rate,
			Contention: smooth(p.alpha, d.Contention, old.Contention),
		}
	}
	for id, d := range p.ewma {
		if seen[id] {
			continue
		}
		d.Rate *= 1 - p.alpha
		// Below one request per second the lock is cold by any measure:
		// drop it from the model entirely, so if it is still
		// switch-resident it becomes an unmeasured resident — exactly
		// what memalloc.Resolve demotes first. Keeping a vanishing tail
		// would let a rotated-out hot set squat on switch memory forever
		// (tiny target allocations always fit, so nothing would evict
		// them).
		if d.Rate < 1 {
			delete(p.ewma, id)
			continue
		}
		d.Contention = smooth(p.alpha, 0, d.Contention)
		p.ewma[id] = d
	}
}

// padSlots widens a contention gauge by the admission-headroom fraction,
// rounding up so any non-zero headroom grants at least one spare slot.
func padSlots(contention uint64, headroom float64) uint64 {
	if headroom <= 0 || contention == 0 {
		return contention
	}
	v := float64(contention) * (1 + headroom)
	n := uint64(v)
	if float64(n) < v {
		n++
	}
	return n
}

// smooth EWMA-blends an integer gauge, rounding up so a single busy
// window registers immediately while decay still reaches zero.
func smooth(alpha float64, sample, old uint64) uint64 {
	v := alpha*float64(sample) + (1-alpha)*float64(old)
	n := uint64(v)
	if float64(n) < v {
		n++
	}
	return n
}

// Demands returns the smoothed demand set, ascending by lock ID. The
// admission headroom and the MinSlots floor are applied here — before the
// knapsack — so slot grants and capacity accounting agree (a post-hoc
// adjustment would hand out more slots than the plan reserved).
func (p *Planner) Demands() []memalloc.Demand {
	out := make([]memalloc.Demand, 0, len(p.ewma))
	for _, d := range p.ewma {
		if d.Rate < p.promoteRate {
			// Too cold for switch residency; if currently resident, its
			// absence from the demand set makes it a demote candidate.
			continue
		}
		d.Contention = padSlots(d.Contention, p.slotHeadroom)
		if d.Contention < p.minSlots {
			d.Contention = p.minSlots
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LockID < out[j].LockID })
	return out
}

// Plan diffs the knapsack target for the smoothed demands against the
// current placement and returns at most budget moves, demotions ordered
// before the promotions they make room for.
func (p *Planner) Plan(current map[uint32]uint64, capacity uint64, budget int) []memalloc.Move {
	usable := capacity - uint64(float64(capacity)*p.headroom)
	_, moves := memalloc.Resolve(p.Demands(), usable, current, budget)
	return moves
}

// Loop drives a Mover: each tick measures a window, updates the planner,
// and executes the planned moves. Safe for concurrent use.
type Loop struct {
	cfg     Config
	mover   Mover
	planner *Planner

	mu    sync.Mutex
	stats Stats

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a loop over the mover. Call Start for background ticking or
// Tick directly for deterministic single-threaded control (tests,
// scenarios, the embedded plane's RebalanceTick).
func New(m Mover, cfg Config) *Loop {
	c := cfg.withDefaults()
	return &Loop{
		cfg:     c,
		mover:   m,
		planner: NewPlanner(c),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Tick runs one synchronous measure-plan-move round and returns the
// number of moves executed successfully.
func (l *Loop) Tick() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Ticks++
	l.planner.Observe(l.mover.MeasureDemands(l.cfg.Window))
	moves := l.planner.Plan(l.mover.Placement(), l.mover.SwitchCapacity(), l.cfg.Budget)
	l.stats.Planned += uint64(len(moves))
	ok := 0
	for _, mv := range moves {
		var rep Report
		var err error
		if mv.Promote {
			rep, err = l.mover.MoveToSwitch(mv.LockID, mv.Slots)
		} else {
			rep, err = l.mover.MoveToServer(mv.LockID)
		}
		if l.cfg.OnMove != nil {
			l.cfg.OnMove(rep, err)
		}
		if err != nil {
			// A failed move (capacity race, lock mid-failover) is not
			// fatal: the placement diff re-plans it next tick.
			l.stats.Failures++
			continue
		}
		ok++
		if mv.Promote {
			l.stats.Promotions++
		} else {
			l.stats.Demotions++
		}
	}
	return ok
}

// Start launches the background ticker. Stop halts it; Start after Stop
// is a no-op.
func (l *Loop) Start() {
	l.startOnce.Do(func() {
		go func() {
			defer close(l.done)
			t := time.NewTicker(l.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-l.stop:
					return
				case <-t.C:
					l.Tick()
				}
			}
		}()
	})
}

// Stop halts the background ticker and waits for the in-flight tick.
func (l *Loop) Stop() {
	l.stopOnce.Do(func() { close(l.stop) })
	l.startOnce.Do(func() { close(l.done) }) // never started: unblock Stop
	<-l.done
}

// Stats returns a snapshot of the loop's counters.
func (l *Loop) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// String formats the counters for log lines.
func (s Stats) String() string {
	return fmt.Sprintf("ticks=%d planned=%d promoted=%d demoted=%d failed=%d",
		s.Ticks, s.Planned, s.Promotions, s.Demotions, s.Failures)
}
