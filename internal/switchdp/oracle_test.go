package switchdp

// Model-checking test: drive the switch data plane with random operation
// sequences and compare every grant decision against an independent
// reference implementation of the locking semantics (FCFS within priority,
// shared concurrency, exclusive isolation, priority preemption on grant).
// This exercises Algorithm 2's resubmit walk, the hold/exclusive-counter
// registers, and the priority banks far beyond the hand-written cases.

import (
	"math/rand"
	"testing"

	"netlock/internal/wire"
)

// refManager is the oracle: a direct, unconstrained implementation of the
// grant rules.
type refManager struct {
	prios   int
	queues  [][]refEntry // waiting + granted, FIFO per priority
	held    int
	heldX   bool
	granted map[uint64]bool
}

type refEntry struct {
	txn     uint64
	excl    bool
	prio    int
	granted bool
}

func newRef(prios int) *refManager {
	return &refManager{prios: prios, queues: make([][]refEntry, prios), granted: map[uint64]bool{}}
}

// acquire returns whether the request is granted immediately.
func (r *refManager) acquire(txn uint64, excl bool, prio int) bool {
	grant := false
	if r.held == 0 {
		grant = true
	} else if !r.heldX && !excl {
		// Shared: no exclusive waiting at same or higher priority.
		grant = true
		for p := 0; p <= prio; p++ {
			for _, e := range r.queues[p] {
				if e.excl {
					grant = false
				}
			}
		}
	}
	r.queues[prio] = append(r.queues[prio], refEntry{txn: txn, excl: excl, prio: prio, granted: grant})
	if grant {
		r.held++
		r.heldX = excl
		r.granted[txn] = true
	}
	return grant
}

// release removes the oldest granted entry in the given priority queue and
// returns the txns granted as a result.
func (r *refManager) release(prio int) []uint64 {
	q := r.queues[prio]
	if len(q) == 0 {
		return nil
	}
	// The switch dequeues the head without matching transaction IDs.
	released := q[0]
	r.queues[prio] = q[1:]
	delete(r.granted, released.txn)
	if r.held > 0 {
		r.held--
	}
	if r.held > 0 {
		return nil
	}
	r.heldX = false
	// Grant the head of the highest-priority non-empty queue; if shared,
	// the following run of shared entries in that queue too.
	var out []uint64
	for p := 0; p < r.prios; p++ {
		q := r.queues[p]
		if len(q) == 0 {
			continue
		}
		if q[0].excl {
			q[0].granted = true
			r.held = 1
			r.heldX = true
			r.granted[q[0].txn] = true
			return []uint64{q[0].txn}
		}
		for i := range q {
			if q[i].excl {
				break
			}
			q[i].granted = true
			r.held++
			r.granted[q[i].txn] = true
			out = append(out, q[i].txn)
		}
		return out
	}
	return nil
}

// grantedHead returns the oldest granted entry's priority, for choosing a
// valid release (the switch can only release queue heads).
func (r *refManager) oldestGrantedPrio(rng *rand.Rand) (int, bool) {
	var prios []int
	for p := 0; p < r.prios; p++ {
		if len(r.queues[p]) > 0 && r.queues[p][0].granted {
			prios = append(prios, p)
		}
	}
	if len(prios) == 0 {
		return 0, false
	}
	return prios[rng.Intn(len(prios))], true
}

func runOracle(t *testing.T, prios int, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sw := New(Config{MaxLocks: 4, TotalSlots: 256 * prios, Priorities: prios})
	regions := make([]Region, prios)
	for b := range regions {
		regions[b] = Region{Left: 0, Right: 256}
	}
	if err := sw.CtrlInstallLock(1, regions); err != nil {
		t.Fatal(err)
	}
	ref := newRef(prios)
	nextTxn := uint64(1)
	outstanding := 0

	grantsOf := func(emits []Emit) map[uint64]bool {
		out := map[uint64]bool{}
		for _, e := range emits {
			if e.Action == ActGrant {
				out[e.Hdr.TxnID] = true
			}
		}
		return out
	}

	for i := 0; i < ops; i++ {
		if outstanding < 200 && (outstanding == 0 || rng.Intn(2) == 0) {
			// Acquire.
			txn := nextTxn
			nextTxn++
			excl := rng.Intn(2) == 0
			prio := rng.Intn(prios)
			h := req(wire.OpAcquire, 1, txn, wire.Shared)
			if excl {
				h.Mode = wire.Exclusive
			}
			h.Priority = uint8(prio)
			emits, _ := sw.ProcessPacket(h)
			got := grantsOf(emits)
			want := ref.acquire(txn, excl, prio)
			if got[txn] != want {
				t.Fatalf("op %d (seed %d): acquire txn %d excl=%v prio=%d: switch granted=%v oracle=%v",
					i, seed, txn, excl, prio, got[txn], want)
			}
			outstanding++
		} else {
			// Release a queue head that the oracle says is granted.
			prio, ok := ref.oldestGrantedPrio(rng)
			if !ok {
				continue
			}
			h := req(wire.OpRelease, 1, 0, wire.Shared)
			h.Priority = uint8(prio)
			emits, _ := sw.ProcessPacket(h)
			got := grantsOf(emits)
			want := map[uint64]bool{}
			for _, txn := range ref.release(prio) {
				want[txn] = true
			}
			if len(got) != len(want) {
				t.Fatalf("op %d (seed %d): release prio %d: switch granted %v, oracle %v",
					i, seed, prio, got, want)
			}
			for txn := range want {
				if !got[txn] {
					t.Fatalf("op %d (seed %d): release prio %d: switch granted %v, oracle %v",
						i, seed, prio, got, want)
				}
			}
			outstanding--
		}
	}
	// Final state agreement.
	st, err := sw.CtrlLockState(1)
	if err != nil {
		t.Fatal(err)
	}
	if int(st.Held) != ref.held || st.HeldExcl != ref.heldX {
		t.Fatalf("seed %d: final hold state: switch (%d,%v) oracle (%d,%v)",
			seed, st.Held, st.HeldExcl, ref.held, ref.heldX)
	}
	for p := 0; p < prios; p++ {
		if int(st.Banks[p].Count) != len(ref.queues[p]) {
			t.Fatalf("seed %d: bank %d count: switch %d oracle %d",
				seed, p, st.Banks[p].Count, len(ref.queues[p]))
		}
	}
}

func TestOracleSinglePriority(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		runOracle(t, 1, seed, 2000)
	}
}

func TestOracleTwoPriorities(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		runOracle(t, 2, seed, 2000)
	}
}

func TestOracleFourPriorities(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		runOracle(t, 4, seed, 2000)
	}
}
