package switchdp

// Model-checking test: drive the switch data plane with seeded random
// operation streams and check every grant decision, in lockstep, against
// the shared reference model in internal/check. This exercises Algorithm
// 2's resubmit walk, the hold/exclusive/wait-counter registers, and the
// priority banks far beyond the hand-written cases, and shrinks any
// failing stream to a minimal reproduction.

import (
	"fmt"
	"testing"

	"netlock/internal/check"
	"netlock/internal/wire"
)

// oracleRegionSlots is each lock's per-bank region capacity. It exceeds the
// workload's MaxOutstanding, so strict runs never enter overflow mode (the
// overflow path is covered by priority_overflow_test.go and the core/cluster
// harnesses, where the checker runs in safety-only mode).
const oracleRegionSlots = 64

// swSystem adapts one Switch to the check.System surface.
type swSystem struct {
	sw *Switch
}

func newSwSystem(tb testing.TB, prios, locks int) *swSystem {
	tb.Helper()
	sw := New(Config{
		MaxLocks:   locks,
		TotalSlots: oracleRegionSlots * locks * prios,
		Priorities: prios,
	})
	for l := 1; l <= locks; l++ {
		regions := make([]Region, prios)
		for b := range regions {
			left := uint64(l-1) * oracleRegionSlots
			regions[b] = Region{Left: left, Right: left + oracleRegionSlots}
		}
		if err := sw.CtrlInstallLock(uint32(l), regions); err != nil {
			tb.Fatal(err)
		}
	}
	return &swSystem{sw: sw}
}

func (s *swSystem) grants(emits []Emit) []uint64 {
	var out []uint64
	for _, e := range emits {
		if e.Action == ActGrant {
			out = append(out, e.Hdr.TxnID)
		}
	}
	return out
}

func (s *swSystem) Acquire(lock uint32, txn uint64, excl bool, prio uint8) []uint64 {
	mode := wire.Shared
	if excl {
		mode = wire.Exclusive
	}
	h := req(wire.OpAcquire, lock, txn, mode)
	h.Priority = prio
	emits, _ := s.sw.ProcessPacket(h)
	return s.grants(emits)
}

func (s *swSystem) Release(lock uint32, prio uint8, txn uint64) []uint64 {
	// The switch releases by queue head, not by transaction: txn is advisory.
	h := req(wire.OpRelease, lock, txn, wire.Shared)
	h.Priority = prio
	emits, _ := s.sw.ProcessPacket(h)
	return s.grants(emits)
}

// finalState compares every lock's register snapshot against the model:
// hold count, exclusive flag, and per-bank queue population.
func (s *swSystem) finalState(m *check.Model, locks int) error {
	for l := 1; l <= locks; l++ {
		st, err := s.sw.CtrlLockState(uint32(l))
		if err != nil {
			return err
		}
		held, heldX := m.Held(uint32(l))
		if int(st.Held) != held || st.HeldExcl != heldX {
			return fmt.Errorf("lock %d hold state: switch (%d,%v) model (%d,%v)",
				l, st.Held, st.HeldExcl, held, heldX)
		}
		for p := range st.Banks {
			if int(st.Banks[p].Count) != m.QueueLen(uint32(l), uint8(p)) {
				return fmt.Errorf("lock %d bank %d count: switch %d model %d",
					l, p, st.Banks[p].Count, m.QueueLen(uint32(l), uint8(p)))
			}
		}
	}
	return nil
}

func runOracle(t *testing.T, prios int) {
	t.Helper()
	cfg := check.DefaultWorkloadCfg()
	cfg.Ops = 2000
	cfg.Priorities = prios
	h := &check.Harness{
		Cfg: cfg,
		New: func() check.System { return newSwSystem(t, prios, cfg.Locks) },
		Final: func(sys check.System, m *check.Model) error {
			return sys.(*swSystem).finalState(m, cfg.Locks)
		},
	}
	h.Run(t)
}

func TestOracleSinglePriority(t *testing.T) { runOracle(t, 1) }

func TestOracleTwoPriorities(t *testing.T) { runOracle(t, 2) }

func TestOracleFourPriorities(t *testing.T) { runOracle(t, 4) }
