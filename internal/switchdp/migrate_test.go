package switchdp

import (
	"testing"

	"netlock/internal/wire"
)

// Export must capture the full queue state (granted prefix + waiters,
// modes, txn IDs) and evict the lock; importing it into a fresh switch must
// reproduce the exporter's behavior exactly: same grant decisions on new
// arrivals, same grant sequence as releases drain the queue.
func TestExportImportPreservesQueueState(t *testing.T) {
	src := New(Config{MaxLocks: 8, TotalSlots: 64, Priorities: 2})
	installed(t, src, 1, 8)

	// Build a contended mix: an exclusive holder in bank 0, shared waiters
	// in bank 1, and an exclusive waiter in bank 0.
	enq := func(txn uint64, mode wire.Mode, prio uint8) {
		h := req(wire.OpAcquire, 1, txn, mode)
		h.Priority = prio
		do(t, src, h)
	}
	enq(101, wire.Exclusive, 0) // granted
	enq(102, wire.Shared, 1)    // waits, bank 1
	enq(103, wire.Shared, 1)    // waits, bank 1
	enq(104, wire.Exclusive, 0) // waits, bank 0
	enq(105, wire.Shared, 1)    // waits, bank 1

	ex, err := src.CtrlExportLock(1)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if src.CtrlHasLock(1) {
		t.Fatalf("lock still resident after export")
	}
	if got := ex.Entries(); got != 5 {
		t.Fatalf("exported %d entries, want 5", got)
	}
	// Granted entries form a prefix; exactly one granted (the exclusive).
	granted := 0
	for _, bank := range ex.Slots {
		prefix := true
		for _, s := range bank {
			if s.Granted {
				if !prefix {
					t.Fatalf("granted entry after a waiter in export")
				}
				granted++
			} else {
				prefix = false
			}
		}
	}
	if granted != 1 {
		t.Fatalf("exported %d granted entries, want 1", granted)
	}

	// After eviction, requests take the not-resident forward path.
	wantActions(t, do(t, src, req(wire.OpAcquire, 1, 106, wire.Shared)), ActForward)

	dst := New(Config{MaxLocks: 8, TotalSlots: 64, Priorities: 2})
	if err := dst.CtrlImportLock(1, ex.Regions, ex.Slots); err != nil {
		t.Fatalf("import: %v", err)
	}
	st, err := dst.CtrlLockState(1)
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	if st.Held != 1 || !st.HeldExcl {
		t.Fatalf("imported hold = (%d, excl=%v), want (1, true)", st.Held, st.HeldExcl)
	}

	// A shared arrival must NOT be granted (exclusive holder + waiters) —
	// if import replayed entries through the grant logic instead of
	// installing them literally, this is where it would double-grant.
	sh := req(wire.OpAcquire, 1, 200, wire.Shared)
	sh.Priority = 1
	if emits := do(t, dst, sh); len(emits) != 0 {
		t.Fatalf("shared arrival behind exclusive holder emitted %v", emits)
	}

	// Release the migrated holder: the grant walk must pick the bank-0
	// exclusive waiter (priority order), not the earlier bank-1 shareds.
	rel := req(wire.OpRelease, 1, 101, wire.Exclusive)
	emits := do(t, dst, rel)
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 104 {
		t.Fatalf("grant walk granted txn %d, want 104", emits[0].Hdr.TxnID)
	}
	// Release 104 (bank 0): the bank-1 shared run 102, 103, 105, 200 follows.
	rel = req(wire.OpRelease, 1, 104, wire.Exclusive)
	rel.Priority = 0
	emits = do(t, dst, rel)
	wantActions(t, emits, ActGrant, ActGrant, ActGrant, ActGrant)
	want := []uint64{102, 103, 105, 200}
	for i, w := range want {
		if emits[i].Hdr.TxnID != w {
			t.Fatalf("shared run grant %d = txn %d, want %d", i, emits[i].Hdr.TxnID, w)
		}
	}
}

// Import must reject state that does not fit the assigned regions.
func TestImportRejectsOversizedState(t *testing.T) {
	src := New(Config{MaxLocks: 8, TotalSlots: 64, Priorities: 1})
	installed(t, src, 1, 8)
	for txn := uint64(1); txn <= 5; txn++ {
		do(t, src, req(wire.OpAcquire, 1, txn, wire.Exclusive))
	}
	ex, err := src.CtrlExportLock(1)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	dst := New(Config{MaxLocks: 8, TotalSlots: 64, Priorities: 1})
	small := []Region{{Left: 0, Right: 2}}
	if err := dst.CtrlImportLock(1, small, ex.Slots); err == nil {
		t.Fatalf("import of 5 entries into 2 slots accepted")
	}
	if dst.CtrlHasLock(1) {
		t.Fatalf("failed import left the lock installed")
	}
}

// Export of an idle (fully drained) lock must round trip too, and the
// freed table entry must be reusable.
func TestExportIdleLockAndReuse(t *testing.T) {
	sw := New(Config{MaxLocks: 2, TotalSlots: 16, Priorities: 1})
	installed(t, sw, 1, 4)
	do(t, sw, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, sw, req(wire.OpRelease, 1, 1, wire.Exclusive))
	ex, err := sw.CtrlExportLock(1)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if ex.Entries() != 0 {
		t.Fatalf("drained lock exported %d entries", ex.Entries())
	}
	// The freed entry is reusable immediately.
	installed(t, sw, 2, 4)
	if err := sw.CtrlImportLock(1, ex.Regions, ex.Slots); err != nil {
		t.Fatalf("re-import: %v", err)
	}
	wantActions(t, do(t, sw, req(wire.OpAcquire, 1, 9, wire.Shared)), ActGrant)
}
