package switchdp

import (
	"net/netip"
	"testing"

	"netlock/internal/sharedqueue"
	"netlock/internal/wire"
)

func newTestSwitch(t testing.TB) *Switch {
	t.Helper()
	return New(Config{MaxLocks: 64, TotalSlots: 256, Priorities: 1})
}

func installed(t testing.TB, sw *Switch, lockID uint32, slots uint64) {
	t.Helper()
	regions := make([]Region, len(sw.banks))
	base := uint64(lockID-1) * slots // tests use distinct small lock IDs from 1
	for b := range regions {
		regions[b] = Region{Left: base, Right: base + slots}
	}
	if err := sw.CtrlInstallLock(lockID, regions); err != nil {
		t.Fatalf("install lock %d: %v", lockID, err)
	}
}

func req(op wire.Op, lockID uint32, txn uint64, mode wire.Mode) *wire.Header {
	return &wire.Header{
		Op:       op,
		Mode:     mode,
		LockID:   lockID,
		TxnID:    txn,
		ClientIP: netip.AddrFrom4([4]byte{10, 0, 0, byte(txn)}),
	}
}

// do processes a packet and returns the emits.
func do(t testing.TB, sw *Switch, h *wire.Header) []Emit {
	t.Helper()
	emits, _ := sw.ProcessPacket(h)
	out := make([]Emit, len(emits))
	copy(out, emits)
	return out
}

func wantActions(t *testing.T, emits []Emit, want ...Action) {
	t.Helper()
	if len(emits) != len(want) {
		t.Fatalf("emits = %v, want actions %v", emits, want)
	}
	for i := range want {
		if emits[i].Action != want[i] {
			t.Fatalf("emit %d action = %v, want %v (all: %v)", i, emits[i].Action, want[i], emits)
		}
	}
}

func TestForwardWhenLockNotResident(t *testing.T) {
	sw := newTestSwitch(t)
	emits := do(t, sw, req(wire.OpAcquire, 9, 1, wire.Exclusive))
	wantActions(t, emits, ActForward)
	if emits[0].Hdr.LockID != 9 {
		t.Fatalf("forwarded header corrupted: %v", emits[0].Hdr)
	}
	emits = do(t, sw, req(wire.OpRelease, 9, 1, wire.Exclusive))
	wantActions(t, emits, ActForward)
	if sw.Stats().Forwards != 2 {
		t.Fatalf("forwards = %d, want 2", sw.Stats().Forwards)
	}
}

func TestExclusiveGrantAndQueue(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 4)
	// First exclusive request is granted immediately.
	emits := do(t, sw, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.Op != wire.OpGrant || emits[0].Hdr.TxnID != 1 {
		t.Fatalf("grant header wrong: %v", emits[0].Hdr)
	}
	// Second exclusive request queues silently.
	emits = do(t, sw, req(wire.OpAcquire, 1, 2, wire.Exclusive))
	wantActions(t, emits)
	st, err := sw.CtrlLockState(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Held != 1 || !st.HeldExcl || st.Banks[0].Count != 2 {
		t.Fatalf("lock state wrong: %+v", st)
	}
}

// Figure 6, exclusive → exclusive: release grants the next exclusive
// request, no extra resubmit walk.
func TestExclusiveToExclusive(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 4)
	do(t, sw, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, sw, req(wire.OpAcquire, 1, 2, wire.Exclusive))
	emits := do(t, sw, req(wire.OpRelease, 1, 1, wire.Exclusive))
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 2 || emits[0].Hdr.Mode != wire.Exclusive {
		t.Fatalf("wrong grant: %v", emits[0].Hdr)
	}
	st, _ := sw.CtrlLockState(1)
	if st.Held != 1 || !st.HeldExcl || st.Banks[0].Count != 1 {
		t.Fatalf("state after X->X: %+v", st)
	}
}

// Figure 6, exclusive → shared: release grants the whole run of shared
// requests via repeated resubmit.
func TestExclusiveToSharedRun(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 8)
	do(t, sw, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	for txn := uint64(2); txn <= 4; txn++ {
		wantActions(t, do(t, sw, req(wire.OpAcquire, 1, txn, wire.Shared)))
	}
	do(t, sw, req(wire.OpAcquire, 1, 5, wire.Exclusive))
	emits := do(t, sw, req(wire.OpRelease, 1, 1, wire.Exclusive))
	wantActions(t, emits, ActGrant, ActGrant, ActGrant)
	for i, txn := range []uint64{2, 3, 4} {
		if emits[i].Hdr.TxnID != txn || emits[i].Hdr.Mode != wire.Shared {
			t.Fatalf("grant %d = %v, want shared txn %d", i, emits[i].Hdr, txn)
		}
	}
	st, _ := sw.CtrlLockState(1)
	if st.Held != 3 || st.HeldExcl {
		t.Fatalf("state after X->SSS: %+v", st)
	}
	// The exclusive request at the end of the run is still waiting.
	if st.Banks[0].Count != 4 {
		t.Fatalf("queue count = %d, want 4 (3 granted shared + 1 waiting X)", st.Banks[0].Count)
	}
}

// Figure 6, shared → shared: releasing one of several granted shared locks
// grants nothing new.
func TestSharedToShared(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 8)
	wantActions(t, do(t, sw, req(wire.OpAcquire, 1, 1, wire.Shared)), ActGrant)
	wantActions(t, do(t, sw, req(wire.OpAcquire, 1, 2, wire.Shared)), ActGrant)
	emits := do(t, sw, req(wire.OpRelease, 1, 1, wire.Shared))
	wantActions(t, emits)
	st, _ := sw.CtrlLockState(1)
	if st.Held != 1 || st.HeldExcl || st.Banks[0].Count != 1 {
		t.Fatalf("state after S->S release: %+v", st)
	}
}

// Figure 6, shared → exclusive: the last shared release grants the waiting
// exclusive request.
func TestSharedToExclusive(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 8)
	do(t, sw, req(wire.OpAcquire, 1, 1, wire.Shared))
	do(t, sw, req(wire.OpAcquire, 1, 2, wire.Shared))
	wantActions(t, do(t, sw, req(wire.OpAcquire, 1, 3, wire.Exclusive))) // queues
	wantActions(t, do(t, sw, req(wire.OpRelease, 1, 1, wire.Shared)))    // still one shared holder
	emits := do(t, sw, req(wire.OpRelease, 1, 2, wire.Shared))
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 3 || emits[0].Hdr.Mode != wire.Exclusive {
		t.Fatalf("S->X grant wrong: %v", emits[0].Hdr)
	}
	st, _ := sw.CtrlLockState(1)
	if st.Held != 1 || !st.HeldExcl || st.Banks[0].Count != 1 {
		t.Fatalf("state after S->X: %+v", st)
	}
}

// A shared request arriving while an exclusive request waits must queue
// behind it (FCFS starvation-freedom), even though the holder is shared.
func TestSharedQueuesBehindWaitingExclusive(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 8)
	wantActions(t, do(t, sw, req(wire.OpAcquire, 1, 1, wire.Shared)), ActGrant)
	wantActions(t, do(t, sw, req(wire.OpAcquire, 1, 2, wire.Exclusive))) // waits
	wantActions(t, do(t, sw, req(wire.OpAcquire, 1, 3, wire.Shared)))    // must wait too
	// Release the shared holder: X is granted, not the new S.
	emits := do(t, sw, req(wire.OpRelease, 1, 1, wire.Shared))
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 2 {
		t.Fatalf("expected X txn 2 granted, got %v", emits[0].Hdr)
	}
	// Release X: the queued shared request is granted.
	emits = do(t, sw, req(wire.OpRelease, 1, 2, wire.Exclusive))
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 3 {
		t.Fatalf("expected S txn 3 granted, got %v", emits[0].Hdr)
	}
}

func TestSharedGrantsConcurrent(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 16)
	for txn := uint64(1); txn <= 10; txn++ {
		wantActions(t, do(t, sw, req(wire.OpAcquire, 1, txn, wire.Shared)), ActGrant)
	}
	st, _ := sw.CtrlLockState(1)
	if st.Held != 10 || st.HeldExcl {
		t.Fatalf("ten shared holders expected: %+v", st)
	}
}

func TestReleaseEmptyQueueIgnored(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 4)
	emits := do(t, sw, req(wire.OpRelease, 1, 1, wire.Exclusive))
	wantActions(t, emits)
	st, _ := sw.CtrlLockState(1)
	if st.Held != 0 || st.Banks[0].Count != 0 {
		t.Fatalf("spurious release mutated state: %+v", st)
	}
}

func TestOverflowForwardAndMode(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 2) // region of 2 slots
	do(t, sw, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, sw, req(wire.OpAcquire, 1, 2, wire.Exclusive))
	// Third request overflows: forwarded with the overflow mark, and the
	// lock enters overflow mode.
	emits := do(t, sw, req(wire.OpAcquire, 1, 3, wire.Exclusive))
	wantActions(t, emits, ActForwardOverflow)
	if emits[0].Hdr.Flags&wire.FlagOverflow == 0 {
		t.Fatalf("overflow forward must carry FlagOverflow: %v", emits[0].Hdr)
	}
	st, _ := sw.CtrlLockState(1)
	if !st.Overflow[0] {
		t.Fatalf("lock should be in overflow mode")
	}
	// Even though a release frees a slot, FIFO requires new requests to
	// keep going to the server while in overflow mode.
	do(t, sw, req(wire.OpRelease, 1, 1, wire.Exclusive))
	emits = do(t, sw, req(wire.OpAcquire, 1, 4, wire.Exclusive))
	wantActions(t, emits, ActForwardOverflow)
}

func TestOverflowPushNotifyAndPush(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 2)
	do(t, sw, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, sw, req(wire.OpAcquire, 1, 2, wire.Exclusive))
	do(t, sw, req(wire.OpAcquire, 1, 3, wire.Exclusive)) // overflow
	// Drain the switch queue.
	emits := do(t, sw, req(wire.OpRelease, 1, 1, wire.Exclusive))
	wantActions(t, emits, ActGrant) // txn 2
	emits = do(t, sw, req(wire.OpRelease, 1, 2, wire.Exclusive))
	// Queue now empty and in overflow mode: expect a push notification.
	wantActions(t, emits, ActPushNotify)
	if emits[0].Hdr.LeaseNs != 2 {
		t.Fatalf("push notify free slots = %d, want 2", emits[0].Hdr.LeaseNs)
	}
	// Server pushes the buffered request as final (q2 drained): it is
	// enqueued, granted, and overflow mode clears.
	push := req(wire.OpPush, 1, 3, wire.Exclusive)
	push.Flags = wire.FlagOverflow // final marker
	emits = do(t, sw, push)
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 3 {
		t.Fatalf("pushed request not granted: %v", emits[0].Hdr)
	}
	st, _ := sw.CtrlLockState(1)
	if st.Overflow[0] {
		t.Fatalf("overflow mode should have cleared")
	}
	// Back to normal: new requests are processed by the switch again.
	do(t, sw, req(wire.OpRelease, 1, 3, wire.Exclusive))
	wantActions(t, do(t, sw, req(wire.OpAcquire, 1, 5, wire.Exclusive)), ActGrant)
}

func TestPushForLockNotResident(t *testing.T) {
	sw := newTestSwitch(t)
	push := req(wire.OpPush, 77, 3, wire.Exclusive)
	push.Flags = wire.FlagOverflow
	emits := do(t, sw, push)
	wantActions(t, emits, ActForward)
	if emits[0].Hdr.Op != wire.OpAcquire || emits[0].Hdr.Flags&wire.FlagOverflow != 0 {
		t.Fatalf("stale push should be bounced as a plain acquire: %v", emits[0].Hdr)
	}
}

func TestPriorityGrantOrder(t *testing.T) {
	sw := New(Config{MaxLocks: 8, TotalSlots: 64, Priorities: 2})
	if err := sw.CtrlInstallLock(1, []Region{{0, 8}, {0, 8}}); err != nil {
		t.Fatal(err)
	}
	hi := func(txn uint64, mode wire.Mode) *wire.Header {
		h := req(wire.OpAcquire, 1, txn, mode)
		h.Priority = 0
		return h
	}
	lo := func(txn uint64, mode wire.Mode) *wire.Header {
		h := req(wire.OpAcquire, 1, txn, mode)
		h.Priority = 1
		return h
	}
	// Low-priority X holds the lock; low X and high X wait.
	wantActions(t, do(t, sw, lo(1, wire.Exclusive)), ActGrant)
	wantActions(t, do(t, sw, lo(2, wire.Exclusive)))
	wantActions(t, do(t, sw, hi(3, wire.Exclusive)))
	// On release, the high-priority request wins even though it arrived
	// later.
	rel := req(wire.OpRelease, 1, 1, wire.Exclusive)
	rel.Priority = 1
	emits := do(t, sw, rel)
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 3 {
		t.Fatalf("high-priority request should be granted first, got %v", emits[0].Hdr)
	}
}

func TestPrioritySharedBypassesLowerExclusive(t *testing.T) {
	sw := New(Config{MaxLocks: 8, TotalSlots: 64, Priorities: 2})
	if err := sw.CtrlInstallLock(1, []Region{{0, 8}, {0, 8}}); err != nil {
		t.Fatal(err)
	}
	// Shared holder at low priority, exclusive waiter at low priority.
	h1 := req(wire.OpAcquire, 1, 1, wire.Shared)
	h1.Priority = 1
	wantActions(t, do(t, sw, h1), ActGrant)
	h2 := req(wire.OpAcquire, 1, 2, wire.Exclusive)
	h2.Priority = 1
	wantActions(t, do(t, sw, h2))
	// A high-priority shared request sees no same-or-higher exclusive
	// requests, so it is granted immediately (service differentiation).
	h3 := req(wire.OpAcquire, 1, 3, wire.Shared)
	h3.Priority = 0
	wantActions(t, do(t, sw, h3), ActGrant)
	// A low-priority shared request must wait behind the exclusive one.
	h4 := req(wire.OpAcquire, 1, 4, wire.Shared)
	h4.Priority = 1
	wantActions(t, do(t, sw, h4))
}

func TestTenantQuotaRejects(t *testing.T) {
	now := int64(0)
	sw := New(Config{MaxLocks: 8, TotalSlots: 64, Priorities: 1, Isolation: true,
		Now: func() int64 { return now }})
	if err := sw.CtrlInstallLock(1, []Region{{0, 8}}); err != nil {
		t.Fatal(err)
	}
	sw.CtrlSetTenantQuota(5, 1000, 2)
	mk := func(txn uint64) *wire.Header {
		h := req(wire.OpAcquire, 1, txn, wire.Shared)
		h.TenantID = 5
		return h
	}
	wantActions(t, do(t, sw, mk(1)), ActGrant)
	wantActions(t, do(t, sw, mk(2)), ActGrant)
	// Burst exhausted: reject.
	emits := do(t, sw, mk(3))
	wantActions(t, emits, ActReject)
	if emits[0].Hdr.Op != wire.OpReject {
		t.Fatalf("reject op wrong: %v", emits[0].Hdr)
	}
	// Unconfigured tenant is always rejected under isolation.
	other := req(wire.OpAcquire, 1, 4, wire.Shared)
	other.TenantID = 9
	wantActions(t, do(t, sw, other), ActReject)
	// After time passes, tokens refill.
	now += 10e6 // 10ms at 1000/s -> 10 tokens (capped at burst 2)
	wantActions(t, do(t, sw, mk(5)), ActGrant)
}

func TestMeterBypassAndCtrlAdmit(t *testing.T) {
	now := int64(0)
	sw := New(Config{MaxLocks: 8, TotalSlots: 64, Priorities: 1, Isolation: true,
		Now: func() int64 { return now }})
	if err := sw.CtrlInstallLock(1, []Region{{0, 8}}); err != nil {
		t.Fatal(err)
	}
	sw.CtrlSetTenantQuota(5, 1000, 1)
	mk := func(txn uint64) *wire.Header {
		h := req(wire.OpAcquire, 1, txn, wire.Shared)
		h.TenantID = 5
		return h
	}
	// Under bypass the in-dp meter never consumes nor rejects: both of
	// these would blow the 1-token burst otherwise.
	sw.CtrlSetMeterBypass(true)
	wantActions(t, do(t, sw, mk(1)), ActGrant)
	wantActions(t, do(t, sw, mk(2)), ActGrant)
	// CtrlMeterAdmit is the transport-level check a chain head uses
	// instead: it consumes tokens and reports conformance.
	if !sw.CtrlMeterAdmit(5) {
		t.Fatalf("first CtrlMeterAdmit should conform (burst 1)")
	}
	if sw.CtrlMeterAdmit(5) {
		t.Fatalf("second CtrlMeterAdmit should exceed the burst")
	}
	if got := sw.Stats().Rejects; got != 1 {
		t.Fatalf("CtrlMeterAdmit rejects not counted: %d", got)
	}
	// Restoring the meter re-enables in-dp rejects (tokens exhausted).
	sw.CtrlSetMeterBypass(false)
	wantActions(t, do(t, sw, mk(3)), ActReject)
	// Isolation off: admit is unconditionally true and consumes nothing.
	sw2 := newTestSwitch(t)
	if !sw2.CtrlMeterAdmit(9) || !sw2.CtrlMeterAdmit(9) {
		t.Fatalf("CtrlMeterAdmit must always conform with Isolation off")
	}
}

func TestOneRTTFetchEmit(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 4)
	h := req(wire.OpAcquire, 1, 1, wire.Exclusive)
	h.Flags = wire.FlagOneRTT
	emits := do(t, sw, h)
	wantActions(t, emits, ActFetch)
	if emits[0].Hdr.Op != wire.OpFetch {
		t.Fatalf("one-RTT grant should be OpFetch: %v", emits[0].Hdr)
	}
	// Queued one-RTT request also fetches when granted later.
	h2 := req(wire.OpAcquire, 1, 2, wire.Exclusive)
	h2.Flags = wire.FlagOneRTT
	wantActions(t, do(t, sw, h2))
	emits = do(t, sw, req(wire.OpRelease, 1, 1, wire.Exclusive))
	wantActions(t, emits, ActFetch)
	if emits[0].Hdr.TxnID != 2 {
		t.Fatalf("queued one-RTT fetch wrong: %v", emits[0].Hdr)
	}
}

func TestLeaseStampingAndExpiry(t *testing.T) {
	now := int64(1000)
	sw := New(Config{MaxLocks: 8, TotalSlots: 64, Priorities: 1,
		DefaultLeaseNs: 500, Now: func() int64 { return now }})
	if err := sw.CtrlInstallLock(1, []Region{{0, 8}}); err != nil {
		t.Fatal(err)
	}
	emits := do(t, sw, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.LeaseNs != 1500 {
		t.Fatalf("lease = %d, want now+500", emits[0].Hdr.LeaseNs)
	}
	// Not yet expired.
	if rel := sw.CtrlScanExpired(1400); len(rel) != 0 {
		t.Fatalf("premature expiry: %v", rel)
	}
	// Expired: the control plane synthesizes a release.
	rels := sw.CtrlScanExpired(2000)
	if len(rels) != 1 || rels[0].Op != wire.OpRelease || rels[0].TxnID != 1 {
		t.Fatalf("expiry scan = %v", rels)
	}
	// Injecting the release frees the lock.
	do(t, sw, &rels[0])
	st, _ := sw.CtrlLockState(1)
	if st.Held != 0 || st.Banks[0].Count != 0 {
		t.Fatalf("state after expiry release: %+v", st)
	}
	if sw.Stats().ExpiredReleases != 1 {
		t.Fatalf("expired releases = %d", sw.Stats().ExpiredReleases)
	}
}

func TestExplicitLeaseDuration(t *testing.T) {
	now := int64(100)
	sw := New(Config{MaxLocks: 8, TotalSlots: 64, Priorities: 1,
		Now: func() int64 { return now }})
	if err := sw.CtrlInstallLock(1, []Region{{0, 8}}); err != nil {
		t.Fatal(err)
	}
	h := req(wire.OpAcquire, 1, 1, wire.Exclusive)
	h.LeaseNs = 1000 // requested duration
	emits := do(t, sw, h)
	if emits[0].Hdr.LeaseNs != 1100 {
		t.Fatalf("lease expiry = %d, want 1100", emits[0].Hdr.LeaseNs)
	}
}

func TestInstallValidation(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 4)
	if err := sw.CtrlInstallLock(1, []Region{{0, 4}}); err == nil {
		t.Fatalf("duplicate install should fail")
	}
	if err := sw.CtrlInstallLock(2, []Region{}); err == nil {
		t.Fatalf("wrong region count should fail")
	}
	if err := sw.CtrlInstallLock(2, []Region{{4, 4}}); err == nil {
		t.Fatalf("empty region should fail")
	}
	if err := sw.CtrlInstallLock(2, []Region{{0, 1 << 40}}); err == nil {
		t.Fatalf("out-of-range region should fail")
	}
}

func TestLockTableCapacity(t *testing.T) {
	sw := New(Config{MaxLocks: 2, TotalSlots: 16, Priorities: 1})
	if err := sw.CtrlInstallLock(1, []Region{{0, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := sw.CtrlInstallLock(2, []Region{{4, 8}}); err != nil {
		t.Fatal(err)
	}
	if err := sw.CtrlInstallLock(3, []Region{{8, 12}}); err == nil {
		t.Fatalf("table full should fail")
	}
	if sw.CtrlFreeEntries() != 0 {
		t.Fatalf("free entries = %d", sw.CtrlFreeEntries())
	}
	// Removing frees an entry for reuse.
	if err := sw.CtrlRemoveLock(1); err != nil {
		t.Fatal(err)
	}
	if err := sw.CtrlInstallLock(3, []Region{{8, 12}}); err != nil {
		t.Fatalf("reinstall after remove: %v", err)
	}
}

func TestRemoveRequiresDrain(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 4)
	do(t, sw, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	if err := sw.CtrlRemoveLock(1); err == nil {
		t.Fatalf("removing a non-drained lock should fail")
	}
	do(t, sw, req(wire.OpRelease, 1, 1, wire.Exclusive))
	if err := sw.CtrlRemoveLock(1); err != nil {
		t.Fatalf("remove after drain: %v", err)
	}
	if sw.CtrlHasLock(1) {
		t.Fatalf("lock still resident after removal")
	}
	if err := sw.CtrlRemoveLock(1); err == nil {
		t.Fatalf("double remove should fail")
	}
}

func TestCtrlMeasure(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 8)
	for txn := uint64(1); txn <= 5; txn++ {
		do(t, sw, req(wire.OpAcquire, 1, txn, wire.Exclusive))
	}
	loads := sw.CtrlMeasure()
	if len(loads) != 1 || loads[0].Requests != 5 {
		t.Fatalf("measured loads = %+v", loads)
	}
	if loads[0].MaxQueue != 5 {
		t.Fatalf("max queue = %d, want 5", loads[0].MaxQueue)
	}
	// Window closed: counters reset.
	loads = sw.CtrlMeasure()
	if loads[0].Requests != 0 || loads[0].MaxQueue != 0 {
		t.Fatalf("counters not reset: %+v", loads)
	}
}

func TestCtrlReset(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 4)
	do(t, sw, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	sw.CtrlReset()
	if sw.CtrlHasLock(1) {
		t.Fatalf("lock survived reset")
	}
	if sw.CtrlFreeEntries() != 64 {
		t.Fatalf("free entries after reset = %d", sw.CtrlFreeEntries())
	}
	if sw.Stats() != (Stats{}) {
		t.Fatalf("stats survived reset")
	}
	// The switch is usable after the reset.
	installed(t, sw, 1, 4)
	wantActions(t, do(t, sw, req(wire.OpAcquire, 1, 2, wire.Exclusive)), ActGrant)
}

func TestCtrlQueuedSlots(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 8)
	do(t, sw, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, sw, req(wire.OpAcquire, 1, 2, wire.Shared))
	slots, err := sw.CtrlQueuedSlots(1, 0)
	if err != nil || len(slots) != 2 {
		t.Fatalf("queued slots = %v err=%v", slots, err)
	}
	if slots[0].TxnID != 1 || !slots[0].Exclusive || slots[1].TxnID != 2 || slots[1].Exclusive {
		t.Fatalf("slot contents wrong: %+v", slots)
	}
	if _, err := sw.CtrlQueuedSlots(99, 0); err == nil {
		t.Fatalf("unknown lock should error")
	}
}

func TestStatsAccounting(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 2)
	do(t, sw, req(wire.OpAcquire, 1, 1, wire.Exclusive)) // immediate grant
	do(t, sw, req(wire.OpAcquire, 1, 2, wire.Exclusive)) // queued
	do(t, sw, req(wire.OpAcquire, 1, 3, wire.Exclusive)) // overflow
	do(t, sw, req(wire.OpRelease, 1, 1, wire.Exclusive)) // grants txn 2
	s := sw.Stats()
	if s.Acquires != 3 || s.GrantsImmediate != 1 || s.Queued != 1 ||
		s.Overflows != 1 || s.GrantsQueued != 1 || s.Releases != 1 {
		t.Fatalf("stats wrong: %+v", s)
	}
}

func TestPassAccountingChargesResubmits(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 8)
	_, p := sw.ProcessPacket(req(wire.OpAcquire, 1, 1, wire.Exclusive))
	if p != 1 {
		t.Fatalf("immediate grant passes = %d, want 1", p)
	}
	for txn := uint64(2); txn <= 4; txn++ {
		sw.ProcessPacket(req(wire.OpAcquire, 1, txn, wire.Shared))
	}
	// X release granting 3 shared requests: pass 0 (dequeue) + pass 1
	// (first grant) + 2 walk passes granting + 1 terminating pass.
	_, p = sw.ProcessPacket(req(wire.OpRelease, 1, 1, wire.Exclusive))
	if p < 4 {
		t.Fatalf("X->SSS release passes = %d, want >= 4", p)
	}
}

func TestConfigValidationPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero locks":     {MaxLocks: 0, TotalSlots: 16, Priorities: 1},
		"zero slots":     {MaxLocks: 4, TotalSlots: 0, Priorities: 1},
		"bad priorities": {MaxLocks: 4, TotalSlots: 16, Priorities: 9},
		"slots < banks":  {MaxLocks: 4, TotalSlots: 3, Priorities: 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestActionString(t *testing.T) {
	for _, a := range []Action{ActGrant, ActFetch, ActForward, ActForwardOverflow, ActReject, ActPushNotify} {
		if a.String() == "" {
			t.Fatalf("action %d has empty name", a)
		}
	}
	if Action(99).String() != "action(99)" {
		t.Fatalf("unknown action string wrong")
	}
}

func TestGrantEmitsCarrySlotIdentity(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 1, 8)
	h := req(wire.OpAcquire, 1, 7, wire.Exclusive)
	h.TenantID = 3
	do(t, sw, h)
	h2 := req(wire.OpAcquire, 1, 8, wire.Exclusive)
	h2.TenantID = 4
	h2.ClientIP = netip.AddrFrom4([4]byte{192, 168, 1, 9})
	do(t, sw, h2)
	emits := do(t, sw, req(wire.OpRelease, 1, 7, wire.Exclusive))
	g := emits[0].Hdr
	if g.TxnID != 8 || g.TenantID != 4 || g.ClientIP != netip.AddrFrom4([4]byte{192, 168, 1, 9}) {
		t.Fatalf("queued grant lost identity: %v", g)
	}
}

// The Slot type must round-trip through the queue with all fields intact
// when granted from the walk (integration of switchdp with sharedqueue).
func TestWalkSlotRoundTrip(t *testing.T) {
	sw := newTestSwitch(t)
	installed(t, sw, 2, 8)
	x := req(wire.OpAcquire, 2, 1, wire.Exclusive)
	do(t, sw, x)
	s := req(wire.OpAcquire, 2, 2, wire.Shared)
	s.TenantID = 9
	s.Priority = 0
	do(t, sw, s)
	emits := do(t, sw, req(wire.OpRelease, 2, 1, wire.Exclusive))
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TenantID != 9 || emits[0].Hdr.Mode != wire.Shared {
		t.Fatalf("walk grant fields wrong: %v", emits[0].Hdr)
	}
	_ = sharedqueue.Slot{} // keep the import for documentation purposes
}
