package switchdp

import (
	"testing"

	"netlock/internal/wire"
)

// Interaction tests between the priority banks and the overflow protocol:
// overflow mode is per (lock, bank), so one priority's congestion must not
// disturb the others.

func newPrioritySwitch(t *testing.T) *Switch {
	t.Helper()
	sw := New(Config{MaxLocks: 8, TotalSlots: 64, Priorities: 2})
	// Bank 0 (high priority) gets 8 slots; bank 1 (low) only 2.
	if err := sw.CtrlInstallLock(1, []Region{{0, 8}, {0, 2}}); err != nil {
		t.Fatal(err)
	}
	return sw
}

func prioReq(op wire.Op, txn uint64, prio uint8, mode wire.Mode) *wire.Header {
	h := req(op, 1, txn, mode)
	h.Priority = prio
	return h
}

func TestOverflowIsPerBank(t *testing.T) {
	sw := newPrioritySwitch(t)
	// Fill the low-priority bank: 2 slots.
	wantActions(t, do(t, sw, prioReq(wire.OpAcquire, 1, 1, wire.Exclusive)), ActGrant)
	wantActions(t, do(t, sw, prioReq(wire.OpAcquire, 2, 1, wire.Exclusive)))
	// Third low-priority request overflows.
	emits := do(t, sw, prioReq(wire.OpAcquire, 3, 1, wire.Exclusive))
	wantActions(t, emits, ActForwardOverflow)
	st, _ := sw.CtrlLockState(1)
	if !st.Overflow[1] || st.Overflow[0] {
		t.Fatalf("overflow must be per bank: %+v", st.Overflow)
	}
	// High-priority requests are unaffected: they queue in bank 0.
	wantActions(t, do(t, sw, prioReq(wire.OpAcquire, 4, 0, wire.Exclusive)))
	st, _ = sw.CtrlLockState(1)
	if st.Banks[0].Count != 1 {
		t.Fatalf("high-priority bank should queue normally: %+v", st.Banks[0])
	}
}

func TestPerBankPushNotify(t *testing.T) {
	sw := newPrioritySwitch(t)
	do(t, sw, prioReq(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, sw, prioReq(wire.OpAcquire, 2, 1, wire.Exclusive))
	do(t, sw, prioReq(wire.OpAcquire, 3, 1, wire.Exclusive)) // overflow bank 1
	// Also occupy the high-priority bank so its queue stays non-empty.
	do(t, sw, prioReq(wire.OpAcquire, 4, 0, wire.Exclusive))
	// Drain bank 1 completely: its push notification fires even though
	// bank 0 still holds entries.
	do(t, sw, prioReq(wire.OpRelease, 0, 1, wire.Exclusive)) // releases txn1, grants... bank0 head
	emits := do(t, sw, prioReq(wire.OpRelease, 0, 1, wire.Exclusive))
	found := false
	for _, e := range emits {
		if e.Action == ActPushNotify && e.Hdr.Priority == 1 {
			found = true
			if e.Hdr.LeaseNs != 2 {
				t.Fatalf("notify free slots = %d, want 2", e.Hdr.LeaseNs)
			}
		}
	}
	if !found {
		t.Fatalf("per-bank push notify missing: %v", emits)
	}
}

func TestStrandedSweepFindsDrainedOverflowBank(t *testing.T) {
	sw := newPrioritySwitch(t)
	do(t, sw, prioReq(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, sw, prioReq(wire.OpAcquire, 2, 1, wire.Exclusive))
	do(t, sw, prioReq(wire.OpAcquire, 3, 1, wire.Exclusive)) // overflow: ovf[1]=1
	do(t, sw, prioReq(wire.OpRelease, 0, 1, wire.Exclusive))
	do(t, sw, prioReq(wire.OpRelease, 0, 1, wire.Exclusive)) // bank1 drained, notify emitted
	// Suppose that notify was lost: the control sweep re-issues it.
	notifies := sw.CtrlScanStranded()
	if len(notifies) != 1 || notifies[0].Priority != 1 || notifies[0].Op != wire.OpPushNotify {
		t.Fatalf("stranded sweep = %v", notifies)
	}
	if notifies[0].LockID != 1 || notifies[0].LeaseNs != 2 {
		t.Fatalf("stranded notify fields wrong: %v", notifies[0])
	}
	// A lock with no overflow yields nothing.
	sw2 := newPrioritySwitch(t)
	if got := sw2.CtrlScanStranded(); len(got) != 0 {
		t.Fatalf("clean switch should have no stranded banks: %v", got)
	}
}

func TestPriorityGrantSkipsOverflowedLowerBank(t *testing.T) {
	sw := newPrioritySwitch(t)
	// Low bank full and overflowed; high bank has a waiter.
	do(t, sw, prioReq(wire.OpAcquire, 1, 1, wire.Exclusive)) // granted, bank1
	do(t, sw, prioReq(wire.OpAcquire, 2, 1, wire.Exclusive)) // waits, bank1
	do(t, sw, prioReq(wire.OpAcquire, 3, 1, wire.Exclusive)) // overflow
	do(t, sw, prioReq(wire.OpAcquire, 4, 0, wire.Exclusive)) // waits, bank0
	// Release the holder: the high-priority waiter wins over bank1's.
	emits := do(t, sw, prioReq(wire.OpRelease, 0, 1, wire.Exclusive))
	if len(emits) == 0 || emits[0].Action != ActGrant || emits[0].Hdr.TxnID != 4 {
		t.Fatalf("high-priority waiter should win: %v", emits)
	}
}
