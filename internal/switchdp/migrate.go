package switchdp

import (
	"fmt"

	"netlock/internal/sharedqueue"
	"netlock/internal/wire"
)

// Live-migration control operations: export a resident lock's full queue
// state (for a demotion to a lock server) and import one (for a promotion
// from a lock server), both without replaying requests through the grant
// logic. Replay is not an option: grant decisions depend on arrival order
// relative to state that no longer exists (e.g. a high-priority exclusive
// that arrived after a lower-priority shared was granted would be granted
// on replay — a double grant). The queue state is therefore moved
// literally, granted bits included, and the counters are reconstructed
// from it (see sharedqueue.CtrlLoadQueue).

// LockExport is the complete migratable state of one resident lock: the
// per-bank region bounds and the occupied slots of every bank in FIFO
// order, granted prefix first.
type LockExport struct {
	LockID  uint32
	Regions []Region
	// Slots holds each bank's occupied slots head-first. Slot.Granted
	// distinguishes holders from waiters; Slot.LeaseNs is an absolute
	// expiry on the exporter's clock and must be rebased by the importer.
	Slots [][]sharedqueue.Slot
}

// Entries returns the total number of occupied slots across banks.
func (e *LockExport) Entries() int {
	n := 0
	for _, s := range e.Slots {
		n += len(s)
	}
	return n
}

// CtrlExportLock snapshots a resident lock's queue state and evicts the
// lock from the switch in one control-plane step. Unlike CtrlRemoveLock it
// does not require the queues to be drained — the occupied slots ARE the
// export. After it returns, requests for the lock take the not-resident
// path (forwarded to the lock server), so the caller must deliver the
// export to the server before or while those forwards arrive; the server's
// queue-merge dedups the overlap.
func (sw *Switch) CtrlExportLock(lockID uint32) (LockExport, error) {
	qiRaw, ok := sw.lockTable.Lookup(lockID)
	if !ok {
		return LockExport{}, fmt.Errorf("switchdp: lock %d not installed", lockID)
	}
	qi := int(qiRaw)
	ex := LockExport{LockID: lockID}
	for b := range sw.banks {
		st := sw.banks[b].CtrlState(qi)
		ex.Regions = append(ex.Regions, Region{Left: st.Left, Right: st.Right})
		ex.Slots = append(ex.Slots, sw.banks[b].CtrlQueueSlots(qi))
	}
	// Evict: clear every per-lock register so the table entry is clean for
	// the next install, then free the index.
	if err := sw.lockTable.CtrlDel(lockID); err != nil {
		return LockExport{}, err
	}
	for b := range sw.banks {
		sw.banks[b].CtrlSetRegion(qi, 0, 0)
		sw.ovf[b].CtrlWrite(qi, 0)
	}
	sw.hold.CtrlWrite(qi, 0)
	sw.cmax.CtrlWrite(qi, 0)
	sw.reqCounter.CtrlClear(qi)
	sw.lockIDs[qi] = 0
	sw.freeIdx = append(sw.freeIdx, qi)
	return ex, nil
}

// CtrlHasTxn reports whether a resident lock's queues already hold an
// entry for txnID, in any bank, granted or waiting. The chain uses it to
// drop duplicate re-entries: a client retransmit re-forwarded to the lock
// server across a server-to-switch move bounces back here with the
// server's dedup state already exported — without this check the bounce
// would claim a second slot for the same request (a ghost holder whose
// grant is undeliverable and whose release never comes). Pure read of
// replicated state, so every chain member decides identically.
func (sw *Switch) CtrlHasTxn(lockID uint32, txnID uint64) bool {
	if txnID == wire.TxnNone {
		return false
	}
	qiRaw, ok := sw.lockTable.Lookup(lockID)
	if !ok {
		return false
	}
	qi := int(qiRaw)
	for b := range sw.banks {
		for _, s := range sw.banks[b].CtrlQueueSlots(qi) {
			if s.TxnID == txnID {
				return true
			}
		}
	}
	return false
}

// SlotFromEntry converts a migrated acquire-shaped header into the switch's
// queue-slot representation for import into a bank. Note the slot carries no
// client port: grants for migrated entries route through the transport's
// pending table, which is keyed by (lock, txn) and survives the move.
func SlotFromEntry(h wire.Header, lease int64, granted bool, bank int) sharedqueue.Slot {
	return sharedqueue.Slot{
		Exclusive: h.Mode == wire.Exclusive,
		OneRTT:    h.Flags&wire.FlagOneRTT != 0,
		Granted:   granted,
		Tenant:    h.TenantID,
		Priority:  uint8(bank),
		ClientIP:  u32FromIP(&h),
		TxnID:     h.TxnID,
		LeaseNs:   lease,
	}
}

// EntryFromSlot converts a switch queue slot back into the acquire-shaped
// header plus lease and granted flag used by server-side import and the
// migrate wire records.
func EntryFromSlot(lockID uint32, bank int, s sharedqueue.Slot) (wire.Header, int64, bool) {
	h := wire.Header{
		Op:       wire.OpAcquire,
		Mode:     wire.Shared,
		LockID:   lockID,
		TxnID:    s.TxnID,
		ClientIP: ipFromU32(s.ClientIP),
		TenantID: s.Tenant,
		Priority: uint8(bank),
	}
	if s.Exclusive {
		h.Mode = wire.Exclusive
	}
	if s.OneRTT {
		h.Flags = wire.FlagOneRTT
	}
	return h, s.LeaseNs, s.Granted
}

// CtrlImportLock makes a lock switch-resident with pre-existing queue
// state: regions are assigned per bank and slots installed literally
// (granted bits, modes, leases), with occupancy/exclusive/waiting/hold
// counters reconstructed. slots[b] must fit regions[b]; lease expiries
// must already be rebased to this switch's clock by the caller.
func (sw *Switch) CtrlImportLock(lockID uint32, regions []Region, slots [][]sharedqueue.Slot) error {
	if len(slots) != len(sw.banks) {
		return fmt.Errorf("switchdp: got %d slot banks for %d priority banks", len(slots), len(sw.banks))
	}
	for b, r := range regions {
		if uint64(len(slots[b])) > r.Size() {
			return fmt.Errorf("switchdp: bank %d: %d entries exceed region [%d,%d)",
				b, len(slots[b]), r.Left, r.Right)
		}
	}
	if err := sw.CtrlInstallLock(lockID, regions); err != nil {
		return err
	}
	qiRaw, _ := sw.lockTable.Lookup(lockID)
	qi := int(qiRaw)
	var held uint64
	var heldExcl bool
	for b := range sw.banks {
		sw.banks[b].CtrlLoadQueue(qi, regions[b].Left, regions[b].Right, slots[b])
		for _, s := range slots[b] {
			if s.Granted {
				held++
				if s.Exclusive {
					heldExcl = true
				}
			}
		}
	}
	hold := held
	if heldExcl {
		hold |= holdExclBit
	}
	sw.hold.CtrlWrite(qi, hold)
	return nil
}
