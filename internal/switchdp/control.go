package switchdp

import (
	"fmt"

	"netlock/internal/obs"
	"netlock/internal/sharedqueue"
	"netlock/internal/wire"
)

// Control-plane operations (§4.3, §4.5). These run asynchronously to packet
// processing on hardware; in the simulation the caller serializes them with
// ProcessPacket. Errors (not panics) are returned for conditions the memory
// manager handles at runtime: table full, lock missing, queue not drained.

// Region is a [Left, Right) slice of one priority bank's slot space.
type Region struct {
	Left, Right uint64
}

// Size returns the number of slots in the region.
func (r Region) Size() uint64 { return r.Right - r.Left }

// CtrlInstallLock makes a lock switch-resident, assigning it one region per
// priority bank. Every region must be non-empty: a lock resident in the
// switch must be able to queue at least one request per priority, otherwise
// grant decisions would split between switch and servers.
func (sw *Switch) CtrlInstallLock(lockID uint32, regions []Region) error {
	if _, ok := sw.lockTable.Lookup(lockID); ok {
		return fmt.Errorf("switchdp: lock %d already installed", lockID)
	}
	if len(regions) != len(sw.banks) {
		return fmt.Errorf("switchdp: got %d regions for %d priority banks", len(regions), len(sw.banks))
	}
	if len(sw.freeIdx) == 0 {
		return fmt.Errorf("switchdp: lock table full (%d locks)", sw.cfg.MaxLocks)
	}
	for b, r := range regions {
		if r.Right <= r.Left || r.Right > uint64(sw.banks[b].TotalSlots()) {
			return fmt.Errorf("switchdp: bank %d region [%d,%d) invalid (bank has %d slots)",
				b, r.Left, r.Right, sw.banks[b].TotalSlots())
		}
	}
	qi := sw.freeIdx[len(sw.freeIdx)-1]
	sw.freeIdx = sw.freeIdx[:len(sw.freeIdx)-1]
	for b, r := range regions {
		sw.banks[b].CtrlSetRegion(qi, r.Left, r.Right)
		sw.ovf[b].CtrlWrite(qi, 0)
	}
	sw.hold.CtrlWrite(qi, 0)
	sw.cmax.CtrlWrite(qi, 0)
	sw.reqCounter.CtrlClear(qi)
	if err := sw.lockTable.CtrlAdd(lockID, uint32(qi)); err != nil {
		return err
	}
	sw.lockIDs[qi] = lockID
	return nil
}

// CtrlRemoveLock removes a lock from the switch. The lock's queues must be
// drained first (§4.3: NetLock pauses enqueuing and waits until the queue is
// empty to ensure consistency); removal of a non-drained lock is an error.
func (sw *Switch) CtrlRemoveLock(lockID uint32) error {
	qiRaw, ok := sw.lockTable.Lookup(lockID)
	if !ok {
		return fmt.Errorf("switchdp: lock %d not installed", lockID)
	}
	qi := int(qiRaw)
	for b := range sw.banks {
		if st := sw.banks[b].CtrlState(qi); st.Count != 0 {
			return fmt.Errorf("switchdp: lock %d bank %d not drained (%d queued)", lockID, b, st.Count)
		}
	}
	if err := sw.lockTable.CtrlDel(lockID); err != nil {
		return err
	}
	sw.lockIDs[qi] = 0
	sw.freeIdx = append(sw.freeIdx, qi)
	return nil
}

// CtrlHasLock reports whether the lock is switch-resident.
func (sw *Switch) CtrlHasLock(lockID uint32) bool {
	_, ok := sw.lockTable.Lookup(lockID)
	return ok
}

// CtrlResidentLocks returns the IDs of all switch-resident locks.
func (sw *Switch) CtrlResidentLocks() []uint32 {
	return sw.lockTable.CtrlKeys()
}

// CtrlFreeEntries returns the number of free lock-table entries.
func (sw *Switch) CtrlFreeEntries() int { return len(sw.freeIdx) }

// CtrlSlotsInUse returns the number of queue slots currently occupied across
// all resident locks and priority banks — the "slots in use" gauge the
// paper's memory manager sizes regions against.
func (sw *Switch) CtrlSlotsInUse() uint64 {
	var total uint64
	for _, id := range sw.lockTable.CtrlKeys() {
		qiRaw, _ := sw.lockTable.Lookup(id)
		qi := int(qiRaw)
		for b := range sw.banks {
			total += sw.banks[b].CtrlState(qi).Count
		}
	}
	return total
}

// LockState is a control-plane snapshot of one lock.
type LockState struct {
	LockID   uint32
	Held     uint64 // currently granted requests
	HeldExcl bool   // exclusive holder present
	Banks    []sharedqueue.State
	Overflow []bool // per-bank overflow mode
}

// CtrlLockState snapshots a resident lock's registers.
func (sw *Switch) CtrlLockState(lockID uint32) (LockState, error) {
	qiRaw, ok := sw.lockTable.Lookup(lockID)
	if !ok {
		return LockState{}, fmt.Errorf("switchdp: lock %d not installed", lockID)
	}
	qi := int(qiRaw)
	hold := sw.hold.CtrlRead(qi)
	st := LockState{
		LockID:   lockID,
		Held:     hold & holdCountMask,
		HeldExcl: hold&holdExclBit != 0,
	}
	for b := range sw.banks {
		st.Banks = append(st.Banks, sw.banks[b].CtrlState(qi))
		st.Overflow = append(st.Overflow, sw.ovf[b].CtrlRead(qi) != 0)
	}
	return st, nil
}

// LockLoad is one lock's measured workload: request rate numerator and
// observed maximum contention, feeding Algorithm 3.
type LockLoad struct {
	LockID   uint32
	Requests uint64 // acquires since the last measurement window
	MaxQueue uint64 // peak concurrent requests observed (c_i estimate)
}

// CtrlMeasure reads and resets the per-lock workload counters for all
// resident locks, closing a measurement window.
func (sw *Switch) CtrlMeasure() []LockLoad {
	keys := sw.lockTable.CtrlKeys()
	out := make([]LockLoad, 0, len(keys))
	for _, id := range keys {
		qiRaw, _ := sw.lockTable.Lookup(id)
		qi := int(qiRaw)
		out = append(out, LockLoad{
			LockID:   id,
			Requests: sw.reqCounter.CtrlClear(qi),
			MaxQueue: sw.cmax.CtrlRead(qi),
		})
		sw.cmax.CtrlWrite(qi, 0)
	}
	return out
}

// CtrlSetTenantQuota configures the per-tenant meter: sustained requests per
// second plus a burst allowance (§4.4, performance isolation).
func (sw *Switch) CtrlSetTenantQuota(tenant uint8, perSec float64, burst float64) {
	sw.meter.CtrlSetRate(int(tenant), perSec, burst)
}

// CtrlSetMeterBypass disables (on=true) or restores the in-dp per-tenant
// quota check. Chain replication sets it on every chain member so that
// quota decisions — which consult the wall clock and would diverge across
// replicas — are made exactly once, by the head, via CtrlMeterAdmit before
// an acquire is sequenced into the replicated op stream.
func (sw *Switch) CtrlSetMeterBypass(on bool) { sw.meterBypass = on }

// CtrlMeterAdmit runs the per-tenant quota check outside the data plane and
// reports whether the request conforms. It consumes meter tokens; call it
// exactly once per client acquire. Always true when Isolation is off.
func (sw *Switch) CtrlMeterAdmit(tenant uint8) bool {
	if !sw.cfg.Isolation {
		return true
	}
	if sw.meter.Conforming(int(tenant), sw.cfg.Now()) {
		return true
	}
	sw.stats.Rejects++
	return false
}

// CtrlScanExpired implements the lease sweep (§4.5): the control plane polls
// the head slot of every bank of every resident lock and, for granted
// entries whose lease expired before now, synthesizes release packets to
// inject into the data plane. Only granted heads are released: a waiting
// head's lease was stamped on enqueue, and force-releasing it would consume
// a live holder's hold count and dequeue a request that was never granted.
// Granted requests are always their bank's head run (the wait-counter grant
// rule keeps grants a FIFO prefix), so head-of-queue scanning sees every
// holder.
func (sw *Switch) CtrlScanExpired(now int64) []wire.Header {
	var out []wire.Header
	for _, id := range sw.lockTable.CtrlKeys() {
		qiRaw, _ := sw.lockTable.Lookup(id)
		qi := int(qiRaw)
		hold := sw.hold.CtrlRead(qi)
		if hold&holdCountMask == 0 {
			continue
		}
		for b := range sw.banks {
			st := sw.banks[b].CtrlState(qi)
			if st.Count == 0 || st.Capacity() == 0 {
				continue
			}
			g := sharedqueue.SlotIndex(st.Left, st.Capacity(), st.Head)
			s := sw.banks[b].CtrlReadSlot(g)
			if s.Granted && s.LeaseNs != 0 && s.LeaseNs < now {
				sw.stats.ExpiredReleases++
				if o := sw.cfg.Obs; o != nil {
					o.Inc(obs.CtrLeaseExpiries)
					if o.Tracing() {
						o.Trace(obs.TraceEvent{Event: obs.EvLeaseExpiry,
							LockID: id, TxnID: s.TxnID, Tenant: s.Tenant})
					}
				}
				h := wire.Header{
					Op:       wire.OpRelease,
					LockID:   id,
					TxnID:    s.TxnID,
					ClientIP: ipFromU32(s.ClientIP),
					TenantID: s.Tenant,
					Priority: uint8(b),
				}
				if s.Exclusive {
					h.Mode = wire.Exclusive
				}
				out = append(out, h)
			}
		}
	}
	return out
}

// CtrlScanStranded returns PushNotify headers for every resident (lock,
// bank) that is in overflow mode with an empty switch queue. Normally the
// release that drains q1 emits the notification, but packet reordering can
// leave a bank stranded: a clear-overflow message crossing a marked request
// re-arms overflow after the last release has passed. The control plane
// polls for this state and re-issues the notification (§4.5 pattern:
// periodic data-plane polling for stuck state).
func (sw *Switch) CtrlScanStranded() []wire.Header {
	var out []wire.Header
	for _, id := range sw.lockTable.CtrlKeys() {
		qiRaw, _ := sw.lockTable.Lookup(id)
		qi := int(qiRaw)
		for b := range sw.banks {
			if sw.ovf[b].CtrlRead(qi) == 0 {
				continue
			}
			st := sw.banks[b].CtrlState(qi)
			if st.Count != 0 {
				continue
			}
			sw.stats.PushNotifies++
			out = append(out, wire.Header{
				Op:       wire.OpPushNotify,
				LockID:   id,
				Priority: uint8(b),
				LeaseNs:  int64(st.Capacity()),
			})
		}
	}
	return out
}

// CtrlQueuedSlots returns the occupied slots of a resident lock's bank in
// FIFO order, used when draining a lock to move it to a server.
func (sw *Switch) CtrlQueuedSlots(lockID uint32, bank int) ([]sharedqueue.Slot, error) {
	qiRaw, ok := sw.lockTable.Lookup(lockID)
	if !ok {
		return nil, fmt.Errorf("switchdp: lock %d not installed", lockID)
	}
	return sw.banks[bank].CtrlQueueSlots(int(qiRaw)), nil
}

// CtrlReset wipes all switch state: lock table, registers, and statistics.
// This models a switch failure/restart, after which the switch "retains none
// of its former state or register values" (§6.5).
func (sw *Switch) CtrlReset() {
	sw.lockTable.CtrlClear()
	for qi := range sw.lockIDs {
		sw.lockIDs[qi] = 0
	}
	sw.freeIdx = sw.freeIdx[:0]
	for i := sw.cfg.MaxLocks - 1; i >= 0; i-- {
		sw.freeIdx = append(sw.freeIdx, i)
	}
	for b := range sw.banks {
		for qi := 0; qi < sw.cfg.MaxLocks; qi++ {
			sw.banks[b].CtrlSetRegion(qi, 0, 0)
			sw.ovf[b].CtrlWrite(qi, 0)
		}
	}
	for qi := 0; qi < sw.cfg.MaxLocks; qi++ {
		sw.hold.CtrlWrite(qi, 0)
		sw.cmax.CtrlWrite(qi, 0)
		sw.reqCounter.CtrlClear(qi)
	}
	sw.stats = Stats{}
}
