package switchdp

import (
	"reflect"
	"testing"

	"netlock/internal/wire"
)

// TestGrantsStayFifoPrefixOfBank is the regression test for a real bug the
// internal/check harness found in the multi-bank generalization of
// Algorithm 2 (see check.MutIgnoreBankFifo): a shared request used to be
// granted while a waiting entry sat ahead of it in its own bank. The
// head-dequeue release protocol then desynchronized from the granted set —
// the holder's release consumed the waiter's slot (request silently lost)
// and a later grant walk re-granted the holder's slot (duplicate grant to a
// transaction that had already released), leaving a phantom holder. The
// wait-counter grant condition keeps grants a FIFO prefix of every bank, so
// the shortest reproduction now queues at step 7 and drains cleanly.
func TestGrantsStayFifoPrefixOfBank(t *testing.T) {
	sw := New(Config{MaxLocks: 4, TotalSlots: 256 * 4, Priorities: 4})
	regions := make([]Region, 4)
	for b := range regions {
		regions[b] = Region{Left: 0, Right: 256}
	}
	if err := sw.CtrlInstallLock(1, regions); err != nil {
		t.Fatal(err)
	}
	step := func(op wire.Op, txn uint64, mode wire.Mode, prio uint8) []uint64 {
		h := req(op, 1, txn, mode)
		h.Priority = prio
		emits, _ := sw.ProcessPacket(h)
		var grants []uint64
		for _, e := range emits {
			if e.Action == ActGrant {
				grants = append(grants, e.Hdr.TxnID)
			}
		}
		return grants
	}
	steps := []struct {
		op   wire.Op
		txn  uint64
		mode wire.Mode
		prio uint8
		want []uint64
	}{
		{wire.OpAcquire, 1, wire.Shared, 2, []uint64{1}},    // S2 granted
		{wire.OpAcquire, 2, wire.Exclusive, 2, nil},         // X2 waits
		{wire.OpRelease, 0, wire.Shared, 2, []uint64{2}},    // txn1 out, X2 granted
		{wire.OpAcquire, 3, wire.Shared, 0, nil},            // S0 waits behind X holder
		{wire.OpAcquire, 4, wire.Shared, 2, nil},            // S2 waits behind X holder
		{wire.OpRelease, 0, wire.Shared, 2, []uint64{3}},    // txn2 out; walk grants bank 0 only
		{wire.OpAcquire, 5, wire.Shared, 2, nil},            // must wait: txn4 waits ahead in bank 2
		{wire.OpRelease, 0, wire.Shared, 0, []uint64{4, 5}}, // txn3 out; bank 2's run granted together
		{wire.OpRelease, 0, wire.Shared, 2, nil},            // txn4 out, txn5 still holds
		{wire.OpRelease, 0, wire.Shared, 2, nil},            // txn5 out, lock free
	}
	for i, s := range steps {
		got := step(s.op, s.txn, s.mode, s.prio)
		if !reflect.DeepEqual(got, s.want) {
			t.Fatalf("step %d (%v txn=%d prio=%d): grants = %v, want %v",
				i+1, s.op, s.txn, s.prio, got, s.want)
		}
	}
	st, err := sw.CtrlLockState(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Held != 0 || st.HeldExcl {
		t.Fatalf("final hold state = (%d, %v), want (0, false)", st.Held, st.HeldExcl)
	}
	for b, bank := range st.Banks {
		if bank.Count != 0 || bank.Wait != 0 {
			t.Fatalf("bank %d not drained: count=%d wait=%d", b, bank.Count, bank.Wait)
		}
	}
}
