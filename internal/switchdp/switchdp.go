// Package switchdp implements the NetLock switch data-plane program
// (paper §4.1–§4.4): Algorithm 1's request routing, Algorithm 2's
// shared/exclusive grant logic with resubmit (Figure 6), priority queues for
// service differentiation, per-tenant meters for performance isolation, the
// overflow protocol that integrates switch queues (q1) with lock-server
// buffers (q2), and the control-plane operations the memory manager uses to
// install, move, and drain locks.
//
// The program runs on the constrained pipeline model of internal/p4sim: each
// register array is touched at most once per pass, stages are traversed in
// order, and multi-step operations (dequeue-then-inspect-new-head,
// grant-a-run-of-shared-requests) use resubmit, exactly as on the Tofino.
//
// Stage layout (one array set per priority bank, b = bank index):
//
//	stage 0: ovf[b], left[b], right[b]   — overflow-mode bit, region bounds
//	stage 1: count[b]                    — occupancy, conditional inc/dec
//	stage 2: excl[b], wait[b], cmax      — exclusive/waiting counts, contention gauge
//	stage 3: hold                        — packed (grantee count, excl-holder bit)
//	stage 4: head[b]
//	stage 5: tail[b]
//	stage 6+: slot planes[b]             — pooled shared-queue storage
//
// Priority 0 is the highest. The grant rule generalizes Algorithm 2 as §4.4
// describes: a shared request is granted immediately iff no exclusive
// request holds the lock or waits in a same-or-higher-priority queue, AND
// its own bank holds no waiting (never-granted) entry. The second condition
// is implied in Algorithm 2's single queue (a waiting shared always sits
// behind an exclusive there) but not with priority banks: without it a
// shared request can be granted behind a waiter in its own bank, and the
// head-dequeue release protocol then desynchronizes from the granted set —
// the waiter's slot is consumed by the holder's release (the waiter is lost)
// and the walk re-grants the holder's slot (a duplicate grant). The wait[b]
// counter keeps grants a FIFO prefix of every bank.
package switchdp

import (
	"fmt"
	"net/netip"

	"netlock/internal/obs"
	"netlock/internal/p4sim"
	"netlock/internal/sharedqueue"
	"netlock/internal/wire"
)

// Action classifies a packet emitted by the switch.
type Action uint8

const (
	// ActGrant sends a grant notification to the client.
	ActGrant Action = iota + 1
	// ActFetch forwards a grant to the database server holding the item
	// (one-RTT transaction mode).
	ActFetch
	// ActForward forwards a request to its lock server: the lock is not
	// resident in the switch (Algorithm 1, lines 8 and 12).
	ActForward
	// ActForwardOverflow forwards a request to the lock server marked for
	// buffering only: the lock is switch-resident but its queue overflowed
	// (§4.3). The wire header carries FlagOverflow.
	ActForwardOverflow
	// ActReject bounces a request to the client (per-tenant quota exceeded).
	ActReject
	// ActPushNotify asks the lock server to push buffered requests for
	// (lock, priority) into the drained switch queue. LeaseNs carries the
	// number of free slots.
	ActPushNotify
)

var actionNames = map[Action]string{
	ActGrant: "grant", ActFetch: "fetch", ActForward: "forward",
	ActForwardOverflow: "forward-overflow", ActReject: "reject",
	ActPushNotify: "push-notify",
}

// String returns the action name.
func (a Action) String() string {
	if s, ok := actionNames[a]; ok {
		return s
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Emit is one packet produced while processing an input packet. A single
// release can produce several grant emits (exclusive → run of shared).
type Emit struct {
	Action Action
	Hdr    wire.Header
}

// Config sizes the switch program.
type Config struct {
	// MaxLocks bounds the number of locks resident in the switch (lock
	// table and per-lock register entries).
	MaxLocks int
	// TotalSlots is the pooled shared-queue capacity across all priority
	// banks; the prototype uses 100K (§5).
	TotalSlots int
	// Priorities is the number of priority banks (1 = plain FCFS). The
	// paper bounds this by the stage count; we allow up to 8.
	Priorities int
	// Isolation enables per-tenant quota metering (§4.4). Quotas are
	// configured with CtrlSetTenantQuota.
	Isolation bool
	// DefaultLeaseNs is the lease granted when a request does not carry
	// one (§4.5). Zero disables lease stamping.
	DefaultLeaseNs int64
	// Now supplies time in nanoseconds for meters and leases. Required if
	// Isolation or DefaultLeaseNs is set; defaults to a constant zero.
	Now func() int64
	// Obs, when non-nil, receives the switch's counters, per-pass latency
	// samples, and trace events. The switch owns the request/disposition
	// counters (acquires, releases, resubmits, overflows, rejects): the ToR
	// sees every request exactly once.
	Obs *obs.Stripe
}

// DefaultConfig mirrors the prototype: 100K slots, single priority.
func DefaultConfig() Config {
	return Config{MaxLocks: 8192, TotalSlots: 100_000, Priorities: 1}
}

const (
	numSlotStages  = 6 // stages 6..11 hold slot planes
	firstSlotStage = 6
	holdExclBit    = uint64(1) << 63
	holdCountMask  = holdExclBit - 1
)

// Switch is one NetLock switch data plane plus its control-plane state.
// It is not safe for concurrent use: a pipeline processes one packet at a
// time (internal/cluster serializes; internal/transport locks).
type Switch struct {
	cfg   Config
	pipe  *p4sim.Pipeline
	banks []*sharedqueue.Queues
	ovf   []*p4sim.RegisterArray // per bank, indexed by lock index
	hold  *p4sim.RegisterArray
	cmax  *p4sim.RegisterArray

	reqCounter *p4sim.Counter // per-lock acquire count (r_i measurement)
	meter      *p4sim.Meter   // per-tenant quota

	lockTable *p4sim.Table // match-action: lock ID -> lock index
	lockIDs   []uint32     // reverse map, 0 = free entry
	freeIdx   []int

	emits []Emit
	stats Stats

	// meterBypass suppresses the in-dp quota check. Chain replication
	// (internal/transport) sets it on every member: the meter consults the
	// wall clock, so replicas metering independently would diverge; instead
	// the chain head meters once at ingress via CtrlMeterAdmit and rejected
	// requests are never sequenced into the replicated op stream.
	meterBypass bool

	// Per-packet program state, reused across packets so the hot path never
	// allocates: the pipeline processes one packet at a time, and the
	// programs are bound once as method values in New (a per-packet closure
	// would heap-allocate its captures on every request).
	acq     acqPacket
	rel     relPacket
	acqProg p4sim.Program
	relProg p4sim.Program
}

// acqPacket is the PHV metadata of an OpAcquire/OpPush traversal, carried
// across resubmit passes.
type acqPacket struct {
	hdr       wire.Header
	qi        int
	bank      int
	isPush    bool
	finalPush bool
	setOvf    bool
	incWait   bool
}

// relPacket is the PHV metadata of an OpRelease traversal.
type relPacket struct {
	hdr          wire.Header
	qi           int
	bank         int
	phase        int
	releasedExcl bool
	// walk state
	grantBank  int
	left, cap  uint64
	ptr, end   uint64
	pendingInc uint64 // hold adjustment latched for the next pass
	lastWasX   bool
}

// Stats counts processed packets by disposition, for the experiment
// breakdowns (Figure 13a's switch-vs-server split).
type Stats struct {
	Acquires        uint64
	Releases        uint64
	Pushes          uint64
	GrantsImmediate uint64 // granted on arrival
	GrantsQueued    uint64 // granted later, on a release walk
	Queued          uint64 // enqueued to wait
	Forwards        uint64 // lock not in switch
	Overflows       uint64 // switch queue full, buffered at server
	Rejects         uint64 // quota exceeded
	PushNotifies    uint64
	ExpiredReleases uint64
}

// New builds the switch program and its pipeline. It panics on
// configurations that could not load on the target (resource exhaustion).
func New(cfg Config) *Switch {
	if cfg.MaxLocks <= 0 || cfg.TotalSlots <= 0 {
		panic("switchdp: MaxLocks and TotalSlots must be positive")
	}
	if cfg.Priorities <= 0 || cfg.Priorities > 8 {
		panic("switchdp: Priorities must be in [1,8]")
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return 0 }
	}
	P := cfg.Priorities
	bankSlots := cfg.TotalSlots / P
	if bankSlots == 0 {
		panic("switchdp: TotalSlots smaller than Priorities")
	}

	// Compute the per-stage register budget this layout needs, then build
	// the pipeline exactly that large: the simulator's budget check then
	// models the hardware's finite SRAM.
	perBlock := (bankSlots + numSlotStages - 1) / numSlotStages
	need := make([]int, 12)
	need[0] = P * 3 * cfg.MaxLocks            // left, right, ovf
	need[1] = P * cfg.MaxLocks                // count
	need[2] = 2*P*cfg.MaxLocks + cfg.MaxLocks // excl, wait, cmax
	need[3] = cfg.MaxLocks
	need[4] = P * cfg.MaxLocks
	need[5] = P * cfg.MaxLocks
	for s := firstSlotStage; s < firstSlotStage+numSlotStages; s++ {
		need[s] = P * perBlock * 3
	}
	budget := 0
	for _, n := range need {
		if n > budget {
			budget = n
		}
	}
	pipe := p4sim.NewPipeline(p4sim.Config{
		Stages:     12,
		StageSlots: budget,
		// The longest resubmit chain grants a full region of shared
		// requests: bound by the largest possible region plus bookkeeping.
		MaxResubmits: bankSlots + 8,
	})

	sw := &Switch{
		cfg:        cfg,
		pipe:       pipe,
		lockTable:  p4sim.NewTable("lock_table", cfg.MaxLocks),
		lockIDs:    make([]uint32, cfg.MaxLocks),
		hold:       pipe.AllocArray("hold", 3, cfg.MaxLocks),
		cmax:       pipe.AllocArray("cmax", 2, cfg.MaxLocks),
		reqCounter: p4sim.NewCounter("req", cfg.MaxLocks),
		meter:      p4sim.NewMeter("tenant-quota", 256),
	}
	for b := 0; b < P; b++ {
		var specs []sharedqueue.ArraySpec
		rem := bankSlots
		for s := 0; s < numSlotStages && rem > 0; s++ {
			sz := perBlock
			if sz > rem {
				sz = rem
			}
			specs = append(specs, sharedqueue.ArraySpec{Stage: firstSlotStage + s, Size: sz})
			rem -= sz
		}
		sw.banks = append(sw.banks, sharedqueue.New(pipe, sharedqueue.Config{
			Name:      fmt.Sprintf("bank%d", b),
			MaxQueues: cfg.MaxLocks,
			Meta:      sharedqueue.MetaStages{Bounds: 0, Count: 1, Excl: 2, Wait: 2, Head: 4, Tail: 5},
			Slots:     specs,
		}))
		sw.ovf = append(sw.ovf, pipe.AllocArray(fmt.Sprintf("bank%d.ovf", b), 0, cfg.MaxLocks))
	}
	for i := cfg.MaxLocks - 1; i >= 0; i-- {
		sw.freeIdx = append(sw.freeIdx, i)
	}
	sw.acqProg = sw.acqPass
	sw.relProg = sw.relPass
	return sw
}

// Config returns the switch configuration.
func (sw *Switch) Config() Config { return sw.cfg }

// Stats returns a snapshot of the processing counters.
func (sw *Switch) Stats() Stats { return sw.stats }

// Pipeline exposes the underlying pipeline for pass/packet accounting.
func (sw *Switch) Pipeline() *p4sim.Pipeline { return sw.pipe }

// BankSlots returns the slot capacity of each priority bank.
func (sw *Switch) BankSlots() int { return sw.banks[0].TotalSlots() }

// Banks returns the number of priority banks.
func (sw *Switch) Banks() int { return len(sw.banks) }

// bankFor clamps a wire priority to a bank index.
func (sw *Switch) bankFor(prio uint8) int {
	if int(prio) >= len(sw.banks) {
		return len(sw.banks) - 1
	}
	return int(prio)
}

// ProcessPacket runs one NetLock packet through the data plane and returns
// the emitted packets plus the number of pipeline passes consumed (resubmit
// accounting; the testbed charges switch service time per pass). The
// returned slice is valid until the next call.
func (sw *Switch) ProcessPacket(h *wire.Header) ([]Emit, int) {
	o := sw.cfg.Obs
	if o == nil {
		return sw.processPacket(h)
	}
	if o.Tracing() {
		o.Trace(obs.TraceEvent{Event: obs.EvPacketIn, LockID: h.LockID,
			TxnID: h.TxnID, Tenant: h.TenantID, Arg: int64(h.Op)})
	}
	start := obs.Now()
	emits, passes := sw.processPacket(h)
	ns := obs.Since(start)
	o.Observe(obs.StageSwitchPass, ns)
	switch h.Op {
	case wire.OpAcquire:
		o.Inc(obs.CtrAcquires)
	case wire.OpRelease:
		o.Inc(obs.CtrReleases)
	}
	if passes > 1 {
		o.Add(obs.CtrResubmits, uint64(passes-1))
	}
	if o.Tracing() {
		o.Trace(obs.TraceEvent{Event: obs.EvSwitchPass, LockID: h.LockID,
			TxnID: h.TxnID, Tenant: h.TenantID, Arg: ns})
		if passes > 1 {
			o.Trace(obs.TraceEvent{Event: obs.EvResubmit, LockID: h.LockID,
				TxnID: h.TxnID, Tenant: h.TenantID, Arg: int64(passes - 1)})
		}
		if h.Op == wire.OpRelease {
			o.Trace(obs.TraceEvent{Event: obs.EvRelease, LockID: h.LockID,
				TxnID: h.TxnID, Tenant: h.TenantID})
		}
	}
	return emits, passes
}

// processPacket is the uninstrumented data-plane dispatch.
func (sw *Switch) processPacket(h *wire.Header) ([]Emit, int) {
	sw.emits = sw.emits[:0]
	switch h.Op {
	case wire.OpAcquire:
		sw.stats.Acquires++
		// The quota meter sits at ingress: the ToR sees every request, so
		// isolation applies whether the lock is switch- or server-resident.
		if sw.cfg.Isolation && !sw.meterBypass && !sw.meter.Conforming(int(h.TenantID), sw.cfg.Now()) {
			sw.stats.Rejects++
			rej := *h
			rej.Op = wire.OpReject
			sw.emit(ActReject, rej)
			return sw.emits, 0
		}
		qiRaw, ok := sw.lockTable.Lookup(h.LockID)
		qi := int(qiRaw)
		if !ok {
			sw.stats.Forwards++
			sw.emit(ActForward, *h)
			return sw.emits, 0
		}
		sw.reqCounter.Inc(qi, 1)
		sw.acq = acqPacket{hdr: *h, qi: qi, bank: sw.bankFor(h.Priority)}
		passes := sw.pipe.Process(sw.acqProg)
		return sw.emits, passes
	case wire.OpPush:
		sw.stats.Pushes++
		qiRaw, ok := sw.lockTable.Lookup(h.LockID)
		qi := int(qiRaw)
		if !ok {
			// The lock moved off the switch between notify and push; send
			// it back as a plain request for the server to process.
			sw.stats.Forwards++
			fwd := *h
			fwd.Op = wire.OpAcquire
			fwd.Flags &^= wire.FlagOverflow
			sw.emit(ActForward, fwd)
			return sw.emits, 0
		}
		sw.acq = acqPacket{
			hdr: *h, qi: qi, bank: sw.bankFor(h.Priority),
			isPush:    true,
			finalPush: h.Flags&wire.FlagOverflow != 0,
		}
		passes := sw.pipe.Process(sw.acqProg)
		return sw.emits, passes
	case wire.OpRelease:
		sw.stats.Releases++
		qiRaw, ok := sw.lockTable.Lookup(h.LockID)
		qi := int(qiRaw)
		if !ok {
			sw.stats.Forwards++
			sw.emit(ActForward, *h)
			return sw.emits, 0
		}
		sw.rel = relPacket{hdr: *h, qi: qi, bank: sw.bankFor(h.Priority)}
		passes := sw.pipe.Process(sw.relProg)
		return sw.emits, passes
	default:
		// Non-request NetLock packets (grants in flight, etc.) are routed,
		// not processed.
		sw.emit(ActForward, *h)
		return sw.emits, 0
	}
}

func (sw *Switch) emit(a Action, h wire.Header) {
	if o := sw.cfg.Obs; o != nil {
		switch a {
		case ActGrant, ActFetch:
			o.Inc(obs.CtrGrants)
			o.TenantGrant(h.TenantID)
			if o.Tracing() {
				o.Trace(obs.TraceEvent{Event: obs.EvGrant, LockID: h.LockID,
					TxnID: h.TxnID, Tenant: h.TenantID})
			}
		case ActForwardOverflow:
			o.Inc(obs.CtrOverflows)
			if o.Tracing() {
				o.Trace(obs.TraceEvent{Event: obs.EvOverflow, LockID: h.LockID,
					TxnID: h.TxnID, Tenant: h.TenantID})
			}
		case ActReject:
			o.Inc(obs.CtrRejects)
		}
	}
	sw.emits = append(sw.emits, Emit{Action: a, Hdr: h})
}

// grantHdr builds the grant (or one-RTT fetch) emit for a queued slot.
func (sw *Switch) grantQueuedSlot(lockID uint32, bank int, s sharedqueue.Slot) {
	h := wire.Header{
		Mode:     wire.Shared,
		LockID:   lockID,
		TxnID:    s.TxnID,
		ClientIP: ipFromU32(s.ClientIP),
		TenantID: s.Tenant,
		Priority: uint8(bank),
		LeaseNs:  s.LeaseNs,
	}
	if s.Exclusive {
		h.Mode = wire.Exclusive
	}
	if s.OneRTT {
		h.Op = wire.OpFetch
		h.Flags = wire.FlagOneRTT
		sw.stats.GrantsQueued++
		sw.emit(ActFetch, h)
		return
	}
	h.Op = wire.OpGrant
	sw.stats.GrantsQueued++
	sw.emit(ActGrant, h)
}

// acqPass is the data-plane program for OpAcquire and OpPush packets,
// operating on the sw.acq state set up by ProcessPacket. Pass 0 performs the
// enqueue and immediate-grant decision; a second pass latches the
// overflow-mode bit when the region is full, or increments the bank's
// waiting counter when the request was enqueued without a grant (the wait
// register was already read this pass to feed the grant decision, so the
// increment needs its own crossing).
func (sw *Switch) acqPass(c *p4sim.Ctx) {
	m := &sw.acq
	h := &m.hdr
	qi, b := m.qi, m.bank
	q := sw.banks[b]
	if m.incWait {
		// Second pass: the request is queued waiting.
		q.IncWait(c, qi)
		return
	}
	if m.setOvf {
		// Second pass: latch overflow mode for this (lock, bank). A
		// full push (bounced or racing the clear) takes the same path:
		// the request returns to the server overflow-marked and the
		// server buffers it again.
		sw.ovf[b].Write(c, qi, 1)
		sw.stats.Overflows++
		fwd := *h
		fwd.Op = wire.OpAcquire
		fwd.Flags |= wire.FlagOverflow
		sw.emit(ActForwardOverflow, fwd)
		return
	}

	// Stage 0: overflow gate and region bounds.
	var ovf uint64
	if m.finalPush {
		// The server drained q2; this push also clears overflow mode.
		sw.ovf[b].Write(c, qi, 0)
		if h.TxnID == wire.TxnNone {
			return // pure clear-overflow control message
		}
	} else {
		ovf = sw.ovf[b].Read(c, qi)
	}
	if ovf != 0 && !m.isPush {
		// Overflow mode: preserve FIFO by buffering at the server.
		sw.stats.Overflows++
		fwd := *h
		fwd.Flags |= wire.FlagOverflow
		sw.emit(ActForwardOverflow, fwd)
		return
	}
	left, right := q.Bounds(c, qi)

	// Stage 1: claim a slot if the region has space.
	oldCount, won := q.CondIncCount(c, qi, right-left)
	if !won {
		m.setOvf = true
		c.Resubmit()
		return
	}

	// Stage 2: exclusive counters — RMW our bank, read higher banks —
	// and the contention gauge.
	excl := h.Mode == wire.Exclusive
	var nexclSameOrHigher uint64
	for hb := 0; hb < b; hb++ {
		nexclSameOrHigher += sw.banks[hb].ReadExcl(c, qi)
	}
	if excl {
		nexclSameOrHigher += q.IncExcl(c, qi)
	} else {
		nexclSameOrHigher += q.ReadExcl(c, qi)
	}
	nwait := q.ReadWait(c, qi)
	sw.cmax.ReadModifyWrite(c, qi, func(old uint64) uint64 {
		if oldCount+1 > old {
			return oldCount + 1
		}
		return old
	})

	// Stage 3: grant decision on the packed hold register.
	lease := h.LeaseNs
	if lease == 0 && sw.cfg.DefaultLeaseNs != 0 {
		lease = sw.cfg.Now() + sw.cfg.DefaultLeaseNs
	} else if lease != 0 {
		lease = sw.cfg.Now() + lease
	}
	granted := false
	sw.hold.ReadModifyWrite(c, qi, func(old uint64) uint64 {
		heldCnt := old & holdCountMask
		heldExcl := old&holdExclBit != 0
		switch {
		case heldCnt == 0:
			granted = true
			if excl {
				return 1 | holdExclBit
			}
			return 1
		case !heldExcl && !excl && nexclSameOrHigher == 0 && nwait == 0:
			granted = true
			return old + 1
		default:
			return old
		}
	})

	// Stages 4–5: advance tail; stages 6+: store the slot. The entry
	// stays queued until its release even when granted immediately.
	ctr := q.IncTail(c, qi)
	slot := sharedqueue.Slot{
		Exclusive: excl,
		OneRTT:    h.Flags&wire.FlagOneRTT != 0,
		Granted:   granted,
		Tenant:    h.TenantID,
		Priority:  uint8(b),
		ClientIP:  u32FromIP(h),
		TxnID:     h.TxnID,
		LeaseNs:   lease,
	}
	q.WriteSlot(c, sharedqueue.SlotIndex(left, right-left, ctr), slot)

	if granted {
		sw.stats.GrantsImmediate++
		g := *h
		g.LeaseNs = lease
		if slot.OneRTT {
			g.Op = wire.OpFetch
			sw.emit(ActFetch, g)
		} else {
			g.Op = wire.OpGrant
			sw.emit(ActGrant, g)
		}
	} else {
		sw.stats.Queued++
		m.incWait = true
		c.Resubmit()
	}
}

// relPass is the data-plane program for OpRelease packets, operating on the
// sw.rel state set up by ProcessPacket and covering the four cases of
// Figure 6 via resubmit:
//
//	pass 0: dequeue the head of the releasing request's bank, learn its mode
//	pass 1: update hold; if the lock became free, locate the
//	        highest-priority non-empty bank and grant its head (start of the
//	        shared run if the head is shared)
//	pass 2+: continue granting the run of shared requests, one per pass
func (sw *Switch) relPass(c *p4sim.Ctx) {
	m := &sw.rel
	h := &m.hdr
	qi, p := m.qi, m.bank
	switch m.phase {
	case 0:
		// Dequeue the head of bank p. The switch does not match the
		// transaction ID: only the head can be released, and shared
		// releases are commutative (§4.2).
		q := sw.banks[p]
		l, r := q.Bounds(c, qi)
		_, ok := q.CondDecCount(c, qi)
		if !ok {
			// Spurious release (duplicate, or raced with a reset).
			return
		}
		ctr := q.IncHead(c, qi)
		s := q.ReadSlot(c, sharedqueue.SlotIndex(l, r-l, ctr))
		m.releasedExcl = s.Exclusive
		m.phase = 1
		c.Resubmit()
	case 1:
		// Learn the remaining queue population, adjust hold, and start
		// the grant walk if the lock became free. All stage-0 bounds
		// are read up front (parallel arrays, one access each).
		ovf := sw.ovf[p].Read(c, qi)
		var lefts, rights [8]uint64
		for b := range sw.banks {
			lefts[b], rights[b] = sw.banks[b].Bounds(c, qi)
		}
		var counts [8]uint64
		grantBank := -1
		for b := range sw.banks {
			counts[b] = sw.banks[b].ReadCount(c, qi)
			if counts[b] > 0 && grantBank < 0 {
				grantBank = b
			}
		}
		if m.releasedExcl {
			sw.banks[p].DecExcl(c, qi)
		}
		var newHeld uint64
		sw.hold.ReadModifyWrite(c, qi, func(old uint64) uint64 {
			cnt := old & holdCountMask
			if cnt > 0 {
				cnt--
			}
			newHeld = cnt
			if cnt == 0 {
				return 0 // clears the exclusive-holder bit
			}
			return old&holdExclBit | cnt
		})
		if counts[p] == 0 && ovf != 0 {
			// q1 drained for this (lock, bank): ask the server to push
			// buffered requests (§4.3).
			sw.stats.PushNotifies++
			n := *h
			n.Op = wire.OpPushNotify
			n.Priority = uint8(p)
			n.LeaseNs = int64(rights[p] - lefts[p]) // free slots: queue is empty
			sw.emit(ActPushNotify, n)
		}
		if newHeld > 0 || grantBank < 0 {
			return // remaining shared holders, or nothing waiting
		}
		// Lock is free: grant the head of the highest-priority
		// non-empty bank.
		gq := sw.banks[grantBank]
		gl, gr := lefts[grantBank], rights[grantBank]
		head := gq.ReadHead(c, qi)
		s := gq.ReadSlotMarkGranted(c, sharedqueue.SlotIndex(gl, gr-gl, head), false)
		m.grantBank = grantBank
		m.left, m.cap = gl, gr-gl
		m.ptr, m.end = head, head+counts[grantBank]
		sw.grantQueuedSlot(h.LockID, grantBank, s)
		if s.Exclusive {
			m.pendingInc = 1 | holdExclBit
			m.lastWasX = true
		} else {
			m.pendingInc = 1
			m.ptr++
		}
		m.phase = 2
		c.Resubmit()
	default:
		// Walk pass: account the previous pass's grant (waiting counter
		// at stage 2, hold at stage 3), then continue the shared run if
		// it extends.
		inc := m.pendingInc
		m.pendingInc = 0
		gq := sw.banks[m.grantBank]
		if inc != 0 {
			gq.DecWait(c, qi)
		}
		sw.hold.ReadModifyWrite(c, qi, func(old uint64) uint64 {
			return old + inc
		})
		if m.lastWasX || m.ptr >= m.end {
			return
		}
		s := gq.ReadSlotMarkGranted(c, sharedqueue.SlotIndex(m.left, m.cap, m.ptr), true)
		if s.Exclusive {
			return // run of shared requests ended
		}
		sw.grantQueuedSlot(h.LockID, m.grantBank, s)
		m.pendingInc = 1
		m.ptr++
		c.Resubmit()
	}
}

func ipFromU32(ip uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)})
}

func u32FromIP(h *wire.Header) uint32 {
	if !h.ClientIP.Is4() {
		return 0
	}
	a := h.ClientIP.As4()
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}
