package rdma

import (
	"testing"

	"netlock/internal/eventsim"
)

func TestMemoryLocalAccess(t *testing.T) {
	m := NewMemory(4)
	if m.Size() != 4 {
		t.Fatalf("size = %d", m.Size())
	}
	m.Store(2, 99)
	if m.Load(2) != 99 {
		t.Fatalf("load = %d", m.Load(2))
	}
}

func TestMemoryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewMemory(0)
}

func TestFetchAdd(t *testing.T) {
	var eng eventsim.Engine
	nic := NewNIC(&eng, Config{AtomicNs: 100, ReadWriteNs: 10})
	mem := NewMemory(1)
	var olds []uint64
	nic.FetchAdd(mem, 0, 5, func(old uint64) { olds = append(olds, old) })
	nic.FetchAdd(mem, 0, 5, func(old uint64) { olds = append(olds, old) })
	eng.Run()
	if len(olds) != 2 || olds[0] != 0 || olds[1] != 5 {
		t.Fatalf("olds = %v", olds)
	}
	if mem.Load(0) != 10 {
		t.Fatalf("final = %d", mem.Load(0))
	}
	// Atomics serialize at 100ns each.
	if eng.Now() != 200 {
		t.Fatalf("completion time = %d, want 200", eng.Now())
	}
}

func TestCompareSwap(t *testing.T) {
	var eng eventsim.Engine
	nic := NewNIC(&eng, DefaultConfig())
	mem := NewMemory(1)
	var results []bool
	nic.CompareSwap(mem, 0, 0, 42, func(_ uint64, ok bool) { results = append(results, ok) })
	nic.CompareSwap(mem, 0, 0, 43, func(_ uint64, ok bool) { results = append(results, ok) })
	nic.CompareSwap(mem, 0, 42, 44, func(_ uint64, ok bool) { results = append(results, ok) })
	eng.Run()
	if len(results) != 3 || !results[0] || results[1] || !results[2] {
		t.Fatalf("CAS results = %v", results)
	}
	if mem.Load(0) != 44 {
		t.Fatalf("final = %d", mem.Load(0))
	}
}

func TestReadWrite(t *testing.T) {
	var eng eventsim.Engine
	nic := NewNIC(&eng, DefaultConfig())
	mem := NewMemory(2)
	var got uint64
	nic.Write(mem, 1, 7, func() {})
	nic.Read(mem, 1, func(v uint64) { got = v })
	eng.Run()
	if got != 7 {
		t.Fatalf("read = %d", got)
	}
	st := nic.Stats()
	if st.ReadWrites != 2 || st.Atomics != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAtomicAndRWIndependentStations(t *testing.T) {
	var eng eventsim.Engine
	nic := NewNIC(&eng, Config{AtomicNs: 1000, ReadWriteNs: 10})
	mem := NewMemory(1)
	var readAt, faAt int64
	nic.FetchAdd(mem, 0, 1, func(uint64) { faAt = eng.Now() })
	nic.Read(mem, 0, func(uint64) { readAt = eng.Now() })
	eng.Run()
	if readAt != 10 || faAt != 1000 {
		t.Fatalf("read at %d (want 10), FA at %d (want 1000)", readAt, faAt)
	}
}

func TestBacklog(t *testing.T) {
	var eng eventsim.Engine
	nic := NewNIC(&eng, Config{AtomicNs: 100, ReadWriteNs: 10})
	mem := NewMemory(1)
	for i := 0; i < 5; i++ {
		nic.FetchAdd(mem, 0, 1, func(uint64) {})
	}
	if nic.Backlog() != 500 {
		t.Fatalf("backlog = %d, want 500", nic.Backlog())
	}
	eng.Run()
	if nic.Backlog() != 0 {
		t.Fatalf("backlog after drain = %d", nic.Backlog())
	}
}

func TestNICConfigValidation(t *testing.T) {
	var eng eventsim.Engine
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewNIC(&eng, Config{AtomicNs: -1})
}
