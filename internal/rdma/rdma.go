// Package rdma emulates the one-sided RDMA verbs that decentralized lock
// managers (DSLR, DrTM — paper §2.1, §6.1) are built on: READ, WRITE,
// FETCH_ADD and COMPARE_SWAP against registered memory at a lock server,
// executed by the server's NIC without involving its CPU.
//
// The emulation preserves the two properties that matter for the
// comparison:
//
//   - Verbs are atomic at word granularity and executed in arrival order by
//     the NIC; the server CPU is never involved (the decentralized
//     advantage).
//   - The NIC is a finite resource. Atomic verbs (FA/CAS) serialize in the
//     NIC's processing units — on ConnectX-3-class hardware they sustain
//     only a few million operations per second, far below line rate — and
//     this NIC-bound ceiling is exactly why a line-rate switch outruns
//     RDMA-based designs (§2.2).
//
// Propagation delay is the caller's concern (internal/cluster adds the
// in-rack RTT); the NIC models queueing and service only.
package rdma

import "netlock/internal/eventsim"

// Memory is a registered memory region of 64-bit words, as exposed to
// remote NICs by a lock server. Dense regions back small lock tables with a
// flat slice; sparse regions back huge, mostly-untouched ID spaces (TPC-C's
// 32-bit lock IDs) with a map, allocating words on first touch.
type Memory struct {
	words  []uint64
	sparse map[int]uint64
}

// NewMemory allocates a dense region with n words.
func NewMemory(n int) *Memory {
	if n <= 0 {
		panic("rdma: non-positive memory size")
	}
	return &Memory{words: make([]uint64, n)}
}

// NewSparseMemory allocates an unbounded region backed by a map; untouched
// words read as zero, exactly like freshly registered memory.
func NewSparseMemory() *Memory {
	return &Memory{sparse: make(map[int]uint64)}
}

// Size returns the number of words of a dense region, or the number of
// touched words of a sparse one.
func (m *Memory) Size() int {
	if m.sparse != nil {
		return len(m.sparse)
	}
	return len(m.words)
}

// Load reads a word locally (server-side access, no NIC involved).
func (m *Memory) Load(idx int) uint64 {
	if m.sparse != nil {
		return m.sparse[idx]
	}
	return m.words[idx]
}

// Store writes a word locally.
func (m *Memory) Store(idx int, v uint64) {
	if m.sparse != nil {
		m.sparse[idx] = v
		return
	}
	m.words[idx] = v
}

// Config sets a NIC's service rates.
type Config struct {
	// AtomicNs is the service time of one FA/CAS. ConnectX-3-class NICs
	// sustain roughly 2.7M atomics/s on a contended address: ~370ns.
	AtomicNs int64
	// ReadWriteNs is the service time of one small READ/WRITE. Small reads
	// sustain ~10M+ ops/s: ~90ns.
	ReadWriteNs int64
}

// DefaultConfig models a Mellanox ConnectX-3 (the paper's CloudLab setup).
func DefaultConfig() Config {
	return Config{AtomicNs: 370, ReadWriteNs: 90}
}

// NIC emulates one RDMA NIC at a lock server. Verbs complete asynchronously
// on the NIC's virtual-time stations; callbacks run at completion time.
type NIC struct {
	eng     *eventsim.Engine
	atomics *eventsim.Station
	rw      *eventsim.Station
	stats   Stats
}

// Stats counts verb executions.
type Stats struct {
	Atomics    uint64
	ReadWrites uint64
}

// NewNIC creates a NIC on the engine.
func NewNIC(eng *eventsim.Engine, cfg Config) *NIC {
	if cfg.AtomicNs < 0 || cfg.ReadWriteNs < 0 {
		panic("rdma: negative service time")
	}
	return &NIC{
		eng:     eng,
		atomics: eventsim.NewStation(eng, cfg.AtomicNs),
		rw:      eventsim.NewStation(eng, cfg.ReadWriteNs),
	}
}

// Stats returns a snapshot of the verb counters.
func (n *NIC) Stats() Stats { return n.stats }

// Backlog returns how far the atomic unit's committed work extends beyond
// the current virtual time (queueing delay for the next atomic).
func (n *NIC) Backlog() int64 { return n.atomics.Backlog() }

// FetchAdd executes an atomic fetch-and-add on mem[idx], invoking cb with
// the previous value at completion.
func (n *NIC) FetchAdd(mem *Memory, idx int, delta uint64, cb func(old uint64)) {
	n.stats.Atomics++
	n.atomics.Submit(func() {
		old := mem.Load(idx)
		mem.Store(idx, old+delta)
		cb(old)
	})
}

// CompareSwap executes an atomic compare-and-swap on mem[idx], invoking cb
// with the previous value and whether the swap happened.
func (n *NIC) CompareSwap(mem *Memory, idx int, expect, newVal uint64, cb func(old uint64, swapped bool)) {
	n.stats.Atomics++
	n.atomics.Submit(func() {
		old := mem.Load(idx)
		if old == expect {
			mem.Store(idx, newVal)
			cb(old, true)
			return
		}
		cb(old, false)
	})
}

// Read executes a one-word RDMA READ, invoking cb with the value.
func (n *NIC) Read(mem *Memory, idx int, cb func(val uint64)) {
	n.stats.ReadWrites++
	n.rw.Submit(func() { cb(mem.Load(idx)) })
}

// Write executes a one-word RDMA WRITE, invoking cb at completion.
func (n *NIC) Write(mem *Memory, idx int, val uint64, cb func()) {
	n.stats.ReadWrites++
	n.rw.Submit(func() {
		mem.Store(idx, val)
		cb()
	})
}
