package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netlock/internal/check"
)

func TestRegionAllocFirstFit(t *testing.T) {
	a := newRegionAllocator(100)
	iv1, ok := a.alloc(30)
	if !ok || iv1 != (interval{0, 30}) {
		t.Fatalf("alloc = %v %v", iv1, ok)
	}
	iv2, ok := a.alloc(70)
	if !ok || iv2 != (interval{30, 100}) {
		t.Fatalf("alloc = %v %v", iv2, ok)
	}
	if _, ok := a.alloc(1); ok {
		t.Fatalf("allocation from empty space should fail")
	}
	if a.freeSlots() != 0 {
		t.Fatalf("free = %d", a.freeSlots())
	}
}

func TestRegionReleaseCoalesces(t *testing.T) {
	a := newRegionAllocator(100)
	iv1, _ := a.alloc(30)
	iv2, _ := a.alloc(30)
	iv3, _ := a.alloc(40)
	a.release(iv1)
	a.release(iv3)
	if a.largestFree() != 40 {
		t.Fatalf("largest free = %d, want 40", a.largestFree())
	}
	a.release(iv2) // bridges both free blocks
	if a.largestFree() != 100 || len(a.free) != 1 {
		t.Fatalf("coalescing failed: %v", a.free)
	}
}

func TestRegionDoubleFreePanics(t *testing.T) {
	a := newRegionAllocator(100)
	iv, _ := a.alloc(10)
	a.release(iv)
	defer func() {
		if recover() == nil {
			t.Fatalf("double free should panic")
		}
	}()
	a.release(iv)
}

func TestRegionInvalidFreePanics(t *testing.T) {
	a := newRegionAllocator(100)
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid free should panic")
		}
	}()
	a.release(interval{50, 200})
}

func TestRegionFragmentationMetric(t *testing.T) {
	a := newRegionAllocator(100)
	if a.fragmentation() != 0 {
		t.Fatalf("fresh allocator fragmentation = %f", a.fragmentation())
	}
	// Create a checkerboard: alloc 10x10, free every other one.
	var ivs []interval
	for i := 0; i < 10; i++ {
		iv, _ := a.alloc(10)
		ivs = append(ivs, iv)
	}
	for i := 0; i < 10; i += 2 {
		a.release(ivs[i])
	}
	f := a.fragmentation()
	if f <= 0.7 {
		t.Fatalf("checkerboard fragmentation = %f, want > 0.7", f)
	}
	a.reset()
	if a.fragmentation() != 0 || a.freeSlots() != 100 {
		t.Fatalf("reset failed: frag=%f free=%d", a.fragmentation(), a.freeSlots())
	}
}

func TestRegionZeroAllocPanics(t *testing.T) {
	a := newRegionAllocator(10)
	defer func() {
		if recover() == nil {
			t.Fatalf("zero alloc should panic")
		}
	}()
	a.alloc(0)
}

func TestNewRegionAllocatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("zero size should panic")
		}
	}()
	newRegionAllocator(0)
}

// Property: after any interleaving of allocs and frees, the free list is
// sorted, non-overlapping, coalesced, and accounts for exactly the
// unallocated space.
func TestRegionAllocatorInvariantProperty(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := newRegionAllocator(256)
		var live []interval
		allocated := uint64(0)
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				n := uint64(op%32) + 1
				if iv, ok := a.alloc(n); ok {
					live = append(live, iv)
					allocated += n
				}
			} else {
				i := rng.Intn(len(live))
				iv := live[i]
				live = append(live[:i], live[i+1:]...)
				a.release(iv)
				allocated -= iv.Right - iv.Left
			}
			// Invariants.
			if a.freeSlots() != 256-allocated {
				return false
			}
			for j := 1; j < len(a.free); j++ {
				if a.free[j-1].Right >= a.free[j].Left {
					return false // unsorted, overlapping, or uncoalesced
				}
			}
		}
		return true
	}
	for _, seed := range check.SeedsN(3) {
		cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(seed))}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("%v\nreproduce with: go test -run %s %s", err, t.Name(), check.ReplayArgs(seed))
		}
	}
}
