package core

import (
	"fmt"
	"sort"
)

// regionAllocator manages one priority bank's slot space as a set of free
// intervals, supporting first-fit allocation, freeing, and the periodic
// compaction the paper calls out ("the memory layout on the switch is
// periodically reorganized to alleviate memory fragmentation", §4.3).
type regionAllocator struct {
	size uint64
	free []interval // sorted by Left, non-overlapping, coalesced
}

type interval struct{ Left, Right uint64 }

func newRegionAllocator(size uint64) *regionAllocator {
	if size == 0 {
		panic("core: zero-size region allocator")
	}
	return &regionAllocator{size: size, free: []interval{{0, size}}}
}

// alloc claims a contiguous region of n slots, first-fit.
func (a *regionAllocator) alloc(n uint64) (interval, bool) {
	if n == 0 {
		panic("core: zero-size allocation")
	}
	for i, iv := range a.free {
		if iv.Right-iv.Left >= n {
			out := interval{iv.Left, iv.Left + n}
			if iv.Right-iv.Left == n {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i].Left += n
			}
			return out, true
		}
	}
	return interval{}, false
}

// release returns a region to the free list, coalescing neighbors.
func (a *regionAllocator) release(iv interval) {
	if iv.Right <= iv.Left || iv.Right > a.size {
		panic(fmt.Sprintf("core: releasing invalid region [%d,%d)", iv.Left, iv.Right))
	}
	i := sort.Search(len(a.free), func(j int) bool { return a.free[j].Left >= iv.Left })
	// Guard against double-free / overlap.
	if i > 0 && a.free[i-1].Right > iv.Left {
		panic(fmt.Sprintf("core: double free of region [%d,%d)", iv.Left, iv.Right))
	}
	if i < len(a.free) && a.free[i].Left < iv.Right {
		panic(fmt.Sprintf("core: double free of region [%d,%d)", iv.Left, iv.Right))
	}
	a.free = append(a.free, interval{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = iv
	// Coalesce with neighbors.
	if i+1 < len(a.free) && a.free[i].Right == a.free[i+1].Left {
		a.free[i].Right = a.free[i+1].Right
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].Right == a.free[i].Left {
		a.free[i-1].Right = a.free[i].Right
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// freeSlots returns the total free capacity.
func (a *regionAllocator) freeSlots() uint64 {
	var sum uint64
	for _, iv := range a.free {
		sum += iv.Right - iv.Left
	}
	return sum
}

// largestFree returns the largest contiguous free region.
func (a *regionAllocator) largestFree() uint64 {
	var best uint64
	for _, iv := range a.free {
		if iv.Right-iv.Left > best {
			best = iv.Right - iv.Left
		}
	}
	return best
}

// fragmentation is 1 - largestFree/freeSlots: 0 when all free space is one
// block, approaching 1 as free space shatters.
func (a *regionAllocator) fragmentation() float64 {
	total := a.freeSlots()
	if total == 0 {
		return 0
	}
	return 1 - float64(a.largestFree())/float64(total)
}

// reset reclaims the whole space as one free block.
func (a *regionAllocator) reset() {
	a.free = a.free[:1]
	a.free[0] = interval{0, a.size}
}
