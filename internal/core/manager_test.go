package core

import (
	"net/netip"
	"testing"

	"netlock/internal/memalloc"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

func newManager(servers int) *Manager {
	return New(Config{
		Switch:  switchdp.Config{MaxLocks: 64, TotalSlots: 128, Priorities: 1},
		Servers: servers,
	})
}

func acq(lockID uint32, txn uint64) *wire.Header {
	return &wire.Header{
		Op:       wire.OpAcquire,
		Mode:     wire.Exclusive,
		LockID:   lockID,
		TxnID:    txn,
		ClientIP: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
	}
}

func rel(lockID uint32, txn uint64) *wire.Header {
	h := acq(lockID, txn)
	h.Op = wire.OpRelease
	return h
}

func demand(id uint32, rate float64, cont uint64) memalloc.Demand {
	return memalloc.Demand{LockID: id, Rate: rate, Contention: cont}
}

func TestReallocateInstallsPopularLocks(t *testing.T) {
	m := newManager(2)
	demands := []memalloc.Demand{
		demand(1, 1000, 4),
		demand(2, 10, 2),
		demand(3, 5000, 8),
	}
	rep := m.Reallocate(demands, nil)
	if len(rep.Installed) != 3 {
		t.Fatalf("installed = %v (plenty of capacity)", rep.Installed)
	}
	for _, id := range []uint32{1, 2, 3} {
		if !m.Switch().CtrlHasLock(id) {
			t.Fatalf("lock %d not resident", id)
		}
	}
	// Requests for resident locks are now switch-processed.
	emits, _ := m.Switch().ProcessPacket(acq(3, 1))
	if len(emits) != 1 || emits[0].Action != switchdp.ActGrant {
		t.Fatalf("emits = %v", emits)
	}
}

func TestReallocateRespectsCapacity(t *testing.T) {
	m := newManager(1)
	// Capacity is 128; ask for far more.
	var demands []memalloc.Demand
	for id := uint32(1); id <= 20; id++ {
		demands = append(demands, demand(id, float64(1000-id), 10))
	}
	rep := m.Reallocate(demands, nil)
	if got := rep.Plan.SwitchSlotsUsed(); got > 128 {
		t.Fatalf("plan uses %d slots > capacity", got)
	}
	if len(rep.Installed)+len(rep.Plan.Server) < 20 {
		t.Fatalf("locks unaccounted: %+v", rep)
	}
	// The most valuable locks (highest r/c: lowest IDs here) are resident.
	if !m.Switch().CtrlHasLock(1) {
		t.Fatalf("most valuable lock should be resident")
	}
}

func TestReallocateEvictsUnpopular(t *testing.T) {
	m := newManager(1)
	m.Reallocate([]memalloc.Demand{demand(1, 1000, 4)}, nil)
	if !m.Switch().CtrlHasLock(1) {
		t.Fatalf("setup failed")
	}
	// New window: lock 1 cold, lock 2 hot, and capacity only fits one big
	// lock (contention 120 of 128 slots).
	rep := m.Reallocate([]memalloc.Demand{
		demand(1, 0, 0),
		demand(2, 9000, 120),
	}, nil)
	if len(rep.Removed) != 1 || rep.Removed[0] != 1 {
		t.Fatalf("removed = %v", rep.Removed)
	}
	if !m.Switch().CtrlHasLock(2) || m.Switch().CtrlHasLock(1) {
		t.Fatalf("placement wrong after eviction")
	}
	// Lock 1 is served by its server now.
	srv := m.Server(m.ServerFor(1))
	emits := srv.ProcessPacket(acq(1, 5))
	if len(emits) != 1 {
		t.Fatalf("server did not adopt lock 1: %v", emits)
	}
}

func TestReallocateDefersNonDrainedLocks(t *testing.T) {
	m := newManager(1)
	m.Reallocate([]memalloc.Demand{demand(1, 1000, 4)}, nil)
	// Park a request in the switch queue so lock 1 cannot be drained.
	m.Switch().ProcessPacket(acq(1, 1))
	rep := m.Reallocate([]memalloc.Demand{demand(2, 9000, 4)}, nil)
	found := false
	for _, id := range rep.Deferred {
		if id == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("non-drained lock should be deferred: %+v", rep)
	}
	if !m.Switch().CtrlHasLock(1) {
		t.Fatalf("deferred lock must stay resident")
	}
	// After the queue drains, the next round evicts it.
	m.Switch().ProcessPacket(rel(1, 1))
	rep = m.Reallocate([]memalloc.Demand{demand(2, 9000, 4)}, nil)
	if m.Switch().CtrlHasLock(1) {
		t.Fatalf("lock 1 should be evicted after drain")
	}
}

func TestReallocateResize(t *testing.T) {
	m := newManager(1)
	m.Reallocate([]memalloc.Demand{demand(1, 1000, 4)}, nil)
	rep := m.Reallocate([]memalloc.Demand{demand(1, 1000, 16)}, nil)
	if len(rep.Resized) != 1 || rep.Resized[0] != 1 {
		t.Fatalf("resized = %v", rep.Resized)
	}
	st, _ := m.Switch().CtrlLockState(1)
	if got := st.Banks[0].Capacity(); got != 16 {
		t.Fatalf("capacity after resize = %d, want 16", got)
	}
}

func TestReallocateDeferredServerSide(t *testing.T) {
	m := newManager(1)
	// Queue a request at the server so the lock cannot move to the switch.
	srv := m.Server(m.ServerFor(5))
	srv.ProcessPacket(acq(5, 1))
	rep := m.Reallocate([]memalloc.Demand{demand(5, 1000, 4)}, nil)
	if len(rep.Installed) != 0 || len(rep.Deferred) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	// Release at the server, then the move succeeds.
	srv.ProcessPacket(rel(5, 1))
	rep = m.Reallocate([]memalloc.Demand{demand(5, 1000, 4)}, nil)
	if len(rep.Installed) != 1 {
		t.Fatalf("install after drain failed: %+v", rep)
	}
}

func TestReallocateAdoptionDeliversBufferedGrants(t *testing.T) {
	m := newManager(1)
	m.Reallocate([]memalloc.Demand{demand(1, 1000, 2)}, nil)
	// Overflow the 2-slot region; the third request is buffered at the
	// server (after the bounce round trip).
	sw := m.Switch()
	srv := m.Server(0)
	sw.ProcessPacket(acq(1, 1))
	sw.ProcessPacket(acq(1, 2))
	emits, _ := sw.ProcessPacket(acq(1, 3))
	if emits[0].Action != switchdp.ActForwardOverflow {
		t.Fatalf("expected overflow forward: %v", emits)
	}
	sEmits := srv.ProcessPacket(&emits[0].Hdr) // bounce as push
	pb := sEmits[0].Hdr
	emits, _ = sw.ProcessPacket(&pb) // full again -> re-forward marked
	if emits[0].Action != switchdp.ActForwardOverflow {
		t.Fatalf("expected re-forward: %v", emits)
	}
	srv.ProcessPacket(&emits[0].Hdr) // buffered in q2
	// Drain the switch queue completely.
	sw.ProcessPacket(rel(1, 1))
	sw.ProcessPacket(rel(1, 2))
	// Evict: the adoption at the server must grant the buffered request.
	rep := m.Reallocate([]memalloc.Demand{demand(1, 0, 0)}, nil)
	if len(rep.Removed) != 1 {
		t.Fatalf("eviction failed: %+v", rep)
	}
	if len(rep.Emits) != 1 || rep.Emits[0].Hdr.TxnID != 3 {
		t.Fatalf("adoption emits = %v", rep.Emits)
	}
}

func TestCompactMergesFreeSpace(t *testing.T) {
	m := newManager(1)
	// Install locks 1..8 with 16 slots each (fills 128), then evict the
	// even ones to shatter the space.
	var demands []memalloc.Demand
	for id := uint32(1); id <= 8; id++ {
		demands = append(demands, demand(id, float64(100*id), 16))
	}
	m.Reallocate(demands, nil)
	demands = nil
	for id := uint32(1); id <= 8; id += 2 {
		demands = append(demands, demand(id, float64(100*id), 16))
	}
	m.Reallocate(demands, nil)
	if m.FreeSlots() != 64 {
		t.Fatalf("free slots = %d, want 64", m.FreeSlots())
	}
	// A 64-slot lock now fits only after compaction, which Reallocate
	// performs automatically on fragmentation.
	rep := m.Reallocate(append(demands, demand(100, 1e6, 64)), nil)
	if len(rep.Installed) != 1 || rep.Installed[0] != 100 {
		t.Fatalf("compaction did not make room: %+v", rep)
	}
}

func TestMeasureDemandsCombinesSwitchAndServers(t *testing.T) {
	m := newManager(2)
	m.Reallocate([]memalloc.Demand{demand(1, 1000, 4)}, nil)
	// Traffic: resident lock 1 via switch, lock 9 at its server.
	sw := m.Switch()
	for txn := uint64(1); txn <= 10; txn++ {
		sw.ProcessPacket(acq(1, txn))
	}
	srv := m.Server(m.ServerFor(9))
	srv.ProcessPacket(acq(9, 1))
	demands := m.MeasureDemands(2.0)
	byID := map[uint32]memalloc.Demand{}
	for _, d := range demands {
		byID[d.LockID] = d
	}
	if byID[1].Rate != 5.0 {
		t.Fatalf("lock 1 rate = %f, want 10/2s", byID[1].Rate)
	}
	if byID[1].Contention != 4 {
		t.Fatalf("lock 1 contention = %d (region cap)", byID[1].Contention)
	}
	if byID[9].Rate != 0.5 || byID[9].Contention != 1 {
		t.Fatalf("lock 9 demand = %+v", byID[9])
	}
}

func TestMeasureDemandsPanicsOnBadWindow(t *testing.T) {
	m := newManager(1)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.MeasureDemands(0)
}

func TestSwitchFailureAndRestart(t *testing.T) {
	m := newManager(1)
	m.Reallocate([]memalloc.Demand{demand(1, 1000, 4)}, nil)
	m.Switch().ProcessPacket(acq(1, 1))
	m.FailSwitch()
	if !m.SwitchFailed() {
		t.Fatalf("switch should be failed")
	}
	if m.Switch().CtrlHasLock(1) {
		t.Fatalf("failed switch retained state")
	}
	m.RestartSwitch()
	if m.SwitchFailed() {
		t.Fatalf("switch should be live after restart")
	}
	// The lock table is reinstalled with empty queues.
	if !m.Switch().CtrlHasLock(1) {
		t.Fatalf("restart did not reinstall the lock table")
	}
	st, _ := m.Switch().CtrlLockState(1)
	if st.Held != 0 || st.Banks[0].Count != 0 {
		t.Fatalf("restarted switch not empty: %+v", st)
	}
	emits, _ := m.Switch().ProcessPacket(acq(1, 2))
	if len(emits) != 1 || emits[0].Action != switchdp.ActGrant {
		t.Fatalf("restarted switch not functional: %v", emits)
	}
	// Restart when not failed is a no-op.
	m.RestartSwitch()
}

func TestFailServerReassignsLocks(t *testing.T) {
	m := newManager(2)
	// Find a lock owned by server 0.
	var lockID uint32
	for id := uint32(1); id < 100; id++ {
		if m.ServerFor(id) == 0 {
			lockID = id
			break
		}
	}
	m.Server(0).ProcessPacket(acq(lockID, 1))
	m.FailServer(0, 1)
	// The replacement owns the lock with empty queues; a resubmitted
	// request is granted there.
	emits := m.Server(1).ProcessPacket(acq(lockID, 1))
	if len(emits) != 1 {
		t.Fatalf("replacement server not serving: %v", emits)
	}
}

func TestFailServerPanicsOnSelf(t *testing.T) {
	m := newManager(2)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.FailServer(1, 1)
}

func TestSweepLeases(t *testing.T) {
	now := int64(0)
	m := New(Config{
		Switch: switchdp.Config{
			MaxLocks: 16, TotalSlots: 64, Priorities: 1,
			DefaultLeaseNs: 100, Now: func() int64 { return now },
		},
		Servers: 1,
	})
	m.Reallocate([]memalloc.Demand{demand(1, 1000, 4)}, nil)
	m.Switch().ProcessPacket(acq(1, 1))  // resident grant
	m.Server(0).ProcessPacket(acq(9, 2)) // server grant
	now = 200
	rels, emits := m.SweepLeases(now)
	if len(rels) != 1 || rels[0].LockID != 1 {
		t.Fatalf("switch releases = %v", rels)
	}
	_ = emits // no waiters at the server, so no grants
	// While failed, the switch is not swept.
	m.FailSwitch()
	rels, _ = m.SweepLeases(400)
	if len(rels) != 0 {
		t.Fatalf("failed switch swept: %v", rels)
	}
}

func TestServerForIsStable(t *testing.T) {
	m := newManager(4)
	for id := uint32(0); id < 100; id++ {
		a, b := m.ServerFor(id), m.ServerFor(id)
		if a != b || a < 0 || a >= 4 {
			t.Fatalf("partition unstable or out of range")
		}
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for zero servers")
		}
	}()
	New(Config{Switch: switchdp.Config{MaxLocks: 4, TotalSlots: 16, Priorities: 1}})
}
