package core

import (
	"fmt"

	"netlock/internal/lockserver"
	"netlock/internal/obs"
	"netlock/internal/sharedqueue"
	"netlock/internal/switchdp"
)

// Live region moves: unlike the drain-first protocol in Reallocate (§4.3
// pause-and-move), these transfer a lock's occupied queue — granted bits
// included — between switch and server in one control action, without
// waiting for the queue to empty. The embedded manager is single-threaded,
// so the export+import pair is atomic from the data path's point of view;
// the UDP transport reproduces the same sequence with epoch-fenced chain
// messages (internal/transport).

// MoveReport describes one completed live move for the migration oracle:
// which transactions held the lock and which were waiting at the instant
// the state crossed the boundary.
type MoveReport struct {
	LockID uint32
	// ToSwitch is the move direction: true for promotion.
	ToSwitch bool
	Granted  []uint64
	Waiting  []uint64
}

// Entries returns the number of migrated requests.
func (r *MoveReport) Entries() int { return len(r.Granted) + len(r.Waiting) }

// MoveToServer live-demotes a resident lock to its home server: the
// switch's queue state is exported (evicting the lock), converted, and
// installed at the server with granted flags preserved; overflow requests
// the server buffered while the lock was resident replay behind it. The
// returned emits (q2-replay grants) must be delivered by the caller.
func (m *Manager) MoveToServer(id uint32) (MoveReport, []lockserver.Emit, error) {
	rep := MoveReport{LockID: id}
	srv := m.servers[m.ServerFor(id)]
	if srv.CtrlOwns(id) {
		return rep, nil, fmt.Errorf("core: lock %d already server-owned", id)
	}
	ex, err := m.sw.CtrlExportLock(id)
	if err != nil {
		return rep, nil, err
	}
	for b, iv := range m.regionsByLock[id] {
		m.allocators[b].release(iv)
	}
	delete(m.regionsByLock, id)
	delete(m.slotsByLock, id)
	banks := make([][]lockserver.ExportEntry, len(ex.Slots))
	for b, slots := range ex.Slots {
		for _, s := range slots {
			h, lease, granted := switchdp.EntryFromSlot(id, b, s)
			banks[b] = append(banks[b], lockserver.ExportEntry{Hdr: h, LeaseNs: lease, Granted: granted})
			if granted {
				rep.Granted = append(rep.Granted, s.TxnID)
			} else {
				rep.Waiting = append(rep.Waiting, s.TxnID)
			}
		}
	}
	emits, err := srv.CtrlImportLock(id, banks)
	if err != nil {
		// Unreachable with the ownership pre-check above; fail loudly rather
		// than silently dropping holder state.
		panic(fmt.Sprintf("core: live demote of lock %d lost state: %v", id, err))
	}
	return rep, emits, nil
}

// MoveToSwitch live-promotes a server-owned lock into the switch with the
// given slot count: the server's queues are exported (releasing ownership)
// and installed literally in freshly reserved regions. The allocation is
// widened if the live queue is deeper than requested, so the occupied state
// always fits. On capacity failure the state is re-imported at the server
// and the move reports an error; nothing is lost either way.
func (m *Manager) MoveToSwitch(id uint32, slots uint64) (MoveReport, error) {
	rep := MoveReport{LockID: id, ToSwitch: true}
	if m.sw.CtrlHasLock(id) {
		return rep, fmt.Errorf("core: lock %d already switch-resident", id)
	}
	if m.sw.CtrlFreeEntries() == 0 {
		return rep, fmt.Errorf("core: %w: lock table full", ErrNoCapacity)
	}
	srv := m.servers[m.ServerFor(id)]
	ex, err := srv.CtrlExportLock(id)
	if err != nil {
		return rep, err
	}
	rollback := func() {
		if _, rerr := srv.CtrlImportLock(id, ex.Banks); rerr != nil {
			panic(fmt.Sprintf("core: live promote rollback of lock %d lost state: %v", id, rerr))
		}
	}
	banks := len(m.allocators)
	if slots < uint64(banks) {
		slots = uint64(banks)
	}
	per := slots / uint64(banks)
	extra := slots % uint64(banks)
	sizes := make([]uint64, banks)
	for b := range sizes {
		sizes[b] = per
		if uint64(b) < extra {
			sizes[b]++
		}
		if b < len(ex.Banks) && uint64(len(ex.Banks[b])) > sizes[b] {
			sizes[b] = uint64(len(ex.Banks[b]))
		}
	}
	ivs, ok := m.reserve(sizes)
	if !ok {
		m.Compact()
		if ivs, ok = m.reserve(sizes); !ok {
			rollback()
			return rep, fmt.Errorf("core: %w: queue memory exhausted for lock %d", ErrNoCapacity, id)
		}
	}
	regions := make([]switchdp.Region, banks)
	slotBanks := make([][]sharedqueue.Slot, banks)
	for b, iv := range ivs {
		regions[b] = switchdp.Region{Left: iv.Left, Right: iv.Right}
		if b >= len(ex.Banks) {
			continue
		}
		for _, e := range ex.Banks[b] {
			slotBanks[b] = append(slotBanks[b], switchdp.SlotFromEntry(e.Hdr, e.LeaseNs, e.Granted, b))
			if e.Granted {
				rep.Granted = append(rep.Granted, e.Hdr.TxnID)
			} else {
				rep.Waiting = append(rep.Waiting, e.Hdr.TxnID)
			}
		}
	}
	if err := m.sw.CtrlImportLock(id, regions, slotBanks); err != nil {
		for b, iv := range ivs {
			m.allocators[b].release(iv)
		}
		rollback()
		return rep, err
	}
	total := uint64(0)
	for _, sz := range sizes {
		total += sz
	}
	m.regionsByLock[id] = ivs
	m.slotsByLock[id] = total
	return rep, nil
}

// Placement returns the resident locks and their allocated slot counts — the
// "current" input to memalloc.Resolve.
func (m *Manager) Placement() map[uint32]uint64 {
	out := make(map[uint32]uint64, len(m.slotsByLock))
	for id, s := range m.slotsByLock {
		out[id] = s
	}
	return out
}

// SwitchCapacity returns the total shared-queue slots across all banks.
func (m *Manager) SwitchCapacity() uint64 {
	return uint64(m.sw.BankSlots()) * uint64(len(m.allocators))
}

// AddServer grows the rack by one lock server and rebalances the static
// partition: every lock whose RSSCore home changes under the new server
// count migrates — live, queue state intact — to its new home, overflow
// residue included. Returns the new server's index and any q2-replay emits
// to deliver.
func (m *Manager) AddServer() (int, []lockserver.Emit) {
	m.servers = append(m.servers, lockserver.New(m.cfg.ServerConfig))
	idx := len(m.servers) - 1
	var emits []lockserver.Emit
	for i, src := range m.servers[:idx] {
		for _, id := range src.CtrlOwnedLocks() {
			if home := m.ServerFor(id); home != i {
				ex, err := src.CtrlExportLock(id)
				if err != nil {
					continue
				}
				es, err := m.servers[home].CtrlImportLock(id, ex.Banks)
				if err != nil {
					panic(fmt.Sprintf("core: rehash of lock %d lost state: %v", id, err))
				}
				emits = append(emits, es...)
			}
		}
		for _, id := range src.CtrlOverflowLocks() {
			if home := m.ServerFor(id); home != i {
				m.servers[home].CtrlImportOverflow(id, src.CtrlExportOverflow(id))
			}
		}
	}
	return idx, emits
}

// DrainServer live-evacuates a server for decommissioning: the victim stops
// adopting new locks (draining mode redirects unknown-lock requests with
// OpReject+FlagMoved), every owned lock's queue state moves to the target,
// overflow residue follows, and finally the victim's partition is
// redirected. Ordering matters: state moves before the routing flip, so a
// request racing the drain either reaches the victim (served or redirected)
// or the target (state already there).
func (m *Manager) DrainServer(victim, target int) ([]lockserver.Emit, error) {
	if victim == target {
		return nil, fmt.Errorf("core: drain target must differ from victim")
	}
	if m.ServerForIndex(target) == victim {
		return nil, fmt.Errorf("core: drain target resolves back to the victim")
	}
	src, dst := m.servers[victim], m.servers[target]
	src.CtrlSetDraining(true)
	var emits []lockserver.Emit
	for _, id := range src.CtrlOwnedLocks() {
		ex, err := src.CtrlExportLock(id)
		if err != nil {
			continue
		}
		es, err := dst.CtrlImportLock(id, ex.Banks)
		if err != nil {
			panic(fmt.Sprintf("core: drain of lock %d lost state: %v", id, err))
		}
		emits = append(emits, es...)
	}
	for _, id := range src.CtrlOverflowLocks() {
		dst.CtrlImportOverflow(id, src.CtrlExportOverflow(id))
	}
	if m.serverRedirect == nil {
		m.serverRedirect = make(map[int]int)
	}
	m.serverRedirect[victim] = target
	m.noteFailover(obs.FailoverServer)
	return emits, nil
}
