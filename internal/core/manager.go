// Package core implements the NetLock manager: the control plane that
// co-designs one programmable switch and a set of lock servers into a
// single, fast, centralized lock manager (paper §3–§4).
//
// The manager owns:
//
//   - the switch data plane (internal/switchdp) and its lock table;
//   - the lock servers (internal/lockserver) and the static partitioning of
//     lock IDs across them;
//   - the memory-management control loop (§4.3): measure per-lock request
//     rates and contention, run the optimal knapsack allocation
//     (internal/memalloc, Algorithm 3), and migrate locks between switch
//     and servers with the drain-first protocol;
//   - region bookkeeping in the shared queue, including the periodic
//     compaction that alleviates fragmentation;
//   - failure handling (§4.5): switch reset and reactivation, lease sweeps.
//
// The manager is transport-agnostic: it never sends packets itself. Packet
// movement — client to switch, switch emits to servers or clients, control
// injections — is driven by internal/cluster (virtual time) or
// internal/transport (real UDP), both of which route through the manager's
// logic objects.
package core

import (
	"errors"
	"fmt"
	"sort"

	"netlock/internal/lockserver"
	"netlock/internal/memalloc"
	"netlock/internal/obs"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// ErrNoCapacity reports that the switch cannot host a lock: the lock table
// or the shared queue memory is exhausted.
var ErrNoCapacity = errors.New("no switch capacity")

// Config assembles a NetLock instance.
type Config struct {
	// Switch configures the data plane (see switchdp.Config).
	Switch switchdp.Config
	// Servers is the number of lock servers in the rack.
	Servers int
	// PauseBusyMoves enables the paper's pause-and-move protocol (§4.3)
	// for locks that never drain: after several deferred rounds the lock
	// is paused at its server (new requests buffer) until its queue
	// empties and the move completes. Pausing stalls the lock's
	// requesters for up to a control round, so it suits deployments with
	// slow control cadences (the embedded API); the evaluation testbed
	// leaves it off and simply defers until the lock idles.
	PauseBusyMoves bool
	// ServerConfig configures each lock server; Priorities is forced to
	// match the switch.
	ServerConfig lockserver.Config
	// Obs, when non-nil, instruments this instance's switch and servers. A
	// core.Manager is single-threaded, so one stripe serves the whole
	// instance; concurrent instances (the embedded shards) each get their
	// own stripe.
	Obs *obs.Stripe
}

// Manager is one NetLock instance: a switch plus lock servers and the
// control plane gluing them. Not safe for concurrent use.
type Manager struct {
	cfg     Config
	sw      *switchdp.Switch
	servers []*lockserver.Server

	// regionsByLock records the shared-queue regions each resident lock
	// occupies, one per priority bank.
	regionsByLock map[uint32][]interval
	// pendingMoves tracks locks whose move to the switch is draining at
	// their server (paused, §4.3); every Reallocate round either completes
	// or aborts them, so buffered requesters can never be stranded.
	pendingMoves   map[uint32]uint64
	movesStarted   int
	moveAbortEmits []lockserver.Emit
	// serverRedirect reroutes a failed server's partition to its
	// replacement — the directory-service update clients observe (§4.5).
	serverRedirect map[int]int
	// deferStreak counts consecutive rounds an install was deferred
	// because the lock never drained; only stubborn locks get paused.
	deferStreak map[uint32]int
	// slotsByLock records the planned slot count for resize detection.
	slotsByLock map[uint32]uint64
	allocators  []*regionAllocator

	swFailed bool
}

// New builds a NetLock manager.
func New(cfg Config) *Manager {
	if cfg.Servers <= 0 {
		panic("core: need at least one lock server")
	}
	cfg.ServerConfig.Priorities = max(cfg.Switch.Priorities, 1)
	if cfg.ServerConfig.Now == nil {
		cfg.ServerConfig.Now = cfg.Switch.Now
	}
	if cfg.ServerConfig.DefaultLeaseNs == 0 {
		cfg.ServerConfig.DefaultLeaseNs = cfg.Switch.DefaultLeaseNs
	}
	if cfg.Obs != nil {
		if cfg.Switch.Obs == nil {
			cfg.Switch.Obs = cfg.Obs
		}
		if cfg.ServerConfig.Obs == nil {
			cfg.ServerConfig.Obs = cfg.Obs
		}
	}
	sw := switchdp.New(cfg.Switch)
	m := &Manager{
		cfg:           cfg,
		sw:            sw,
		regionsByLock: make(map[uint32][]interval),
		slotsByLock:   make(map[uint32]uint64),
		pendingMoves:  make(map[uint32]uint64),
		deferStreak:   make(map[uint32]int),
	}
	for i := 0; i < cfg.Servers; i++ {
		m.servers = append(m.servers, lockserver.New(cfg.ServerConfig))
	}
	for b := 0; b < max(cfg.Switch.Priorities, 1); b++ {
		m.allocators = append(m.allocators, newRegionAllocator(uint64(sw.BankSlots())))
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Switch returns the switch data plane.
func (m *Manager) Switch() *switchdp.Switch { return m.sw }

// Server returns lock server i.
func (m *Manager) Server(i int) *lockserver.Server { return m.servers[i] }

// NumServers returns the number of lock servers.
func (m *Manager) NumServers() int { return len(m.servers) }

// ServerFor returns the lock server index responsible for a lock: the
// partitioning clients resolve through the directory service (§4.1),
// including any failover redirects (§4.5).
func (m *Manager) ServerFor(lockID uint32) int {
	s := lockserver.RSSCore(lockID, len(m.servers))
	for {
		next, ok := m.serverRedirect[s]
		if !ok {
			return s
		}
		s = next
	}
}

// SwitchFailed reports whether the switch is currently failed.
func (m *Manager) SwitchFailed() bool { return m.swFailed }

// --- Memory management control loop (§4.3) ---

// MeasureDemands closes a measurement window of the given length and
// returns the per-lock demand estimates feeding Algorithm 3. Switch-side
// counters cover resident locks (with server-buffered overflow depth folded
// into contention); server counters cover server-owned locks.
func (m *Manager) MeasureDemands(windowSec float64) []memalloc.Demand {
	if windowSec <= 0 {
		panic("core: non-positive measurement window")
	}
	byID := make(map[uint32]*memalloc.Demand)
	for _, l := range m.sw.CtrlMeasure() {
		byID[l.LockID] = &memalloc.Demand{
			LockID:     l.LockID,
			Rate:       float64(l.Requests) / windowSec,
			Contention: l.MaxQueue,
		}
	}
	for _, srv := range m.servers {
		for _, l := range srv.CtrlMeasure() {
			if d, ok := byID[l.LockID]; ok {
				// Resident lock: the server saw overflow traffic the
				// switch gauge could not count.
				d.Contention += l.BufferedPeak
				continue
			}
			if !l.Owned {
				continue
			}
			byID[l.LockID] = &memalloc.Demand{
				LockID:     l.LockID,
				Rate:       float64(l.Requests) / windowSec,
				Contention: l.MaxConcurrent,
			}
		}
	}
	out := make([]memalloc.Demand, 0, len(byID))
	for _, d := range byID {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LockID < out[j].LockID })
	return out
}

// Report summarizes one reallocation round.
type Report struct {
	Installed []uint32
	Removed   []uint32
	Resized   []uint32
	// Deferred locks could not be migrated this round because their queues
	// were not drained; the next round retries (§4.3 pauses and waits; the
	// control loop instead retries on the next window).
	Deferred []uint32
	// Emits are grant packets produced when server adoption processed
	// buffered requests; the caller must deliver them.
	Emits []lockserver.Emit
	// SwitchPushes are requests that were buffered at a server while a
	// hot lock's move drained (§4.3 pause-and-move); the caller must
	// inject them into the switch data plane, in order.
	SwitchPushes []wire.Header
	// Plan is the allocation decision that drove the round.
	Plan memalloc.Plan
}

// Allocator selects the placement policy for Reallocate.
type Allocator func(demands []memalloc.Demand, capacity uint64) memalloc.Plan

// Reallocate runs one round of the memory-management loop with the given
// demands: compute the target placement with the allocator over the full
// switch capacity, then migrate drained locks toward it. Locks whose queues
// are not empty are deferred.
// maxNewMovesPerRound bounds how many busy locks a single Reallocate round
// may pause for migration, and pauseAfterDeferrals is how many consecutive
// busy rounds a lock must accumulate before pausing it is worthwhile.
const (
	maxNewMovesPerRound = 32
	pauseAfterDeferrals = 3
)

func (m *Manager) Reallocate(demands []memalloc.Demand, alloc Allocator) Report {
	if alloc == nil {
		alloc = memalloc.Knapsack
	}
	m.movesStarted = 0
	m.moveAbortEmits = nil
	banks := len(m.allocators)
	capacity := uint64(m.sw.BankSlots()) * uint64(banks)
	plan := alloc(demands, capacity)
	report := Report{Plan: plan}

	// Target slot counts, rounded up to at least one slot per bank.
	target := make(map[uint32]uint64, len(plan.Switch))
	for _, a := range plan.Switch {
		s := a.Slots
		if s < uint64(banks) {
			s = uint64(banks)
		}
		target[a.LockID] = s
	}

	// Phase 0: resolve moves left draining by earlier rounds. A paused
	// lock generates no measurable traffic, so it may have dropped out of
	// the new plan: complete the move if it is still wanted, abort it (the
	// server resumes processing, buffered requests included) otherwise.
	for id, slots := range m.pendingMoves {
		if want, keep := target[id]; keep {
			if m.installLock(id, want, &report) {
				report.Installed = append(report.Installed, id)
			} else {
				report.Deferred = append(report.Deferred, id)
			}
			_ = slots
			continue
		}
		emits := m.servers[m.ServerFor(id)].CtrlAbortMove(id)
		report.Emits = append(report.Emits, emits...)
		delete(m.pendingMoves, id)
	}

	// Phase 1: remove resident locks that should leave (or be resized).
	// Resizes apply hysteresis: a resident lock keeps its regions until the
	// desired size drifts by more than 2x, so measurement noise between
	// windows does not churn migrations (each one pauses the lock).
	for _, id := range m.sw.CtrlResidentLocks() {
		want, keep := target[id]
		if keep {
			cur := m.slotsByLock[id]
			if want == cur || (want > cur/2 && want < cur*2) {
				continue
			}
		}
		if !m.removeResident(id, &report) {
			report.Deferred = append(report.Deferred, id)
			if keep {
				// Could not resize in place: keep the old size this round.
				delete(target, id)
			}
			continue
		}
		if keep {
			report.Resized = append(report.Resized, id)
		} else {
			report.Removed = append(report.Removed, id)
		}
	}

	// Phase 2: install target locks not yet resident, most valuable first.
	// Stop when the lock table fills: the remaining plan entries are the
	// least valuable and stay on the servers.
	for _, a := range plan.Switch {
		if m.sw.CtrlFreeEntries() == 0 {
			break
		}
		want, ok := target[a.LockID]
		if !ok || m.sw.CtrlHasLock(a.LockID) {
			continue
		}
		if !m.installLock(a.LockID, want, &report) {
			report.Deferred = append(report.Deferred, a.LockID)
			continue
		}
		report.Installed = append(report.Installed, a.LockID)
	}
	report.Emits = append(report.Emits, m.moveAbortEmits...)
	m.moveAbortEmits = nil
	return report
}

// PreinstallLock makes a lock switch-resident ahead of traffic (warmup): it
// reserves the requested slot count (rounded up to one slot per priority
// bank) and installs the lock without waiting for a measurement window.
// When the lock table or queue memory cannot fit it, the error wraps
// ErrNoCapacity; a lock that is busy draining at its server returns a plain
// error and can be retried. A lock already resident is a no-op. The returned
// report carries any emits and switch pushes the caller must deliver (only
// possible for locks that were mid-move; a cold lock produces none).
func (m *Manager) PreinstallLock(id uint32, slots uint64) (Report, error) {
	var report Report
	if m.sw.CtrlHasLock(id) {
		return report, nil
	}
	banks := uint64(len(m.allocators))
	if slots < banks {
		slots = banks
	}
	if m.sw.CtrlFreeEntries() == 0 {
		return report, fmt.Errorf("core: %w: lock table full (%d locks)",
			ErrNoCapacity, m.cfg.Switch.MaxLocks)
	}
	if slots > m.FreeSlots() {
		return report, fmt.Errorf("core: %w: %d slots requested, %d free",
			ErrNoCapacity, slots, m.FreeSlots())
	}
	m.moveAbortEmits = nil
	if !m.installLock(id, slots, &report) {
		report.Emits = append(report.Emits, m.moveAbortEmits...)
		m.moveAbortEmits = nil
		return report, fmt.Errorf("core: lock %d not installed (busy at its server, or queue memory fragmented)", id)
	}
	report.Emits = append(report.Emits, m.moveAbortEmits...)
	m.moveAbortEmits = nil
	report.Installed = append(report.Installed, id)
	return report, nil
}

// removeResident drains a lock off the switch and hands it to its server,
// returning false if the lock's queues are not empty.
func (m *Manager) removeResident(id uint32, report *Report) bool {
	if err := m.sw.CtrlRemoveLock(id); err != nil {
		return false
	}
	for b, iv := range m.regionsByLock[id] {
		m.allocators[b].release(iv)
	}
	delete(m.regionsByLock, id)
	delete(m.slotsByLock, id)
	emits := m.servers[m.ServerFor(id)].CtrlAdoptLock(id)
	report.Emits = append(report.Emits, emits...)
	return true
}

// installLock moves a server-owned lock into the switch with the given slot
// count. A busy lock is marked moving at the server (new requests pause
// into its buffer, §4.3) and the install completes on a later round once
// the queues drain; buffered requests are appended to report.SwitchPushes
// for injection into the switch.
func (m *Manager) installLock(id uint32, slots uint64, report *Report) bool {
	if m.sw.CtrlFreeEntries() == 0 {
		return false
	}
	srv := m.servers[m.ServerFor(id)]
	banks := len(m.allocators)
	per := slots / uint64(banks)
	extra := slots % uint64(banks)
	sizes := make([]uint64, banks)
	for b := range sizes {
		sizes[b] = per
		if uint64(b) < extra {
			sizes[b]++
		}
	}
	// Reserve regions first; compact and retry on fragmentation.
	ivs, ok := m.reserve(sizes)
	if !ok {
		m.Compact()
		if ivs, ok = m.reserve(sizes); !ok {
			return false
		}
	}
	pushes, err := srv.CtrlTakeForSwitch(id)
	if err != nil {
		// Not drained yet: the move stays pending at the server (tracked
		// so a later round always completes or aborts it) and this round's
		// regions are returned. New pauses are budgeted per round — pausing
		// thousands of warm locks at once would stall the workload — so a
		// busy lock beyond the budget resumes immediately and is retried
		// when it is idle or a later round has budget.
		if errors.Is(err, lockserver.ErrNotDrained) {
			m.deferStreak[id]++
			_, already := m.pendingMoves[id]
			// Most locks idle between rounds; deferring is free. Pausing
			// (keeping the lock in the moving state so it drains) stalls
			// its requesters for up to a round, so it is reserved for
			// locks that stayed busy several consecutive rounds, within a
			// per-round budget.
			if already || (m.cfg.PauseBusyMoves && m.deferStreak[id] >= pauseAfterDeferrals && m.movesStarted < maxNewMovesPerRound) {
				if !already {
					m.movesStarted++
				}
				m.pendingMoves[id] = slots
			} else {
				// Immediate abort: moving was set an instant ago, so no
				// requests were buffered; this is a pure state flip back.
				for _, e := range srv.CtrlAbortMove(id) {
					m.moveAbortEmits = append(m.moveAbortEmits, e)
				}
			}
		}
		for b, iv := range ivs {
			m.allocators[b].release(iv)
		}
		return false
	}
	delete(m.pendingMoves, id)
	delete(m.deferStreak, id)
	regions := make([]switchdp.Region, banks)
	for b, iv := range ivs {
		regions[b] = switchdp.Region{Left: iv.Left, Right: iv.Right}
	}
	if err := m.sw.CtrlInstallLock(id, regions); err != nil {
		// Roll back: the server owns the lock again; requests buffered
		// during the drain are re-processed there.
		report.Emits = append(report.Emits, srv.CtrlAdoptLock(id)...)
		for b, iv := range ivs {
			m.allocators[b].release(iv)
		}
		return false
	}
	m.regionsByLock[id] = ivs
	m.slotsByLock[id] = slots
	report.SwitchPushes = append(report.SwitchPushes, pushes...)
	return true
}

// reserve claims one region per bank, releasing everything on failure.
func (m *Manager) reserve(sizes []uint64) ([]interval, bool) {
	ivs := make([]interval, len(sizes))
	for b, sz := range sizes {
		iv, ok := m.allocators[b].alloc(sz)
		if !ok {
			for j := 0; j < b; j++ {
				m.allocators[j].release(ivs[j])
			}
			return nil, false
		}
		ivs[b] = iv
	}
	return ivs, true
}

// Compact reorganizes the switch memory layout to merge free space (§4.3).
// Only drained locks can move; locks with queued requests keep their
// regions, bounding how much a single compaction can recover.
func (m *Manager) Compact() {
	type resident struct {
		id  uint32
		ivs []interval
	}
	var movable []resident
	for _, id := range m.sw.CtrlResidentLocks() {
		st, err := m.sw.CtrlLockState(id)
		if err != nil {
			continue
		}
		drained := true
		for _, b := range st.Banks {
			if b.Count != 0 {
				drained = false
				break
			}
		}
		if drained {
			movable = append(movable, resident{id: id, ivs: m.regionsByLock[id]})
		}
	}
	sort.Slice(movable, func(i, j int) bool { return movable[i].ivs[0].Left < movable[j].ivs[0].Left })
	// Remove all movable locks, then reinstall tightly in address order.
	for _, r := range movable {
		if err := m.sw.CtrlRemoveLock(r.id); err != nil {
			continue
		}
		for b, iv := range r.ivs {
			m.allocators[b].release(iv)
		}
		delete(m.regionsByLock, r.id)
	}
	for _, r := range movable {
		sizes := make([]uint64, len(r.ivs))
		for b, iv := range r.ivs {
			sizes[b] = iv.Right - iv.Left
		}
		ivs, ok := m.reserve(sizes)
		if !ok {
			// Should not happen (same total space); fall back to server.
			m.servers[m.ServerFor(r.id)].CtrlAdoptLock(r.id)
			delete(m.slotsByLock, r.id)
			continue
		}
		regions := make([]switchdp.Region, len(ivs))
		for b, iv := range ivs {
			regions[b] = switchdp.Region{Left: iv.Left, Right: iv.Right}
		}
		if err := m.sw.CtrlInstallLock(r.id, regions); err != nil {
			m.servers[m.ServerFor(r.id)].CtrlAdoptLock(r.id)
			for b, iv := range ivs {
				m.allocators[b].release(iv)
			}
			delete(m.slotsByLock, r.id)
			continue
		}
		m.regionsByLock[r.id] = ivs
	}
}

// Fragmentation returns the worst per-bank fragmentation metric in [0,1].
func (m *Manager) Fragmentation() float64 {
	var worst float64
	for _, a := range m.allocators {
		if f := a.fragmentation(); f > worst {
			worst = f
		}
	}
	return worst
}

// FreeSlots returns the total unallocated shared-queue slots.
func (m *Manager) FreeSlots() uint64 {
	var sum uint64
	for _, a := range m.allocators {
		sum += a.freeSlots()
	}
	return sum
}

// --- Failure handling (§4.5, §6.5) ---

// FailSwitch simulates a switch failure: all data-plane state is lost.
// While failed, the rack is unreachable (the ToR is the only path), which
// the testbed models by dropping traffic.
func (m *Manager) FailSwitch() {
	m.swFailed = true
	m.sw.CtrlReset()
	m.noteFailover(obs.FailoverSwitchDown)
}

// noteFailover records one failure-handling transition.
func (m *Manager) noteFailover(code int64) {
	if o := m.cfg.Obs; o != nil {
		o.Inc(obs.CtrFailovers)
		if o.Tracing() {
			o.Trace(obs.TraceEvent{Event: obs.EvFailover, Arg: code})
		}
	}
}

// RestartSwitch reactivates the switch: the control plane (this manager)
// reinstalls the lock table from its own records with empty queues. Stale
// client-held grants are reclaimed by lease expiry.
func (m *Manager) RestartSwitch() {
	if !m.swFailed {
		return
	}
	// Recover placement: reinstall every previously resident lock at its
	// recorded regions; the servers keep owning their locks.
	ids := make([]uint32, 0, len(m.regionsByLock))
	for id := range m.regionsByLock {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ivs := m.regionsByLock[id]
		regions := make([]switchdp.Region, len(ivs))
		for b, iv := range ivs {
			regions[b] = switchdp.Region{Left: iv.Left, Right: iv.Right}
		}
		if err := m.sw.CtrlInstallLock(id, regions); err != nil {
			panic(fmt.Sprintf("core: reinstall after restart failed: %v", err))
		}
	}
	m.swFailed = false
	m.noteFailover(obs.FailoverSwitchUp)
}

// FailServer reassigns all locks owned by a failed server to another server
// (§4.5): the replacement adopts them with empty queues; clients resubmit
// and leases expire any stale grants.
func (m *Manager) FailServer(failed, replacement int) {
	if failed == replacement {
		panic("core: replacement must differ from failed server")
	}
	if m.serverRedirect == nil {
		m.serverRedirect = make(map[int]int)
	}
	// Guard against redirect cycles (replacement itself redirected back).
	if m.ServerForIndex(replacement) == failed {
		panic("core: replacement resolves back to the failed server")
	}
	src, dst := m.servers[failed], m.servers[replacement]
	for _, id := range src.CtrlOwnedLocks() {
		src.CtrlForget(id)
		dst.CtrlAdoptLock(id)
	}
	m.serverRedirect[failed] = replacement
	m.noteFailover(obs.FailoverServer)
}

// ServerForIndex resolves redirects starting from a raw partition index.
func (m *Manager) ServerForIndex(s int) int {
	for {
		next, ok := m.serverRedirect[s]
		if !ok {
			return s
		}
		s = next
	}
}

// --- Lease sweep (§4.5) ---

// SweepLeases scans the switch and all servers for expired leases at the
// given time. Switch-side expiries are returned as release packets the
// caller must inject into the switch data plane; server-side sweeps run
// in place and their resulting grants are returned for delivery.
func (m *Manager) SweepLeases(now int64) (switchReleases []wire.Header, serverEmits []lockserver.Emit) {
	if !m.swFailed {
		switchReleases = m.sw.CtrlScanExpired(now)
	}
	for _, srv := range m.servers {
		serverEmits = append(serverEmits, srv.CtrlScanExpired(now)...)
	}
	return switchReleases, serverEmits
}

// SweepStranded polls for overflow queues whose push notification was lost
// to packet reordering and returns the notifications to re-deliver to the
// locks' servers (§4.3 liveness; see switchdp.CtrlScanStranded).
func (m *Manager) SweepStranded() []wire.Header {
	if m.swFailed {
		return nil
	}
	return m.sw.CtrlScanStranded()
}
