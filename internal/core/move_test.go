package core

import (
	"testing"

	"netlock/internal/memalloc"
	"netlock/internal/switchdp"
)

// Tests for the manager side of the pause-and-move protocol: busy locks
// migrate across rounds, and pending moves are never stranded.

func newPausingManager() *Manager {
	return New(Config{
		Switch:         switchdp.Config{MaxLocks: 64, TotalSlots: 128, Priorities: 1},
		Servers:        1,
		PauseBusyMoves: true,
	})
}

func TestReallocateMovesBusyLock(t *testing.T) {
	m := newPausingManager()
	srv := m.Server(m.ServerFor(5))
	// The lock is busy at its server: a holder plus a waiter.
	srv.ProcessPacket(acq(5, 1))
	srv.ProcessPacket(acq(5, 2))
	// The first rounds defer (cheap); after the deferral streak the move
	// is initiated (paused) but still not completed.
	var rep Report
	for round := 0; round < 3; round++ {
		rep = m.Reallocate([]memalloc.Demand{demand(5, 1e6, 8)}, nil)
		if len(rep.Installed) != 0 {
			t.Fatalf("busy lock must not install immediately: %+v", rep)
		}
	}
	// New requests arriving during the drain are buffered, not processed.
	srv.ProcessPacket(acq(5, 3))
	if owned, buffered := srv.CtrlQueueDepth(5); owned != 2 || buffered != 1 {
		t.Fatalf("depths = %d/%d, want 2/1 (paused)", owned, buffered)
	}
	// The queue drains.
	srv.ProcessPacket(rel(5, 1))
	srv.ProcessPacket(rel(5, 2))
	// Round 2: the pending move completes even though the (paused) lock
	// generated no measurable demand this window — it must not be
	// stranded. The buffered request surfaces as a switch push.
	rep = m.Reallocate([]memalloc.Demand{demand(5, 1e6, 8)}, nil)
	if len(rep.Installed) != 1 || rep.Installed[0] != 5 {
		t.Fatalf("move did not complete: %+v", rep)
	}
	if len(rep.SwitchPushes) != 1 || rep.SwitchPushes[0].TxnID != 3 {
		t.Fatalf("buffered request not pushed to switch: %v", rep.SwitchPushes)
	}
	// Injecting the push grants it from the switch.
	h := rep.SwitchPushes[0]
	emits, _ := m.Switch().ProcessPacket(&h)
	if len(emits) != 1 {
		t.Fatalf("pushed request not granted: %v", emits)
	}
}

func TestPendingMoveAbortedWhenDroppedFromPlan(t *testing.T) {
	m := newPausingManager()
	srv := m.Server(m.ServerFor(5))
	srv.ProcessPacket(acq(5, 1)) // busy forever (never released)
	// Rounds 1..3: deferred, then the move is initiated (paused).
	for round := 0; round < 3; round++ {
		m.Reallocate([]memalloc.Demand{demand(5, 1e6, 8)}, nil)
	}
	srv.ProcessPacket(acq(5, 2)) // buffered during the pause
	// Round 2: the paused lock produced no traffic and dropped out of the
	// plan; the manager must abort the move so buffered requests resume.
	rep := m.Reallocate([]memalloc.Demand{demand(9, 1e6, 8)}, nil)
	if m.Switch().CtrlHasLock(5) {
		t.Fatalf("aborted move must not install")
	}
	_ = rep
	if owned, buffered := srv.CtrlQueueDepth(5); owned != 2 || buffered != 0 {
		t.Fatalf("depths = %d/%d, want 2/0 (abort resumes processing)", owned, buffered)
	}
	// The resumed waiter is granted on release.
	emits := srv.ProcessPacket(rel(5, 1))
	if len(emits) != 1 || emits[0].Hdr.TxnID != 2 {
		t.Fatalf("waiter not granted after abort: %v", emits)
	}
}

func TestPendingMoveRetriesAcrossManyRounds(t *testing.T) {
	m := newPausingManager()
	srv := m.Server(m.ServerFor(5))
	srv.ProcessPacket(acq(5, 1))
	demands := []memalloc.Demand{demand(5, 1e6, 8)}
	for round := 0; round < 6; round++ {
		rep := m.Reallocate(demands, nil)
		if len(rep.Installed) != 0 {
			t.Fatalf("round %d: busy lock installed prematurely", round)
		}
	}
	srv.ProcessPacket(rel(5, 1))
	rep := m.Reallocate(demands, nil)
	if len(rep.Installed) != 1 {
		t.Fatalf("move should complete after drain: %+v", rep)
	}
}
