package core

import (
	"testing"

	"netlock/internal/memalloc"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// Live moves transfer occupied queues between switch and server without a
// drain. These tests cover both directions plus the rack-reshaping
// operations (AddServer, DrainServer) built on them.

func acqShared(lockID uint32, txn uint64) *wire.Header {
	h := acq(lockID, txn)
	h.Mode = wire.Shared
	return h
}

func relShared(lockID uint32, txn uint64) *wire.Header {
	h := rel(lockID, txn)
	h.Mode = wire.Shared
	return h
}

func TestLivePromoteBusyLock(t *testing.T) {
	m := newManager(1)
	srv := m.Server(m.ServerFor(5))
	srv.ProcessPacket(acq(5, 1))       // granted exclusive
	srv.ProcessPacket(acqShared(5, 2)) // waits
	srv.ProcessPacket(acqShared(5, 3)) // waits

	rep, err := m.MoveToSwitch(5, 8)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if len(rep.Granted) != 1 || rep.Granted[0] != 1 {
		t.Fatalf("report granted = %v, want [1]", rep.Granted)
	}
	if len(rep.Waiting) != 2 {
		t.Fatalf("report waiting = %v, want [2 3]", rep.Waiting)
	}
	if !m.Switch().CtrlHasLock(5) {
		t.Fatalf("lock not resident after promote")
	}
	if srv.CtrlOwns(5) {
		t.Fatalf("server still owns lock after promote")
	}
	// The exclusive holder blocks new arrivals — proof state moved intact.
	emits, _ := m.Switch().ProcessPacket(acqShared(5, 4))
	if len(emits) != 0 {
		t.Fatalf("shared granted past exclusive holder: %v", emits)
	}
	// Release grants the migrated shared run plus the post-move arrival.
	emits, _ = m.Switch().ProcessPacket(rel(5, 1))
	want := []uint64{2, 3, 4}
	if len(emits) != len(want) {
		t.Fatalf("release emits = %v", emits)
	}
	for i, w := range want {
		if emits[i].Hdr.TxnID != w || emits[i].Action != switchdp.ActGrant {
			t.Fatalf("grant %d = %v, want txn %d", i, emits[i], w)
		}
	}
}

func TestLiveDemoteBusyLock(t *testing.T) {
	m := newManager(1)
	// Make the lock resident, then load it with a holder and waiters.
	if _, err := m.PreinstallLock(7, 8); err != nil {
		t.Fatalf("preinstall: %v", err)
	}
	m.Switch().ProcessPacket(acq(7, 1))
	m.Switch().ProcessPacket(acqShared(7, 2))

	rep, emits, err := m.MoveToServer(7)
	if err != nil {
		t.Fatalf("demote: %v", err)
	}
	if len(emits) != 0 {
		t.Fatalf("demote with empty q2 emitted %v", emits)
	}
	if len(rep.Granted) != 1 || rep.Granted[0] != 1 || len(rep.Waiting) != 1 || rep.Waiting[0] != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if m.Switch().CtrlHasLock(7) {
		t.Fatalf("lock still resident after demote")
	}
	srv := m.Server(m.ServerFor(7))
	if !srv.CtrlOwns(7) {
		t.Fatalf("server does not own lock after demote")
	}
	// The waiter is granted when the migrated holder releases at the server.
	out := srv.ProcessPacket(rel(7, 1))
	if len(out) != 1 || out[0].Hdr.TxnID != 2 {
		t.Fatalf("post-demote release emits = %v", out)
	}
	// Slots were freed: the full capacity is reusable.
	if m.FreeSlots() != m.SwitchCapacity() {
		t.Fatalf("free = %d, capacity = %d", m.FreeSlots(), m.SwitchCapacity())
	}
}

// A promote whose requested slot count is smaller than the live queue depth
// widens the allocation instead of dropping entries.
func TestLivePromoteWidensForDeepQueue(t *testing.T) {
	m := newManager(1)
	srv := m.Server(m.ServerFor(5))
	for txn := uint64(1); txn <= 6; txn++ {
		srv.ProcessPacket(acq(5, txn))
	}
	rep, err := m.MoveToSwitch(5, 2) // queue depth 6 > 2 requested
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if rep.Entries() != 6 {
		t.Fatalf("migrated %d entries, want 6", rep.Entries())
	}
	// Drain through the switch: strict FIFO of the migrated queue.
	for txn := uint64(1); txn < 6; txn++ {
		emits, _ := m.Switch().ProcessPacket(rel(5, txn))
		if len(emits) != 1 || emits[0].Hdr.TxnID != txn+1 {
			t.Fatalf("release %d emits = %v", txn, emits)
		}
	}
}

// A promote that cannot fit rolls the state back to the server losslessly.
func TestLivePromoteRollsBackOnCapacityFailure(t *testing.T) {
	m := New(Config{
		Switch:  switchdp.Config{MaxLocks: 4, TotalSlots: 4, Priorities: 1},
		Servers: 1,
	})
	srv := m.Server(m.ServerFor(5))
	for txn := uint64(1); txn <= 6; txn++ { // deeper than total switch memory
		srv.ProcessPacket(acq(5, txn))
	}
	if _, err := m.MoveToSwitch(5, 2); err == nil {
		t.Fatalf("promote of 6 entries into 4 slots accepted")
	}
	if !srv.CtrlOwns(5) {
		t.Fatalf("rollback did not restore server ownership")
	}
	out := srv.ProcessPacket(rel(5, 1))
	if len(out) != 1 || out[0].Hdr.TxnID != 2 {
		t.Fatalf("post-rollback release emits = %v", out)
	}
}

// Demote replays overflow requests the server buffered while the lock was
// switch-resident, behind the migrated queue.
func TestLiveDemoteReplaysOverflow(t *testing.T) {
	m := newManager(1)
	if _, err := m.PreinstallLock(7, 8); err != nil {
		t.Fatalf("preinstall: %v", err)
	}
	m.Switch().ProcessPacket(acqShared(7, 1))
	// An overflow-marked request buffered at the server (q2).
	srv := m.Server(m.ServerFor(7))
	ovf := acqShared(7, 9)
	ovf.Flags = wire.FlagOverflow | wire.FlagBounced
	srv.ProcessPacket(ovf)

	_, emits, err := m.MoveToServer(7)
	if err != nil {
		t.Fatalf("demote: %v", err)
	}
	// The buffered shared joins the migrated shared holder immediately.
	if len(emits) != 1 || emits[0].Hdr.TxnID != 9 {
		t.Fatalf("q2 replay emits = %v", emits)
	}
}

func TestPlacementTracksLiveMoves(t *testing.T) {
	m := newManager(1)
	if _, err := m.MoveToSwitch(3, 4); err != nil {
		t.Fatalf("promote idle lock: %v", err)
	}
	p := m.Placement()
	if len(p) != 1 || p[3] != 4 {
		t.Fatalf("placement = %v, want {3:4}", p)
	}
	if _, _, err := m.MoveToServer(3); err != nil {
		t.Fatalf("demote: %v", err)
	}
	if len(m.Placement()) != 0 {
		t.Fatalf("placement after demote = %v", m.Placement())
	}
}

// AddServer rehashes the static partition; locks whose home changes migrate
// live with their queue state.
func TestAddServerMigratesRehashedLocks(t *testing.T) {
	m := newManager(2)
	// Find a lock whose home changes when the rack grows from 2 to 3.
	var moved uint32
	for id := uint32(1); id < 100; id++ {
		if lockserverHome(id, 2) != lockserverHome(id, 3) {
			moved = id
			break
		}
	}
	if moved == 0 {
		t.Fatalf("no lock rehashes from 2 to 3 servers")
	}
	oldHome := m.ServerFor(moved)
	m.Server(oldHome).ProcessPacket(acq(moved, 1))
	m.Server(oldHome).ProcessPacket(acq(moved, 2))

	idx, emits := m.AddServer()
	if idx != 2 {
		t.Fatalf("new server index = %d", idx)
	}
	if len(emits) != 0 {
		t.Fatalf("rehash emitted %v", emits)
	}
	newHome := m.ServerFor(moved)
	if newHome == oldHome {
		t.Fatalf("lock %d did not rehash", moved)
	}
	if m.Server(oldHome).CtrlOwns(moved) {
		t.Fatalf("old home still owns lock %d", moved)
	}
	if !m.Server(newHome).CtrlOwns(moved) {
		t.Fatalf("new home does not own lock %d", moved)
	}
	// State intact: the waiter is granted at the new home.
	out := m.Server(newHome).ProcessPacket(rel(moved, 1))
	if len(out) != 1 || out[0].Hdr.TxnID != 2 {
		t.Fatalf("post-rehash release emits = %v", out)
	}
}

// DrainServer evacuates all owned locks and overflow residue to the target
// and redirects the partition, while the victim redirects stragglers.
func TestDrainServerEvacuatesState(t *testing.T) {
	m := newManager(2)
	// Find locks homed on each server.
	var on0, on1 uint32
	for id := uint32(1); id < 100 && (on0 == 0 || on1 == 0); id++ {
		switch m.ServerFor(id) {
		case 0:
			if on0 == 0 {
				on0 = id
			}
		case 1:
			if on1 == 0 {
				on1 = id
			}
		}
	}
	victim := m.ServerFor(on0)
	target := 1 - victim
	m.Server(victim).ProcessPacket(acq(on0, 1))
	m.Server(victim).ProcessPacket(acq(on0, 2))
	// Overflow residue for a switch-resident lock homed on the victim.
	if _, err := m.PreinstallLock(on0+2*uint32(m.NumServers()), 4); err == nil {
		// best-effort: only if it happens to home on victim
	}

	emits, err := m.DrainServer(victim, target)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(emits) != 0 {
		t.Fatalf("drain emitted %v", emits)
	}
	if !m.Server(target).CtrlOwns(on0) {
		t.Fatalf("target does not own evacuated lock")
	}
	// Routing flipped: the victim's partition resolves to the target.
	if m.ServerFor(on0) != target {
		t.Fatalf("ServerFor(%d) = %d, want %d", on0, m.ServerFor(on0), target)
	}
	// Stragglers that still reach the victim get a moved redirect.
	out := m.Server(victim).ProcessPacket(acq(on0, 3))
	if len(out) != 1 || out[0].Hdr.Op != wire.OpReject || out[0].Hdr.Flags&wire.FlagMoved == 0 {
		t.Fatalf("straggler emits = %v, want OpReject+FlagMoved", out)
	}
	// The evacuated queue drains correctly at the target.
	out = m.Server(target).ProcessPacket(rel(on0, 1))
	if len(out) != 1 || out[0].Hdr.TxnID != 2 {
		t.Fatalf("post-drain release emits = %v", out)
	}
	// Draining into the drained server must be rejected (cycle).
	if _, err := m.DrainServer(target, victim); err == nil {
		t.Fatalf("drain into a redirected victim accepted")
	}
}

// lockserverHome mirrors lockserver.RSSCore for test-side home prediction.
func lockserverHome(id uint32, n int) int {
	return int((uint64(id) * 11400714819323198485) >> 32 % uint64(n))
}

// Live moves interoperate with the drain-based Reallocate loop: a lock
// promoted live is measured and kept by the next Reallocate round.
func TestLiveMoveThenReallocate(t *testing.T) {
	m := newManager(1)
	srv := m.Server(m.ServerFor(5))
	srv.ProcessPacket(acq(5, 1))
	if _, err := m.MoveToSwitch(5, 8); err != nil {
		t.Fatalf("promote: %v", err)
	}
	rep := m.Reallocate([]memalloc.Demand{demand(5, 1e6, 8)}, nil)
	if len(rep.Removed) != 0 {
		t.Fatalf("reallocate evicted the live-moved lock: %+v", rep)
	}
	if !m.Switch().CtrlHasLock(5) {
		t.Fatalf("lock 5 not resident after reallocate")
	}
}
