package core

// Chaos verification: drive the full manager stack — switch data plane,
// lock servers, the q1/q2 overflow handoff, placement rounds (Reallocate),
// compaction, lease sweeps, and switch/server failures — with seeded random
// workloads, feeding every observable (request, action) pair to the
// internal/check safety checker. Strict lockstep does not hold here
// (overflow buffering reorders grants relative to the sequential model and
// failures destroy requests), so the checker runs in safety-only mode with
// the priority invariant off (overflow-buffered exclusives are invisible to
// the switch's nexcl counters), and liveness is verified by draining the
// whole system to quiescence and checking conservation.

import (
	"fmt"
	"sort"
	"testing"

	"netlock/internal/check"
	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// chaosLease is the lease on the harness's virtual clock; sweeps advance
// the clock so that long-held grants expire mid-run.
const chaosLease = int64(5_000_000)

// chaosReq is the harness's record of one outstanding request.
type chaosReq struct {
	lock    uint32
	prio    uint8 // clamped to a bank index
	excl    bool
	granted bool
}

type chaos struct {
	t     *testing.T
	seed  int64
	prios int
	mgr   *Manager
	ck    *check.Checker
	now   int64

	reqs    map[uint64]*chaosReq
	holders map[check.LockPrio][]uint64 // granted, unreleased txns in grant order
	lost    map[uint64]bool
	stale   int // grants/releases for lost transactions (clients long gone)

	// trace keeps the most recent events for violation reports.
	trace []string
}

func (c *chaos) tracef(format string, args ...any) {
	if len(c.trace) >= 300 {
		c.trace = c.trace[1:]
	}
	c.trace = append(c.trace, fmt.Sprintf(format, args...))
}

func newChaos(t *testing.T, seed int64, prios int) *chaos {
	c := &chaos{
		t:       t,
		seed:    seed,
		prios:   prios,
		ck:      check.NewChecker(),
		reqs:    make(map[uint64]*chaosReq),
		holders: make(map[check.LockPrio][]uint64),
		lost:    make(map[uint64]bool),
	}
	c.ck.CheckPriority = false
	c.mgr = New(Config{
		Switch: switchdp.Config{
			MaxLocks: 4,
			// Tiny regions: a handful of slots per resident lock per bank,
			// so contention routinely overflows into q2 at the servers.
			TotalSlots:     12 * prios,
			Priorities:     prios,
			DefaultLeaseNs: chaosLease,
			Now:            func() int64 { return c.now },
		},
		Servers:        2,
		PauseBusyMoves: true,
	})
	return c
}

func (c *chaos) observe(e check.Event) {
	c.t.Helper()
	c.tracef("%v", e)
	if v := c.ck.Observe(e); v != nil {
		for _, l := range c.trace {
			c.t.Log(l)
		}
		c.t.Fatalf("%v\nreproduce with: go test -run %s -netlock.seed=%d", v, c.t.Name(), c.seed)
	}
}

func (c *chaos) bank(p uint8) uint8 {
	if int(p) >= c.prios {
		return uint8(c.prios - 1)
	}
	return p
}

// --- packet routing (the netlock.go settle loop, with grant taps) ---

func (c *chaos) inject(hd *wire.Header) {
	emits, _ := c.mgr.Switch().ProcessPacket(hd)
	pending := append([]switchdp.Emit(nil), emits...)
	for _, e := range pending {
		c.routeSwitch(e)
	}
}

func (c *chaos) routeSwitch(e switchdp.Emit) {
	switch e.Action {
	case switchdp.ActGrant, switchdp.ActFetch:
		c.tracef("  [switch %v txn=%d lock=%d]", e.Action, e.Hdr.TxnID, e.Hdr.LockID)
		c.onGrant(e.Hdr)
	case switchdp.ActReject:
		c.onReject(e.Hdr)
	case switchdp.ActForward, switchdp.ActForwardOverflow, switchdp.ActPushNotify:
		c.tracef("  [switch %v txn=%d lock=%d]", e.Action, e.Hdr.TxnID, e.Hdr.LockID)
		hd := e.Hdr
		srv := c.mgr.Server(c.mgr.ServerFor(hd.LockID))
		c.routeServerEmits(srv.ProcessPacket(&hd))
	}
}

func (c *chaos) routeServerEmits(emits []lockserver.Emit) {
	pending := append([]lockserver.Emit(nil), emits...)
	for _, e := range pending {
		c.routeServer(e)
	}
}

func (c *chaos) routeServer(e lockserver.Emit) {
	c.tracef("  [server %v txn=%d lock=%d]", e.Action, e.Hdr.TxnID, e.Hdr.LockID)
	switch e.Action {
	case lockserver.ActGrant, lockserver.ActFetch:
		c.onGrant(e.Hdr)
	case lockserver.ActExpired:
		c.onExpired(e.Hdr)
	case lockserver.ActPush:
		hd := e.Hdr
		c.inject(&hd)
	}
}

func (c *chaos) onGrant(hd wire.Header) {
	if c.lost[hd.TxnID] {
		// A failure destroyed this request's client; the grant is stale
		// (in the real system the lease sweep reclaims the slot).
		c.stale++
		return
	}
	c.observe(check.Event{Kind: check.EvGrant, Lock: hd.LockID, Txn: hd.TxnID})
	r := c.reqs[hd.TxnID]
	r.granted = true
	key := check.LockPrio{Lock: r.lock, Prio: r.prio}
	c.holders[key] = append(c.holders[key], hd.TxnID)
}

func (c *chaos) onReject(hd wire.Header) {
	c.observe(check.Event{Kind: check.EvReject, Lock: hd.LockID, Txn: hd.TxnID})
	delete(c.reqs, hd.TxnID)
}

// onExpired keeps holder accounting aligned when a server's lease sweep
// force-releases a holder.
func (c *chaos) onExpired(hd wire.Header) {
	r, ok := c.reqs[hd.TxnID]
	if !ok || !r.granted {
		c.stale++ // reclaiming a stale holder we already lost track of
		return
	}
	c.observe(check.Event{Kind: check.EvRelease, Lock: hd.LockID, Txn: hd.TxnID, Excl: r.excl, Prio: r.prio})
	c.removeHolder(r.lock, r.prio, hd.TxnID)
	delete(c.reqs, hd.TxnID)
}

func (c *chaos) removeHolder(lock uint32, prio uint8, txn uint64) {
	key := check.LockPrio{Lock: lock, Prio: prio}
	q := c.holders[key]
	for i, t := range q {
		if t == txn {
			c.holders[key] = append(q[:i:i], q[i+1:]...)
			return
		}
	}
}

// --- driver operations ---

func (c *chaos) acquire(txn uint64, op check.Op) {
	r := &chaosReq{lock: op.Lock, prio: c.bank(op.Prio), excl: op.Excl}
	c.reqs[txn] = r
	c.observe(check.Event{Kind: check.EvAcquire, Lock: op.Lock, Txn: txn, Excl: op.Excl, Prio: op.Prio})
	mode := wire.Shared
	if op.Excl {
		mode = wire.Exclusive
	}
	hd := wire.Header{Op: wire.OpAcquire, Mode: mode, LockID: op.Lock, TxnID: txn, Priority: op.Prio}
	c.inject(&hd)
}

func (c *chaos) releasableKeys() []check.LockPrio {
	var out []check.LockPrio
	for k, q := range c.holders {
		if len(q) > 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lock != out[j].Lock {
			return out[i].Lock < out[j].Lock
		}
		return out[i].Prio < out[j].Prio
	})
	return out
}

// release gives back the oldest-granted holder of one (lock, bank). The
// release packet dequeues the bank's head, which for shared runs may be a
// different (commutative) holder; the checker only needs the named
// transaction to actually hold the lock.
func (c *chaos) release(key check.LockPrio) {
	q := c.holders[key]
	txn := q[0]
	c.holders[key] = q[1:]
	r := c.reqs[txn]
	c.observe(check.Event{Kind: check.EvRelease, Lock: key.Lock, Txn: txn, Excl: r.excl, Prio: key.Prio})
	delete(c.reqs, txn)
	mode := wire.Shared
	if r.excl {
		mode = wire.Exclusive
	}
	hd := wire.Header{Op: wire.OpRelease, Mode: mode, LockID: key.Lock, TxnID: txn, Priority: key.Prio}
	c.inject(&hd)
}

// --- control-plane chaos ---

func (c *chaos) placement() {
	rep := c.mgr.Reallocate(c.mgr.MeasureDemands(0.001), nil)
	c.routeServerEmits(rep.Emits)
	for i := range rep.SwitchPushes {
		hd := rep.SwitchPushes[i]
		c.inject(&hd)
	}
}

func (c *chaos) sweep() {
	rels, emits := c.mgr.SweepLeases(c.now)
	for i := range rels {
		hd := rels[i]
		if r, ok := c.reqs[hd.TxnID]; ok && r.granted && !c.lost[hd.TxnID] {
			c.observe(check.Event{Kind: check.EvRelease, Lock: hd.LockID, Txn: hd.TxnID, Excl: r.excl, Prio: r.prio})
			c.removeHolder(r.lock, r.prio, hd.TxnID)
			delete(c.reqs, hd.TxnID)
		} else {
			c.stale++
		}
		c.inject(&hd)
	}
	c.routeServerEmits(emits)
	for _, hd := range c.mgr.SweepStranded() {
		h2 := hd
		srv := c.mgr.Server(c.mgr.ServerFor(h2.LockID))
		c.routeServerEmits(srv.ProcessPacket(&h2))
	}
}

func (c *chaos) lose(lock uint32, txn uint64) {
	r, ok := c.reqs[txn]
	if !ok {
		return
	}
	c.observe(check.Event{Kind: check.EvLost, Lock: lock, Txn: txn})
	c.lost[txn] = true
	if r.granted {
		c.removeHolder(r.lock, r.prio, txn)
	}
	delete(c.reqs, txn)
}

// failServer kills server 1: everything queued or buffered there dies with
// it (CtrlPending is the exact snapshot), then ownership fails over.
func (c *chaos) failServer() {
	const failed, replacement = 1, 0
	for _, hd := range c.mgr.Server(failed).CtrlPending() {
		c.lose(hd.LockID, hd.TxnID)
	}
	c.mgr.FailServer(failed, replacement)
}

// failSwitch wipes the switch and restarts it: every outstanding request on
// a then-resident lock is destroyed — q1 entries with the registers, and
// q2-buffered entries stranded at the servers (clients would resubmit; the
// harness accounts them as lost).
func (c *chaos) failSwitch() {
	resident := make(map[uint32]bool)
	for _, id := range c.mgr.Switch().CtrlResidentLocks() {
		resident[id] = true
	}
	var doomed []uint64
	for txn, r := range c.reqs {
		if resident[r.lock] {
			doomed = append(doomed, txn)
		}
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i] < doomed[j] })
	for _, txn := range doomed {
		c.lose(c.reqs[txn].lock, txn)
	}
	c.mgr.FailSwitch()
	c.mgr.RestartSwitch()
}

// busy reports whether the workload's locks still hold state anywhere the
// drain can reach: switch queues or server-owned queues. (Overflow buffers
// of lost requests may legitimately remain stranded after a failure.)
func (c *chaos) busy(locks int) bool {
	for _, id := range c.mgr.Switch().CtrlResidentLocks() {
		st, err := c.mgr.Switch().CtrlLockState(id)
		if err != nil {
			continue
		}
		if st.Held != 0 {
			return true
		}
		for _, b := range st.Banks {
			if b.Count != 0 {
				return true
			}
		}
	}
	for l := 1; l <= locks; l++ {
		srv := c.mgr.Server(c.mgr.ServerFor(uint32(l)))
		if owned, _ := srv.CtrlQueueDepth(uint32(l)); owned != 0 {
			return true
		}
	}
	return false
}

func runChaos(t *testing.T, seed int64) {
	const prios = 2
	cfg := check.WorkloadCfg{
		Ops:            3000,
		Locks:          3,
		Priorities:     prios,
		PExclusive:     0.4,
		PRelease:       0.45,
		MaxOutstanding: 40,
	}
	ops := check.GenOps(cfg, seed)
	c := newChaos(t, seed, prios)

	var txn uint64
	for i, op := range ops {
		c.now += 1000
		switch i {
		case len(ops) / 3:
			c.failServer()
		case 2 * len(ops) / 3:
			c.failSwitch()
		}
		if i%193 == 192 {
			c.mgr.Compact()
		}
		if i%97 == 96 {
			c.placement()
		}
		if i%151 == 150 {
			c.now += chaosLease / 2
			c.sweep()
		}
		if op.Acquire && len(c.reqs) < cfg.MaxOutstanding {
			txn++
			c.acquire(txn, op)
			continue
		}
		keys := c.releasableKeys()
		if len(keys) == 0 {
			continue
		}
		c.release(keys[op.Pick%len(keys)])
	}

	// Drain to quiescence: release every known holder; anything else
	// (waiting requests gated on pending moves, stale resurrected holders)
	// is flushed by placement rounds and clock-advanced sweeps.
	stall := 0
	for len(c.reqs) > 0 || c.busy(cfg.Locks) {
		if keys := c.releasableKeys(); len(keys) > 0 {
			c.release(keys[0])
			stall = 0
			continue
		}
		c.now += 2 * chaosLease
		c.placement()
		c.sweep()
		if stall++; stall > 200 {
			t.Fatalf("seed %d: drain stalled with %d outstanding requests (busy=%v)",
				seed, len(c.reqs), c.busy(cfg.Locks))
		}
	}
	if v := c.ck.Quiesce(); v != nil {
		t.Fatalf("%v\nreproduce with: go test -run %s -netlock.seed=%d", v, t.Name(), seed)
	}
	grants, rejects, releases := c.ck.Stats()
	if grants < 100 {
		t.Fatalf("seed %d: vacuous run: only %d grants", seed, grants)
	}
	t.Logf("seed %d: %d grants, %d rejects, %d releases, %d stale, %d lost",
		seed, grants, rejects, releases, c.stale, len(c.lost))
}

// TestManagerChaosSafety is the end-to-end safety run over the full manager
// stack with failure injection. See the file comment for what it checks.
func TestManagerChaosSafety(t *testing.T) {
	for _, seed := range check.SeedsN(4) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}
