package p4sim

import "fmt"

// Table is an exact-match match-action table: the data plane looks keys up
// at line rate; the control plane adds and removes entries at runtime.
// NetLock's lock table maps a lock ID to its queue index this way (§4.2,
// Figure 4: "the match-action table maps a lock ID to its corresponding
// register array").
//
// Entries carry a uint32 action parameter (the register index the action
// operates on). Capacity models the TCAM/SRAM budget for the table.
type Table struct {
	name     string
	capacity int
	entries  map[uint32]uint32
}

// NewTable allocates a match-action table with the given entry capacity.
func NewTable(name string, capacity int) *Table {
	if capacity <= 0 {
		panic("p4sim: non-positive table capacity")
	}
	return &Table{name: name, capacity: capacity, entries: make(map[uint32]uint32, capacity)}
}

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

// Capacity returns the entry budget.
func (t *Table) Capacity() int { return t.capacity }

// Len returns the number of installed entries.
func (t *Table) Len() int { return len(t.entries) }

// Free returns the remaining entry budget.
func (t *Table) Free() int { return t.capacity - len(t.entries) }

// Lookup matches a key in the data plane; a miss selects the default
// action (the caller's miss path).
func (t *Table) Lookup(key uint32) (param uint32, hit bool) {
	param, hit = t.entries[key]
	return param, hit
}

// CtrlAdd installs an entry. Duplicate keys and a full table are
// control-plane errors.
func (t *Table) CtrlAdd(key, param uint32) error {
	if _, ok := t.entries[key]; ok {
		return fmt.Errorf("p4sim: table %s: duplicate key %d", t.name, key)
	}
	if len(t.entries) >= t.capacity {
		return fmt.Errorf("p4sim: table %s full (%d entries)", t.name, t.capacity)
	}
	t.entries[key] = param
	return nil
}

// CtrlDel removes an entry.
func (t *Table) CtrlDel(key uint32) error {
	if _, ok := t.entries[key]; !ok {
		return fmt.Errorf("p4sim: table %s: no entry for key %d", t.name, key)
	}
	delete(t.entries, key)
	return nil
}

// CtrlKeys returns the installed keys (no order guarantee).
func (t *Table) CtrlKeys() []uint32 {
	out := make([]uint32, 0, len(t.entries))
	for k := range t.entries {
		out = append(out, k)
	}
	return out
}

// CtrlClear removes every entry.
func (t *Table) CtrlClear() {
	for k := range t.entries {
		delete(t.entries, k)
	}
}
