package p4sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func testPipeline() *Pipeline {
	return NewPipeline(Config{Stages: 4, StageSlots: 128, MaxResubmits: 8})
}

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value not a string: %v", r)
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	f()
}

func TestPipelineConfigValidation(t *testing.T) {
	mustPanic(t, "invalid pipeline config", func() { NewPipeline(Config{}) })
}

func TestAllocArrayBudget(t *testing.T) {
	p := testPipeline()
	a := p.AllocArray("a", 0, 100)
	if a.Size() != 100 || a.Stage() != 0 || a.Name() != "a" {
		t.Fatalf("array metadata wrong: %v %v %v", a.Size(), a.Stage(), a.Name())
	}
	if p.StageFree(0) != 28 {
		t.Fatalf("stage free = %d, want 28", p.StageFree(0))
	}
	mustPanic(t, "budget exceeded", func() { p.AllocArray("b", 0, 29) })
	// Other stages unaffected.
	p.AllocArray("c", 1, 128)
}

func TestAllocArrayValidation(t *testing.T) {
	p := testPipeline()
	mustPanic(t, "out of range", func() { p.AllocArray("x", 4, 1) })
	mustPanic(t, "out of range", func() { p.AllocArray("x", -1, 1) })
	mustPanic(t, "non-positive size", func() { p.AllocArray("x", 0, 0) })
}

func TestSingleAccessPerPass(t *testing.T) {
	p := testPipeline()
	a := p.AllocArray("a", 0, 8)
	mustPanic(t, "accessed twice", func() {
		p.Process(func(c *Ctx) {
			a.Write(c, 0, 1)
			a.Read(c, 0)
		})
	})
}

func TestStageOrderEnforced(t *testing.T) {
	p := testPipeline()
	s0 := p.AllocArray("s0", 0, 8)
	s2 := p.AllocArray("s2", 2, 8)
	// Forward order is fine.
	p.Process(func(c *Ctx) {
		s0.Read(c, 0)
		s2.Read(c, 0)
	})
	// Backward order is a program bug.
	mustPanic(t, "traverse stages in order", func() {
		p.Process(func(c *Ctx) {
			s2.Read(c, 0)
			s0.Read(c, 0)
		})
	})
}

func TestResubmitAllowsSecondAccess(t *testing.T) {
	p := testPipeline()
	a := p.AllocArray("a", 0, 8)
	sum := uint64(0)
	passes := p.Process(func(c *Ctx) {
		v := a.ReadModifyWrite(c, 0, func(old uint64) uint64 { return old + 1 })
		sum += v
		if c.PassIndex() < 2 {
			c.Resubmit()
		}
	})
	if passes != 3 {
		t.Fatalf("passes = %d, want 3", passes)
	}
	if sum != 0+1+2 {
		t.Fatalf("RMW sequence wrong: sum=%d", sum)
	}
	if a.CtrlRead(0) != 3 {
		t.Fatalf("final value = %d, want 3", a.CtrlRead(0))
	}
}

func TestResubmitLimit(t *testing.T) {
	p := testPipeline()
	mustPanic(t, "resubmits", func() {
		p.Process(func(c *Ctx) { c.Resubmit() })
	})
}

func TestPassAndPacketAccounting(t *testing.T) {
	p := testPipeline()
	p.Process(func(c *Ctx) {})
	p.Process(func(c *Ctx) {
		if c.PassIndex() == 0 {
			c.Resubmit()
		}
	})
	if p.Packets() != 2 {
		t.Fatalf("packets = %d, want 2", p.Packets())
	}
	if p.Passes() != 3 {
		t.Fatalf("passes = %d, want 3", p.Passes())
	}
}

func TestIndexOutOfRange(t *testing.T) {
	p := testPipeline()
	a := p.AllocArray("a", 0, 8)
	mustPanic(t, "out of range", func() {
		p.Process(func(c *Ctx) { a.Read(c, 8) })
	})
	mustPanic(t, "out of range", func() {
		p.Process(func(c *Ctx) { a.Read(c, -1) })
	})
}

func TestForeignPipelineRejected(t *testing.T) {
	p1 := testPipeline()
	p2 := testPipeline()
	a := p1.AllocArray("a", 0, 8)
	mustPanic(t, "foreign pipeline", func() {
		p2.Process(func(c *Ctx) { a.Read(c, 0) })
	})
}

func TestControlPlaneAccess(t *testing.T) {
	p := testPipeline()
	a := p.AllocArray("a", 0, 4)
	a.CtrlWrite(2, 42)
	if a.CtrlRead(2) != 42 {
		t.Fatalf("ctrl read = %d, want 42", a.CtrlRead(2))
	}
	snap := a.CtrlSnapshot(nil)
	if len(snap) != 4 || snap[2] != 42 {
		t.Fatalf("snapshot = %v", snap)
	}
	// Snapshot reuses the destination buffer.
	snap2 := a.CtrlSnapshot(snap)
	if &snap2[0] != &snap[0] {
		t.Fatalf("snapshot should reuse dst buffer")
	}
	// Control access does not consume the data-plane access budget.
	p.Process(func(c *Ctx) {
		a.CtrlRead(0)
		a.Read(c, 0)
	})
}

func TestCounter(t *testing.T) {
	c := NewCounter("reqs", 4)
	if c.Name() != "reqs" || c.Size() != 4 {
		t.Fatalf("counter metadata wrong")
	}
	c.Inc(1, 3)
	c.Inc(1, 2)
	if c.CtrlRead(1) != 5 {
		t.Fatalf("counter = %d, want 5", c.CtrlRead(1))
	}
	if got := c.CtrlClear(1); got != 5 {
		t.Fatalf("clear returned %d, want 5", got)
	}
	if c.CtrlRead(1) != 0 {
		t.Fatalf("counter not cleared")
	}
}

func TestCounterValidation(t *testing.T) {
	mustPanic(t, "non-positive counter size", func() { NewCounter("x", 0) })
}

func TestMeterConformance(t *testing.T) {
	m := NewMeter("quota", 2)
	if m.Name() != "quota" || m.Size() != 2 {
		t.Fatalf("meter metadata wrong")
	}
	// Unconfigured cell: always red.
	if m.Conforming(0, 0) {
		t.Fatalf("unconfigured meter cell should be red")
	}
	// 10 pkts/sec, burst 2.
	m.CtrlSetRate(1, 10, 2)
	if !m.Conforming(1, 0) || !m.Conforming(1, 0) {
		t.Fatalf("burst tokens should admit two packets")
	}
	if m.Conforming(1, 0) {
		t.Fatalf("third packet at t=0 should be red")
	}
	// After 100ms, one token has accumulated.
	if !m.Conforming(1, 100e6) {
		t.Fatalf("packet after refill should be green")
	}
	if m.Conforming(1, 100e6) {
		t.Fatalf("second packet should be red again")
	}
}

func TestMeterBurstCap(t *testing.T) {
	m := NewMeter("q", 1)
	m.CtrlSetRate(0, 1000, 3)
	// A long idle period must not accumulate more than burst tokens.
	for i := 0; i < 3; i++ {
		if !m.Conforming(0, 10e9) {
			t.Fatalf("packet %d within burst should be green", i)
		}
	}
	if m.Conforming(0, 10e9) {
		t.Fatalf("burst cap exceeded")
	}
}

func TestMeterValidation(t *testing.T) {
	mustPanic(t, "non-positive meter size", func() { NewMeter("x", 0) })
	m := NewMeter("x", 1)
	mustPanic(t, "invalid meter configuration", func() { m.CtrlSetRate(0, -1, 1) })
	mustPanic(t, "invalid meter configuration", func() { m.CtrlSetRate(0, 1, 0) })
}

// Property: meter admission over a long window never exceeds rate*time+burst.
func TestMeterRateBoundProperty(t *testing.T) {
	f := func(rateRaw, burstRaw uint8, arrivalsRaw []uint16) bool {
		rate := float64(rateRaw%100) + 1
		burst := float64(burstRaw%10) + 1
		m := NewMeter("q", 1)
		m.CtrlSetRate(0, rate, burst)
		now := int64(0)
		green := 0
		for _, a := range arrivalsRaw {
			now += int64(a) * 1e6 // up to 65ms apart
			if m.Conforming(0, now) {
				green++
			}
		}
		bound := rate*float64(now)/1e9 + burst
		return float64(green) <= bound+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RMW applied k times (via k packets) equals k sequential
// applications of the function.
func TestRMWSequenceProperty(t *testing.T) {
	f := func(adds []uint8) bool {
		p := testPipeline()
		a := p.AllocArray("a", 0, 1)
		want := uint64(0)
		for _, d := range adds {
			d := uint64(d)
			p.Process(func(c *Ctx) {
				a.ReadModifyWrite(c, 0, func(old uint64) uint64 { return old + d })
			})
			want += d
		}
		return a.CtrlRead(0) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableBasics(t *testing.T) {
	tbl := NewTable("locks", 2)
	if tbl.Name() != "locks" || tbl.Capacity() != 2 || tbl.Len() != 0 || tbl.Free() != 2 {
		t.Fatalf("metadata wrong")
	}
	if err := tbl.CtrlAdd(7, 42); err != nil {
		t.Fatal(err)
	}
	if p, hit := tbl.Lookup(7); !hit || p != 42 {
		t.Fatalf("lookup = %d,%v", p, hit)
	}
	if _, hit := tbl.Lookup(8); hit {
		t.Fatalf("miss expected")
	}
	if err := tbl.CtrlAdd(7, 43); err == nil {
		t.Fatalf("duplicate add should fail")
	}
	if err := tbl.CtrlAdd(8, 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CtrlAdd(9, 1); err == nil {
		t.Fatalf("full table should reject")
	}
	if err := tbl.CtrlDel(7); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CtrlDel(7); err == nil {
		t.Fatalf("double delete should fail")
	}
	if keys := tbl.CtrlKeys(); len(keys) != 1 || keys[0] != 8 {
		t.Fatalf("keys = %v", keys)
	}
	tbl.CtrlClear()
	if tbl.Len() != 0 {
		t.Fatalf("clear failed")
	}
}

func TestTableValidation(t *testing.T) {
	mustPanic(t, "non-positive table capacity", func() { NewTable("x", 0) })
}
