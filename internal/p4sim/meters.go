package p4sim

// Counter is an indexed packet/byte counter block, as exposed by P4
// counters. NetLock's control plane uses counters to measure per-lock
// request rates (r_i) and observed contention (c_i) that feed the memory
// allocation algorithm (§4.3).
//
// Counters are written by the data plane and read/cleared by the control
// plane; hardware counters do not have the single-access-per-pass
// restriction of registers, so Counter.Inc takes no Ctx.
type Counter struct {
	name string
	vals []uint64
}

// NewCounter allocates a counter block with size cells.
func NewCounter(name string, size int) *Counter {
	if size <= 0 {
		panic("p4sim: non-positive counter size")
	}
	return &Counter{name: name, vals: make([]uint64, size)}
}

// Name returns the counter block's name.
func (c *Counter) Name() string { return c.name }

// Size returns the number of cells.
func (c *Counter) Size() int { return len(c.vals) }

// Inc adds n to cell idx.
func (c *Counter) Inc(idx int, n uint64) { c.vals[idx] += n }

// CtrlRead returns cell idx.
func (c *Counter) CtrlRead(idx int) uint64 { return c.vals[idx] }

// CtrlClear zeroes cell idx and returns its previous value, as the control
// plane does when closing a measurement window.
func (c *Counter) CtrlClear(idx int) uint64 {
	v := c.vals[idx]
	c.vals[idx] = 0
	return v
}

// Meter is an indexed token-bucket rate limiter, as exposed by P4 meters.
// NetLock uses meters to enforce per-tenant quotas for the performance
// isolation policy (§4.4).
//
// The meter is single-rate two-color: a packet is green (conforming) if a
// token is available, red otherwise. Time is supplied by the caller in
// nanoseconds so the meter works identically in virtual and real time.
type Meter struct {
	name string
	// ratePerSec is tokens added per second per cell.
	ratePerSec []float64
	burst      []float64
	tokens     []float64
	lastNs     []int64
}

// NewMeter allocates a meter block with size cells. Each cell must be
// configured with CtrlSetRate before it will pass traffic.
func NewMeter(name string, size int) *Meter {
	if size <= 0 {
		panic("p4sim: non-positive meter size")
	}
	return &Meter{
		name:       name,
		ratePerSec: make([]float64, size),
		burst:      make([]float64, size),
		tokens:     make([]float64, size),
		lastNs:     make([]int64, size),
	}
}

// Name returns the meter block's name.
func (m *Meter) Name() string { return m.name }

// Size returns the number of cells.
func (m *Meter) Size() int { return len(m.vals()) }

func (m *Meter) vals() []float64 { return m.tokens }

// CtrlSetRate configures cell idx with a sustained rate (packets/second) and
// a burst allowance (packets). The bucket starts full.
func (m *Meter) CtrlSetRate(idx int, perSec float64, burst float64) {
	if perSec < 0 || burst <= 0 {
		panic("p4sim: invalid meter configuration")
	}
	m.ratePerSec[idx] = perSec
	m.burst[idx] = burst
	m.tokens[idx] = burst
}

// Conforming consumes one token from cell idx at time nowNs and reports
// whether the packet is green. An unconfigured cell always reports red.
func (m *Meter) Conforming(idx int, nowNs int64) bool {
	if m.ratePerSec[idx] == 0 && m.burst[idx] == 0 {
		return false
	}
	elapsed := nowNs - m.lastNs[idx]
	if elapsed > 0 {
		m.tokens[idx] += float64(elapsed) / 1e9 * m.ratePerSec[idx]
		if m.tokens[idx] > m.burst[idx] {
			m.tokens[idx] = m.burst[idx]
		}
		m.lastNs[idx] = nowNs
	}
	if m.tokens[idx] >= 1 {
		m.tokens[idx]--
		return true
	}
	return false
}
