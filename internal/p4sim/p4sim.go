// Package p4sim models the programmable switch data plane that NetLock is
// compiled to (Barefoot Tofino class, programmed in P4).
//
// The model is deliberately constrained to what the hardware can do, because
// NetLock's data-plane algorithms (paper §4.2) are shaped by exactly these
// constraints:
//
//   - State lives in register arrays, each bound to one pipeline stage.
//   - A packet traverses stages strictly in order; it may access each
//     register array at most once per traversal, and only with a single
//     read-modify-write (the stateful ALU executes one update function per
//     crossing).
//   - The only way to touch the same state again is to resubmit the packet
//     to the start of the pipeline, carrying packet metadata across passes.
//   - Per-stage memory is limited; arrays must fit their stage's budget.
//
// Violations are reported as panics: they correspond to P4 programs that
// would not compile or load, i.e. programmer errors, not runtime conditions.
//
// The model is untimed; callers (internal/cluster) impose line-rate service
// times externally. It is not safe for concurrent use — a hardware pipeline
// processes packets one at a time per pipe, and the simulation preserves
// that serialization.
package p4sim

import "fmt"

// Config sets the resource envelope of a pipeline, mirroring a Tofino-class
// switch: a fixed number of match-action stages and a per-stage register
// memory budget measured in 64-bit slots.
type Config struct {
	// Stages is the number of match-action stages (Tofino: 12 per pipe).
	Stages int
	// StageSlots is the register memory budget per stage in 64-bit slots.
	StageSlots int
	// MaxResubmits bounds pipeline passes per packet; a resubmit loop beyond
	// this indicates a broken program and panics.
	MaxResubmits int
}

// DefaultConfig matches the prototype in the paper: 12 stages, enough
// register budget per stage for the 100K-slot shared queue plus bookkeeping.
func DefaultConfig() Config {
	return Config{Stages: 12, StageSlots: 64 * 1024, MaxResubmits: 64}
}

// Pipeline is one switch pipe: an ordered set of stages holding register
// arrays, processing one packet at a time with an enforced access
// discipline.
type Pipeline struct {
	cfg       Config
	arrays    []*RegisterArray
	stageUsed []int // slots allocated per stage
	pass      uint64
	passes    uint64 // total passes processed (for resubmit accounting)
	packets   uint64 // total packets processed
	// ctx is the reusable per-pass context: a pipeline processes one packet
	// at a time, so Process can recycle a single Ctx instead of allocating
	// one per pass (the data-plane hot path must not allocate).
	ctx Ctx
}

// NewPipeline creates a pipeline with the given resources.
func NewPipeline(cfg Config) *Pipeline {
	if cfg.Stages <= 0 || cfg.StageSlots <= 0 || cfg.MaxResubmits <= 0 {
		panic("p4sim: invalid pipeline config")
	}
	return &Pipeline{cfg: cfg, stageUsed: make([]int, cfg.Stages)}
}

// Config returns the pipeline's resource envelope.
func (p *Pipeline) Config() Config { return p.cfg }

// StageFree returns the unallocated register slots in a stage.
func (p *Pipeline) StageFree(stage int) int {
	return p.cfg.StageSlots - p.stageUsed[stage]
}

// Packets returns the number of packets processed (excluding resubmit
// passes).
func (p *Pipeline) Packets() uint64 { return p.packets }

// Passes returns the number of pipeline traversals, counting each resubmit.
// Passes/Packets is the resubmit amplification factor reported in the
// ablation benchmarks.
func (p *Pipeline) Passes() uint64 { return p.passes }

// RegisterArray is stateful per-stage memory: a fixed array of 64-bit
// values, readable and writable once per pipeline pass via a Ctx, and freely
// accessible from the control plane (which runs asynchronously over PCIe and
// carries no per-pass constraint).
type RegisterArray struct {
	name     string
	stage    int
	vals     []uint64
	lastPass uint64
	pipe     *Pipeline
}

// AllocArray allocates a register array in a stage. It panics if the stage
// is out of range or the stage's memory budget is exceeded — both are
// compile/load-time errors on real hardware.
func (p *Pipeline) AllocArray(name string, stage, size int) *RegisterArray {
	if stage < 0 || stage >= p.cfg.Stages {
		panic(fmt.Sprintf("p4sim: array %q: stage %d out of range [0,%d)", name, stage, p.cfg.Stages))
	}
	if size <= 0 {
		panic(fmt.Sprintf("p4sim: array %q: non-positive size %d", name, size))
	}
	if p.stageUsed[stage]+size > p.cfg.StageSlots {
		panic(fmt.Sprintf("p4sim: array %q: stage %d budget exceeded (%d used + %d > %d)",
			name, stage, p.stageUsed[stage], size, p.cfg.StageSlots))
	}
	p.stageUsed[stage] += size
	a := &RegisterArray{name: name, stage: stage, vals: make([]uint64, size), pipe: p}
	p.arrays = append(p.arrays, a)
	return a
}

// Name returns the array's name.
func (a *RegisterArray) Name() string { return a.name }

// Stage returns the stage the array is bound to.
func (a *RegisterArray) Stage() int { return a.stage }

// Size returns the number of slots.
func (a *RegisterArray) Size() int { return len(a.vals) }

// Ctx is the per-pass execution context handed to a data-plane program. It
// enforces the access discipline and carries the resubmit request.
//
// Packet metadata that must survive a resubmit (the paper's meta.flag,
// meta.mode, meta.pointer in Algorithm 2) lives in the program's own packet
// struct; Ctx only tracks what the hardware enforces.
type Ctx struct {
	pipe      *Pipeline
	stageAt   int // highest stage accessed so far this pass
	resubmit  bool
	passIndex int // 0 for the first pass
}

// PassIndex returns the number of resubmits that preceded this pass (0 on
// first traversal).
func (c *Ctx) PassIndex() int { return c.passIndex }

// Resubmit requests that the packet re-enter the pipeline after this pass.
func (c *Ctx) Resubmit() { c.resubmit = true }

func (a *RegisterArray) checkAccess(c *Ctx, idx int) {
	if c.pipe != a.pipe {
		panic(fmt.Sprintf("p4sim: array %q accessed from foreign pipeline", a.name))
	}
	if idx < 0 || idx >= len(a.vals) {
		panic(fmt.Sprintf("p4sim: array %q index %d out of range [0,%d)", a.name, idx, len(a.vals)))
	}
	if a.lastPass == a.pipe.pass {
		panic(fmt.Sprintf("p4sim: array %q accessed twice in one pass (stage %d)", a.name, a.stage))
	}
	if a.stage < c.stageAt {
		panic(fmt.Sprintf("p4sim: array %q in stage %d accessed after stage %d — packets traverse stages in order",
			a.name, a.stage, c.stageAt))
	}
	a.lastPass = a.pipe.pass
	c.stageAt = a.stage
}

// Read returns the value at idx. This consumes the array's single access for
// the pass.
func (a *RegisterArray) Read(c *Ctx, idx int) uint64 {
	a.checkAccess(c, idx)
	return a.vals[idx]
}

// Write stores v at idx. This consumes the array's single access for the
// pass.
func (a *RegisterArray) Write(c *Ctx, idx int, v uint64) {
	a.checkAccess(c, idx)
	a.vals[idx] = v
}

// ReadModifyWrite applies f atomically to the value at idx and returns the
// previous value. Like the Tofino stateful ALU, this is a single crossing:
// it consumes the array's single access for the pass.
func (a *RegisterArray) ReadModifyWrite(c *Ctx, idx int, f func(uint64) uint64) uint64 {
	a.checkAccess(c, idx)
	old := a.vals[idx]
	a.vals[idx] = f(old)
	return old
}

// CtrlRead reads idx from the control plane, outside any pass.
func (a *RegisterArray) CtrlRead(idx int) uint64 { return a.vals[idx] }

// CtrlWrite writes idx from the control plane, outside any pass.
func (a *RegisterArray) CtrlWrite(idx int, v uint64) { a.vals[idx] = v }

// CtrlSnapshot copies the whole array, as the control plane does when
// polling for expired leases (§4.5).
func (a *RegisterArray) CtrlSnapshot(dst []uint64) []uint64 {
	return append(dst[:0], a.vals...)
}

// Program is a data-plane program: one packet traversal. The packet is
// whatever struct the program operates on; programs keep per-packet metadata
// (PHV fields) inside it across resubmits.
type Program func(c *Ctx)

// Process runs one packet through the pipeline, honoring resubmits. It
// returns the number of passes taken. Process panics if the program
// resubmits more than MaxResubmits times.
func (p *Pipeline) Process(prog Program) int {
	p.packets++
	passes := 0
	for {
		p.pass++
		p.passes++
		p.ctx = Ctx{pipe: p, passIndex: passes}
		prog(&p.ctx)
		passes++
		if !p.ctx.resubmit {
			return passes
		}
		if passes > p.cfg.MaxResubmits {
			panic(fmt.Sprintf("p4sim: packet exceeded %d resubmits", p.cfg.MaxResubmits))
		}
	}
}
