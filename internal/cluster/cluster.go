// Package cluster is the virtual-time testbed that reproduces the paper's
// evaluation (§6): one rack with client machines, a ToR lock switch, lock
// servers, and (for the RDMA baselines) server NICs, all running on the
// deterministic discrete-event engine.
//
// Calibration follows the paper's measured constants:
//
//   - a client machine generates up to 18 MRPS with a 40G NIC (§5):
//     ~55 ns/request send path;
//   - a lock server sustains 18 MRPS across 8 cores with DPDK+RSS (§5):
//     ~444 ns/request per core;
//   - the Tofino processes >4 billion packets/s (§6.2): ~0.25 ns/pass —
//     effectively line rate, never the bottleneck;
//   - in-rack one-way hop ~1 µs, client software+NIC overhead a few µs, so
//     an uncontended switch grant lands at the ~8 µs median of Figure 8a;
//   - a ConnectX-3-class RDMA NIC executes a few million atomics/s
//     (internal/rdma defaults).
//
// The shapes of every figure — who wins, by what factor, where crossovers
// fall — emerge from these capacities plus the protocol implementations;
// none of the figures is hard-coded.
package cluster

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"netlock/internal/eventsim"
	"netlock/internal/stats"
	"netlock/internal/wire"
)

// Config describes the rack and the client behavior.
type Config struct {
	Seed int64
	// Clients is the number of client machines.
	Clients int
	// WorkersPerClient is the closed-loop concurrency per client machine:
	// outstanding transaction contexts (DPDK pipelining).
	WorkersPerClient int
	// OpenLoopRate, if positive, switches clients to open-loop generation
	// at this many transactions per second per client machine.
	OpenLoopRate float64

	// HopNs is the one-way delay of one in-rack hop (client<->switch or
	// switch<->server).
	HopNs int64
	// ClientSendNs is the client NIC serialization time per request.
	ClientSendNs int64
	// ClientOverheadNs is the client software+NIC processing overhead,
	// charged once at send and once at receive.
	ClientOverheadNs int64
	// SwitchPassNs is the switch service time per pipeline pass.
	SwitchPassNs int64
	// ServerCores and ServerCoreNs set each lock server's CPU capacity.
	ServerCores  int
	ServerCoreNs int64
	// ServerBatchNs is the fixed request latency added at a lock server
	// before processing: DPDK RX polling and batch assembly. It models why
	// server-involved lock paths always cost more than an RTT (§1, §2.1)
	// without reducing server throughput.
	ServerBatchNs int64
	// DBServiceNs is the database server's per-fetch service time
	// (one-RTT mode experiments).
	DBServiceNs int64

	// RetryTimeoutNs resends an unanswered acquire (packet loss / switch
	// failure). Zero disables retries.
	RetryTimeoutNs int64
	// SeriesBucketNs enables per-tenant throughput time series with the
	// given bucket width (Figures 12 and 15). Zero disables.
	SeriesBucketNs int64
	// Tenants is the number of tenants; tenant IDs are assigned to client
	// machines round-robin by TenantOf unless a workload overrides them.
	Tenants int
	// ClientStartNs delays client machine i's workers until the given
	// virtual time (Figure 12a's late-starting tenant). Missing entries
	// start at time zero.
	ClientStartNs map[int]int64
}

// DefaultConfig returns the calibrated testbed parameters.
func DefaultConfig() Config {
	return Config{
		Clients:          10,
		WorkersPerClient: 48,
		HopNs:            1000,
		ClientSendNs:     55,
		ClientOverheadNs: 2800,
		SwitchPassNs:     1, // 4+ BPPS line rate: never the bottleneck
		ServerCores:      8,
		ServerCoreNs:     444,
		ServerBatchNs:    15_000,
		DBServiceNs:      1000,
		Tenants:          1,
	}
}

// Request is one lock operation issued by a client worker.
type Request struct {
	LockID   uint32
	Mode     wire.Mode
	TxnID    uint64
	Tenant   uint8
	Priority uint8
	Client   int // client machine index
	// LeaseNs is the requested lease duration (0: service default).
	LeaseNs int64
	// OneRTT requests grant-to-database forwarding.
	OneRTT bool
}

// Header builds the wire header for the request.
func (r Request) Header(op wire.Op) wire.Header {
	h := wire.Header{
		Op:       op,
		Mode:     r.Mode,
		LockID:   r.LockID,
		TxnID:    r.TxnID,
		ClientIP: ClientIP(r.Client),
		TenantID: r.Tenant,
		Priority: r.Priority,
		LeaseNs:  r.LeaseNs,
	}
	if r.OneRTT {
		h.Flags |= wire.FlagOneRTT
	}
	return h
}

// ClientIP maps a client machine index to its address.
func ClientIP(idx int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, byte(idx >> 8), byte(idx)})
}

// ClientIndex inverts ClientIP.
func ClientIndex(a netip.Addr) int {
	b := a.As4()
	return int(b[2])<<8 | int(b[3])
}

// LockService is a lock-manager system under test. Implementations schedule
// their own virtual-time delays on the testbed and invoke the callbacks at
// the corresponding completion times.
type LockService interface {
	// Name identifies the system in reports.
	Name() string
	// Acquire requests a lock; granted runs when the client learns of the
	// grant.
	Acquire(req Request, granted func())
	// Release releases a granted lock; fire-and-forget.
	Release(req Request)
}

// LockOrderer is implemented by services whose effective lock identity
// differs from the application's lock ID (NetChain's granularity-adapted
// table). Clients sort a transaction's acquisitions by OrderKey so the
// global acquisition order — the deadlock-freedom discipline — holds for
// the identities actually locked.
type LockOrderer interface {
	OrderKey(lockID uint32) uint64
}

// Testbed is the simulated rack.
type Testbed struct {
	Cfg Config
	Eng *eventsim.Engine
	Rng *rand.Rand

	clientNIC []*eventsim.Station
	switchSt  *eventsim.Station
	dbSt      *eventsim.Station

	switchDown bool

	nextTxn uint64

	// Metrics.
	TxnLatency  stats.Histogram
	LockLatency stats.Histogram
	Txns        uint64
	Grants      uint64
	measuring   bool
	measureFrom int64

	tenantTxns   []uint64
	tenantSeries []*stats.TimeSeries
}

// NewTestbed builds the rack.
func NewTestbed(cfg Config) *Testbed {
	if cfg.Clients <= 0 {
		panic("cluster: need at least one client")
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	eng := &eventsim.Engine{}
	tb := &Testbed{
		Cfg:      cfg,
		Eng:      eng,
		Rng:      rand.New(rand.NewSource(cfg.Seed)),
		switchSt: eventsim.NewStation(eng, cfg.SwitchPassNs),
		dbSt:     eventsim.NewStation(eng, cfg.DBServiceNs),
	}
	for i := 0; i < cfg.Clients; i++ {
		tb.clientNIC = append(tb.clientNIC, eventsim.NewStation(eng, cfg.ClientSendNs))
	}
	tb.tenantTxns = make([]uint64, cfg.Tenants)
	if cfg.SeriesBucketNs > 0 {
		for i := 0; i < cfg.Tenants; i++ {
			tb.tenantSeries = append(tb.tenantSeries, stats.NewTimeSeries(cfg.SeriesBucketNs))
		}
	}
	return tb
}

// NextTxnID allocates a fresh transaction ID (never wire.TxnNone).
func (tb *Testbed) NextTxnID() uint64 {
	tb.nextTxn++
	return tb.nextTxn
}

// TenantOf maps a client machine to its tenant (round-robin blocks).
func (tb *Testbed) TenantOf(client int) uint8 {
	if tb.Cfg.Tenants <= 1 {
		return 0
	}
	per := (tb.Cfg.Clients + tb.Cfg.Tenants - 1) / tb.Cfg.Tenants
	t := client / per
	if t >= tb.Cfg.Tenants {
		t = tb.Cfg.Tenants - 1
	}
	return uint8(t)
}

// SetSwitchDown drops all traffic through the ToR (switch failure window).
func (tb *Testbed) SetSwitchDown(down bool) { tb.switchDown = down }

// SwitchDown reports the failure state.
func (tb *Testbed) SwitchDown() bool { return tb.switchDown }

// SwitchStation exposes the switch service station to services.
func (tb *Testbed) SwitchStation() *eventsim.Station { return tb.switchSt }

// DBStation exposes the database-server station (one-RTT mode).
func (tb *Testbed) DBStation() *eventsim.Station { return tb.dbSt }

// ClientNIC exposes client machine i's send station.
func (tb *Testbed) ClientNIC(i int) *eventsim.Station { return tb.clientNIC[i] }

// --- metric recording (services and workers call these) ---

// RecordGrant records a completed lock acquisition that took latencyNs.
func (tb *Testbed) RecordGrant(latencyNs int64) {
	if !tb.measuring {
		return
	}
	tb.Grants++
	tb.LockLatency.Record(latencyNs)
}

// RecordTxn records a completed transaction for a tenant.
func (tb *Testbed) RecordTxn(tenant uint8, latencyNs int64) {
	tb.tick(tenant)
	if !tb.measuring {
		return
	}
	tb.Txns++
	tb.TxnLatency.Record(latencyNs)
	tb.tenantTxns[tenant]++
}

// tick updates the per-tenant time series (recorded even outside the
// measurement window, since the series is the measurement for the
// time-series figures).
func (tb *Testbed) tick(tenant uint8) {
	if tb.tenantSeries != nil {
		tb.tenantSeries[tenant].Add(tb.Eng.Now(), 1)
	}
}

// TenantSeries returns tenant t's transaction-rate time series (nil if
// disabled).
func (tb *Testbed) TenantSeries(t int) *stats.TimeSeries {
	if tb.tenantSeries == nil {
		return nil
	}
	return tb.tenantSeries[t]
}

// TenantTxns returns the transactions completed per tenant inside the
// measurement window.
func (tb *Testbed) TenantTxns() []uint64 {
	out := make([]uint64, len(tb.tenantTxns))
	copy(out, tb.tenantTxns)
	return out
}

// --- run loop ---

// TxnSpec is one transaction: the locks to hold simultaneously and the
// execution (think) time while holding them.
type TxnSpec struct {
	Locks []Request
	// ThinkNs is the in-memory execution time while the locks are held.
	ThinkNs int64
	// Tenant overrides the worker's default tenant when >= 0.
	Tenant int
}

// Workload generates transactions for client workers.
type Workload interface {
	// NextTxn returns the next transaction for a worker on the given
	// client machine. Implementations must be deterministic given rng.
	NextTxn(client int, rng *rand.Rand) TxnSpec
}

// Result summarizes one experiment run.
type Result struct {
	System     string
	WindowSec  float64
	Txns       uint64
	Grants     uint64
	TxnRate    float64 // transactions/second
	LockRate   float64 // granted lock requests/second
	TxnLat     stats.Summary
	LockLat    stats.Summary
	TenantTxns []uint64
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("%-10s txn=%.3f MTPS lock=%.3f MRPS txn-lat{%v} lock-lat{%v}",
		r.System, r.TxnRate/1e6, r.LockRate/1e6, r.TxnLat, r.LockLat)
}

// Run drives the workload against the service: closed-loop (or open-loop)
// client workers, a warmup period excluded from measurement, then a
// measured window. It returns the collected metrics.
func (tb *Testbed) Run(svc LockService, wl Workload, warmupNs, windowNs int64) Result {
	if windowNs <= 0 {
		panic("cluster: non-positive measurement window")
	}
	for c := 0; c < tb.Cfg.Clients; c++ {
		if tb.Cfg.OpenLoopRate > 0 {
			tb.startOpenLoop(c, svc, wl)
			continue
		}
		for w := 0; w < tb.Cfg.WorkersPerClient; w++ {
			tb.startWorker(c, svc, wl)
		}
	}
	tb.Eng.RunUntil(warmupNs)
	tb.measuring = true
	tb.measureFrom = tb.Eng.Now()
	tb.Eng.RunUntil(warmupNs + windowNs)
	tb.measuring = false
	sec := float64(windowNs) / 1e9
	return Result{
		System:     svc.Name(),
		WindowSec:  sec,
		Txns:       tb.Txns,
		Grants:     tb.Grants,
		TxnRate:    float64(tb.Txns) / sec,
		LockRate:   float64(tb.Grants) / sec,
		TxnLat:     tb.TxnLatency.Summarize(),
		LockLat:    tb.LockLatency.Summarize(),
		TenantTxns: tb.TenantTxns(),
	}
}

// startWorker runs one closed-loop transaction context.
func (tb *Testbed) startWorker(client int, svc LockService, wl Workload) {
	var runTxn func()
	runTxn = func() {
		spec := wl.NextTxn(client, tb.Rng)
		tb.execute(client, svc, spec, runTxn)
	}
	// Stagger worker starts to avoid a synchronized burst at t=0.
	tb.Eng.At(tb.Cfg.ClientStartNs[client]+tb.Rng.Int63n(10_000)+1, runTxn)
}

// startOpenLoop generates transactions at a fixed rate regardless of
// completions.
func (tb *Testbed) startOpenLoop(client int, svc LockService, wl Workload) {
	interval := int64(1e9 / tb.Cfg.OpenLoopRate)
	if interval <= 0 {
		interval = 1
	}
	var arrive func()
	arrive = func() {
		spec := wl.NextTxn(client, tb.Rng)
		tb.execute(client, svc, spec, func() {})
		tb.Eng.After(interval, arrive)
	}
	tb.Eng.After(tb.Rng.Int63n(interval)+1, arrive)
}

// execute runs one transaction: acquire all locks in order, think, release
// all, record, then continue with next.
func (tb *Testbed) execute(client int, svc LockService, spec TxnSpec, next func()) {
	start := tb.Eng.Now()
	tenant := tb.TenantOf(client)
	if spec.Tenant >= 0 {
		tenant = uint8(spec.Tenant)
	}
	txn := tb.NextTxnID()
	reqs := make([]Request, len(spec.Locks))
	for i, r := range spec.Locks {
		r.TxnID = txn
		r.Client = client
		r.Tenant = tenant
		reqs[i] = r
	}
	if ord, ok := svc.(LockOrderer); ok {
		sort.SliceStable(reqs, func(i, j int) bool {
			return ord.OrderKey(reqs[i].LockID) < ord.OrderKey(reqs[j].LockID)
		})
	}
	var acquire func(i int)
	acquire = func(i int) {
		if i == len(reqs) {
			// All locks held: execute, then release and complete.
			tb.Eng.After(spec.ThinkNs, func() {
				for _, r := range reqs {
					svc.Release(r)
				}
				tb.RecordTxn(tenant, tb.Eng.Now()-start)
				next()
			})
			return
		}
		t0 := tb.Eng.Now()
		svc.Acquire(reqs[i], func() {
			tb.RecordGrant(tb.Eng.Now() - t0)
			acquire(i + 1)
		})
	}
	acquire(0)
}
