package cluster

import (
	"math/rand"
	"testing"

	"netlock/internal/core"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// End-to-end integration tests of the testbed beyond the basic service
// checks: TPC-C over NetLock with the control loops on, the one-RTT mode,
// and live hot-lock migration.

func TestNetLockOneRTTMode(t *testing.T) {
	run := func(oneRTT bool) Result {
		cfg := smallConfig()
		tb := NewTestbed(cfg)
		svc := newNetLock(tb, 1, hotDemands(64, 4))
		return tb.Run(svc, oneRTTWL{locks: 64, oneRTT: oneRTT}, 1e6, 30e6)
	}
	basic := run(false)
	one := run(true)
	if basic.Txns == 0 || one.Txns == 0 {
		t.Fatalf("no transactions: basic=%d one=%d", basic.Txns, one.Txns)
	}
	// One-RTT lock latency includes the database fetch, so it is higher
	// than the bare grant, but bounded (~one extra hop + db service).
	if one.LockLat.Mean <= basic.LockLat.Mean {
		t.Fatalf("one-RTT (%.0fns) should include the fetch beyond basic (%.0fns)",
			one.LockLat.Mean, basic.LockLat.Mean)
	}
	if one.LockLat.Mean > basic.LockLat.Mean+20_000 {
		t.Fatalf("one-RTT overhead too high: %.0f vs %.0f", one.LockLat.Mean, basic.LockLat.Mean)
	}
}

type oneRTTWL struct {
	locks  uint32
	oneRTT bool
}

func (w oneRTTWL) NextTxn(client int, rng *rand.Rand) TxnSpec {
	return TxnSpec{
		Locks: []Request{{
			LockID: uint32(rng.Intn(int(w.locks))) + 1,
			Mode:   wire.Exclusive,
			OneRTT: w.oneRTT,
		}},
		Tenant: -1,
	}
}

func TestNetLockLiveMigration(t *testing.T) {
	// Start with everything at the servers; the allocation loop must move
	// the hot lock set into the switch mid-run without losing any grants.
	cfg := smallConfig()
	cfg.Clients = 4
	cfg.WorkersPerClient = 8
	tb := NewTestbed(cfg)
	mgr := core.New(core.Config{
		Switch: switchdp.Config{
			MaxLocks: 256, TotalSlots: 4096, Priorities: 1, Now: tb.Eng.Now,
		},
		Servers: 1,
	})
	svc := NewNetLockService(tb, NetLockOptions{Manager: mgr, AllocEveryNs: 5e6})
	res := tb.Run(svc, singleLock{locks: 16, mode: wire.Exclusive}, 20e6, 60e6)
	if res.Txns == 0 {
		t.Fatalf("no transactions")
	}
	if !mgr.Switch().CtrlHasLock(1) {
		t.Fatalf("hot lock not migrated")
	}
	// After migration, the switch handles the traffic.
	st := mgr.Switch().Stats()
	total := st.GrantsImmediate + st.GrantsQueued
	if total == 0 {
		t.Fatalf("switch idle after migration")
	}
	if svc.PendingAcquires() > cfg.Clients*cfg.WorkersPerClient {
		t.Fatalf("grants lost across migration: pending=%d", svc.PendingAcquires())
	}
}

func TestServerFailoverUnderTraffic(t *testing.T) {
	// A lock server fails mid-run; the manager reassigns its locks to the
	// survivor and clients (with retries enabled) make progress again.
	cfg := smallConfig()
	cfg.RetryTimeoutNs = 2e6
	tb := NewTestbed(cfg)
	mgr := core.New(core.Config{
		Switch: switchdp.Config{
			MaxLocks: 64, TotalSlots: 1024, Priorities: 1, Now: tb.Eng.Now,
		},
		Servers: 2,
	})
	svc := NewNetLockService(tb, NetLockOptions{Manager: mgr})
	wl := singleLock{locks: 32, mode: wire.Exclusive}
	for c := 0; c < cfg.Clients; c++ {
		for w := 0; w < cfg.WorkersPerClient; w++ {
			tb.startWorker(c, svc, wl)
		}
	}
	tb.measuring = true
	tb.Eng.RunUntil(20e6)
	pre := tb.Txns
	if pre == 0 {
		t.Fatalf("no pre-failure transactions")
	}
	// Server 0 fails: its locks move to server 1 with empty queues.
	mgr.FailServer(0, 1)
	tb.Eng.RunUntil(60e6)
	post := tb.Txns - pre
	if post < pre/2 {
		t.Fatalf("no recovery after server failover: pre=%d post=%d", pre, post)
	}
	// Every lock is now owned by server 1.
	if owned := mgr.Server(0).CtrlOwnedLocks(); len(owned) != 0 {
		t.Fatalf("failed server still owns locks: %v", owned)
	}
}

// Shared-heavy TPC-C-like mix through the switch must never grant an
// exclusive lock concurrently with anything else: checked by replaying the
// grant/release streams against holder counting.
func TestMutualExclusionInvariant(t *testing.T) {
	cfg := smallConfig()
	cfg.Clients = 4
	cfg.WorkersPerClient = 8
	tb := NewTestbed(cfg)
	svc := newNetLock(tb, 1, hotDemands(4, 64))
	wl := &invariantWL{}
	var violations int
	tracker := &trackingService{
		inner:      svc,
		holders:    map[uint32]*holdCount{},
		violations: &violations,
	}
	res := tb.Run(tracker, wl, 1e6, 30e6)
	if res.Txns == 0 {
		t.Fatalf("no transactions")
	}
	if violations != 0 {
		t.Fatalf("%d mutual exclusion violations", violations)
	}
}

// invariantWL mixes shared and exclusive requests over a tiny hot set.
type invariantWL struct{}

func (invariantWL) NextTxn(client int, rng *rand.Rand) TxnSpec {
	mode := wire.Shared
	if rng.Intn(3) == 0 {
		mode = wire.Exclusive
	}
	return TxnSpec{
		Locks:   []Request{{LockID: uint32(rng.Intn(4)) + 1, Mode: mode}},
		ThinkNs: 2000,
		Tenant:  -1,
	}
}

// trackingService wraps a LockService and checks the single-writer /
// multi-reader invariant at grant and release time.
type trackingService struct {
	inner      LockService
	holders    map[uint32]*holdCount
	violations *int
}

type holdCount struct{ shared, excl int }

func (t *trackingService) Name() string { return t.inner.Name() }

func (t *trackingService) Acquire(req Request, granted func()) {
	t.inner.Acquire(req, func() {
		h := t.holders[req.LockID]
		if h == nil {
			h = &holdCount{}
			t.holders[req.LockID] = h
		}
		if req.Mode == wire.Exclusive {
			if h.shared > 0 || h.excl > 0 {
				*t.violations++
			}
			h.excl++
		} else {
			if h.excl > 0 {
				*t.violations++
			}
			h.shared++
		}
		granted()
	})
}

func (t *trackingService) Release(req Request) {
	h := t.holders[req.LockID]
	if h != nil {
		if req.Mode == wire.Exclusive {
			h.excl--
		} else {
			h.shared--
		}
	}
	t.inner.Release(req)
}
