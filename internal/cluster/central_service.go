package cluster

import (
	"netlock/internal/eventsim"
	"netlock/internal/lockserver"
	"netlock/internal/wire"
)

// CentralOptions configures the traditional server-only centralized lock
// manager (§2.1): the "lock server" side of Figure 9.
type CentralOptions struct {
	// Servers is the number of lock servers; locks partition across them.
	Servers int
	// Cores per server; Figure 9 sweeps 1..8.
	Cores int
	// CoreNs is the per-request CPU service time of one core.
	CoreNs int64
	// Priorities configures the server lock tables.
	Priorities int
}

// DefaultCentralOptions uses the calibrated DPDK server (18 MRPS at 8
// cores).
func DefaultCentralOptions(servers, cores int) CentralOptions {
	return CentralOptions{Servers: servers, Cores: cores, CoreNs: 444, Priorities: 1}
}

// CentralService is the server-only centralized baseline: every lock is
// owned by a lock server; the ToR switch only forwards packets. It provides
// the same policy flexibility as NetLock but its throughput is bounded by
// server CPUs — the trade-off NetLock's switch offload removes.
type CentralService struct {
	tb      *Testbed
	opts    CentralOptions
	servers []*lockserver.Server
	cores   [][]*eventsim.Station
	pending map[pendKey]*pendingAcq
}

// NewCentralService builds the baseline on the testbed.
func NewCentralService(tb *Testbed, opts CentralOptions) *CentralService {
	if opts.Servers <= 0 || opts.Cores <= 0 {
		panic("cluster: invalid central options")
	}
	if opts.Priorities == 0 {
		opts.Priorities = 1
	}
	s := &CentralService{tb: tb, opts: opts, pending: make(map[pendKey]*pendingAcq)}
	for i := 0; i < opts.Servers; i++ {
		s.servers = append(s.servers, lockserver.New(lockserver.Config{Priorities: opts.Priorities}))
		var cs []*eventsim.Station
		for c := 0; c < opts.Cores; c++ {
			cs = append(cs, eventsim.NewStation(tb.Eng, opts.CoreNs))
		}
		s.cores = append(s.cores, cs)
	}
	return s
}

// Name implements LockService.
func (s *CentralService) Name() string { return "CentralServer" }

// Server exposes lock server i for stats.
func (s *CentralService) Server(i int) *lockserver.Server { return s.servers[i] }

func (s *CentralService) home(lockID uint32) int {
	return lockserver.RSSCore(lockID, s.opts.Servers)
}

// Acquire implements LockService.
func (s *CentralService) Acquire(req Request, granted func()) {
	s.pending[pendKey{req.LockID, req.TxnID}] = &pendingAcq{req: req, granted: granted}
	s.send(req.Client, req.Header(wire.OpAcquire))
}

// Release implements LockService.
func (s *CentralService) Release(req Request) {
	s.send(req.Client, req.Header(wire.OpRelease))
}

// send charges client send, two hops (through the forwarding ToR), and the
// RSS-selected server core, then routes the server's emits.
func (s *CentralService) send(client int, h wire.Header) {
	cfg := s.tb.Cfg
	srv := s.home(h.LockID)
	core := lockserver.RSSCore(h.LockID, s.opts.Cores)
	s.tb.ClientNIC(client).Submit(func() {
		s.tb.Eng.After(cfg.ClientOverheadNs+2*cfg.HopNs+cfg.ServerBatchNs, func() {
			s.cores[srv][core].Submit(func() {
				emits := s.servers[srv].ProcessPacket(&h)
				for _, e := range emits {
					s.route(e)
				}
			})
		})
	})
}

func (s *CentralService) route(e lockserver.Emit) {
	cfg := s.tb.Cfg
	h := e.Hdr
	switch e.Action {
	case lockserver.ActGrant:
		s.tb.Eng.After(2*cfg.HopNs+cfg.ClientOverheadNs, func() {
			key := pendKey{h.LockID, h.TxnID}
			if p, ok := s.pending[key]; ok {
				delete(s.pending, key)
				p.granted()
			}
		})
	case lockserver.ActFetch:
		s.tb.Eng.After(cfg.HopNs, func() {
			s.tb.DBStation().Submit(func() {
				s.tb.Eng.After(2*cfg.HopNs+cfg.ClientOverheadNs, func() {
					key := pendKey{h.LockID, h.TxnID}
					if p, ok := s.pending[key]; ok {
						delete(s.pending, key)
						p.granted()
					}
				})
			})
		})
	}
}
