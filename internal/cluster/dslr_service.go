package cluster

import (
	"netlock/internal/baseline/dslr"
	"netlock/internal/lockserver"
	"netlock/internal/rdma"
	"netlock/internal/wire"
)

// DSLROptions configures the DSLR baseline.
type DSLROptions struct {
	// Servers is the number of lock servers holding lock tables.
	Servers int
	// MaxLockID bounds the lock table size.
	MaxLockID uint32
	// NIC sets the RDMA NIC service model.
	NIC rdma.Config
	// EstHoldNs is the expected per-holder service time used by DSLR's
	// waiting-time estimation before the first poll.
	EstHoldNs int64
	// PollIntervalNs is the READ-poll interval after the estimate elapses.
	PollIntervalNs int64
	// LeaseNs is DSLR's lease: a waiter not granted within the lease
	// assumes a failed or stuck holder and force-resets the lock word (CAS
	// to zero), then retries with a fresh ticket. The reset destroys the
	// queue state of every other waiter on the lock — the fault-tolerance
	// mechanism whose side effects collapse DSLR under heavy contention.
	LeaseNs int64
}

// DefaultDSLROptions mirrors the CloudLab setup (§6.1).
func DefaultDSLROptions(servers int, maxLockID uint32) DSLROptions {
	return DSLROptions{
		Servers:        servers,
		MaxLockID:      maxLockID,
		NIC:            rdma.DefaultConfig(),
		EstHoldNs:      10_000,
		PollIntervalNs: 5_000,
		LeaseNs:        10_000_000,
	}
}

// DSLRService emulates DSLR (§2.1, §6): decentralized bakery locks over
// one-sided RDMA. Lock tables live in server memory; clients FAA to draw
// tickets and READ-poll to learn their turn; the server CPU is idle and the
// NIC's atomic units are the shared bottleneck.
type DSLRService struct {
	tb   *Testbed
	opts DSLROptions
	mems []*rdma.Memory
	nics []*rdma.NIC
	// LeaseResets counts force-resets issued by timed-out waiters.
	LeaseResets uint64
}

// NewDSLRService builds the baseline on the testbed.
func NewDSLRService(tb *Testbed, opts DSLROptions) *DSLRService {
	if opts.Servers <= 0 || opts.MaxLockID == 0 {
		panic("cluster: invalid DSLR options")
	}
	s := &DSLRService{tb: tb, opts: opts}
	for i := 0; i < opts.Servers; i++ {
		// Huge ID spaces (TPC-C) use sparse registered memory.
		if opts.MaxLockID > 1<<20 {
			s.mems = append(s.mems, rdma.NewSparseMemory())
		} else {
			s.mems = append(s.mems, rdma.NewMemory(int(opts.MaxLockID)+1))
		}
		s.nics = append(s.nics, rdma.NewNIC(tb.Eng, opts.NIC))
	}
	return s
}

// Name implements LockService.
func (s *DSLRService) Name() string { return "DSLR" }

func (s *DSLRService) home(lockID uint32) int {
	return lockserver.RSSCore(lockID, s.opts.Servers)
}

// Acquire implements LockService: FAA a ticket, then wait per the bakery
// protocol.
func (s *DSLRService) Acquire(req Request, granted func()) {
	srv := s.home(req.LockID)
	idx := int(req.LockID)
	delta := dslr.DeltaMaxX
	if req.Mode == wire.Shared {
		delta = dslr.DeltaMaxS
	}
	cfg := s.tb.Cfg
	s.tb.ClientNIC(req.Client).Submit(func() {
		s.tb.Eng.After(cfg.ClientOverheadNs+2*cfg.HopNs, func() {
			s.nics[srv].FetchAdd(s.mems[srv], idx, delta, func(old uint64) {
				// Reply travels back to the client.
				s.tb.Eng.After(2*cfg.HopNs+cfg.ClientOverheadNs, func() {
					var tk dslr.Ticket
					if delta == dslr.DeltaMaxX {
						tk = dslr.DrawExclusive(old)
					} else {
						tk = dslr.DrawShared(old)
					}
					if tk.Overflowed() {
						s.handleOverflow(req, granted)
						return
					}
					if tk.Granted(old + delta) {
						granted()
						return
					}
					deadline := s.tb.Eng.Now() + s.opts.LeaseNs
					wait := tk.WaitEstimateNs(old+delta, s.opts.EstHoldNs)
					if wait < s.opts.PollIntervalNs {
						wait = s.opts.PollIntervalNs
					}
					s.tb.Eng.After(wait, func() { s.poll(req, tk, deadline, granted) })
				})
			})
		})
	})
}

// poll issues an RDMA READ and checks the ticket's turn; waiters that
// exceed their lease force-reset the lock word and retry from scratch.
func (s *DSLRService) poll(req Request, tk dslr.Ticket, deadline int64, granted func()) {
	srv := s.home(req.LockID)
	cfg := s.tb.Cfg
	s.tb.ClientNIC(req.Client).Submit(func() {
		s.tb.Eng.After(cfg.ClientOverheadNs+2*cfg.HopNs, func() {
			s.nics[srv].Read(s.mems[srv], int(req.LockID), func(w uint64) {
				s.tb.Eng.After(2*cfg.HopNs+cfg.ClientOverheadNs, func() {
					if tk.Granted(w) {
						granted()
						return
					}
					if s.opts.LeaseNs > 0 && s.tb.Eng.Now() > deadline {
						// Lease expired: assume the holder failed, reset
						// the word, and retry with a fresh ticket.
						s.LeaseResets++
						s.nics[srv].CompareSwap(s.mems[srv], int(req.LockID), w, 0, func(uint64, bool) {
							s.tb.Eng.After(s.opts.PollIntervalNs, func() { s.Acquire(req, granted) })
						})
						return
					}
					s.tb.Eng.After(s.opts.PollIntervalNs, func() { s.poll(req, tk, deadline, granted) })
				})
			})
		})
	})
}

// handleOverflow implements the counter-reset protocol: wait for the queue
// to drain, CAS the word back to zero, then retry the acquisition.
func (s *DSLRService) handleOverflow(req Request, granted func()) {
	srv := s.home(req.LockID)
	idx := int(req.LockID)
	var attempt func()
	attempt = func() {
		s.nics[srv].Read(s.mems[srv], idx, func(w uint64) {
			if !dslr.Drained(w) {
				s.tb.Eng.After(s.opts.PollIntervalNs, attempt)
				return
			}
			s.nics[srv].CompareSwap(s.mems[srv], idx, w, 0, func(_ uint64, _ bool) {
				// Whether we or a peer reset it, retry the acquisition.
				s.Acquire(req, granted)
			})
		})
	}
	s.tb.Eng.After(s.opts.PollIntervalNs, attempt)
}

// Release implements LockService: one fire-and-forget FAA.
func (s *DSLRService) Release(req Request) {
	srv := s.home(req.LockID)
	idx := int(req.LockID)
	delta := dslr.DeltaNowX
	if req.Mode == wire.Shared {
		delta = dslr.DeltaNowS
	}
	cfg := s.tb.Cfg
	s.tb.ClientNIC(req.Client).Submit(func() {
		s.tb.Eng.After(cfg.ClientOverheadNs+2*cfg.HopNs, func() {
			s.nics[srv].FetchAdd(s.mems[srv], idx, delta, func(uint64) {})
		})
	})
}

// NICStats aggregates verb counts over all emulated NICs.
func (s *DSLRService) NICStats() rdma.Stats {
	var total rdma.Stats
	for _, n := range s.nics {
		st := n.Stats()
		total.Atomics += st.Atomics
		total.ReadWrites += st.ReadWrites
	}
	return total
}
