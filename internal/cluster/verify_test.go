package cluster

// Differential safety verification: drive NetLock and the DSLR and NetChain
// baselines with identical pre-scripted per-client schedules (deterministic
// from the seed), auditing every acquire/grant/release through the
// internal/check safety checker. All three systems must complete every
// scripted transaction exactly once with zero safety violations and a clean
// conservation check at quiescence — the same lock-service contract,
// checked by the same oracle, across three very different architectures.

import (
	"fmt"
	"math/rand"
	"testing"

	"netlock/internal/check"
	"netlock/internal/wire"
)

// auditedService wraps a LockService and feeds every observable event to a
// check.Checker. One transaction may acquire several locks under the same
// wire TxnID, while the checker models one request per transaction, so the
// auditor assigns a synthetic audit ID per (txn, lock) acquisition.
type auditedService struct {
	t     *testing.T
	seed  int64
	inner LockService
	ck    *check.Checker
	ids   map[auditKey]uint64
	next  uint64
}

type auditKey struct {
	txn  uint64
	lock uint32
}

func newAudited(t *testing.T, seed int64, inner LockService) *auditedService {
	ck := check.NewChecker()
	ck.CheckPriority = false // baselines are not priority-aware
	return &auditedService{t: t, seed: seed, inner: inner, ck: ck, ids: make(map[auditKey]uint64)}
}

func (a *auditedService) observe(e check.Event) {
	a.t.Helper()
	if v := a.ck.Observe(e); v != nil {
		a.t.Fatalf("%s: %v\nreproduce with: go test -run %s -netlock.seed=%d",
			a.inner.Name(), v, a.t.Name(), a.seed)
	}
}

func (a *auditedService) Name() string { return a.inner.Name() }

// OrderKey sorts multi-lock transactions into a global acquisition order —
// the deadlock-freedom discipline every client of a queue-based lock
// service must follow — delegating to the inner service's own key when it
// has one (NetChain's granularity-folded table).
func (a *auditedService) OrderKey(lockID uint32) uint64 {
	if ord, ok := a.inner.(LockOrderer); ok {
		return ord.OrderKey(lockID)
	}
	return uint64(lockID)
}

func (a *auditedService) Acquire(req Request, granted func()) {
	id := a.next
	a.next++
	a.ids[auditKey{req.TxnID, req.LockID}] = id
	a.observe(check.Event{
		Kind: check.EvAcquire, Lock: req.LockID, Txn: id,
		Excl: req.Mode == wire.Exclusive, Prio: req.Priority,
	})
	a.inner.Acquire(req, func() {
		a.observe(check.Event{Kind: check.EvGrant, Lock: req.LockID, Txn: id})
		granted()
	})
}

func (a *auditedService) Release(req Request) {
	k := auditKey{req.TxnID, req.LockID}
	id, ok := a.ids[k]
	if !ok {
		a.t.Fatalf("%s: release of unknown (txn=%d, lock=%d)", a.inner.Name(), req.TxnID, req.LockID)
	}
	delete(a.ids, k)
	a.observe(check.Event{
		Kind: check.EvRelease, Lock: req.LockID, Txn: id,
		Excl: req.Mode == wire.Exclusive, Prio: req.Priority,
	})
	a.inner.Release(req)
}

// genSchedules builds each client's fixed transaction script from the seed:
// 1–2 distinct locks over a small hot set, two-thirds shared, short think
// times. Identical across the systems under test.
func genSchedules(seed int64, clients, txnsPerClient int) [][]TxnSpec {
	rng := rand.New(rand.NewSource(seed))
	const locks = 6
	out := make([][]TxnSpec, clients)
	for c := range out {
		for k := 0; k < txnsPerClient; k++ {
			n := 1 + rng.Intn(2)
			picked := rng.Perm(locks)[:n]
			spec := TxnSpec{ThinkNs: 1000 + rng.Int63n(2000), Tenant: -1}
			for _, p := range picked {
				mode := wire.Shared
				if rng.Intn(3) == 0 {
					mode = wire.Exclusive
				}
				spec.Locks = append(spec.Locks, Request{LockID: uint32(p) + 1, Mode: mode})
			}
			out[c] = append(out[c], spec)
		}
	}
	return out
}

// runScripted plays every client's schedule sequentially on the testbed and
// returns the number of transactions that completed. The engine runs to
// quiescence, so in-flight work cannot hide an incomplete transaction.
func runScripted(tb *Testbed, svc LockService, schedules [][]TxnSpec) int {
	completed := 0
	for c := range schedules {
		c := c
		var step func(k int)
		step = func(k int) {
			if k == len(schedules[c]) {
				return
			}
			tb.execute(c, svc, schedules[c][k], func() {
				completed++
				step(k + 1)
			})
		}
		tb.Eng.At(int64(c+1)*1000, func() { step(0) })
	}
	tb.Eng.Run()
	return completed
}

// TestDifferentialSafety checks NetLock against the DSLR and NetChain
// baselines on identical scripted workloads: every transaction completes
// exactly once, every grant/release stream satisfies the lock-safety
// invariants, and nothing is left held or waiting at quiescence.
func TestDifferentialSafety(t *testing.T) {
	for _, seed := range check.SeedsN(2) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Clients = 4
			schedules := genSchedules(seed, cfg.Clients, 50)
			want := 0
			wantLocks := 0
			for _, s := range schedules {
				want += len(s)
				for _, spec := range s {
					wantLocks += len(spec.Locks)
				}
			}
			systems := []struct {
				name string
				make func(tb *Testbed) LockService
			}{
				{"NetLock", func(tb *Testbed) LockService {
					return newNetLock(tb, 2, hotDemands(4, 16))
				}},
				{"DSLR", func(tb *Testbed) LockService {
					return NewDSLRService(tb, DefaultDSLROptions(2, 8))
				}},
				{"NetChain", func(tb *Testbed) LockService {
					return NewNetChainService(tb, DefaultNetChainOptions(8))
				}},
			}
			for _, sys := range systems {
				t.Run(sys.name, func(t *testing.T) {
					tb := NewTestbed(cfg)
					aud := newAudited(t, seed, sys.make(tb))
					got := runScripted(tb, aud, schedules)
					if got != want {
						t.Fatalf("%s: %d of %d scripted transactions completed", sys.name, got, want)
					}
					if v := aud.ck.Quiesce(); v != nil {
						t.Fatalf("%s: %v", sys.name, v)
					}
					grants, _, releases := aud.ck.Stats()
					if grants != wantLocks || releases != wantLocks {
						t.Fatalf("%s: grants=%d releases=%d, want %d each",
							sys.name, grants, releases, wantLocks)
					}
				})
			}
		})
	}
}
