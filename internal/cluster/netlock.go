package cluster

import (
	"netlock/internal/core"
	"netlock/internal/eventsim"
	"netlock/internal/lockserver"
	"netlock/internal/obs"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// NetLockOptions configures the NetLock service adapter.
type NetLockOptions struct {
	// Manager is the NetLock instance (switch + lock servers).
	Manager *core.Manager
	// SweepEveryNs runs the lease sweep control loop (0: disabled).
	SweepEveryNs int64
	// AllocEveryNs runs the memory-management control loop (0: disabled).
	AllocEveryNs int64
	// Allocator overrides the placement policy (nil: optimal knapsack).
	Allocator core.Allocator
	// Obs, when non-nil, records end-to-end acquire latency in virtual
	// testbed time (the switch and servers record their own stages through
	// core.Config.Obs).
	Obs *obs.Stripe
}

// NetLockService drives a core.Manager on the testbed: it moves packets
// between clients, the switch data plane, the lock servers and the database
// station with the calibrated delays, and runs the control loops.
type NetLockService struct {
	tb   *Testbed
	opts NetLockOptions
	mgr  *core.Manager
	// cores[s][c] is lock server s's core c.
	cores   [][]*eventsim.Station
	pending map[pendKey]*pendingAcq
}

type pendKey struct {
	lock uint32
	txn  uint64
}

type pendingAcq struct {
	req     Request
	granted func()
	// sentNs is the virtual-time submission instant, for the end-to-end
	// acquire latency stage (recorded only when Obs is enabled).
	sentNs int64
}

// NewNetLockService wires a manager into the testbed.
func NewNetLockService(tb *Testbed, opts NetLockOptions) *NetLockService {
	if opts.Manager == nil {
		panic("cluster: NetLockOptions.Manager required")
	}
	s := &NetLockService{
		tb:      tb,
		opts:    opts,
		mgr:     opts.Manager,
		pending: make(map[pendKey]*pendingAcq),
	}
	for i := 0; i < opts.Manager.NumServers(); i++ {
		var cores []*eventsim.Station
		for c := 0; c < tb.Cfg.ServerCores; c++ {
			cores = append(cores, eventsim.NewStation(tb.Eng, tb.Cfg.ServerCoreNs))
		}
		s.cores = append(s.cores, cores)
	}
	if opts.SweepEveryNs > 0 {
		s.scheduleSweep()
	}
	if opts.AllocEveryNs > 0 {
		s.scheduleAlloc()
	}
	return s
}

// Name implements LockService.
func (s *NetLockService) Name() string { return "NetLock" }

// Manager returns the underlying NetLock instance.
func (s *NetLockService) Manager() *core.Manager { return s.mgr }

// PendingAcquires returns the number of acquires whose grant has not yet
// reached the client — a liveness diagnostic.
func (s *NetLockService) PendingAcquires() int { return len(s.pending) }

// Acquire implements LockService.
func (s *NetLockService) Acquire(req Request, granted func()) {
	key := pendKey{req.LockID, req.TxnID}
	p := &pendingAcq{req: req, granted: granted}
	if s.opts.Obs.Enabled() {
		p.sentNs = s.tb.Eng.Now()
	}
	s.pending[key] = p
	s.sendAcquire(req)
	if s.tb.Cfg.RetryTimeoutNs > 0 {
		s.armRetry(key)
	}
}

func (s *NetLockService) sendAcquire(req Request) {
	h := req.Header(wire.OpAcquire)
	s.clientSend(req.Client, func() { s.switchArrive(h) })
}

// armRetry resends an acquire that has not resolved within the timeout
// (packet loss or switch failure; §6.5).
func (s *NetLockService) armRetry(key pendKey) {
	s.tb.Eng.After(s.tb.Cfg.RetryTimeoutNs, func() {
		p, ok := s.pending[key]
		if !ok {
			return
		}
		s.sendAcquire(p.req)
		s.armRetry(key)
	})
}

// Release implements LockService.
func (s *NetLockService) Release(req Request) {
	h := req.Header(wire.OpRelease)
	s.clientSend(req.Client, func() { s.switchArrive(h) })
}

// clientSend charges the client NIC and software overhead plus one hop to
// the ToR.
func (s *NetLockService) clientSend(client int, deliver func()) {
	s.tb.ClientNIC(client).Submit(func() {
		s.tb.Eng.After(s.tb.Cfg.ClientOverheadNs+s.tb.Cfg.HopNs, deliver)
	})
}

// switchArrive processes a packet at the lock switch.
func (s *NetLockService) switchArrive(h wire.Header) {
	if s.tb.SwitchDown() {
		return // the ToR is the only path; traffic is lost
	}
	s.tb.SwitchStation().Submit(func() {
		emits, passes := s.mgr.Switch().ProcessPacket(&h)
		// Charge the extra resubmit passes as switch occupancy.
		for i := 1; i < passes; i++ {
			s.tb.SwitchStation().Submit(func() {})
		}
		for _, e := range emits {
			s.routeSwitchEmit(e)
		}
	})
}

func (s *NetLockService) routeSwitchEmit(e switchdp.Emit) {
	h := e.Hdr
	switch e.Action {
	case switchdp.ActGrant:
		s.toClient(h, func() { s.resolve(h) })
	case switchdp.ActFetch:
		s.toDatabase(h)
	case switchdp.ActForward, switchdp.ActForwardOverflow, switchdp.ActPushNotify:
		s.toServer(h)
	case switchdp.ActReject:
		// Quota exceeded: the client backs off and retries.
		s.toClient(h, func() {
			key := pendKey{h.LockID, h.TxnID}
			p, ok := s.pending[key]
			if !ok {
				return
			}
			backoff := int64(20_000) + s.tb.Rng.Int63n(20_000)
			s.tb.Eng.After(backoff, func() {
				if _, still := s.pending[key]; still {
					s.sendAcquire(p.req)
				}
			})
		})
	}
}

// toClient delivers a packet switch->client: one hop plus client overhead.
func (s *NetLockService) toClient(h wire.Header, then func()) {
	s.tb.Eng.After(s.tb.Cfg.HopNs+s.tb.Cfg.ClientOverheadNs, then)
}

// toDatabase models the one-RTT mode: the grant is forwarded to the
// database server, which fetches the item and replies to the client with
// the data — completing lock acquisition and data fetch in one RTT.
func (s *NetLockService) toDatabase(h wire.Header) {
	s.tb.Eng.After(s.tb.Cfg.HopNs, func() {
		s.tb.DBStation().Submit(func() {
			// Database -> switch -> client with the item.
			s.tb.Eng.After(2*s.tb.Cfg.HopNs+s.tb.Cfg.ClientOverheadNs, func() { s.resolve(h) })
		})
	})
}

// toServer delivers a packet switch->lock server and processes it on the
// RSS-selected core.
func (s *NetLockService) toServer(h wire.Header) {
	srvIdx := s.mgr.ServerFor(h.LockID)
	core := lockserver.RSSCore(h.LockID, s.tb.Cfg.ServerCores)
	s.tb.Eng.After(s.tb.Cfg.HopNs+s.tb.Cfg.ServerBatchNs, func() {
		s.cores[srvIdx][core].Submit(func() {
			emits := s.mgr.Server(srvIdx).ProcessPacket(&h)
			for _, e := range emits {
				s.routeServerEmit(e)
			}
		})
	})
}

func (s *NetLockService) routeServerEmit(e lockserver.Emit) {
	h := e.Hdr
	switch e.Action {
	case lockserver.ActGrant:
		// Server -> switch (plain forwarding) -> client.
		s.tb.Eng.After(s.tb.Cfg.HopNs, func() { s.toClient(h, func() { s.resolve(h) }) })
	case lockserver.ActFetch:
		s.tb.Eng.After(s.tb.Cfg.HopNs, s.dbFrom(h))
	case lockserver.ActPush:
		s.tb.Eng.After(s.tb.Cfg.HopNs, func() { s.switchArrive(h) })
	case lockserver.ActReject:
		// Bounded server buffer full: back off and retry, like a quota
		// reject from the switch.
		s.tb.Eng.After(s.tb.Cfg.HopNs, func() {
			s.toClient(h, func() {
				key := pendKey{h.LockID, h.TxnID}
				p, ok := s.pending[key]
				if !ok {
					return
				}
				backoff := int64(20_000) + s.tb.Rng.Int63n(20_000)
				s.tb.Eng.After(backoff, func() {
					if _, still := s.pending[key]; still {
						s.sendAcquire(p.req)
					}
				})
			})
		})
	}
}

func (s *NetLockService) dbFrom(h wire.Header) func() {
	return func() { s.toDatabase(h) }
}

// resolve completes a pending acquire; duplicate grants (retries, races)
// are ignored.
func (s *NetLockService) resolve(h wire.Header) {
	key := pendKey{h.LockID, h.TxnID}
	p, ok := s.pending[key]
	if !ok {
		return
	}
	delete(s.pending, key)
	if o := s.opts.Obs; o.Enabled() && p.sentNs != 0 {
		o.Observe(obs.StageAcquireE2E, s.tb.Eng.Now()-p.sentNs)
	}
	p.granted()
}

// scheduleSweep runs the lease sweep loop: synthesized releases are
// injected into the switch locally (control plane), and server-side sweep
// grants are routed normally.
func (s *NetLockService) scheduleSweep() {
	s.tb.Eng.After(s.opts.SweepEveryNs, func() {
		if !s.mgr.SwitchFailed() {
			rels, emits := s.mgr.SweepLeases(s.tb.Eng.Now())
			for _, h := range rels {
				s.switchArrive(h)
			}
			for _, e := range emits {
				s.routeServerEmit(e)
			}
			for _, h := range s.mgr.SweepStranded() {
				s.toServer(h)
			}
		}
		s.scheduleSweep()
	})
}

// scheduleAlloc runs the memory-management loop (§4.3): measure a window,
// reallocate, and deliver any grants produced by server adoption.
func (s *NetLockService) scheduleAlloc() {
	s.tb.Eng.After(s.opts.AllocEveryNs, func() {
		if !s.mgr.SwitchFailed() {
			demands := s.mgr.MeasureDemands(float64(s.opts.AllocEveryNs) / 1e9)
			rep := s.mgr.Reallocate(demands, s.opts.Allocator)
			for _, e := range rep.Emits {
				s.routeServerEmit(e)
			}
			for _, h := range rep.SwitchPushes {
				s.switchArrive(h)
			}
		}
		s.scheduleAlloc()
	})
}
