package cluster

import (
	"netlock/internal/baseline/drtm"
	"netlock/internal/lockserver"
	"netlock/internal/rdma"
	"netlock/internal/wire"
)

// DrTMOptions configures the DrTM fail-and-retry baseline.
type DrTMOptions struct {
	Servers   int
	MaxLockID uint32
	NIC       rdma.Config
	// BackoffMinNs and BackoffMaxNs bound the exponential retry backoff
	// after a failed CAS/FAA attempt.
	BackoffMinNs int64
	BackoffMaxNs int64
}

// DefaultDrTMOptions mirrors the CloudLab setup (§6.1).
func DefaultDrTMOptions(servers int, maxLockID uint32) DrTMOptions {
	return DrTMOptions{
		Servers:      servers,
		MaxLockID:    maxLockID,
		NIC:          rdma.DefaultConfig(),
		BackoffMinNs: 10_000,
		BackoffMaxNs: 1_000_000,
	}
}

// DrTMService emulates DrTM-style remote locking (§6.1): blind
// fail-and-retry over RDMA CAS/FAA. There is no queue and no fairness: a
// failed attempt burns a NIC atomic and an RTT, then backs off and retries,
// which collapses under contention and starves unlucky clients — the
// behavior NetLock's queues eliminate.
type DrTMService struct {
	tb   *Testbed
	opts DrTMOptions
	mems []*rdma.Memory
	nics []*rdma.NIC
	// Retries counts failed acquisition attempts (observability for the
	// benchmark reports).
	Retries uint64
}

// NewDrTMService builds the baseline on the testbed.
func NewDrTMService(tb *Testbed, opts DrTMOptions) *DrTMService {
	if opts.Servers <= 0 || opts.MaxLockID == 0 {
		panic("cluster: invalid DrTM options")
	}
	s := &DrTMService{tb: tb, opts: opts}
	for i := 0; i < opts.Servers; i++ {
		// Huge ID spaces (TPC-C) use sparse registered memory.
		if opts.MaxLockID > 1<<20 {
			s.mems = append(s.mems, rdma.NewSparseMemory())
		} else {
			s.mems = append(s.mems, rdma.NewMemory(int(opts.MaxLockID)+1))
		}
		s.nics = append(s.nics, rdma.NewNIC(tb.Eng, opts.NIC))
	}
	return s
}

// Name implements LockService.
func (s *DrTMService) Name() string { return "DrTM" }

func (s *DrTMService) home(lockID uint32) int {
	return lockserver.RSSCore(lockID, s.opts.Servers)
}

// backoff returns the randomized exponential backoff for the given attempt.
func (s *DrTMService) backoff(attempt int) int64 {
	d := s.opts.BackoffMinNs << uint(attempt)
	if d > s.opts.BackoffMaxNs || d <= 0 {
		d = s.opts.BackoffMaxNs
	}
	return d/2 + s.tb.Rng.Int63n(d/2+1)
}

// Acquire implements LockService.
func (s *DrTMService) Acquire(req Request, granted func()) {
	if req.Mode == wire.Exclusive {
		s.tryExclusive(req, 0, granted)
	} else {
		s.tryShared(req, 0, granted)
	}
}

func (s *DrTMService) tryExclusive(req Request, attempt int, granted func()) {
	srv := s.home(req.LockID)
	idx := int(req.LockID)
	cfg := s.tb.Cfg
	s.tb.ClientNIC(req.Client).Submit(func() {
		s.tb.Eng.After(cfg.ClientOverheadNs+2*cfg.HopNs, func() {
			s.nics[srv].CompareSwap(s.mems[srv], idx, drtm.Free, drtm.ExclusiveWord(req.TxnID),
				func(_ uint64, swapped bool) {
					s.tb.Eng.After(2*cfg.HopNs+cfg.ClientOverheadNs, func() {
						if swapped {
							granted()
							return
						}
						s.Retries++
						s.tb.Eng.After(s.backoff(attempt), func() {
							s.tryExclusive(req, attempt+1, granted)
						})
					})
				})
		})
	})
}

func (s *DrTMService) tryShared(req Request, attempt int, granted func()) {
	srv := s.home(req.LockID)
	idx := int(req.LockID)
	cfg := s.tb.Cfg
	s.tb.ClientNIC(req.Client).Submit(func() {
		s.tb.Eng.After(cfg.ClientOverheadNs+2*cfg.HopNs, func() {
			s.nics[srv].FetchAdd(s.mems[srv], idx, drtm.SharedAddDelta, func(old uint64) {
				s.tb.Eng.After(2*cfg.HopNs+cfg.ClientOverheadNs, func() {
					if drtm.SharedAcquired(old) {
						granted()
						return
					}
					// Back out the optimistic increment, then retry.
					s.Retries++
					s.tb.ClientNIC(req.Client).Submit(func() {
						s.tb.Eng.After(cfg.ClientOverheadNs+2*cfg.HopNs, func() {
							s.nics[srv].FetchAdd(s.mems[srv], idx, drtm.SharedBackoutDelta, func(uint64) {})
						})
					})
					s.tb.Eng.After(s.backoff(attempt), func() {
						s.tryShared(req, attempt+1, granted)
					})
				})
			})
		})
	})
}

// Release implements LockService.
func (s *DrTMService) Release(req Request) {
	srv := s.home(req.LockID)
	idx := int(req.LockID)
	cfg := s.tb.Cfg
	s.tb.ClientNIC(req.Client).Submit(func() {
		s.tb.Eng.After(cfg.ClientOverheadNs+2*cfg.HopNs, func() {
			if req.Mode == wire.Exclusive {
				s.nics[srv].Write(s.mems[srv], idx, drtm.ExclusiveReleased, func() {})
			} else {
				s.nics[srv].FetchAdd(s.mems[srv], idx, drtm.SharedReleaseDelta, func(uint64) {})
			}
		})
	})
}
