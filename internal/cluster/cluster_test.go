package cluster

import (
	"math/rand"
	"testing"

	"netlock/internal/core"
	"netlock/internal/memalloc"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// singleLock is a one-lock-per-transaction test workload.
type singleLock struct {
	locks    uint32
	mode     wire.Mode
	thinkNs  int64
	disjoint bool
}

func (w singleLock) NextTxn(client int, rng *rand.Rand) TxnSpec {
	id := uint32(rng.Intn(int(w.locks))) + 1
	if w.disjoint {
		id += uint32(client) * w.locks
	}
	return TxnSpec{
		Locks:   []Request{{LockID: id, Mode: w.mode}},
		ThinkNs: w.thinkNs,
		Tenant:  -1,
	}
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Clients = 2
	cfg.WorkersPerClient = 4
	return cfg
}

func newNetLock(tb *Testbed, servers int, hot []memalloc.Demand) *NetLockService {
	mgr := core.New(core.Config{
		Switch: switchdp.Config{
			MaxLocks: 256, TotalSlots: 4096, Priorities: 1,
			Now: tb.Eng.Now,
		},
		Servers: servers,
	})
	if hot != nil {
		mgr.Reallocate(hot, nil)
	}
	return NewNetLockService(tb, NetLockOptions{Manager: mgr})
}

func hotDemands(n uint32, contention uint64) []memalloc.Demand {
	var ds []memalloc.Demand
	for id := uint32(1); id <= n; id++ {
		ds = append(ds, memalloc.Demand{LockID: id, Rate: 1000, Contention: contention})
	}
	return ds
}

func TestNetLockMicrobenchCompletes(t *testing.T) {
	tb := NewTestbed(smallConfig())
	svc := newNetLock(tb, 1, hotDemands(16, 16))
	res := tb.Run(svc, singleLock{locks: 16, mode: wire.Exclusive}, 1e6, 50e6)
	if res.Txns == 0 {
		t.Fatalf("no transactions completed: %+v", res)
	}
	// Uncontended-ish grants should land in single-digit microseconds.
	if res.LockLat.Median > 50_000 {
		t.Fatalf("median lock latency = %dns, absurdly high", res.LockLat.Median)
	}
	// All locks acquired were granted by the switch (all resident).
	st := svc.Manager().Switch().Stats()
	if st.Forwards != 0 {
		t.Fatalf("unexpected forwards for resident locks: %+v", st)
	}
}

func TestNetLockServerPathCompletes(t *testing.T) {
	tb := NewTestbed(smallConfig())
	svc := newNetLock(tb, 2, nil) // nothing resident: all server-processed
	res := tb.Run(svc, singleLock{locks: 16, mode: wire.Exclusive}, 1e6, 50e6)
	if res.Txns == 0 {
		t.Fatalf("no transactions completed")
	}
	st := svc.Manager().Switch().Stats()
	if st.Forwards == 0 || st.GrantsImmediate != 0 {
		t.Fatalf("expected pure server path: %+v", st)
	}
}

func TestNetLockSwitchLatencyBelowServerLatency(t *testing.T) {
	wl := singleLock{locks: 64, mode: wire.Exclusive, disjoint: true}
	tbA := NewTestbed(smallConfig())
	svcA := newNetLock(tbA, 1, hotDemands(64*3, 4))
	resA := tbA.Run(svcA, wl, 1e6, 50e6)

	tbB := NewTestbed(smallConfig())
	svcB := newNetLock(tbB, 1, nil)
	resB := tbB.Run(svcB, wl, 1e6, 50e6)

	if resA.LockLat.Mean >= resB.LockLat.Mean {
		t.Fatalf("switch path (%.0fns) should beat server path (%.0fns)",
			resA.LockLat.Mean, resB.LockLat.Mean)
	}
}

// The overflow protocol must deliver every grant even when the switch
// region is far smaller than the contention (liveness end to end).
func TestNetLockOverflowLiveness(t *testing.T) {
	cfg := smallConfig()
	cfg.Clients = 4
	cfg.WorkersPerClient = 8 // 32 concurrent requests on...
	tb := NewTestbed(cfg)
	// ...a single lock with a 4-slot switch region.
	svc := newNetLock(tb, 1, []memalloc.Demand{{LockID: 1, Rate: 1e6, Contention: 4}})
	res := tb.Run(svc, singleLock{locks: 1, mode: wire.Exclusive}, 1e6, 200e6)
	if res.Txns < 100 {
		t.Fatalf("overflow stalled the lock: only %d txns", res.Txns)
	}
	st := svc.Manager().Switch().Stats()
	if st.Overflows == 0 || st.PushNotifies == 0 {
		t.Fatalf("overflow path not exercised: %+v", st)
	}
	srvStats := svc.Manager().Server(0).Stats()
	if srvStats.Buffered == 0 || srvStats.Pushed == 0 {
		t.Fatalf("server buffering not exercised: %+v", srvStats)
	}
}

func TestNetLockSharedContention(t *testing.T) {
	tb := NewTestbed(smallConfig())
	svc := newNetLock(tb, 1, []memalloc.Demand{{LockID: 1, Rate: 1e6, Contention: 64}})
	res := tb.Run(svc, singleLock{locks: 1, mode: wire.Shared}, 1e6, 50e6)
	if res.Txns == 0 {
		t.Fatalf("no transactions")
	}
	// Shared locks on one object should all be granted immediately: the
	// latency distribution should be as tight as the uncontended case.
	if res.LockLat.P99 > 100_000 {
		t.Fatalf("shared lock p99 = %dns, contention where none expected", res.LockLat.P99)
	}
}

func TestNetLockExclusiveContentionSlower(t *testing.T) {
	shared := func() Result {
		tb := NewTestbed(smallConfig())
		svc := newNetLock(tb, 1, []memalloc.Demand{{LockID: 1, Rate: 1e6, Contention: 64}})
		return tb.Run(svc, singleLock{locks: 1, mode: wire.Shared}, 1e6, 50e6)
	}()
	excl := func() Result {
		tb := NewTestbed(smallConfig())
		svc := newNetLock(tb, 1, []memalloc.Demand{{LockID: 1, Rate: 1e6, Contention: 64}})
		return tb.Run(svc, singleLock{locks: 1, mode: wire.Exclusive}, 1e6, 50e6)
	}()
	if excl.TxnRate >= shared.TxnRate {
		t.Fatalf("exclusive contention (%.0f TPS) should be slower than shared (%.0f TPS)",
			excl.TxnRate, shared.TxnRate)
	}
}

func TestNetLockFailureAndRecovery(t *testing.T) {
	cfg := smallConfig()
	cfg.RetryTimeoutNs = 2e6 // clients retry lost requests
	tb := NewTestbed(cfg)
	svc := newNetLock(tb, 1, hotDemands(16, 8))
	wl := singleLock{locks: 16, mode: wire.Exclusive}
	for c := 0; c < cfg.Clients; c++ {
		for w := 0; w < cfg.WorkersPerClient; w++ {
			tb.startWorker(c, svc, wl)
		}
	}
	tb.measuring = true
	tb.Eng.RunUntil(20e6)
	preTxns := tb.Txns
	if preTxns == 0 {
		t.Fatalf("no pre-failure transactions")
	}
	// Fail the switch: traffic drops.
	svc.Manager().FailSwitch()
	tb.SetSwitchDown(true)
	tb.Eng.RunUntil(40e6)
	during := tb.Txns - preTxns
	// A few in-flight completions may land right after the cut; after
	// that, silence.
	if during > preTxns/5 {
		t.Fatalf("too many transactions during failure: %d (pre: %d)", during, preTxns)
	}
	// Reactivate: the control plane reinstalls the table, clients retry.
	svc.Manager().RestartSwitch()
	tb.SetSwitchDown(false)
	tb.Eng.RunUntil(60e6)
	after := tb.Txns - preTxns - during
	if after < preTxns/2 {
		t.Fatalf("throughput did not recover: pre=%d after=%d", preTxns, after)
	}
}

func TestDSLRServiceCompletes(t *testing.T) {
	tb := NewTestbed(smallConfig())
	svc := NewDSLRService(tb, DefaultDSLROptions(2, 64))
	res := tb.Run(svc, singleLock{locks: 16, mode: wire.Exclusive}, 1e6, 50e6)
	if res.Txns == 0 {
		t.Fatalf("no transactions")
	}
	if svc.NICStats().Atomics == 0 {
		t.Fatalf("no atomic verbs recorded")
	}
}

func TestDSLRSharedConcurrency(t *testing.T) {
	// Shared-only traffic: everything grants in one RTT.
	tb := NewTestbed(smallConfig())
	svc := NewDSLRService(tb, DefaultDSLROptions(2, 64))
	res := tb.Run(svc, singleLock{locks: 4, mode: wire.Shared}, 1e6, 50e6)
	if res.Txns == 0 {
		t.Fatalf("no transactions")
	}
	if res.LockLat.P99 > 100_000 {
		t.Fatalf("shared DSLR p99 = %d, unexpected waiting", res.LockLat.P99)
	}
}

func TestDrTMServiceCompletes(t *testing.T) {
	tb := NewTestbed(smallConfig())
	svc := NewDrTMService(tb, DefaultDrTMOptions(2, 64))
	res := tb.Run(svc, singleLock{locks: 2, mode: wire.Exclusive}, 1e6, 50e6)
	if res.Txns == 0 {
		t.Fatalf("no transactions")
	}
	if svc.Retries == 0 {
		t.Fatalf("contended DrTM should retry")
	}
}

func TestNetChainServiceCompletes(t *testing.T) {
	tb := NewTestbed(smallConfig())
	svc := NewNetChainService(tb, DefaultNetChainOptions(64))
	res := tb.Run(svc, singleLock{locks: 8, mode: wire.Exclusive}, 1e6, 50e6)
	if res.Txns == 0 {
		t.Fatalf("no transactions")
	}
}

func TestCentralServiceCompletesAndScalesWithCores(t *testing.T) {
	run := func(cores int) Result {
		cfg := smallConfig()
		cfg.Clients = 4
		cfg.WorkersPerClient = 64
		tb := NewTestbed(cfg)
		svc := NewCentralService(tb, DefaultCentralOptions(1, cores))
		return tb.Run(svc, singleLock{locks: 4096, mode: wire.Exclusive}, 1e6, 50e6)
	}
	one := run(1)
	eight := run(8)
	if one.Txns == 0 || eight.Txns == 0 {
		t.Fatalf("no transactions: 1-core=%d 8-core=%d", one.Txns, eight.Txns)
	}
	if eight.TxnRate < 2*one.TxnRate {
		t.Fatalf("8 cores (%.0f) should beat 1 core (%.0f) clearly", eight.TxnRate, one.TxnRate)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		cfg := smallConfig()
		cfg.Seed = 42
		tb := NewTestbed(cfg)
		svc := newNetLock(tb, 1, hotDemands(8, 8))
		return tb.Run(svc, singleLock{locks: 8, mode: wire.Exclusive}, 1e6, 20e6)
	}
	a, b := run(), run()
	if a.Txns != b.Txns || a.Grants != b.Grants || a.TxnLat != b.TxnLat {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestOpenLoopMode(t *testing.T) {
	cfg := smallConfig()
	cfg.OpenLoopRate = 10_000 // 10k txn/s per client, 2 clients
	tb := NewTestbed(cfg)
	svc := newNetLock(tb, 1, hotDemands(16, 8))
	res := tb.Run(svc, singleLock{locks: 16, mode: wire.Shared}, 10e6, 100e6)
	// Offered: 20k/s over 0.1s window = ~2000 txns.
	if res.Txns < 1500 || res.Txns > 2500 {
		t.Fatalf("open-loop txns = %d, want ~2000", res.Txns)
	}
}

func TestTenantSeriesAndQuota(t *testing.T) {
	cfg := smallConfig()
	cfg.Clients = 4
	cfg.Tenants = 2
	cfg.SeriesBucketNs = 10e6
	tb := NewTestbed(cfg)
	svc := newNetLock(tb, 1, hotDemands(16, 16))
	res := tb.Run(svc, singleLock{locks: 16, mode: wire.Shared}, 1e6, 50e6)
	tt := res.TenantTxns
	if len(tt) != 2 || tt[0] == 0 || tt[1] == 0 {
		t.Fatalf("tenant txns = %v", tt)
	}
	if tb.TenantSeries(0) == nil || tb.TenantSeries(0).Total() == 0 {
		t.Fatalf("tenant series not recorded")
	}
}

func TestClientIPRoundTrip(t *testing.T) {
	for _, idx := range []int{0, 1, 255, 256, 1000} {
		if got := ClientIndex(ClientIP(idx)); got != idx {
			t.Fatalf("client IP round trip: %d -> %d", idx, got)
		}
	}
}

func TestTenantOfBlocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clients = 10
	cfg.Tenants = 2
	tb := NewTestbed(cfg)
	for c := 0; c < 5; c++ {
		if tb.TenantOf(c) != 0 {
			t.Fatalf("client %d tenant = %d, want 0", c, tb.TenantOf(c))
		}
	}
	for c := 5; c < 10; c++ {
		if tb.TenantOf(c) != 1 {
			t.Fatalf("client %d tenant = %d, want 1", c, tb.TenantOf(c))
		}
	}
}

func TestRunValidation(t *testing.T) {
	tb := NewTestbed(smallConfig())
	svc := newNetLock(tb, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for zero window")
		}
	}()
	tb.Run(svc, singleLock{locks: 1, mode: wire.Shared}, 0, 0)
}
