package cluster

import (
	"netlock/internal/baseline/netchain"
)

// NetChainOptions configures the NetChain baseline.
type NetChainOptions struct {
	// Locks is the in-switch lock table size; lock IDs fold onto it
	// (granularity adaptation, §6.1).
	Locks int
	// ChainLength is the number of switches in NetChain's replication
	// chain. NetChain is a chain-replicated KV store: every state-changing
	// operation (acquire, release) traverses the whole chain before the
	// tail replies, adding per-hop latency that a single NetLock switch
	// does not pay.
	ChainLength int
	// BackoffMinNs / BackoffMaxNs bound the client retry backoff after a
	// rejected acquisition.
	BackoffMinNs int64
	BackoffMaxNs int64
}

// DefaultNetChainOptions mirrors the evaluation setup.
func DefaultNetChainOptions(locks int) NetChainOptions {
	return NetChainOptions{Locks: locks, ChainLength: 3, BackoffMinNs: 10_000, BackoffMaxNs: 500_000}
}

// NetChainService emulates the NetChain comparison point (§6.1): an
// in-switch exclusive-only lock table with client-side retry. Shared
// requests are treated as exclusive, so read-read concurrency is lost, and
// every conflict costs the client a full retry round trip — but the switch
// itself runs at line rate and no server is involved.
type NetChainService struct {
	tb   *Testbed
	opts NetChainOptions
	kv   *netchain.Service
	// Retries counts rejected acquisition attempts.
	Retries uint64
}

// NewNetChainService builds the baseline on the testbed.
func NewNetChainService(tb *Testbed, opts NetChainOptions) *NetChainService {
	if opts.ChainLength <= 0 {
		opts.ChainLength = 1
	}
	return &NetChainService{tb: tb, opts: opts, kv: netchain.New(netchain.Config{Locks: opts.Locks})}
}

// chainNs is the extra one-way latency of traversing the replication chain
// beyond the first switch.
func (s *NetChainService) chainNs() int64 {
	return int64(s.opts.ChainLength-1) * s.tb.Cfg.HopNs
}

// Name implements LockService.
func (s *NetChainService) Name() string { return "NetChain" }

// Table exposes the underlying switch KV for stats.
func (s *NetChainService) Table() *netchain.Service { return s.kv }

// OrderKey implements cluster.LockOrderer: the effective lock identity is
// the folded table slot, plus the original ID to keep the order total.
// Transactions acquiring in this order cannot deadlock even when distinct
// application locks fold onto one slot.
func (s *NetChainService) OrderKey(lockID uint32) uint64 {
	return uint64(lockID)%uint64(s.opts.Locks)<<32 | uint64(lockID)
}

func (s *NetChainService) backoff(attempt int) int64 {
	d := s.opts.BackoffMinNs << uint(attempt)
	if d > s.opts.BackoffMaxNs || d <= 0 {
		d = s.opts.BackoffMaxNs
	}
	return d/2 + s.tb.Rng.Int63n(d/2+1)
}

// Acquire implements LockService: one switch round trip per attempt.
func (s *NetChainService) Acquire(req Request, granted func()) {
	s.try(req, 0, granted)
}

func (s *NetChainService) try(req Request, attempt int, granted func()) {
	cfg := s.tb.Cfg
	s.tb.ClientNIC(req.Client).Submit(func() {
		s.tb.Eng.After(cfg.ClientOverheadNs+cfg.HopNs, func() {
			if s.tb.SwitchDown() {
				return
			}
			s.tb.SwitchStation().Submit(func() {
				res := s.kv.Acquire(int(req.LockID), req.TxnID)
				// The write commits at the chain tail; the reply returns
				// from there.
				s.tb.Eng.After(s.chainNs()+cfg.HopNs+cfg.ClientOverheadNs, func() {
					if res == netchain.Granted {
						granted()
						return
					}
					s.Retries++
					s.tb.Eng.After(s.backoff(attempt), func() { s.try(req, attempt+1, granted) })
				})
			})
		})
	})
}

// Release implements LockService.
func (s *NetChainService) Release(req Request) {
	cfg := s.tb.Cfg
	s.tb.ClientNIC(req.Client).Submit(func() {
		s.tb.Eng.After(cfg.ClientOverheadNs+cfg.HopNs+s.chainNs(), func() {
			if s.tb.SwitchDown() {
				return
			}
			s.tb.SwitchStation().Submit(func() {
				s.kv.Release(int(req.LockID), req.TxnID)
			})
		})
	})
}
