// Package memalloc implements NetLock's switch-server memory management
// (paper §4.3): deciding which locks live in the switch's limited register
// memory and how many queue slots each gets.
//
// The optimization problem is:
//
//	maximize   Σ r_i · s_i / c_i
//	subject to Σ s_i ≤ S,  s_i ≤ c_i
//
// where r_i is lock i's request rate, c_i its maximum contention (peak
// concurrent requests), s_i the slots allocated in the switch, and S the
// switch memory size. Allocating one slot to lock i is worth r_i/c_i, so the
// greedy order by decreasing r_i/c_i (Algorithm 3) is optimal — the problem
// is a fractional knapsack (Theorem 1).
//
// The package also provides the random-split strawman the paper compares
// against (Figures 13 and 14b) and the layout step that turns slot counts
// into concrete regions in the shared queue's pooled slot space.
package memalloc

import (
	"math/rand"
	"sort"
)

// Demand is one lock's measured workload over the last window.
type Demand struct {
	LockID uint32
	// Rate is the lock's request rate r_i (requests/second).
	Rate float64
	// Contention is the maximum contention c_i: the peak number of
	// concurrent requests observed or predicted for the lock. Must be >= 1
	// for the lock to be placeable.
	Contention uint64
}

// Allocation assigns switch queue slots to one lock.
type Allocation struct {
	LockID uint32
	Slots  uint64
}

// Plan is the outcome of a memory allocation decision.
type Plan struct {
	// Switch lists the locks placed in switch memory with their slot
	// counts, in allocation order.
	Switch []Allocation
	// Server lists the locks left entirely to the lock servers.
	Server []uint32
	// GuaranteedRate is the objective value Σ r_i·s_i/c_i: the request rate
	// the switch is guaranteed to absorb even under maximum contention.
	GuaranteedRate float64
}

// SwitchSlotsUsed returns the total slots consumed by the plan.
func (p Plan) SwitchSlotsUsed() uint64 {
	var sum uint64
	for _, a := range p.Switch {
		sum += a.Slots
	}
	return sum
}

// Knapsack computes the optimal allocation (Algorithm 3): locks are
// considered in decreasing r_i/c_i order and each receives
// min(remaining, c_i) slots. Locks with zero contention or zero allocated
// slots go to the servers. The input slice is not modified.
func Knapsack(demands []Demand, capacity uint64) Plan {
	ds := make([]Demand, len(demands))
	copy(ds, demands)
	sortByValue(ds)
	return assign(ds, capacity)
}

// sortByValue orders demands by decreasing per-slot worth, breaking ties by
// ascending lock ID. The tie-break matters: equal-score demands otherwise
// keep input order, which depends on map iteration upstream, and a placement
// decision that differs between two runs of the same seed breaks seed-replay
// of the scenario sweeps.
func sortByValue(ds []Demand) {
	sort.Slice(ds, func(i, j int) bool {
		vi, vj := value(ds[i]), value(ds[j])
		if vi != vj {
			return vi > vj
		}
		return ds[i].LockID < ds[j].LockID
	})
}

// value is the per-slot worth r_i/c_i of a demand.
func value(d Demand) float64 {
	if d.Contention == 0 {
		return 0
	}
	return d.Rate / float64(d.Contention)
}

// Random computes the strawman allocation used as the baseline in the
// paper's Figures 13 and 14b: locks are considered in random order and
// otherwise allocated identically. The input slice is not modified.
func Random(demands []Demand, capacity uint64, rng *rand.Rand) Plan {
	ds := make([]Demand, len(demands))
	copy(ds, demands)
	rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
	return assign(ds, capacity)
}

// assign walks demands in order, granting each min(available, c_i) slots.
func assign(ds []Demand, capacity uint64) Plan {
	var plan Plan
	avail := capacity
	for _, d := range ds {
		if d.Contention == 0 || avail == 0 {
			plan.Server = append(plan.Server, d.LockID)
			continue
		}
		s := d.Contention
		if s > avail {
			s = avail
		}
		avail -= s
		plan.Switch = append(plan.Switch, Allocation{LockID: d.LockID, Slots: s})
		plan.GuaranteedRate += d.Rate * float64(s) / float64(d.Contention)
	}
	return plan
}

// Move is one placement change produced by Resolve: promote a lock into
// switch memory with Slots slots, or demote it back to the lock servers.
type Move struct {
	LockID  uint32
	Promote bool
	// Slots is the switch allocation after a promotion; zero for demotions.
	Slots uint64
}

// Resolve computes an incremental step from the current placement toward
// the knapsack optimum, bounded by a move budget — the re-solve a live
// rebalancer runs each control round, where moving every lock at once
// would stall traffic. current maps resident lock IDs to their switch slot
// counts. At most budget moves are returned, demotions ordered before the
// promotions they make room for; each is safe to apply one at a time with
// live traffic in between. The returned Plan describes the placement after
// all returned moves apply (kept locks retain their current slot counts).
//
// Resolve is deterministic for identical inputs: candidates are ordered by
// per-slot value with ties broken by lock ID, so 100-seed sweeps replay
// exactly.
func Resolve(demands []Demand, capacity uint64, current map[uint32]uint64, budget int) (Plan, []Move) {
	target := Knapsack(demands, capacity)
	inTarget := make(map[uint32]uint64, len(target.Switch))
	for _, a := range target.Switch {
		inTarget[a.LockID] = a.Slots
	}
	byID := make(map[uint32]Demand, len(demands))
	for _, d := range demands {
		byID[d.LockID] = d
	}

	// Classify: residents the target drops become demotion candidates
	// (coldest first); target locks not yet resident become promotion
	// candidates (hottest first, i.e. target order).
	var used uint64
	demoteCands := make([]Demand, 0)
	for id, slots := range current {
		used += slots
		if _, keep := inTarget[id]; !keep {
			demoteCands = append(demoteCands, byID[id]) // zero Demand (value 0) if unmeasured
			demoteCands[len(demoteCands)-1].LockID = id
		}
	}
	sortByValue(demoteCands)
	// Reverse: demote the least valuable residents first.
	for i, j := 0, len(demoteCands)-1; i < j; i, j = i+1, j-1 {
		demoteCands[i], demoteCands[j] = demoteCands[j], demoteCands[i]
	}
	var promoteCands []Allocation
	for _, a := range target.Switch {
		if _, resident := current[a.LockID]; !resident {
			promoteCands = append(promoteCands, a)
		}
	}

	var moves []Move
	free := uint64(0)
	if capacity > used {
		free = capacity - used
	}
	demoted := make(map[uint32]bool)
	di := 0
	for _, p := range promoteCands {
		if len(moves) >= budget {
			break
		}
		// Make room by demoting cold residents, still within budget (the
		// promotion itself needs one slot of budget too).
		for free < p.Slots && di < len(demoteCands) && len(moves)+1 < budget {
			d := demoteCands[di]
			di++
			moves = append(moves, Move{LockID: d.LockID})
			demoted[d.LockID] = true
			free += current[d.LockID]
		}
		if free < p.Slots {
			break // cannot make room within this round's budget
		}
		moves = append(moves, Move{LockID: p.LockID, Promote: true, Slots: p.Slots})
		free -= p.Slots
	}
	// Leftover budget: retire remaining cold residents.
	for ; di < len(demoteCands) && len(moves) < budget; di++ {
		d := demoteCands[di]
		moves = append(moves, Move{LockID: d.LockID})
		demoted[d.LockID] = true
	}

	// Describe the placement after the moves apply.
	final := make(map[uint32]uint64, len(current))
	for id, slots := range current {
		if !demoted[id] {
			final[id] = slots
		}
	}
	for _, m := range moves {
		if m.Promote {
			final[m.LockID] = m.Slots
		}
	}
	var plan Plan
	ds := make([]Demand, len(demands))
	copy(ds, demands)
	sortByValue(ds)
	for _, d := range ds {
		if slots, ok := final[d.LockID]; ok {
			plan.Switch = append(plan.Switch, Allocation{LockID: d.LockID, Slots: slots})
			delete(final, d.LockID)
		} else {
			plan.Server = append(plan.Server, d.LockID)
		}
	}
	// Residents with no demand entry still belong to the plan.
	for id, slots := range final {
		plan.Switch = append(plan.Switch, Allocation{LockID: id, Slots: slots})
	}
	sort.Slice(plan.Switch[len(plan.Switch)-len(final):], func(i, j int) bool {
		tail := plan.Switch[len(plan.Switch)-len(final):]
		return tail[i].LockID < tail[j].LockID
	})
	alloc := make(map[uint32]uint64, len(plan.Switch))
	for _, a := range plan.Switch {
		alloc[a.LockID] = a.Slots
	}
	plan.GuaranteedRate = Objective(demands, alloc)
	return plan, moves
}

// Objective evaluates Σ r_i·s_i/c_i for an arbitrary allocation against the
// given demands; used by tests and by the control loop to compare plans.
func Objective(demands []Demand, alloc map[uint32]uint64) float64 {
	var sum float64
	for _, d := range demands {
		if d.Contention == 0 {
			continue
		}
		s := alloc[d.LockID]
		if s > d.Contention {
			s = d.Contention
		}
		sum += d.Rate * float64(s) / float64(d.Contention)
	}
	return sum
}

// ServersNeeded returns the number of lock servers required to guarantee the
// workload given the plan (§4.3, performance guarantee): the residual rate
// Σr_i − GuaranteedRate divided by the per-server rate, rounded up.
func ServersNeeded(demands []Demand, plan Plan, serverRate float64) int {
	if serverRate <= 0 {
		panic("memalloc: non-positive server rate")
	}
	var total float64
	for _, d := range demands {
		total += d.Rate
	}
	residual := total - plan.GuaranteedRate
	if residual <= 0 {
		return 0
	}
	n := int(residual / serverRate)
	if float64(n)*serverRate < residual {
		n++
	}
	return n
}

// Region is a contiguous [Left, Right) slice of a bank's slot space,
// mirroring switchdp.Region without importing it (memalloc stays dependency
// free of the data plane).
type Region struct {
	Left, Right uint64
}

// Layout packs a plan's allocations into per-bank regions. Each lock's s_i
// slots are spread across the banks (priority queues); every placed lock
// receives at least one slot per bank, so locks whose allocation is smaller
// than the bank count are demoted to the servers. Lock order follows the
// plan (most valuable first), so if the per-bank space is exhausted the
// least valuable locks are demoted.
//
// It returns the regions per placed lock and the IDs demoted to servers (in
// addition to plan.Server).
func Layout(plan Plan, banks int, bankSlots uint64) (map[uint32][]Region, []uint32) {
	if banks <= 0 || bankSlots == 0 {
		panic("memalloc: invalid layout geometry")
	}
	regions := make(map[uint32][]Region, len(plan.Switch))
	var demoted []uint32
	next := make([]uint64, banks) // next free slot per bank
	for _, a := range plan.Switch {
		if a.Slots < uint64(banks) {
			demoted = append(demoted, a.LockID)
			continue
		}
		per := a.Slots / uint64(banks)
		extra := a.Slots % uint64(banks)
		// Feasibility check first so a failed lock leaves no partial regions.
		ok := true
		for b := 0; b < banks; b++ {
			sz := per
			if uint64(b) < extra {
				sz++
			}
			if next[b]+sz > bankSlots {
				ok = false
				break
			}
		}
		if !ok {
			demoted = append(demoted, a.LockID)
			continue
		}
		rs := make([]Region, banks)
		for b := 0; b < banks; b++ {
			sz := per
			if uint64(b) < extra {
				sz++
			}
			rs[b] = Region{Left: next[b], Right: next[b] + sz}
			next[b] += sz
		}
		regions[a.LockID] = rs
	}
	return regions, demoted
}
