// Package memalloc implements NetLock's switch-server memory management
// (paper §4.3): deciding which locks live in the switch's limited register
// memory and how many queue slots each gets.
//
// The optimization problem is:
//
//	maximize   Σ r_i · s_i / c_i
//	subject to Σ s_i ≤ S,  s_i ≤ c_i
//
// where r_i is lock i's request rate, c_i its maximum contention (peak
// concurrent requests), s_i the slots allocated in the switch, and S the
// switch memory size. Allocating one slot to lock i is worth r_i/c_i, so the
// greedy order by decreasing r_i/c_i (Algorithm 3) is optimal — the problem
// is a fractional knapsack (Theorem 1).
//
// The package also provides the random-split strawman the paper compares
// against (Figures 13 and 14b) and the layout step that turns slot counts
// into concrete regions in the shared queue's pooled slot space.
package memalloc

import (
	"math/rand"
	"sort"
)

// Demand is one lock's measured workload over the last window.
type Demand struct {
	LockID uint32
	// Rate is the lock's request rate r_i (requests/second).
	Rate float64
	// Contention is the maximum contention c_i: the peak number of
	// concurrent requests observed or predicted for the lock. Must be >= 1
	// for the lock to be placeable.
	Contention uint64
}

// Allocation assigns switch queue slots to one lock.
type Allocation struct {
	LockID uint32
	Slots  uint64
}

// Plan is the outcome of a memory allocation decision.
type Plan struct {
	// Switch lists the locks placed in switch memory with their slot
	// counts, in allocation order.
	Switch []Allocation
	// Server lists the locks left entirely to the lock servers.
	Server []uint32
	// GuaranteedRate is the objective value Σ r_i·s_i/c_i: the request rate
	// the switch is guaranteed to absorb even under maximum contention.
	GuaranteedRate float64
}

// SwitchSlotsUsed returns the total slots consumed by the plan.
func (p Plan) SwitchSlotsUsed() uint64 {
	var sum uint64
	for _, a := range p.Switch {
		sum += a.Slots
	}
	return sum
}

// Knapsack computes the optimal allocation (Algorithm 3): locks are
// considered in decreasing r_i/c_i order and each receives
// min(remaining, c_i) slots. Locks with zero contention or zero allocated
// slots go to the servers. The input slice is not modified.
func Knapsack(demands []Demand, capacity uint64) Plan {
	ds := make([]Demand, len(demands))
	copy(ds, demands)
	sort.SliceStable(ds, func(i, j int) bool {
		return value(ds[i]) > value(ds[j])
	})
	return assign(ds, capacity)
}

// value is the per-slot worth r_i/c_i of a demand.
func value(d Demand) float64 {
	if d.Contention == 0 {
		return 0
	}
	return d.Rate / float64(d.Contention)
}

// Random computes the strawman allocation used as the baseline in the
// paper's Figures 13 and 14b: locks are considered in random order and
// otherwise allocated identically. The input slice is not modified.
func Random(demands []Demand, capacity uint64, rng *rand.Rand) Plan {
	ds := make([]Demand, len(demands))
	copy(ds, demands)
	rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
	return assign(ds, capacity)
}

// assign walks demands in order, granting each min(available, c_i) slots.
func assign(ds []Demand, capacity uint64) Plan {
	var plan Plan
	avail := capacity
	for _, d := range ds {
		if d.Contention == 0 || avail == 0 {
			plan.Server = append(plan.Server, d.LockID)
			continue
		}
		s := d.Contention
		if s > avail {
			s = avail
		}
		avail -= s
		plan.Switch = append(plan.Switch, Allocation{LockID: d.LockID, Slots: s})
		plan.GuaranteedRate += d.Rate * float64(s) / float64(d.Contention)
	}
	return plan
}

// Objective evaluates Σ r_i·s_i/c_i for an arbitrary allocation against the
// given demands; used by tests and by the control loop to compare plans.
func Objective(demands []Demand, alloc map[uint32]uint64) float64 {
	var sum float64
	for _, d := range demands {
		if d.Contention == 0 {
			continue
		}
		s := alloc[d.LockID]
		if s > d.Contention {
			s = d.Contention
		}
		sum += d.Rate * float64(s) / float64(d.Contention)
	}
	return sum
}

// ServersNeeded returns the number of lock servers required to guarantee the
// workload given the plan (§4.3, performance guarantee): the residual rate
// Σr_i − GuaranteedRate divided by the per-server rate, rounded up.
func ServersNeeded(demands []Demand, plan Plan, serverRate float64) int {
	if serverRate <= 0 {
		panic("memalloc: non-positive server rate")
	}
	var total float64
	for _, d := range demands {
		total += d.Rate
	}
	residual := total - plan.GuaranteedRate
	if residual <= 0 {
		return 0
	}
	n := int(residual / serverRate)
	if float64(n)*serverRate < residual {
		n++
	}
	return n
}

// Region is a contiguous [Left, Right) slice of a bank's slot space,
// mirroring switchdp.Region without importing it (memalloc stays dependency
// free of the data plane).
type Region struct {
	Left, Right uint64
}

// Layout packs a plan's allocations into per-bank regions. Each lock's s_i
// slots are spread across the banks (priority queues); every placed lock
// receives at least one slot per bank, so locks whose allocation is smaller
// than the bank count are demoted to the servers. Lock order follows the
// plan (most valuable first), so if the per-bank space is exhausted the
// least valuable locks are demoted.
//
// It returns the regions per placed lock and the IDs demoted to servers (in
// addition to plan.Server).
func Layout(plan Plan, banks int, bankSlots uint64) (map[uint32][]Region, []uint32) {
	if banks <= 0 || bankSlots == 0 {
		panic("memalloc: invalid layout geometry")
	}
	regions := make(map[uint32][]Region, len(plan.Switch))
	var demoted []uint32
	next := make([]uint64, banks) // next free slot per bank
	for _, a := range plan.Switch {
		if a.Slots < uint64(banks) {
			demoted = append(demoted, a.LockID)
			continue
		}
		per := a.Slots / uint64(banks)
		extra := a.Slots % uint64(banks)
		// Feasibility check first so a failed lock leaves no partial regions.
		ok := true
		for b := 0; b < banks; b++ {
			sz := per
			if uint64(b) < extra {
				sz++
			}
			if next[b]+sz > bankSlots {
				ok = false
				break
			}
		}
		if !ok {
			demoted = append(demoted, a.LockID)
			continue
		}
		rs := make([]Region, banks)
		for b := 0; b < banks; b++ {
			sz := per
			if uint64(b) < extra {
				sz++
			}
			rs[b] = Region{Left: next[b], Right: next[b] + sz}
			next[b] += sz
		}
		regions[a.LockID] = rs
	}
	return regions, demoted
}
