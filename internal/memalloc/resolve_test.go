package memalloc

import (
	"math/rand"
	"reflect"
	"testing"
)

// Equal-score demands must produce the identical plan regardless of input
// order. The upstream demand list is assembled from a map, so without the
// lock-ID tie-break the placement of same-value locks would depend on map
// iteration order and seed-replay of scenario sweeps would diverge.
func TestKnapsackDeterministicUnderTies(t *testing.T) {
	base := []Demand{
		{LockID: 7, Rate: 100, Contention: 4},
		{LockID: 3, Rate: 100, Contention: 4},
		{LockID: 9, Rate: 100, Contention: 4},
		{LockID: 1, Rate: 100, Contention: 4},
		{LockID: 5, Rate: 50, Contention: 2}, // same value 25 as the rest
	}
	want := Knapsack(base, 10) // only 2.5 locks fit: placement must still be stable
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		ds := make([]Demand, len(base))
		copy(ds, base)
		rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
		got := Knapsack(ds, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: shuffled input changed plan:\n got %+v\nwant %+v", trial, got, want)
		}
	}
	// Ties resolve to ascending lock IDs.
	for i := 1; i < len(want.Switch); i++ {
		if want.Switch[i-1].LockID >= want.Switch[i].LockID {
			t.Fatalf("tied allocations not in lock-ID order: %+v", want.Switch)
		}
	}
}

func TestResolveEmptyCurrentMatchesKnapsack(t *testing.T) {
	demands := []Demand{
		{LockID: 1, Rate: 90, Contention: 3},
		{LockID: 2, Rate: 40, Contention: 2},
		{LockID: 3, Rate: 10, Contention: 5},
	}
	plan, moves := Resolve(demands, 5, nil, 100)
	want := Knapsack(demands, 5)
	if !reflect.DeepEqual(plan.Switch, want.Switch) {
		t.Fatalf("plan %+v, want %+v", plan.Switch, want.Switch)
	}
	if len(moves) != len(want.Switch) {
		t.Fatalf("%d moves for a cold start, want %d", len(moves), len(want.Switch))
	}
	for _, m := range moves {
		if !m.Promote {
			t.Fatalf("cold start produced a demotion: %+v", m)
		}
	}
}

func TestResolveNoopWhenOptimal(t *testing.T) {
	demands := []Demand{
		{LockID: 1, Rate: 90, Contention: 3},
		{LockID: 2, Rate: 40, Contention: 2},
	}
	current := map[uint32]uint64{1: 3, 2: 2}
	plan, moves := Resolve(demands, 5, current, 100)
	if len(moves) != 0 {
		t.Fatalf("optimal placement produced moves: %+v", moves)
	}
	if len(plan.Switch) != 2 {
		t.Fatalf("plan dropped resident locks: %+v", plan)
	}
}

// A hot-set rotation: the resident lock cools down, a new lock heats up.
// Resolve must demote the cold one before promoting the hot one so the
// promotion always has room.
func TestResolveDemotesBeforePromoting(t *testing.T) {
	demands := []Demand{
		{LockID: 1, Rate: 1, Contention: 4},   // cooled down
		{LockID: 2, Rate: 400, Contention: 4}, // new hot lock
	}
	current := map[uint32]uint64{1: 4}
	plan, moves := Resolve(demands, 4, current, 10)
	if len(moves) != 2 {
		t.Fatalf("moves = %+v, want demote 1 then promote 2", moves)
	}
	if moves[0].Promote || moves[0].LockID != 1 {
		t.Fatalf("first move = %+v, want demotion of lock 1", moves[0])
	}
	if !moves[1].Promote || moves[1].LockID != 2 || moves[1].Slots != 4 {
		t.Fatalf("second move = %+v, want promotion of lock 2 with 4 slots", moves[1])
	}
	if len(plan.Switch) != 1 || plan.Switch[0].LockID != 2 {
		t.Fatalf("final plan = %+v", plan.Switch)
	}
}

// The budget caps moves per round; a too-small budget must not emit a
// demotion whose paired promotion cannot fit in the same round (that would
// leave the switch needlessly empty), but leftover budget may retire cold
// residents.
func TestResolveRespectsBudget(t *testing.T) {
	demands := []Demand{
		{LockID: 1, Rate: 1, Contention: 4},
		{LockID: 2, Rate: 1, Contention: 4},
		{LockID: 3, Rate: 400, Contention: 8},
	}
	current := map[uint32]uint64{1: 4, 2: 4}

	// Budget 1: promoting 3 needs both residents demoted (2 moves) plus the
	// promotion — impossible. The single move must be a demotion (progress
	// toward the target), never a half-prepared state beyond budget.
	_, moves := Resolve(demands, 8, current, 1)
	if len(moves) != 1 || moves[0].Promote {
		t.Fatalf("budget-1 moves = %+v, want one demotion", moves)
	}

	// Budget 3: demote 1, demote 2, promote 3.
	plan, moves := Resolve(demands, 8, current, 3)
	if len(moves) != 3 {
		t.Fatalf("budget-3 moves = %+v", moves)
	}
	if moves[0].Promote || moves[1].Promote || !moves[2].Promote {
		t.Fatalf("move order = %+v, want demote, demote, promote", moves)
	}
	if moves[2].LockID != 3 || moves[2].Slots != 8 {
		t.Fatalf("promotion = %+v", moves[2])
	}
	if len(plan.Switch) != 1 || plan.Switch[0].LockID != 3 {
		t.Fatalf("final plan = %+v", plan.Switch)
	}
}

// Residents with no demand entry (cooled off the measurement window
// entirely) are the coldest candidates and are demoted first.
func TestResolveDemotesUnmeasuredResidents(t *testing.T) {
	demands := []Demand{
		{LockID: 2, Rate: 100, Contention: 2},
	}
	current := map[uint32]uint64{9: 4} // lock 9 no longer measured
	plan, moves := Resolve(demands, 4, current, 10)
	if len(moves) != 2 {
		t.Fatalf("moves = %+v", moves)
	}
	if moves[0].Promote || moves[0].LockID != 9 {
		t.Fatalf("first move = %+v, want demotion of unmeasured lock 9", moves[0])
	}
	if !moves[1].Promote || moves[1].LockID != 2 {
		t.Fatalf("second move = %+v", moves[1])
	}
	if len(plan.Switch) != 1 || plan.Switch[0].LockID != 2 {
		t.Fatalf("final plan = %+v", plan.Switch)
	}
}

// Resolve is deterministic across shuffled demand input and map-ordered
// current placement, byte for byte — the property the rebalancer's
// seed-replay depends on.
func TestResolveDeterministic(t *testing.T) {
	base := []Demand{
		{LockID: 4, Rate: 100, Contention: 4},
		{LockID: 2, Rate: 100, Contention: 4},
		{LockID: 8, Rate: 100, Contention: 4},
		{LockID: 6, Rate: 100, Contention: 4},
		{LockID: 1, Rate: 3, Contention: 3},
		{LockID: 3, Rate: 3, Contention: 3},
	}
	current := map[uint32]uint64{1: 3, 3: 3, 6: 4}
	wantPlan, wantMoves := Resolve(base, 11, current, 3)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		ds := make([]Demand, len(base))
		copy(ds, base)
		rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
		cur := map[uint32]uint64{}
		for k, v := range current {
			cur[k] = v
		}
		plan, moves := Resolve(ds, 11, cur, 3)
		if !reflect.DeepEqual(moves, wantMoves) {
			t.Fatalf("trial %d: moves %+v, want %+v", trial, moves, wantMoves)
		}
		if !reflect.DeepEqual(plan, wantPlan) {
			t.Fatalf("trial %d: plan %+v, want %+v", trial, plan, wantPlan)
		}
	}
}
