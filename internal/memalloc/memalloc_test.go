package memalloc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnapsackPaperExample(t *testing.T) {
	// Figure 7: lock 1 has two clients at 100 req/s each (r=200, c=2);
	// lock 2 has one client at 10 req/s (r=10, c=1). With two switch
	// slots, the optimal allocation gives both slots to lock 1.
	demands := []Demand{
		{LockID: 1, Rate: 200, Contention: 2},
		{LockID: 2, Rate: 10, Contention: 1},
	}
	plan := Knapsack(demands, 2)
	if len(plan.Switch) != 1 || plan.Switch[0].LockID != 1 || plan.Switch[0].Slots != 2 {
		t.Fatalf("plan = %+v, want lock 1 with 2 slots", plan)
	}
	if len(plan.Server) != 1 || plan.Server[0] != 2 {
		t.Fatalf("lock 2 should go to the server: %+v", plan)
	}
	if plan.GuaranteedRate != 200 {
		t.Fatalf("guaranteed rate = %f, want 200", plan.GuaranteedRate)
	}
}

func TestKnapsackCapsAtContention(t *testing.T) {
	demands := []Demand{{LockID: 1, Rate: 100, Contention: 3}}
	plan := Knapsack(demands, 100)
	if plan.Switch[0].Slots != 3 {
		t.Fatalf("slots = %d, want capped at c_i=3", plan.Switch[0].Slots)
	}
	if plan.SwitchSlotsUsed() != 3 {
		t.Fatalf("slots used = %d", plan.SwitchSlotsUsed())
	}
}

func TestKnapsackPartialLastLock(t *testing.T) {
	demands := []Demand{
		{LockID: 1, Rate: 100, Contention: 4}, // value 25
		{LockID: 2, Rate: 40, Contention: 4},  // value 10
	}
	plan := Knapsack(demands, 6)
	if len(plan.Switch) != 2 || plan.Switch[0].Slots != 4 || plan.Switch[1].Slots != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	want := 100.0 + 40.0*2/4
	if math.Abs(plan.GuaranteedRate-want) > 1e-9 {
		t.Fatalf("rate = %f, want %f", plan.GuaranteedRate, want)
	}
}

func TestKnapsackZeroContentionGoesToServer(t *testing.T) {
	demands := []Demand{
		{LockID: 1, Rate: 100, Contention: 0},
		{LockID: 2, Rate: 1, Contention: 1},
	}
	plan := Knapsack(demands, 10)
	if len(plan.Switch) != 1 || plan.Switch[0].LockID != 2 {
		t.Fatalf("zero-contention lock must not be placed: %+v", plan)
	}
}

func TestKnapsackDoesNotMutateInput(t *testing.T) {
	demands := []Demand{
		{LockID: 1, Rate: 1, Contention: 1},
		{LockID: 2, Rate: 100, Contention: 1},
	}
	Knapsack(demands, 10)
	if demands[0].LockID != 1 || demands[1].LockID != 2 {
		t.Fatalf("input mutated: %+v", demands)
	}
}

func TestRandomSameTotalDifferentOrder(t *testing.T) {
	var demands []Demand
	for i := uint32(1); i <= 50; i++ {
		demands = append(demands, Demand{LockID: i, Rate: float64(i), Contention: 2})
	}
	rng := rand.New(rand.NewSource(1))
	plan := Random(demands, 20, rng)
	if plan.SwitchSlotsUsed() != 20 {
		t.Fatalf("random plan should fill capacity: used %d", plan.SwitchSlotsUsed())
	}
	// With high probability the random plan is strictly worse than optimal.
	opt := Knapsack(demands, 20)
	if plan.GuaranteedRate > opt.GuaranteedRate {
		t.Fatalf("random (%f) beat optimal (%f)", plan.GuaranteedRate, opt.GuaranteedRate)
	}
}

// Exhaustive check of optimality on small instances: the greedy plan's
// objective must match the best over all feasible integer allocations.
func TestKnapsackOptimalExhaustive(t *testing.T) {
	bruteBest := func(demands []Demand, capacity uint64) float64 {
		best := 0.0
		var rec func(i int, remaining uint64, acc float64)
		rec = func(i int, remaining uint64, acc float64) {
			if i == len(demands) {
				if acc > best {
					best = acc
				}
				return
			}
			d := demands[i]
			maxS := d.Contention
			if maxS > remaining {
				maxS = remaining
			}
			for s := uint64(0); s <= maxS; s++ {
				v := 0.0
				if d.Contention > 0 {
					v = d.Rate * float64(s) / float64(d.Contention)
				}
				rec(i+1, remaining-s, acc+v)
			}
		}
		rec(0, capacity, 0)
		return best
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		demands := make([]Demand, n)
		for i := range demands {
			demands[i] = Demand{
				LockID:     uint32(i + 1),
				Rate:       float64(rng.Intn(100) + 1),
				Contention: uint64(rng.Intn(4) + 1),
			}
		}
		capacity := uint64(rng.Intn(8))
		got := Knapsack(demands, capacity).GuaranteedRate
		want := bruteBest(demands, capacity)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: greedy=%f brute=%f demands=%+v cap=%d",
				trial, got, want, demands, capacity)
		}
	}
}

// Property: the plan never exceeds capacity, never allocates more than c_i
// to a lock, and every lock appears exactly once across Switch and Server.
func TestPlanFeasibilityProperty(t *testing.T) {
	f := func(raw []struct {
		Rate uint16
		Cont uint8
	}, capRaw uint16) bool {
		demands := make([]Demand, len(raw))
		for i, r := range raw {
			demands[i] = Demand{LockID: uint32(i + 1), Rate: float64(r.Rate), Contention: uint64(r.Cont % 8)}
		}
		capacity := uint64(capRaw % 64)
		plan := Knapsack(demands, capacity)
		if plan.SwitchSlotsUsed() > capacity {
			return false
		}
		seen := map[uint32]bool{}
		byID := map[uint32]Demand{}
		for _, d := range demands {
			byID[d.LockID] = d
		}
		for _, a := range plan.Switch {
			if seen[a.LockID] || a.Slots == 0 || a.Slots > byID[a.LockID].Contention {
				return false
			}
			seen[a.LockID] = true
		}
		for _, id := range plan.Server {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(seen) == len(demands)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy dominates random for every instance (Theorem 1).
func TestKnapsackDominatesRandomProperty(t *testing.T) {
	f := func(seed int64, raw []struct {
		Rate uint16
		Cont uint8
	}, capRaw uint16) bool {
		demands := make([]Demand, len(raw))
		for i, r := range raw {
			demands[i] = Demand{LockID: uint32(i + 1), Rate: float64(r.Rate), Contention: uint64(r.Cont%8) + 1}
		}
		capacity := uint64(capRaw % 64)
		opt := Knapsack(demands, capacity).GuaranteedRate
		rnd := Random(demands, capacity, rand.New(rand.NewSource(seed))).GuaranteedRate
		return opt >= rnd-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestObjective(t *testing.T) {
	demands := []Demand{
		{LockID: 1, Rate: 100, Contention: 4},
		{LockID: 2, Rate: 10, Contention: 0},
	}
	got := Objective(demands, map[uint32]uint64{1: 2, 2: 5})
	if got != 50 {
		t.Fatalf("objective = %f, want 50", got)
	}
	// Slots above contention are clamped.
	if Objective(demands, map[uint32]uint64{1: 100}) != 100 {
		t.Fatalf("objective should clamp s_i at c_i")
	}
}

func TestServersNeeded(t *testing.T) {
	demands := []Demand{
		{LockID: 1, Rate: 1000, Contention: 2},
		{LockID: 2, Rate: 500, Contention: 2},
	}
	// Empty plan: all 1500 req/s on servers at 400 each -> 4 servers.
	if got := ServersNeeded(demands, Plan{}, 400); got != 4 {
		t.Fatalf("servers = %d, want 4", got)
	}
	// Full absorption: zero servers.
	full := Knapsack(demands, 100)
	if got := ServersNeeded(demands, full, 400); got != 0 {
		t.Fatalf("servers = %d, want 0", got)
	}
	// Exact division should not round up.
	if got := ServersNeeded(demands, Plan{GuaranteedRate: 700}, 400); got != 2 {
		t.Fatalf("servers = %d, want 2", got)
	}
}

func TestServersNeededPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	ServersNeeded(nil, Plan{}, 0)
}

func TestLayoutBasic(t *testing.T) {
	plan := Plan{Switch: []Allocation{
		{LockID: 1, Slots: 4},
		{LockID: 2, Slots: 2},
	}}
	regions, demoted := Layout(plan, 2, 100)
	if len(demoted) != 0 {
		t.Fatalf("unexpected demotions: %v", demoted)
	}
	r1 := regions[1]
	if r1[0] != (Region{0, 2}) || r1[1] != (Region{0, 2}) {
		t.Fatalf("lock 1 regions = %+v", r1)
	}
	r2 := regions[2]
	if r2[0] != (Region{2, 3}) || r2[1] != (Region{2, 3}) {
		t.Fatalf("lock 2 regions = %+v", r2)
	}
}

func TestLayoutUnevenSplit(t *testing.T) {
	plan := Plan{Switch: []Allocation{{LockID: 1, Slots: 5}}}
	regions, _ := Layout(plan, 2, 100)
	r := regions[1]
	if r[0].Right-r[0].Left+r[1].Right-r[1].Left != 5 {
		t.Fatalf("split loses slots: %+v", r)
	}
	if r[0].Right-r[0].Left != 3 || r[1].Right-r[1].Left != 2 {
		t.Fatalf("extra slot should go to earlier bank: %+v", r)
	}
}

func TestLayoutDemotesTooSmall(t *testing.T) {
	plan := Plan{Switch: []Allocation{{LockID: 1, Slots: 1}}}
	regions, demoted := Layout(plan, 2, 100)
	if len(regions) != 0 || len(demoted) != 1 || demoted[0] != 1 {
		t.Fatalf("lock smaller than bank count must demote: %v %v", regions, demoted)
	}
}

func TestLayoutDemotesOnBankExhaustion(t *testing.T) {
	plan := Plan{Switch: []Allocation{
		{LockID: 1, Slots: 8},
		{LockID: 2, Slots: 4},
	}}
	regions, demoted := Layout(plan, 1, 10)
	if _, ok := regions[1]; !ok {
		t.Fatalf("lock 1 should fit")
	}
	if len(demoted) != 1 || demoted[0] != 2 {
		t.Fatalf("lock 2 should demote on exhaustion: %v", demoted)
	}
}

func TestLayoutPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Layout(Plan{}, 0, 10)
}

// Property: layout regions never overlap within a bank and never exceed the
// bank size.
func TestLayoutNonOverlapProperty(t *testing.T) {
	f := func(sizes []uint8, banksRaw uint8, bankSlotsRaw uint16) bool {
		banks := int(banksRaw%4) + 1
		bankSlots := uint64(bankSlotsRaw%256) + 1
		var plan Plan
		for i, s := range sizes {
			plan.Switch = append(plan.Switch, Allocation{LockID: uint32(i + 1), Slots: uint64(s % 32)})
		}
		regions, _ := Layout(plan, banks, bankSlots)
		for b := 0; b < banks; b++ {
			type iv struct{ l, r uint64 }
			var ivs []iv
			for _, rs := range regions {
				if rs[b].Right > bankSlots || rs[b].Left >= rs[b].Right {
					return false
				}
				ivs = append(ivs, iv{rs[b].Left, rs[b].Right})
			}
			for i := range ivs {
				for j := i + 1; j < len(ivs); j++ {
					if ivs[i].l < ivs[j].r && ivs[j].l < ivs[i].r {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
