package lockserver

import (
	"net/netip"
	"testing"

	"netlock/internal/wire"
)

func newServer() *Server {
	return New(Config{Priorities: 1})
}

func req(op wire.Op, lockID uint32, txn uint64, mode wire.Mode) *wire.Header {
	return &wire.Header{
		Op:       op,
		Mode:     mode,
		LockID:   lockID,
		TxnID:    txn,
		ClientIP: netip.AddrFrom4([4]byte{10, 0, 0, byte(txn)}),
	}
}

func do(t testing.TB, s *Server, h *wire.Header) []Emit {
	t.Helper()
	emits := s.ProcessPacket(h)
	out := make([]Emit, len(emits))
	copy(out, emits)
	return out
}

func wantActions(t *testing.T, emits []Emit, want ...Action) {
	t.Helper()
	if len(emits) != len(want) {
		t.Fatalf("emits = %v, want %v", emits, want)
	}
	for i := range want {
		if emits[i].Action != want[i] {
			t.Fatalf("emit %d = %v, want %v", i, emits[i].Action, want[i])
		}
	}
}

func TestOwnedExclusiveGrantQueueRelease(t *testing.T) {
	s := newServer()
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive)), ActGrant)
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 2, wire.Exclusive))) // queues
	emits := do(t, s, req(wire.OpRelease, 1, 1, wire.Exclusive))
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 2 {
		t.Fatalf("grant = %v", emits[0].Hdr)
	}
	do(t, s, req(wire.OpRelease, 1, 2, wire.Exclusive))
	st := s.Stats()
	if st.GrantsImmediate != 1 || st.GrantsQueued != 1 || st.Queued != 1 || st.Releases != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOwnedSharedRun(t *testing.T) {
	s := newServer()
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	for txn := uint64(2); txn <= 4; txn++ {
		wantActions(t, do(t, s, req(wire.OpAcquire, 1, txn, wire.Shared)))
	}
	do(t, s, req(wire.OpAcquire, 1, 5, wire.Exclusive))
	emits := do(t, s, req(wire.OpRelease, 1, 1, wire.Exclusive))
	wantActions(t, emits, ActGrant, ActGrant, ActGrant)
	for i, txn := range []uint64{2, 3, 4} {
		if emits[i].Hdr.TxnID != txn {
			t.Fatalf("run grant %d = %v", i, emits[i].Hdr)
		}
	}
	// Releasing all three shared grants hands the lock to the exclusive.
	do(t, s, req(wire.OpRelease, 1, 2, wire.Shared))
	do(t, s, req(wire.OpRelease, 1, 3, wire.Shared))
	emits = do(t, s, req(wire.OpRelease, 1, 4, wire.Shared))
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 5 {
		t.Fatalf("final grant = %v", emits[0].Hdr)
	}
}

func TestOwnedSharedConcurrentAndFCFS(t *testing.T) {
	s := newServer()
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 1, wire.Shared)), ActGrant)
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 2, wire.Shared)), ActGrant)
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 3, wire.Exclusive))) // waits
	// A later shared request must not jump the exclusive one.
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 4, wire.Shared)))
}

func TestReleaseUnknownLockIgnored(t *testing.T) {
	s := newServer()
	wantActions(t, do(t, s, req(wire.OpRelease, 42, 1, wire.Exclusive)))
}

func TestPriorityGrantOrder(t *testing.T) {
	s := New(Config{Priorities: 2})
	lo := func(txn uint64, mode wire.Mode) *wire.Header {
		h := req(wire.OpAcquire, 1, txn, mode)
		h.Priority = 1
		return h
	}
	hi := func(txn uint64, mode wire.Mode) *wire.Header {
		h := req(wire.OpAcquire, 1, txn, mode)
		h.Priority = 0
		return h
	}
	wantActions(t, do(t, s, lo(1, wire.Exclusive)), ActGrant)
	wantActions(t, do(t, s, lo(2, wire.Exclusive)))
	wantActions(t, do(t, s, hi(3, wire.Exclusive)))
	rel := req(wire.OpRelease, 1, 1, wire.Exclusive)
	rel.Priority = 1
	emits := do(t, s, rel)
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 3 {
		t.Fatalf("high priority should win: %v", emits[0].Hdr)
	}
}

func TestOneRTTFetch(t *testing.T) {
	s := newServer()
	h := req(wire.OpAcquire, 1, 1, wire.Exclusive)
	h.Flags = wire.FlagOneRTT
	emits := do(t, s, h)
	wantActions(t, emits, ActFetch)
	if emits[0].Hdr.Op != wire.OpFetch {
		t.Fatalf("one-RTT emit = %v", emits[0].Hdr)
	}
}

func TestOverflowBufferingProtocol(t *testing.T) {
	s := newServer()
	// Make the lock switch-resident from this server's perspective.
	if err := s.CtrlReleaseOwnership(7); err != nil {
		t.Fatal(err)
	}
	// First overflow-marked request: bounced once (clear race defense).
	m1 := req(wire.OpAcquire, 7, 1, wire.Exclusive)
	m1.Flags = wire.FlagOverflow
	emits := do(t, s, m1)
	wantActions(t, emits, ActPush)
	if emits[0].Hdr.Op != wire.OpPush || emits[0].Hdr.Flags&wire.FlagBounced == 0 {
		t.Fatalf("bounce emit wrong: %v", emits[0].Hdr)
	}
	// It comes back marked and bounced: now it is buffered.
	m1b := req(wire.OpAcquire, 7, 1, wire.Exclusive)
	m1b.Flags = wire.FlagOverflow | wire.FlagBounced
	wantActions(t, do(t, s, m1b))
	// Subsequent marked requests buffer directly.
	m2 := req(wire.OpAcquire, 7, 2, wire.Exclusive)
	m2.Flags = wire.FlagOverflow
	wantActions(t, do(t, s, m2))
	if _, buf := s.CtrlQueueDepth(7); buf != 2 {
		t.Fatalf("buffered = %d, want 2", buf)
	}
	// The switch drains and advertises 4 free slots: both entries are
	// pushed, the last one final (q2 drained, q1 not full).
	n := req(wire.OpPushNotify, 7, 0, wire.Shared)
	n.LeaseNs = 4
	emits = do(t, s, n)
	wantActions(t, emits, ActPush, ActPush)
	if emits[0].Hdr.TxnID != 1 || emits[1].Hdr.TxnID != 2 {
		t.Fatalf("push order wrong: %v", emits)
	}
	if emits[0].Hdr.Flags&wire.FlagOverflow != 0 {
		t.Fatalf("first push must not be final")
	}
	if emits[1].Hdr.Flags&wire.FlagOverflow == 0 {
		t.Fatalf("last push must be final")
	}
	st := s.Stats()
	if st.Buffered != 2 || st.Pushed != 2 || st.Bounced != 1 || st.OvfClears != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPushNotifyPartialDrain(t *testing.T) {
	s := newServer()
	s.CtrlReleaseOwnership(7)
	for txn := uint64(1); txn <= 3; txn++ {
		m := req(wire.OpAcquire, 7, txn, wire.Exclusive)
		m.Flags = wire.FlagOverflow | wire.FlagBounced
		do(t, s, m)
	}
	// Only 2 free slots: push 2, overflow mode stays.
	n := req(wire.OpPushNotify, 7, 0, wire.Shared)
	n.LeaseNs = 2
	emits := do(t, s, n)
	wantActions(t, emits, ActPush, ActPush)
	for _, e := range emits {
		if e.Hdr.Flags&wire.FlagOverflow != 0 {
			t.Fatalf("partial drain must not clear overflow: %v", e.Hdr)
		}
	}
	if _, buf := s.CtrlQueueDepth(7); buf != 1 {
		t.Fatalf("q2 should retain 1 entry, has %d", buf)
	}
	// Exactly-full push (n == free) must not clear either.
	n2 := req(wire.OpPushNotify, 7, 0, wire.Shared)
	n2.LeaseNs = 1
	emits = do(t, s, n2)
	wantActions(t, emits, ActPush)
	if emits[0].Hdr.Flags&wire.FlagOverflow != 0 {
		t.Fatalf("push filling q1 exactly must not clear overflow")
	}
}

func TestPushNotifyEmptyBufferSendsClear(t *testing.T) {
	s := newServer()
	s.CtrlReleaseOwnership(7)
	// Enter buffering mode then drain it via adoption-free path: buffer
	// one and push it with free=2 (clears). Then a second notify with an
	// empty q2 must emit the pure clear control message.
	m := req(wire.OpAcquire, 7, 1, wire.Exclusive)
	m.Flags = wire.FlagOverflow | wire.FlagBounced
	do(t, s, m)
	n := req(wire.OpPushNotify, 7, 0, wire.Shared)
	n.LeaseNs = 2
	do(t, s, n)
	emits := do(t, s, n)
	wantActions(t, emits, ActPush)
	if emits[0].Hdr.TxnID != wire.TxnNone || emits[0].Hdr.Flags&wire.FlagOverflow == 0 {
		t.Fatalf("expected pure clear message: %v", emits[0].Hdr)
	}
}

func TestPushNotifyForOwnedLockIgnored(t *testing.T) {
	s := newServer()
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	n := req(wire.OpPushNotify, 1, 0, wire.Shared)
	n.LeaseNs = 4
	wantActions(t, do(t, s, n))
}

func TestMarkedRequestForOwnedLockProcessed(t *testing.T) {
	// A stale overflow mark on a request for a lock this server owns again
	// (the packet raced a switch-to-server move) is processed as a normal
	// acquire rather than stranded. The server must already know the lock:
	// on first contact the mark is trusted instead (see
	// TestOverflowFirstContactDoesNotAdoptOwnership).
	s := newServer()
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, s, req(wire.OpRelease, 1, 1, wire.Exclusive))
	m := req(wire.OpAcquire, 1, 2, wire.Exclusive)
	m.Flags = wire.FlagOverflow
	emits := do(t, s, m)
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 2 {
		t.Fatalf("granted %v, want txn 2", emits[0].Hdr)
	}
}

func TestCtrlReleaseOwnershipRequiresDrain(t *testing.T) {
	s := newServer()
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	if err := s.CtrlReleaseOwnership(1); err == nil {
		t.Fatalf("release of non-drained lock should fail")
	}
	do(t, s, req(wire.OpRelease, 1, 1, wire.Exclusive))
	if err := s.CtrlReleaseOwnership(1); err != nil {
		t.Fatal(err)
	}
	if owned := s.CtrlOwnedLocks(); len(owned) != 0 {
		t.Fatalf("owned locks = %v", owned)
	}
}

func TestCtrlAdoptLockProcessesBuffered(t *testing.T) {
	s := newServer()
	s.CtrlReleaseOwnership(7)
	for txn := uint64(1); txn <= 2; txn++ {
		m := req(wire.OpAcquire, 7, txn, wire.Exclusive)
		m.Flags = wire.FlagOverflow | wire.FlagBounced
		do(t, s, m)
	}
	emits := s.CtrlAdoptLock(7)
	// First buffered request is granted; second queues.
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 1 {
		t.Fatalf("adopted grant = %v", emits[0].Hdr)
	}
	if owned, buf := s.CtrlQueueDepth(7); owned != 2 || buf != 0 {
		t.Fatalf("depths after adopt: owned=%d buf=%d", owned, buf)
	}
	// Adopting an owned lock is a no-op.
	if emits := s.CtrlAdoptLock(7); emits != nil {
		t.Fatalf("re-adopt emitted %v", emits)
	}
}

func TestCtrlMeasure(t *testing.T) {
	s := newServer()
	for txn := uint64(1); txn <= 3; txn++ {
		do(t, s, req(wire.OpAcquire, 1, txn, wire.Exclusive))
	}
	loads := s.CtrlMeasure()
	if len(loads) != 1 || loads[0].Requests != 3 || loads[0].MaxConcurrent != 3 || !loads[0].Owned {
		t.Fatalf("loads = %+v", loads)
	}
	// Window reset: requests zeroed, peak re-primed with current depth.
	loads = s.CtrlMeasure()
	if loads[0].Requests != 0 || loads[0].MaxConcurrent != 3 {
		t.Fatalf("second window = %+v", loads)
	}
}

func TestCtrlScanExpired(t *testing.T) {
	now := int64(0)
	s := New(Config{Priorities: 1, DefaultLeaseNs: 100, Now: func() int64 { return now }})
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, s, req(wire.OpAcquire, 1, 2, wire.Exclusive))
	// Holder's lease expires; the waiter is granted by the sweep — and its
	// own lease (stamped at acquire time 0, expiring at 100) is already
	// past at t=150, so the same sweep chains and releases it too. Each
	// forced release is announced with an ActExpired emit.
	emits := s.CtrlScanExpired(150)
	wantActions(t, emits, ActExpired, ActGrant, ActExpired)
	if emits[0].Hdr.TxnID != 1 || emits[1].Hdr.TxnID != 2 || emits[2].Hdr.TxnID != 2 {
		t.Fatalf("sweep emits = %v", emits)
	}
	if s.Stats().ExpiredReleases != 2 {
		t.Fatalf("expired releases = %d, want 2 (chained)", s.Stats().ExpiredReleases)
	}
	if owned, _ := s.CtrlQueueDepth(1); owned != 0 {
		t.Fatalf("queue depth after sweep = %d", owned)
	}
}

func TestCtrlForget(t *testing.T) {
	s := newServer()
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	s.CtrlForget(1)
	if owned, _ := s.CtrlQueueDepth(1); owned != 0 {
		t.Fatalf("state survived forget")
	}
}

func TestRSSCore(t *testing.T) {
	counts := make([]int, 8)
	for id := uint32(0); id < 8000; id++ {
		c := RSSCore(id, 8)
		if c < 0 || c >= 8 {
			t.Fatalf("core %d out of range", c)
		}
		counts[c]++
	}
	for c, n := range counts {
		if n < 500 || n > 1500 {
			t.Fatalf("core %d load %d badly skewed: %v", c, n, counts)
		}
	}
	// Deterministic.
	if RSSCore(42, 8) != RSSCore(42, 8) {
		t.Fatalf("RSS not deterministic")
	}
}

func TestRSSCorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	RSSCore(1, 0)
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	New(Config{Priorities: 0})
}

func TestActionString(t *testing.T) {
	for _, a := range []Action{ActGrant, ActFetch, ActPush} {
		if a.String() == "" {
			t.Fatalf("empty action name")
		}
	}
	if Action(42).String() != "action(42)" {
		t.Fatalf("unknown action string")
	}
}

func TestDuplicateAcquireDedup(t *testing.T) {
	s := New(Config{Priorities: 1})
	// Granted holder: a duplicate acquire re-emits the grant instead of
	// enqueuing a ghost entry (a release dequeues one head per call, so a
	// ghost would desynchronize grants from releases).
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 10, wire.Exclusive)), ActGrant)
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 10, wire.Exclusive)), ActGrant)
	// Waiting entry: a duplicate is dropped silently.
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 11, wire.Exclusive)))
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 11, wire.Exclusive)))
	if got := s.Stats().DupAcquires; got != 2 {
		t.Fatalf("DupAcquires = %d, want 2", got)
	}
	// Exactly one release per real request drains the lock completely.
	wantActions(t, do(t, s, req(wire.OpRelease, 1, 10, wire.Exclusive)), ActGrant)
	wantActions(t, do(t, s, req(wire.OpRelease, 1, 11, wire.Exclusive)))
	if h, _ := s.CtrlQueueDepth(1); h != 0 {
		t.Fatalf("queue should be empty after paired releases: %d", h)
	}
	// Overflow path: a retransmitted marked request must not double-buffer.
	s.CtrlReleaseOwnership(7)
	m := req(wire.OpAcquire, 7, 20, wire.Exclusive)
	m.Flags = wire.FlagOverflow | wire.FlagBounced
	do(t, s, m)
	do(t, s, m)
	if _, buf := s.CtrlQueueDepth(7); buf != 1 {
		t.Fatalf("duplicate overflow mark buffered twice: %d", buf)
	}
}

func TestPriorityBufferingSeparateBanks(t *testing.T) {
	// q2 is per (lock, priority): overflow at one priority must not mix
	// with another's buffer.
	s := New(Config{Priorities: 2})
	s.CtrlReleaseOwnership(7)
	for i, prio := range []uint8{0, 1, 1} {
		m := req(wire.OpAcquire, 7, uint64(i)+1, wire.Exclusive)
		m.Flags = wire.FlagOverflow | wire.FlagBounced
		m.Priority = prio
		do(t, s, m)
	}
	// Notify for priority 1 pushes only that bank's entries.
	n := req(wire.OpPushNotify, 7, 0, wire.Shared)
	n.Priority = 1
	n.LeaseNs = 4
	emits := do(t, s, n)
	wantActions(t, emits, ActPush, ActPush)
	for _, e := range emits {
		if e.Hdr.Priority != 1 {
			t.Fatalf("push crossed priority banks: %v", e.Hdr)
		}
	}
	if _, buf := s.CtrlQueueDepth(7); buf != 1 {
		t.Fatalf("priority-0 buffer should remain: %d", buf)
	}
}

func TestScanExpiredSharedRun(t *testing.T) {
	// An expired shared holder among several: the sweep releases only
	// expired heads and grants what becomes available.
	now := int64(0)
	clock := func() int64 { return now }
	s := New(Config{Priorities: 1, DefaultLeaseNs: 100, Now: clock})
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Shared))
	now = 50
	do(t, s, req(wire.OpAcquire, 1, 2, wire.Shared))
	do(t, s, req(wire.OpAcquire, 1, 3, wire.Exclusive)) // waits
	// At t=120, only txn 1's lease (expiring at 100) is past; txn 2
	// (expiring at 150) still holds, so the exclusive must keep waiting:
	// the sweep announces the forced release and grants nothing.
	emits := s.CtrlScanExpired(120)
	wantActions(t, emits, ActExpired)
	if emits[0].Hdr.TxnID != 1 {
		t.Fatalf("expired the wrong holder: %v", emits)
	}
	// At t=200, txn 2 expires too and the exclusive is granted — and the
	// exclusive's own lease (stamped at its t=50 arrival, expiring at 150)
	// is already past, so the sweep chains and releases it as well.
	emits = s.CtrlScanExpired(200)
	wantActions(t, emits, ActExpired, ActGrant, ActExpired)
	if emits[0].Hdr.TxnID != 2 || emits[1].Hdr.TxnID != 3 || emits[2].Hdr.TxnID != 3 {
		t.Fatalf("exclusive not granted after full expiry: %v", emits)
	}
}

func TestMeasurementSkipsMovedLocks(t *testing.T) {
	s := newServer()
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, s, req(wire.OpRelease, 1, 1, wire.Exclusive))
	s.CtrlReleaseOwnership(1)
	loads := s.CtrlMeasure()
	for _, l := range loads {
		if l.LockID == 1 && l.Owned {
			t.Fatalf("moved lock still reported owned")
		}
	}
}

// TestOverflowFirstContactDoesNotAdoptOwnership is the regression test for a
// failover split-brain the internal/check chaos harness found: a replacement
// server whose first packet for a lock is overflow-marked used to auto-create
// the lock as server-owned and grant it — while the switch still held granted
// requests for it in q1 (duplicate grants, shared/exclusive co-grants). An
// overflow mark is authoritative evidence the switch owns the lock, so first
// contact must leave the lock un-owned: bounce once, then buffer.
func TestOverflowFirstContactDoesNotAdoptOwnership(t *testing.T) {
	s := newServer()
	h := req(wire.OpAcquire, 9, 1, wire.Exclusive)
	h.Flags = wire.FlagOverflow
	emits := do(t, s, h)
	wantActions(t, emits, ActPush) // bounced, never granted
	if emits[0].Hdr.Op != wire.OpPush || emits[0].Hdr.Flags&wire.FlagBounced == 0 {
		t.Fatalf("bounce emit = %+v, want OpPush with FlagBounced", emits[0].Hdr)
	}
	if got := s.CtrlOwnedLocks(); len(got) != 0 {
		t.Fatalf("server adopted ownership of %v from an overflow packet", got)
	}
	// The bounced copy comes back still overflow-marked: buffer it in q2.
	h2 := req(wire.OpAcquire, 9, 1, wire.Exclusive)
	h2.Flags = wire.FlagOverflow | wire.FlagBounced
	wantActions(t, do(t, s, h2)) // no emits: buffered
	if owned, buffered := s.CtrlQueueDepth(9); owned != 0 || buffered != 1 {
		t.Fatalf("queue depth = (owned=%d, buffered=%d), want (0, 1)", owned, buffered)
	}
}
