package lockserver

import (
	"fmt"

	"netlock/internal/obs"
	"netlock/internal/wire"
)

// Control-plane operations: workload measurement for the memory allocator,
// ownership transfer when locks move between switch and servers, and the
// lease sweep.

// LockLoad is one lock's measured workload over the last window.
type LockLoad struct {
	LockID uint32
	// Owned reports whether this server processed the lock (vs. only
	// buffering overflow).
	Owned bool
	// Requests counts acquires processed in the window (owned locks).
	Requests uint64
	// MaxConcurrent is the peak concurrent requests observed (c_i).
	MaxConcurrent uint64
	// BufferedPeak is the peak q2 depth (switch-resident locks): extra
	// contention the switch's own gauge could not see.
	BufferedPeak uint64
}

// CtrlMeasure reads and resets the per-lock workload counters, closing a
// measurement window.
func (s *Server) CtrlMeasure() []LockLoad {
	out := make([]LockLoad, 0, len(s.locks))
	for id, lo := range s.locks {
		out = append(out, LockLoad{
			LockID:        id,
			Owned:         lo.owned,
			Requests:      lo.reqs,
			MaxConcurrent: lo.peak,
			BufferedPeak:  lo.q2peak,
		})
		lo.reqs = 0
		lo.peak = lo.current
		lo.q2peak = 0
	}
	return out
}

// CtrlOwnedLocks returns the IDs of locks this server currently processes.
func (s *Server) CtrlOwnedLocks() []uint32 {
	var out []uint32
	for id, lo := range s.locks {
		if lo.owned {
			out = append(out, id)
		}
	}
	return out
}

// CtrlQueueDepth returns the number of queued (waiting + granted) requests
// for an owned lock, and the buffered q2 depth for a resident lock.
func (s *Server) CtrlQueueDepth(lockID uint32) (owned int, buffered int) {
	lo, ok := s.locks[lockID]
	if !ok {
		return 0, 0
	}
	for b := range lo.queues {
		owned += len(lo.queues[b])
		buffered += len(lo.q2[b])
	}
	return owned, buffered
}

// CtrlReleaseOwnership marks a lock as switch-resident. The lock must be
// drained first (§4.3: NetLock pauses enqueuing and waits until the queue
// is empty when moving a lock).
func (s *Server) CtrlReleaseOwnership(lockID uint32) error {
	lo := s.lock(lockID)
	for b := range lo.queues {
		if len(lo.queues[b]) != 0 {
			return fmt.Errorf("lockserver: lock %d not drained (%d queued at priority %d)",
				lockID, len(lo.queues[b]), b)
		}
	}
	lo.owned = false
	lo.moving = false
	lo.current = 0
	return nil
}

// ErrNotDrained reports that a move is pending: the lock's queues still
// hold granted or waiting requests. Retry after releases drain them.
var ErrNotDrained = fmt.Errorf("lockserver: lock not drained yet")

// CtrlTakeForSwitch implements the paper's move protocol for a hot,
// never-idle lock (§4.3: "NetLock pauses enqueuing new requests of this
// lock and waits until the queue is empty"):
//
//   - the first call marks the lock as moving: new acquires are buffered
//     in q2 instead of being enqueued, so the queue drains as current
//     holders and waiters release;
//   - once the queues are empty, a call completes the move: ownership
//     transfers and the buffered requests are returned as OpPush headers
//     for the caller to deliver to the switch, in arrival order.
//
// Until completion it returns ErrNotDrained; callers retry on the next
// control round.
func (s *Server) CtrlTakeForSwitch(lockID uint32) ([]wire.Header, error) {
	lo := s.lock(lockID)
	if !lo.owned {
		return nil, fmt.Errorf("lockserver: lock %d not owned by this server", lockID)
	}
	lo.moving = true
	for b := range lo.queues {
		if len(lo.queues[b]) != 0 {
			return nil, ErrNotDrained
		}
	}
	lo.owned = false
	lo.moving = false
	lo.current = 0
	var pushes []wire.Header
	for b := range lo.q2 {
		for _, e := range lo.q2[b] {
			p := e.hdr
			p.Op = wire.OpPush
			pushes = append(pushes, p)
		}
		lo.q2[b] = nil
		lo.buffering[b] = false
	}
	return pushes, nil
}

// CtrlAbortMove cancels a pending move: buffered requests are processed as
// normal acquires again (used when the switch-side installation fails).
func (s *Server) CtrlAbortMove(lockID uint32) []Emit {
	s.emits = s.emits[:0]
	lo := s.lock(lockID)
	if !lo.moving {
		return nil
	}
	lo.moving = false
	for b := range lo.q2 {
		pending := lo.q2[b]
		lo.q2[b] = nil
		lo.buffering[b] = false
		for i := range pending {
			h := pending[i].hdr
			s.acquire(&h)
		}
	}
	out := make([]Emit, len(s.emits))
	copy(out, s.emits)
	return out
}

// CtrlAdoptLock marks a lock as server-owned again (moved off the switch,
// or reassigned after a switch failure). Any q2-buffered requests become
// normal queued requests, processed in order; the emitted grants must be
// delivered by the caller.
func (s *Server) CtrlAdoptLock(lockID uint32) []Emit {
	s.emits = s.emits[:0]
	lo := s.lock(lockID)
	if lo.owned {
		return nil
	}
	lo.owned = true
	for b := range lo.q2 {
		pending := lo.q2[b]
		lo.q2[b] = nil
		lo.buffering[b] = false
		for i := range pending {
			h := pending[i].hdr
			s.acquire(&h)
		}
	}
	out := make([]Emit, len(s.emits))
	copy(out, s.emits)
	return out
}

// CtrlForget drops all state for a lock (used when reassigning locks to a
// different server after a failure; clients re-resolve and resubmit).
func (s *Server) CtrlForget(lockID uint32) {
	delete(s.locks, lockID)
}

// CtrlScanExpired sweeps owned locks for granted requests whose lease
// expired before now, releasing them as the failure-handling path (§4.5).
// It returns the emitted grants produced by the forced releases.
func (s *Server) CtrlScanExpired(now int64) []Emit {
	s.emits = s.emits[:0]
	for id, lo := range s.locks {
		if !lo.owned {
			continue
		}
		// Repeatedly release expired heads; a forced release can grant a
		// next request whose lease is itself already expired.
		for swept := true; swept; {
			swept = false
			if lo.held == 0 {
				break
			}
			for b := range lo.queues {
				if len(lo.queues[b]) == 0 {
					continue
				}
				e := lo.queues[b][0]
				// Only granted heads may be force-released: a waiting
				// head's lease was stamped on enqueue, and releasing it
				// would consume a live holder's hold count.
				if e.granted && e.lease != 0 && e.lease < now {
					s.stats.ExpiredReleases++
					if o := s.cfg.Obs; o != nil {
						o.Inc(obs.CtrLeaseExpiries)
						if o.Tracing() {
							o.Trace(obs.TraceEvent{Event: obs.EvLeaseExpiry,
								LockID: id, TxnID: e.hdr.TxnID, Tenant: e.hdr.TenantID})
						}
					}
					rel := wire.Header{
						Op:       wire.OpRelease,
						Mode:     e.hdr.Mode,
						LockID:   id,
						TxnID:    e.hdr.TxnID,
						Priority: uint8(b),
					}
					s.emit(ActExpired, rel)
					s.release(&rel)
					swept = true
					break
				}
			}
		}
	}
	out := make([]Emit, len(s.emits))
	copy(out, s.emits)
	return out
}

// CtrlPending snapshots the header of every request currently queued at
// this server: owned-queue entries (waiting and granted) and
// overflow-buffered q2 entries, across all locks. Verification harnesses
// use it to account precisely for the requests destroyed when a server
// fails — everything in this snapshot dies with the server.
func (s *Server) CtrlPending() []wire.Header {
	var out []wire.Header
	for _, lo := range s.locks {
		for b := range lo.queues {
			for _, e := range lo.queues[b] {
				out = append(out, e.hdr)
			}
			for _, e := range lo.q2[b] {
				out = append(out, e.hdr)
			}
		}
	}
	return out
}

// RSSCore maps a lock ID to one of n receive queues, modeling the NIC's
// Receive Side Scaling dispatch that partitions requests between cores
// (§5). Deterministic so switch, servers and the testbed agree.
func RSSCore(lockID uint32, cores int) int {
	if cores <= 0 {
		panic("lockserver: non-positive core count")
	}
	// Fibonacci hashing spreads adjacent lock IDs across cores.
	return int((uint64(lockID) * 11400714819323198485) >> 32 % uint64(cores))
}
