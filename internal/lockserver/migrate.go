package lockserver

import (
	"fmt"
	"sort"

	"netlock/internal/wire"
)

// Live-migration control operations. A region move transfers a lock's full
// queue state — granted bits included — between this server and the switch
// without draining: the occupied queue is the payload. State is installed
// literally rather than replayed through the grant logic, because grant
// decisions depend on arrival order relative to state that no longer
// exists (replaying a waiter behind a since-released holder would grant it
// out of turn).

// ExportEntry is one migrated request: the original acquire header, the
// absolute lease expiry on the exporter's clock, and whether the request
// holds the lock.
type ExportEntry struct {
	Hdr     wire.Header
	LeaseNs int64
	Granted bool
}

// LockExport is the complete migratable state of one server-owned lock:
// per-priority queues in FIFO order, granted prefix first, plus the
// exporter's clock for lease rebasing.
type LockExport struct {
	LockID uint32
	BaseNs int64
	Banks  [][]ExportEntry
}

// Entries returns the total number of exported requests.
func (e *LockExport) Entries() int {
	n := 0
	for _, b := range e.Banks {
		n += len(b)
	}
	return n
}

// CtrlExportLock atomically snapshots an owned lock's queues and releases
// ownership. Any q2-buffered requests (left by an aborted drain-based move)
// are appended to their bank as waiters, so nothing is lost. After the
// call, requests for the lock are forwarded back to the switch; the caller
// must install the export at the destination promptly (in-flight requests
// ping-pong between switch and server until the new owner is live).
func (s *Server) CtrlExportLock(lockID uint32) (LockExport, error) {
	lo, ok := s.locks[lockID]
	if !ok {
		// Never-contacted locks are implicitly owned by their home server
		// (first contact adopts them): export empty queues.
		return LockExport{LockID: lockID, BaseNs: s.cfg.Now(),
			Banks: make([][]ExportEntry, s.cfg.Priorities)}, nil
	}
	if !lo.owned {
		return LockExport{}, fmt.Errorf("lockserver: lock %d not owned by this server", lockID)
	}
	ex := LockExport{LockID: lockID, BaseNs: s.cfg.Now(), Banks: make([][]ExportEntry, s.cfg.Priorities)}
	for b := range lo.queues {
		bank := make([]ExportEntry, 0, len(lo.queues[b])+len(lo.q2[b]))
		for _, e := range lo.queues[b] {
			bank = append(bank, ExportEntry{Hdr: e.hdr, LeaseNs: e.lease, Granted: e.granted})
		}
		for _, e := range lo.q2[b] {
			bank = append(bank, ExportEntry{Hdr: e.hdr, Granted: false})
		}
		ex.Banks[b] = bank
		lo.queues[b] = nil
		lo.q2[b] = nil
		lo.buffering[b] = false
		lo.excl[b] = 0
		lo.wait[b] = 0
	}
	lo.owned = false
	lo.moving = false
	lo.held = 0
	lo.heldX = false
	lo.current = 0
	return ex, nil
}

// CtrlImportLock makes a lock server-owned with pre-existing queue state:
// entries are installed literally per bank (granted flags preserved,
// counters reconstructed), then any q2-buffered requests that accumulated
// while the lock was switch-resident are replayed as normal acquires in
// arrival order (deduplicated against the imported entries). Lease
// expiries in banks must already be rebased to this server's clock. The
// returned emits (grants produced by the q2 replay) must be delivered by
// the caller.
func (s *Server) CtrlImportLock(lockID uint32, banks [][]ExportEntry) ([]Emit, error) {
	if len(banks) > s.cfg.Priorities {
		return nil, fmt.Errorf("lockserver: import of %d banks into %d priorities", len(banks), s.cfg.Priorities)
	}
	s.emits = s.emits[:0]
	lo := s.lock(lockID)
	if lo.owned {
		for b := range lo.queues {
			if len(lo.queues[b]) != 0 {
				return nil, fmt.Errorf("lockserver: lock %d already owned with queued state", lockID)
			}
		}
	}
	lo.owned = true
	lo.moving = false
	lo.held = 0
	lo.heldX = false
	lo.current = 0
	for b := range lo.queues {
		lo.queues[b] = nil
		lo.excl[b] = 0
		lo.wait[b] = 0
	}
	for b, bank := range banks {
		for _, e := range bank {
			ent := entry{hdr: e.Hdr, lease: e.LeaseNs, granted: e.Granted}
			lo.queues[b] = append(lo.queues[b], ent)
			if e.Hdr.Mode == wire.Exclusive {
				lo.excl[b]++
			}
			if e.Granted {
				lo.held++
				if e.Hdr.Mode == wire.Exclusive {
					lo.heldX = true
				}
			} else {
				lo.wait[b]++
			}
			lo.current++
		}
	}
	if lo.current > lo.peak {
		lo.peak = lo.current
	}
	// Requests that arrived overflow-marked while the lock lived in the
	// switch are later arrivals than every imported entry: replay them in
	// order. dedup() drops any overlap with the imported queues (a request
	// both exported by the switch and still sitting in q2).
	for b := range lo.q2 {
		pending := lo.q2[b]
		lo.q2[b] = nil
		lo.buffering[b] = false
		for i := range pending {
			h := pending[i].hdr
			s.acquire(&h)
		}
	}
	out := make([]Emit, len(s.emits))
	copy(out, s.emits)
	return out, nil
}

// CtrlExportOverflow removes and returns the q2-buffered requests of a
// switch-resident (non-owned) lock, per bank in arrival order. A server
// drain moves this residue to the drain target so the switch's next
// push-notify finds the buffered requests at the server it now routes to;
// leaving them behind would strand them when routing flips.
func (s *Server) CtrlExportOverflow(lockID uint32) [][]wire.Header {
	lo, ok := s.locks[lockID]
	if !ok || lo.owned {
		return nil
	}
	out := make([][]wire.Header, s.cfg.Priorities)
	any := false
	for b := range lo.q2 {
		for _, e := range lo.q2[b] {
			out[b] = append(out[b], e.hdr)
			any = true
		}
		lo.q2[b] = nil
		lo.buffering[b] = false
	}
	if !any {
		return nil
	}
	return out
}

// CtrlImportOverflow appends migrated q2 requests for a switch-resident
// lock, deduplicating against anything already buffered here (a request
// can race its own migration via the overflow path).
func (s *Server) CtrlImportOverflow(lockID uint32, banks [][]wire.Header) {
	if banks == nil {
		return
	}
	_, existed := s.locks[lockID]
	lo := s.lock(lockID)
	if !existed {
		// First contact via a migration: the lock is switch-resident, so
		// the fresh lockObj must not default to server-owned.
		lo.owned = false
	}
	for b := range banks {
		if b >= s.cfg.Priorities {
			break
		}
		for i := range banks[b] {
			if found, _ := lo.findTxn(banks[b][i].TxnID); found {
				s.stats.DupAcquires++
				continue
			}
			lo.q2[b] = append(lo.q2[b], entry{hdr: banks[b][i]})
			lo.buffering[b] = true
		}
	}
}

// CtrlPrepareImport stakes out a non-owned lock object ahead of a migration
// toward this server. A request racing the move then bounces back to the
// switch (ActPush) instead of hitting the first-contact-adopts default and
// making this server the owner while the exported state is still in flight
// — a split brain that would double-grant. No-op if the lock is known.
func (s *Server) CtrlPrepareImport(lockID uint32) {
	if _, ok := s.locks[lockID]; !ok {
		lo := s.lock(lockID)
		lo.owned = false
	}
}

// CtrlNow returns the server's data-plane clock, for lease rebasing when
// state migrates between nodes with independent clocks.
func (s *Server) CtrlNow() int64 { return s.cfg.Now() }

// CtrlOwns reports whether the server currently owns the lock.
func (s *Server) CtrlOwns(lockID uint32) bool {
	lo, ok := s.locks[lockID]
	return ok && lo.owned
}

// CtrlOverflowLocks returns the IDs of switch-resident locks for which this
// server holds q2-buffered overflow requests, ascending. A server drain
// moves this residue to the drain target alongside the owned locks.
func (s *Server) CtrlOverflowLocks() []uint32 {
	var out []uint32
	for id, lo := range s.locks {
		if lo.owned {
			continue
		}
		for b := range lo.q2 {
			if len(lo.q2[b]) != 0 {
				out = append(out, id)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CtrlSetDraining switches the server in or out of draining mode. A
// draining server is being emptied by the rebalancer: it keeps processing
// the locks it still owns, but a request for a lock it does not own is
// rejected with OpReject+FlagMoved — a "moved" redirect the client retries
// immediately through the switch — instead of adopting the lock or
// ping-ponging it. This keeps a drained server from ever becoming the
// default owner of new state while routing flips over.
func (s *Server) CtrlSetDraining(on bool) { s.draining = on }

// CtrlDraining reports whether the server is in draining mode.
func (s *Server) CtrlDraining() bool { return s.draining }
