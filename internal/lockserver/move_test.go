package lockserver

import (
	"errors"
	"testing"

	"netlock/internal/wire"
)

// Tests for the pause-and-move protocol (§4.3: "NetLock pauses enqueuing
// new requests of this lock and waits until the queue is empty").

func TestTakeForSwitchImmediateWhenDrained(t *testing.T) {
	s := newServer()
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, s, req(wire.OpRelease, 1, 1, wire.Exclusive))
	pushes, err := s.CtrlTakeForSwitch(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pushes) != 0 {
		t.Fatalf("drained lock should move with no buffered pushes: %v", pushes)
	}
	// Ownership transferred: subsequent requests are forwarded back.
	emits := do(t, s, req(wire.OpAcquire, 1, 2, wire.Exclusive))
	wantActions(t, emits, ActPush)
}

func TestTakeForSwitchPausesAndDrains(t *testing.T) {
	s := newServer()
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, s, req(wire.OpAcquire, 1, 2, wire.Exclusive)) // waits
	// Busy lock: the first call marks it moving.
	if _, err := s.CtrlTakeForSwitch(1); !errors.Is(err, ErrNotDrained) {
		t.Fatalf("err = %v, want ErrNotDrained", err)
	}
	// New acquires are now paused into the buffer, not enqueued.
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 3, wire.Shared)))
	if owned, buffered := s.CtrlQueueDepth(1); owned != 2 || buffered != 1 {
		t.Fatalf("depths = owned %d buffered %d, want 2/1", owned, buffered)
	}
	// Releases drain the queue; the waiting request is granted normally.
	emits := do(t, s, req(wire.OpRelease, 1, 1, wire.Exclusive))
	wantActions(t, emits, ActGrant)
	if _, err := s.CtrlTakeForSwitch(1); !errors.Is(err, ErrNotDrained) {
		t.Fatalf("still one holder: want ErrNotDrained")
	}
	do(t, s, req(wire.OpRelease, 1, 2, wire.Exclusive))
	// Drained: the move completes and buffered requests come out as
	// pushes in arrival order.
	pushes, err := s.CtrlTakeForSwitch(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pushes) != 1 || pushes[0].Op != wire.OpPush || pushes[0].TxnID != 3 {
		t.Fatalf("pushes = %v", pushes)
	}
	if pushes[0].Mode != wire.Shared {
		t.Fatalf("push lost the request mode")
	}
}

func TestTakeForSwitchPreservesBufferOrder(t *testing.T) {
	s := newServer()
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	s.CtrlTakeForSwitch(1) // moving
	for txn := uint64(10); txn < 15; txn++ {
		do(t, s, req(wire.OpAcquire, 1, txn, wire.Exclusive))
	}
	do(t, s, req(wire.OpRelease, 1, 1, wire.Exclusive))
	pushes, err := s.CtrlTakeForSwitch(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pushes) != 5 {
		t.Fatalf("pushes = %d, want 5", len(pushes))
	}
	for i, p := range pushes {
		if p.TxnID != uint64(10+i) {
			t.Fatalf("push order violated: %v", pushes)
		}
	}
}

func TestTakeForSwitchNotOwned(t *testing.T) {
	s := newServer()
	s.CtrlReleaseOwnership(1)
	if _, err := s.CtrlTakeForSwitch(1); err == nil {
		t.Fatalf("taking a non-owned lock should fail")
	}
}

func TestAbortMoveResumesProcessing(t *testing.T) {
	s := newServer()
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	s.CtrlTakeForSwitch(1) // moving
	do(t, s, req(wire.OpAcquire, 1, 2, wire.Exclusive))
	do(t, s, req(wire.OpAcquire, 1, 3, wire.Exclusive))
	// Abort: buffered requests are processed as normal acquires, in order.
	emits := s.CtrlAbortMove(1)
	// Lock still held by txn 1, so both buffered requests queue silently.
	if len(emits) != 0 {
		t.Fatalf("emits = %v", emits)
	}
	if owned, buffered := s.CtrlQueueDepth(1); owned != 3 || buffered != 0 {
		t.Fatalf("depths after abort = %d/%d, want 3/0", owned, buffered)
	}
	// Releasing grants them FIFO.
	e := do(t, s, req(wire.OpRelease, 1, 1, wire.Exclusive))
	wantActions(t, e, ActGrant)
	if e[0].Hdr.TxnID != 2 {
		t.Fatalf("FIFO violated after abort: %v", e[0].Hdr)
	}
	// Abort when not moving is a no-op.
	if got := s.CtrlAbortMove(1); got != nil {
		t.Fatalf("abort of non-moving lock should be nil, got %v", got)
	}
}

func TestAbortMoveGrantsWhenFree(t *testing.T) {
	s := newServer()
	do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	s.CtrlTakeForSwitch(1)
	do(t, s, req(wire.OpAcquire, 1, 2, wire.Exclusive)) // buffered
	do(t, s, req(wire.OpRelease, 1, 1, wire.Exclusive)) // drains
	emits := s.CtrlAbortMove(1)
	// The buffered request is granted immediately on abort: the lock is free.
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 2 {
		t.Fatalf("grant = %v", emits[0].Hdr)
	}
}
