package lockserver

import (
	"testing"

	"netlock/internal/wire"
)

// Server-to-server migration: export from one server, import into another,
// and verify the importer continues exactly where the exporter stopped —
// no re-granting of waiters, correct grant order as holders release.
func TestServerExportImportPreservesQueueState(t *testing.T) {
	src := newServer()
	wantActions(t, do(t, src, req(wire.OpAcquire, 1, 1, wire.Exclusive)), ActGrant)
	wantActions(t, do(t, src, req(wire.OpAcquire, 1, 2, wire.Shared)))
	wantActions(t, do(t, src, req(wire.OpAcquire, 1, 3, wire.Shared)))
	wantActions(t, do(t, src, req(wire.OpAcquire, 1, 4, wire.Exclusive)))

	ex, err := src.CtrlExportLock(1)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if ex.Entries() != 4 {
		t.Fatalf("exported %d entries, want 4", ex.Entries())
	}
	// The exporter no longer owns the lock: requests bounce to the switch.
	wantActions(t, do(t, src, req(wire.OpAcquire, 1, 5, wire.Shared)), ActPush)

	dst := newServer()
	emits, err := dst.CtrlImportLock(1, ex.Banks)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if len(emits) != 0 {
		t.Fatalf("import with empty q2 emitted %v", emits)
	}
	// Still held exclusively: shared arrival waits.
	wantActions(t, do(t, dst, req(wire.OpAcquire, 1, 6, wire.Shared)))
	// Releasing the migrated holder grants the migrated shared run plus
	// the post-import arrival — but not the exclusive behind them.
	emits = do(t, dst, req(wire.OpRelease, 1, 1, wire.Exclusive))
	wantActions(t, emits, ActGrant, ActGrant)
	if emits[0].Hdr.TxnID != 2 || emits[1].Hdr.TxnID != 3 {
		t.Fatalf("run grants = %v, %v", emits[0].Hdr, emits[1].Hdr)
	}
	do(t, dst, req(wire.OpRelease, 1, 2, wire.Shared))
	emits = do(t, dst, req(wire.OpRelease, 1, 3, wire.Shared))
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 4 {
		t.Fatalf("exclusive grant = %v", emits[0].Hdr)
	}
	emits = do(t, dst, req(wire.OpRelease, 1, 4, wire.Exclusive))
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 6 {
		t.Fatalf("tail grant = %v", emits[0].Hdr)
	}
}

// A duplicate of an already-imported request (a retransmit that raced the
// move) must not enqueue a ghost entry, and a granted duplicate re-emits
// its grant.
func TestImportThenDuplicateAcquire(t *testing.T) {
	src := newServer()
	do(t, src, req(wire.OpAcquire, 1, 1, wire.Exclusive))
	do(t, src, req(wire.OpAcquire, 1, 2, wire.Shared))
	ex, err := src.CtrlExportLock(1)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	dst := newServer()
	if _, err := dst.CtrlImportLock(1, ex.Banks); err != nil {
		t.Fatalf("import: %v", err)
	}
	wantActions(t, do(t, dst, req(wire.OpAcquire, 1, 1, wire.Exclusive)), ActGrant) // granted dup re-grants
	wantActions(t, do(t, dst, req(wire.OpAcquire, 1, 2, wire.Shared)))              // waiting dup drops
	if st := dst.Stats(); st.DupAcquires != 2 {
		t.Fatalf("DupAcquires = %d, want 2", st.DupAcquires)
	}
	// The release protocol stays aligned: exactly one grant for txn 2.
	emits := do(t, dst, req(wire.OpRelease, 1, 1, wire.Exclusive))
	wantActions(t, emits, ActGrant)
	if emits[0].Hdr.TxnID != 2 {
		t.Fatalf("grant = %v", emits[0].Hdr)
	}
}

// Overflow-buffered requests (q2) that accumulated while the lock was
// switch-resident replay after the imported queue, in order, deduplicated.
func TestImportReplaysBufferedOverflow(t *testing.T) {
	// Demotion scenario: the destination server was buffering overflow for
	// the switch-resident lock; the switch's exported state then arrives.
	dst := newServer()
	ovf := req(wire.OpAcquire, 1, 10, wire.Shared)
	ovf.Flags = wire.FlagOverflow | wire.FlagBounced
	wantActions(t, do(t, dst, ovf)) // buffered in q2
	// txn 2 is both in the switch export AND still in q2 (raced its own
	// migration): the replay must drop it.
	ovf2 := req(wire.OpAcquire, 1, 2, wire.Shared)
	ovf2.Flags = wire.FlagOverflow | wire.FlagBounced
	wantActions(t, do(t, dst, ovf2))

	src := newServer()
	do(t, src, req(wire.OpAcquire, 1, 1, wire.Shared)) // granted
	do(t, src, req(wire.OpAcquire, 1, 2, wire.Shared)) // granted (shared run)
	ex, err := src.CtrlExportLock(1)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	emits, err := dst.CtrlImportLock(1, ex.Banks)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	// The q2 replay grants txn 10 (shared joins the shared holders); the
	// duplicate txn 2 is answered with a re-grant (idempotent: the entry
	// already exists as granted) rather than enqueued a second time.
	wantActions(t, emits, ActGrant, ActGrant)
	if emits[0].Hdr.TxnID != 10 || emits[1].Hdr.TxnID != 2 {
		t.Fatalf("replay grants = %v, %v", emits[0].Hdr, emits[1].Hdr)
	}
	if st := dst.Stats(); st.DupAcquires != 1 {
		t.Fatalf("DupAcquires = %d, want 1", st.DupAcquires)
	}
	// No ghost entry: releasing 1, 2 and 10 fully drains the lock.
	do(t, dst, req(wire.OpRelease, 1, 1, wire.Shared))
	do(t, dst, req(wire.OpRelease, 1, 2, wire.Shared))
	do(t, dst, req(wire.OpRelease, 1, 10, wire.Shared))
	if owned, buffered := dst.CtrlQueueDepth(1); owned != 0 || buffered != 0 {
		t.Fatalf("residual queue depth (%d, %d)", owned, buffered)
	}
}

// Draining mode: requests for locks the server does not own come back as
// moved redirects; owned locks keep working until they are exported.
func TestDrainingRejectsWithMoved(t *testing.T) {
	s := newServer()
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 1, wire.Exclusive)), ActGrant)
	s.CtrlSetDraining(true)
	// Owned lock: still served.
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 2, wire.Shared)))
	// Unknown lock: moved reject, and no lockObj is adopted.
	emits := do(t, s, req(wire.OpAcquire, 2, 3, wire.Shared))
	wantActions(t, emits, ActReject)
	if emits[0].Hdr.Op != wire.OpReject || emits[0].Hdr.Flags&wire.FlagMoved == 0 {
		t.Fatalf("reject = %v, want OpReject+FlagMoved", emits[0].Hdr)
	}
	if _, ok := s.locks[2]; ok {
		t.Fatalf("draining server adopted lock 2")
	}
	// Overflow-marked requests are also redirected, not buffered.
	ovf := req(wire.OpAcquire, 3, 4, wire.Shared)
	ovf.Flags = wire.FlagOverflow
	emits = do(t, s, ovf)
	wantActions(t, emits, ActReject)
	if emits[0].Hdr.Flags&wire.FlagMoved == 0 {
		t.Fatalf("overflow reject lacks FlagMoved: %v", emits[0].Hdr)
	}
	if s.Stats().MovedRejects != 2 {
		t.Fatalf("MovedRejects = %d, want 2", s.Stats().MovedRejects)
	}
	// After exporting the owned lock, its requests are redirected too.
	if _, err := s.CtrlExportLock(1); err != nil {
		t.Fatalf("export: %v", err)
	}
	wantActions(t, do(t, s, req(wire.OpAcquire, 1, 5, wire.Shared)), ActReject)
}

// Drain residue: q2 of a switch-resident lock moves to the drain target
// and push-notify finds it there.
func TestOverflowExportImport(t *testing.T) {
	old := newServer()
	ovf := req(wire.OpAcquire, 1, 1, wire.Shared)
	ovf.Flags = wire.FlagOverflow | wire.FlagBounced
	do(t, old, ovf)
	banks := old.CtrlExportOverflow(1)
	if banks == nil {
		t.Fatalf("no overflow exported")
	}
	if again := old.CtrlExportOverflow(1); again != nil {
		t.Fatalf("second export returned state: %v", again)
	}
	tgt := newServer()
	tgt.CtrlImportOverflow(1, banks)
	// Push-notify on the target pushes the migrated entry.
	notify := req(wire.OpPushNotify, 1, 0, wire.Shared)
	notify.LeaseNs = 4 // free slots
	emits := do(t, tgt, notify)
	wantActions(t, emits, ActPush)
	if emits[0].Hdr.TxnID != 1 {
		t.Fatalf("pushed = %v", emits[0].Hdr)
	}
}
