// Package lockserver implements the NetLock lock server (paper §3.2, §4.3,
// §5): the server-side half of the switch-server co-design.
//
// A lock server plays two roles:
//
//  1. For locks *not* resident in the switch ("unpopular" locks), it is a
//     full centralized lock manager: it queues, grants and releases
//     shared/exclusive requests with the same FCFS-plus-priorities
//     semantics as the switch data plane, so clients cannot tell where a
//     lock lives.
//
//  2. For switch-resident locks whose switch queue (q1) overflowed, it
//     buffers — without processing — the overflow-marked requests in a
//     per-(lock, priority) queue q2, and pushes them back into q1 when the
//     switch signals that q1 drained (OpPushNotify). Requests are granted
//     and dequeued only by q1; requests are appended only to q2 while
//     overflow mode lasts, preserving single-queue FIFO order (§4.3).
//
// The clear-overflow race: the paper does not specify what happens when a
// marked request is in flight from the switch while the server's final push
// (which clears the switch's overflow bit) is in flight the other way. This
// implementation closes it: a marked request arriving while the server is
// not buffering is bounced back to the switch as an OpPush. If the switch
// has space, the request is enqueued (bounded order skew within the race
// window); if the switch queue is full, the request comes back
// overflow-marked and is buffered, and the next q1 drain will push it.
//
// The server is deliberately free of artificial capacity limits — servers
// have plenty of DRAM and are CPU-bound (§4.3); the testbed models the CPU
// with per-core service rates.
package lockserver

import (
	"fmt"

	"netlock/internal/obs"
	"netlock/internal/wire"
)

// Action classifies a packet emitted by the server.
type Action uint8

const (
	// ActGrant sends a grant notification to the client.
	ActGrant Action = iota + 1
	// ActFetch forwards a grant to the database server (one-RTT mode).
	ActFetch
	// ActExpired reports a holder force-released by the lease sweep
	// (CtrlScanExpired). Routers ignore it; verification harnesses consume
	// it to keep their holder accounting aligned with the server's.
	ActExpired
	// ActPush sends a buffered request (or a clear-overflow control
	// message) to the switch. It is also used to forward requests that
	// arrived for a lock this server no longer owns — packets that were in
	// flight while the lock moved into the switch — back to the switch,
	// which now owns them.
	ActPush
	// ActReject bounces a request to the client: the server's bounded
	// buffer (Config.MaxBuffer) is full. The wire header carries OpReject
	// with FlagOverflow to distinguish it from a quota reject.
	ActReject
)

var actionNames = map[Action]string{
	ActGrant: "grant", ActFetch: "fetch", ActExpired: "expired",
	ActPush: "push", ActReject: "reject",
}

// String returns the action name.
func (a Action) String() string {
	if s, ok := actionNames[a]; ok {
		return s
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Emit is one packet produced while processing an input packet.
type Emit struct {
	Action Action
	Hdr    wire.Header
}

// Config parameterizes a lock server.
type Config struct {
	// Priorities must match the switch's priority bank count.
	Priorities int
	// DefaultLeaseNs stamps grants without an explicit lease request.
	// Zero disables lease stamping.
	DefaultLeaseNs int64
	// Now supplies time for leases; defaults to constant zero.
	Now func() int64
	// MaxBuffer, when positive, bounds each per-(lock, priority) queue and
	// overflow buffer (q2). A request arriving at a full buffer is rejected
	// back to the client (ActReject, OpReject+FlagOverflow) instead of
	// queued. Zero keeps the paper's DRAM-is-plentiful default: unbounded.
	MaxBuffer int
	// Obs, when non-nil, receives the server's grant counters and
	// queue-wait latency samples.
	Obs *obs.Stripe
}

// entry is one queued request: the original acquire header plus its stamped
// lease expiry, whether it has been granted, and its arrival time (for the
// queue-wait measurement; stamped only when Obs is enabled).
type entry struct {
	hdr     wire.Header
	lease   int64
	arrived int64
	granted bool
}

// lockObj is the server-side state of one lock.
type lockObj struct {
	// owned is true when this server processes the lock (the lock is not
	// switch-resident); false when the server only buffers overflow.
	owned bool
	// moving is true while a move to the switch is draining this lock's
	// queues (§4.3): new acquires are buffered in q2 until the move
	// completes.
	moving bool
	// queues hold waiting-and-granted requests per priority; the granted
	// requests form a prefix of each queue, exactly as in the switch.
	queues [][]entry
	excl   []int // exclusive entries per priority queue
	wait   []int // waiting (never-granted) entries per priority queue
	held   int
	heldX  bool
	// q2 buffers overflow-marked requests per priority (switch-resident
	// locks only).
	q2        [][]entry
	buffering []bool
	// measurement
	reqs    uint64
	peak    uint64
	q2peak  uint64
	current uint64 // current concurrent requests (owned locks)
}

// Server is one NetLock lock server. It is not safe for concurrent use; the
// testbed is single-threaded and internal/transport serializes calls.
type Server struct {
	cfg   Config
	locks map[uint32]*lockObj
	emits []Emit
	stats Stats
	// draining marks a server being emptied by the rebalancer: requests for
	// locks it does not own are rejected with OpReject+FlagMoved instead of
	// adopted or buffered (see CtrlSetDraining).
	draining bool
}

// Stats counts server activity for the experiment breakdowns.
type Stats struct {
	Acquires        uint64
	Releases        uint64
	GrantsImmediate uint64
	GrantsQueued    uint64
	Queued          uint64
	Buffered        uint64 // overflow-marked requests appended to q2
	Bounced         uint64 // marked requests bounced back as pushes
	Pushed          uint64 // q2 entries pushed to the switch
	OvfClears       uint64
	ExpiredReleases uint64
	Rejected        uint64 // requests bounced off a full bounded buffer
	// ForwardedToSwitch counts requests that arrived for locks this server
	// no longer owns (in flight across a migration) and were sent back.
	ForwardedToSwitch uint64
	// DupAcquires counts acquires whose txn ID was already queued or
	// granted for the same lock: retransmits (or chain-replication
	// re-forwards across an epoch change) answered without enqueuing a
	// ghost entry. The release protocol dequeues a queue head per release,
	// so a duplicate entry would desynchronize grants from releases.
	DupAcquires uint64
	// DupReleases counts txn-stamped releases that matched no granted
	// entry: retransmits (or chain re-forwards) of a release that was
	// already applied. The switch re-forwards a release for as long as
	// its dedup entry is alive, so duplicates are expected no-ops.
	DupReleases uint64
	// MovedRejects counts requests rejected with FlagMoved because this
	// server is draining and does not own the lock: the client re-resolves
	// through the switch and retries.
	MovedRejects uint64
}

// New creates a lock server.
func New(cfg Config) *Server {
	if cfg.Priorities <= 0 || cfg.Priorities > 8 {
		panic("lockserver: Priorities must be in [1,8]")
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return 0 }
	}
	return &Server{cfg: cfg, locks: make(map[uint32]*lockObj)}
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats { return s.stats }

// Config returns the server configuration.
func (s *Server) Config() Config { return s.cfg }

func (s *Server) lock(id uint32) *lockObj {
	lo, ok := s.locks[id]
	if !ok {
		lo = &lockObj{
			owned:     true, // new locks start server-owned (§4.3)
			queues:    make([][]entry, s.cfg.Priorities),
			excl:      make([]int, s.cfg.Priorities),
			wait:      make([]int, s.cfg.Priorities),
			q2:        make([][]entry, s.cfg.Priorities),
			buffering: make([]bool, s.cfg.Priorities),
		}
		s.locks[id] = lo
	}
	return lo
}

func (s *Server) bankFor(p uint8) int {
	if int(p) >= s.cfg.Priorities {
		return s.cfg.Priorities - 1
	}
	return int(p)
}

func (s *Server) emit(a Action, h wire.Header) {
	s.emits = append(s.emits, Emit{Action: a, Hdr: h})
}

// rejectMoved bounces a request with the "moved" redirect: this server is
// draining and does not (or must not come to) own the lock. The client
// retries immediately through the switch rather than backing off.
func (s *Server) rejectMoved(h *wire.Header) {
	s.stats.MovedRejects++
	r := *h
	r.Op = wire.OpReject
	r.Flags &^= wire.FlagOverflow | wire.FlagBounced
	r.Flags |= wire.FlagMoved
	s.emit(ActReject, r)
}

// reject bounces a request off a full bounded buffer (Config.MaxBuffer).
func (s *Server) reject(h *wire.Header) {
	s.stats.Rejected++
	if o := s.cfg.Obs; o != nil {
		o.Inc(obs.CtrRejects)
	}
	r := *h
	r.Op = wire.OpReject
	r.Flags |= wire.FlagOverflow
	s.emit(ActReject, r)
}

// ProcessPacket handles one NetLock packet addressed to this server and
// returns the emitted packets. The returned slice is valid until the next
// call.
func (s *Server) ProcessPacket(h *wire.Header) []Emit {
	s.emits = s.emits[:0]
	switch h.Op {
	case wire.OpAcquire:
		if h.Flags&wire.FlagOverflow != 0 {
			s.bufferOverflow(h)
		} else {
			s.acquire(h)
		}
	case wire.OpRelease:
		s.release(h)
	case wire.OpPushNotify:
		s.pushNotify(h)
	}
	return s.emits
}

// findTxn scans the lock's queues and overflow buffer for an entry carrying
// txn and reports whether it exists and whether it is currently granted.
func (lo *lockObj) findTxn(txn uint64) (found, granted bool) {
	if txn == wire.TxnNone {
		return false, false
	}
	for b := range lo.queues {
		for i := range lo.queues[b] {
			if lo.queues[b][i].hdr.TxnID == txn {
				return true, lo.queues[b][i].granted
			}
		}
		for i := range lo.q2[b] {
			if lo.q2[b][i].hdr.TxnID == txn {
				return true, false
			}
		}
	}
	return false, false
}

// dedup answers a duplicate acquire: a granted duplicate re-emits the grant
// (the original may have been lost with a failed chain tail); a waiting
// duplicate is dropped. Returns true when h was a duplicate.
func (s *Server) dedup(lo *lockObj, h *wire.Header) bool {
	found, granted := lo.findTxn(h.TxnID)
	if !found {
		return false
	}
	s.stats.DupAcquires++
	if granted {
		lease := h.LeaseNs
		if lease == 0 && s.cfg.DefaultLeaseNs != 0 {
			lease = s.cfg.Now() + s.cfg.DefaultLeaseNs
		} else if lease != 0 {
			lease = s.cfg.Now() + lease
		}
		s.emitGrant(*h, lease)
	}
	return true
}

// acquire processes a request for a server-owned lock. Requests for locks
// that moved to the switch while this packet was in flight are forwarded
// back to the switch; exactly one party owns a lock at any instant, so the
// forwarding converges.
func (s *Server) acquire(h *wire.Header) {
	s.stats.Acquires++
	if s.draining {
		if lo, ok := s.locks[h.LockID]; !ok || !lo.owned {
			s.rejectMoved(h)
			return
		}
	}
	lo := s.lock(h.LockID)
	if !lo.owned {
		s.stats.ForwardedToSwitch++
		s.emit(ActPush, *h)
		return
	}
	if s.dedup(lo, h) {
		return
	}
	if lo.moving {
		// Move in progress: pause enqueuing (§4.3). The request is
		// buffered and pushed to the switch when the move completes.
		b := s.bankFor(h.Priority)
		if s.cfg.MaxBuffer > 0 && len(lo.q2[b]) >= s.cfg.MaxBuffer {
			s.reject(h)
			return
		}
		e := *h
		lo.q2[b] = append(lo.q2[b], entry{hdr: e})
		s.stats.Buffered++
		return
	}
	b := s.bankFor(h.Priority)
	if s.cfg.MaxBuffer > 0 && len(lo.queues[b]) >= s.cfg.MaxBuffer {
		s.reject(h)
		return
	}
	lo.reqs++
	lo.current++
	if lo.current > lo.peak {
		lo.peak = lo.current
	}
	lease := h.LeaseNs
	if lease == 0 && s.cfg.DefaultLeaseNs != 0 {
		lease = s.cfg.Now() + s.cfg.DefaultLeaseNs
	} else if lease != 0 {
		lease = s.cfg.Now() + lease
	}
	excl := h.Mode == wire.Exclusive
	// Grant rule, identical to the switch data plane: grant if the lock is
	// free, or if the request is shared, no exclusive request holds the
	// lock or waits at the same or higher priority, and its own queue holds
	// no waiting entry (grants stay a FIFO prefix of each queue, so the
	// head-dequeue release protocol stays aligned with the granted set).
	nexclHigher := 0
	for hb := 0; hb <= b; hb++ {
		nexclHigher += lo.excl[hb]
	}
	granted := lo.held == 0 || (!lo.heldX && !excl && nexclHigher == 0 && lo.wait[b] == 0)
	ent := entry{hdr: *h, lease: lease, granted: granted}
	if !granted && s.cfg.Obs.Enabled() {
		ent.arrived = s.cfg.Now()
	}
	lo.queues[b] = append(lo.queues[b], ent)
	if excl {
		lo.excl[b]++
	}
	if granted {
		lo.held++
		lo.heldX = excl
		s.stats.GrantsImmediate++
		s.emitGrant(*h, lease)
	} else {
		lo.wait[b]++
		s.stats.Queued++
	}
}

// emitGrant produces the grant (or one-RTT fetch) for a request header.
func (s *Server) emitGrant(h wire.Header, lease int64) {
	if o := s.cfg.Obs; o != nil {
		o.Inc(obs.CtrGrants)
		o.TenantGrant(h.TenantID)
		if o.Tracing() {
			o.Trace(obs.TraceEvent{Event: obs.EvGrant, LockID: h.LockID,
				TxnID: h.TxnID, Tenant: h.TenantID})
		}
	}
	h.LeaseNs = lease
	if h.Flags&wire.FlagOneRTT != 0 {
		h.Op = wire.OpFetch
		s.emit(ActFetch, h)
		return
	}
	h.Op = wire.OpGrant
	s.emit(ActGrant, h)
}

// release processes a release for a server-owned lock: dequeue the
// releasing entry from the request's priority queue and grant followers,
// mirroring Algorithm 2. Txn-stamped releases match their own entry, so a
// retransmitted (or chain re-forwarded) release is a counted no-op rather
// than dequeuing a different holder; TxnNone releases keep the paper's
// blind head-dequeue.
func (s *Server) release(h *wire.Header) {
	s.stats.Releases++
	lo, ok := s.locks[h.LockID]
	if !ok {
		return // never-seen lock: spurious release
	}
	if !lo.owned {
		// In flight across a move: the switch owns the lock now.
		s.stats.ForwardedToSwitch++
		s.emit(ActPush, *h)
		return
	}
	b := s.bankFor(h.Priority)
	q := lo.queues[b]
	if len(q) == 0 {
		if h.TxnID != wire.TxnNone {
			s.stats.DupReleases++
		}
		return
	}
	// Grants form a FIFO prefix of each queue, so a matched granted entry
	// is always within the prefix and removing it preserves the ordering.
	i := 0
	if h.TxnID != wire.TxnNone {
		i = -1
		for j := range q {
			if q[j].hdr.TxnID == h.TxnID {
				i = j
				break
			}
		}
		if i < 0 || !q[i].granted {
			s.stats.DupReleases++
			return
		}
	}
	released := q[i]
	lo.queues[b] = append(q[:i], q[i+1:]...)
	if released.hdr.Mode == wire.Exclusive {
		lo.excl[b]--
	}
	if !released.granted {
		// Should be unreachable: grants form a FIFO prefix of each queue,
		// so a release always dequeues a granted head. Keep the counter
		// consistent regardless.
		lo.wait[b]--
	}
	if lo.held > 0 {
		lo.held--
	}
	if lo.current > 0 {
		lo.current--
	}
	if lo.held > 0 {
		return // shared holders remain (Figure 6, shared -> shared)
	}
	lo.heldX = false
	// Lock free: grant the head of the highest-priority non-empty queue,
	// and the following run of shared requests if the head is shared.
	for gb := 0; gb < s.cfg.Priorities; gb++ {
		gq := lo.queues[gb]
		if len(gq) == 0 {
			continue
		}
		if gq[0].hdr.Mode == wire.Exclusive {
			lo.held = 1
			lo.heldX = true
			gq[0].granted = true
			lo.wait[gb]--
			s.stats.GrantsQueued++
			s.observeQueueWait(&gq[0])
			s.emitGrant(gq[0].hdr, gq[0].lease)
			return
		}
		for i := range gq {
			if gq[i].hdr.Mode == wire.Exclusive {
				break
			}
			gq[i].granted = true
			lo.wait[gb]--
			lo.held++
			s.stats.GrantsQueued++
			s.observeQueueWait(&gq[i])
			s.emitGrant(gq[i].hdr, gq[i].lease)
		}
		return
	}
}

// observeQueueWait records how long a queued entry waited before its grant
// (the paper's server queueing delay). Entries granted on arrival never
// record: e.arrived is stamped only for requests that actually waited.
func (s *Server) observeQueueWait(e *entry) {
	if e.arrived == 0 {
		return
	}
	s.cfg.Obs.Observe(obs.StageServerQueue, s.cfg.Now()-e.arrived)
}

// bufferOverflow handles an overflow-marked request for a switch-resident
// lock: buffer it in q2, or bounce it if the server believes overflow mode
// has ended (see the package comment for the race this closes).
func (s *Server) bufferOverflow(h *wire.Header) {
	if s.draining {
		// A draining server must not accumulate new overflow state: the
		// buffered request would be stranded when routing flips to the
		// drain target. The moved reject sends the client back through the
		// switch, which re-resolves once the redirect is installed.
		s.rejectMoved(h)
		return
	}
	lo, existed := s.locks[h.LockID]
	if !existed {
		// First contact via an overflow mark: the mark is authoritative
		// evidence the switch owns this lock, so the fresh lockObj must
		// not default to server-owned. (A replacement server after a
		// failover sees exactly this; defaulting to owned would split
		// ownership with the switch and double-grant.)
		lo = s.lock(h.LockID)
		lo.owned = false
	}
	b := s.bankFor(h.Priority)
	if lo.owned {
		// Stale overflow mark: the packet raced a switch-to-server move
		// and this server owns the lock again; process as a normal
		// acquire.
		cp := *h
		cp.Flags &^= wire.FlagOverflow | wire.FlagBounced
		s.acquire(&cp)
		return
	}
	if found, _ := lo.findTxn(h.TxnID); found {
		// Already buffered (or queued): a retransmitted overflow mark must
		// not create a second q2 entry for the same request.
		s.stats.DupAcquires++
		return
	}
	if !lo.buffering[b] && h.Flags&wire.FlagBounced == 0 {
		// Possible stale mark racing our clear: bounce once as a push.
		s.stats.Bounced++
		p := *h
		p.Op = wire.OpPush
		p.Flags &^= wire.FlagOverflow
		p.Flags |= wire.FlagBounced
		s.emit(ActPush, p)
		return
	}
	if s.cfg.MaxBuffer > 0 && len(lo.q2[b]) >= s.cfg.MaxBuffer {
		s.reject(h)
		return
	}
	lo.buffering[b] = true
	e := *h
	e.Flags &^= wire.FlagOverflow | wire.FlagBounced
	e.Op = wire.OpAcquire
	lo.q2[b] = append(lo.q2[b], entry{hdr: e})
	s.stats.Buffered++
	if d := uint64(len(lo.q2[b])); d > lo.q2peak {
		lo.q2peak = d
	}
}

// pushNotify handles the switch's "q1 drained" signal: push up to the
// advertised free slots from q2, marking the final push when q2 drains so
// the switch leaves overflow mode.
func (s *Server) pushNotify(h *wire.Header) {
	lo, ok := s.locks[h.LockID]
	b := s.bankFor(h.Priority)
	free := h.LeaseNs // free q1 slots, as advertised by the switch
	if !ok || lo.owned || free <= 0 {
		return
	}
	q2 := lo.q2[b]
	n := int64(len(q2))
	if n > free {
		n = free
	}
	for i := int64(0); i < n; i++ {
		p := q2[i].hdr
		p.Op = wire.OpPush
		if i == n-1 && n == int64(len(q2)) && n < free {
			// q2 drained and q1 will not be full: leave overflow mode.
			p.Flags |= wire.FlagOverflow
			lo.buffering[b] = false
			s.stats.OvfClears++
		}
		s.stats.Pushed++
		s.emit(ActPush, p)
	}
	lo.q2[b] = q2[n:]
	if len(lo.q2[b]) == 0 && n == 0 {
		// Nothing buffered at all: clear overflow mode with a control
		// message carrying no request.
		lo.buffering[b] = false
		s.stats.OvfClears++
		clear := *h
		clear.Op = wire.OpPush
		clear.TxnID = wire.TxnNone
		clear.Flags = wire.FlagOverflow
		s.emit(ActPush, clear)
	}
}
