package lockserver

// Model-checking test: drive one lock server with seeded random operation
// streams and check every grant decision, in lockstep, against the shared
// reference model in internal/check. The server implements the same grant
// rules as the switch data plane in plain Go; this pins the two to the one
// spec.

import (
	"fmt"
	"testing"

	"netlock/internal/check"
	"netlock/internal/wire"
)

// srvSystem adapts one Server to the check.System surface.
type srvSystem struct {
	s *Server
}

func (a *srvSystem) grants(emits []Emit) []uint64 {
	var out []uint64
	for _, e := range emits {
		if e.Action == ActGrant {
			out = append(out, e.Hdr.TxnID)
		}
	}
	return out
}

func (a *srvSystem) Acquire(lock uint32, txn uint64, excl bool, prio uint8) []uint64 {
	mode := wire.Shared
	if excl {
		mode = wire.Exclusive
	}
	h := &wire.Header{Op: wire.OpAcquire, Mode: mode, LockID: lock, TxnID: txn, Priority: prio}
	return a.grants(a.s.ProcessPacket(h))
}

func (a *srvSystem) Release(lock uint32, prio uint8, txn uint64) []uint64 {
	// Like the switch, the server releases by queue head: txn is advisory.
	h := &wire.Header{Op: wire.OpRelease, Mode: wire.Shared, LockID: lock, TxnID: txn, Priority: prio}
	return a.grants(a.s.ProcessPacket(h))
}

// finalState compares the server's queue depths against the model's.
func (a *srvSystem) finalState(m *check.Model, locks int) error {
	for l := 1; l <= locks; l++ {
		want := 0
		for p := 0; p < m.Priorities(); p++ {
			want += m.QueueLen(uint32(l), uint8(p))
		}
		owned, buffered := a.s.CtrlQueueDepth(uint32(l))
		if owned != want || buffered != 0 {
			return fmt.Errorf("lock %d queue depth: server (owned=%d, buffered=%d), model %d",
				l, owned, buffered, want)
		}
	}
	return nil
}

func TestOracleServer(t *testing.T) {
	for _, prios := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("prios=%d", prios), func(t *testing.T) {
			cfg := check.DefaultWorkloadCfg()
			cfg.Ops = 2000
			cfg.Priorities = prios
			h := &check.Harness{
				Cfg: cfg,
				New: func() check.System {
					return &srvSystem{s: New(Config{Priorities: prios})}
				},
				Final: func(sys check.System, m *check.Model) error {
					return sys.(*srvSystem).finalState(m, cfg.Locks)
				},
			}
			h.Run(t)
		})
	}
}
