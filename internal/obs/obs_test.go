package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"netlock/internal/stats"
)

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	s := r.Stripe(3)
	if s != nil {
		t.Fatalf("nil registry handed out non-nil stripe")
	}
	if s.Enabled() || s.Tracing() {
		t.Fatalf("nil stripe reports enabled/tracing")
	}
	// All writes must be no-ops, not panics.
	s.Inc(CtrAcquires)
	s.Add(CtrResubmits, 7)
	s.TenantGrant(4)
	s.Observe(StageSwitchPass, 123)
	s.Trace(TraceEvent{Event: EvGrant})
	sn := r.Snapshot()
	if sn.Counter(CtrAcquires) != 0 || sn.Stage(StageSwitchPass).Count() != 0 {
		t.Fatalf("nil registry snapshot not empty: %v", sn)
	}
	if r.NumStripes() != 0 {
		t.Fatalf("nil registry has stripes")
	}
}

func TestStripeRoutingAndSnapshotMerge(t *testing.T) {
	r := New(Config{Stripes: 4})
	if r.NumStripes() != 4 {
		t.Fatalf("NumStripes = %d, want 4", r.NumStripes())
	}
	if r.Stripe(1) != r.Stripe(5) {
		t.Fatalf("stripe index not reduced mod stripe count")
	}
	for i := 0; i < 4; i++ {
		s := r.Stripe(i)
		s.Inc(CtrAcquires)
		s.Add(CtrGrants, uint64(i))
		s.TenantGrant(uint8(i))
		s.Observe(StageAcquireE2E, int64(1000*(i+1)))
	}
	sn := r.Snapshot()
	if got := sn.Counter(CtrAcquires); got != 4 {
		t.Fatalf("acquires = %d, want 4", got)
	}
	if got := sn.Counter(CtrGrants); got != 0+1+2+3 {
		t.Fatalf("grants = %d, want 6", got)
	}
	for i := 0; i < 4; i++ {
		if sn.TenantGrants[i] != 1 {
			t.Fatalf("tenant %d grants = %d, want 1", i, sn.TenantGrants[i])
		}
	}
	h := sn.Stage(StageAcquireE2E)
	if h.Count() != 4 {
		t.Fatalf("e2e samples = %d, want 4", h.Count())
	}
	if h.Max() < 4000-4000/16 {
		t.Fatalf("e2e max = %d, want ~4000", h.Max())
	}
}

// TestAtomicHistMatchesHistogram checks the atomic mirror stays within the
// HDR histogram's bounded relative error after conversion.
func TestAtomicHistMatchesHistogram(t *testing.T) {
	var ah AtomicHist
	var ref stats.Histogram
	vals := []int64{0, 1, 63, 64, 65, 1000, 12345, 1 << 20, 1<<40 + 12345, -5}
	for _, v := range vals {
		ah.Record(v)
		ref.Record(v)
	}
	var got stats.Histogram
	ah.AddTo(&got)
	if got.Count() != ref.Count() {
		t.Fatalf("count = %d, want %d", got.Count(), ref.Count())
	}
	for _, q := range []float64{10, 50, 90, 99} {
		g, w := got.Percentile(q), ref.Percentile(q)
		if w == 0 {
			if g != 0 {
				t.Fatalf("p%v = %d, want 0", q, g)
			}
			continue
		}
		if rel := math.Abs(float64(g-w)) / float64(w); rel > 0.04 {
			t.Fatalf("p%v = %d, ref %d (rel err %.3f)", q, g, w, rel)
		}
	}
}

func TestConcurrentWritersAndSnapshots(t *testing.T) {
	r := New(Config{Stripes: 3})
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := r.Stripe(g)
			for i := 0; i < perG; i++ {
				s.Inc(CtrReleases)
				s.Observe(StageSwitchPass, int64(i))
				s.TenantGrant(uint8(g))
			}
		}(g)
	}
	// Snapshots race with writers by design; just exercise that path.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
		}
		close(done)
	}()
	wg.Wait()
	<-done
	sn := r.Snapshot()
	if got := sn.Counter(CtrReleases); got != 6*perG {
		t.Fatalf("releases = %d, want %d", got, 6*perG)
	}
	if got := sn.Stage(StageSwitchPass).Count(); got != 6*perG {
		t.Fatalf("switch-pass samples = %d, want %d", got, 6*perG)
	}
}

type recordingTracer struct {
	mu  sync.Mutex
	evs []TraceEvent
}

func (rt *recordingTracer) Trace(ev TraceEvent) {
	rt.mu.Lock()
	rt.evs = append(rt.evs, ev)
	rt.mu.Unlock()
}

func TestTracerReceivesEvents(t *testing.T) {
	rt := &recordingTracer{}
	r := New(Config{Stripes: 2, Tracer: rt})
	s := r.Stripe(0)
	if !s.Tracing() {
		t.Fatalf("Tracing() = false with tracer attached")
	}
	s.Trace(TraceEvent{Event: EvOverflow, LockID: 9, TxnID: 77, Tenant: 2, Arg: 1})
	r.Stripe(1).Trace(TraceEvent{Event: EvFailover, Arg: FailoverSwitchDown})
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.evs) != 2 {
		t.Fatalf("got %d events, want 2", len(rt.evs))
	}
	if rt.evs[0].Event != EvOverflow || rt.evs[0].LockID != 9 || rt.evs[0].TxnID != 77 {
		t.Fatalf("event 0 = %+v", rt.evs[0])
	}
	if rt.evs[1].Arg != FailoverSwitchDown {
		t.Fatalf("event 1 arg = %d", rt.evs[1].Arg)
	}
}

func TestSnapshotDeltaAndString(t *testing.T) {
	r := New(Config{})
	s := r.Stripe(0)
	s.Add(CtrAcquires, 10)
	prev := r.Snapshot()
	s.Add(CtrAcquires, 5)
	s.Observe(StageAcquireE2E, 2500)
	cur := r.Snapshot()
	d := cur.DeltaCounters(prev)
	if d[CtrAcquires] != 5 {
		t.Fatalf("delta acquires = %d, want 5", d[CtrAcquires])
	}
	d0 := cur.DeltaCounters(nil)
	if d0[CtrAcquires] != 15 {
		t.Fatalf("delta-from-nil acquires = %d, want 15", d0[CtrAcquires])
	}
	str := cur.String()
	if !strings.Contains(str, "acquires=15") || !strings.Contains(str, "acquire_e2e_ns{") {
		t.Fatalf("String() = %q", str)
	}
}

func TestWritePromEmitsAllFamilies(t *testing.T) {
	r := New(Config{Stripes: 2})
	s := r.Stripe(0)
	s.Inc(CtrAcquires)
	s.Inc(CtrGrants)
	s.TenantGrant(3)
	for i := 0; i < 100; i++ {
		s.Observe(StageSwitchPass, int64(100+i*10))
	}
	sn := r.Snapshot()
	sn.AddGauge("switch_slots_in_use", "Queue slots currently allocated.", 42)

	var b strings.Builder
	if err := sn.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := b.String()
	// Every counter family must appear even at zero.
	for c := Counter(0); c < NumCounters; c++ {
		if !strings.Contains(out, "netlock_"+c.String()+"_total") {
			t.Fatalf("missing counter family %s in:\n%s", c, out)
		}
	}
	// Every stage family must appear even when empty.
	for st := Stage(0); st < NumStages; st++ {
		name := "netlock_" + st.String()
		for _, suffix := range []string{"_bucket{le=\"+Inf\"}", "_sum", "_count"} {
			if !strings.Contains(out, name+suffix) {
				t.Fatalf("missing %s%s in:\n%s", name, suffix, out)
			}
		}
	}
	for _, want := range []string{
		"netlock_acquires_total 1",
		"netlock_tenant_grants_total{tenant=\"3\"} 1",
		"netlock_switch_pass_ns_count 100",
		"netlock_switch_slots_in_use 42",
		"# TYPE netlock_switch_pass_ns histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Bucket cumulative counts must be monotonic and end at the total.
	if !strings.Contains(out, "netlock_switch_pass_ns_bucket{le=\"+Inf\"} 100") {
		t.Fatalf("+Inf bucket != total:\n%s", out)
	}
}

func TestEnabledPathDoesNotAllocate(t *testing.T) {
	r := New(Config{Stripes: 2})
	s := r.Stripe(1)
	allocs := testing.AllocsPerRun(1000, func() {
		s.Inc(CtrAcquires)
		s.TenantGrant(7)
		s.Observe(StageAcquireE2E, 1234)
		s.Trace(TraceEvent{Event: EvGrant, LockID: 1}) // no tracer: must not alloc
	})
	if allocs != 0 {
		t.Fatalf("enabled stripe writes allocate: %v allocs/op", allocs)
	}
	var nil_ *Stripe
	allocs = testing.AllocsPerRun(1000, func() {
		nil_.Inc(CtrAcquires)
		nil_.Observe(StageSwitchPass, 5)
	})
	if allocs != 0 {
		t.Fatalf("disabled stripe writes allocate: %v allocs/op", allocs)
	}
}
