package obs

import (
	"fmt"
	"strings"

	"netlock/internal/stats"
)

// Gauge is one point-in-time value exported alongside the counters, filled
// in by the snapshot producer from control-plane reads (slots in use,
// resident locks, free table entries — the data-plane occupancy figures the
// paper's memory manager steers by).
type Gauge struct {
	// Name is the metric name without the "netlock_" prefix, e.g.
	// "switch_slots_in_use".
	Name string
	// Help is the one-line metric description.
	Help string
	// Value is the gauge reading.
	Value float64
}

// Snapshot is a merged, point-in-time view of a Registry plus any gauges
// the producer attached. The zero value from NewSnapshot is valid and
// empty; Snapshot values are plain data and safe to retain.
type Snapshot struct {
	// Counters holds the monotonic counters, indexed by Counter.
	Counters [NumCounters]uint64
	// TenantGrants holds per-tenant grant counts, indexed by tenant ID.
	TenantGrants [NumTenants]uint64
	// Stages holds the merged per-stage latency histograms, indexed by
	// Stage.
	Stages [NumStages]stats.Histogram
	// Gauges are producer-attached point-in-time values.
	Gauges []Gauge
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot { return &Snapshot{} }

// Counter returns the value of counter c.
func (sn *Snapshot) Counter(c Counter) uint64 { return sn.Counters[c] }

// Stage returns the merged histogram for stage st.
func (sn *Snapshot) Stage(st Stage) *stats.Histogram { return &sn.Stages[st] }

// AddGauge appends a gauge reading.
func (sn *Snapshot) AddGauge(name, help string, value float64) {
	sn.Gauges = append(sn.Gauges, Gauge{Name: name, Help: help, Value: value})
}

// Merge folds other into sn (counters and histograms add; gauges append).
func (sn *Snapshot) Merge(other *Snapshot) {
	for c := range sn.Counters {
		sn.Counters[c] += other.Counters[c]
	}
	for t := range sn.TenantGrants {
		sn.TenantGrants[t] += other.TenantGrants[t]
	}
	for st := range sn.Stages {
		sn.Stages[st].Merge(&other.Stages[st])
	}
	sn.Gauges = append(sn.Gauges, other.Gauges...)
}

// DeltaCounters returns sn's counters minus prev's, for periodic-delta
// logging. prev may be nil (all-zero baseline).
func (sn *Snapshot) DeltaCounters(prev *Snapshot) [NumCounters]uint64 {
	var d [NumCounters]uint64
	for c := range sn.Counters {
		d[c] = sn.Counters[c]
		if prev != nil {
			d[c] -= prev.Counters[c]
		}
	}
	return d
}

// String renders a compact one-line summary: counters plus the p50/p99 of
// each non-empty stage, in microseconds.
func (sn *Snapshot) String() string {
	var b strings.Builder
	for c := Counter(0); c < NumCounters; c++ {
		if v := sn.Counters[c]; v != 0 {
			fmt.Fprintf(&b, "%s=%d ", c, v)
		}
	}
	for st := Stage(0); st < NumStages; st++ {
		h := &sn.Stages[st]
		if h.Count() == 0 {
			continue
		}
		if strings.HasSuffix(st.String(), "_ns") {
			fmt.Fprintf(&b, "%s{p50=%.1fus p99=%.1fus n=%d} ",
				st, float64(h.Percentile(50))/1e3, float64(h.Percentile(99))/1e3, h.Count())
		} else {
			fmt.Fprintf(&b, "%s{p50=%d p99=%d n=%d} ",
				st, h.Percentile(50), h.Percentile(99), h.Count())
		}
	}
	return strings.TrimSpace(b.String())
}
