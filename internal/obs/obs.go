// Package obs is NetLock's observability layer: a lock-free, striped
// metrics registry (atomic counters plus atomic HDR histograms sharing
// internal/stats' bucket geometry) and a pluggable trace-hook interface.
//
// The paper's entire evaluation (§6) is built from per-stage measurements —
// switch-pass latency, server queueing delay, overflow and resubmit counts,
// per-tenant throughput — and this package makes the same measurements
// available live from every plane the reproduction runs on: the embedded
// sharded manager (netlock.Manager.Metrics), the real UDP rack
// (cmd/netlockd's Prometheus endpoint), and the virtual-time testbed
// (internal/cluster).
//
// Design constraints, in order:
//
//  1. Disabled must be free. Every instrumented component holds a *Stripe
//     that is nil when observability is off; all Stripe methods are
//     nil-receiver safe, so the disabled hot path costs one predictable
//     branch per layer and nothing else.
//  2. Enabled must stay allocation-free. Counters are plain atomics;
//     latencies record into fixed-size atomic bucket arrays; trace events
//     are passed by value. The steady-state acquire/release path keeps its
//     0 allocs/op gate with metrics and tracing on (alloc_test.go).
//  3. Reads never stop writers. Snapshot loads each atomic once and merges
//     stripes into ordinary stats.Histogram values for percentile math;
//     writers are never locked out, so a snapshot is a consistent-enough
//     cut, not a barrier (unlike Manager.Stats, which stops the shards).
//
// Striping: the registry allocates one Stripe per shard/pipeline (plus one
// ingress stripe); each stripe's atomics are written by an independent
// shard, so enabled-mode recording does not bounce cache lines between
// shards any more than the shards themselves do.
package obs

import "time"

// Event identifies a trace hook point. The hook points mirror the life of a
// request through the paper's architecture (Figure 4): arrival at the ToR,
// data-plane passes and resubmits, overflow to a lock server, grant,
// release, lease reclamation, and failover transitions.
type Event uint8

// Trace hook points.
const (
	// EvPacketIn fires when a request packet enters a data plane
	// (switch or lock server). Arg is the wire op.
	EvPacketIn Event = iota
	// EvSwitchPass fires after one packet finishes the switch pipeline.
	// Arg is the wall-clock processing time in nanoseconds.
	EvSwitchPass
	// EvResubmit fires when a packet consumed pipeline resubmits.
	// Arg is the number of extra passes.
	EvResubmit
	// EvOverflow fires when a switch-resident lock's queue is full and the
	// request is forwarded to its lock server for buffering (§4.3).
	EvOverflow
	// EvGrant fires when a grant (or one-RTT fetch) is issued. Arg is the
	// measured latency in nanoseconds where the emitter knows one
	// (end-to-end at the front ends, queue wait at the servers), else 0.
	EvGrant
	// EvRelease fires when a release is processed.
	EvRelease
	// EvLeaseExpiry fires when the lease sweep force-releases a holder
	// (§4.5).
	EvLeaseExpiry
	// EvFailover fires on a failure-handling transition. Arg is a
	// Failover* code.
	EvFailover
	// NumEvents is the number of defined events.
	NumEvents
)

var eventNames = [NumEvents]string{
	"packet-in", "switch-pass", "resubmit", "overflow",
	"grant", "release", "lease-expiry", "failover",
}

// String returns the event name.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "event(?)"
}

// Failover transition codes carried in TraceEvent.Arg for EvFailover.
const (
	// FailoverSwitchDown is a switch failure: all data-plane state lost.
	FailoverSwitchDown int64 = iota + 1
	// FailoverSwitchUp is a switch reactivation (control-plane reinstall).
	FailoverSwitchUp
	// FailoverServer is a lock-server failure redirected to a replacement.
	FailoverServer
)

// TraceEvent is one hook invocation. It is passed by value so emitting an
// event never allocates.
type TraceEvent struct {
	Event  Event
	LockID uint32
	TxnID  uint64
	Tenant uint8
	// Arg carries the event-specific measurement; see the Event constants.
	Arg int64
}

// Tracer receives trace events from instrumented components. Callbacks run
// inline on the hot path under the emitting component's serialization (one
// shard's events arrive in order, different shards' events concurrently),
// so implementations must be safe for concurrent use and must not block.
type Tracer interface {
	Trace(TraceEvent)
}

// Stage identifies a per-stage latency histogram, one per measurement the
// paper's figures are built from.
type Stage uint8

// Latency stages.
const (
	// StageSwitchPass is the wall-clock time of one switch data-plane
	// ProcessPacket call, resubmit passes included — the software model's
	// analogue of the switch pass latency the paper measures at < 1us.
	StageSwitchPass Stage = iota
	// StageServerQueue is the time a request spends queued at a lock
	// server before its grant (the paper's server queueing delay).
	// Immediate grants do not record; the histogram is the wait of the
	// requests that actually waited.
	StageServerQueue
	// StageAcquireE2E is the end-to-end acquire latency observed by a
	// front end: request submission to grant delivery.
	StageAcquireE2E
	// StageEgressBatch is the size distribution of egress batch frames in
	// ops per datagram — the amortization factor the batched transport
	// buys per syscall. Unlike the other stages, samples are op counts,
	// not nanoseconds.
	StageEgressBatch
	// NumStages is the number of defined stages.
	NumStages
)

// Stage metric names carry their unit suffix: latency stages end in "_ns",
// size stages in "_ops" (Snapshot.String and the Prometheus exporter render
// them accordingly).
var stageNames = [NumStages]string{"switch_pass_ns", "server_queue_wait_ns", "acquire_e2e_ns", "egress_batch_ops"}

// String returns the stage's metric-name fragment.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage(?)"
}

// Counter identifies a monotonic event counter.
type Counter uint8

// Counters. Each is recorded exactly once, at the component where the event
// semantically happens: the switch owns request/disposition counts (the ToR
// sees every request once), grants are counted where they are emitted, and
// lease expiries where they are reclaimed.
const (
	// CtrAcquires counts acquire requests entering the stack.
	CtrAcquires Counter = iota
	// CtrReleases counts release requests.
	CtrReleases
	// CtrGrants counts grants and one-RTT fetches issued.
	CtrGrants
	// CtrResubmits counts extra switch pipeline passes (resubmit
	// primitive), the knob the paper's Algorithm 2 spends for multi-step
	// register operations.
	CtrResubmits
	// CtrOverflows counts requests forwarded to a server because the
	// switch queue was full (§4.3).
	CtrOverflows
	// CtrRejects counts requests bounced to the client (tenant quota or
	// queue overflow with a bounded server buffer).
	CtrRejects
	// CtrLeaseExpiries counts holders force-released by the lease sweep.
	CtrLeaseExpiries
	// CtrFailovers counts failure-handling transitions.
	CtrFailovers
	// CtrFramesIn counts NetLock datagrams received (batch frames and bare
	// headers alike); CtrOpsIn / CtrFramesIn is the realized ingress batch
	// factor.
	CtrFramesIn
	// CtrFramesOut counts NetLock datagrams sent.
	CtrFramesOut
	// CtrOpsIn counts operations decoded from ingress datagrams.
	CtrOpsIn
	// NumCounters is the number of defined counters.
	NumCounters
)

var counterNames = [NumCounters]string{
	"acquires", "releases", "grants", "resubmits",
	"overflows", "rejects", "lease_expiries", "failovers",
	"frames_in", "frames_out", "ops_in",
}

// String returns the counter's metric-name fragment.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter(?)"
}

// Now returns the current wall-clock instant for latency measurement.
// Components time spans with Now()/Since() so the cost exists only on the
// enabled path.
func Now() time.Time { return time.Now() }

// Since returns the nanoseconds elapsed since t.
func Since(t time.Time) int64 { return int64(time.Since(t)) }
