package obs

import (
	"fmt"
	"io"

	"netlock/internal/stats"
)

// promBucketPoints caps the number of le= buckets rendered per histogram so
// scrapes stay small; the CDF downsampling keeps the tail point exact.
const promBucketPoints = 32

var stageHelp = [NumStages]string{
	"Wall-clock time of one switch data-plane pass (resubmits included), nanoseconds.",
	"Time a request waited in a lock-server queue before its grant, nanoseconds.",
	"End-to-end acquire latency from request submission to grant delivery, nanoseconds.",
	"Operations per egress batch frame (ops per datagram).",
}

var counterHelp = [NumCounters]string{
	"Acquire requests entering the stack.",
	"Release requests entering the stack.",
	"Grants and one-RTT fetch notifications issued.",
	"Extra switch pipeline passes consumed by resubmits.",
	"Requests forwarded to a lock server because the switch queue was full.",
	"Requests rejected back to the client (quota or bounded-buffer overflow).",
	"Lock holders force-released by the lease sweep.",
	"Failure-handling transitions (switch down/up, server failover).",
	"NetLock datagrams received (batch frames and bare headers).",
	"NetLock datagrams sent.",
	"Operations decoded from ingress datagrams.",
}

// WriteProm renders the snapshot in Prometheus text exposition format.
// Every metric family is always emitted, even at zero, so scrapers (and the
// smoke test) can rely on the names being present from the first scrape.
func (sn *Snapshot) WriteProm(w io.Writer) error {
	for c := Counter(0); c < NumCounters; c++ {
		name := "netlock_" + c.String() + "_total"
		if err := promHeader(w, name, counterHelp[c], "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, sn.Counters[c]); err != nil {
			return err
		}
	}

	if err := promHeader(w, "netlock_tenant_grants_total",
		"Grants issued per tenant.", "counter"); err != nil {
		return err
	}
	any := false
	for t := 0; t < NumTenants; t++ {
		if sn.TenantGrants[t] == 0 {
			continue
		}
		any = true
		if _, err := fmt.Fprintf(w, "netlock_tenant_grants_total{tenant=\"%d\"} %d\n",
			t, sn.TenantGrants[t]); err != nil {
			return err
		}
	}
	if !any {
		if _, err := fmt.Fprintf(w, "netlock_tenant_grants_total{tenant=\"0\"} 0\n"); err != nil {
			return err
		}
	}

	for st := Stage(0); st < NumStages; st++ {
		// Stage names carry their own unit suffix ("_ns" or "_ops").
		if err := promHistogram(w, "netlock_"+st.String(), stageHelp[st], &sn.Stages[st]); err != nil {
			return err
		}
	}

	for _, g := range sn.Gauges {
		name := "netlock_" + g.Name
		if err := promHeader(w, name, g.Help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", name, g.Value); err != nil {
			return err
		}
	}
	return nil
}

func promHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// promHistogram renders a stats.Histogram as a Prometheus histogram family.
// Cumulative bucket counts are recovered from the CDF (fraction x count),
// downsampled to promBucketPoints upper bounds.
func promHistogram(w io.Writer, name, help string, h *stats.Histogram) error {
	if err := promHeader(w, name, help, "histogram"); err != nil {
		return err
	}
	total := h.Count()
	for _, pt := range h.CDF(promBucketPoints) {
		cum := int64(pt.Fraction*float64(total) + 0.5)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, pt.Value, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, total)
	return err
}
