package obs

import (
	"sync/atomic"

	"netlock/internal/stats"
)

// NumTenants is the tenant ID space tracked by the per-tenant grant
// counters, matching the 8-bit TenantID of the wire header and the paper's
// per-tenant meter table.
const NumTenants = 256

// Config sizes a Registry.
type Config struct {
	// Stripes is the number of independent write stripes, typically the
	// shard count of the instrumented instance (>= 1). Default 1.
	Stripes int
	// Tracer, when non-nil, receives trace events from every stripe.
	Tracer Tracer
}

// Registry is the metrics store: Stripes() hand out lock-free write handles
// and Snapshot() merges them. A nil *Registry is a valid disabled registry:
// it hands out nil stripes and empty snapshots.
type Registry struct {
	stripes []*Stripe
}

// New builds a registry with the given striping.
func New(cfg Config) *Registry {
	if cfg.Stripes < 1 {
		cfg.Stripes = 1
	}
	r := &Registry{}
	for i := 0; i < cfg.Stripes; i++ {
		r.stripes = append(r.stripes, &Stripe{tracer: cfg.Tracer})
	}
	return r
}

// Stripe returns write handle i (mod the stripe count), nil for a nil
// registry. Components hold the *Stripe directly so the disabled check is a
// single nil comparison in their hot path.
func (r *Registry) Stripe(i int) *Stripe {
	if r == nil {
		return nil
	}
	return r.stripes[i%len(r.stripes)]
}

// NumStripes returns the stripe count (0 for a nil registry).
func (r *Registry) NumStripes() int {
	if r == nil {
		return 0
	}
	return len(r.stripes)
}

// Snapshot merges every stripe into one consistent-enough view. It never
// blocks writers; each atomic is loaded exactly once.
func (r *Registry) Snapshot() *Snapshot {
	sn := NewSnapshot()
	if r == nil {
		return sn
	}
	for _, s := range r.stripes {
		for c := 0; c < int(NumCounters); c++ {
			sn.Counters[c] += s.counters[c].Load()
		}
		for t := 0; t < NumTenants; t++ {
			sn.TenantGrants[t] += s.tenants[t].Load()
		}
		for st := 0; st < int(NumStages); st++ {
			s.hists[st].AddTo(&sn.Stages[st])
		}
	}
	return sn
}

// Stripe is one lock-free write handle. All methods are safe for concurrent
// use and are nil-receiver safe: a nil stripe is the disabled registry, and
// every method degenerates to a single branch.
type Stripe struct {
	counters [NumCounters]atomic.Uint64
	tenants  [NumTenants]atomic.Uint64
	hists    [NumStages]AtomicHist
	tracer   Tracer
}

// Inc adds one to counter c.
func (s *Stripe) Inc(c Counter) {
	if s == nil {
		return
	}
	s.counters[c].Add(1)
}

// Add adds n to counter c.
func (s *Stripe) Add(c Counter, n uint64) {
	if s == nil {
		return
	}
	s.counters[c].Add(n)
}

// TenantGrant counts one grant for tenant t (per-tenant throughput,
// Figure 12's series).
func (s *Stripe) TenantGrant(t uint8) {
	if s == nil {
		return
	}
	s.tenants[t].Add(1)
}

// Observe records a latency sample (nanoseconds) into stage st.
func (s *Stripe) Observe(st Stage, ns int64) {
	if s == nil {
		return
	}
	s.hists[st].Record(ns)
}

// Trace emits a trace event to the registry's tracer, if any.
func (s *Stripe) Trace(ev TraceEvent) {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.Trace(ev)
}

// Tracing reports whether a tracer is attached; components use it to skip
// building TraceEvent values nobody will see.
func (s *Stripe) Tracing() bool { return s != nil && s.tracer != nil }

// Enabled reports whether the stripe records anything (false only for nil).
func (s *Stripe) Enabled() bool { return s != nil }

// AtomicHist is a lock-free histogram sharing stats.Histogram's HDR bucket
// geometry: recording is one atomic add, and AddTo converts to a
// stats.Histogram by replaying each bucket at its upper bound, which lands
// in the same bucket and so stays within the histogram's usual bounded
// relative error.
type AtomicHist struct {
	counts [stats.NumBuckets]atomic.Uint64
}

// Record adds one observation.
func (h *AtomicHist) Record(v int64) {
	h.counts[stats.BucketIndex(v)].Add(1)
}

// AddTo merges the histogram's counts into dst.
func (h *AtomicHist) AddTo(dst *stats.Histogram) {
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			dst.RecordN(stats.BucketBound(i), int64(n))
		}
	}
}
