package harness

import (
	"netlock/internal/cluster"
	"netlock/internal/wire"
	"netlock/internal/workload"
)

// LatencyPoint is one point of a latency-vs-throughput curve (Figures 8a
// and 8b).
type LatencyPoint struct {
	OfferedMRPS  float64
	AchievedMRPS float64
	AvgUs        float64
	MedianUs     float64
	P99Us        float64
	P999Us       float64
}

// fig8LoadSweep runs the open-loop microbenchmark at increasing offered
// loads with 12 client machines (§6.2). Rates are transactions/second per
// client; each transaction is one acquire plus one release, so the request
// rate is twice the transaction rate (a client NIC peaks at 18M requests/s
// = 9M transactions/s).
func fig8LoadSweep(o Options, mode wire.Mode, disjoint bool) []LatencyPoint {
	perClientRates := []float64{5_000, 50_000, 500_000, 2.5e6, 5e6, 8.5e6}
	if o.Quick {
		perClientRates = []float64{50_000, 500_000, 5e6}
	}
	var out []LatencyPoint
	for _, rate := range perClientRates {
		cfg := cluster.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Clients = 12
		cfg.OpenLoopRate = rate
		tb := cluster.NewTestbed(cfg)
		mgr := newNetLockManager(tb, 2, 1, 0)
		locks := uint32(1000)
		if disjoint {
			// Exclusive without contention: disjoint per-client ranges.
			preinstall(mgr, locks*uint32(cfg.Clients+1), 2)
		} else {
			preinstall(mgr, locks, 16)
		}
		svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{Manager: mgr})
		wl := &workload.Micro{Locks: locks, Mode: mode, PerClientDisjoint: disjoint}
		warm, win := o.scale(5e5, 2e6), o.scale(1e6, 4e6)
		res := tb.Run(svc, wl, warm, win)
		out = append(out, LatencyPoint{
			OfferedMRPS:  2 * rate * float64(cfg.Clients) / 1e6,
			AchievedMRPS: requestMRPS(res.LockRate),
			AvgUs:        us(res.LockLat.Mean),
			MedianUs:     usI(res.LockLat.Median),
			P99Us:        usI(res.LockLat.P99),
			P999Us:       usI(res.LockLat.P999),
		})
	}
	return out
}

// Fig8aSharedLocks reproduces Figure 8a: latency vs throughput for shared
// locks. The switch grants everything at line rate, so latency stays flat
// as offered load rises to the clients' generation capacity.
func Fig8aSharedLocks(o Options) []LatencyPoint {
	pts := fig8LoadSweep(o, wire.Shared, false)
	o.printf("Figure 8a — shared locks, 12 clients (latency vs throughput)\n")
	printLatencyPoints(o, pts)
	return pts
}

// Fig8bExclusiveNoContention reproduces Figure 8b: exclusive locks on
// disjoint lock sets behave identically to shared locks.
func Fig8bExclusiveNoContention(o Options) []LatencyPoint {
	pts := fig8LoadSweep(o, wire.Exclusive, true)
	o.printf("Figure 8b — exclusive locks w/o contention (latency vs throughput)\n")
	printLatencyPoints(o, pts)
	return pts
}

func printLatencyPoints(o Options, pts []LatencyPoint) {
	o.printf("  %12s %12s %9s %9s %9s %9s\n", "offered", "achieved", "avg", "p50", "p99", "p99.9")
	for _, p := range pts {
		o.printf("  %9.2f MRPS %9.2f MRPS %7.1fus %7.1fus %7.1fus %7.1fus\n",
			p.OfferedMRPS, p.AchievedMRPS, p.AvgUs, p.MedianUs, p.P99Us, p.P999Us)
	}
}

// ContentionPoint is one point of Figures 8c and 8d: exclusive locks with
// contention, sweeping the lock-set size.
type ContentionPoint struct {
	Locks          int
	ThroughputMRPS float64
	AvgUs          float64
	MedianUs       float64
	P99Us          float64
	P999Us         float64
}

// Fig8cdExclusiveContention reproduces Figures 8c and 8d: 12 clients all
// target the same lock set; throughput rises and latency falls as the set
// grows and contention dilutes.
func Fig8cdExclusiveContention(o Options) []ContentionPoint {
	sizes := []int{500, 2000, 4000, 6000, 8000, 10000}
	if o.Quick {
		sizes = []int{500, 4000, 10000}
	}
	var out []ContentionPoint
	for _, n := range sizes {
		cfg := cluster.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Clients = 12
		cfg.WorkersPerClient = 96
		tb := cluster.NewTestbed(cfg)
		mgr := newNetLockManager(tb, 2, 1, 0)
		slots := uint64(2*cfg.Clients*cfg.WorkersPerClient/n + 2)
		preinstall(mgr, uint32(n), slots)
		svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{Manager: mgr})
		wl := &workload.Micro{Locks: uint32(n), Mode: wire.Exclusive}
		warm, win := o.scale(1e6, 5e6), o.scale(4e6, 20e6)
		res := tb.Run(svc, wl, warm, win)
		out = append(out, ContentionPoint{
			Locks:          n,
			ThroughputMRPS: requestMRPS(res.LockRate),
			AvgUs:          us(res.LockLat.Mean),
			MedianUs:       usI(res.LockLat.Median),
			P99Us:          usI(res.LockLat.P99),
			P999Us:         usI(res.LockLat.P999),
		})
	}
	o.printf("Figures 8c/8d — exclusive locks w/ contention (12 clients, shared lock set)\n")
	o.printf("  %7s %12s %9s %9s %9s %9s\n", "locks", "throughput", "avg", "p50", "p99", "p99.9")
	for _, p := range out {
		o.printf("  %7d %9.2f MRPS %7.1fus %7.1fus %7.1fus %7.1fus\n",
			p.Locks, p.ThroughputMRPS, p.AvgUs, p.MedianUs, p.P99Us, p.P999Us)
	}
	return out
}
