package harness

import (
	"netlock/internal/cluster"
	"netlock/internal/core"
	"netlock/internal/stats"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
	"netlock/internal/workload"
)

// Series is a labelled throughput time series.
type Series struct {
	Label  string
	Points []stats.Point
}

// Fig12aServiceDiff reproduces Figure 12a: two tenants of five clients
// each; the high-priority tenant starts sending mid-run. Without service
// differentiation both tenants converge to similar throughput; with
// priorities enabled in the switch, the high-priority tenant dominates.
// The returned series are [w/o-low, w/o-high, w/-low, w/-high].
func Fig12aServiceDiff(o Options) []Series {
	total := o.scale(400e6, 2000e6)
	hiStart := total / 4
	bucket := total / 20

	run := func(differentiate bool) []Series {
		cfg := cluster.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Clients = 10
		cfg.WorkersPerClient = 8
		cfg.Tenants = 2
		cfg.SeriesBucketNs = bucket
		cfg.ClientStartNs = map[int]int64{}
		// Clients 0-4 are the high-priority tenant, starting late.
		for c := 0; c < 5; c++ {
			cfg.ClientStartNs[c] = hiStart
		}
		tb := cluster.NewTestbed(cfg)
		prios := 1
		if differentiate {
			prios = 2
		}
		mgr := newNetLockManager(tb, 2, prios, 0)
		preinstall(mgr, 20, uint64(cfg.Clients*cfg.WorkersPerClient/4+2))
		svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{Manager: mgr})
		wl := &workload.PriorityMix{
			Inner:       &workload.Micro{Locks: 20, Mode: wire.Exclusive, ThinkNs: 5_000},
			HighClients: 5,
		}
		tb.Run(svc, wl, 1, total)
		label := "w/o differentiation"
		if differentiate {
			label = "w/ differentiation"
		}
		return []Series{
			{Label: label + ", low priority", Points: tb.TenantSeries(1).Points()},
			{Label: label + ", high priority", Points: tb.TenantSeries(0).Points()},
		}
	}
	out := append(run(false), run(true)...)
	o.printf("Figure 12a — service differentiation (high-priority tenant joins at t=%.1fs)\n",
		float64(hiStart)/1e9)
	for _, s := range out {
		o.printf("  %-34s", s.Label)
		for _, p := range s.Points {
			o.printf(" %6.0f", p.Rate/1e3)
		}
		o.printf("  (kTPS per bucket)\n")
	}
	return out
}

// IsolationRow is one setting of Figure 12b.
type IsolationRow struct {
	Setting     string
	Tenant1MTPS float64
	Tenant2MTPS float64
}

// Fig12bIsolation reproduces Figure 12b: tenant 1 has seven clients,
// tenant 2 has three. Without isolation tenant 1 grabs a proportionally
// larger share; with per-tenant quotas both get the same share.
func Fig12bIsolation(o Options) []IsolationRow {
	warm, win := o.scale(20e6, 100e6), o.scale(100e6, 500e6)

	run := func(isolate bool, quota float64) IsolationRow {
		cfg := cluster.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Clients = 10
		cfg.WorkersPerClient = 24
		cfg.Tenants = 2
		tb := cluster.NewTestbed(cfg)
		mgr := core.New(core.Config{
			Switch: switchdp.Config{
				MaxLocks:   8192,
				TotalSlots: 100_000,
				Priorities: 1,
				Isolation:  isolate,
				Now:        tb.Eng.Now,
			},
			Servers: 2,
		})
		preinstall(mgr, 32, uint64(cfg.Clients*cfg.WorkersPerClient/8+2))
		if isolate {
			// Request-level quota: transactions are single-lock here, so
			// the per-tenant request quota equals the txn quota.
			mgr.Switch().CtrlSetTenantQuota(0, quota, 256)
			mgr.Switch().CtrlSetTenantQuota(1, quota, 256)
		}
		svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{Manager: mgr})
		// Tenant blocks: clients 0-6 are tenant 0 (seven clients), 7-9 are
		// tenant 1 (three clients). Exclusive locks on a small set make the
		// lock capacity (not the clients) the contended resource, so the
		// quota actually redistributes it.
		wl := &workload.PriorityMix{
			Inner:       &workload.Micro{Locks: 32, Mode: wire.Exclusive, ThinkNs: 2_000},
			HighClients: 7,
		}
		res := tb.Run(svc, wl, warm, win)
		setting := "w/o isolation"
		if isolate {
			setting = "w/ isolation"
		}
		return IsolationRow{
			Setting:     setting,
			Tenant1MTPS: float64(res.TenantTxns[0]) / (float64(win) / 1e9) / 1e6,
			Tenant2MTPS: float64(res.TenantTxns[1]) / (float64(win) / 1e9) / 1e6,
		}
	}

	// First run without isolation to find the system capacity, then set
	// each tenant's quota to half of it.
	free := run(false, 0)
	totalRPS := (free.Tenant1MTPS + free.Tenant2MTPS) * 1e6
	iso := run(true, totalRPS/2)
	rows := []IsolationRow{free, iso}
	o.printf("Figure 12b — performance isolation (tenant1: 7 clients, tenant2: 3 clients)\n")
	for _, r := range rows {
		o.printf("  %-15s tenant1=%.3f MTPS tenant2=%.3f MTPS\n", r.Setting, r.Tenant1MTPS, r.Tenant2MTPS)
	}
	return rows
}
