package harness

import (
	"netlock/internal/cluster"
	"netlock/internal/wire"
	"netlock/internal/workload"
)

// FailureResult is the Figure 15 output: the throughput time series around
// a switch failure, plus the phase averages used to assert recovery.
type FailureResult struct {
	Series        Series
	PreMRPS       float64 // steady state before the failure
	DuringMRPS    float64 // while the switch is down
	RecoveredMRPS float64 // after reactivation
	FailAtSec     float64
	RestartAtSec  float64
}

// Fig15Failure reproduces Figure 15: the lock switch is stopped mid-run
// (throughput drops to zero immediately — the ToR is the only path) and
// then reactivated with none of its former register state. The control
// plane reinstalls the lock table, clients retry their requests, and
// throughput returns to the pre-failure level.
func Fig15Failure(o Options) FailureResult {
	total := o.scale(300e6, 2000e6)
	failAt := total * 2 / 5
	restartAt := total * 3 / 5
	bucket := total / 25

	cfg := cluster.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Clients = 10
	cfg.WorkersPerClient = 16
	cfg.SeriesBucketNs = bucket
	cfg.RetryTimeoutNs = o.scale(2e6, 5e6)
	tb := cluster.NewTestbed(cfg)
	mgr := newNetLockManager(tb, 2, 1, 0)
	const locks = 1000
	preinstall(mgr, locks, 8)
	svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{
		Manager:      mgr,
		SweepEveryNs: o.scale(10e6, 50e6),
	})
	wl := &workload.Micro{Locks: locks, Mode: wire.Exclusive}

	// Drive the run manually so the failure can be injected mid-flight.
	tb.Eng.At(failAt, func() {
		mgr.FailSwitch()
		tb.SetSwitchDown(true)
	})
	tb.Eng.At(restartAt, func() {
		mgr.RestartSwitch()
		tb.SetSwitchDown(false)
	})
	res := tb.Run(svc, wl, 1, total)
	_ = res

	series := tb.TenantSeries(0)
	pts := series.Points()
	phase := func(fromNs, toNs int64) float64 {
		var sum float64
		var n int
		for i, p := range pts {
			t := int64(i) * bucket
			if t >= fromNs && t+bucket <= toNs {
				sum += p.Rate
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n) / 1e6
	}
	out := FailureResult{
		Series:        Series{Label: "NetLock", Points: pts},
		PreMRPS:       phase(total/10, failAt),
		DuringMRPS:    phase(failAt+bucket, restartAt),
		RecoveredMRPS: phase(restartAt+2*bucket, total),
		FailAtSec:     float64(failAt) / 1e9,
		RestartAtSec:  float64(restartAt) / 1e9,
	}
	o.printf("Figure 15 — failure handling (switch stops at %.2fs, reactivates at %.2fs)\n",
		out.FailAtSec, out.RestartAtSec)
	o.printf("  pre-failure=%.3f MTPS during=%.3f MTPS recovered=%.3f MTPS\n",
		out.PreMRPS, out.DuringMRPS, out.RecoveredMRPS)
	o.printf("  series:")
	for _, p := range pts {
		o.printf(" %5.2f", p.Rate/1e6)
	}
	o.printf("  (MTPS per bucket)\n")
	return out
}
