// Package harness regenerates every table and figure of the paper's
// evaluation (§6). One exported function per figure builds the testbed,
// runs the workload, and returns the series/rows the paper plots; the
// cmd/benchrunner binary and the repository-root benchmarks call these.
//
// Absolute numbers come from the calibrated capacity model (see
// internal/cluster); the claims under reproduction are the shapes —
// orderings, ratios, crossovers — recorded in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"io"

	"netlock/internal/cluster"
	"netlock/internal/core"
	"netlock/internal/memalloc"
	"netlock/internal/switchdp"
)

// Options controls experiment scale and reporting.
type Options struct {
	// Quick shrinks warmups/windows and sweep densities so the whole
	// suite runs in CI time; the full mode mirrors the paper's scale.
	Quick bool
	// Out receives human-readable tables (nil: discard).
	Out io.Writer
	// Seed makes runs reproducible.
	Seed int64
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

func (o Options) printf(format string, args ...any) {
	fmt.Fprintf(o.out(), format, args...)
}

// scale returns quick or full duration values.
func (o Options) scale(quick, full int64) int64 {
	if o.Quick {
		return quick
	}
	return full
}

// us converts nanoseconds to microseconds for reporting.
func us(ns float64) float64 { return ns / 1e3 }

// msI converts an integer nanosecond latency to milliseconds.
func msI(ns int64) float64 { return float64(ns) / 1e6 }

// usI converts an integer nanosecond latency to microseconds.
func usI(ns int64) float64 { return float64(ns) / 1e3 }

// newNetLockManager builds a paper-scale NetLock instance: 100K shared
// queue slots (§5), the given lock servers, and leases driven by the
// testbed clock.
func newNetLockManager(tb *cluster.Testbed, servers, priorities int, totalSlots int) *core.Manager {
	if totalSlots == 0 {
		totalSlots = 100_000
	}
	return core.New(core.Config{
		Switch: switchdp.Config{
			MaxLocks:   16384,
			TotalSlots: totalSlots,
			Priorities: priorities,
			Now:        tb.Eng.Now,
		},
		Servers: servers,
	})
}

// requestMRPS converts a grant rate to the paper's "lock requests per
// second" metric: every granted lock costs an acquire and a release
// message, so the request rate is twice the grant rate.
func requestMRPS(grantRate float64) float64 { return 2 * grantRate / 1e6 }

// preinstall places locks 1..n in the switch with the given per-lock slot
// count, for microbenchmarks whose lock population is known up front.
func preinstall(mgr *core.Manager, n uint32, slots uint64) {
	var demands []memalloc.Demand
	for id := uint32(1); id <= n; id++ {
		demands = append(demands, memalloc.Demand{LockID: id, Rate: 1000, Contention: slots})
	}
	rep := mgr.Reallocate(demands, nil)
	if len(rep.Installed) != int(n) {
		panic(fmt.Sprintf("harness: preinstall placed %d/%d locks (deferred %d)",
			len(rep.Installed), n, len(rep.Deferred)))
	}
}
