package harness

// End-to-end TPC-C integration over the virtual-time testbed with all
// control loops enabled (this lives in harness rather than cluster because
// tpcc itself depends on cluster).

import (
	"testing"

	"netlock/internal/cluster"
	"netlock/internal/core"
	"netlock/internal/switchdp"
	"netlock/internal/tpcc"
)

func TestNetLockTPCCEndToEnd(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Seed = 7
	cfg.Clients = 4
	cfg.WorkersPerClient = 8
	tb := cluster.NewTestbed(cfg)
	mgr := core.New(core.Config{
		Switch: switchdp.Config{
			MaxLocks: 16384, TotalSlots: 100_000, Priorities: 1,
			DefaultLeaseNs: 50e6, Now: tb.Eng.Now,
		},
		Servers: 2,
	})
	svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{
		Manager:      mgr,
		AllocEveryNs: 10e6,
		SweepEveryNs: 20e6,
	})
	wl := tpcc.New(tpcc.LowContention(cfg.Clients))
	res := tb.Run(svc, wl, 30e6, 60e6)
	if res.Txns < 1000 {
		t.Fatalf("TPC-C produced only %d transactions", res.Txns)
	}
	// The allocation loop must have moved hot locks into the switch, and
	// the switch must be granting a substantial share.
	st := mgr.Switch().Stats()
	if st.GrantsImmediate+st.GrantsQueued == 0 {
		t.Fatalf("no switch grants: placement loop ineffective: %+v", st)
	}
	if len(mgr.Switch().CtrlResidentLocks()) == 0 {
		t.Fatalf("no locks resident after allocation rounds")
	}
	// Conservation: nothing left pending at the end of the run beyond the
	// workers' in-flight transactions.
	if svc.PendingAcquires() > cfg.Clients*cfg.WorkersPerClient {
		t.Fatalf("leaked pending acquires: %d", svc.PendingAcquires())
	}
}
