package harness

// The tests in this file machine-check the shape claims of every figure the
// paper reports, in Quick mode: orderings, monotonicity, crossovers, and
// recovery. EXPERIMENTS.md records the corresponding full-scale numbers.

import "testing"

func quick() Options { return Options{Quick: true, Seed: 1} }

func TestCalibrationMatchesPaper(t *testing.T) {
	c := CalibrationRun(quick())
	if c.ClientGenMRPS < 15 || c.ClientGenMRPS > 21 {
		t.Fatalf("client generation = %.1f MRPS, want ~18", c.ClientGenMRPS)
	}
	if c.Server8CoreMRPS < 15 || c.Server8CoreMRPS > 21 {
		t.Fatalf("8-core server = %.1f MRPS, want ~18", c.Server8CoreMRPS)
	}
}

func TestFig8aSharedLatencyFlat(t *testing.T) {
	pts := Fig8aSharedLocks(quick())
	if len(pts) < 3 {
		t.Fatalf("too few points")
	}
	// Latency must not grow with offered load while under the client
	// generation ceiling (all quick points are).
	first, last := pts[0], pts[len(pts)-1]
	if last.MedianUs > 2*first.MedianUs {
		t.Fatalf("median latency grew with load: %.1fus -> %.1fus", first.MedianUs, last.MedianUs)
	}
	// Single-digit-to-low-tens microseconds, as in the paper (~8us).
	for _, p := range pts {
		if p.MedianUs < 2 || p.MedianUs > 30 {
			t.Fatalf("median latency %.1fus out of the paper's range", p.MedianUs)
		}
	}
	// Offered load is achieved (switch never saturates).
	if last.AchievedMRPS < 0.9*last.OfferedMRPS {
		t.Fatalf("achieved %.1f < offered %.1f", last.AchievedMRPS, last.OfferedMRPS)
	}
}

func TestFig8bExclusiveNoContentionMatchesShared(t *testing.T) {
	a := Fig8aSharedLocks(quick())
	b := Fig8bExclusiveNoContention(quick())
	// Without contention, exclusive locks behave like shared locks.
	for i := range b {
		if b[i].MedianUs > 2*a[i].MedianUs+2 {
			t.Fatalf("exclusive-no-contention point %d much slower than shared: %.1f vs %.1f",
				i, b[i].MedianUs, a[i].MedianUs)
		}
	}
}

func TestFig8cdContentionShape(t *testing.T) {
	pts := Fig8cdExclusiveContention(quick())
	for i := 1; i < len(pts); i++ {
		if pts[i].ThroughputMRPS < pts[i-1].ThroughputMRPS*0.95 {
			t.Fatalf("throughput should rise with lock count: %+v", pts)
		}
		if pts[i].AvgUs > pts[i-1].AvgUs*1.05+1 {
			t.Fatalf("latency should fall with lock count: %+v", pts)
		}
	}
	lo, hi := pts[0], pts[len(pts)-1]
	if hi.ThroughputMRPS < 1.5*lo.ThroughputMRPS {
		t.Fatalf("contention effect too weak: %.1f -> %.1f MRPS", lo.ThroughputMRPS, hi.ThroughputMRPS)
	}
}

func TestFig9SwitchBeatsServer(t *testing.T) {
	rows := Fig9SwitchVsServer(quick())
	for _, r := range rows {
		best := 0.0
		for _, v := range r.ServerMRPS {
			if v > best {
				best = v
			}
		}
		// Paper: the switch outperforms the 8-core server by ~7x and is
		// client-bound, not switch-bound.
		if r.SwitchMRPS < 3*best {
			t.Fatalf("%s: switch %.1f MRPS should far exceed best server %.1f", r.Workload, r.SwitchMRPS, best)
		}
		// The server scales with cores (within contention limits).
		if r.ServerMRPS[len(r.ServerMRPS)-1] < r.ServerMRPS[0] {
			t.Fatalf("%s: server throughput should not fall with more cores: %v", r.Workload, r.ServerMRPS)
		}
	}
}

func TestFig10Ordering(t *testing.T) {
	rows := Fig10TPCC(quick())
	byKey := map[string]SystemRow{}
	for _, r := range rows {
		byKey[r.System+"/"+r.Contention] = r
	}
	for _, c := range []string{"low", "high"} {
		nl := byKey["NetLock/"+c]
		for _, sys := range []string{"DSLR", "DrTM", "NetChain"} {
			b := byKey[sys+"/"+c]
			if nl.TxnMTPS <= b.TxnMTPS {
				t.Errorf("%s contention: NetLock (%.3f MTPS) should beat %s (%.3f)", c, nl.TxnMTPS, sys, b.TxnMTPS)
			}
			if nl.AvgLatMs >= b.AvgLatMs {
				t.Errorf("%s contention: NetLock avg latency (%.3f ms) should beat %s (%.3f)", c, nl.AvgLatMs, sys, b.AvgLatMs)
			}
			if nl.P99LatMs >= b.P99LatMs {
				t.Errorf("%s contention: NetLock p99 (%.3f ms) should beat %s (%.3f)", c, nl.P99LatMs, sys, b.P99LatMs)
			}
		}
		// Paper's ordering among the baselines: NetChain > DSLR > DrTM.
		if byKey["NetChain/"+c].TxnMTPS <= byKey["DrTM/"+c].TxnMTPS {
			t.Errorf("%s: NetChain should beat DrTM", c)
		}
		if byKey["DSLR/"+c].TxnMTPS <= byKey["DrTM/"+c].TxnMTPS {
			t.Errorf("%s: DSLR should beat DrTM", c)
		}
	}
}

func TestFig11Ordering(t *testing.T) {
	rows := Fig11TPCC(quick())
	byKey := map[string]SystemRow{}
	for _, r := range rows {
		byKey[r.System+"/"+r.Contention] = r
	}
	for _, c := range []string{"low", "high"} {
		nl := byKey["NetLock/"+c]
		for _, sys := range []string{"DSLR", "DrTM", "NetChain"} {
			if nl.TxnMTPS <= byKey[sys+"/"+c].TxnMTPS {
				t.Errorf("%s contention: NetLock should beat %s", c, sys)
			}
		}
	}
}

func TestFig12aDifferentiation(t *testing.T) {
	series := Fig12aServiceDiff(quick())
	if len(series) != 4 {
		t.Fatalf("want 4 series")
	}
	// Average rate over the second half (both tenants active).
	tail := func(s Series) float64 {
		pts := s.Points
		var sum float64
		n := 0
		for _, p := range pts[len(pts)/2:] {
			sum += p.Rate
			n++
		}
		return sum / float64(n)
	}
	woLo, woHi := tail(series[0]), tail(series[1])
	wLo, wHi := tail(series[2]), tail(series[3])
	if woHi > 1.5*woLo || woLo > 1.5*woHi {
		t.Fatalf("w/o differentiation tenants should be similar: lo=%.0f hi=%.0f", woLo, woHi)
	}
	if wHi < 2.5*wLo {
		t.Fatalf("w/ differentiation high priority should dominate: lo=%.0f hi=%.0f", wLo, wHi)
	}
}

func TestFig12bIsolation(t *testing.T) {
	rows := Fig12bIsolation(quick())
	wo, w := rows[0], rows[1]
	if wo.Tenant1MTPS < 1.8*wo.Tenant2MTPS {
		t.Fatalf("w/o isolation tenant1 should dominate: %+v", wo)
	}
	ratio := w.Tenant1MTPS / w.Tenant2MTPS
	if ratio > 1.3 || ratio < 0.7 {
		t.Fatalf("w/ isolation tenants should be similar: %+v", w)
	}
}

func TestFig13aKnapsackBeatsRandom(t *testing.T) {
	rows := Fig13aMemAlloc(quick())
	random, knap := rows[0], rows[1]
	if knap.TotalMRPS < 1.2*random.TotalMRPS {
		t.Fatalf("knapsack (%.2f) should clearly beat random (%.2f)", knap.TotalMRPS, random.TotalMRPS)
	}
	// Knapsack processes most of its requests in the switch; random leaves
	// them to the servers.
	if knap.SwitchMRPS < knap.ServerMRPS {
		t.Fatalf("knapsack should be switch-dominant: %+v", knap)
	}
	if random.SwitchMRPS > random.ServerMRPS {
		t.Fatalf("random should be server-dominant: %+v", random)
	}
}

func TestFig13bCDFKnapsackLeft(t *testing.T) {
	series := Fig13bMemAllocCDF(quick())
	knap, random := series[0], series[1]
	for _, q := range []float64{0.5, 0.9, 0.99} {
		k, r := cdfValueAt(knap.Points, q), cdfValueAt(random.Points, q)
		if k > r {
			t.Fatalf("knapsack p%.0f (%dns) should be <= random (%dns)", q*100, k, r)
		}
	}
}

func TestFig14aThinkTimeShape(t *testing.T) {
	series := Fig14aThinkTime(quick())
	// think=0 is first, think=100us last.
	fast, slow := series[0], series[len(series)-1]
	lastIdx := len(fast.MRPS) - 1
	if fast.MRPS[lastIdx] < 1.5*slow.MRPS[lastIdx] {
		t.Fatalf("think=0 (%.2f) should far exceed think=100us (%.2f) at max memory",
			fast.MRPS[lastIdx], slow.MRPS[lastIdx])
	}
	// Throughput grows (or saturates) with memory for the fast case.
	if fast.MRPS[lastIdx] < fast.MRPS[0] {
		t.Fatalf("throughput should not fall with more memory: %v", fast.MRPS)
	}
}

func TestFig14bAllocSweepShape(t *testing.T) {
	series := Fig14bAllocSweep(quick())
	knap, random := series[0], series[1]
	last := len(knap.MRPS) - 1
	if knap.MRPS[last] < 1.15*random.MRPS[last] {
		t.Fatalf("knapsack (%.2f) should beat random (%.2f) at max memory", knap.MRPS[last], random.MRPS[last])
	}
	for i := range knap.MRPS {
		if knap.MRPS[i] < random.MRPS[i]*0.9 {
			t.Fatalf("knapsack should never lose to random: %v vs %v", knap.MRPS, random.MRPS)
		}
	}
}

func TestFig15FailureRecovery(t *testing.T) {
	res := Fig15Failure(quick())
	if res.PreMRPS <= 0 {
		t.Fatalf("no pre-failure throughput")
	}
	if res.DuringMRPS > 0.05*res.PreMRPS {
		t.Fatalf("throughput should collapse during failure: pre=%.2f during=%.2f", res.PreMRPS, res.DuringMRPS)
	}
	if res.RecoveredMRPS < 0.8*res.PreMRPS {
		t.Fatalf("throughput should recover: pre=%.2f recovered=%.2f", res.PreMRPS, res.RecoveredMRPS)
	}
}
