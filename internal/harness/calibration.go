package harness

import (
	"netlock/internal/cluster"
	"netlock/internal/wire"
	"netlock/internal/workload"
)

// Calibration reports the testbed's calibrated capacity ceilings against
// the paper's measured constants (§5): a client machine generating up to
// 18M lock requests/s with a 40G NIC, and a lock server processing up to
// 18M requests/s with 8 DPDK cores. Requests count both acquire and
// release messages.
type Calibration struct {
	ClientGenMRPS   float64 // one client machine, closed loop, uncontended
	Server8CoreMRPS float64 // one 8-core lock server, uncontended locks
}

// CalibrationRun measures both ceilings.
func CalibrationRun(o Options) Calibration {
	var out Calibration
	warm, win := o.scale(1e6, 5e6), o.scale(5e6, 20e6)

	// Client generation ceiling: one client machine with enough closed-loop
	// concurrency to keep its NIC busy, shared locks on the switch
	// (nothing downstream can bottleneck).
	{
		cfg := cluster.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Clients = 1
		cfg.WorkersPerClient = 512
		tb := cluster.NewTestbed(cfg)
		mgr := newNetLockManager(tb, 1, 1, 0)
		preinstall(mgr, 100, 600)
		svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{Manager: mgr})
		res := tb.Run(svc, &workload.Micro{Locks: 100, Mode: wire.Shared}, warm, win)
		out.ClientGenMRPS = requestMRPS(res.LockRate)
	}

	// Server ceiling: many clients drive one 8-core server with
	// uncontended exclusive locks.
	{
		cfg := cluster.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Clients = 10
		cfg.WorkersPerClient = 256
		tb := cluster.NewTestbed(cfg)
		svc := cluster.NewCentralService(tb, cluster.DefaultCentralOptions(1, 8))
		wl := &workload.Micro{Locks: 4096, Mode: wire.Exclusive, PerClientDisjoint: true}
		res := tb.Run(svc, wl, warm, win)
		out.Server8CoreMRPS = requestMRPS(res.LockRate)
	}

	o.printf("Calibration — client generation: %.1f MRPS (paper: 18); 8-core lock server: %.1f MRPS (paper: 18)\n",
		out.ClientGenMRPS, out.Server8CoreMRPS)
	return out
}
