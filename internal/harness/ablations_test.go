package harness

import "testing"

func TestAblationOneRTT(t *testing.T) {
	res := AblationOneRTT(quick())
	// The one-RTT mode must beat basic-lock-plus-separate-fetch, and must
	// cost more than the bare lock (it includes the data fetch).
	if res.OneRTTUs >= res.BasicLockUs+res.FetchUs {
		t.Fatalf("one-RTT (%.1fus) should beat basic+fetch (%.1fus)",
			res.OneRTTUs, res.BasicLockUs+res.FetchUs)
	}
	if res.OneRTTUs <= res.BasicLockUs {
		t.Fatalf("one-RTT (%.1fus) includes the fetch and should exceed the bare lock (%.1fus)",
			res.OneRTTUs, res.BasicLockUs)
	}
}

func TestAblationResubmit(t *testing.T) {
	res := AblationResubmit(quick())
	if res.GrantsQueued == 0 {
		t.Fatalf("shared-heavy contention should exercise the grant walk")
	}
	// Every packet takes at least one pass; walks add more.
	if res.PassesPerPacket <= 1.0 {
		t.Fatalf("passes/packet = %.2f, want > 1 under contention", res.PassesPerPacket)
	}
	// The walk is bounded: a sane workload stays far from the region size.
	if res.PassesPerPacket > 16 {
		t.Fatalf("passes/packet = %.2f, implausibly high", res.PassesPerPacket)
	}
}

func TestAblationAllocPolicies(t *testing.T) {
	rows := AblationAllocPolicies(quick())
	byName := map[string]AllocPolicyRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	knap := byName["knapsack"]
	// The optimal policy should not lose to either strawman.
	for _, other := range []string{"random", "equal-split"} {
		if knap.LockMRPS < byName[other].LockMRPS*0.95 {
			t.Fatalf("knapsack (%.3f MRPS) lost to %s (%.3f MRPS)",
				knap.LockMRPS, other, byName[other].LockMRPS)
		}
	}
}

func TestAblationCoarsening(t *testing.T) {
	rows := AblationCoarsening(quick())
	row, page := rows[0], rows[1]
	if page.SwitchShare <= row.SwitchShare {
		t.Fatalf("coarsening should raise the switch-processed share: row=%.2f page=%.2f",
			row.SwitchShare, page.SwitchShare)
	}
	if page.TxnMTPS < row.TxnMTPS*0.9 {
		t.Fatalf("coarsening should not lose throughput: row=%.3f page=%.3f",
			row.TxnMTPS, page.TxnMTPS)
	}
}
