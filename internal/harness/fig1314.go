package harness

import (
	"math/rand"

	"netlock/internal/cluster"
	"netlock/internal/core"
	"netlock/internal/memalloc"
	"netlock/internal/stats"
	"netlock/internal/tpcc"
)

// randomAllocator is the strawman placement policy of Figures 13/14b.
func randomAllocator(seed int64) core.Allocator {
	rng := rand.New(rand.NewSource(seed))
	return func(demands []memalloc.Demand, capacity uint64) memalloc.Plan {
		return memalloc.Random(demands, capacity, rng)
	}
}

// runMemExperiment runs TPC-C (low contention, 10 clients, 2 lock servers)
// with the given switch memory size, allocator, and think time; it returns
// the run result plus the switch/server processing split.
func runMemExperiment(o Options, slots int, alloc core.Allocator, thinkNs int64, collectCDF bool) (cluster.Result, float64, float64, []stats.CDFPoint) {
	cfg := cluster.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Clients = 10
	cfg.WorkersPerClient = 16
	tb := cluster.NewTestbed(cfg)
	mgr := newNetLockManager(tb, 2, 1, slots)
	svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{
		Manager:      mgr,
		AllocEveryNs: o.scale(10e6, 25e6),
		Allocator:    alloc,
	})
	wcfg := tpcc.LowContention(cfg.Clients)
	wcfg.ThinkNs = thinkNs
	wl := tpcc.New(wcfg)
	warm, win := o.scale(30e6, 120e6), o.scale(50e6, 200e6)
	res := tb.Run(svc, wl, warm, win)
	st := mgr.Switch().Stats()
	switchGrants := float64(st.GrantsImmediate + st.GrantsQueued)
	var serverGrants float64
	for i := 0; i < mgr.NumServers(); i++ {
		ss := mgr.Server(i).Stats()
		serverGrants += float64(ss.GrantsImmediate + ss.GrantsQueued)
	}
	var cdf []stats.CDFPoint
	if collectCDF {
		cdf = tb.TxnLatency.CDF(64)
	}
	// The split counters cover the whole run (not just the window); the
	// ratio is what Figure 13a plots, applied to the windowed rate.
	total := switchGrants + serverGrants
	if total == 0 {
		total = 1
	}
	swRate := res.LockRate * switchGrants / total
	srvRate := res.LockRate * serverGrants / total
	return res, swRate, srvRate, cdf
}

// AllocRow is one bar group of Figure 13a.
type AllocRow struct {
	Allocator  string
	SwitchMRPS float64
	ServerMRPS float64
	TotalMRPS  float64
}

// Fig13aMemAlloc reproduces Figure 13a: with limited switch memory, the
// optimal knapsack allocation processes most requests in the switch; the
// random split leaves them to the servers and loses several-fold total
// throughput.
func Fig13aMemAlloc(o Options) []AllocRow {
	const slots = 3000
	_, swK, srvK, _ := runMemExperiment(o, slots, nil, 10_000, false)
	_, swR, srvR, _ := runMemExperiment(o, slots, randomAllocator(o.Seed+1), 10_000, false)
	rows := []AllocRow{
		{Allocator: "random", SwitchMRPS: swR / 1e6, ServerMRPS: srvR / 1e6, TotalMRPS: (swR + srvR) / 1e6},
		{Allocator: "knapsack", SwitchMRPS: swK / 1e6, ServerMRPS: srvK / 1e6, TotalMRPS: (swK + srvK) / 1e6},
	}
	o.printf("Figure 13a — memory allocation mechanisms (TPC-C, %d switch slots)\n", slots)
	for _, r := range rows {
		o.printf("  %-9s switch=%.3f MRPS server=%.3f MRPS total=%.3f MRPS\n",
			r.Allocator, r.SwitchMRPS, r.ServerMRPS, r.TotalMRPS)
	}
	return rows
}

// CDFSeries is one curve of Figure 13b.
type CDFSeries struct {
	Allocator string
	Points    []stats.CDFPoint
}

// Fig13bMemAllocCDF reproduces Figure 13b: the transaction latency CDF
// under the two allocators; knapsack sits strictly left of random,
// especially at the tail.
func Fig13bMemAllocCDF(o Options) []CDFSeries {
	const slots = 3000
	_, _, _, cdfK := runMemExperiment(o, slots, nil, 10_000, true)
	_, _, _, cdfR := runMemExperiment(o, slots, randomAllocator(o.Seed+1), 10_000, true)
	out := []CDFSeries{
		{Allocator: "knapsack", Points: cdfK},
		{Allocator: "random", Points: cdfR},
	}
	o.printf("Figure 13b — transaction latency CDF\n")
	for _, s := range out {
		o.printf("  %-9s", s.Allocator)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			o.printf(" p%.0f<=%.0fus", q*100, float64(cdfValueAt(s.Points, q))/1e3)
		}
		o.printf("\n")
	}
	return out
}

// cdfValueAt returns the smallest value whose CDF fraction reaches q.
func cdfValueAt(pts []stats.CDFPoint, q float64) int64 {
	for _, p := range pts {
		if p.Fraction >= q {
			return p.Value
		}
	}
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].Value
}

// MemSweepSeries is one curve of Figures 14a/14b: throughput vs switch
// memory size.
type MemSweepSeries struct {
	Label string
	Slots []int
	MRPS  []float64
}

func memSizes(o Options) []int {
	if o.Quick {
		return []int{500, 2000, 8000}
	}
	return []int{250, 500, 1000, 2000, 4000, 8000, 16000, 40000}
}

// Fig14aThinkTime reproduces Figure 14a: throughput vs switch memory under
// think times of 0/5/10/100 µs. Longer think times hold queue slots
// longer, lowering the per-slot turnover rate and the achievable
// throughput for a given memory size (§4.5).
func Fig14aThinkTime(o Options) []MemSweepSeries {
	thinks := []int64{0, 5_000, 10_000, 100_000}
	var out []MemSweepSeries
	for _, think := range thinks {
		s := MemSweepSeries{Label: labelThink(think)}
		for _, slots := range memSizes(o) {
			res, _, _, _ := runMemExperiment(o, slots, nil, think, false)
			s.Slots = append(s.Slots, slots)
			s.MRPS = append(s.MRPS, res.LockRate/1e6)
		}
		out = append(out, s)
	}
	o.printf("Figure 14a — switch memory size vs think time (TPC-C)\n")
	printMemSweep(o, out)
	return out
}

func labelThink(ns int64) string {
	switch ns {
	case 0:
		return "think=0us"
	case 5_000:
		return "think=5us"
	case 10_000:
		return "think=10us"
	default:
		return "think=100us"
	}
}

// Fig14bAllocSweep reproduces Figure 14b: throughput vs switch memory for
// the knapsack and random allocators. Knapsack reaches the workload's
// maximum with a few thousand slots; random stays flat because extra
// memory keeps landing on unpopular locks.
func Fig14bAllocSweep(o Options) []MemSweepSeries {
	var out []MemSweepSeries
	for _, alloc := range []string{"knapsack", "random"} {
		s := MemSweepSeries{Label: alloc}
		for _, slots := range memSizes(o) {
			var a core.Allocator
			if alloc == "random" {
				a = randomAllocator(o.Seed + 1)
			}
			res, _, _, _ := runMemExperiment(o, slots, a, 10_000, false)
			s.Slots = append(s.Slots, slots)
			s.MRPS = append(s.MRPS, res.LockRate/1e6)
		}
		out = append(out, s)
	}
	o.printf("Figure 14b — switch memory size vs allocation mechanism (TPC-C)\n")
	printMemSweep(o, out)
	return out
}

func printMemSweep(o Options, series []MemSweepSeries) {
	o.printf("  %-12s", "slots")
	for _, n := range memSizes(o) {
		o.printf(" %7d", n)
	}
	o.printf("\n")
	for _, s := range series {
		o.printf("  %-12s", s.Label)
		for _, v := range s.MRPS {
			o.printf(" %7.3f", v)
		}
		o.printf("  (MRPS)\n")
	}
}
