package harness

import (
	"netlock/internal/cluster"
	"netlock/internal/wire"
	"netlock/internal/workload"
)

// Fig9Row is one workload row of Figure 9: the lock switch against a lock
// server with 1..8 cores.
type Fig9Row struct {
	Workload   string
	SwitchMRPS float64
	// ServerMRPS[i] is the throughput with i+1 cores.
	ServerMRPS []float64
}

// Fig9SwitchVsServer reproduces Figure 9: ten clients drive three
// microbenchmark workloads against (a) the NetLock switch and (b) a
// traditional server-only lock manager with 1–8 cores. The server scales
// roughly linearly with cores to its DPDK ceiling; the switch is never
// saturated and outperforms the 8-core server several-fold.
func Fig9SwitchVsServer(o Options) []Fig9Row {
	type wlCase struct {
		name     string
		mode     wire.Mode
		locks    uint32
		disjoint bool
	}
	cases := []wlCase{
		{"shared", wire.Shared, 5000, false},
		// 1000 disjoint locks per client keep contention at zero while
		// fitting the switch lock table.
		{"exclusive w/o contention", wire.Exclusive, 1000, true},
		{"exclusive w/ contention", wire.Exclusive, 5000, false},
	}
	cores := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if o.Quick {
		cores = []int{1, 4, 8}
	}
	warm, win := o.scale(1e6, 5e6), o.scale(5e6, 25e6)

	var rows []Fig9Row
	for _, wc := range cases {
		wl := &workload.Micro{Locks: wc.locks, Mode: wc.mode, PerClientDisjoint: wc.disjoint}
		row := Fig9Row{Workload: wc.name}

		// Switch side: every lock resident.
		cfg := cluster.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Clients = 10
		cfg.WorkersPerClient = 128
		tb := cluster.NewTestbed(cfg)
		mgr := newNetLockManager(tb, 1, 1, 200_000)
		n := wc.locks
		if wc.disjoint {
			n = wl.MaxLockID(cfg.Clients)
		}
		slots := uint64(2)
		if !wc.disjoint {
			slots = uint64(2*cfg.Clients*cfg.WorkersPerClient/int(wc.locks) + 2)
		}
		preinstall(mgr, n, slots)
		svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{Manager: mgr})
		res := tb.Run(svc, wl, warm, win)
		row.SwitchMRPS = requestMRPS(res.LockRate)

		// Server side: sweep core counts.
		for _, c := range cores {
			cfgS := cluster.DefaultConfig()
			cfgS.Seed = o.Seed
			cfgS.Clients = 10
			cfgS.WorkersPerClient = 128
			tbS := cluster.NewTestbed(cfgS)
			srv := cluster.NewCentralService(tbS, cluster.DefaultCentralOptions(1, c))
			resS := tbS.Run(srv, wl, warm, win)
			row.ServerMRPS = append(row.ServerMRPS, requestMRPS(resS.LockRate))
		}
		rows = append(rows, row)
	}

	o.printf("Figure 9 — lock switch vs lock server (10 clients)\n")
	o.printf("  %-26s %10s", "workload", "switch")
	for _, c := range cores {
		o.printf(" %6d-core", c)
	}
	o.printf("\n")
	for _, r := range rows {
		o.printf("  %-26s %7.1f MRPS", r.Workload, r.SwitchMRPS)
		for _, v := range r.ServerMRPS {
			o.printf(" %10.1f", v)
		}
		o.printf("\n")
	}
	return rows
}
