package harness

// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out: the one-RTT transaction mode (§4.1), resubmit amplification of
// the shared-grant walk (§4.2), per-lock memory allocation policies versus
// an equal-split static binding (§4.2's motivation for the shared queue),
// and lock coarsening for uniform tables (§4.5).

import (
	"netlock/internal/cluster"
	"netlock/internal/core"
	"netlock/internal/memalloc"
	"netlock/internal/tpcc"
	"netlock/internal/wire"
	"netlock/internal/workload"
)

// OneRTTResult compares the basic mode (grant to client, client fetches
// data separately) with the one-RTT mode (grant forwarded to the database
// server, which replies with the data) on an uncontended microbenchmark.
type OneRTTResult struct {
	// BasicLockUs is the basic-mode lock acquisition latency; the data
	// fetch costs an additional FetchUs on top.
	BasicLockUs float64
	FetchUs     float64
	// OneRTTUs is the one-RTT mode's combined lock+fetch latency.
	OneRTTUs float64
}

// AblationOneRTT measures the §4.1 one-RTT optimization: combined
// lock-acquisition and data-fetch in a single round trip versus the basic
// grant-then-fetch sequence.
func AblationOneRTT(o Options) OneRTTResult {
	run := func(oneRTT bool) cluster.Result {
		cfg := cluster.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Clients = 2
		// Low concurrency: the single database station must stay far from
		// saturation so the comparison measures path length, not queueing.
		cfg.WorkersPerClient = 2
		tb := cluster.NewTestbed(cfg)
		mgr := newNetLockManager(tb, 1, 1, 0)
		preinstall(mgr, 1000, 4)
		svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{Manager: mgr})
		wl := &workload.Micro{Locks: 1000, Mode: wire.Exclusive, OneRTT: oneRTT}
		return tb.Run(svc, wl, o.scale(1e6, 5e6), o.scale(5e6, 20e6))
	}
	basic := run(false)
	one := run(true)
	cfg := cluster.DefaultConfig()
	// The basic mode's separate data fetch: client -> db -> client.
	fetch := float64(2*cfg.HopNs+cfg.DBServiceNs+2*cfg.ClientOverheadNs) / 1e3
	res := OneRTTResult{
		BasicLockUs: basic.LockLat.Mean / 1e3,
		FetchUs:     fetch,
		OneRTTUs:    one.LockLat.Mean / 1e3,
	}
	o.printf("Ablation: one-RTT transactions — basic lock %.1fus + fetch %.1fus = %.1fus total vs one-RTT %.1fus\n",
		res.BasicLockUs, res.FetchUs, res.BasicLockUs+res.FetchUs, res.OneRTTUs)
	return res
}

// ResubmitResult reports how many pipeline passes the data plane consumes
// per packet under a shared-heavy release pattern, the cost of Algorithm
// 2's grant walk.
type ResubmitResult struct {
	PassesPerPacket float64
	GrantsQueued    uint64
	Packets         uint64
}

// AblationResubmit measures resubmit amplification: exclusive releases that
// hand a run of shared requests to the queue resubmit once per granted
// request (Figure 6, exclusive -> shared), so shared-heavy contention
// multiplies switch occupancy.
func AblationResubmit(o Options) ResubmitResult {
	cfg := cluster.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Clients = 8
	cfg.WorkersPerClient = 16
	tb := cluster.NewTestbed(cfg)
	mgr := newNetLockManager(tb, 1, 1, 0)
	preinstall(mgr, 4, 512)
	svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{Manager: mgr})
	// 10% exclusive: every exclusive release grants a run of shared
	// requests via the resubmit walk.
	wl := &workload.Mixed{Locks: 4, ExclusiveFraction: 0.1, ThinkNs: 2_000}
	tb.Run(svc, wl, o.scale(1e6, 5e6), o.scale(10e6, 40e6))
	pipe := mgr.Switch().Pipeline()
	res := ResubmitResult{
		PassesPerPacket: float64(pipe.Passes()) / float64(pipe.Packets()),
		GrantsQueued:    mgr.Switch().Stats().GrantsQueued,
		Packets:         pipe.Packets(),
	}
	o.printf("Ablation: resubmit amplification — %.2f passes/packet over %d packets (%d walk grants)\n",
		res.PassesPerPacket, res.Packets, res.GrantsQueued)
	return res
}

// AllocPolicyRow compares memory-allocation policies under a skewed
// microbenchmark.
type AllocPolicyRow struct {
	Policy   string
	LockMRPS float64
	AvgUs    float64
}

// AblationAllocPolicies compares three ways to divide the switch queue
// memory under a Zipf-skewed workload: the optimal knapsack (§4.3), a
// random split (Figure 13's strawman), and an equal static split — the
// fragmentation-prone per-lock binding whose weakness motivates the shared
// queue design (§4.2).
func AblationAllocPolicies(o Options) []AllocPolicyRow {
	equalSplit := func(demands []memalloc.Demand, capacity uint64) memalloc.Plan {
		if len(demands) == 0 {
			return memalloc.Plan{}
		}
		per := capacity / uint64(len(demands))
		if per == 0 {
			per = 1
		}
		var plan memalloc.Plan
		used := uint64(0)
		for _, d := range demands {
			if used+per > capacity {
				plan.Server = append(plan.Server, d.LockID)
				continue
			}
			plan.Switch = append(plan.Switch, memalloc.Allocation{LockID: d.LockID, Slots: per})
			used += per
			if d.Contention > 0 {
				s := per
				if s > d.Contention {
					s = d.Contention
				}
				plan.GuaranteedRate += d.Rate * float64(s) / float64(d.Contention)
			}
		}
		return plan
	}
	policies := []struct {
		name  string
		alloc core.Allocator
	}{
		{"knapsack", nil},
		{"random", randomAllocator(o.Seed + 1)},
		{"equal-split", equalSplit},
	}
	var rows []AllocPolicyRow
	for _, p := range policies {
		cfg := cluster.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Clients = 8
		cfg.WorkersPerClient = 24
		tb := cluster.NewTestbed(cfg)
		// Small switch memory so policy matters.
		mgr := newNetLockManager(tb, 2, 1, 2000)
		svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{
			Manager:      mgr,
			AllocEveryNs: o.scale(10e6, 20e6),
			Allocator:    p.alloc,
		})
		wl := &workload.Micro{Locks: 10_000, Mode: wire.Exclusive, ZipfS: 1.3, ThinkNs: 2_000}
		res := tb.Run(svc, wl, o.scale(25e6, 80e6), o.scale(40e6, 150e6))
		rows = append(rows, AllocPolicyRow{
			Policy:   p.name,
			LockMRPS: res.LockRate / 1e6,
			AvgUs:    res.LockLat.Mean / 1e3,
		})
	}
	o.printf("Ablation: allocation policies under Zipf(1.3), 2000 switch slots\n")
	for _, r := range rows {
		o.printf("  %-12s %7.3f MRPS avg=%.1fus\n", r.Policy, r.LockMRPS, r.AvgUs)
	}
	return rows
}

// CoarseningRow compares stock-lock granularities under TPC-C high
// contention (§4.5's coarsening rule for uniform tables).
type CoarseningRow struct {
	Granularity string
	TxnMTPS     float64
	AvgLatMs    float64
	SwitchShare float64 // fraction of grants processed by the switch
}

// AblationCoarsening quantifies the §4.5 coarse-grained locking rule:
// row-granularity stock locks are individually cold and unplaceable, so
// most traffic pays the server path; page-granularity locks fit the switch.
func AblationCoarsening(o Options) []CoarseningRow {
	run := func(pages int) CoarseningRow {
		cfg := cluster.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.Clients = 10
		cfg.WorkersPerClient = 24
		tb := cluster.NewTestbed(cfg)
		mgr := newNetLockManager(tb, 2, 1, 0)
		svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{
			Manager:      mgr,
			AllocEveryNs: o.scale(10e6, 25e6),
		})
		wcfg := tpcc.HighContention(cfg.Clients)
		wcfg.StockPages = pages
		wl := tpcc.New(wcfg)
		// Long warmup: placement needs several rounds to install thousands
		// of page locks (busy ones via the pause-and-move protocol).
		res := tb.Run(svc, wl, o.scale(100e6, 200e6), o.scale(60e6, 200e6))
		st := mgr.Switch().Stats()
		sw := float64(st.GrantsImmediate + st.GrantsQueued)
		var srv float64
		for i := 0; i < mgr.NumServers(); i++ {
			ss := mgr.Server(i).Stats()
			srv += float64(ss.GrantsImmediate + ss.GrantsQueued)
		}
		name := "row-level"
		if pages > 0 {
			name = "page-level"
		}
		return CoarseningRow{
			Granularity: name,
			TxnMTPS:     res.TxnRate / 1e6,
			AvgLatMs:    res.TxnLat.Mean / 1e6,
			SwitchShare: sw / (sw + srv),
		}
	}
	rows := []CoarseningRow{run(0), run(500)}
	o.printf("Ablation: stock-lock coarsening (TPC-C high contention)\n")
	for _, r := range rows {
		o.printf("  %-10s %6.3f MTPS avg=%.3fms switch-share=%.0f%%\n",
			r.Granularity, r.TxnMTPS, r.AvgLatMs, r.SwitchShare*100)
	}
	return rows
}
