package harness

import (
	"netlock/internal/cluster"
	"netlock/internal/tpcc"
)

// SystemRow is one (system, contention) cell of Figures 10 and 11.
type SystemRow struct {
	System     string
	Contention string // "low" or "high"
	LockMRPS   float64
	TxnMTPS    float64
	AvgLatMs   float64
	P99LatMs   float64
}

// tpccSystems runs the four systems on TPC-C with the given rack shape.
func tpccSystems(o Options, clients, lockServers int) []SystemRow {
	warm, win := o.scale(30e6, 150e6), o.scale(50e6, 250e6)
	var rows []SystemRow
	for _, contention := range []string{"low", "high"} {
		mkWL := func() *tpcc.Workload {
			if contention == "low" {
				return tpcc.New(tpcc.LowContention(clients))
			}
			return tpcc.New(tpcc.HighContention(clients))
		}
		mkCfg := func() cluster.Config {
			cfg := cluster.DefaultConfig()
			cfg.Seed = o.Seed
			cfg.Clients = clients
			cfg.WorkersPerClient = 24
			return cfg
		}
		maxID := tpcc.New(tpcc.LowContention(clients)).MaxLockID()

		// DSLR.
		{
			tb := cluster.NewTestbed(mkCfg())
			svc := cluster.NewDSLRService(tb, cluster.DefaultDSLROptions(lockServers, maxID))
			rows = append(rows, toRow(tb.Run(svc, mkWL(), warm, win), contention))
		}
		// DrTM.
		{
			tb := cluster.NewTestbed(mkCfg())
			svc := cluster.NewDrTMService(tb, cluster.DefaultDrTMOptions(lockServers, maxID))
			rows = append(rows, toRow(tb.Run(svc, mkWL(), warm, win), contention))
		}
		// NetChain: switch only, granularity-adapted table.
		{
			tb := cluster.NewTestbed(mkCfg())
			svc := cluster.NewNetChainService(tb, cluster.DefaultNetChainOptions(100_000))
			rows = append(rows, toRow(tb.Run(svc, mkWL(), warm, win), contention))
		}
		// NetLock: switch + lock servers, allocation loop self-tunes
		// placement during warmup.
		{
			tb := cluster.NewTestbed(mkCfg())
			mgr := newNetLockManager(tb, lockServers, 1, 0)
			svc := cluster.NewNetLockService(tb, cluster.NetLockOptions{
				Manager:      mgr,
				AllocEveryNs: o.scale(10e6, 25e6),
			})
			rows = append(rows, toRow(tb.Run(svc, mkWL(), warm, win), contention))
		}
	}
	return rows
}

func toRow(res cluster.Result, contention string) SystemRow {
	return SystemRow{
		System:     res.System,
		Contention: contention,
		LockMRPS:   res.LockRate / 1e6,
		TxnMTPS:    res.TxnRate / 1e6,
		AvgLatMs:   res.TxnLat.Mean / 1e6,
		P99LatMs:   msI(res.TxnLat.P99),
	}
}

func printSystemRows(o Options, title string, rows []SystemRow) {
	o.printf("%s\n", title)
	o.printf("  %-11s %-5s %12s %12s %10s %10s\n",
		"system", "cont.", "lock tput", "txn tput", "avg lat", "p99 lat")
	for _, r := range rows {
		o.printf("  %-11s %-5s %7.3f MRPS %7.3f MTPS %7.3f ms %7.3f ms\n",
			r.System, r.Contention, r.LockMRPS, r.TxnMTPS, r.AvgLatMs, r.P99LatMs)
	}
}

// Fig10TPCC reproduces Figure 10: TPC-C with ten clients and two lock
// servers. Expected shape: NetLock > NetChain > DSLR > DrTM in throughput;
// NetLock lowest in average and tail latency.
func Fig10TPCC(o Options) []SystemRow {
	rows := tpccSystems(o, 10, 2)
	printSystemRows(o, "Figure 10 — TPC-C, 10 clients / 2 lock servers", rows)
	return rows
}

// Fig11TPCC reproduces Figure 11: six clients and six lock servers. Same
// ordering as Figure 10 with smaller gaps (the servers are less loaded).
func Fig11TPCC(o Options) []SystemRow {
	rows := tpccSystems(o, 6, 6)
	printSystemRows(o, "Figure 11 — TPC-C, 6 clients / 6 lock servers", rows)
	return rows
}
