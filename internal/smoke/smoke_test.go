// Package smoke compiles every binary in cmd/ and examples/ and runs the
// fast ones end to end: each example must exit cleanly, and the
// netlockd/lockclient pair must complete a short real-UDP benchmark with
// at least one grant. This keeps the binaries from bit-rotting without
// being exercised by the library test suites.
package smoke

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"netlock"
	"netlock/internal/transport"
)

// mains lists every main package in the repository.
var mains = []string{
	"cmd/benchrunner",
	"cmd/loadgen",
	"cmd/lockclient",
	"cmd/netlockd",
	"examples/failover",
	"examples/multitenant",
	"examples/quickstart",
	"examples/tpcc",
	"examples/udprack",
}

// examples are the mains that run standalone to completion in seconds.
var examples = []string{
	"examples/failover",
	"examples/multitenant",
	"examples/quickstart",
	"examples/tpcc",
	"examples/udprack",
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// buildAll compiles every main package into dir and returns the binary
// paths keyed by package path.
func buildAll(t *testing.T, dir string) map[string]string {
	t.Helper()
	root := repoRoot(t)
	args := append([]string{"build", "-o", dir + string(filepath.Separator)},
		func() []string {
			var pkgs []string
			for _, m := range mains {
				pkgs = append(pkgs, "./"+m)
			}
			return pkgs
		}()...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	bins := make(map[string]string)
	for _, m := range mains {
		bins[m] = filepath.Join(dir, filepath.Base(m))
	}
	return bins
}

func TestExamplesRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildAll(t, t.TempDir())
	for _, ex := range examples {
		ex := ex
		t.Run(filepath.Base(ex), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, bins[ex]).CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s: no output", ex)
			}
		})
	}
}

func TestLoadgenSelfHosted(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildAll(t, t.TempDir())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	out, err := exec.CommandContext(ctx, bins["cmd/loadgen"],
		"-duration", "500ms", "-workers", "8", "-locks", "8",
		"-report", "0").CombinedOutput()
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out)
	}
	m := regexp.MustCompile(`\((\d+) ops`).FindSubmatch(out)
	if m == nil || string(m[1]) == "0" {
		t.Fatalf("loadgen completed without ops:\n%s", out)
	}
}

func TestNetlockdLockclientEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildAll(t, t.TempDir())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	daemon := exec.CommandContext(ctx, bins["cmd/netlockd"],
		"-listen", "127.0.0.1:0", "-servers", "2", "-preinstall", "32")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	// The daemon announces its metrics endpoint and then
	// "netlockd: switch on <addr>" once it is up.
	var addr, metricsURL string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		fmt.Sscanf(sc.Text(), "netlockd: metrics on %s", &metricsURL)
		if _, err := fmt.Sscanf(sc.Text(), "netlockd: switch on %s", &addr); err == nil {
			break
		}
	}
	if addr == "" {
		t.Fatalf("netlockd never announced its switch address")
	}
	if metricsURL == "" {
		t.Fatalf("netlockd never announced its metrics endpoint")
	}

	out, err := exec.CommandContext(ctx, bins["cmd/lockclient"],
		"-switch", addr, "-locks", "32", "-concurrency", "4",
		"-duration", "500ms", "-timeout", "5s").CombinedOutput()
	if err != nil {
		t.Fatalf("lockclient: %v\n%s", err, out)
	}
	m := regexp.MustCompile(`grants: (\d+)`).FindSubmatch(out)
	if m == nil || string(m[1]) == "0" {
		t.Fatalf("lockclient completed without grants:\n%s", out)
	}

	// Context cancellation mid-acquire against the live daemon: hold a lock
	// with one client, cancel a second client's blocked acquire, and expect
	// a prompt context.Canceled — not a hang or a timeout.
	c1, err := transport.NewClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := transport.NewClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	hctx, hcancel := context.WithTimeout(ctx, 5*time.Second)
	hold, err := c1.Acquire(hctx, 999, netlock.Exclusive)
	hcancel()
	if err != nil {
		t.Fatal(err)
	}
	cctx, ccancel := context.WithCancel(context.Background())
	acqDone := make(chan error, 1)
	go func() {
		_, err := c2.Acquire(cctx, 999, netlock.Exclusive)
		acqDone <- err
	}()
	time.Sleep(100 * time.Millisecond)
	ccancel()
	select {
	case err := <-acqDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled acquire: want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled acquire never returned")
	}
	hold.Release()

	// The metrics endpoint serves Prometheus text with the per-stage
	// histograms, paper-aligned counters and occupancy gauges.
	resp, err := http.Get(metricsURL)
	if err != nil {
		t.Fatalf("scrape metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"netlock_switch_pass_ns_bucket",
		"netlock_server_queue_wait_ns_count",
		"netlock_acquire_e2e_ns_sum",
		"netlock_acquires_total",
		"netlock_grants_total",
		"netlock_resubmits_total",
		"netlock_overflows_total",
		"netlock_tenant_grants_total",
		"netlock_switch_slots_in_use",
		"netlock_switch_resident_locks",
		"netlock_switch_free_entries",
		"netlock_switch_pending_acquires",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}
	// The benchmark traffic must have shown up as non-zero grant counters.
	gm := regexp.MustCompile(`netlock_grants_total (\d+)`).FindStringSubmatch(text)
	if gm == nil || gm[1] == "0" {
		t.Errorf("metrics scrape shows no grants:\n%s", text)
	}
}
