// Package smoke compiles every binary in cmd/ and examples/ and runs the
// fast ones end to end: each example must exit cleanly, and the
// netlockd/lockclient pair must complete a short real-UDP benchmark with
// at least one grant. This keeps the binaries from bit-rotting without
// being exercised by the library test suites.
package smoke

import (
	"bufio"
	"context"
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// mains lists every main package in the repository.
var mains = []string{
	"cmd/benchrunner",
	"cmd/lockclient",
	"cmd/netlockd",
	"examples/failover",
	"examples/multitenant",
	"examples/quickstart",
	"examples/tpcc",
	"examples/udprack",
}

// examples are the mains that run standalone to completion in seconds.
var examples = []string{
	"examples/failover",
	"examples/multitenant",
	"examples/quickstart",
	"examples/tpcc",
	"examples/udprack",
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// buildAll compiles every main package into dir and returns the binary
// paths keyed by package path.
func buildAll(t *testing.T, dir string) map[string]string {
	t.Helper()
	root := repoRoot(t)
	args := append([]string{"build", "-o", dir + string(filepath.Separator)},
		func() []string {
			var pkgs []string
			for _, m := range mains {
				pkgs = append(pkgs, "./"+m)
			}
			return pkgs
		}()...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	bins := make(map[string]string)
	for _, m := range mains {
		bins[m] = filepath.Join(dir, filepath.Base(m))
	}
	return bins
}

func TestExamplesRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildAll(t, t.TempDir())
	for _, ex := range examples {
		ex := ex
		t.Run(filepath.Base(ex), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, bins[ex]).CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s: no output", ex)
			}
		})
	}
}

func TestNetlockdLockclientEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bins := buildAll(t, t.TempDir())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	daemon := exec.CommandContext(ctx, bins["cmd/netlockd"],
		"-listen", "127.0.0.1:0", "-servers", "2", "-preinstall", "32")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	// The daemon announces "netlockd: switch on <addr>" once it is up.
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if _, err := fmt.Sscanf(sc.Text(), "netlockd: switch on %s", &addr); err == nil {
			break
		}
	}
	if addr == "" {
		t.Fatalf("netlockd never announced its switch address")
	}

	out, err := exec.CommandContext(ctx, bins["cmd/lockclient"],
		"-switch", addr, "-locks", "32", "-concurrency", "4",
		"-duration", "500ms", "-timeout", "5s").CombinedOutput()
	if err != nil {
		t.Fatalf("lockclient: %v\n%s", err, out)
	}
	m := regexp.MustCompile(`grants: (\d+)`).FindSubmatch(out)
	if m == nil || string(m[1]) == "0" {
		t.Fatalf("lockclient completed without grants:\n%s", out)
	}
}
