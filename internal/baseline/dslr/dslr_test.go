package dslr

import (
	"testing"
	"testing/quick"
)

func TestPackFields(t *testing.T) {
	w := Pack(1, 2, 3, 4)
	maxX, maxS, nowX, nowS := Fields(w)
	if maxX != 1 || maxS != 2 || nowX != 3 || nowS != 4 {
		t.Fatalf("fields = %d %d %d %d", maxX, maxS, nowX, nowS)
	}
}

func TestPackFieldsRoundTripProperty(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		maxX, maxS, nowX, nowS := Fields(Pack(a, b, c, d))
		return maxX == a && maxS == b && nowX == c && nowS == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveImmediateGrant(t *testing.T) {
	var w uint64
	// FAA returns the previous word.
	tk := DrawExclusive(w)
	w += DeltaMaxX
	if !tk.Granted(w) {
		t.Fatalf("first exclusive ticket should be granted immediately")
	}
}

func TestExclusiveFCFS(t *testing.T) {
	var w uint64
	t1 := DrawExclusive(w)
	w += DeltaMaxX
	t2 := DrawExclusive(w)
	w += DeltaMaxX
	if !t1.Granted(w) || t2.Granted(w) {
		t.Fatalf("grants out of order: t1=%v t2=%v", t1.Granted(w), t2.Granted(w))
	}
	// t1 releases: t2's turn.
	w += t1.ReleaseDelta()
	if !t2.Granted(w) {
		t.Fatalf("t2 should be granted after t1 releases")
	}
}

func TestSharedConcurrent(t *testing.T) {
	var w uint64
	s1 := DrawShared(w)
	w += DeltaMaxS
	s2 := DrawShared(w)
	w += DeltaMaxS
	if !s1.Granted(w) || !s2.Granted(w) {
		t.Fatalf("concurrent shared tickets should both be granted")
	}
}

func TestSharedWaitsForEarlierExclusive(t *testing.T) {
	var w uint64
	x := DrawExclusive(w)
	w += DeltaMaxX
	s := DrawShared(w)
	w += DeltaMaxS
	if s.Granted(w) {
		t.Fatalf("shared must wait for earlier exclusive")
	}
	if !x.Granted(w) {
		t.Fatalf("exclusive should hold")
	}
	w += x.ReleaseDelta()
	if !s.Granted(w) {
		t.Fatalf("shared should be granted after exclusive releases")
	}
}

func TestExclusiveWaitsForEarlierShared(t *testing.T) {
	var w uint64
	s := DrawShared(w)
	w += DeltaMaxS
	x := DrawExclusive(w)
	w += DeltaMaxX
	if x.Granted(w) {
		t.Fatalf("exclusive must wait for earlier shared")
	}
	w += s.ReleaseDelta()
	if !x.Granted(w) {
		t.Fatalf("exclusive should be granted after shared releases")
	}
}

func TestInterleavedSXS(t *testing.T) {
	// S1, X2, S3: S1 granted; X2 waits for S1; S3 waits for X2.
	var w uint64
	s1 := DrawShared(w)
	w += DeltaMaxS
	x2 := DrawExclusive(w)
	w += DeltaMaxX
	s3 := DrawShared(w)
	w += DeltaMaxS
	if !s1.Granted(w) || x2.Granted(w) || s3.Granted(w) {
		t.Fatalf("initial grants wrong")
	}
	w += s1.ReleaseDelta()
	if !x2.Granted(w) || s3.Granted(w) {
		t.Fatalf("after S1 release: x2=%v s3=%v", x2.Granted(w), s3.Granted(w))
	}
	w += x2.ReleaseDelta()
	if !s3.Granted(w) {
		t.Fatalf("S3 should be granted last")
	}
}

func TestOverflowTicket(t *testing.T) {
	w := Pack(MaxTicket, 0, 0, 0)
	tk := DrawExclusive(w)
	if !tk.Overflowed() {
		t.Fatalf("ticket at MaxTicket should be overflowed")
	}
	if DrawExclusive(Pack(5, 0, 0, 0)).Overflowed() {
		t.Fatalf("ordinary ticket flagged as overflow")
	}
}

func TestDrained(t *testing.T) {
	if !Drained(Pack(3, 2, 3, 2)) {
		t.Fatalf("fully released word should be drained")
	}
	if Drained(Pack(3, 2, 2, 2)) {
		t.Fatalf("outstanding exclusive not detected")
	}
}

func TestWaitEstimate(t *testing.T) {
	// Two exclusive holders and one shared holder ahead.
	w := Pack(2, 1, 0, 0)
	tk := DrawExclusive(w)
	w += DeltaMaxX
	if got := tk.WaitEstimateNs(w, 100); got != 300 {
		t.Fatalf("estimate = %d, want 300", got)
	}
	// Shared ticket waits only for exclusives ahead.
	w2 := Pack(2, 0, 0, 0)
	ts := DrawShared(w2)
	w2 += DeltaMaxS
	if got := ts.WaitEstimateNs(w2, 100); got != 200 {
		t.Fatalf("shared estimate = %d, want 200", got)
	}
	// Granted ticket estimates zero.
	var w3 uint64
	t0 := DrawExclusive(w3)
	w3 += DeltaMaxX
	if got := t0.WaitEstimateNs(w3, 100); got != 0 {
		t.Fatalf("granted estimate = %d, want 0", got)
	}
}

// Property: simulate an arbitrary arrival sequence of shared/exclusive
// requests released in grant order; bakery semantics must never grant an
// exclusive together with anything else, and must preserve FCFS among
// exclusives.
func TestBakerySafetyProperty(t *testing.T) {
	f := func(arrivals []bool) bool {
		if len(arrivals) > 60 {
			arrivals = arrivals[:60]
		}
		var w uint64
		type holder struct {
			tk   Ticket
			done bool
		}
		var hs []holder
		for _, isX := range arrivals {
			if isX {
				hs = append(hs, holder{tk: DrawExclusive(w)})
				w += DeltaMaxX
			} else {
				hs = append(hs, holder{tk: DrawShared(w)})
				w += DeltaMaxS
			}
		}
		for steps := 0; steps < len(hs)+1; steps++ {
			// Collect currently granted, not-yet-released tickets.
			var granted []int
			xCount := 0
			for i := range hs {
				if !hs[i].done && hs[i].tk.Granted(w) {
					granted = append(granted, i)
					if hs[i].tk.Exclusive {
						xCount++
					}
				}
			}
			if xCount > 1 || (xCount == 1 && len(granted) > 1) {
				return false // exclusive not exclusive
			}
			if len(granted) == 0 {
				// All done?
				for i := range hs {
					if !hs[i].done {
						return false // deadlock
					}
				}
				return true
			}
			// Release all granted.
			for _, i := range granted {
				w += hs[i].tk.ReleaseDelta()
				hs[i].done = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
