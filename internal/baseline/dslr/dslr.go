// Package dslr implements the lock-word protocol of DSLR (Yoon, Chowdhury,
// Mozafari — SIGMOD 2018), the state-of-the-art decentralized RDMA lock
// manager NetLock is evaluated against (paper §6).
//
// DSLR adapts Lamport's bakery algorithm to RDMA fetch-and-add: each lock
// is one 64-bit word holding four 16-bit counters,
//
//	[ nowS | nowX | maxS | maxX ]
//
// where maxX/maxS are the next tickets to hand out for exclusive/shared
// requests and nowX/nowS count completed (released) exclusive/shared
// grants. A client acquires by FAA-ing the appropriate max counter; the
// previous value is its ticket and its view of the queue ahead of it. It
// then waits (by RDMA READ polling, with a wait-time estimate) until the
// now counters show that everything ahead has released. The design gives
// FCFS without any server CPU involvement — but every operation costs
// NIC-bound atomic verbs plus polling round trips, which is exactly the
// ceiling NetLock's switch removes.
//
// This package is the pure protocol: word layout, ticket math, grant
// predicates, and the counter-reset (overflow) rule. The emulated transport
// (internal/rdma) and timing live in internal/cluster.
package dslr

// Field shifts within the lock word.
const (
	shiftMaxX = 0
	shiftMaxS = 16
	shiftNowX = 32
	shiftNowS = 48
)

// Deltas for fetch-and-add on each counter.
const (
	DeltaMaxX uint64 = 1 << shiftMaxX
	DeltaMaxS uint64 = 1 << shiftMaxS
	DeltaNowX uint64 = 1 << shiftNowX
	DeltaNowS uint64 = 1 << shiftNowS
)

// MaxTicket is the largest usable ticket value; a FAA that returns it must
// trigger the counter-reset protocol instead of waiting on the ticket.
const MaxTicket = 1<<16 - 1

// Fields unpacks a lock word.
func Fields(w uint64) (maxX, maxS, nowX, nowS uint16) {
	return uint16(w >> shiftMaxX), uint16(w >> shiftMaxS),
		uint16(w >> shiftNowX), uint16(w >> shiftNowS)
}

// Pack builds a lock word from its fields (used by tests and the reset).
func Pack(maxX, maxS, nowX, nowS uint16) uint64 {
	return uint64(maxX)<<shiftMaxX | uint64(maxS)<<shiftMaxS |
		uint64(nowX)<<shiftNowX | uint64(nowS)<<shiftNowS
}

// Ticket is a client's bakery ticket for one lock.
type Ticket struct {
	Exclusive bool
	// Mine is the ticket number drawn from maxX (exclusive) or maxS
	// (shared).
	Mine uint16
	// SnapX and SnapS are the other max counters at draw time: the
	// exclusive/shared populations ahead of this ticket.
	SnapX, SnapS uint16
}

// DrawExclusive interprets the FAA(DeltaMaxX) result as an exclusive
// ticket.
func DrawExclusive(prev uint64) Ticket {
	maxX, maxS, _, _ := Fields(prev)
	return Ticket{Exclusive: true, Mine: maxX, SnapX: maxX, SnapS: maxS}
}

// DrawShared interprets the FAA(DeltaMaxS) result as a shared ticket.
func DrawShared(prev uint64) Ticket {
	maxX, maxS, _, _ := Fields(prev)
	return Ticket{Exclusive: false, Mine: maxS, SnapX: maxX, SnapS: maxS}
}

// Overflowed reports whether the ticket hit the counter limit, requiring
// the reset protocol: the drawing client must wait for the queue to drain
// and CAS the word back to zero before retrying.
func (t Ticket) Overflowed() bool { return t.Mine == MaxTicket }

// Granted reports whether the lock word shows this ticket's turn:
//
//   - exclusive: all earlier exclusive holders released (nowX == Mine) and
//     all shared holders that drew before us released (nowS == SnapS);
//   - shared: all exclusive requests that drew before us released
//     (nowX == SnapX). Concurrent shared holders proceed together.
func (t Ticket) Granted(w uint64) bool {
	_, _, nowX, nowS := Fields(w)
	if t.Exclusive {
		return nowX == t.Mine && nowS == t.SnapS
	}
	return nowX == t.SnapX
}

// ReleaseDelta is the FAA delta that releases a granted ticket.
func (t Ticket) ReleaseDelta() uint64 {
	if t.Exclusive {
		return DeltaNowX
	}
	return DeltaNowS
}

// Drained reports whether every issued ticket has been released, the
// precondition for the overflow reset CAS.
func Drained(w uint64) bool {
	maxX, maxS, nowX, nowS := Fields(w)
	return nowX == maxX && nowS == maxS
}

// WaitEstimateNs implements DSLR's waiting-time estimation: rather than
// hammering the NIC with READ polls, a client estimates its queueing delay
// as (requests ahead) x (expected per-holder service time) and sleeps that
// long before the first poll.
func (t Ticket) WaitEstimateNs(w uint64, perHolderNs int64) int64 {
	_, _, nowX, nowS := Fields(w)
	var ahead int64
	if t.Exclusive {
		ahead = int64(t.Mine-nowX) + int64(t.SnapS-nowS)
	} else {
		ahead = int64(t.SnapX - nowX)
	}
	if ahead < 0 {
		ahead = 0
	}
	return ahead * perHolderNs
}
