// Package drtm implements the lock-word protocol DrTM-style systems use for
// remote locks (Wei et al., SOSP 2015), the fail-and-retry baseline in the
// paper's evaluation (§6).
//
// Each lock is one 64-bit word:
//
//	bit 63      : writer bit (exclusive holder present)
//	bits 32..62 : exclusive owner ID (truncated transaction ID)
//	bits 0..31  : shared reader count
//
// Exclusive acquisition is a CAS from the free word (0) to
// writerBit|owner; any failure means "try again later" — the blind
// fail-and-retry strategy whose contention collapse and starvation NetLock
// is measured against. Shared acquisition optimistically FAAs the reader
// count and backs out (FAA -1) if the writer bit was set.
//
// The pure word protocol lives here; the emulated RDMA transport, retry
// backoff and lease timing live in internal/cluster.
package drtm

// WriterBit marks an exclusive holder in the lock word.
const WriterBit uint64 = 1 << 63

const (
	ownerShift        = 32
	ownerMask  uint64 = (1<<31 - 1) << ownerShift
	readerMask uint64 = 1<<32 - 1
)

// ExclusiveWord returns the word value an exclusive CAS installs.
func ExclusiveWord(txnID uint64) uint64 {
	return WriterBit | (txnID<<ownerShift)&ownerMask
}

// Free is the word value of an uncontended lock (the CAS expect value).
const Free uint64 = 0

// HasWriter reports whether the word carries an exclusive holder.
func HasWriter(w uint64) bool { return w&WriterBit != 0 }

// Readers returns the shared reader count.
func Readers(w uint64) uint32 { return uint32(w & readerMask) }

// Owner returns the truncated owner ID of the exclusive holder.
func Owner(w uint64) uint32 { return uint32((w & ownerMask) >> ownerShift) }

// SharedAcquired interprets the result of FAA(+1) for a shared request:
// the acquisition succeeded iff no writer held the lock at increment time.
// On failure the client must issue FAA(-1) to back out.
func SharedAcquired(prev uint64) bool { return !HasWriter(prev) }

// SharedBackoutDelta is the FAA delta undoing a failed shared acquisition
// (two's-complement -1 on the reader field).
const SharedBackoutDelta uint64 = ^uint64(0) // FAA(-1)

// SharedReleaseDelta is the FAA delta releasing a granted shared lock.
const SharedReleaseDelta uint64 = ^uint64(0) // FAA(-1)

// SharedAddDelta is the FAA delta for a shared acquisition attempt.
const SharedAddDelta uint64 = 1

// CanCASExclusive reports whether an exclusive CAS can possibly succeed
// against the observed word (used to avoid pointless CAS verbs after a
// READ poll).
func CanCASExclusive(w uint64) bool { return w == Free }

// ExclusiveReleased is the word an exclusive holder writes on release.
const ExclusiveReleased uint64 = Free
