package drtm

import (
	"testing"
	"testing/quick"
)

func TestExclusiveWord(t *testing.T) {
	w := ExclusiveWord(42)
	if !HasWriter(w) {
		t.Fatalf("writer bit missing")
	}
	if Owner(w) != 42 {
		t.Fatalf("owner = %d, want 42", Owner(w))
	}
	if Readers(w) != 0 {
		t.Fatalf("readers = %d, want 0", Readers(w))
	}
}

func TestOwnerTruncation(t *testing.T) {
	w := ExclusiveWord(0xFFFFFFFFFF) // wider than 31 bits
	if !HasWriter(w) || Readers(w) != 0 {
		t.Fatalf("truncated owner corrupted other fields: %x", w)
	}
}

func TestSharedCounting(t *testing.T) {
	var w uint64
	// Two shared acquisitions.
	if !SharedAcquired(w) {
		t.Fatalf("shared should acquire on free lock")
	}
	w += SharedAddDelta
	if !SharedAcquired(w) {
		t.Fatalf("second shared should acquire")
	}
	w += SharedAddDelta
	if Readers(w) != 2 {
		t.Fatalf("readers = %d, want 2", Readers(w))
	}
	// Releases bring it back to free.
	w += SharedReleaseDelta
	w += SharedReleaseDelta
	if w != Free {
		t.Fatalf("word = %x after all releases", w)
	}
}

func TestSharedBlockedByWriter(t *testing.T) {
	w := ExclusiveWord(7)
	if SharedAcquired(w) {
		t.Fatalf("shared must fail while writer holds")
	}
	// The failed attempt FAA'd +1 and must back out.
	w += SharedAddDelta
	w += SharedBackoutDelta
	if Readers(w) != 0 {
		t.Fatalf("backout did not restore reader count: %d", Readers(w))
	}
	if !HasWriter(w) || Owner(w) != 7 {
		t.Fatalf("backout corrupted writer state")
	}
}

func TestCanCASExclusive(t *testing.T) {
	if !CanCASExclusive(Free) {
		t.Fatalf("free lock should be CAS-able")
	}
	if CanCASExclusive(ExclusiveWord(1)) {
		t.Fatalf("held lock should not be CAS-able")
	}
	if CanCASExclusive(SharedAddDelta) {
		t.Fatalf("lock with readers should not be CAS-able")
	}
}

func TestExclusiveLifecycle(t *testing.T) {
	var w uint64
	// CAS Free -> ExclusiveWord succeeds conceptually when w == Free.
	if w != Free {
		t.Fatalf("setup")
	}
	w = ExclusiveWord(9)
	// A second CAS would fail: word != Free.
	if CanCASExclusive(w) {
		t.Fatalf("double exclusive")
	}
	w = ExclusiveReleased
	if !CanCASExclusive(w) {
		t.Fatalf("release did not free the lock")
	}
}

// Property: for any interleaving of shared add/backout/release pairs, the
// reader count never underflows into the owner field (i.e. stays within
// the 32-bit reader mask) as long as operations are balanced.
func TestReaderFieldIsolationProperty(t *testing.T) {
	f := func(ops []bool) bool {
		var w uint64
		outstanding := 0
		for _, add := range ops {
			if add {
				w += SharedAddDelta
				outstanding++
			} else if outstanding > 0 {
				w += SharedReleaseDelta
				outstanding--
			}
			if int(Readers(w)) != outstanding || HasWriter(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
