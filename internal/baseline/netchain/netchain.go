// Package netchain implements the NetChain-style switch lock service the
// paper compares against (§6.1): an in-switch key-value store used as a
// lock table.
//
// NetChain (Jin et al., NSDI 2018) stores values in switch register arrays
// and serves reads/writes at line rate, but it is not a lock manager: it
// has no queues, supports only exclusive ownership (shared lock requests
// are treated as exclusive), and resolves contention by client-side retry.
// A lock here is one register holding the owner's transaction ID, acquired
// with a single read-modify-write per packet:
//
//	acquire: if slot == 0 { slot = txn; granted } else { rejected }
//	release: if slot == txn { slot = 0 }
//
// Because NetChain keeps everything in the switch, the paper adapts the
// lock granularity so the whole lock set fits switch memory; Config.Locks
// reflects that adapted table size, and callers map their lock IDs onto it.
package netchain

import (
	"fmt"

	"netlock/internal/p4sim"
)

// Config sizes the NetChain lock table.
type Config struct {
	// Locks is the table size; all locks live in the switch.
	Locks int
}

// Result of an acquire attempt.
type Result uint8

const (
	// Granted: the slot was free (or already ours) and is now owned.
	Granted Result = iota + 1
	// Rejected: another transaction owns the slot; retry later.
	Rejected
)

// Service is the switch-resident lock table. Not safe for concurrent use.
type Service struct {
	cfg   Config
	pipe  *p4sim.Pipeline
	slots *p4sim.RegisterArray
	stats Stats
}

// Stats counts table operations.
type Stats struct {
	Acquires uint64
	Grants   uint64
	Rejects  uint64
	Releases uint64
}

// New builds the service on its own single-purpose pipeline.
func New(cfg Config) *Service {
	if cfg.Locks <= 0 {
		panic("netchain: non-positive lock count")
	}
	pipe := p4sim.NewPipeline(p4sim.Config{Stages: 12, StageSlots: cfg.Locks, MaxResubmits: 4})
	return &Service{
		cfg:   cfg,
		pipe:  pipe,
		slots: pipe.AllocArray("owners", 0, cfg.Locks),
	}
}

// Stats returns a snapshot of the operation counters.
func (s *Service) Stats() Stats { return s.stats }

// Locks returns the table size.
func (s *Service) Locks() int { return s.cfg.Locks }

// Acquire attempts to take lock idx for txn (one pipeline pass, one RMW).
// Re-acquiring an owned lock is idempotent.
func (s *Service) Acquire(idx int, txn uint64) Result {
	if txn == 0 {
		panic("netchain: transaction ID 0 is reserved for the free slot")
	}
	s.stats.Acquires++
	var res Result
	s.pipe.Process(func(c *p4sim.Ctx) {
		old := s.slots.ReadModifyWrite(c, s.index(idx), func(v uint64) uint64 {
			if v == 0 || v == txn {
				return txn
			}
			return v
		})
		if old == 0 || old == txn {
			res = Granted
		} else {
			res = Rejected
		}
	})
	if res == Granted {
		s.stats.Grants++
	} else {
		s.stats.Rejects++
	}
	return res
}

// Release frees lock idx if txn owns it (one pipeline pass, one RMW).
func (s *Service) Release(idx int, txn uint64) {
	s.stats.Releases++
	s.pipe.Process(func(c *p4sim.Ctx) {
		s.slots.ReadModifyWrite(c, s.index(idx), func(v uint64) uint64 {
			if v == txn {
				return 0
			}
			return v
		})
	})
}

// CtrlOwner reads a slot's owner from the control plane (0 = free).
func (s *Service) CtrlOwner(idx int) uint64 { return s.slots.CtrlRead(s.index(idx)) }

// CtrlReset clears the whole table (switch failure).
func (s *Service) CtrlReset() {
	for i := 0; i < s.cfg.Locks; i++ {
		s.slots.CtrlWrite(i, 0)
	}
	s.stats = Stats{}
}

func (s *Service) index(idx int) int {
	if idx < 0 {
		panic(fmt.Sprintf("netchain: negative lock index %d", idx))
	}
	// Granularity adaptation: fold larger ID spaces onto the table.
	return idx % s.cfg.Locks
}
