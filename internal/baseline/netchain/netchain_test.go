package netchain

import (
	"testing"
	"testing/quick"
)

func TestAcquireReleaseCycle(t *testing.T) {
	s := New(Config{Locks: 8})
	if got := s.Acquire(3, 100); got != Granted {
		t.Fatalf("first acquire = %v", got)
	}
	if got := s.Acquire(3, 200); got != Rejected {
		t.Fatalf("contended acquire = %v", got)
	}
	s.Release(3, 100)
	if got := s.Acquire(3, 200); got != Granted {
		t.Fatalf("acquire after release = %v", got)
	}
	st := s.Stats()
	if st.Acquires != 3 || st.Grants != 2 || st.Rejects != 1 || st.Releases != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAcquireIdempotent(t *testing.T) {
	s := New(Config{Locks: 4})
	s.Acquire(1, 7)
	if got := s.Acquire(1, 7); got != Granted {
		t.Fatalf("re-acquire by owner = %v", got)
	}
}

func TestReleaseByNonOwnerIgnored(t *testing.T) {
	s := New(Config{Locks: 4})
	s.Acquire(1, 7)
	s.Release(1, 9)
	if s.CtrlOwner(1) != 7 {
		t.Fatalf("non-owner release stole the lock")
	}
}

func TestGranularityFolding(t *testing.T) {
	s := New(Config{Locks: 4})
	// Lock 1 and lock 5 fold onto the same slot: coarse-grained locking.
	if s.Acquire(1, 7) != Granted {
		t.Fatalf("setup")
	}
	if s.Acquire(5, 9) != Rejected {
		t.Fatalf("folded lock should conflict")
	}
}

func TestTxnZeroPanics(t *testing.T) {
	s := New(Config{Locks: 4})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	s.Acquire(1, 0)
}

func TestNegativeIndexPanics(t *testing.T) {
	s := New(Config{Locks: 4})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	s.Acquire(-1, 5)
}

func TestCtrlReset(t *testing.T) {
	s := New(Config{Locks: 4})
	s.Acquire(2, 5)
	s.CtrlReset()
	if s.CtrlOwner(2) != 0 {
		t.Fatalf("reset did not clear owners")
	}
	if s.Stats() != (Stats{}) {
		t.Fatalf("reset did not clear stats")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	New(Config{Locks: 0})
}

// Property: mutual exclusion — at any point, a slot has exactly one owner,
// and only that owner's release frees it.
func TestMutualExclusionProperty(t *testing.T) {
	f := func(ops []struct {
		Idx uint8
		Txn uint8
		Rel bool
	}) bool {
		s := New(Config{Locks: 4})
		owners := map[int]uint64{}
		for _, op := range ops {
			idx := int(op.Idx % 4)
			txn := uint64(op.Txn%8) + 1
			if op.Rel {
				s.Release(idx, txn)
				if owners[idx] == txn {
					delete(owners, idx)
				}
			} else {
				res := s.Acquire(idx, txn)
				cur, held := owners[idx]
				switch {
				case !held:
					if res != Granted {
						return false
					}
					owners[idx] = txn
				case cur == txn:
					if res != Granted {
						return false
					}
				default:
					if res != Rejected {
						return false
					}
				}
			}
			if uint64(s.CtrlOwner(idx)) != owners[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
