package workload

import (
	"math/rand"
	"sync"
	"testing"

	"netlock/internal/wire"
)

func TestMicroUniform(t *testing.T) {
	m := &Micro{Locks: 10, Mode: wire.Exclusive, ThinkNs: 500}
	rng := rand.New(rand.NewSource(1))
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		spec := m.NextTxn(0, rng)
		if len(spec.Locks) != 1 {
			t.Fatalf("micro txn must take one lock")
		}
		l := spec.Locks[0]
		if l.LockID < 1 || l.LockID > 10 {
			t.Fatalf("lock %d out of range", l.LockID)
		}
		if l.Mode != wire.Exclusive || spec.ThinkNs != 500 {
			t.Fatalf("spec fields wrong: %+v", spec)
		}
		seen[l.LockID] = true
	}
	if len(seen) != 10 {
		t.Fatalf("uniform choice missed locks: %d/10", len(seen))
	}
}

func TestMicroDisjoint(t *testing.T) {
	m := &Micro{Locks: 10, Mode: wire.Exclusive, PerClientDisjoint: true}
	rng := rand.New(rand.NewSource(2))
	for c := 0; c < 3; c++ {
		for i := 0; i < 100; i++ {
			id := m.NextTxn(c, rng).Locks[0].LockID
			lo, hi := uint32(c)*10+1, uint32(c+1)*10
			if id < lo || id > hi {
				t.Fatalf("client %d lock %d outside [%d,%d]", c, id, lo, hi)
			}
		}
	}
	if m.MaxLockID(3) != 40 {
		t.Fatalf("max lock id = %d", m.MaxLockID(3))
	}
}

func TestMicroZipfSkew(t *testing.T) {
	m := &Micro{Locks: 1000, Mode: wire.Shared, ZipfS: 1.5}
	rng := rand.New(rand.NewSource(3))
	hits := map[uint32]int{}
	for i := 0; i < 10_000; i++ {
		hits[m.NextTxn(0, rng).Locks[0].LockID]++
	}
	// The hottest lock should dominate badly under s=1.5.
	maxHits := 0
	for _, n := range hits {
		if n > maxHits {
			maxHits = n
		}
	}
	if maxHits < 2000 {
		t.Fatalf("zipf skew too weak: max=%d/10000", maxHits)
	}
}

// TestMicroZipfPerClientRace is the regression for the shared Zipf
// source: the lazy zipfs map was keyed by a constant and captured the
// first rng it saw, so concurrent per-client rngs (as cmd/loadgen workers
// use) all drew from one unsynchronized source. Run under -race.
func TestMicroZipfPerClientRace(t *testing.T) {
	m := &Micro{Locks: 1000, Mode: wire.Shared, ZipfS: 1.3}
	const clients, draws = 8, 2000
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c + 1)))
			for i := 0; i < draws; i++ {
				id := m.NextTxn(c, rng).Locks[0].LockID
				if id < 1 || id > 1000 {
					t.Errorf("client %d: lock %d out of range", c, id)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestMicroZipfPerClientDeterministic: each client's draw sequence is a
// pure function of its own rng, regardless of interleaving with other
// clients or of which client called first.
func TestMicroZipfPerClientDeterministic(t *testing.T) {
	seq := func(m *Micro, client int, seed int64, n int) []uint32 {
		rng := rand.New(rand.NewSource(seed))
		ids := make([]uint32, n)
		for i := range ids {
			ids[i] = m.NextTxn(client, rng).Locks[0].LockID
		}
		return ids
	}

	// Client 1 alone vs client 1 interleaved after client 0 warmed the map.
	alone := seq(&Micro{Locks: 500, ZipfS: 1.5}, 1, 77, 100)
	m := &Micro{Locks: 500, ZipfS: 1.5}
	seq(m, 0, 11, 50) // a different client draws first
	mixed := seq(m, 1, 77, 100)
	for i := range alone {
		if alone[i] != mixed[i] {
			t.Fatalf("client 1 sequence depends on other clients: idx %d: %d vs %d",
				i, alone[i], mixed[i])
		}
	}
}

func TestMicroPanicsOnZeroLocks(t *testing.T) {
	m := &Micro{}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.NextTxn(0, rand.New(rand.NewSource(0)))
}

func TestMixedFraction(t *testing.T) {
	m := &Mixed{Locks: 100, ExclusiveFraction: 0.3}
	rng := rand.New(rand.NewSource(4))
	excl := 0
	for i := 0; i < 10_000; i++ {
		if m.NextTxn(0, rng).Locks[0].Mode == wire.Exclusive {
			excl++
		}
	}
	if excl < 2700 || excl > 3300 {
		t.Fatalf("exclusive count = %d, want ~3000", excl)
	}
}

func TestPriorityMix(t *testing.T) {
	inner := &Micro{Locks: 10, Mode: wire.Exclusive}
	p := &PriorityMix{Inner: inner, HighClients: 5}
	rng := rand.New(rand.NewSource(5))
	hi := p.NextTxn(2, rng)
	lo := p.NextTxn(7, rng)
	if hi.Locks[0].Priority != 0 || hi.Tenant != 0 {
		t.Fatalf("high client mis-tagged: %+v", hi)
	}
	if lo.Locks[0].Priority != 1 || lo.Tenant != 1 {
		t.Fatalf("low client mis-tagged: %+v", lo)
	}
}
