package workload

import (
	"math/rand"
	"testing"

	"netlock/internal/wire"
)

func TestMicroUniform(t *testing.T) {
	m := &Micro{Locks: 10, Mode: wire.Exclusive, ThinkNs: 500}
	rng := rand.New(rand.NewSource(1))
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		spec := m.NextTxn(0, rng)
		if len(spec.Locks) != 1 {
			t.Fatalf("micro txn must take one lock")
		}
		l := spec.Locks[0]
		if l.LockID < 1 || l.LockID > 10 {
			t.Fatalf("lock %d out of range", l.LockID)
		}
		if l.Mode != wire.Exclusive || spec.ThinkNs != 500 {
			t.Fatalf("spec fields wrong: %+v", spec)
		}
		seen[l.LockID] = true
	}
	if len(seen) != 10 {
		t.Fatalf("uniform choice missed locks: %d/10", len(seen))
	}
}

func TestMicroDisjoint(t *testing.T) {
	m := &Micro{Locks: 10, Mode: wire.Exclusive, PerClientDisjoint: true}
	rng := rand.New(rand.NewSource(2))
	for c := 0; c < 3; c++ {
		for i := 0; i < 100; i++ {
			id := m.NextTxn(c, rng).Locks[0].LockID
			lo, hi := uint32(c)*10+1, uint32(c+1)*10
			if id < lo || id > hi {
				t.Fatalf("client %d lock %d outside [%d,%d]", c, id, lo, hi)
			}
		}
	}
	if m.MaxLockID(3) != 40 {
		t.Fatalf("max lock id = %d", m.MaxLockID(3))
	}
}

func TestMicroZipfSkew(t *testing.T) {
	m := &Micro{Locks: 1000, Mode: wire.Shared, ZipfS: 1.5}
	rng := rand.New(rand.NewSource(3))
	hits := map[uint32]int{}
	for i := 0; i < 10_000; i++ {
		hits[m.NextTxn(0, rng).Locks[0].LockID]++
	}
	// The hottest lock should dominate badly under s=1.5.
	maxHits := 0
	for _, n := range hits {
		if n > maxHits {
			maxHits = n
		}
	}
	if maxHits < 2000 {
		t.Fatalf("zipf skew too weak: max=%d/10000", maxHits)
	}
}

func TestMicroPanicsOnZeroLocks(t *testing.T) {
	m := &Micro{}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.NextTxn(0, rand.New(rand.NewSource(0)))
}

func TestMixedFraction(t *testing.T) {
	m := &Mixed{Locks: 100, ExclusiveFraction: 0.3}
	rng := rand.New(rand.NewSource(4))
	excl := 0
	for i := 0; i < 10_000; i++ {
		if m.NextTxn(0, rng).Locks[0].Mode == wire.Exclusive {
			excl++
		}
	}
	if excl < 2700 || excl > 3300 {
		t.Fatalf("exclusive count = %d, want ~3000", excl)
	}
}

func TestPriorityMix(t *testing.T) {
	inner := &Micro{Locks: 10, Mode: wire.Exclusive}
	p := &PriorityMix{Inner: inner, HighClients: 5}
	rng := rand.New(rand.NewSource(5))
	hi := p.NextTxn(2, rng)
	lo := p.NextTxn(7, rng)
	if hi.Locks[0].Priority != 0 || hi.Tenant != 0 {
		t.Fatalf("high client mis-tagged: %+v", hi)
	}
	if lo.Locks[0].Priority != 1 || lo.Tenant != 1 {
		t.Fatalf("low client mis-tagged: %+v", lo)
	}
}
