// Package workload provides the microbenchmark request generators of the
// paper's §6.2: single-lock transactions over configurable lock sets, modes
// and contention patterns, plus a Zipf-skewed generator for the memory
// management experiments.
package workload

import (
	"math/rand"
	"sync"

	"netlock/internal/cluster"
	"netlock/internal/wire"
)

// Micro generates single-lock transactions.
type Micro struct {
	// Locks is the size of the shared lock set (IDs 1..Locks).
	Locks uint32
	// Mode is the lock mode requested.
	Mode wire.Mode
	// PerClientDisjoint gives each client machine its own private ID range
	// (no contention, Figure 8b); otherwise all clients share one set.
	PerClientDisjoint bool
	// ThinkNs is the hold time per transaction.
	ThinkNs int64
	// ZipfS enables Zipf-skewed lock choice with the given parameter s>1
	// (0 = uniform).
	ZipfS float64
	// Priority and OneRTT are stamped on every request.
	Priority uint8
	OneRTT   bool

	// Zipf sources are per client: rand.Zipf captures the rng it was
	// built with, and loadgen workers call NextTxn concurrently with one
	// rng each, so a shared source would both skew the draw and race.
	zipfMu sync.Mutex
	zipfs  map[int]*rand.Zipf
}

// NextTxn implements cluster.Workload.
func (m *Micro) NextTxn(client int, rng *rand.Rand) cluster.TxnSpec {
	if m.Locks == 0 {
		panic("workload: Micro.Locks must be positive")
	}
	var id uint32
	switch {
	case m.ZipfS > 1:
		// Each client gets its own source bound to the rng of its first
		// call. A client must keep passing the same rng (and be driven by
		// one goroutine at a time, as the testbed and loadgen both do);
		// distinct clients may then call NextTxn concurrently.
		m.zipfMu.Lock()
		if m.zipfs == nil {
			m.zipfs = make(map[int]*rand.Zipf)
		}
		z, ok := m.zipfs[client]
		if !ok {
			z = rand.NewZipf(rng, m.ZipfS, 1, uint64(m.Locks-1))
			m.zipfs[client] = z
		}
		m.zipfMu.Unlock()
		id = uint32(z.Uint64()) + 1
	default:
		id = uint32(rng.Intn(int(m.Locks))) + 1
	}
	if m.PerClientDisjoint {
		id += uint32(client) * m.Locks
	}
	return cluster.TxnSpec{
		Locks: []cluster.Request{{
			LockID:   id,
			Mode:     m.Mode,
			Priority: m.Priority,
			OneRTT:   m.OneRTT,
		}},
		ThinkNs: m.ThinkNs,
		Tenant:  -1,
	}
}

// MaxLockID returns the largest lock ID the generator can produce given the
// number of clients, for sizing baseline lock tables.
func (m *Micro) MaxLockID(clients int) uint32 {
	if m.PerClientDisjoint {
		return uint32(clients+1) * m.Locks
	}
	return m.Locks
}

// Mixed generates single-lock transactions with a shared/exclusive mix.
type Mixed struct {
	Locks uint32
	// ExclusiveFraction in [0,1] selects the exclusive share.
	ExclusiveFraction float64
	ThinkNs           int64
}

// NextTxn implements cluster.Workload.
func (m *Mixed) NextTxn(client int, rng *rand.Rand) cluster.TxnSpec {
	mode := wire.Shared
	if rng.Float64() < m.ExclusiveFraction {
		mode = wire.Exclusive
	}
	return cluster.TxnSpec{
		Locks:   []cluster.Request{{LockID: uint32(rng.Intn(int(m.Locks))) + 1, Mode: mode}},
		ThinkNs: m.ThinkNs,
		Tenant:  -1,
	}
}

// PriorityMix tags a fraction of clients' traffic with a higher priority
// and distinct tenants, for the service differentiation experiment
// (Figure 12a): clients below the split get priority 0 / tenant 0
// (high), the rest priority 1 / tenant 1 (low).
type PriorityMix struct {
	Inner cluster.Workload
	// HighClients is the number of client machines whose traffic is
	// high-priority.
	HighClients int
}

// NextTxn implements cluster.Workload.
func (p *PriorityMix) NextTxn(client int, rng *rand.Rand) cluster.TxnSpec {
	spec := p.Inner.NextTxn(client, rng)
	prio := uint8(1)
	tenant := 1
	if client < p.HighClients {
		prio = 0
		tenant = 0
	}
	for i := range spec.Locks {
		spec.Locks[i].Priority = prio
	}
	spec.Tenant = tenant
	return spec
}
