package transport

import (
	"fmt"
	"net"
	"net/netip"
)

// PacketConn is the slice of *net.UDPConn the transport nodes use. All
// addressing is netip.AddrPort so the read and write hot paths stay
// allocation-free; the conformance tests substitute an in-process fake
// network that drops, duplicates, and reorders datagrams.
type PacketConn interface {
	ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error)
	WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error)
	Close() error
	LocalAddr() net.Addr
}

// Network creates the sockets a node binds. A nil Network in the node
// configs means the real UDP stack (UDP below).
type Network interface {
	// Listen binds a datagram socket on addr ("127.0.0.1:0" for an
	// ephemeral port).
	Listen(addr string) (PacketConn, error)
}

type udpNetwork struct{}

func (udpNetwork) Listen(addr string) (PacketConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return net.ListenUDP("udp", ua)
}

// UDP is the real-socket Network.
var UDP Network = udpNetwork{}

// resolveAddrPort resolves a host:port string to a normalized AddrPort.
func resolveAddrPort(addr string) (netip.AddrPort, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return netip.AddrPort{}, err
	}
	ap := normAddrPort(ua.AddrPort())
	if !ap.IsValid() {
		return netip.AddrPort{}, fmt.Errorf("no usable address in %q", addr)
	}
	return ap, nil
}

// normAddrPort unmaps 4-in-6 addresses so one peer always maps to one
// table key regardless of which API produced the address.
func normAddrPort(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}
