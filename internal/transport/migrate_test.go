package transport

import (
	"testing"
	"time"

	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// Chain-level live-migration tests: a lock with occupied queue state is
// moved between the switch chain and the lock server while holders and
// waiters are outstanding, using raw probes so the grant/release flow
// across the move boundary is visible frame by frame. The controller-level
// orchestration (region allocation, drains, rebalancing) is tested in
// internal/ctrlplane and internal/scenario.

// installChainLock installs lockID on every chain member (same regions,
// deterministic) and releases ownership at the server, mirroring what
// ctrlplane.Controller.InstallLock does on a live rack.
func installChainLock(t *testing.T, sws []*Switch, srv *Server, lockID uint32, regions []switchdp.Region) {
	t.Helper()
	for _, sw := range sws {
		var err error
		sw.WithDataPlane(func(dp *switchdp.Switch) {
			err = dp.CtrlInstallLock(lockID, regions)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	var err error
	srv.WithLockServer(func(ls *lockserver.Server) {
		err = ls.CtrlReleaseOwnership(lockID)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// exportToServerBanks converts a switch export into lock-server import
// banks, rebasing absolute lease expiries from the exporter's clock onto
// the destination server's.
func exportToServerBanks(ex *switchdp.LockExport, baseNs, nowNs int64) [][]lockserver.ExportEntry {
	banks := make([][]lockserver.ExportEntry, len(ex.Slots))
	for b := range ex.Slots {
		for _, sl := range ex.Slots[b] {
			h, lease, granted := switchdp.EntryFromSlot(ex.LockID, b, sl)
			if lease != 0 {
				lease = lease - baseNs + nowNs
			}
			banks[b] = append(banks[b], lockserver.ExportEntry{Hdr: h, LeaseNs: lease, Granted: granted})
		}
	}
	return banks
}

// rebaseServerExport rebases a lock-server export's leases onto the chain
// head's clock in place.
func rebaseServerExport(ex *lockserver.LockExport, nowNs int64) {
	for b := range ex.Banks {
		for i := range ex.Banks[b] {
			if ex.Banks[b][i].LeaseNs != 0 {
				ex.Banks[b][i].LeaseNs = ex.Banks[b][i].LeaseNs - ex.BaseNs + nowNs
			}
		}
	}
}

// waitResident polls until the lock's residency on the member matches want
// — non-head members apply chain frames asynchronously, so residency flips
// a frame's flight time after the head's entry point returns.
func waitResident(t *testing.T, sw *Switch, lockID uint32, want bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var got bool
		sw.WithDataPlane(func(dp *switchdp.Switch) { got = dp.CtrlHasLock(lockID) })
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("lock %d residency %v, want %v", lockID, got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChainDemoteLiveLock: a switch-resident lock with a holder and a
// queued waiter is demoted to the lock server mid-flight. No grant is
// lost: the holder's release (which now lands on a non-resident lock and
// is forwarded to the server) unblocks the migrated waiter.
func TestChainDemoteLiveLock(t *testing.T) {
	sws, srv := chainRack(t, 3, dpConfig())
	holder, waiter := newProbe(t), newProbe(t)
	const lockID = 5

	installChainLock(t, sws, srv, lockID, []switchdp.Region{{Left: 0, Right: 8}})

	holder.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 1}, sws[0].Addr())
	if _, ok := holder.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("holder not granted by switch")
	}
	waiter.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 2}, sws[0].Addr())
	time.Sleep(20 * time.Millisecond) // let the waiter reach the switch queue

	srv.PrepareImport(lockID)
	ex, baseNs, err := sws[0].MigrateDemoteLock(lockID)
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Entries(); got != 2 {
		t.Fatalf("export carries %d entries, want holder+waiter", got)
	}
	if err := srv.ImportLock(lockID, exportToServerBanks(&ex, baseNs, srv.NowNs())); err != nil {
		t.Fatal(err)
	}

	// Every member evicts the lock at the same op-stream position (the
	// non-head members a frame's flight time later).
	for _, sw := range sws {
		waitResident(t, sw, lockID, false)
	}

	// The release now takes the not-resident path to the server, which
	// grants the migrated waiter (granted bit preserved for the holder —
	// the release must match, not be treated as spurious).
	holder.send(&wire.Header{Op: wire.OpRelease, LockID: lockID, TxnID: 1}, sws[0].Addr())
	if _, ok := holder.recv(wire.OpReleaseAck, timeout); !ok {
		t.Fatal("holder's release not acked across the demote")
	}
	if _, ok := waiter.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("migrated waiter never granted after the holder released")
	}
	waiter.send(&wire.Header{Op: wire.OpRelease, LockID: lockID, TxnID: 2}, sws[0].Addr())
	if _, ok := waiter.recv(wire.OpReleaseAck, timeout); !ok {
		t.Fatal("waiter's release not acked")
	}
}

// TestChainPromoteLiveLock: a server-owned lock with a holder and a queued
// waiter is promoted into the chain mid-flight. The waiter's grant after
// the holder releases comes from the switch data plane on every member.
func TestChainPromoteLiveLock(t *testing.T) {
	sws, srv := chainRack(t, 3, dpConfig())
	holder, waiter := newProbe(t), newProbe(t)
	const lockID = 6

	holder.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 3}, sws[0].Addr())
	if _, ok := holder.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("holder not granted by server")
	}
	waiter.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 4}, sws[0].Addr())
	time.Sleep(20 * time.Millisecond) // let the waiter queue at the server

	ex, err := srv.ExportLock(lockID)
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Entries(); got != 2 {
		t.Fatalf("export carries %d entries, want holder+waiter", got)
	}
	rebaseServerExport(&ex, sws[0].NowNs())
	regions := []switchdp.Region{{Left: 8, Right: 16}}
	if err := sws[0].MigratePromoteLock(lockID, regions, ex.Banks); err != nil {
		t.Fatal(err)
	}

	for _, sw := range sws {
		waitResident(t, sw, lockID, true)
	}

	holder.send(&wire.Header{Op: wire.OpRelease, LockID: lockID, TxnID: 3}, sws[0].Addr())
	if _, ok := holder.recv(wire.OpReleaseAck, timeout); !ok {
		t.Fatal("holder's release not acked across the promote")
	}
	if _, ok := waiter.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("migrated waiter never granted by the switch")
	}

	// The waiter's grant came from the replicated data plane, and every
	// member made the identical decision.
	head := waitStatus(t, sws[0], timeout, func(ci ChainInfo) bool { return ci.LogLen == 0 })
	for i, sw := range sws[1:] {
		waitStatus(t, sw, timeout, func(ci ChainInfo) bool {
			return ci.Applied == head.Applied && ci.LogLen == 0
		})
		snap := sw.Snapshot()
		if g := snap.Stats.GrantsQueued; g == 0 {
			t.Errorf("member %d data plane shows no queued grant after promote", i+1)
		}
	}

	waiter.send(&wire.Header{Op: wire.OpRelease, LockID: lockID, TxnID: 4}, sws[0].Addr())
	if _, ok := waiter.recv(wire.OpReleaseAck, timeout); !ok {
		t.Fatal("waiter's release not acked")
	}
}

// TestChainMigrateRoundTrip: demote then promote the same busy lock and
// check the queue state survives both crossings intact and in order.
func TestChainMigrateRoundTrip(t *testing.T) {
	sws, srv := chainRack(t, 2, dpConfig())
	holder, w1, w2 := newProbe(t), newProbe(t), newProbe(t)
	const lockID = 7

	installChainLock(t, sws, srv, lockID, []switchdp.Region{{Left: 0, Right: 8}})
	holder.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 10}, sws[0].Addr())
	if _, ok := holder.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("holder not granted")
	}
	w1.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Shared, LockID: lockID, TxnID: 11}, sws[0].Addr())
	w2.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Shared, LockID: lockID, TxnID: 12}, sws[0].Addr())
	time.Sleep(20 * time.Millisecond)

	srv.PrepareImport(lockID)
	ex, baseNs, err := sws[0].MigrateDemoteLock(lockID)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ImportLock(lockID, exportToServerBanks(&ex, baseNs, srv.NowNs())); err != nil {
		t.Fatal(err)
	}
	sx, err := srv.ExportLock(lockID)
	if err != nil {
		t.Fatal(err)
	}
	if got := sx.Entries(); got != 3 {
		t.Fatalf("round-trip export carries %d entries, want 3", got)
	}
	rebaseServerExport(&sx, sws[0].NowNs())
	if err := sws[0].MigratePromoteLock(lockID, []switchdp.Region{{Left: 16, Right: 24}}, sx.Banks); err != nil {
		t.Fatal(err)
	}

	// Holder releases: BOTH shared waiters are granted together, in order,
	// from the re-promoted queue — proof the granted bit and FIFO order
	// survived two crossings.
	holder.send(&wire.Header{Op: wire.OpRelease, LockID: lockID, TxnID: 10}, sws[0].Addr())
	if _, ok := holder.recv(wire.OpReleaseAck, timeout); !ok {
		t.Fatal("release not acked after round trip")
	}
	if _, ok := w1.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("first shared waiter not granted after round trip")
	}
	if _, ok := w2.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("second shared waiter not granted after round trip")
	}
}

// TestChainPromoteRetransmitNoGhost: a client retransmit of a queued
// acquire that crosses a server-to-switch move must not claim a second
// data-plane slot. The server's dedup state leaves with the export, so the
// retransmit bounces back to the switch with nothing upstream left to drop
// it; without the chain's CtrlHasTxn guard the bounce would enqueue a
// ghost duplicate whose grant is undeliverable and whose release never
// comes — wedging the lock for every later acquirer.
func TestChainPromoteRetransmitNoGhost(t *testing.T) {
	sws, srv := chainRack(t, 2, dpConfig())
	holder, waiter, next := newProbe(t), newProbe(t), newProbe(t)
	const lockID = 9

	holder.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 40}, sws[0].Addr())
	if _, ok := holder.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("holder not granted by server")
	}
	req := wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 41}
	waiter.send(&req, sws[0].Addr())
	time.Sleep(20 * time.Millisecond) // let the waiter queue at the server

	// The move begins: the server's queue (holder + waiter) is exported and
	// ownership released — taking the server's dedup state with it.
	ex, err := srv.ExportLock(lockID)
	if err != nil {
		t.Fatal(err)
	}

	// The waiter's retransmit fires mid-move. The head re-sequences it (the
	// lock is not resident, so the forward leg could have been lost), the
	// server has no state and bounces it, and the bounce ping-pongs between
	// switch and server until an owner exists.
	waiter.send(&req, sws[0].Addr())
	time.Sleep(10 * time.Millisecond)

	rebaseServerExport(&ex, sws[0].NowNs())
	if err := sws[0].MigratePromoteLock(lockID, []switchdp.Region{{Left: 0, Right: 8}}, ex.Banks); err != nil {
		t.Fatal(err)
	}
	for _, sw := range sws {
		waitResident(t, sw, lockID, true)
	}
	time.Sleep(20 * time.Millisecond) // let the circulating bounce land

	holder.send(&wire.Header{Op: wire.OpRelease, LockID: lockID, TxnID: 40}, sws[0].Addr())
	if _, ok := holder.recv(wire.OpReleaseAck, timeout); !ok {
		t.Fatal("holder's release not acked across the promote")
	}
	if _, ok := waiter.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("migrated waiter never granted")
	}
	waiter.send(&wire.Header{Op: wire.OpRelease, LockID: lockID, TxnID: 41}, sws[0].Addr())
	if _, ok := waiter.recv(wire.OpReleaseAck, timeout); !ok {
		t.Fatal("waiter's release not acked")
	}

	// The decisive probe: with a ghost duplicate of txn 41 still queued the
	// lock is held by a dead entry and this acquire wedges forever.
	next.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 42}, sws[0].Addr())
	if _, ok := next.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("acquire after the move wedged: ghost duplicate holds the lock")
	}
}

// TestChainMigrateGuards: external OpMigrate datagrams are dropped at
// ingress (a forged demote must not evict state), and the head-side entry
// points validate residency and region shape before sequencing anything.
func TestChainMigrateGuards(t *testing.T) {
	sws, srv := chainRack(t, 2, dpConfig())
	p := newProbe(t)
	const lockID = 8

	installChainLock(t, sws, srv, lockID, []switchdp.Region{{Left: 0, Right: 8}})

	// Forged demote from outside the chain: ignored.
	forged := wire.MigrateDemote(lockID)
	p.send(&forged, sws[0].Addr())
	time.Sleep(20 * time.Millisecond)
	sws[0].WithDataPlane(func(dp *switchdp.Switch) {
		if !dp.CtrlHasLock(lockID) {
			t.Fatal("forged external demote evicted the lock")
		}
	})

	if _, _, err := sws[0].MigrateDemoteLock(99); err == nil {
		t.Fatal("demote of a non-resident lock did not error")
	}
	if _, _, err := sws[1].MigrateDemoteLock(lockID); err == nil {
		t.Fatal("demote on a non-head member did not error")
	}
	if err := sws[0].MigratePromoteLock(lockID, []switchdp.Region{{Left: 8, Right: 16}}, nil); err == nil {
		t.Fatal("promote of an already-resident lock did not error")
	}
	if err := sws[0].MigratePromoteLock(99, nil, nil); err == nil {
		t.Fatal("promote with missing regions did not error")
	}
	overfull := [][]lockserver.ExportEntry{make([]lockserver.ExportEntry, 3)}
	for i := range overfull[0] {
		overfull[0][i] = lockserver.ExportEntry{
			Hdr: wire.Header{Op: wire.OpAcquire, Mode: wire.Shared, LockID: 99, TxnID: uint64(20 + i)},
		}
	}
	if err := sws[0].MigratePromoteLock(99, []switchdp.Region{{Left: 8, Right: 10}}, overfull); err == nil {
		t.Fatal("promote with more entries than region capacity did not error")
	}

	// The lock is still fully functional after all the rejected attempts.
	p.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 30}, sws[0].Addr())
	if _, ok := p.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("lock unusable after rejected migrate attempts")
	}
}

// TestChainBounceReleaseDuplicateIdempotent: a duplicate release laundered
// through a move bounce must not dequeue another transaction's hold. A
// release retransmit re-sequenced while its lock was server-owned puts two
// copies in flight; when a promote's export lands between them the
// post-export server has no queue state left to deduplicate with and
// bounces both back. The data plane releases by queue head, not by
// transaction (§4.2), so without the CtrlHasTxn admission check the second
// bounce silently frees whoever holds the lock next — a double grant the
// moment another acquire arrives.
func TestChainBounceReleaseDuplicateIdempotent(t *testing.T) {
	sws, srv := chainRack(t, 2, dpConfig())
	holder, waiter, next := newProbe(t), newProbe(t), newProbe(t)
	const lockID = 6

	// Holder granted by the server (first contact), waiter queued behind.
	holder.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 50}, sws[0].Addr())
	if _, ok := holder.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("holder not granted by server")
	}
	waiter.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 51}, sws[0].Addr())
	time.Sleep(20 * time.Millisecond) // let the waiter queue at the server

	// Promote the occupied lock into the switch.
	ex, err := srv.ExportLock(lockID)
	if err != nil {
		t.Fatal(err)
	}
	rebaseServerExport(&ex, sws[0].NowNs())
	if err := sws[0].MigratePromoteLock(lockID, []switchdp.Region{{Left: 0, Right: 8}}, ex.Banks); err != nil {
		t.Fatal(err)
	}
	for _, sw := range sws {
		waitResident(t, sw, lockID, true)
	}

	// Holder releases normally; the waiter inherits the lock.
	holder.send(&wire.Header{Op: wire.OpRelease, LockID: lockID, TxnID: 50}, sws[0].Addr())
	if _, ok := holder.recv(wire.OpReleaseAck, timeout); !ok {
		t.Fatal("holder's release not acked")
	}
	if _, ok := waiter.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("waiter never granted")
	}

	// The stale duplicate lands: a second copy of the holder's release,
	// bounced off the post-export server, arrives at the head after the
	// original completed. Inject it at the sequencing layer exactly as the
	// server bounce path delivers it.
	stale := wire.Header{Op: wire.OpRelease, LockID: lockID, TxnID: 50}
	sws[0].mu.Lock()
	sws[0].sequence(wire.OriginServer, &stale)
	sws[0].mu.Unlock()
	time.Sleep(20 * time.Millisecond)

	// Decisive probe: the waiter still holds, so this acquire must queue.
	// With the stale bounce admitted to the data plane it dequeued the
	// waiter's hold, and this grant arrives immediately — mutual exclusion
	// broken.
	next.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 52}, sws[0].Addr())
	if _, ok := next.recv(wire.OpGrant, 100*time.Millisecond); ok {
		t.Fatal("acquire granted while the migrated waiter still holds: stale bounce release stole the hold")
	}

	// The rack is intact: the waiter's release unblocks the probe.
	waiter.send(&wire.Header{Op: wire.OpRelease, LockID: lockID, TxnID: 51}, sws[0].Addr())
	if _, ok := waiter.recv(wire.OpReleaseAck, timeout); !ok {
		t.Fatal("waiter's release not acked")
	}
	if _, ok := next.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("acquire after the release wedged")
	}
}
