package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"netlock"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// rack starts a switch and n lock servers on loopback and wires them up.
func rack(t *testing.T, n int, dp switchdp.Config) (*Switch, []*Server) {
	t.Helper()
	var servers []*Server
	var addrs []string
	for i := 0; i < n; i++ {
		srv, err := NewServer(ServerConfig{Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	sw, err := NewSwitch(SwitchConfig{Listen: "127.0.0.1:0", DataPlane: dp, Servers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sw.Close() })
	for _, srv := range servers {
		if err := srv.SetSwitchAddr(sw.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	return sw, servers
}

// installLock performs the control-plane placement: install the lock in the
// switch AND transfer ownership away from its partition server, exactly the
// two-sided move core.Manager performs (§4.3).
func installLock(t *testing.T, sw *Switch, servers []*Server, lockID uint32, region switchdp.Region) {
	t.Helper()
	if err := InstallSwitchLock(sw, servers, lockID, []switchdp.Region{region}); err != nil {
		t.Fatal(err)
	}
}

func client(t *testing.T, sw *Switch) *Client {
	t.Helper()
	c, err := NewClient(sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func dpConfig() switchdp.Config {
	return switchdp.Config{MaxLocks: 64, TotalSlots: 256, Priorities: 1}
}

const timeout = 5 * time.Second

// acquire is the test-side shorthand for a context-first acquire with a
// deadline.
func acquire(c *Client, lockID uint32, mode netlock.Mode, d time.Duration) (*Grant, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return c.Acquire(ctx, lockID, mode)
}

func TestServerPathAcquireRelease(t *testing.T) {
	sw, _ := rack(t, 2, dpConfig())
	c := client(t, sw)
	// No locks are switch-resident: the request flows
	// client -> switch -> server -> switch -> client.
	g, err := acquire(c, 1, netlock.Exclusive, timeout)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	g2, err := acquire(c, 1, netlock.Exclusive, timeout)
	if err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	g2.Release()
}

func TestSwitchPathAcquireRelease(t *testing.T) {
	sw, servers := rack(t, 1, dpConfig())
	installLock(t, sw, servers, 5, switchdp.Region{Left: 0, Right: 8})
	c := client(t, sw)
	g, err := acquire(c, 5, netlock.Exclusive, timeout)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	st := sw.Snapshot()
	if st.Stats.GrantsImmediate != 1 {
		t.Fatalf("switch should have granted: %+v", st.Stats)
	}
	if st.ResidentLocks != 1 {
		t.Fatalf("want 1 resident lock, got %d", st.ResidentLocks)
	}
}

func TestExclusiveContentionOverUDP(t *testing.T) {
	sw, servers := rack(t, 1, dpConfig())
	installLock(t, sw, servers, 9, switchdp.Region{Left: 0, Right: 64})
	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	inCrit := 0
	maxInCrit := 0
	for w := 0; w < workers; w++ {
		c := client(t, sw)
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g, err := acquire(c, 9, netlock.Exclusive, timeout)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				inCrit++
				if inCrit > maxInCrit {
					maxInCrit = inCrit
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
				mu.Lock()
				inCrit--
				mu.Unlock()
				g.Release()
			}
		}(c)
	}
	wg.Wait()
	if maxInCrit != 1 {
		t.Fatalf("mutual exclusion violated: %d concurrent holders", maxInCrit)
	}
}

func TestSharedConcurrencyOverUDP(t *testing.T) {
	sw, servers := rack(t, 1, dpConfig())
	installLock(t, sw, servers, 3, switchdp.Region{Left: 64, Right: 128})
	c := client(t, sw)
	var grants []*Grant
	for i := 0; i < 10; i++ {
		g, err := acquire(c, 3, netlock.Shared, timeout)
		if err != nil {
			t.Fatal(err)
		}
		grants = append(grants, g)
	}
	for _, g := range grants {
		g.Release()
	}
}

func TestOverflowOverUDP(t *testing.T) {
	// Leases clean up ghost holders left by client retransmissions; the
	// control sweep re-arms stranded overflow queues.
	dp := dpConfig()
	dp.DefaultLeaseNs = int64(200 * time.Millisecond)
	sw, servers := rack(t, 1, dp)
	// Tiny region: contention overflows to the server and must still
	// drain correctly through the push protocol.
	installLock(t, sw, servers, 7, switchdp.Region{Left: 0, Right: 2})
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c := client(t, sw)
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				g, err := acquire(c, 7, netlock.Exclusive, timeout)
				if err != nil {
					t.Error(err)
					return
				}
				g.Release()
			}
		}(c)
	}
	wg.Wait()
	st := sw.Snapshot()
	if st.Stats.Overflows == 0 {
		t.Fatalf("overflow path not exercised: %+v", st.Stats)
	}
}

func TestAcquireTimeout(t *testing.T) {
	sw, _ := rack(t, 1, dpConfig())
	c1 := client(t, sw)
	c2 := client(t, sw)
	g, err := acquire(c1, 11, netlock.Exclusive, timeout)
	if err != nil {
		t.Fatal(err)
	}
	_, err = acquire(c2, 11, netlock.Exclusive, 100*time.Millisecond)
	if err == nil {
		t.Fatalf("blocked acquire should time out")
	}
	if !errors.Is(err, netlock.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded in chain, got %v", err)
	}
	g.Release()
}

// TestAcquireCancel covers explicit context cancellation mid-acquire: the
// call must return promptly with a ctx error, not wait for a timeout.
func TestAcquireCancel(t *testing.T) {
	sw, _ := rack(t, 1, dpConfig())
	c1 := client(t, sw)
	c2 := client(t, sw)
	g, err := acquire(c1, 13, netlock.Exclusive, timeout)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c2.Acquire(ctx, 13, netlock.Exclusive)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire did not return")
	}
}

// TestAcquireTimeoutShim exercises the deprecated duration-based entry
// point, which must keep working for one release.
func TestAcquireTimeoutShim(t *testing.T) {
	sw, _ := rack(t, 1, dpConfig())
	c := client(t, sw)
	g, err := c.AcquireTimeout(15, wire.Exclusive, timeout)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
}

func TestBadConfigs(t *testing.T) {
	if _, err := NewSwitch(SwitchConfig{Listen: "127.0.0.1:0", DataPlane: dpConfig()}); err == nil {
		t.Fatalf("switch with no servers should fail")
	}
	if _, err := NewSwitch(SwitchConfig{Listen: "bogus::addr::", DataPlane: dpConfig(), Servers: []string{"127.0.0.1:1"}}); err == nil {
		t.Fatalf("bad listen addr should fail")
	}
	if _, err := NewClient("bogus::addr::"); err == nil {
		t.Fatalf("bad switch addr should fail")
	}
	if _, err := NewServer(ServerConfig{Listen: "bogus::addr::"}); err == nil {
		t.Fatalf("bad server listen should fail")
	}
	srv, err := NewServer(ServerConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.SetSwitchAddr("bogus::addr::"); err == nil {
		t.Fatalf("bad switch addr should fail")
	}
}

func TestCloseIdempotent(t *testing.T) {
	sw, servers := rack(t, 1, dpConfig())
	c := client(t, sw)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	sw.Close()
	sw.Close()
	servers[0].Close()
	servers[0].Close()
}

// TestClosedClientSentinel: acquiring on a closed client returns ErrClosed.
func TestClosedClientSentinel(t *testing.T) {
	sw, _ := rack(t, 1, dpConfig())
	c, err := NewClient(sw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	_, err = acquire(c, 1, netlock.Exclusive, time.Second)
	if !errors.Is(err, netlock.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
