package transport

import (
	"context"
	"testing"
	"time"

	"netlock"
	"netlock/internal/wire"
)

// fabric starts n single-server racks on loopback, installs the shard map
// on every switch, and returns them rack-indexed.
func fabric(t *testing.T, n int, m *wire.ShardMap) ([]*Switch, [][]*Server) {
	t.Helper()
	sws := make([]*Switch, n)
	servers := make([][]*Server, n)
	for i := range sws {
		sw, srvs := rack(t, 1, dpConfig())
		sw.SetShardMap(m, i)
		sws[i] = sw
		servers[i] = srvs
	}
	return sws, servers
}

// fabricClient dials every rack of a fabric with the given starting map.
func fabricClient(t *testing.T, sws []*Switch, m *wire.ShardMap) *Client {
	t.Helper()
	racks := make([][]string, len(sws))
	for i, sw := range sws {
		racks[i] = []string{sw.Addr()}
	}
	c, err := NewClientConfig(ClientConfig{Fabric: &FabricClientConfig{Racks: racks, Map: m}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// lockOnRack finds a lock ID the map routes to the wanted rack.
func lockOnRack(t *testing.T, m *wire.ShardMap, rack int) uint32 {
	t.Helper()
	for lock := uint32(1); lock < 10000; lock++ {
		if m.RackOf(lock) == rack {
			return lock
		}
	}
	t.Fatalf("no lock routes to rack %d", rack)
	return 0
}

// TestFabricRouting drives acquires through a 2-rack fabric and checks
// every grant came from the rack the shard map assigns the lock to.
func TestFabricRouting(t *testing.T) {
	m, err := wire.NewShardMap(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	sws, _ := fabric(t, 2, m)
	c := fabricClient(t, sws, m)
	for want := 0; want < 2; want++ {
		lock := lockOnRack(t, m, want)
		g, err := acquire(c, lock, netlock.Exclusive, timeout)
		if err != nil {
			t.Fatalf("rack %d lock %d: %v", want, lock, err)
		}
		if g.Rack() != want {
			t.Fatalf("lock %d granted by rack %d, map says %d", lock, g.Rack(), want)
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		if err := g.ReleaseWait(ctx); err != nil {
			t.Fatalf("release lock %d: %v", lock, err)
		}
		cancel()
	}
}

// TestFabricWrongRackBounce starts a client on a stale map that homes
// every shard on rack 0 while the fabric runs a newer 2-rack map: the
// mis-routed acquire must come back as an OpWrongRack bounce with the new
// map, and the client must adopt the epoch, re-route, and win the grant
// from the true owner — all inside one acquire call.
func TestFabricWrongRackBounce(t *testing.T) {
	cur, err := wire.NewShardMap(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	cur.Epoch = 1
	sws, _ := fabric(t, 2, cur)

	stale, err := wire.NewShardMap(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := fabricClient(t, sws, stale)

	lock := lockOnRack(t, cur, 1) // rack 1 owns it; the stale map says rack 0
	g, err := acquire(c, lock, netlock.Exclusive, timeout)
	if err != nil {
		t.Fatalf("acquire through stale map: %v", err)
	}
	if g.Rack() != 1 {
		t.Fatalf("granted by rack %d, want 1", g.Rack())
	}
	if e := c.ShardMapEpoch(); e != 1 {
		t.Fatalf("client map epoch %d after bounce, want 1", e)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := g.ReleaseWait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestFabricFenceDrops checks the re-home fence: client ops for a fenced
// shard are dropped (not rejected) so the client's own retransmit paces
// the retries, and unfencing lets the next retry through.
func TestFabricFenceDrops(t *testing.T) {
	m, err := wire.NewShardMap(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := rack(t, 1, dpConfig())
	sw.SetShardMap(m, 0)

	c, err := NewClientConfig(ClientConfig{
		Fabric:        &FabricClientConfig{Racks: [][]string{{sw.Addr()}}, Map: m},
		RetryInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const lock = 7
	sw.SetShardFence(m.ShardOf(lock), true)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	if _, err := c.Acquire(ctx, lock, netlock.Exclusive); err == nil {
		t.Fatal("acquire for a fenced shard completed")
	}
	cancel()

	sw.SetShardFence(m.ShardOf(lock), false)
	g, err := acquire(c, lock, netlock.Exclusive, timeout)
	if err != nil {
		t.Fatalf("acquire after unfence: %v", err)
	}
	g.Release()
}

// TestFabricPurgeAndImport moves one granted lock's client-visible state
// between two switches by hand (the fabric controller's re-home does this
// at scale): after PurgeClientState the source ignores the lock, and after
// ImportClientState the destination answers the release exactly as if it
// had issued the grant itself.
func TestFabricPurgeAndImport(t *testing.T) {
	m, err := wire.NewShardMap(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := rack(t, 1, dpConfig())
	src.SetShardMap(m, 0)
	dst, _ := rack(t, 1, dpConfig())
	dst.SetShardMap(m, 0)

	c, err := NewClientConfig(ClientConfig{
		Fabric: &FabricClientConfig{Racks: [][]string{{src.Addr()}}, Map: m},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	const lock = 3
	g, err := acquire(c, lock, netlock.Exclusive, timeout)
	if err != nil {
		t.Fatal(err)
	}

	// Hand-carry the grant: reconstruct the acquire header the way the
	// migration stream does and install it on the destination.
	hdr := wire.Header{
		Op:         wire.OpAcquire,
		Mode:       wire.Exclusive,
		LockID:     lock,
		TxnID:      g.Txn(),
		ClientIP:   c.localIP,
		ClientPort: c.localPort,
	}
	dst.ImportClientState(true, &hdr, 0)
	src.PurgeClientState(func(id uint32) bool { return id == lock })

	// Point the client's rack at the destination, as the adopted map flip
	// would, and release: the import must answer it.
	dstAP, err := resolveAddrPort(dst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.retarget(0, normAddrPort(dstAP))
	c.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := g.ReleaseWait(ctx); err != nil {
		t.Fatalf("release against imported state: %v", err)
	}
	if got := dst.Snapshot().TrackedGrants; got != 0 {
		t.Fatalf("destination still tracks %d grants after release", got)
	}
}
