package transport_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netlock"
	"netlock/internal/check"
	"netlock/internal/ctrlplane"
	"netlock/internal/switchdp"
	"netlock/internal/transport"
	"netlock/internal/wire"
)

// The chaos network itself lives in chaosnet.go (it is a first-class
// Network implementation, shared with internal/scenario and cmd/loadgen);
// these tests drive the full transport stack through it, with racks built
// the way every consumer builds them: through ctrlplane.Topology. Chain
// lengths 1-3 all run here — the conformance invariants are
// replication-agnostic.

const timeout = 5 * time.Second

func dpConfig() switchdp.Config {
	return switchdp.Config{MaxLocks: 64, TotalSlots: 256, Priorities: 1}
}

// recorder serializes trace events into the checker. Its mutex defines the
// event order the checker sees; the recording discipline (EvAcquire after
// submit but before Wait, EvGrant after Wait returns, EvRelease before the
// release is handed to the client) makes that order sound for safety
// checking.
type recorder struct {
	mu   sync.Mutex
	ck   *check.Checker
	viol *check.Violation
}

func (r *recorder) observe(e check.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.viol != nil {
		return
	}
	r.viol = r.ck.Observe(e)
}

// conformanceIters reports how many seeds to sweep: the default
// check.Seeds() sweep, widened to NETLOCK_FAKENET_ITERS sequential seeds
// when that env var is set (CI runs 1000 under -race). A pinned
// -netlock.seed always wins.
func conformanceSeeds() (seeds []int64, quick bool) {
	if s, ok := check.ReplaySeed(); ok {
		return []int64{s}, false
	}
	if v := os.Getenv("NETLOCK_FAKENET_ITERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			for i := 0; i < n; i++ {
				seeds = append(seeds, int64(i+1))
			}
			return seeds, true
		}
	}
	return check.Seeds(), false
}

// TestFakenetConformance drives a full client->switch->server rack over
// the chaotic fake network — drops, duplicates, and reordering delays on
// the client edge — and validates every surviving grant trace against the
// safety checker: mutual exclusion, no phantom or duplicate grants,
// conservation at quiescence. Locks span switch-resident queues small
// enough to overflow (exercising q1/q2) and server-owned locks, and the
// switch plane is a replication chain whose length varies with the seed.
func TestFakenetConformance(t *testing.T) {
	seeds, quick := conformanceSeeds()
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runConformance(t, seed, quick)
		})
	}
}

func runConformance(t *testing.T, seed int64, quick bool) {
	// Four switch-resident locks with queues small enough that contention
	// overflows to the servers; locks 5..10 stay server-owned.
	var switchLocks []ctrlplane.SwitchLock
	for id := uint32(1); id <= 4; id++ {
		switchLocks = append(switchLocks, ctrlplane.SwitchLock{ID: id, Slots: 2})
	}
	tp, err := ctrlplane.New(ctrlplane.Config{
		Switches:    1 + int(seed%3),
		Servers:     2,
		DataPlane:   switchdp.Config{MaxLocks: 8, TotalSlots: 32, Priorities: 1},
		Chaos:       &transport.ChaosConfig{Seed: seed, Drop: 0.15, Dup: 0.10, Delay: 0.25},
		SwitchLocks: switchLocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	locks := []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

	rec := &recorder{ck: check.NewChecker()}
	// Overflow buffering legally reorders grants across priorities/modes
	// (§4.3), so only the safety invariants apply.
	rec.ck.CheckPriority = false

	nClients, workersPer, opsPer := 3, 2, 12
	if quick {
		nClients, workersPer, opsPer = 2, 2, 6
	}

	var clients []*transport.Client
	for i := 0; i < nClients; i++ {
		c, err := tp.NewClient(transport.ClientConfig{
			RetryInterval: 15 * time.Millisecond,
			FlushInterval: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for ci, c := range clients {
		for w := 0; w < workersPer; w++ {
			wg.Add(1)
			go func(c *transport.Client, id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*1000 + int64(id)))
				for op := 0; op < opsPer; op++ {
					lock := locks[rng.Intn(len(locks))]
					excl := rng.Intn(100) < 60
					mode := netlock.Shared
					if excl {
						mode = netlock.Exclusive
					}
					a, err := c.AcquireAsync(ctx, lock, mode)
					if err != nil {
						t.Errorf("worker %d: submit: %v (replay: %s)", id, err, check.ReplayArgs(seed))
						return
					}
					rec.observe(check.Event{Kind: check.EvAcquire, Lock: lock, Txn: a.Txn(), Excl: excl})
					g, err := a.Wait(ctx)
					if err != nil {
						t.Errorf("worker %d: acquire lock %d: %v (replay: %s)", id, lock, err, check.ReplayArgs(seed))
						return
					}
					rec.observe(check.Event{Kind: check.EvGrant, Lock: lock, Txn: g.Txn(), Excl: excl})
					if rng.Intn(4) == 0 {
						time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					}
					rec.observe(check.Event{Kind: check.EvRelease, Lock: lock, Txn: g.Txn(), Excl: excl})
					if rng.Intn(2) == 0 {
						g.Release()
					} else if err := g.ReleaseWait(ctx); err != nil {
						t.Errorf("worker %d: release lock %d: %v (replay: %s)", id, lock, err, check.ReplayArgs(seed))
						return
					}
				}
			}(c, ci*workersPer+w)
		}
	}
	wg.Wait()
	// Quiesce the rack (clients, then switches, then servers) before the
	// chaos drain: the switch sweep keeps re-sending un-released grants
	// (e.g. for just-closed clients), and a send entering the chaos edge
	// concurrently with the drain would race the WaitGroup.
	tp.Close()

	rec.mu.Lock()
	viol := rec.viol
	rec.mu.Unlock()
	if viol != nil {
		t.Fatalf("trace violation: %v (replay: %s)", viol, check.ReplayArgs(seed))
	}
	if v := rec.ck.Quiesce(); v != nil {
		t.Fatalf("quiescence: %v (replay: %s)", v, check.ReplayArgs(seed))
	}
	grants, _, releases := rec.ck.Stats()
	want := nClients * workersPer * opsPer
	if t.Failed() {
		return
	}
	if grants != want || releases != want {
		t.Fatalf("vacuous run: %d grants, %d releases, want %d each (replay: %s)",
			grants, releases, want, check.ReplayArgs(seed))
	}
}

// frameHasOp reports whether a datagram (bare header or batch frame)
// carries an op of the given kind.
func frameHasOp(data []byte, op wire.Op) bool {
	var h wire.Header
	if wire.IsChain(data) {
		return false
	}
	if wire.IsBatch(data) {
		var br wire.BatchReader
		if br.Reset(data) != nil {
			return false
		}
		for {
			ok, err := br.Next(&h)
			if err != nil || !ok {
				return false
			}
			if h.Op == op {
				return true
			}
		}
	}
	return h.DecodeFromBytes(data) == nil && h.Op == op
}

// TestReleaseRetransmitAfterLoss is the leaked-lock regression: with the
// old fire-and-forget release, dropping the release datagram stranded the
// lock until lease expiry (forever, without a lease). The client must now
// retransmit the release until the end-to-end ack lands.
func TestReleaseRetransmitAfterLoss(t *testing.T) {
	tp, err := ctrlplane.New(ctrlplane.Config{
		Servers:     1,
		DataPlane:   dpConfig(),
		Chaos:       &transport.ChaosConfig{Seed: 1},
		SwitchLocks: []ctrlplane.SwitchLock{{ID: 7, Slots: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	var dropped atomic.Int32
	tp.Chaos().SetFilter(func(data []byte, from, to netip.AddrPort) bool {
		if frameHasOp(data, wire.OpRelease) && dropped.CompareAndSwap(0, 1) {
			return true
		}
		return false
	})

	c, err := tp.NewClient(transport.ClientConfig{RetryInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	g, err := c.Acquire(ctx, 7, netlock.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	g.Release() // first release datagram is eaten by the filter

	// A second exclusive acquire only succeeds once the retransmitted
	// release lands; fire-and-forget would hang here forever.
	g2, err := c.Acquire(ctx, 7, netlock.Exclusive)
	if err != nil {
		t.Fatalf("acquire after lossy release: %v", err)
	}
	if dropped.Load() != 1 {
		t.Fatalf("filter never saw a release datagram")
	}
	if err := g2.ReleaseWait(ctx); err != nil {
		t.Fatalf("ReleaseWait: %v", err)
	}
}

// TestReleaseAckIdempotent: a duplicated release datagram (or a
// retransmit racing its own ack) must ack idempotently, never dequeue a
// second holder. The duplicating chaos network plus a waiter pair on one
// lock covers the double-release hazard directly.
func TestReleaseAckIdempotent(t *testing.T) {
	tp, err := ctrlplane.New(ctrlplane.Config{
		Servers:   1,
		DataPlane: dpConfig(),
		// Duplicate every client-edge datagram.
		Chaos:       &transport.ChaosConfig{Seed: 3, Dup: 1.0},
		SwitchLocks: []ctrlplane.SwitchLock{{ID: 9, Slots: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()

	c, err := tp.NewClient(transport.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	g1, err := c.Acquire(ctx, 9, netlock.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	// Queue a second exclusive waiter, then release. If the duplicated
	// release dequeued the waiter's fresh grant too, g2 would be granted
	// while a third acquire also succeeds — instead the third must block
	// until g2 releases.
	a2, err := c.AcquireAsync(ctx, 9, netlock.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	if err := g1.ReleaseWait(ctx); err != nil {
		t.Fatal(err)
	}
	g2, err := a2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	short, cancel2 := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel2()
	if _, err := c.Acquire(short, 9, netlock.Exclusive); !errors.Is(err, netlock.ErrTimeout) {
		t.Fatalf("third acquire while g2 held: err=%v, want timeout", err)
	}
	if err := g2.ReleaseWait(ctx); err != nil {
		t.Fatal(err)
	}
}
