package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"netlock"
	"netlock/internal/lockserver"
	"netlock/internal/switchdp"
)

// These tests pin the sentinel-error contract over the *batched*
// multiplexed client (default MaxBatch, so ops coalesce into batch
// frames): every terminal failure must match its netlock sentinel via
// errors.Is even after crossing the wire as an OpReject or expiring in
// the client's retry loop.

func markReliable(t *testing.T, cn *ChaosNet, addr string) {
	t.Helper()
	if err := cn.MarkReliable(addr); err != nil {
		t.Fatalf("MarkReliable(%q): %v", addr, err)
	}
}

// errorRack builds a one-server rack over a quiet chaos network with a
// caller-controlled server and data-plane config.
func errorRack(t *testing.T, srvCfg lockserver.Config, dp switchdp.Config) (*ChaosNet, *Switch, []*Server) {
	t.Helper()
	cn := NewChaosNet(ChaosConfig{Seed: 1})
	srv, err := NewServer(ServerConfig{Listen: "10.99.0.1:0", Config: srvCfg, Net: cn})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	markReliable(t, cn, srv.Addr())
	sw, err := NewSwitch(SwitchConfig{Listen: "10.99.0.1:0", DataPlane: dp, Servers: []string{srv.Addr()}, Net: cn})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sw.Close() })
	markReliable(t, cn, sw.Addr())
	if err := srv.SetSwitchAddr(sw.Addr()); err != nil {
		t.Fatal(err)
	}
	return cn, sw, []*Server{srv}
}

func batchedClient(t *testing.T, cn *ChaosNet, sw *Switch) *Client {
	t.Helper()
	c, err := NewClientConfig(ClientConfig{
		Switch:        sw.Addr(),
		Net:           cn,
		FlushInterval: 100 * time.Microsecond,
		RetryInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestBatchedErrQueueOverflow fills a server-owned lock's bounded buffer
// (MaxBuffer 1: the holder occupies the only slot) and requires the
// bounced request to surface as ErrQueueOverflow.
func TestBatchedErrQueueOverflow(t *testing.T) {
	cn, sw, _ := errorRack(t,
		lockserver.Config{MaxBuffer: 1},
		switchdp.Config{MaxLocks: 4, TotalSlots: 16, Priorities: 1})
	c := batchedClient(t, cn, sw)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	g, err := c.Acquire(ctx, 7, netlock.Exclusive)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	defer g.Release()

	_, err = c.Acquire(ctx, 7, netlock.Exclusive)
	if !errors.Is(err, netlock.ErrQueueOverflow) {
		t.Fatalf("overflowed acquire: %v, want errors.Is ErrQueueOverflow", err)
	}
	// The sentinel must not alias the other reject class.
	if errors.Is(err, netlock.ErrQuotaExceeded) {
		t.Fatalf("overflow error also matches ErrQuotaExceeded: %v", err)
	}
}

// TestBatchedErrQuotaExceeded meters a tenant down to a single-token
// burst and requires the switch's ingress reject to surface as
// ErrQuotaExceeded.
func TestBatchedErrQuotaExceeded(t *testing.T) {
	cn, sw, servers := errorRack(t,
		lockserver.Config{},
		switchdp.Config{MaxLocks: 4, TotalSlots: 16, Priorities: 1, Isolation: true})
	if err := InstallSwitchLock(sw, servers, 3, []switchdp.Region{{Left: 0, Right: 8}}); err != nil {
		t.Fatal(err)
	}
	sw.WithDataPlane(func(dp *switchdp.Switch) {
		dp.CtrlSetTenantQuota(5, 0.001, 1)
	})
	c := batchedClient(t, cn, sw)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	g, err := c.Acquire(ctx, 3, netlock.Shared, netlock.WithTenant(5))
	if err != nil {
		t.Fatalf("burst acquire: %v", err)
	}
	g.Release()

	_, err = c.Acquire(ctx, 3, netlock.Shared, netlock.WithTenant(5))
	if !errors.Is(err, netlock.ErrQuotaExceeded) {
		t.Fatalf("metered acquire: %v, want errors.Is ErrQuotaExceeded", err)
	}
	if errors.Is(err, netlock.ErrQueueOverflow) {
		t.Fatalf("quota error also matches ErrQueueOverflow: %v", err)
	}
}

// TestBatchedErrTimeout expires a queued acquire's context while another
// holder pins the lock; the client must wrap the deadline expiry so both
// errors.Is(err, ErrTimeout) and errors.Is(err, context.DeadlineExceeded)
// hold.
func TestBatchedErrTimeout(t *testing.T) {
	cn, sw, servers := errorRack(t,
		lockserver.Config{},
		switchdp.Config{MaxLocks: 4, TotalSlots: 16, Priorities: 1})
	if err := InstallSwitchLock(sw, servers, 9, []switchdp.Region{{Left: 0, Right: 8}}); err != nil {
		t.Fatal(err)
	}
	c := batchedClient(t, cn, sw)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	g, err := c.Acquire(ctx, 9, netlock.Exclusive)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	defer g.Release()

	short, scancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer scancel()
	_, err = c.Acquire(short, 9, netlock.Exclusive)
	if !errors.Is(err, netlock.ErrTimeout) {
		t.Fatalf("queued acquire: %v, want errors.Is ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire: %v, want errors.Is context.DeadlineExceeded", err)
	}
}
