package transport

import (
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"
)

// ChaosConfig parameterizes a ChaosNet. The zero value is a perfect,
// loss-free in-process network.
type ChaosConfig struct {
	// Seed drives every probabilistic decision; two ChaosNets with the
	// same seed and the same traffic make the same decisions, so failing
	// runs replay with `go test -netlock.seed=N`.
	Seed int64
	// Drop is the probability an edge datagram is silently discarded.
	Drop float64
	// Dup is the probability an edge datagram is delivered twice.
	Dup float64
	// Delay is the probability a delivery is deferred by a random amount
	// up to MaxDelay (reordering).
	Delay float64
	// MaxDelay bounds the random delivery delay. Default 2ms.
	MaxDelay time.Duration
}

// ChaosNet is an in-process Network with seeded, packet-level chaos, the
// adversarial substrate of the conformance and scenario suites. Links where
// both endpoints are marked reliable (the in-rack switch<->server fabric,
// which the q1/q2 protocol assumes lossless and ordered) deliver
// synchronously in order; every other link — the client edge — drops,
// duplicates, and delays datagrams under the seeded rand.
type ChaosNet struct {
	mu       sync.Mutex
	rng      *rand.Rand
	cfg      ChaosConfig
	conns    map[netip.AddrPort]*chaosConn
	reliable map[netip.AddrPort]bool
	nextPort uint16

	// filter, when set, drops any edge datagram it returns true for
	// (called with the net's mutex held).
	filter func(data []byte, from, to netip.AddrPort) bool

	wg sync.WaitGroup // in-flight delayed deliveries
}

// NewChaosNet builds a chaos network.
func NewChaosNet(cfg ChaosConfig) *ChaosNet {
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	return &ChaosNet{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cfg:      cfg,
		conns:    make(map[netip.AddrPort]*chaosConn),
		reliable: make(map[netip.AddrPort]bool),
	}
}

// Listen assigns the next fake address; the requested bind address only
// matters for its host part, which is ignored (everything shares one fake
// subnet).
func (cn *ChaosNet) Listen(string) (PacketConn, error) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	cn.nextPort++
	ap := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 99, 0, 1}), cn.nextPort)
	cc := &chaosConn{
		cn:     cn,
		local:  ap,
		inbox:  make(chan chaosPacket, 4096),
		closed: make(chan struct{}),
	}
	cn.conns[ap] = cc
	return cc, nil
}

// MarkReliable exempts addr from chaos when talking to other reliable
// peers — the in-rack fabric between the switch and its lock servers.
func (cn *ChaosNet) MarkReliable(addr string) error {
	ap, err := netip.ParseAddrPort(addr)
	if err != nil {
		return err
	}
	cn.mu.Lock()
	cn.reliable[normAddrPort(ap)] = true
	cn.mu.Unlock()
	return nil
}

// SetFilter installs a targeted drop rule for edge datagrams (nil clears
// it). The filter runs with the net's mutex held and must not block.
func (cn *ChaosNet) SetFilter(fn func(data []byte, from, to netip.AddrPort) bool) {
	cn.mu.Lock()
	cn.filter = fn
	cn.mu.Unlock()
}

// Wait blocks until every delayed delivery has landed. Call it only after
// all senders have shut down, or new delays may race the wait.
func (cn *ChaosNet) Wait() { cn.wg.Wait() }

func (cn *ChaosNet) send(from *chaosConn, data []byte, to netip.AddrPort) {
	cn.mu.Lock()
	dst := cn.conns[to]
	if dst == nil {
		cn.mu.Unlock()
		return
	}
	pkt := chaosPacket{data: append([]byte(nil), data...), from: from.local}
	if cn.reliable[from.local] && cn.reliable[to] {
		cn.mu.Unlock()
		dst.deliver(pkt)
		return
	}
	if cn.filter != nil && cn.filter(pkt.data, from.local, to) {
		cn.mu.Unlock()
		return
	}
	if cn.rng.Float64() < cn.cfg.Drop {
		cn.mu.Unlock()
		return
	}
	copies := 1
	if cn.rng.Float64() < cn.cfg.Dup {
		copies = 2
	}
	var delays [2]time.Duration
	for i := 0; i < copies; i++ {
		if cn.rng.Float64() < cn.cfg.Delay && cn.cfg.MaxDelay > 0 {
			delays[i] = time.Duration(cn.rng.Int63n(int64(cn.cfg.MaxDelay)))
		}
	}
	cn.mu.Unlock()
	for i := 0; i < copies; i++ {
		if delays[i] == 0 {
			dst.deliver(pkt)
			continue
		}
		cn.wg.Add(1)
		go func(d time.Duration) {
			defer cn.wg.Done()
			time.Sleep(d)
			dst.deliver(pkt)
		}(delays[i])
	}
}

type chaosPacket struct {
	data []byte
	from netip.AddrPort
}

type chaosConn struct {
	cn        *ChaosNet
	local     netip.AddrPort
	inbox     chan chaosPacket
	closed    chan struct{}
	closeOnce sync.Once
}

func (cc *chaosConn) deliver(p chaosPacket) {
	select {
	case <-cc.closed:
		return
	default:
	}
	select {
	case cc.inbox <- p:
	default: // inbox full: drop, it's UDP
	}
}

func (cc *chaosConn) ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error) {
	select {
	case <-cc.closed:
		return 0, netip.AddrPort{}, net.ErrClosed
	case p := <-cc.inbox:
		return copy(b, p.data), p.from, nil
	}
}

func (cc *chaosConn) WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error) {
	select {
	case <-cc.closed:
		return 0, net.ErrClosed
	default:
	}
	cc.cn.send(cc, b, normAddrPort(addr))
	return len(b), nil
}

func (cc *chaosConn) Close() error {
	cc.closeOnce.Do(func() {
		close(cc.closed)
		cc.cn.mu.Lock()
		delete(cc.cn.conns, cc.local)
		cc.cn.mu.Unlock()
	})
	return nil
}

func (cc *chaosConn) LocalAddr() net.Addr {
	return net.UDPAddrFromAddrPort(cc.local)
}
