package transport

import (
	"net/netip"

	"netlock/internal/obs"
	"netlock/internal/wire"
)

// egress accumulates outgoing ops into per-destination batch frames and
// writes each frame with one conn write. Flush policy belongs to the
// caller: the switch and server flush after every ingress datagram (plus an
// optional timer), the client flushes adaptively (see client.go). egress is
// not goroutine-safe; each node serializes it under its own mutex.
type egress struct {
	conn PacketConn
	o    *obs.Stripe
	// max is the op capacity per frame; 1 sends legacy bare-header
	// datagrams (no batch preamble), which is the unbatched baseline the
	// load generator compares against.
	max     int
	dests   map[netip.AddrPort]*destBatch
	free    []*destBatch
	scratch [wire.HeaderLen]byte
}

// destBatch is one destination's open frame. store keeps the frame's
// backing array across flushes so steady-state egress does not allocate.
type destBatch struct {
	ap    netip.AddrPort
	w     wire.BatchWriter
	store []byte
}

func newEgress(conn PacketConn, o *obs.Stripe, max int) *egress {
	if max <= 0 || max > wire.MaxBatchOps {
		max = wire.MaxBatchOps
	}
	return &egress{
		conn:  conn,
		o:     o,
		max:   max,
		dests: make(map[netip.AddrPort]*destBatch),
	}
}

// send queues h toward ap, flushing the destination's frame first if it is
// full. The op is not on the wire until the next flush (unless max == 1).
func (e *egress) send(h *wire.Header, ap netip.AddrPort) {
	if e.max == 1 {
		buf := h.AppendTo(e.scratch[:0])
		e.conn.WriteToUDPAddrPort(buf, ap)
		e.o.Inc(obs.CtrFramesOut)
		e.o.Observe(obs.StageEgressBatch, 1)
		return
	}
	db := e.dests[ap]
	if db == nil {
		if n := len(e.free); n > 0 {
			db = e.free[n-1]
			e.free = e.free[:n-1]
		} else {
			db = &destBatch{}
		}
		db.ap = ap
		db.w.Reset(db.store)
		e.dests[ap] = db
	}
	if db.w.Count() >= e.max || !db.w.Append(h) {
		e.flushDest(db)
		db.w.Append(h)
	}
}

// flushDest writes db's open frame, if any, and resets the writer. The
// destination stays registered.
func (e *egress) flushDest(db *destBatch) {
	n := db.w.Count()
	frame := db.w.Frame()
	if frame != nil {
		e.conn.WriteToUDPAddrPort(frame, db.ap)
		e.o.Inc(obs.CtrFramesOut)
		e.o.Observe(obs.StageEgressBatch, int64(n))
		db.store = frame[:0]
	}
	db.w.Reset(db.store)
}

// flushAll writes every destination's open frame and returns the
// destination slots to the free list.
func (e *egress) flushAll() {
	for ap, db := range e.dests {
		e.flushDest(db)
		delete(e.dests, ap)
		e.free = append(e.free, db)
	}
}
