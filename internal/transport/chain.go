package transport

import (
	"fmt"
	"net/netip"
	"time"

	"netlock/internal/wire"
)

// NetChain-style chain replication of the switch data plane.
//
// A chain is 2-3 Switch nodes holding identical replicas of the switch
// state: the data-plane program (queues, grants, overflow marks) and the
// transport dedup tables (pending, granted, relPending). The protocol
// keeps them identical by replicating *decisions*, not state: the head is
// the single sequencer — every state-mutating op (client acquires and
// releases after the head's dedup vetting, lock-server responses, the
// lease sweep's synthesized releases) receives a sequence number and
// propagates head→tail in wire.ChainMsg envelopes over the reliable
// in-rack fabric. Every member applies the same op stream through
// Switch.applyOp, which is deterministic given the stream; only the tail's
// sends are externally visible (grants to clients, forwards to lock
// servers). A client therefore observes a grant only after every member
// has recorded it: killing any member never loses a granted lock, and the
// replicated dedup tables mean a retransmitted acquire or release is
// answered the same way by whichever member is head after a failure —
// never double-granted and never double-released.
//
// Wall-clock divergence is kept out of the replicated stream: quota
// metering runs once at the head (ChainRole.MeterAtHead +
// switchdp.CtrlMeterAdmit; rejected acquires are never sequenced) and only
// the head scans for expired leases, sequencing the resulting releases
// like any other op. Lease *values* stamped by each replica differ
// harmlessly: they are never compared across members.
//
// Reconfiguration is epoch-fenced. The controller (internal/ctrlplane)
// closes the failed member, bumps the epoch, pushes new roles with
// ChainConfigure, heals sequence gaps with ChainReplay, re-points the lock
// servers at the (possibly new) head, and the promoted head broadcasts
// wire.OpEpoch to every client it knows from its tables. Members drop
// envelopes from other epochs; non-head members relay mis-addressed
// external ops to the head (ChainRelay, never re-relayed) and redirect
// clients with OpEpoch.
//
// Relaxations vs NetChain (documented in DESIGN.md §12): replication runs
// over the same reliable in-rack assumption the q1/q2 protocol already
// makes, with a nack-and-replay escape hatch (a gap triggers an immediate
// ack carrying the receiver's applied prefix; senders also re-send a
// stalled log from the sweep) instead of NetChain's per-link FIFO
// guarantee; and chain frames ride the normal UDP sockets rather than
// data-plane segment routing.

// chainState is a Switch's replication role. The zero value is completed
// by NewSwitch to a single-member chain (head and tail, epoch 0), which
// behaves exactly like an unreplicated switch. Guarded by Switch.mu.
type chainState struct {
	epoch uint64
	head  bool
	tail  bool
	// succ is the next chain member; invalid on the tail.
	succ netip.AddrPort
	// headAP is the current head; invalid on the head itself.
	headAP netip.AddrPort
	// peers are the other chain members (the tail acks applied prefixes to
	// all of them).
	peers []netip.AddrPort
	// seq is the last sequence number this member applied; the head also
	// assigns new numbers from it.
	seq uint64
	// log holds applied-but-unacked ops for replay to the successor. The
	// tail keeps none: its apply is the external commit.
	log []wire.ChainMsg
	// meterAtHead moves per-tenant quota decisions out of the (replicated,
	// clock-dependent) data plane into the head's ingress.
	meterAtHead bool
	// lastMoveNs is the data-plane clock at the last log append or prune,
	// pacing the sweep's stalled-log re-send.
	lastMoveNs int64
	gapDrops   uint64
	// egDests buffers outgoing chain records per destination so one
	// ingress datagram's worth of sequenced ops leaves in one chain
	// datagram — chain traffic batches at the same grain as client
	// frames instead of costing one datagram per op.
	egDests []chainDest
}

// chainDest is one buffered chain egress destination (successor, peers,
// or the head for relays — at most a handful per member).
type chainDest struct {
	to  netip.AddrPort
	buf []byte
}

// chainHealNs paces the sweep's re-send of an un-acked log: the in-rack
// fabric is reliable but a full inbox can still drop a frame, and an
// unhealed gap would stall replication behind it.
const chainHealNs = int64(50 * time.Millisecond)

// ChainRole is the chain membership a controller pushes to one Switch with
// ChainConfigure.
type ChainRole struct {
	// Epoch fences the configuration: envelopes from other epochs are
	// dropped.
	Epoch uint64
	// Head sequences external ingress; Tail emits externally. A
	// single-member chain is both.
	Head, Tail bool
	// Succ is the next member's address ("" on the tail).
	Succ string
	// HeadAddr is the current head's address ("" on the head itself);
	// non-head members relay mis-addressed ops there.
	HeadAddr string
	// Peers are every other member's address (the tail sends applied-prefix
	// acks to all of them).
	Peers []string
	// MeterAtHead makes the head (and any later-promoted head) apply
	// per-tenant quotas at ingress via switchdp.CtrlMeterAdmit. Set
	// together with CtrlSetMeterBypass on every member's data plane.
	MeterAtHead bool
}

// ChainInfo is a point-in-time view of a member's replication state.
type ChainInfo struct {
	Epoch   uint64
	Applied uint64 // last applied sequence number
	LogLen  int    // applied-but-unacked ops held for replay
	Head    bool
	Tail    bool
	// GapDrops counts envelopes dropped for arriving ahead of a gap; each
	// triggered a nack and was healed by replay.
	GapDrops uint64
}

// ChainConfigure installs a new chain role, fencing the member to
// r.Epoch. Promotion to head broadcasts an OpEpoch announcement to every
// client found in the replicated tables so in-flight traffic re-targets.
func (s *Switch) ChainConfigure(r ChainRole) error {
	var succ, headAP netip.AddrPort
	var err error
	if r.Succ != "" {
		if succ, err = resolveAddrPort(r.Succ); err != nil {
			return fmt.Errorf("transport: resolve chain successor %q: %w", r.Succ, err)
		}
	}
	if r.HeadAddr != "" {
		if headAP, err = resolveAddrPort(r.HeadAddr); err != nil {
			return fmt.Errorf("transport: resolve chain head %q: %w", r.HeadAddr, err)
		}
	}
	peers := make([]netip.AddrPort, 0, len(r.Peers))
	for _, p := range r.Peers {
		ap, err := resolveAddrPort(p)
		if err != nil {
			return fmt.Errorf("transport: resolve chain peer %q: %w", p, err)
		}
		peers = append(peers, ap)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	promoted := r.Head && !s.chain.head
	s.chain.epoch = r.Epoch
	s.chain.head = r.Head
	s.chain.tail = r.Tail
	s.chain.succ = succ
	s.chain.headAP = headAP
	s.chain.peers = peers
	s.chain.meterAtHead = r.MeterAtHead
	if r.Tail {
		// The tail's apply is the commit; any log carried over from a
		// previous role has nobody left to replay to.
		s.chain.log = s.chain.log[:0]
	}
	if promoted {
		s.announceEpochLocked()
	}
	return nil
}

// ChainStatus returns the member's replication state.
func (s *Switch) ChainStatus() ChainInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ChainInfo{
		Epoch:    s.chain.epoch,
		Applied:  s.chain.seq,
		LogLen:   len(s.chain.log),
		Head:     s.chain.head,
		Tail:     s.chain.tail,
		GapDrops: s.chain.gapDrops,
	}
}

// ChainReplay re-sends every logged op with sequence number above from to
// this member's successor, re-stamped with the current epoch. The
// controller calls it after reconfiguration to heal the gap between a
// member and its (possibly new) successor; members also trigger it
// spontaneously when a successor nacks a gap.
func (s *Switch) ChainReplay(from uint64) {
	s.mu.Lock()
	s.replayLocked(from)
	s.flushChain()
	s.mu.Unlock()
}

func (s *Switch) replayLocked(from uint64) {
	if !s.chain.succ.IsValid() {
		return
	}
	for i := range s.chain.log {
		m := &s.chain.log[i]
		if m.Seq <= from {
			continue
		}
		m.Epoch = s.chain.epoch
		s.sendChain(m, s.chain.succ)
	}
}

// sequence assigns the next sequence number to h, applies it locally, and
// propagates it down the chain. Head only. Caller holds s.mu.
func (s *Switch) sequence(origin wire.ChainOrigin, h *wire.Header) {
	s.chain.seq++
	m := wire.ChainMsg{Kind: wire.ChainOp, Origin: origin,
		Epoch: s.chain.epoch, Seq: s.chain.seq, Hdr: *h}
	if !s.chain.tail {
		s.logAppend(&m)
	}
	s.applyOp(origin, h)
	if s.chain.succ.IsValid() {
		s.sendChain(&m, s.chain.succ)
	}
}

// handleChain processes one ingress chain datagram: a concatenation of
// self-delimiting chain records (acks are ChainHdrLen, ops and relays
// ChainOpLen). Per-frame effects are coalesced — one tail ack covers
// every op applied from the frame, one nack answers any number of gap
// records, and incoming acks are folded to their highest prefix before
// pruning or replaying — so batched chain traffic never amplifies.
// Caller holds s.mu.
func (s *Switch) handleChain(data []byte, from netip.AddrPort) {
	applied := false
	nacked := false
	ackSeen := false
	var ackMax uint64
	for len(data) >= wire.ChainHdrLen {
		var m wire.ChainMsg
		if m.DecodeFromBytes(data) != nil {
			break
		}
		if m.Kind == wire.ChainAck {
			data = data[wire.ChainHdrLen:]
		} else {
			data = data[wire.ChainOpLen:]
		}
		switch m.Kind {
		case wire.ChainAck:
			if m.Epoch != s.chain.epoch {
				continue
			}
			if !ackSeen || m.Seq > ackMax {
				ackMax = m.Seq
			}
			ackSeen = true
		case wire.ChainRelay:
			// A stale member forwarded external ingress to us. Only the
			// head sequences; relays are never re-relayed (bounds routing
			// loops while a reconfiguration converges).
			if !s.chain.head {
				continue
			}
			h := m.Hdr
			s.headIngress(m.Origin, &h, clientAddrOf(&h))
		case wire.ChainOp:
			if m.Epoch != s.chain.epoch || s.chain.head {
				continue
			}
			switch {
			case m.Seq <= s.chain.seq:
				continue // duplicate (replay overlap)
			case m.Seq != s.chain.seq+1:
				// Gap: nack with our applied prefix so the sender replays
				// the missing range; these ops will arrive again in order.
				s.chain.gapDrops++
				if !nacked {
					nacked = true
					s.sendAckTo(from)
				}
				continue
			}
			s.chain.seq = m.Seq
			if !s.chain.tail {
				s.logAppend(&m)
			}
			h := m.Hdr
			s.applyOp(m.Origin, &h)
			applied = true
			if !s.chain.tail && s.chain.succ.IsValid() {
				s.sendChain(&m, s.chain.succ)
			}
		}
	}
	if ackSeen {
		s.pruneLog(ackMax)
		if from == s.chain.succ && ackMax < s.chain.seq {
			// The successor is behind (a gap nack, or a stale ack racing
			// live traffic): replay our log above its applied prefix.
			s.replayLocked(ackMax)
		}
	}
	if applied && s.chain.tail {
		for _, p := range s.chain.peers {
			s.sendAckTo(p)
		}
	}
}

// relayToHead handles external ingress on a non-head member: wrap the op
// for the head (which alone sequences) and, for client senders, announce
// the current head so the client re-targets. Caller holds s.mu.
func (s *Switch) relayToHead(h *wire.Header, from netip.AddrPort) {
	if h.Op == wire.OpEpoch {
		return
	}
	origin := wire.OriginClient
	if s.fromServer(from) {
		origin = wire.OriginServer
	} else {
		s.stampClient(h, from)
		if s.chain.headAP.IsValid() {
			s.sendEpochTo(from, s.chain.headAP)
		}
	}
	if s.chain.headAP.IsValid() {
		m := wire.ChainMsg{Kind: wire.ChainRelay, Origin: origin,
			Epoch: s.chain.epoch, Hdr: *h}
		s.sendChain(&m, s.chain.headAP)
	}
}

// announceEpochLocked broadcasts an OpEpoch announcement naming this
// member as head to every client address in the replicated tables. Caller
// holds s.mu.
func (s *Switch) announceEpochLocked() {
	if !s.selfAP.IsValid() {
		return
	}
	seen := make(map[netip.AddrPort]struct{}, len(s.pending)+len(s.granted)+len(s.relPending))
	send := func(to netip.AddrPort) {
		if !to.IsValid() {
			return
		}
		if _, dup := seen[to]; dup {
			return
		}
		seen[to] = struct{}{}
		s.sendEpochTo(to, s.selfAP)
	}
	for _, p := range s.pending {
		send(p.addr)
	}
	for _, g := range s.granted {
		send(g.addr)
	}
	for _, to := range s.relPending {
		send(to)
	}
	s.eg.flushAll()
}

// sendEpochTo sends one OpEpoch announcement (TxnID carries the epoch, the
// client address fields carry the head) to a client. Caller holds s.mu.
func (s *Switch) sendEpochTo(to, head netip.AddrPort) {
	ann := wire.Header{Op: wire.OpEpoch, TxnID: s.chain.epoch,
		ClientIP: head.Addr().Unmap(), ClientPort: head.Port()}
	s.eg.send(&ann, to)
}

// chainHeal re-sends a stalled un-acked log from the sweep. Caller holds
// s.mu.
func (s *Switch) chainHeal() {
	if len(s.chain.log) == 0 || !s.chain.succ.IsValid() {
		return
	}
	if s.now()-s.chain.lastMoveNs < chainHealNs {
		return
	}
	s.chain.lastMoveNs = s.now()
	s.replayLocked(s.chain.log[0].Seq - 1)
}

func (s *Switch) logAppend(m *wire.ChainMsg) {
	if len(s.chain.log) == 0 {
		s.chain.lastMoveNs = s.now()
	}
	s.chain.log = append(s.chain.log, *m)
}

func (s *Switch) pruneLog(upto uint64) {
	log := s.chain.log
	i := 0
	for i < len(log) && log[i].Seq <= upto {
		i++
	}
	if i == 0 {
		return
	}
	n := copy(log, log[i:])
	s.chain.log = log[:n]
	s.chain.lastMoveNs = s.now()
}

// sendChain queues one chain record for to. Records are concatenated per
// destination and leave in one datagram at the next flushChain — the end
// of the ingress datagram, sweep, or replay that produced them. Caller
// holds s.mu.
func (s *Switch) sendChain(m *wire.ChainMsg, to netip.AddrPort) {
	d := s.chainDest(to)
	if len(d.buf)+wire.ChainOpLen > maxPacket {
		s.conn.WriteToUDPAddrPort(d.buf, d.to)
		d.buf = d.buf[:0]
	}
	d.buf = m.AppendTo(d.buf)
}

func (s *Switch) chainDest(to netip.AddrPort) *chainDest {
	for i := range s.chain.egDests {
		if s.chain.egDests[i].to == to {
			return &s.chain.egDests[i]
		}
	}
	s.chain.egDests = append(s.chain.egDests, chainDest{to: to})
	return &s.chain.egDests[len(s.chain.egDests)-1]
}

// flushChain sends every buffered chain record. Caller holds s.mu.
func (s *Switch) flushChain() {
	for i := range s.chain.egDests {
		d := &s.chain.egDests[i]
		if len(d.buf) == 0 {
			continue
		}
		s.conn.WriteToUDPAddrPort(d.buf, d.to)
		d.buf = d.buf[:0]
	}
}

func (s *Switch) sendAckTo(to netip.AddrPort) {
	if !to.IsValid() {
		return
	}
	m := wire.ChainMsg{Kind: wire.ChainAck, Epoch: s.chain.epoch, Seq: s.chain.seq}
	s.sendChain(&m, to)
}

// stampClient records the requester's address inside the header so chain
// replicas (which never see the original datagram) reconstruct the same
// table entries as the head.
func (s *Switch) stampClient(h *wire.Header, from netip.AddrPort) {
	if from.IsValid() {
		h.ClientIP = from.Addr().Unmap()
		h.ClientPort = from.Port()
	}
}

// clientAddrOf reconstructs the requester's address stamped in a header.
// Invalid when the header was never stamped (port zero).
func clientAddrOf(h *wire.Header) netip.AddrPort {
	if h.ClientPort == 0 || !h.ClientIP.IsValid() || h.ClientIP.IsUnspecified() {
		return netip.AddrPort{}
	}
	return netip.AddrPortFrom(h.ClientIP.Unmap(), h.ClientPort)
}
