package transport

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"netlock"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// TestAcquireTimeoutMatchesContext pins the deprecation contract: the
// AcquireTimeout shim and a context-first Acquire with the same deadline
// must fail identically over the batched path — same sentinels, same
// message — so callers can migrate without changing error handling.
func TestAcquireTimeoutMatchesContext(t *testing.T) {
	sw, _ := rack(t, 1, dpConfig())
	holder := client(t, sw)
	g, err := acquire(holder, 1, netlock.Exclusive, timeout)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()

	c := client(t, sw)
	const d = 150 * time.Millisecond

	_, errShim := c.AcquireTimeout(1, wire.Exclusive, d)
	ctx, cancel := context.WithTimeout(context.Background(), d)
	_, errCtx := c.Acquire(ctx, 1, netlock.Exclusive)
	cancel()

	for name, err := range map[string]error{"AcquireTimeout": errShim, "Acquire": errCtx} {
		if err == nil {
			t.Fatalf("%s: acquired a held exclusive lock", name)
		}
		if !errors.Is(err, netlock.ErrTimeout) {
			t.Errorf("%s: %v, want errors.Is ErrTimeout", name, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: %v, want errors.Is context.DeadlineExceeded", name, err)
		}
	}
	if errShim.Error() != errCtx.Error() {
		t.Errorf("error text diverged:\n  AcquireTimeout: %q\n  Acquire:        %q",
			errShim.Error(), errCtx.Error())
	}
}

// TestClientSteadyStateAllocs gates the client's steady-state send/receive
// path: once the pools and tables are warm, an acquire/release round trip
// must not allocate on the client side. The budget of 2 allocs/op absorbs
// runtime noise from the in-process switch and server goroutines (netpoll,
// map growth) that AllocsPerRun cannot separate out.
func TestClientSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate skipped in -short")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	sw, servers := rack(t, 1, dpConfig())
	// Switch-resident lock: the steady-state round trip is one RTT with no
	// server hop, so the measurement covers exactly the client+switch path.
	installLock(t, sw, servers, 1, switchdp.Region{Left: 0, Right: 8})

	c, err := NewClientConfig(ClientConfig{
		Switch: sw.Addr(),
		// Park the retry and flush tickers: a retransmit mid-measurement
		// would be a (legitimate) extra send, not steady state.
		RetryInterval: time.Hour,
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	ctx := context.Background()
	op := func() {
		g, err := c.Acquire(ctx, 1, netlock.Exclusive)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.ReleaseWait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ { // warm pools, maps, and the egress free list
		op()
	}
	if avg := testing.AllocsPerRun(500, op); avg > 2 {
		t.Fatalf("steady-state acquire/release allocates %.2f/op, want <= 2", avg)
	}
}
