package transport

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"netlock"
	"netlock/internal/switchdp"
	"netlock/internal/wire"
)

// Protocol-level chain replication tests: racks are wired by hand with
// ChainConfigure (the role ctrlplane.Topology automates) and probed with
// raw UDP sockets so individual frames — chain envelopes included — can be
// forged, duplicated, and reordered. End-to-end failover under a real
// Client runs in internal/ctrlplane and internal/scenario.

// chainRack starts nsw switches and one lock server on loopback and wires
// the switches into a chain (switch 0 head, switch nsw-1 tail, epoch 1).
func chainRack(t *testing.T, nsw int, dp switchdp.Config) ([]*Switch, *Server) {
	t.Helper()
	srv, err := NewServer(ServerConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	var sws []*Switch
	var addrs []string
	for i := 0; i < nsw; i++ {
		sw, err := NewSwitch(SwitchConfig{Listen: "127.0.0.1:0", DataPlane: dp, Servers: []string{srv.Addr()}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sw.Close() })
		sws = append(sws, sw)
		addrs = append(addrs, sw.Addr())
	}
	for i, sw := range sws {
		r := ChainRole{Epoch: 1, Head: i == 0, Tail: i == nsw-1}
		if i+1 < nsw {
			r.Succ = addrs[i+1]
		}
		if i > 0 {
			r.HeadAddr = addrs[0]
		}
		for j, a := range addrs {
			if j != i {
				r.Peers = append(r.Peers, a)
			}
		}
		if err := sw.ChainConfigure(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.SetSwitchAddr(addrs[0]); err != nil {
		t.Fatal(err)
	}
	return sws, srv
}

// probe is a raw UDP endpoint standing in for a client, sending hand-built
// headers and collecting whatever the rack emits.
type probe struct {
	t    *testing.T
	conn *net.UDPConn
}

func newProbe(t *testing.T) *probe {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &probe{t: t, conn: conn}
}

func (p *probe) send(h *wire.Header, to string) {
	p.t.Helper()
	ap, err := resolveAddrPort(to)
	if err != nil {
		p.t.Fatal(err)
	}
	if _, err := p.conn.WriteToUDPAddrPort(h.AppendTo(nil), ap); err != nil {
		p.t.Fatal(err)
	}
}

// recv waits for the next header matching want, skipping others (epoch
// announcements, duplicate grants from the resend sweep).
func (p *probe) recv(want wire.Op, d time.Duration) (wire.Header, bool) {
	p.t.Helper()
	deadline := time.Now().Add(d)
	buf := make([]byte, 2048)
	for time.Now().Before(deadline) {
		p.conn.SetReadDeadline(deadline)
		n, _, err := p.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return wire.Header{}, false
		}
		for _, h := range decodeAll(buf[:n]) {
			if h.Op == want {
				return h, true
			}
		}
	}
	return wire.Header{}, false
}

// decodeAll splits a datagram into headers, unwrapping batch frames.
func decodeAll(data []byte) []wire.Header {
	var out []wire.Header
	if wire.IsBatch(data) {
		var r wire.BatchReader
		if r.Reset(data) != nil {
			return out
		}
		var h wire.Header
		for {
			ok, err := r.Next(&h)
			if err != nil || !ok {
				return out
			}
			out = append(out, h)
		}
	}
	var h wire.Header
	if h.DecodeFromBytes(data) == nil {
		out = append(out, h)
	}
	return out
}

func waitStatus(t *testing.T, sw *Switch, d time.Duration, cond func(ChainInfo) bool) ChainInfo {
	t.Helper()
	deadline := time.Now().Add(d)
	var ci ChainInfo
	for time.Now().Before(deadline) {
		ci = sw.ChainStatus()
		if cond(ci) {
			return ci
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("chain status condition not reached; last %+v", ci)
	return ci
}

// TestChainReplicatedAcquireRelease drives a full server-path acquire and
// release through a 3-member chain and checks that every member applied
// the identical op stream and that the head's replay log drains.
func TestChainReplicatedAcquireRelease(t *testing.T) {
	sws, _ := chainRack(t, 3, dpConfig())
	p := newProbe(t)

	p.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: 1, TxnID: 7}, sws[0].Addr())
	if _, ok := p.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("no grant through 3-member chain")
	}
	p.send(&wire.Header{Op: wire.OpRelease, LockID: 1, TxnID: 7}, sws[0].Addr())
	if _, ok := p.recv(wire.OpReleaseAck, timeout); !ok {
		t.Fatal("no release ack through 3-member chain")
	}

	// All members converge to the same applied prefix and the tail's acks
	// drain every replay log.
	head := waitStatus(t, sws[0], timeout, func(ci ChainInfo) bool { return ci.LogLen == 0 })
	for i, sw := range sws[1:] {
		ci := waitStatus(t, sw, timeout, func(ci ChainInfo) bool {
			return ci.Applied == head.Applied && ci.LogLen == 0
		})
		if ci.Epoch != head.Epoch {
			t.Fatalf("member %d epoch %d, head %d", i+1, ci.Epoch, head.Epoch)
		}
	}
	if head.Applied < 4 {
		// acquire, grant, release, release-ack at minimum.
		t.Fatalf("head applied only %d ops", head.Applied)
	}
}

// TestChainGrantSurvivesPromotion: a grant delivered through a 2-member
// chain stays answerable — and releasable — from the surviving member
// after the head fails, because the dedup tables replicated with it.
func TestChainGrantSurvivesPromotion(t *testing.T) {
	sws, srv := chainRack(t, 2, dpConfig())
	p := newProbe(t)

	acq := wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: 3, TxnID: 9}
	p.send(&acq, sws[0].Addr())
	if _, ok := p.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("no grant")
	}

	// Head dies; the controller would now promote the tail. The promotion
	// must announce the new epoch to the holder found in the grant cache.
	sws[0].Close()
	if err := sws[1].ChainConfigure(ChainRole{Epoch: 2, Head: true, Tail: true}); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetSwitchAddr(sws[1].Addr()); err != nil {
		t.Fatal(err)
	}
	ann, ok := p.recv(wire.OpEpoch, timeout)
	if !ok {
		t.Fatal("promotion did not announce the new epoch to the grant holder")
	}
	if ann.TxnID != 2 {
		t.Fatalf("epoch announcement carries epoch %d, want 2", ann.TxnID)
	}
	head := netip.AddrPortFrom(ann.ClientIP, ann.ClientPort).String()
	if want := sws[1].Addr(); head != want {
		t.Fatalf("epoch announcement names head %s, want %s", head, want)
	}

	// A retransmitted acquire is answered from the replicated grant cache —
	// not double-granted through the data plane.
	p.send(&acq, sws[1].Addr())
	if _, ok := p.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("retransmit not answered from replicated grant cache")
	}
	if g := sws[1].Snapshot().Stats.GrantsImmediate + sws[1].Snapshot().Stats.GrantsQueued; g != 0 {
		t.Fatalf("replica's data plane granted %d times; lock is server-resident", g)
	}

	// The release must complete against the new head.
	p.send(&wire.Header{Op: wire.OpRelease, LockID: 3, TxnID: 9}, sws[1].Addr())
	if _, ok := p.recv(wire.OpReleaseAck, timeout); !ok {
		t.Fatal("release not acked by promoted head")
	}
}

// TestChainRelayToHead: external ingress landing on a non-head member is
// relayed to the head (and the client redirected), so requests sent to a
// stale address during reconfiguration still complete.
func TestChainRelayToHead(t *testing.T) {
	sws, _ := chainRack(t, 2, dpConfig())
	p := newProbe(t)

	p.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: 4, TxnID: 11}, sws[1].Addr())
	ann, ok := p.recv(wire.OpEpoch, timeout)
	if !ok {
		t.Fatal("non-head member did not redirect the client")
	}
	if got := netip.AddrPortFrom(ann.ClientIP, ann.ClientPort).String(); got != sws[0].Addr() {
		t.Fatalf("redirect names %s, want head %s", got, sws[0].Addr())
	}
	if _, ok := p.recv(wire.OpGrant, timeout); !ok {
		t.Fatal("relayed acquire was not granted")
	}
}

// TestClientFailoverAnnounced: a multi-address client holding a grant
// through a 2-member chain survives head failure — the promoted head's
// epoch announcement re-targets it, the OnFailover callback fires, and an
// acquire that was outstanding across the failure completes.
func TestClientFailoverAnnounced(t *testing.T) {
	sws, srv := chainRack(t, 2, dpConfig())

	var mu sync.Mutex
	var events []string
	c, err := NewClientConfig(ClientConfig{
		Switches:      []string{sws[0].Addr(), sws[1].Addr()},
		RetryInterval: 30 * time.Millisecond,
		OnFailover: func(epoch uint64, head string) {
			mu.Lock()
			events = append(events, head)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	g, err := acquire(c, 1, netlock.Exclusive, timeout)
	if err != nil {
		t.Fatal(err)
	}

	// Second acquire contends with g, so it is still queued at the lock
	// server when the head dies.
	a2, err := c.AcquireAsync(context.Background(), 1, netlock.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	sws[0].Close()
	if err := sws[1].ChainConfigure(ChainRole{Epoch: 2, Head: true, Tail: true}); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetSwitchAddr(sws[1].Addr()); err != nil {
		t.Fatal(err)
	}

	// Releasing g through the new head unblocks the queued acquire.
	g.Release()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	g2, err := a2.Wait(ctx)
	if err != nil {
		t.Fatalf("acquire outstanding across head failure: %v", err)
	}
	if err := g2.ReleaseWait(ctx); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("OnFailover never fired")
	}
	if got := events[len(events)-1]; got != sws[1].Addr() {
		t.Fatalf("OnFailover named head %s, want %s", got, sws[1].Addr())
	}
}

// TestClientFailoverByRotation: with no grant on the table there is nobody
// for the promoted head to announce to; the client's silence-rotation
// backstop must find the new head on its own.
func TestClientFailoverByRotation(t *testing.T) {
	sws, srv := chainRack(t, 2, dpConfig())
	c, err := NewClientConfig(ClientConfig{
		Switches:      []string{sws[0].Addr(), sws[1].Addr()},
		RetryInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	sws[0].Close()
	if err := sws[1].ChainConfigure(ChainRole{Epoch: 2, Head: true, Tail: true}); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetSwitchAddr(sws[1].Addr()); err != nil {
		t.Fatal(err)
	}

	g, err := acquire(c, 2, netlock.Exclusive, timeout)
	if err != nil {
		t.Fatalf("acquire after silent head death: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := g.ReleaseWait(ctx); err != nil {
		t.Fatal(err)
	}
}

// rawChain sends a hand-built chain envelope to a switch.
func rawChain(t *testing.T, p *probe, m *wire.ChainMsg, to string) {
	t.Helper()
	ap, err := resolveAddrPort(to)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.conn.WriteToUDPAddrPort(m.AppendTo(nil), ap); err != nil {
		t.Fatal(err)
	}
}

// recvChain waits for the next chain frame of the given kind.
func (p *probe) recvChain(kind wire.ChainKind, d time.Duration) (wire.ChainMsg, bool) {
	p.t.Helper()
	deadline := time.Now().Add(d)
	buf := make([]byte, 2048)
	for time.Now().Before(deadline) {
		p.conn.SetReadDeadline(deadline)
		n, _, err := p.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return wire.ChainMsg{}, false
		}
		var m wire.ChainMsg
		if wire.IsChain(buf[:n]) && m.DecodeFromBytes(buf[:n]) == nil && m.Kind == kind {
			return m, true
		}
	}
	return wire.ChainMsg{}, false
}

// soloMember starts one switch configured as a mid-chain member whose
// predecessor and successor are both the probe, so the test controls the
// entire op stream and observes every forward.
func soloMember(t *testing.T, p *probe) *Switch {
	t.Helper()
	srv, err := NewServer(ServerConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	sw, err := NewSwitch(SwitchConfig{Listen: "127.0.0.1:0", DataPlane: dpConfig(), Servers: []string{srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sw.Close() })
	pa := p.conn.LocalAddr().String()
	if err := sw.ChainConfigure(ChainRole{Epoch: 1, Succ: pa, HeadAddr: pa, Peers: []string{pa}}); err != nil {
		t.Fatal(err)
	}
	return sw
}

func chainOp(seq uint64, lock uint32, txn uint64) *wire.ChainMsg {
	return &wire.ChainMsg{Kind: wire.ChainOp, Origin: wire.OriginClient, Epoch: 1, Seq: seq,
		Hdr: wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lock, TxnID: txn}}
}

// TestChainEpochFencing: envelopes from another epoch are dropped without
// touching the applied prefix.
func TestChainEpochFencing(t *testing.T) {
	p := newProbe(t)
	sw := soloMember(t, p)

	m := chainOp(1, 1, 1)
	m.Epoch = 99
	rawChain(t, p, m, sw.Addr())
	time.Sleep(20 * time.Millisecond)
	if ci := sw.ChainStatus(); ci.Applied != 0 {
		t.Fatalf("fenced envelope applied: %+v", ci)
	}

	m.Epoch = 1
	rawChain(t, p, m, sw.Addr())
	waitStatus(t, sw, timeout, func(ci ChainInfo) bool { return ci.Applied == 1 })
}

// TestChainDupAndGap: a duplicate envelope is suppressed; an envelope
// arriving ahead of a gap is dropped with a nack carrying the receiver's
// applied prefix, and replaying the missing range heals the gap.
func TestChainDupAndGap(t *testing.T) {
	p := newProbe(t)
	sw := soloMember(t, p)

	rawChain(t, p, chainOp(1, 1, 1), sw.Addr())
	waitStatus(t, sw, timeout, func(ci ChainInfo) bool { return ci.Applied == 1 })

	// Duplicate: applied prefix must not advance.
	rawChain(t, p, chainOp(1, 1, 1), sw.Addr())
	time.Sleep(20 * time.Millisecond)
	if ci := sw.ChainStatus(); ci.Applied != 1 {
		t.Fatalf("duplicate advanced the applied prefix: %+v", ci)
	}

	// Gap: seq 3 before seq 2 nacks with Applied=1 and is not applied.
	rawChain(t, p, chainOp(3, 3, 3), sw.Addr())
	ack, ok := p.recvChain(wire.ChainAck, timeout)
	if !ok {
		t.Fatal("gap did not nack")
	}
	if ack.Seq != 1 {
		t.Fatalf("gap nack carries applied prefix %d, want 1", ack.Seq)
	}
	if ci := sw.ChainStatus(); ci.Applied != 1 || ci.GapDrops == 0 {
		t.Fatalf("gap handling: %+v", ci)
	}

	// Replay the missing range in order: both apply.
	rawChain(t, p, chainOp(2, 2, 2), sw.Addr())
	rawChain(t, p, chainOp(3, 3, 3), sw.Addr())
	waitStatus(t, sw, timeout, func(ci ChainInfo) bool { return ci.Applied == 3 })
}

// TestChainMidForwardsDownstream: a mid-chain member forwards each applied
// envelope to its successor unchanged.
func TestChainMidForwardsDownstream(t *testing.T) {
	p := newProbe(t)
	sw := soloMember(t, p)

	rawChain(t, p, chainOp(1, 5, 5), sw.Addr())
	m, ok := p.recvChain(wire.ChainOp, timeout)
	if !ok {
		t.Fatal("mid member did not forward downstream")
	}
	if m.Seq != 1 || m.Hdr.LockID != 5 || m.Hdr.TxnID != 5 {
		t.Fatalf("forwarded envelope mutated: %+v", m)
	}
	// The un-acked op stays in the replay log until the tail acks it.
	if ci := sw.ChainStatus(); ci.LogLen != 1 {
		t.Fatalf("want 1 logged op awaiting ack, got %+v", ci)
	}
	// Ack as the tail would: the log drains.
	ack := &wire.ChainMsg{Kind: wire.ChainAck, Epoch: 1, Seq: 1}
	rawChain(t, p, ack, sw.Addr())
	waitStatus(t, sw, timeout, func(ci ChainInfo) bool { return ci.LogLen == 0 })
}

// TestLateDuplicateAcquireDropped: a network-delayed duplicate of an
// acquire whose whole acquire/release cycle already completed must not
// re-enter the rack. By the time it arrives, the pending/granted dedup
// tables have forgotten the txn, so without the completion tombstones the
// duplicate reads as a brand-new request and enqueues a ghost holder that
// no client will ever release — wedging the lock for everyone behind it.
func TestLateDuplicateAcquireDropped(t *testing.T) {
	run := func(t *testing.T, sws []*Switch, lockID uint32) {
		t.Helper()
		head := sws[0].Addr()
		p := newProbe(t)
		acq := wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 21}
		p.send(&acq, head)
		if _, ok := p.recv(wire.OpGrant, timeout); !ok {
			t.Fatal("no grant for the original acquire")
		}
		p.send(&wire.Header{Op: wire.OpRelease, LockID: lockID, TxnID: 21}, head)
		if _, ok := p.recv(wire.OpReleaseAck, timeout); !ok {
			t.Fatal("no release ack")
		}

		// The delayed duplicate lands after the cycle completed.
		p.send(&acq, head)
		time.Sleep(20 * time.Millisecond)

		// A different client must still get the lock promptly.
		p2 := newProbe(t)
		p2.send(&wire.Header{Op: wire.OpAcquire, Mode: wire.Exclusive, LockID: lockID, TxnID: 22}, head)
		if _, ok := p2.recv(wire.OpGrant, 2*time.Second); !ok {
			t.Fatal("lock wedged behind the ghost holder left by the late duplicate")
		}
		// And the duplicate itself must not have produced a second grant.
		if h, ok := p.recv(wire.OpGrant, 200*time.Millisecond); ok {
			t.Fatalf("late duplicate was granted: %+v", h)
		}
	}
	t.Run("server-owned", func(t *testing.T) {
		sws, _ := chainRack(t, 2, dpConfig())
		run(t, sws, 5)
	})
	t.Run("switch-resident", func(t *testing.T) {
		sws, srv := chainRack(t, 1, dpConfig())
		if err := InstallSwitchLock(sws[0], []*Server{srv}, 6, []switchdp.Region{{Left: 0, Right: 8}}); err != nil {
			t.Fatal(err)
		}
		run(t, sws, 6)
	})
}
