package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"netlock"
	"netlock/internal/obs"
	"netlock/internal/wire"
)

// Client acquires and releases locks against a NetLock switch over UDP,
// multiplexing any number of in-flight operations over one socket. Client
// is safe for concurrent use.
//
// Outgoing ops accumulate into batch frames (up to MaxBatch per datagram)
// and flush adaptively: immediately once every outstanding op is buffered
// (a lone synchronous caller never waits on the batcher), when the frame
// fills, and on the FlushInterval timer as a backstop. Completions arrive
// on the shared read loop, which matches them to in-flight ops by
// (lock, txn).
//
// Loss handling is end to end: unanswered acquires and un-acked releases
// are retransmitted every RetryInterval (the switch deduplicates), ctx
// deadlines are enforced by the same sweep, and grants that arrive for an
// op the caller abandoned are released automatically so the lock is not
// stranded until lease expiry.
//
// Against a replicated switch chain the client is given every member's
// address. Ops go to the current head; when the control plane reconfigures
// the chain, the promoted head announces the new epoch (wire.OpEpoch) and
// the client re-targets and immediately retransmits everything
// outstanding. If the head dies before any announcement arrives, the sweep
// rotates through the remaining addresses until one redirects or answers.
//
// In fabric mode (ClientConfig.Fabric) the client spans several racks,
// each its own chain: every op routes by its lock's shard through the
// epoch-versioned shard map to the owning rack, with one egress batch
// stream per rack multiplexed over the shared socket. A rack that no
// longer owns a shard bounces the op with wire.OpWrongRack plus its full
// map; the client adopts the newer epoch and re-routes everything
// outstanding. The batched hot path is unchanged — single-rack mode is
// just a one-rack fabric with no map.
type Client struct {
	conn      PacketConn
	localIP   netip.Addr
	localPort uint16
	o         *obs.Stripe

	maxBatch   int
	flushEvery time.Duration
	retryEvery time.Duration
	onFailover func(epoch uint64, head string)

	mu sync.Mutex
	// racks holds per-rack routing state: chain member addresses, the
	// current head, the newest epoch seen, silence clocks, and the open
	// egress batch frame. Outside a fabric there is exactly one rack.
	racks []clientRack
	// addrRack maps every known switch address to its rack index, so
	// ingress datagrams are attributed to the rack that sent them.
	addrRack map[netip.AddrPort]int
	// smap is the client's copy of the fabric shard map; nil outside a
	// fabric. Refreshed from the map frames that ride along OpWrongRack
	// bounces.
	smap *wire.ShardMap
	// failovers stages OnFailover notifications; the read loop delivers
	// them outside the lock.
	failovers []failoverEvent
	nextTxn   uint64
	acquires  map[pendKey]*AsyncAcquire
	releases  map[pendKey]*Grant
	// grants holds delivered, unreleased grants so a duplicated grant
	// datagram is distinguishable from a grant for an abandoned op.
	grants map[pendKey]*Grant
	// scratch encodes bare headers when MaxBatch == 1.
	scratch [wire.HeaderLen]byte
	// rackOut is sweep scratch: per-rack outstanding-op counts.
	rackOut []int

	acqPool   sync.Pool
	grantPool sync.Pool

	wg     sync.WaitGroup
	closed chan struct{}
}

// clientRack is one rack's routing state inside a Client: the chain
// member addresses (cur indexes the head, as far as this client knows),
// the newest chain epoch seen from the rack, the rack's silence clocks,
// and its open egress batch frame.
type clientRack struct {
	targets  []netip.AddrPort
	cur      int
	epoch    uint64
	lastRx   time.Time
	lastMove time.Time
	bw       wire.BatchWriter
	bstore   []byte
}

// failoverEvent is one staged OnFailover notification.
type failoverEvent struct {
	epoch uint64
	head  string
}

// ClientConfig configures a Client.
type ClientConfig struct {
	// Switch is the switch's UDP address (single-switch shorthand for a
	// one-element Switches list).
	Switch string
	// Switches are the addresses of every member of a replicated switch
	// chain, head first. Ops go to the head; the remaining addresses are
	// failover candidates. Takes precedence over Switch when non-empty.
	Switches []string
	// Fabric configures multi-rack routing; nil means a single rack.
	// Takes precedence over Switch and Switches when set.
	Fabric *FabricClientConfig
	// OnFailover, if set, is invoked (from the client's internal
	// goroutines — it must not block) whenever the client re-targets to a
	// new head after an epoch announcement.
	OnFailover func(epoch uint64, head string)
	// Net is the socket factory; nil means real UDP.
	Net Network
	// MaxBatch caps ops per egress datagram. 0 means wire.MaxBatchOps;
	// 1 sends one bare header per datagram (the unbatched baseline).
	MaxBatch int
	// FlushInterval is the backstop flush timer for buffered ops.
	// Default 500µs. Most flushes happen adaptively before it fires.
	FlushInterval time.Duration
	// RetryInterval is the resend cadence for unanswered acquires and
	// un-acked releases. Default 200ms.
	RetryInterval time.Duration
	// Obs records frame/op counters and the egress batch-size histogram.
	Obs *obs.Stripe
}

// FabricClientConfig configures a Client for a multi-rack fabric: ops
// route per lock through the shard map to the owning rack's chain.
type FabricClientConfig struct {
	// Racks lists every rack's chain member addresses, head first,
	// indexed by the shard map's rack numbers.
	Racks [][]string
	// Map is the starting shard map (from the fabric controller). The
	// client keeps its own copy and refreshes it from OpWrongRack
	// bounces, so a stale starting map only costs one extra round trip.
	Map *wire.ShardMap
}

// NewClient creates a client socket pointed at the switch, with default
// batching. See NewClientConfig to tune.
func NewClient(switchAddr string) (*Client, error) {
	return NewClientConfig(ClientConfig{Switch: switchAddr})
}

// NewClientConfig creates a client from an explicit configuration.
func NewClientConfig(cfg ClientConfig) (*Client, error) {
	var rackAddrs [][]string
	var smap *wire.ShardMap
	if cfg.Fabric != nil {
		if len(cfg.Fabric.Racks) == 0 {
			return nil, errors.New("transport: fabric config has no racks")
		}
		if cfg.Fabric.Map == nil {
			return nil, errors.New("transport: fabric config has no shard map")
		}
		if cfg.Fabric.Map.Racks > len(cfg.Fabric.Racks) {
			return nil, fmt.Errorf("transport: shard map spans %d racks, %d configured",
				cfg.Fabric.Map.Racks, len(cfg.Fabric.Racks))
		}
		rackAddrs = cfg.Fabric.Racks
		smap = cfg.Fabric.Map.Clone()
	} else if len(cfg.Switches) > 0 {
		rackAddrs = [][]string{cfg.Switches}
	} else {
		rackAddrs = [][]string{{cfg.Switch}}
	}
	racks := make([]clientRack, len(rackAddrs))
	addrRack := make(map[netip.AddrPort]int)
	for i, addrs := range rackAddrs {
		if len(addrs) == 0 {
			return nil, fmt.Errorf("transport: rack %d has no switch addresses", i)
		}
		for _, a := range addrs {
			ap, err := resolveAddrPort(a)
			if err != nil {
				return nil, fmt.Errorf("transport: resolve switch addr: %w", err)
			}
			racks[i].targets = append(racks[i].targets, ap)
			addrRack[ap] = i
		}
	}
	nw := cfg.Net
	if nw == nil {
		nw = UDP
	}
	conn, err := nw.Listen(net.JoinHostPort(racks[0].targets[0].Addr().String(), "0"))
	if err != nil {
		return nil, fmt.Errorf("transport: client socket: %w", err)
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 || maxBatch > wire.MaxBatchOps {
		maxBatch = wire.MaxBatchOps
	}
	if cfg.MaxBatch == 1 {
		maxBatch = 1
	}
	flush := cfg.FlushInterval
	if flush <= 0 {
		flush = 500 * time.Microsecond
	}
	retry := cfg.RetryInterval
	if retry <= 0 {
		retry = 200 * time.Millisecond
	}
	c := &Client{
		conn:       conn,
		racks:      racks,
		addrRack:   addrRack,
		smap:       smap,
		o:          cfg.Obs,
		maxBatch:   maxBatch,
		flushEvery: flush,
		retryEvery: retry,
		onFailover: cfg.OnFailover,
		rackOut:    make([]int, len(racks)),
		acquires:   make(map[pendKey]*AsyncAcquire),
		releases:   make(map[pendKey]*Grant),
		grants:     make(map[pendKey]*Grant),
		closed:     make(chan struct{}),
	}
	c.acqPool.New = func() any { return &AsyncAcquire{ch: make(chan struct{}, 1)} }
	c.grantPool.New = func() any { return &Grant{ackCh: make(chan struct{}, 1)} }
	now := time.Now()
	for i := range c.racks {
		c.racks[i].lastRx = now
		c.racks[i].bw.Reset(nil)
	}
	if ua, ok := conn.LocalAddr().(*net.UDPAddr); ok {
		if a, ok2 := netip.AddrFromSlice(ua.IP); ok2 {
			c.localIP = a.Unmap()
		}
		c.localPort = ua.AddrPort().Port()
	}
	// Transaction IDs identify a request end to end: grants for queued
	// requests are routed back by (lock, txn). Clients draw from disjoint
	// random ranges so concurrent clients cannot collide.
	c.nextTxn = rand.Uint64() >> 1
	c.wg.Add(1)
	go c.readLoop()
	c.wg.Add(1)
	go c.sweepLoop()
	if c.maxBatch > 1 {
		c.wg.Add(1)
		go c.flushLoop()
	}
	return c, nil
}

// ShardMapEpoch returns the epoch of the client's shard map (0 outside a
// fabric).
func (c *Client) ShardMapEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.smap == nil {
		return 0
	}
	return c.smap.Epoch
}

// Close stops the client; blocked Acquire and Wait calls fail with
// netlock.ErrClosed.
func (c *Client) Close() error {
	select {
	case <-c.closed:
		return nil
	default:
	}
	close(c.closed)
	err := c.conn.Close()
	c.wg.Wait()
	c.mu.Lock()
	var done []*AsyncAcquire
	for k, a := range c.acquires {
		delete(c.acquires, k)
		a.g = nil
		a.err = fmt.Errorf("transport: acquire lock %d: %w", k.lock, netlock.ErrClosed)
		done = append(done, a)
	}
	for k := range c.releases {
		delete(c.releases, k)
	}
	for k := range c.grants {
		delete(c.grants, k)
	}
	c.mu.Unlock()
	for _, a := range done {
		c.finishAcquire(a)
	}
	return err
}

// AsyncAcquire is one in-flight acquire. Exactly one completion consumer
// exists per handle: either the callback passed to AcquireFunc, or one
// Wait call. After Wait returns (or the callback fires) the handle is
// recycled and must not be touched again.
type AsyncAcquire struct {
	c        *Client
	key      pendKey
	hdr      wire.Header
	ch       chan struct{}
	cb       func(*Grant, error)
	g        *Grant
	err      error
	deadline time.Time // zero = none; enforced by the sweep
	lastSend time.Time // guarded by c.mu
}

// Txn returns the transaction ID identifying this acquire on the wire.
// Valid until the handle completes.
func (a *AsyncAcquire) Txn() uint64 { return a.key.txn }

// LockID returns the lock this acquire addresses.
func (a *AsyncAcquire) LockID() uint32 { return a.key.lock }

// Wait blocks until the acquire completes, ctx is done, or the client
// closes. It must be called exactly once per handle obtained from
// AcquireAsync. Abandoning a granted acquire (ctx won the race) releases
// the grant automatically.
func (a *AsyncAcquire) Wait(ctx context.Context) (*Grant, error) {
	c := a.c
	select {
	case <-a.ch:
		g, err := a.g, a.err
		c.recycleAcquire(a)
		return g, err
	case <-ctx.Done():
		return c.abandon(a, ctx.Err())
	case <-c.closed:
		return c.abandon(a, nil)
	}
}

// abandon resolves a Wait that lost the race to ctx or Close. cause is the
// ctx error, or nil for client close.
func (c *Client) abandon(a *AsyncAcquire, cause error) (*Grant, error) {
	lockID := a.key.lock
	c.mu.Lock()
	_, pending := c.acquires[a.key]
	if pending {
		delete(c.acquires, a.key)
	}
	c.mu.Unlock()
	if !pending {
		// Completed concurrently: the completion token is in flight.
		// Take it; if the op was granted, give the lock back.
		<-a.ch
		if a.g != nil {
			a.g.Release()
		}
	}
	c.recycleAcquire(a)
	switch {
	case cause == nil:
		return nil, fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrClosed)
	case errors.Is(cause, context.DeadlineExceeded):
		return nil, fmt.Errorf("transport: acquire lock %d: %w (%w)", lockID, netlock.ErrTimeout, cause)
	default:
		return nil, fmt.Errorf("transport: acquire lock %d: %w", lockID, cause)
	}
}

// AcquireAsync submits an acquire and returns immediately with a handle;
// call Wait (exactly once) for the result. ctx's deadline, if any, bounds
// the acquire even if Wait is called later with a different context.
func (c *Client) AcquireAsync(ctx context.Context, lockID uint32, mode netlock.Mode, opts ...netlock.AcquireOption) (*AsyncAcquire, error) {
	return c.submit(ctx, lockID, mode, nil, opts)
}

// AcquireFunc submits an acquire whose completion invokes cb (from the
// client's internal goroutines — cb must not block) with the grant or
// error. Only ctx's deadline is honored for callback completions.
func (c *Client) AcquireFunc(ctx context.Context, lockID uint32, mode netlock.Mode, cb func(*Grant, error), opts ...netlock.AcquireOption) error {
	if cb == nil {
		return errors.New("transport: AcquireFunc requires a callback")
	}
	_, err := c.submit(ctx, lockID, mode, cb, opts)
	return err
}

// Acquire requests a lock and blocks until granted, the context is
// cancelled, or the client closes. Unanswered requests are retransmitted
// every RetryInterval. The option set (tenant, priority, lease) is shared
// with the embedded netlock.Manager, as are the failure sentinels: errors
// match netlock.ErrClosed, netlock.ErrQuotaExceeded,
// netlock.ErrQueueOverflow, and — when the context's deadline expired —
// netlock.ErrTimeout alongside context.DeadlineExceeded.
func (c *Client) Acquire(ctx context.Context, lockID uint32, mode netlock.Mode, opts ...netlock.AcquireOption) (*Grant, error) {
	a, err := c.AcquireAsync(ctx, lockID, mode, opts...)
	if err != nil {
		return nil, err
	}
	return a.Wait(ctx)
}

// AcquireTimeout requests a lock with a plain timeout.
//
// Deprecated: use Acquire with a context and the shared netlock option set;
// this shim will be removed after one release.
func (c *Client) AcquireTimeout(lockID uint32, mode wire.Mode, timeout time.Duration) (*Grant, error) {
	nm := netlock.Shared
	if mode == wire.Exclusive {
		nm = netlock.Exclusive
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.Acquire(ctx, lockID, nm)
}

func (c *Client) submit(ctx context.Context, lockID uint32, mode netlock.Mode, cb func(*Grant, error), opts []netlock.AcquireOption) (*AsyncAcquire, error) {
	o := netlock.ResolveAcquireOptions(opts...)
	wm := wire.Shared
	if mode == netlock.Exclusive {
		wm = wire.Exclusive
	}
	a := c.acqPool.Get().(*AsyncAcquire)
	a.c = c
	a.cb = cb
	a.g = nil
	a.err = nil
	a.deadline, _ = ctx.Deadline()
	a.lastSend = time.Now()
	c.mu.Lock()
	select {
	case <-c.closed:
		// Checked under c.mu so this submit cannot slip past Close's
		// drain of the acquire table.
		c.mu.Unlock()
		c.recycleAcquire(a)
		return nil, fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrClosed)
	default:
	}
	c.nextTxn++
	a.key = pendKey{lockID, c.nextTxn}
	a.hdr = wire.Header{
		Op:         wire.OpAcquire,
		Mode:       wm,
		LockID:     lockID,
		TxnID:      a.key.txn,
		ClientIP:   c.localIP,
		ClientPort: c.localPort,
		TenantID:   o.Tenant,
		Priority:   o.Priority,
		LeaseNs:    int64(o.Lease),
	}
	c.acquires[a.key] = a
	c.enqueueOp(&a.hdr)
	c.maybeFlushLocked()
	c.mu.Unlock()
	return a, nil
}

// Grant states. A Grant is single-use: once Release or ReleaseWait has
// been called, the handle must not be touched again (it is recycled when
// the end-to-end ack lands).
const (
	grantFree uint32 = iota
	grantHeld
	grantReleasing // fire-and-forget; the read loop recycles on ack
	grantWaited    // a ReleaseWait consumer takes the ack
)

// Grant is a lock held through a Client.
type Grant struct {
	c        *Client
	key      pendKey
	hdr      wire.Header // acquire header; release/ack echo its fields
	rack     int         // rack that issued the grant; 0 outside a fabric
	state    atomic.Uint32
	ackCh    chan struct{}
	lastSend time.Time // guarded by c.mu
}

// LockID returns the granted lock.
func (g *Grant) LockID() uint32 { return g.key.lock }

// Txn returns the transaction ID the grant was issued under.
func (g *Grant) Txn() uint64 { return g.key.txn }

// Rack returns the index of the rack that issued the grant (always 0
// outside a fabric). Valid until the grant handle is recycled.
func (g *Grant) Rack() int { return g.rack }

// Release releases the lock. It returns immediately; the client keeps
// retransmitting the release until the switch (or the owning lock server)
// acknowledges it, so the lock is not leaked if the first datagram drops.
func (g *Grant) Release() {
	if !g.state.CompareAndSwap(grantHeld, grantReleasing) {
		return
	}
	g.c.startRelease(g)
}

// ReleaseWait releases the lock and blocks until the release is
// acknowledged end to end, ctx is done, or the client closes. If ctx wins,
// the release keeps retransmitting in the background.
func (g *Grant) ReleaseWait(ctx context.Context) error {
	if !g.state.CompareAndSwap(grantHeld, grantWaited) {
		return nil // already released
	}
	c := g.c
	c.startRelease(g)
	select {
	case <-g.ackCh:
		c.recycleGrant(g)
		return nil
	case <-ctx.Done():
		// Hand ack consumption back to the read loop. If the ack raced
		// us and the token is already here, we still own the recycle.
		g.state.CompareAndSwap(grantWaited, grantReleasing)
		select {
		case <-g.ackCh:
			c.recycleGrant(g)
		default:
		}
		return ctx.Err()
	case <-c.closed:
		return fmt.Errorf("transport: release lock %d: %w", g.key.lock, netlock.ErrClosed)
	}
}

// startRelease moves g into the release-pending table and sends the first
// release datagram.
func (c *Client) startRelease(g *Grant) {
	h := g.hdr
	h.Op = wire.OpRelease
	c.mu.Lock()
	delete(c.grants, g.key)
	c.releases[g.key] = g
	g.lastSend = time.Now()
	c.enqueueOp(&h)
	c.maybeFlushLocked()
	c.mu.Unlock()
}

// autoRelease gives back a grant that arrived for an op this client no
// longer tracks (cancelled, timed out, or already fully released): it
// fabricates a releasing Grant so the normal retry/ack machinery applies.
// Caller holds c.mu.
func (c *Client) autoRelease(h *wire.Header, key pendKey) {
	g := c.grantPool.Get().(*Grant)
	g.c = c
	g.key = key
	g.hdr = *h
	g.hdr.Op = wire.OpRelease
	g.hdr.Flags = 0 // grant flag bits must not leak into the release path
	g.state.Store(grantReleasing)
	g.lastSend = time.Now()
	c.releases[key] = g
	rel := g.hdr
	c.enqueueOp(&rel)
}

// rackFor routes a lock to its rack under the client's shard map. Caller
// holds c.mu.
func (c *Client) rackFor(lockID uint32) int {
	if c.smap == nil {
		return 0
	}
	if r := c.smap.RackOf(lockID); r < len(c.racks) {
		return r
	}
	return 0
}

// enqueueOp appends one op to its rack's outgoing frame (or writes it
// straight out when MaxBatch == 1). Caller holds c.mu.
func (c *Client) enqueueOp(h *wire.Header) {
	rk := c.rackFor(h.LockID)
	r := &c.racks[rk]
	if c.maxBatch <= 1 {
		buf := h.AppendTo(c.scratch[:0])
		c.conn.WriteToUDPAddrPort(buf, r.targets[r.cur])
		c.o.Inc(obs.CtrFramesOut)
		c.o.Observe(obs.StageEgressBatch, 1)
		return
	}
	if r.bw.Count() >= c.maxBatch || !r.bw.Append(h) {
		c.flushRackLocked(rk)
		r.bw.Append(h)
	}
}

// maybeFlushLocked applies the adaptive flush rule: send a rack's open
// frame once it is full, or send everything once every outstanding op is
// sitting in a frame (nothing is left in flight whose completion could
// grow a batch). Fullness is judged per rack, not on the buffered total —
// in fabric mode each rack's frame fills on its own clock, and flushing
// every rack because the total reached one frame's worth would multiply
// the frame rate by the rack count at partial fill. With a single rack
// the two rules coincide. Caller holds c.mu.
func (c *Client) maybeFlushLocked() {
	n := 0
	for i := range c.racks {
		n += c.racks[i].bw.Count()
	}
	if n == 0 {
		return
	}
	if n >= len(c.acquires)+len(c.releases) {
		c.flushLocked()
		return
	}
	for i := range c.racks {
		if c.racks[i].bw.Count() >= c.maxBatch {
			c.flushRackLocked(i)
		}
	}
}

// flushLocked writes every rack's open frame, if any. Caller holds c.mu.
func (c *Client) flushLocked() {
	for i := range c.racks {
		c.flushRackLocked(i)
	}
}

// flushRackLocked writes one rack's open frame, if any. Caller holds c.mu.
func (c *Client) flushRackLocked(rk int) {
	r := &c.racks[rk]
	n := r.bw.Count()
	frame := r.bw.Frame()
	if frame == nil {
		return
	}
	c.conn.WriteToUDPAddrPort(frame, r.targets[r.cur])
	c.o.Inc(obs.CtrFramesOut)
	c.o.Observe(obs.StageEgressBatch, int64(n))
	r.bstore = frame[:0]
	r.bw.Reset(r.bstore)
}

// flushLoop is the FlushInterval backstop for ops the adaptive rule left
// buffered.
func (c *Client) flushLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.flushEvery)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.mu.Lock()
			c.flushLocked()
			c.mu.Unlock()
		}
	}
}

// adoptEpoch processes one OpEpoch announcement from rack rk: TxnID
// carries the chain epoch, the client address fields the head. Newer
// epochs (and same-epoch redirects from non-head members) re-target the
// rack and trigger an immediate retransmit of everything outstanding
// toward it. rk < 0 means the datagram source was unknown; the announced
// head address then attributes the rack, or the announcement is dropped.
// Caller holds c.mu.
func (c *Client) adoptEpoch(h *wire.Header, rk int) {
	head := netip.AddrPortFrom(h.ClientIP.Unmap(), h.ClientPort)
	if !head.IsValid() {
		return
	}
	if rk < 0 {
		var ok bool
		if rk, ok = c.addrRack[head]; !ok {
			return
		}
	}
	r := &c.racks[rk]
	if h.TxnID < r.epoch {
		return // stale announcement from a demoted member
	}
	moved := c.retarget(rk, head)
	newer := h.TxnID > r.epoch
	r.epoch = h.TxnID
	if !moved && !newer {
		return
	}
	if moved {
		c.retransmitRackLocked(rk)
	}
	if c.onFailover != nil {
		c.failovers = append(c.failovers, failoverEvent{epoch: r.epoch, head: head.String()})
	}
}

// retarget points rack rk at head, learning the address if it was not in
// the configured set, and reports whether the destination changed. Caller
// holds c.mu.
func (c *Client) retarget(rk int, head netip.AddrPort) bool {
	r := &c.racks[rk]
	for i, t := range r.targets {
		if t == head {
			if i == r.cur {
				return false
			}
			r.cur = i
			r.lastMove = time.Now()
			return true
		}
	}
	r.targets = append(r.targets, head)
	c.addrRack[head] = rk
	r.cur = len(r.targets) - 1
	r.lastMove = time.Now()
	return true
}

// adoptMap installs a strictly newer shard map (learned from the frame a
// wrong-rack bounce carries) and re-routes everything outstanding under
// the new assignment. Caller holds c.mu.
func (c *Client) adoptMap(m *wire.ShardMap) {
	if c.smap == nil || m.Epoch <= c.smap.Epoch {
		return // single-rack clients ignore maps; older epochs are stale
	}
	c.smap = m.Clone()
	c.retransmitAllLocked()
}

// retransmitAllLocked re-sends every outstanding acquire and release,
// routed per lock, resetting their retry clocks. Caller holds c.mu.
func (c *Client) retransmitAllLocked() {
	now := time.Now()
	for _, a := range c.acquires {
		a.lastSend = now
		c.enqueueOp(&a.hdr)
	}
	for _, g := range c.releases {
		g.lastSend = now
		h := g.hdr
		h.Op = wire.OpRelease
		c.enqueueOp(&h)
	}
	c.flushLocked()
}

// retransmitRackLocked re-sends the outstanding acquires and releases
// routed to rack rk, resetting their retry clocks. Caller holds c.mu.
func (c *Client) retransmitRackLocked(rk int) {
	if len(c.racks) == 1 {
		c.retransmitAllLocked()
		return
	}
	now := time.Now()
	for key, a := range c.acquires {
		if c.rackFor(key.lock) != rk {
			continue
		}
		a.lastSend = now
		c.enqueueOp(&a.hdr)
	}
	for key, g := range c.releases {
		if c.rackFor(key.lock) != rk {
			continue
		}
		g.lastSend = now
		h := g.hdr
		h.Op = wire.OpRelease
		c.enqueueOp(&h)
	}
	c.flushRackLocked(rk)
}

// rotateIfSilent is the sweep's failover backstop for the window between a
// head failing and its successor's epoch announcement (which the dead head
// obviously cannot deliver): for each rack with ops outstanding and
// nothing received for two retry intervals, try the rack's next known
// switch address. A live non-head member answers with a redirect; a live
// head answers the ops themselves. Caller holds c.mu.
func (c *Client) rotateIfSilent(now time.Time) {
	if len(c.acquires)+len(c.releases) == 0 {
		return
	}
	out := c.rackOut
	for i := range out {
		out[i] = 0
	}
	for key := range c.acquires {
		out[c.rackFor(key.lock)]++
	}
	for key := range c.releases {
		out[c.rackFor(key.lock)]++
	}
	quiet := 2 * c.retryEvery
	for rk := range c.racks {
		r := &c.racks[rk]
		if out[rk] == 0 || len(r.targets) < 2 {
			continue
		}
		if now.Sub(r.lastRx) < quiet || now.Sub(r.lastMove) < quiet {
			continue
		}
		r.cur = (r.cur + 1) % len(r.targets)
		r.lastMove = now
		c.retransmitRackLocked(rk)
	}
}

// sweepLoop enforces acquire deadlines and retransmits unanswered
// acquires and un-acked releases every RetryInterval.
func (c *Client) sweepLoop() {
	defer c.wg.Done()
	tick := c.retryEvery / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var expired []*AsyncAcquire
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
		}
		now := time.Now()
		expired = expired[:0]
		c.mu.Lock()
		for key, a := range c.acquires {
			if !a.deadline.IsZero() && now.After(a.deadline) {
				delete(c.acquires, key)
				a.g = nil
				a.err = fmt.Errorf("transport: acquire lock %d: %w (%w)",
					key.lock, netlock.ErrTimeout, context.DeadlineExceeded)
				expired = append(expired, a)
				continue
			}
			if now.Sub(a.lastSend) >= c.retryEvery {
				a.lastSend = now
				c.enqueueOp(&a.hdr)
			}
		}
		for _, g := range c.releases {
			if now.Sub(g.lastSend) >= c.retryEvery {
				g.lastSend = now
				h := g.hdr
				h.Op = wire.OpRelease
				c.enqueueOp(&h)
			}
		}
		c.rotateIfSilent(now)
		c.flushLocked()
		c.mu.Unlock()
		for _, a := range expired {
			c.finishAcquire(a)
		}
	}
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	buf := make([]byte, maxPacket)
	var h wire.Header
	var br wire.BatchReader
	var sm wire.ShardMap
	var doneAcq []*AsyncAcquire
	var doneRel []*Grant
	for {
		n, from, err := c.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
				continue
			}
		}
		data := buf[:n]
		doneAcq = doneAcq[:0]
		doneRel = doneRel[:0]
		c.mu.Lock()
		// Attribute the datagram to the rack that sent it; rk stays -1 for
		// unknown sources on a multi-rack client (handlers then fall back
		// to shard-map routing).
		rk := 0
		if len(c.racks) > 1 {
			var ok bool
			if rk, ok = c.addrRack[normAddrPort(from)]; !ok {
				rk = -1
			}
		}
		if rk >= 0 {
			c.racks[rk].lastRx = time.Now()
		}
		if wire.IsShardMap(data) {
			if sm.DecodeFromBytes(data) == nil {
				c.adoptMap(&sm)
			}
		} else if wire.IsBatch(data) {
			if br.Reset(data) == nil {
				ops := 0
				for {
					ok, err2 := br.Next(&h)
					if err2 != nil || !ok {
						break
					}
					ops++
					doneAcq, doneRel = c.handleOp(&h, rk, doneAcq, doneRel)
				}
				if ops > 0 {
					c.o.Inc(obs.CtrFramesIn)
					c.o.Add(obs.CtrOpsIn, uint64(ops))
				}
			}
		} else if h.DecodeFromBytes(data) == nil {
			c.o.Inc(obs.CtrFramesIn)
			c.o.Inc(obs.CtrOpsIn)
			doneAcq, doneRel = c.handleOp(&h, rk, doneAcq, doneRel)
		}
		// Completions may have drained the in-flight set down to the
		// buffered ops; re-check the adaptive flush rule.
		c.maybeFlushLocked()
		var events []failoverEvent
		if len(c.failovers) > 0 {
			events = append(events, c.failovers...)
			c.failovers = c.failovers[:0]
		}
		c.mu.Unlock()
		// Deliver completions outside the lock: callbacks may submit new
		// ops (which take c.mu), and channel waiters resume immediately.
		for _, ev := range events {
			c.onFailover(ev.epoch, ev.head)
		}
		for _, a := range doneAcq {
			c.finishAcquire(a)
		}
		for _, g := range doneRel {
			c.finishRelease(g)
		}
	}
}

// handleOp matches one ingress op to its in-flight entry and stages the
// completion. rk is the rack the op arrived from (-1 when unattributed).
// Caller holds c.mu.
func (c *Client) handleOp(h *wire.Header, rk int, doneAcq []*AsyncAcquire, doneRel []*Grant) ([]*AsyncAcquire, []*Grant) {
	key := pendKey{h.LockID, h.TxnID}
	switch h.Op {
	case wire.OpGrant, wire.OpFetch:
		if a, ok := c.acquires[key]; ok {
			delete(c.acquires, key)
			g := c.grantPool.Get().(*Grant)
			g.c = c
			g.key = key
			g.hdr = a.hdr
			g.rack = rk
			if rk < 0 {
				g.rack = c.rackFor(key.lock)
			}
			g.state.Store(grantHeld)
			c.grants[key] = g
			a.g = g
			a.err = nil
			return append(doneAcq, a), doneRel
		}
		if _, held := c.grants[key]; held {
			return doneAcq, doneRel // duplicated grant datagram
		}
		if _, rel := c.releases[key]; rel {
			return doneAcq, doneRel // duplicate; release already in flight
		}
		c.autoRelease(h, key)
	case wire.OpReject:
		if a, ok := c.acquires[key]; ok {
			if h.Flags&wire.FlagMoved != 0 {
				// The lock's owner moved mid-request (a rebalancer drain):
				// not a failure. Retry immediately through the switch, which
				// routes to the new owner once the flip completes; the
				// acquire's deadline still bounds the loop.
				a.lastSend = time.Now()
				c.enqueueOp(&a.hdr)
				return doneAcq, doneRel
			}
			delete(c.acquires, key)
			a.g = nil
			a.err = rejectErr(h, key.lock)
			return append(doneAcq, a), doneRel
		}
	case wire.OpReleaseAck:
		if g, ok := c.releases[key]; ok {
			delete(c.releases, key)
			return doneAcq, append(doneRel, g)
		}
	case wire.OpEpoch:
		c.adoptEpoch(h, rk)
	case wire.OpWrongRack:
		// The addressed rack does not own the lock's shard. The full map
		// frame travels alongside this bounce and re-routes everything on
		// adoption; if our map already routes the lock elsewhere (the map
		// frame won the race, or the op was mis-sent), resend now.
		if c.smap == nil || (rk >= 0 && c.rackFor(key.lock) == rk) {
			return doneAcq, doneRel
		}
		if a, ok := c.acquires[key]; ok {
			a.lastSend = time.Now()
			c.enqueueOp(&a.hdr)
		} else if g, ok := c.releases[key]; ok {
			g.lastSend = time.Now()
			rel := g.hdr
			rel.Op = wire.OpRelease
			c.enqueueOp(&rel)
		}
	}
	return doneAcq, doneRel
}

// finishAcquire delivers one staged acquire completion. Must be called
// without c.mu held.
func (c *Client) finishAcquire(a *AsyncAcquire) {
	if cb := a.cb; cb != nil {
		g, err := a.g, a.err
		c.recycleAcquire(a)
		cb(g, err)
		return
	}
	a.ch <- struct{}{}
}

// finishRelease resolves one acked release: hand the token to a
// ReleaseWait consumer, or recycle the grant directly. Must be called
// without c.mu held.
func (c *Client) finishRelease(g *Grant) {
	if g.state.Load() == grantWaited {
		select {
		case g.ackCh <- struct{}{}:
		default:
		}
		return
	}
	c.recycleGrant(g)
}

func (c *Client) recycleAcquire(a *AsyncAcquire) {
	select {
	case <-a.ch:
	default:
	}
	a.cb = nil
	a.g = nil
	a.err = nil
	a.deadline = time.Time{}
	c.acqPool.Put(a)
}

func (c *Client) recycleGrant(g *Grant) {
	select {
	case <-g.ackCh:
	default:
	}
	g.state.Store(grantFree)
	c.grantPool.Put(g)
}

func rejectErr(h *wire.Header, lockID uint32) error {
	if h.Flags&wire.FlagOverflow != 0 {
		return fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrQueueOverflow)
	}
	return fmt.Errorf("transport: acquire lock %d: %w", lockID, netlock.ErrQuotaExceeded)
}
